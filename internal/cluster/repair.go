// Anti-entropy repair: the router's convergence backstop.
//
// A replica can fall behind its primary whenever an append fan-out fails —
// the primary advanced an epoch the replica never saw. proxyWrite enqueues
// such failures immediately; a periodic scan additionally compares every
// placement member's per-dataset epoch (reported on /readyz and collected
// by the prober) against the placement's max, so lag is caught even when
// the fan-out failure happened under a previous router. Repair re-streams
// the freshest holder's v2 snapshot onto the lagging shard via the adopt
// endpoint's replace mode; repeated failures back off exponentially. Each
// scan republishes the currents_replica_lag gauge wholesale, so a healed
// replica's return to 0 is observable.
//
// Divergence in this system is always an epoch gap, never a same-epoch
// fork: every placement member applies the same append batches in the same
// order (router fan-out relays one batch), so a lagging replica is a
// strict prefix of the primary and a snapshot re-stream is the correct
// heal.
package cluster

import (
	"sync"
	"time"
)

// maxRepairBackoffShift caps the exponential re-queue delay at
// RepairInterval << maxRepairBackoffShift.
const maxRepairBackoffShift = 5

// repairTask identifies one lagging (dataset, shard) pair.
type repairTask struct {
	dataset string
	target  string
}

// repairState tracks one task's retry schedule.
type repairState struct {
	attempts  int
	notBefore time.Time
}

// repairer owns the pending repair queue and the anti-entropy scan. The
// loop itself runs on the router's lifecycle (startRepair / Close); the
// queue accepts enqueues from any goroutine.
type repairer struct {
	rt *Router

	mu      sync.Mutex
	pending map[repairTask]*repairState
	kick    chan struct{}
}

func newRepairer(rt *Router) *repairer {
	return &repairer{
		rt:      rt,
		pending: make(map[repairTask]*repairState),
		kick:    make(chan struct{}, 1),
	}
}

// enqueue registers a lagging replica for repair and nudges the loop. An
// already-pending task keeps its backoff schedule.
func (rp *repairer) enqueue(dataset, target string) {
	t := repairTask{dataset: dataset, target: target}
	rp.mu.Lock()
	if _, ok := rp.pending[t]; !ok {
		rp.pending[t] = &repairState{}
	}
	rp.mu.Unlock()
	select {
	case rp.kick <- struct{}{}:
	default:
	}
}

// pendingCount reports queued repairs (for tests).
func (rp *repairer) pendingCount() int {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return len(rp.pending)
}

// startRepair launches the repair loop on the router's waitgroup.
func (rt *Router) startRepair() {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(rt.opt.RepairInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.done:
				return
			case <-t.C:
			case <-rt.repair.kick:
			}
			rt.repair.runOnce()
		}
	}()
}

// runOnce performs one repair round: scan for lag, execute due tasks,
// rescan so the published gauge reflects the heals.
func (rp *repairer) runOnce() {
	rp.scanLag()
	if rp.runDue() {
		rp.scanLag()
	}
}

// scanLag compares each cataloged dataset's epochs across its placement,
// publishes the currents_replica_lag gauge wholesale, and enqueues every
// lagging member. Members that lack the dataset entirely are Rebalance's
// job, not repair's; members whose epoch is unknown (never probed) are
// skipped rather than guessed at.
func (rp *repairer) scanLag() {
	rt := rp.rt
	lag := make(map[string]map[string]uint64)
	for _, ds := range rt.catalog() {
		placement := rt.Placement(ds)
		var maxEpoch uint64
		known := make(map[string]uint64, len(placement))
		for _, addr := range placement {
			s := rt.shardFor(addr)
			if s == nil || !s.has(ds) {
				continue
			}
			if e, ok := s.epochOf(ds); ok {
				known[addr] = e
				if e > maxEpoch {
					maxEpoch = e
				}
			}
		}
		if len(known) == 0 {
			continue
		}
		row := make(map[string]uint64, len(known))
		for addr, e := range known {
			row[addr] = maxEpoch - e
			if e < maxEpoch {
				rp.enqueueScanned(ds, addr)
			}
		}
		lag[ds] = row
	}
	rt.met.setLag(lag)
}

// enqueueScanned adds a scan-discovered task without re-kicking the loop
// (the scan runs inside the loop already).
func (rp *repairer) enqueueScanned(dataset, target string) {
	t := repairTask{dataset: dataset, target: target}
	rp.mu.Lock()
	if _, ok := rp.pending[t]; !ok {
		rp.pending[t] = &repairState{}
	}
	rp.mu.Unlock()
}

// runDue executes every task whose backoff has elapsed; reports whether
// any repair succeeded (so the caller rescans the gauge).
func (rp *repairer) runDue() bool {
	now := time.Now()
	rp.mu.Lock()
	due := make([]repairTask, 0, len(rp.pending))
	for t, st := range rp.pending {
		if !now.Before(st.notBefore) {
			due = append(due, t)
		}
	}
	rp.mu.Unlock()

	healed := false
	for _, t := range due {
		if rp.repairOne(t) {
			healed = true
		}
	}
	return healed
}

// repairOne heals one lagging replica by re-streaming the freshest
// holder's snapshot. Returns true when the target is converged (repaired
// now, or found already caught up).
func (rp *repairer) repairOne(t repairTask) bool {
	rt := rp.rt
	placement := rt.Placement(t.dataset)
	onRing := false
	for _, addr := range placement {
		if addr == t.target {
			onRing = true
			break
		}
	}
	if !onRing {
		// The ring moved on; this replica no longer owns the dataset.
		rp.drop(t)
		return false
	}

	// Pick the freshest holder as source, preferring ready shards; note
	// the target's own epoch to detect "already converged".
	var src string
	var srcEpoch, targetEpoch uint64
	targetKnown := false
	for _, addr := range placement {
		s := rt.shardFor(addr)
		if s == nil || !s.has(t.dataset) {
			continue
		}
		e, ok := s.epochOf(t.dataset)
		if !ok {
			continue
		}
		if addr == t.target {
			targetEpoch, targetKnown = e, true
			continue
		}
		if src == "" || e > srcEpoch || (e == srcEpoch && !rt.isReady(src) && s.ready.Load()) {
			src, srcEpoch = addr, e
		}
	}
	if src == "" {
		rp.requeue(t, "no source holds a known epoch")
		return false
	}
	if targetKnown && targetEpoch >= srcEpoch {
		rp.drop(t)
		return true
	}

	if err := rt.adopt(t.target, t.dataset, src, true); err != nil {
		rt.met.repairErrs.Add(1)
		rp.requeue(t, err.Error())
		return false
	}
	rt.met.repairs.Add(1)
	rt.opt.Logf("repair: re-streamed %s onto %s from %s (epoch %d)", t.dataset, t.target, src, srcEpoch)
	rp.drop(t)
	if s := rt.shardFor(t.target); s != nil {
		rt.probeShard(s) // refresh the healed shard's epoch report
	}
	return true
}

func (rp *repairer) drop(t repairTask) {
	rp.mu.Lock()
	delete(rp.pending, t)
	rp.mu.Unlock()
}

// requeue schedules a failed task's next try with capped exponential
// backoff on the repair interval.
func (rp *repairer) requeue(t repairTask, why string) {
	rt := rp.rt
	interval := rt.opt.RepairInterval
	if interval <= 0 {
		interval = DefaultRepairInterval
	}
	rp.mu.Lock()
	st := rp.pending[t]
	if st == nil {
		st = &repairState{}
		rp.pending[t] = st
	}
	st.attempts++
	shift := st.attempts
	if shift > maxRepairBackoffShift {
		shift = maxRepairBackoffShift
	}
	st.notBefore = time.Now().Add(interval << shift)
	rp.mu.Unlock()
	rt.opt.Logf("repair: %s onto %s deferred (attempt %d): %s", t.dataset, t.target, st.attempts, why)
}
