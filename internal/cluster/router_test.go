package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/server"
	"sourcecurrents/internal/session"
	"sourcecurrents/internal/synth"
)

// fleetWorld generates a deterministic test dataset.
func fleetWorld(t testing.TB, seed int64, nObjects int) *dataset.Dataset {
	t.Helper()
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed:           seed,
		NObjects:       nObjects,
		IndependentAcc: []float64{0.9, 0.8, 0.7, 0.6, 0.85, 0.75},
		Copiers: []synth.CopierSpec{
			{MasterIndex: 0, CopyRate: 0.85, OwnAcc: 0.7},
		},
		FalsePool: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sw.Dataset
}

// writeWorldSnap writes a v2 snapshot for a generated world into dir.
func writeWorldSnap(t testing.TB, dir, name string, seed int64, nObjects int) {
	t.Helper()
	s, err := session.New(fleetWorld(t, seed, nObjects), session.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name+".snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshotV2(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// shardFixture is one booted shard: its HTTP server, host:port address, and
// registry (inspected by fan-out and rebalance assertions).
type shardFixture struct {
	ts   *httptest.Server
	addr string
	reg  *server.Registry
}

// bootShard serves dir as a fleet shard with adoption enabled.
func bootShard(t testing.TB, dir string) *shardFixture {
	t.Helper()
	cfg := session.DefaultConfig()
	reg, err := server.LoadDirAllowEmpty(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(reg, server.Options{AdoptDir: dir, SessionCfg: cfg}))
	t.Cleanup(ts.Close)
	return &shardFixture{ts: ts, addr: strings.TrimPrefix(ts.URL, "http://"), reg: reg}
}

// bootFleet boots n shards each serving the same dataset set (full overlap,
// so every ring placement is satisfiable) plus a router over them.
func bootFleet(t testing.TB, nShards int, datasets map[string]int64, opt Options) (*Router, []*shardFixture) {
	t.Helper()
	shards := make([]*shardFixture, nShards)
	addrs := make([]string, nShards)
	for i := range shards {
		dir := t.TempDir()
		for name, seed := range datasets {
			writeWorldSnap(t, dir, name, seed, 30)
		}
		shards[i] = bootShard(t, dir)
		addrs[i] = shards[i].addr
	}
	rt, err := NewRouter(addrs, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, shards
}

func doReq(t testing.TB, h http.Handler, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	resp := w.Result()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func directReq(t testing.TB, base, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

const answerReq = `{"query":[{"entity":"o00000","attribute":"v"},{"entity":"o00001","attribute":"v"},{"entity":"o00002","attribute":"v"}]}`

// The routed bytes must equal the direct-shard bytes for every read
// operation: the router adds placement and failover, never content.
func TestRouterGoldenVsDirect(t *testing.T) {
	rt, shards := bootFleet(t, 3, map[string]int64{"alpha": 11, "beta": 13}, Options{RF: 2})
	cases := []struct{ method, path, body string }{
		{http.MethodPost, "/v1/alpha/answer", answerReq},
		{http.MethodPost, "/v1/beta/answer", answerReq},
		{http.MethodPost, "/v1/alpha/fuse", ""},
		{http.MethodGet, "/v1/alpha/accuracy", ""},
		{http.MethodPost, "/v1/beta/recommend", `{"k":3}`},
	}
	for _, c := range cases {
		resp, routed := doReq(t, rt, c.method, c.path, c.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s %s: routed status %d: %s", c.method, c.path, resp.StatusCode, routed)
		}
		// Every shard serves the same snapshot, so each must agree with the
		// routed bytes.
		for i, sh := range shards {
			dresp, direct := directReq(t, sh.ts.URL, c.method, c.path, c.body)
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: shard %d status %d", c.method, c.path, i, dresp.StatusCode)
			}
			if !bytes.Equal(routed, direct) {
				t.Fatalf("%s %s: routed bytes differ from shard %d bytes\nrouted: %s\ndirect: %s",
					c.method, c.path, i, routed, direct)
			}
		}
	}
}

// Killing the primary must be invisible to reads at rf=2: the router fails
// over to the replica on the transport error and counts the failover.
func TestRouterFailover(t *testing.T) {
	rt, shards := bootFleet(t, 3, map[string]int64{"alpha": 11}, Options{RF: 2})
	placement := rt.Placement("alpha")
	if len(placement) != 2 {
		t.Fatalf("placement = %v, want 2 shards", placement)
	}
	for _, sh := range shards {
		if sh.addr == placement[0] {
			sh.ts.CloseClientConnections()
			sh.ts.Close()
		}
	}
	for i := 0; i < 5; i++ {
		resp, body := doReq(t, rt, http.MethodPost, "/v1/alpha/answer", answerReq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d after primary kill: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if got := rt.met.failovers.Load(); got == 0 {
		t.Fatal("failovers counter = 0, want > 0 after primary kill")
	}
	// The next probe round marks the dead shard down; routing then skips it
	// without even paying the failed attempt.
	rt.probeAll()
	resp, body := doReq(t, rt, http.MethodPost, "/v1/alpha/answer", answerReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read after probe: status %d: %s", resp.StatusCode, body)
	}
}

// An append through the router must advance the primary and every replica
// to the same epoch, and subsequent reads must agree byte-for-byte no
// matter which replica serves them.
func TestRouterAppendFanout(t *testing.T) {
	rt, shards := bootFleet(t, 2, map[string]int64{"alpha": 11}, Options{RF: 2})
	appendBody := `{"claims":[{"source":"s_extra","entity":"o00000","attribute":"v","value":"zzz"}]}`
	resp, body := doReq(t, rt, http.MethodPost, "/v1/alpha/append", appendBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, body)
	}
	var ar struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Epoch != 1 {
		t.Fatalf("append epoch = %d, want 1", ar.Epoch)
	}
	for i, sh := range shards {
		_, epoch, ok := sh.reg.GetWithEpoch("alpha")
		if !ok || epoch != 1 {
			t.Fatalf("shard %d epoch = %d (ok=%v), want 1 — fan-out did not land", i, epoch, ok)
		}
	}
	if rt.met.replicaAppends.Load() != 1 || rt.met.replicaAppErrs.Load() != 0 {
		t.Fatalf("replica fan-out counters = %d/%d, want 1/0",
			rt.met.replicaAppends.Load(), rt.met.replicaAppErrs.Load())
	}
	_, a := directReq(t, shards[0].ts.URL, http.MethodPost, "/v1/alpha/answer", answerReq)
	_, b := directReq(t, shards[1].ts.URL, http.MethodPost, "/v1/alpha/answer", answerReq)
	if !bytes.Equal(a, b) {
		t.Fatalf("post-append answers diverge between replicas:\n%s\n%s", a, b)
	}
}

// A routed snapshot fetch streams the shard's bytes through unmodified,
// transfer-CRC header included, so a client (or a repairing shard) adopting
// through the router validates exactly what a direct pull would.
func TestRouterSnapshotRelay(t *testing.T) {
	rt, shards := bootFleet(t, 2, map[string]int64{"alpha": 11}, Options{RF: 2})
	resp, routed := doReq(t, rt, http.MethodGet, "/v1/alpha/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed snapshot status %d: %s", resp.StatusCode, routed)
	}
	crc := resp.Header.Get(snapshotCRCHeader)
	if crc == "" {
		t.Fatal("routed snapshot dropped the transfer-CRC header")
	}
	dresp, direct := directReq(t, shards[0].ts.URL, http.MethodGet, "/v1/alpha/snapshot", "")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("direct snapshot status %d", dresp.StatusCode)
	}
	if !bytes.Equal(routed, direct) {
		t.Fatalf("routed snapshot bytes differ from the shard's (%d vs %d bytes)", len(routed), len(direct))
	}
	if want := dresp.Header.Get(snapshotCRCHeader); crc != want {
		t.Fatalf("routed CRC header %s, direct %s", crc, want)
	}
}

// Growing the ring must pull datasets onto the new shard by snapshot
// streaming: the new shard boots empty, SetShards rebalances, and afterwards
// it serves the same bytes as the original holder.
func TestRouterRebalanceAdopts(t *testing.T) {
	rt, shards := bootFleet(t, 1, map[string]int64{"alpha": 11, "beta": 13}, Options{RF: 2})
	fresh := bootShard(t, t.TempDir())
	if fresh.reg.Len() != 0 {
		t.Fatalf("fresh shard has %d datasets, want 0", fresh.reg.Len())
	}
	moves := rt.SetShards([]string{shards[0].addr, fresh.addr})
	// rf=2 over 2 shards places every dataset on both, so the fresh shard
	// must have adopted both worlds.
	if len(moves) != 2 {
		t.Fatalf("moves = %+v, want 2 adoptions", moves)
	}
	for _, mv := range moves {
		if mv.Error != "" {
			t.Fatalf("move %+v failed", mv)
		}
		if mv.To != fresh.addr || mv.From != shards[0].addr {
			t.Fatalf("move %+v: want pull onto %s from %s", mv, fresh.addr, shards[0].addr)
		}
	}
	for _, ds := range []string{"alpha", "beta"} {
		if !fresh.reg.Has(ds) {
			t.Fatalf("fresh shard did not adopt %q", ds)
		}
		_, want := directReq(t, shards[0].ts.URL, http.MethodPost, "/v1/"+ds+"/answer", answerReq)
		dresp, got := directReq(t, fresh.ts.URL, http.MethodPost, "/v1/"+ds+"/answer", answerReq)
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("adopted shard answer status %d: %s", dresp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("adopted %q diverges from source:\n%s\n%s", ds, got, want)
		}
	}
	// Rebalance is idempotent: a second pass finds nothing to move.
	if again := rt.Rebalance(); len(again) != 0 {
		t.Fatalf("second rebalance moved %+v, want none", again)
	}
}

// A dataset no shard serves must come back 404 through the router (after
// trying the placement), not 502.
func TestRouterUnknownDataset(t *testing.T) {
	rt, _ := bootFleet(t, 2, map[string]int64{"alpha": 11}, Options{RF: 2})
	resp, body := doReq(t, rt, http.MethodPost, "/v1/nosuch/answer", answerReq)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unknown dataset") {
		t.Fatalf("body = %s", body)
	}
}

// The router's own endpoints: /healthz lists per-shard readiness and
// inventory; /metrics exposes the per-shard series.
func TestRouterHealthAndMetrics(t *testing.T) {
	rt, _ := bootFleet(t, 2, map[string]int64{"alpha": 11}, Options{RF: 2})
	resp, body := doReq(t, rt, http.MethodGet, "/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h RouterHealth
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.RF != 2 || len(h.Shards) != 2 {
		t.Fatalf("health = %+v", h)
	}
	for _, sh := range h.Shards {
		if !sh.Ready || len(sh.Datasets) != 1 || sh.Datasets[0] != "alpha" {
			t.Fatalf("shard health = %+v, want ready with [alpha]", sh)
		}
	}

	doReq(t, rt, http.MethodPost, "/v1/alpha/answer", answerReq)
	_, met := doReq(t, rt, http.MethodGet, "/metrics", "")
	// The single read lands on alpha's ring primary — which of the two
	// shards that is depends on the httptest ports.
	primary := rt.Placement("alpha")[0]
	for _, want := range []string{
		`currents_router_ring_shards{state="ready"} 2`,
		fmt.Sprintf("currents_router_requests_total{shard=%q}", primary),
		"currents_router_request_duration_seconds_bucket",
		"currents_router_failovers_total",
	} {
		if !strings.Contains(string(met), want) {
			t.Fatalf("metrics missing %q:\n%s", want, met)
		}
	}
}

// The background prober flips a shard's readiness both ways.
func TestRouterProberMarksDown(t *testing.T) {
	rt, shards := bootFleet(t, 2, map[string]int64{"alpha": 11}, Options{
		RF: 2, HealthInterval: 20 * time.Millisecond, ProbeTimeout: 200 * time.Millisecond,
	})
	rt.Start()
	if !rt.isReady(shards[0].addr) {
		t.Fatal("shard 0 not ready after synchronous boot probe")
	}
	shards[0].ts.CloseClientConnections()
	shards[0].ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for rt.isReady(shards[0].addr) {
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the killed shard down")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !rt.isReady(shards[1].addr) {
		t.Fatal("live shard was marked down")
	}
}
