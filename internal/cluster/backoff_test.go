package cluster

import (
	"testing"
	"time"
)

// The same seed must yield the same jittered delay sequence — failover
// timing in tests and replayed incidents is reproducible.
func TestBackoffDeterministic(t *testing.T) {
	a := newBackoff(25*time.Millisecond, 500*time.Millisecond, 42)
	b := newBackoff(25*time.Millisecond, 500*time.Millisecond, 42)
	var seqA, seqB [10]time.Duration
	for i := range seqA {
		seqA[i] = a.delay(i + 1)
	}
	for i := range seqB {
		seqB[i] = b.delay(i + 1)
	}
	if seqA != seqB {
		t.Fatalf("same seed diverged:\n%v\n%v", seqA, seqB)
	}
	c := newBackoff(25*time.Millisecond, 500*time.Millisecond, 43)
	same := true
	for i := range seqA {
		if c.delay(i+1) != seqA[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 10-delay sequence")
	}
}

// delay(n) must stay within [0.5, 1.5) of min(base<<(n-1), max).
func TestBackoffBounds(t *testing.T) {
	base, max := 25*time.Millisecond, 500*time.Millisecond
	b := newBackoff(base, max, 7)
	for n := 1; n <= 12; n++ {
		nominal := base << (n - 1)
		if nominal > max {
			nominal = max
		}
		d := b.delay(n)
		lo := time.Duration(float64(nominal) * 0.5)
		hi := time.Duration(float64(nominal) * 1.5)
		if d < lo || d >= hi {
			t.Fatalf("delay(%d) = %v, want in [%v, %v)", n, d, lo, hi)
		}
	}
}

// The retry budget starts at full burst, drains one token per withdraw, and
// refills per incoming request without exceeding the cap.
func TestRetryBudget(t *testing.T) {
	rb := newRetryBudget(0.5)
	for i := 0; i < int(DefaultRetryBurst); i++ {
		if !rb.withdraw() {
			t.Fatalf("withdraw %d denied with the bucket starting full", i)
		}
	}
	if rb.withdraw() {
		t.Fatal("withdraw allowed from an empty bucket")
	}
	rb.onRequest()
	rb.onRequest() // 2 requests * 0.5 = 1 token
	if !rb.withdraw() {
		t.Fatal("withdraw denied after refill reached one token")
	}
	if rb.withdraw() {
		t.Fatal("second withdraw allowed with the refill spent")
	}
	// Refill never exceeds the cap.
	for i := 0; i < 100; i++ {
		rb.onRequest()
	}
	for i := 0; i < int(DefaultRetryBurst); i++ {
		if !rb.withdraw() {
			t.Fatalf("withdraw %d denied after refilling to cap", i)
		}
	}
	if rb.withdraw() {
		t.Fatal("bucket held more than its cap")
	}
}

// refill < 0 disables the budget: every withdraw is allowed.
func TestRetryBudgetDisabled(t *testing.T) {
	rb := newRetryBudget(-1)
	for i := 0; i < 1000; i++ {
		if !rb.withdraw() {
			t.Fatal("disabled budget denied a retry")
		}
	}
}
