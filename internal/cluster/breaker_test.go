package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// The full happy-path cycle: closed -> open at threshold -> half-open after
// cooldown (one probe slot) -> closed on probe success.
func TestBreakerTripAndRecover(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(3, time.Second, clk.now)

	if !b.admits() || !b.allow() {
		t.Fatal("fresh breaker must admit")
	}
	if b.onFailure() {
		t.Fatal("failure 1 must not trip at threshold 3")
	}
	if b.onFailure() {
		t.Fatal("failure 2 must not trip at threshold 3")
	}
	if !b.onFailure() {
		t.Fatal("failure 3 must trip")
	}
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("state after trip = %d, want open", got)
	}
	if b.admits() || b.allow() {
		t.Fatal("open breaker inside cooldown must deny")
	}

	clk.advance(time.Second)
	if !b.admits() {
		t.Fatal("open breaker past cooldown must admit (for ordering)")
	}
	if !b.allow() {
		t.Fatal("first allow past cooldown must claim the half-open probe")
	}
	if got := b.snapshot(); got != breakerHalfOpen {
		t.Fatalf("state after probe claim = %d, want half-open", got)
	}
	if b.allow() {
		t.Fatal("second allow must be denied while the probe is in flight")
	}
	b.onSuccess()
	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("state after probe success = %d, want closed", got)
	}
	if !b.allow() {
		t.Fatal("closed breaker must admit")
	}
}

// A failed half-open probe re-opens the breaker for a fresh cooldown, and
// does not count as a new trip.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Second, clk.now)

	if !b.onFailure() {
		t.Fatal("failure must trip at threshold 1")
	}
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("probe must be admitted past cooldown")
	}
	if b.onFailure() {
		t.Fatal("failed probe must not count as a second trip")
	}
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("state after failed probe = %d, want open", got)
	}
	// The cooldown restarts from the probe failure, not the original trip.
	clk.advance(500 * time.Millisecond)
	if b.allow() {
		t.Fatal("breaker must stay closed to traffic inside the restarted cooldown")
	}
	clk.advance(500 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker must admit a new probe after the restarted cooldown")
	}
}

// A canceled half-open attempt (hedge loser) returns the probe slot instead
// of leaking it.
func TestBreakerCancelFreesProbeSlot(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(1, time.Second, clk.now)
	b.onFailure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("probe must be admitted")
	}
	if b.allow() {
		t.Fatal("probe slot must be exclusive")
	}
	b.onCancel()
	if !b.allow() {
		t.Fatal("canceled probe must free the slot for the next attempt")
	}
}

// A success while closed resets the consecutive-failure count.
func TestBreakerSuccessResetsFailures(t *testing.T) {
	b := newBreaker(2, time.Second, nil)
	b.onFailure()
	b.onSuccess()
	if b.onFailure() {
		t.Fatal("first failure after a success must not trip at threshold 2")
	}
	if !b.onFailure() {
		t.Fatal("second consecutive failure must trip")
	}
}

// threshold <= 0 disables the breaker entirely.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second, nil)
	for i := 0; i < 100; i++ {
		if b.onFailure() {
			t.Fatal("disabled breaker must never trip")
		}
	}
	if !b.admits() || !b.allow() {
		t.Fatal("disabled breaker must always admit")
	}
	if b.snapshot() != breakerClosed {
		t.Fatal("disabled breaker must report closed")
	}
}

// Hammer every transition concurrently; run with -race. The assertion is
// only that the final state is one of the three valid states — the value of
// the test is the race detector over the mutex discipline.
func TestBreakerConcurrent(t *testing.T) {
	b := newBreaker(5, time.Millisecond, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch (g + i) % 5 {
				case 0:
					b.allow()
				case 1:
					b.onFailure()
				case 2:
					b.onSuccess()
				case 3:
					b.onCancel()
				case 4:
					b.admits()
				}
			}
		}(g)
	}
	wg.Wait()
	if s := b.snapshot(); s != breakerClosed && s != breakerHalfOpen && s != breakerOpen {
		t.Fatalf("invalid final state %d", s)
	}
}
