// Gray-failure drills for the router's resilience layer: hung shards
// bounded by TryTimeout, breakers tripping and recovering, hedged reads,
// the retry budget, replica append-failure reporting, and anti-entropy
// repair — all against real shard servers, with the chaos proxy standing
// in for the misbehaving ones.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sourcecurrents/internal/chaos"
	"sourcecurrents/internal/server"
	"sourcecurrents/internal/session"
)

// listenLocal grabs an ephemeral loopback port, so a fixture's address is
// known before anything serves on it (placement and chaos upstreams need
// the addresses first).
func listenLocal(t testing.TB) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// bootShardOn is bootShard over a pre-created listener.
func bootShardOn(t testing.TB, dir string, ln net.Listener) *shardFixture {
	t.Helper()
	cfg := session.DefaultConfig()
	reg, err := server.LoadDirAllowEmpty(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(server.New(reg, server.Options{AdoptDir: dir, SessionCfg: cfg}))
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	t.Cleanup(ts.Close)
	return &shardFixture{ts: ts, addr: strings.TrimPrefix(ts.URL, "http://"), reg: reg}
}

// datasetWithPrimary finds a dataset name the ring places with the wanted
// address as primary.
func datasetWithPrimary(t testing.TB, addrs []string, rf int, want string) string {
	t.Helper()
	ring := NewRing(addrs, 0)
	for i := 0; i < 1024; i++ {
		name := fmt.Sprintf("w%03d", i)
		if p := ring.Place(name, rf); len(p) > 0 && p[0] == want {
			return name
		}
	}
	t.Fatalf("no dataset name maps its primary onto %s", want)
	return ""
}

// Regression for the unbounded default proxy client: a shard that accepts
// connections and never answers must cost at most one TryTimeout before the
// read fails over — not hang the client forever.
func TestRouterTryTimeoutHungShard(t *testing.T) {
	hung := listenLocal(t)
	defer hung.Close()
	var heldMu sync.Mutex
	var held []net.Conn
	go func() {
		for {
			c, err := hung.Accept()
			if err != nil {
				return
			}
			heldMu.Lock()
			held = append(held, c)
			heldMu.Unlock()
		}
	}()
	defer func() {
		heldMu.Lock()
		for _, c := range held {
			c.Close()
		}
		heldMu.Unlock()
	}()

	ln := listenLocal(t)
	addrs := []string{hung.Addr().String(), ln.Addr().String()}
	const tryTimeout = 200 * time.Millisecond
	ds := datasetWithPrimary(t, addrs, 2, hung.Addr().String())
	dir := t.TempDir()
	writeWorldSnap(t, dir, ds, 11, 30)
	bootShardOn(t, dir, ln)

	rt, err := NewRouter(addrs, Options{
		RF: 2, TryTimeout: tryTimeout,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		BreakerThreshold: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	// A gray-failing shard looks healthy to the prober right up until it
	// hangs; force that view so the read path actually tries it first.
	hs := rt.shardFor(hung.Addr().String())
	hs.ready.Store(true)
	hs.datasets.Store(map[string]bool{ds: true})

	start := time.Now()
	resp, body := doReq(t, rt, http.MethodPost, "/v1/"+ds+"/answer", answerReq)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read status %d: %s", resp.StatusCode, body)
	}
	if elapsed < tryTimeout {
		t.Fatalf("read finished in %v — the hung primary was never tried (fixture bug)", elapsed)
	}
	if elapsed > tryTimeout+800*time.Millisecond {
		t.Fatalf("read took %v, want ~TryTimeout (%v) before failover", elapsed, tryTimeout)
	}
	if got := rt.met.retries.Load(); got == 0 {
		t.Fatal("retries counter = 0, want > 0 after a timed-out primary")
	}
	if got := rt.met.shard(hung.Addr().String()).timeouts.Load(); got == 0 {
		t.Fatal("per-shard timeout counter = 0, want > 0 for the hung shard")
	}
}

// A shard that keeps erroring trips its breaker after BreakerThreshold
// consecutive failures; while open the replica serves without the failing
// shard seeing traffic; after the fault lifts, the half-open probe closes
// the breaker and the shard serves golden bytes again.
func TestRouterBreakerTripsAndRecovers(t *testing.T) {
	ln0, ln1 := listenLocal(t), listenLocal(t)
	p, err := chaos.New("127.0.0.1:0", ln0.Addr().String(), chaos.Faults{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	addrs := []string{p.Addr(), ln1.Addr().String()}
	ds := datasetWithPrimary(t, addrs, 2, p.Addr())
	dir0, dir1 := t.TempDir(), t.TempDir()
	writeWorldSnap(t, dir0, ds, 11, 30)
	writeWorldSnap(t, dir1, ds, 11, 30)
	bootShardOn(t, dir0, ln0)
	sh1 := bootShardOn(t, dir1, ln1)

	rt, err := NewRouter(addrs, Options{
		RF: 2, TryTimeout: 2 * time.Second,
		BreakerThreshold: 2, BreakerCooldown: 250 * time.Millisecond,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		RetryRefill: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	readGolden := func(when string) []byte {
		t.Helper()
		resp, body := doReq(t, rt, http.MethodPost, "/v1/"+ds+"/answer", answerReq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: read status %d: %s", when, resp.StatusCode, body)
		}
		return body
	}
	_, golden := directReq(t, sh1.ts.URL, http.MethodPost, "/v1/"+ds+"/answer", answerReq)
	if got := readGolden("healthy"); !bytes.Equal(got, golden) {
		t.Fatalf("healthy routed bytes differ from direct:\n%s\n%s", got, golden)
	}

	p.SetFaults(chaos.Faults{ErrorProb: 1})
	for i := 0; i < 4; i++ {
		if got := readGolden("faulted"); !bytes.Equal(got, golden) {
			t.Fatalf("faulted read %d: bytes differ from golden", i)
		}
	}
	if rt.met.breakerTrips.Load() == 0 {
		t.Fatal("breaker never tripped after consecutive 503s")
	}
	ps := rt.shardFor(p.Addr())
	if got := ps.brk.snapshot(); got != breakerOpen {
		t.Fatalf("breaker state = %s, want open", breakerStateName(got))
	}
	// Inside the cooldown, reads go straight to the replica: the failing
	// shard sees no new traffic at all.
	before := p.Stats().Errors
	readGolden("breaker open")
	if got := p.Stats().Errors; got != before {
		t.Fatalf("open breaker still routed to the failing shard (%d -> %d errors)", before, got)
	}

	p.SetFaults(chaos.Faults{})
	deadline := time.Now().Add(5 * time.Second)
	for ps.brk.snapshot() != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after the fault lifted (state %s)",
				breakerStateName(ps.brk.snapshot()))
		}
		time.Sleep(60 * time.Millisecond)
		readGolden("recovering") // traffic drives the half-open probe
	}
	if got := readGolden("recovered"); !bytes.Equal(got, golden) {
		t.Fatal("recovered read diverges from golden")
	}
}

// With HedgeDelay set, a slow primary loses to a hedged replica read: the
// response arrives in hedge time, not primary time, and is still golden.
func TestRouterHedgedRead(t *testing.T) {
	ln0, ln1 := listenLocal(t), listenLocal(t)
	p, err := chaos.New("127.0.0.1:0", ln0.Addr().String(), chaos.Faults{LatencyMS: 400}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	addrs := []string{p.Addr(), ln1.Addr().String()}
	ds := datasetWithPrimary(t, addrs, 2, p.Addr())
	dir0, dir1 := t.TempDir(), t.TempDir()
	writeWorldSnap(t, dir0, ds, 11, 30)
	writeWorldSnap(t, dir1, ds, 11, 30)
	bootShardOn(t, dir0, ln0)
	sh1 := bootShardOn(t, dir1, ln1)

	rt, err := NewRouter(addrs, Options{
		RF: 2, TryTimeout: 2 * time.Second, HedgeDelay: 30 * time.Millisecond,
		BreakerThreshold: -1, RetryRefill: -1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)

	_, golden := directReq(t, sh1.ts.URL, http.MethodPost, "/v1/"+ds+"/answer", answerReq)
	start := time.Now()
	resp, body := doReq(t, rt, http.MethodPost, "/v1/"+ds+"/answer", answerReq)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, golden) {
		t.Fatal("hedged read diverges from golden")
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("read took %v — the hedge never beat the 400ms-slow primary", elapsed)
	}
	if rt.met.hedgesFired.Load() == 0 || rt.met.hedgeWins.Load() == 0 {
		t.Fatalf("hedge counters fired=%d wins=%d, want both > 0",
			rt.met.hedgesFired.Load(), rt.met.hedgeWins.Load())
	}
}

// When every shard is down, the retry budget caps total failover volume:
// the bucket (burst 10, refill 0.1/request) runs dry and later requests
// stop retrying instead of doubling the load on a dead fleet.
func TestRouterRetryBudgetExhausted(t *testing.T) {
	rt, shards := bootFleet(t, 2, map[string]int64{"alpha": 11}, Options{
		RF: 2, TryTimeout: 200 * time.Millisecond, BreakerThreshold: -1,
		RetryRefill: 0.1, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, Seed: 1,
	})
	for _, sh := range shards {
		sh.ts.CloseClientConnections()
		sh.ts.Close()
	}
	const reqs = 25
	for i := 0; i < reqs; i++ {
		resp, _ := doReq(t, rt, http.MethodPost, "/v1/alpha/answer", answerReq)
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("read %d succeeded against a dead fleet", i)
		}
	}
	if rt.met.budgetExhausted.Load() == 0 {
		t.Fatal("budget-exhausted counter = 0, want > 0 after draining the bucket")
	}
	// Burst 10 + 25 requests * 0.1 refill bounds total retries at 13.
	if got := rt.met.retries.Load(); got > 13 {
		t.Fatalf("retries = %d, want <= 13 (budget must bound the retry storm)", got)
	}
}

// A failed replica append fan-out is visible everywhere it should be: the
// response's replicas field, both failure counters, and the repair queue.
func TestRouterAppendReplicaFailureReported(t *testing.T) {
	rt, shards := bootFleet(t, 2, map[string]int64{"alpha": 11}, Options{
		RF: 2, TryTimeout: 500 * time.Millisecond,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond, Seed: 1,
	})
	placement := rt.Placement("alpha")
	for _, sh := range shards {
		if sh.addr == placement[1] {
			sh.ts.CloseClientConnections()
			sh.ts.Close()
		}
	}
	appendJSON := `{"claims":[{"source":"s_extra","entity":"o00000","attribute":"v","value":"zzz"}]}`
	resp, body := doReq(t, rt, http.MethodPost, "/v1/alpha/append", appendJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s (replica loss must not fail the write)", resp.StatusCode, body)
	}
	var ar struct {
		Epoch    uint64          `json:"epoch"`
		Replicas []ReplicaStatus `json:"replicas"`
	}
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", ar.Epoch)
	}
	if len(ar.Replicas) != 1 || ar.Replicas[0].Addr != placement[1] ||
		ar.Replicas[0].OK || ar.Replicas[0].Error == "" {
		t.Fatalf("replicas field = %+v, want one failed entry for %s", ar.Replicas, placement[1])
	}
	if got := rt.met.replicaAppErrs.Load(); got != 1 {
		t.Fatalf("replica append errors = %d, want 1", got)
	}
	if got := rt.repair.pendingCount(); got != 1 {
		t.Fatalf("repair queue = %d tasks, want 1", got)
	}
	_, met := doReq(t, rt, http.MethodGet, "/metrics", "")
	if !strings.Contains(string(met), "currents_replica_append_failures_total 1") {
		t.Fatalf("metrics missing currents_replica_append_failures_total 1:\n%s", met)
	}
}

// The anti-entropy scan finds a replica whose epoch trails its primary,
// re-streams the primary's snapshot over it, and converges it to
// byte-identical answers; the lag gauge returns to 0 and a second round is
// a no-op.
func TestRouterRepairConvergence(t *testing.T) {
	rt, shards := bootFleet(t, 2, map[string]int64{"alpha": 11}, Options{RF: 2})
	placement := rt.Placement("alpha")
	var primary, replica *shardFixture
	for _, sh := range shards {
		if sh.addr == placement[0] {
			primary = sh
		} else {
			replica = sh
		}
	}
	// Lazy registries learn their epoch on first load; force both loads so
	// /readyz reports epochs for the scan to compare.
	directReq(t, primary.ts.URL, http.MethodPost, "/v1/alpha/answer", answerReq)
	directReq(t, replica.ts.URL, http.MethodPost, "/v1/alpha/answer", answerReq)

	// Append straight to the primary, bypassing the router's fan-out — the
	// divergence a failed fan-out leaves behind.
	appendJSON := `{"claims":[{"source":"s_extra","entity":"o00000","attribute":"v","value":"zzz"}]}`
	dresp, dbody := directReq(t, primary.ts.URL, http.MethodPost, "/v1/alpha/append", appendJSON)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("direct append status %d: %s", dresp.StatusCode, dbody)
	}
	rt.probeAll() // refresh the epoch reports

	rt.repair.runOnce()
	if got := rt.met.repairs.Load(); got != 1 {
		t.Fatalf("repairs = %d, want 1 (errors=%d)", got, rt.met.repairErrs.Load())
	}
	if _, epoch, ok := replica.reg.GetWithEpoch("alpha"); !ok || epoch != 1 {
		t.Fatalf("replica epoch = %d (ok=%v), want 1 after repair", epoch, ok)
	}
	_, want := directReq(t, primary.ts.URL, http.MethodPost, "/v1/alpha/answer", answerReq)
	gresp, got := directReq(t, replica.ts.URL, http.MethodPost, "/v1/alpha/answer", answerReq)
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("healed replica answer status %d: %s", gresp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("healed replica diverges from primary:\n%s\n%s", got, want)
	}
	_, met := doReq(t, rt, http.MethodGet, "/metrics", "")
	lagLine := fmt.Sprintf("currents_replica_lag{dataset=\"alpha\",shard=%q} 0", replica.addr)
	if !strings.Contains(string(met), lagLine) {
		t.Fatalf("metrics missing %q:\n%s", lagLine, met)
	}
	rt.repair.runOnce()
	if got := rt.met.repairs.Load(); got != 1 {
		t.Fatalf("second repair round re-streamed (repairs=%d), want idempotent no-op", got)
	}
}

// With every resilience knob engaged and a healthy fleet, routed bytes stay
// golden-identical to direct shard bytes — the resilience layer adds
// failover, never content.
func TestRouterGoldenWithResilienceKnobs(t *testing.T) {
	rt, shards := bootFleet(t, 3, map[string]int64{"alpha": 11, "beta": 13}, Options{
		RF: 2, TryTimeout: 2 * time.Second, HedgeDelay: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: 10 * time.Millisecond,
		RetryRefill: 0.5, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Seed: 7,
	})
	cases := []struct{ method, path, body string }{
		{http.MethodPost, "/v1/alpha/answer", answerReq},
		{http.MethodPost, "/v1/beta/answer", answerReq},
		{http.MethodPost, "/v1/alpha/fuse", ""},
		{http.MethodGet, "/v1/alpha/accuracy", ""},
	}
	for iter := 0; iter < 3; iter++ {
		for _, c := range cases {
			resp, routed := doReq(t, rt, c.method, c.path, c.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("iter %d %s %s: status %d: %s", iter, c.method, c.path, resp.StatusCode, routed)
			}
			for i, sh := range shards {
				dresp, direct := directReq(t, sh.ts.URL, c.method, c.path, c.body)
				if dresp.StatusCode != http.StatusOK {
					t.Fatalf("shard %d status %d", i, dresp.StatusCode)
				}
				if !bytes.Equal(routed, direct) {
					t.Fatalf("iter %d %s %s: routed bytes differ from shard %d", iter, c.method, c.path, i)
				}
			}
		}
	}
}
