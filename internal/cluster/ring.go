// Package cluster is the multi-process serving layer: a consistent-hash
// ring that places datasets on shards, and an HTTP router that proxies the
// /v1/{dataset}/... API across a fleet of `currents server` processes —
// health-checking shards, failing reads over to replicas, forwarding
// appends to the primary and fanning them out, and rebalancing worlds by
// snapshot streaming when the ring changes.
//
// The ring is the only placement authority: the router, the shards' owner
// hints, and the rebalancer all derive placement from the same pure
// function of (shard set, dataset name), so every party agrees on who owns
// what without any coordination traffic.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per shard when Ring is built
// with vnodes <= 0. More virtual nodes smooth the key distribution and
// shrink per-shard load variance at a small memory cost (one 10-byte point
// per virtual node).
const DefaultVNodes = 128

// ringPoint is one virtual node: a position on the hash circle owned by a
// shard.
type ringPoint struct {
	hash  uint64
	shard int32 // index into Ring.shards
}

// Ring is an immutable consistent-hash ring over a set of shard addresses.
// Placement is a pure function of the shard set: the same addresses (in any
// input order) always produce the identical ring, and adding or removing
// one shard relocates only the keys whose arc it owned (~1/N of them).
// Build with NewRing; safe for concurrent use.
type Ring struct {
	shards []string
	points []ringPoint
}

// NewRing builds a ring over the given shard addresses. Duplicates are
// dropped and order is irrelevant — the shard set is canonicalized by
// sorting, so two routers configured with the same shards in different
// flag order place every dataset identically. vnodes <= 0 selects
// DefaultVNodes.
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(shards))
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s != "" && !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	r := &Ring{shards: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for i, s := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(s + "#" + strconv.Itoa(v)),
				shard: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash collisions between virtual nodes are broken by shard index so
		// the walk order stays deterministic regardless of input order.
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// hashKey is FNV-64a — stable across processes and Go versions, unlike
// maphash, which is the property placement needs — finished with a 64-bit
// avalanche mix. Raw FNV has weak high-bit diffusion on short, near-identical
// strings (the "addr#0".."addr#127" vnode family), which skews ring arcs
// badly: without the finalizer, one shard in eight owns 27% of the circle.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Shards returns the canonical (sorted, deduplicated) shard set.
func (r *Ring) Shards() []string {
	return append([]string(nil), r.shards...)
}

// Len returns the number of shards on the ring.
func (r *Ring) Len() int { return len(r.shards) }

// Place returns the rf distinct shards responsible for key, primary first:
// the walk starts at the first virtual node at or after the key's hash and
// collects shards in ring order. rf greater than the shard count returns
// every shard. An empty ring returns nil.
func (r *Ring) Place(key string, rf int) []string {
	if len(r.shards) == 0 || rf <= 0 {
		return nil
	}
	if rf > len(r.shards) {
		rf = len(r.shards)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, rf)
	taken := make(map[int32]bool, rf)
	for i := 0; i < len(r.points) && len(out) < rf; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.shard] {
			taken[p.shard] = true
			out = append(out, r.shards[p.shard])
		}
	}
	return out
}

// Primary returns the shard that owns key's writes (the head of its
// placement), or "" on an empty ring.
func (r *Ring) Primary(key string) string {
	p := r.Place(key, 1)
	if len(p) == 0 {
		return ""
	}
	return p[0]
}
