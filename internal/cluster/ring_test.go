package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func shardSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:9000", i+1)
	}
	return out
}

func keySet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("dataset-%04d", i)
	}
	return out
}

// Same shard set — in any input order, with duplicates — must produce the
// identical placement for every key: the router, the shards' owner hints,
// and the rebalancer each build their own Ring and have to agree.
func TestRingDeterminism(t *testing.T) {
	shards := shardSet(7)
	keys := keySet(500)
	base := NewRing(shards, 0)
	want := make([][]string, len(keys))
	for i, k := range keys {
		want[i] = base.Place(k, 3)
	}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		perm := append([]string(nil), shards...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if trial%2 == 1 {
			perm = append(perm, perm[rng.Intn(len(perm))]) // duplicate entry
		}
		r := NewRing(perm, 0)
		if !reflect.DeepEqual(r.Shards(), base.Shards()) {
			t.Fatalf("trial %d: canonical shard set %v != %v", trial, r.Shards(), base.Shards())
		}
		for i, k := range keys {
			if got := r.Place(k, 3); !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("trial %d: Place(%q) = %v, want %v", trial, k, got, want[i])
			}
		}
	}
}

// Adding or removing one shard must move only ~1/N of the keys: that is the
// consistent-hashing contract the rebalancer's snapshot-streaming cost
// depends on. The bound is generous (2.5x the ideal fraction) to absorb
// hash variance at 128 vnodes without ever tolerating modulo-style
// reshuffles, which move (N-1)/N of the keys.
func TestRingBoundedChurn(t *testing.T) {
	const nShards, nKeys, rf = 10, 2000, 2
	shards := shardSet(nShards)
	keys := keySet(nKeys)
	before := NewRing(shards, 0)

	churn := func(after *Ring, newN int) float64 {
		moved := 0
		for _, k := range keys {
			a, b := before.Place(k, rf), after.Place(k, rf)
			// A key churns when a shard present in both rings gained or lost
			// it; movement caused purely by the added/removed shard itself is
			// the unavoidable part.
			am := map[string]bool{}
			for _, s := range a {
				am[s] = true
			}
			same := 0
			for _, s := range b {
				if am[s] {
					same++
				}
			}
			if same < rf-1 { // more than the one expected replica changed
				moved++
			}
		}
		_ = newN
		return float64(moved) / float64(nKeys)
	}

	added := NewRing(append(append([]string(nil), shards...), "10.0.0.99:9000"), 0)
	if f := churn(added, nShards+1); f > 2.5/float64(nShards+1) {
		t.Fatalf("add-one churn %.3f exceeds bound %.3f", f, 2.5/float64(nShards+1))
	}
	removed := NewRing(shards[1:], 0)
	if f := churn(removed, nShards-1); f > 2.5/float64(nShards) {
		t.Fatalf("remove-one churn %.3f exceeds bound %.3f", f, 2.5/float64(nShards))
	}

	// And the direct primary-movement fractions: an added shard should own
	// roughly 1/(N+1) of the primaries, never a wholesale reshuffle.
	movedPrim := 0
	for _, k := range keys {
		if before.Primary(k) != added.Primary(k) {
			movedPrim++
		}
	}
	frac := float64(movedPrim) / float64(nKeys)
	if frac > 2.5/float64(nShards+1) {
		t.Fatalf("primary churn on add = %.3f, want <= %.3f", frac, 2.5/float64(nShards+1))
	}
	if movedPrim == 0 {
		t.Fatal("adding a shard moved zero primaries — the new shard owns nothing")
	}
}

// Placement balance: with 128 vnodes no shard should own a wildly
// disproportionate share of primaries.
func TestRingBalance(t *testing.T) {
	shards := shardSet(8)
	r := NewRing(shards, 0)
	counts := map[string]int{}
	for _, k := range keySet(4000) {
		counts[r.Primary(k)]++
	}
	ideal := 4000.0 / 8
	for s, n := range counts {
		if float64(n) < 0.4*ideal || float64(n) > 2.0*ideal {
			t.Fatalf("shard %s owns %d/4000 primaries (ideal %.0f) — ring is unbalanced", s, n, ideal)
		}
	}
}

func TestRingPlaceEdges(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Place("x", 2); got != nil {
		t.Fatalf("empty ring Place = %v, want nil", got)
	}
	if got := empty.Primary("x"); got != "" {
		t.Fatalf("empty ring Primary = %q, want \"\"", got)
	}

	r := NewRing(shardSet(3), 0)
	if got := r.Place("x", 0); got != nil {
		t.Fatalf("rf=0 Place = %v, want nil", got)
	}
	// rf beyond the shard count clamps to every shard, all distinct.
	got := r.Place("x", 10)
	if len(got) != 3 {
		t.Fatalf("rf=10 over 3 shards returned %d entries: %v", len(got), got)
	}
	seen := map[string]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate shard %s in placement %v", s, got)
		}
		seen[s] = true
	}
	// The placement walk is a rotation: placement[0] must equal Primary.
	if got[0] != r.Primary("x") {
		t.Fatalf("placement head %s != primary %s", got[0], r.Primary("x"))
	}
}
