package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// backoff produces exponentially growing delays with deterministic jitter
// from a seeded source: delay(n) = min(base<<(n-1), max) scaled by a
// uniform factor in [0.5, 1.5). The same seed yields the same sequence, so
// failover timing in tests and replayed incidents is reproducible.
type backoff struct {
	mu   sync.Mutex
	rng  *rand.Rand
	base time.Duration
	max  time.Duration
}

func newBackoff(base, max time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if seed == 0 {
		seed = 1
	}
	return &backoff{rng: rand.New(rand.NewSource(seed)), base: base, max: max}
}

// delay returns the jittered delay before retry n (n >= 1).
func (b *backoff) delay(n int) time.Duration {
	if n < 1 {
		n = 1
	}
	d := b.base
	for i := 1; i < n && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.mu.Lock()
	f := 0.5 + b.rng.Float64() // [0.5, 1.5)
	b.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// retryBudget is a token bucket that bounds how many failover retries the
// router may issue relative to its request volume, so a dead shard cannot
// amplify incoming load into a retry storm. Every incoming request deposits
// `refill` tokens (capped at `cap`); every retry withdraws one. When the
// bucket runs dry, failover stops and the last response is relayed as-is.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	refill float64 // tokens added per incoming request; <0 disables
}

func newRetryBudget(refill float64) *retryBudget {
	if refill == 0 {
		refill = DefaultRetryRefill
	}
	capTokens := DefaultRetryBurst
	return &retryBudget{tokens: capTokens, cap: capTokens, refill: refill}
}

func (rb *retryBudget) disabled() bool { return rb.refill < 0 }

// onRequest deposits the per-request refill.
func (rb *retryBudget) onRequest() {
	if rb.disabled() {
		return
	}
	rb.mu.Lock()
	rb.tokens += rb.refill
	if rb.tokens > rb.cap {
		rb.tokens = rb.cap
	}
	rb.mu.Unlock()
}

// withdraw takes one token, reporting whether the retry may proceed.
func (rb *retryBudget) withdraw() bool {
	if rb.disabled() {
		return true
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}
