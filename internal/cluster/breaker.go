package cluster

import (
	"sync"
	"time"
)

// Breaker states, exported on /metrics as currents_router_breaker_state.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breaker is a per-shard circuit breaker. It trips open after `threshold`
// consecutive failures; while open, the shard is deprioritized so requests
// fast-fail over to healthy replicas instead of eating a TryTimeout each.
// After `cooldown` the breaker admits a single half-open probe; the probe's
// outcome closes the breaker or re-opens it for another cooldown.
//
// The router separates *ordering* from *admission*: admits() is a read-only
// check used to sort candidates (an open breaker whose cooldown has elapsed
// orders normally, so probes happen under regular traffic), while allow()
// is called once per launched attempt and is what actually consumes the
// half-open probe slot. A canceled attempt (hedge loser) must call
// onCancel() so the probe slot is returned rather than leaked.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures to trip; <=0 disables
	cooldown  time.Duration // open -> half-open delay
	now       func() time.Time

	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

func (b *breaker) disabled() bool { return b.threshold <= 0 }

// admits reports whether an attempt against this shard would currently be
// admitted, without consuming anything. Used for candidate ordering only.
func (b *breaker) admits() bool {
	if b.disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return !b.probing
	default: // open
		return b.now().Sub(b.openedAt) >= b.cooldown
	}
}

// allow is called when an attempt is actually launched. It returns false if
// the attempt should be skipped (breaker open and cooling down, or the
// half-open probe slot is taken). On an open breaker whose cooldown has
// elapsed it transitions to half-open and claims the probe slot.
func (b *breaker) allow() bool {
	if b.disabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default: // open
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	}
}

// onSuccess records a successful attempt, closing the breaker.
func (b *breaker) onSuccess() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure records a failed attempt and reports whether this call tripped
// the breaker open (for the trip counter).
func (b *breaker) onFailure() (tripped bool) {
	if b.disabled() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		// Failed probe: back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		return false
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.failures = 0
			return true
		}
		return false
	default: // already open (e.g. a straggler attempt launched pre-trip)
		return false
	}
}

// onCancel records an attempt that was canceled before producing a verdict
// (a hedge loser). It only releases a held probe slot — canceled attempts
// say nothing about shard health.
func (b *breaker) onCancel() {
	if b.disabled() {
		return
	}
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// snapshot returns the current state for the /metrics gauge.
func (b *breaker) snapshot() int {
	if b.disabled() {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
