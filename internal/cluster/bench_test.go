package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sourcecurrents/internal/server"
	"sourcecurrents/internal/session"
)

// benchFleet boots 3 shards over one in-memory world plus a router, both
// wrapped in real HTTP servers so the routed and direct paths pay identical
// transport costs and the delta is purely the router hop.
func benchFleet(b *testing.B) (routerURL, shardURL, body string) {
	b.Helper()
	d := fleetWorld(b, 11, 40)
	addrs := make([]string, 3)
	for i := range addrs {
		s, err := session.New(d, session.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		reg := server.NewRegistry()
		if err := reg.Register("bench", s); err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(server.New(reg, server.Options{}))
		b.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
		if i == 0 {
			shardURL = ts.URL
		}
	}
	rt, err := NewRouter(addrs, Options{RF: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	rts := httptest.NewServer(rt)
	b.Cleanup(rts.Close)

	objs := d.Objects()
	var sb strings.Builder
	sb.WriteString(`{"query":[`)
	for i := 0; i < 5; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"entity":%q,"attribute":%q}`, objs[i].Entity, objs[i].Attribute)
	}
	sb.WriteString(`]}`)
	return rts.URL, shardURL, sb.String()
}

func benchPost(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status = %d", resp.StatusCode)
	}
}

// BenchmarkRouterAnswer pins the router hop's overhead: the routed/direct
// ns/op delta is what one proxy traversal (body buffering, placement,
// shard round trip, relay) adds on top of a shard answer. The perf guard
// holds the added latency under its budget.
func BenchmarkRouterAnswer(b *testing.B) {
	routerURL, shardURL, body := benchFleet(b)
	// One warm round trip each so connection setup and the shard's answer
	// cache are out of the measurement.
	benchPost(b, shardURL+"/v1/bench/answer", body)
	benchPost(b, routerURL+"/v1/bench/answer", body)

	b.Run("direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchPost(b, shardURL+"/v1/bench/answer", body)
		}
	})
	b.Run("routed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchPost(b, routerURL+"/v1/bench/answer", body)
		}
	})
}
