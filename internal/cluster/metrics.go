// Router-side metrics: per-shard request/error counters and latency
// histograms, failover and rebalance counters, and ring-state gauges, in
// Prometheus text format on the router's /metrics. Hand-rolled on
// sync/atomic like the shard server's instrument set, but with a dynamic
// label space — shards join and leave at runtime via /admin/ring — so the
// per-shard map is guarded by an RWMutex with a read-lock fast path.
package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// routerLatencyBuckets are the histogram upper bounds in seconds; the
// loadgen -router report estimates per-shard percentiles from them.
var routerLatencyBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// shardMetrics is one shard's proxy counters.
type shardMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	timeouts atomic.Int64
	buckets  [8]atomic.Int64
	sumNanos atomic.Int64
}

// routerMetrics is the router-wide instrument set.
type routerMetrics struct {
	mu       sync.RWMutex
	perShard map[string]*shardMetrics

	failovers       atomic.Int64
	retries         atomic.Int64
	hedgesFired     atomic.Int64
	hedgeWins       atomic.Int64
	budgetExhausted atomic.Int64
	breakerTrips    atomic.Int64
	replicaAppends  atomic.Int64
	replicaAppErrs  atomic.Int64
	rebalanceAdopts atomic.Int64
	rebalanceErrs   atomic.Int64
	repairs         atomic.Int64
	repairErrs      atomic.Int64
	ringChanges     atomic.Int64

	// lag is the repair loop's last anti-entropy scan: dataset -> shard ->
	// epochs behind the placement's max. Replaced wholesale per scan so a
	// healed replica's 0 is visible.
	lagMu sync.Mutex
	lag   map[string]map[string]uint64
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{perShard: make(map[string]*shardMetrics)}
}

// shardTimeout counts one per-try deadline expiry against a shard.
func (m *routerMetrics) shardTimeout(addr string) {
	m.shard(addr).timeouts.Add(1)
}

// setLag replaces the replica-lag gauge with a fresh scan.
func (m *routerMetrics) setLag(lag map[string]map[string]uint64) {
	m.lagMu.Lock()
	m.lag = lag
	m.lagMu.Unlock()
}

// shard returns (creating if needed) the counters for one shard address.
func (m *routerMetrics) shard(addr string) *shardMetrics {
	m.mu.RLock()
	sm, ok := m.perShard[addr]
	m.mu.RUnlock()
	if ok {
		return sm
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if sm, ok = m.perShard[addr]; ok {
		return sm
	}
	sm = &shardMetrics{}
	m.perShard[addr] = sm
	return sm
}

// observe records one proxied request against a shard.
func (m *routerMetrics) observe(addr string, d time.Duration, failed bool) {
	sm := m.shard(addr)
	sm.requests.Add(1)
	if failed {
		sm.errors.Add(1)
	}
	sm.sumNanos.Add(int64(d))
	secs := d.Seconds()
	for i, le := range routerLatencyBuckets {
		if secs <= le {
			sm.buckets[i].Add(1)
		}
	}
}

// shardStatus is one shard's health snapshot at scrape time, supplied by
// the router.
type shardStatus struct {
	addr     string
	ready    bool
	datasets int
	breaker  int // breakerClosed / breakerHalfOpen / breakerOpen
}

// write renders the Prometheus text exposition.
func (m *routerMetrics) write(w io.Writer, status []shardStatus) {
	m.mu.RLock()
	names := make([]string, 0, len(m.perShard))
	for addr := range m.perShard {
		names = append(names, addr)
	}
	shards := make(map[string]*shardMetrics, len(m.perShard))
	for addr, sm := range m.perShard {
		shards[addr] = sm
	}
	m.mu.RUnlock()
	sort.Strings(names)

	ready := 0
	for _, st := range status {
		if st.ready {
			ready++
		}
	}
	fmt.Fprintf(w, "# HELP currents_router_ring_shards Shards on the ring, by health state.\n")
	fmt.Fprintf(w, "# TYPE currents_router_ring_shards gauge\n")
	fmt.Fprintf(w, "currents_router_ring_shards{state=\"ready\"} %d\n", ready)
	fmt.Fprintf(w, "currents_router_ring_shards{state=\"down\"} %d\n", len(status)-ready)

	fmt.Fprintf(w, "# HELP currents_router_shard_ready Whether each shard answered its last readiness probe (1) or not (0).\n")
	fmt.Fprintf(w, "# TYPE currents_router_shard_ready gauge\n")
	sorted := append([]shardStatus(nil), status...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].addr < sorted[j].addr })
	for _, st := range sorted {
		v := 0
		if st.ready {
			v = 1
		}
		fmt.Fprintf(w, "currents_router_shard_ready{shard=%q} %d\n", st.addr, v)
	}
	fmt.Fprintf(w, "# HELP currents_router_shard_datasets Datasets reported by each shard's last readiness probe.\n")
	fmt.Fprintf(w, "# TYPE currents_router_shard_datasets gauge\n")
	for _, st := range sorted {
		fmt.Fprintf(w, "currents_router_shard_datasets{shard=%q} %d\n", st.addr, st.datasets)
	}

	fmt.Fprintf(w, "# HELP currents_router_ring_changes_total Ring reconfigurations accepted via /admin/ring.\n")
	fmt.Fprintf(w, "# TYPE currents_router_ring_changes_total counter\n")
	fmt.Fprintf(w, "currents_router_ring_changes_total %d\n", m.ringChanges.Load())

	fmt.Fprintf(w, "# HELP currents_router_failovers_total Reads retried on a replica after the preferred shard failed.\n")
	fmt.Fprintf(w, "# TYPE currents_router_failovers_total counter\n")
	fmt.Fprintf(w, "currents_router_failovers_total %d\n", m.failovers.Load())

	fmt.Fprintf(w, "# HELP currents_router_retries_total Failover retries issued on the read path.\n")
	fmt.Fprintf(w, "# TYPE currents_router_retries_total counter\n")
	fmt.Fprintf(w, "currents_router_retries_total %d\n", m.retries.Load())

	fmt.Fprintf(w, "# HELP currents_router_hedged_requests_total Hedged attempts fired after HedgeDelay.\n")
	fmt.Fprintf(w, "# TYPE currents_router_hedged_requests_total counter\n")
	fmt.Fprintf(w, "currents_router_hedged_requests_total %d\n", m.hedgesFired.Load())

	fmt.Fprintf(w, "# HELP currents_router_hedge_wins_total Hedged attempts that answered first.\n")
	fmt.Fprintf(w, "# TYPE currents_router_hedge_wins_total counter\n")
	fmt.Fprintf(w, "currents_router_hedge_wins_total %d\n", m.hedgeWins.Load())

	fmt.Fprintf(w, "# HELP currents_router_retry_budget_exhausted_total Reads that stopped failing over because the retry budget ran dry.\n")
	fmt.Fprintf(w, "# TYPE currents_router_retry_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "currents_router_retry_budget_exhausted_total %d\n", m.budgetExhausted.Load())

	fmt.Fprintf(w, "# HELP currents_router_breaker_trips_total Circuit breakers tripped open by consecutive failures.\n")
	fmt.Fprintf(w, "# TYPE currents_router_breaker_trips_total counter\n")
	fmt.Fprintf(w, "currents_router_breaker_trips_total %d\n", m.breakerTrips.Load())

	fmt.Fprintf(w, "# HELP currents_router_breaker_state Per-shard circuit breaker state (0 closed, 1 half-open, 2 open).\n")
	fmt.Fprintf(w, "# TYPE currents_router_breaker_state gauge\n")
	for _, st := range sorted {
		fmt.Fprintf(w, "currents_router_breaker_state{shard=%q} %d\n", st.addr, st.breaker)
	}

	fmt.Fprintf(w, "# HELP currents_router_replica_appends_total Append batches fanned out to replicas after the primary accepted.\n")
	fmt.Fprintf(w, "# TYPE currents_router_replica_appends_total counter\n")
	fmt.Fprintf(w, "currents_router_replica_appends_total %d\n", m.replicaAppends.Load())

	fmt.Fprintf(w, "# HELP currents_router_replica_append_errors_total Replica append fan-outs that failed (replica diverges until repaired).\n")
	fmt.Fprintf(w, "# TYPE currents_router_replica_append_errors_total counter\n")
	fmt.Fprintf(w, "currents_router_replica_append_errors_total %d\n", m.replicaAppErrs.Load())

	fmt.Fprintf(w, "# HELP currents_replica_append_failures_total Replica append fan-outs that failed; each enqueues a repair.\n")
	fmt.Fprintf(w, "# TYPE currents_replica_append_failures_total counter\n")
	fmt.Fprintf(w, "currents_replica_append_failures_total %d\n", m.replicaAppErrs.Load())

	fmt.Fprintf(w, "# HELP currents_router_repairs_total Lagging replicas healed by re-streaming a snapshot.\n")
	fmt.Fprintf(w, "# TYPE currents_router_repairs_total counter\n")
	fmt.Fprintf(w, "currents_router_repairs_total %d\n", m.repairs.Load())

	fmt.Fprintf(w, "# HELP currents_router_repair_errors_total Repair adoptions that failed and were re-queued with backoff.\n")
	fmt.Fprintf(w, "# TYPE currents_router_repair_errors_total counter\n")
	fmt.Fprintf(w, "currents_router_repair_errors_total %d\n", m.repairErrs.Load())

	m.lagMu.Lock()
	lag := m.lag
	m.lagMu.Unlock()
	fmt.Fprintf(w, "# HELP currents_replica_lag Epochs a placement member trails the placement's max, from the last anti-entropy scan.\n")
	fmt.Fprintf(w, "# TYPE currents_replica_lag gauge\n")
	lagDatasets := make([]string, 0, len(lag))
	for ds := range lag {
		lagDatasets = append(lagDatasets, ds)
	}
	sort.Strings(lagDatasets)
	for _, ds := range lagDatasets {
		addrs := make([]string, 0, len(lag[ds]))
		for addr := range lag[ds] {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		for _, addr := range addrs {
			fmt.Fprintf(w, "currents_replica_lag{dataset=%q,shard=%q} %d\n", ds, addr, lag[ds][addr])
		}
	}

	fmt.Fprintf(w, "# HELP currents_router_rebalance_adoptions_total Snapshot adoptions triggered by ring changes.\n")
	fmt.Fprintf(w, "# TYPE currents_router_rebalance_adoptions_total counter\n")
	fmt.Fprintf(w, "currents_router_rebalance_adoptions_total %d\n", m.rebalanceAdopts.Load())

	fmt.Fprintf(w, "# HELP currents_router_rebalance_errors_total Rebalance adoptions that failed.\n")
	fmt.Fprintf(w, "# TYPE currents_router_rebalance_errors_total counter\n")
	fmt.Fprintf(w, "currents_router_rebalance_errors_total %d\n", m.rebalanceErrs.Load())

	fmt.Fprintf(w, "# HELP currents_router_requests_total Requests proxied, by shard.\n")
	fmt.Fprintf(w, "# TYPE currents_router_requests_total counter\n")
	for _, addr := range names {
		fmt.Fprintf(w, "currents_router_requests_total{shard=%q} %d\n", addr, shards[addr].requests.Load())
	}
	fmt.Fprintf(w, "# HELP currents_router_request_errors_total Proxied requests that failed (transport error or status >= 500), by shard.\n")
	fmt.Fprintf(w, "# TYPE currents_router_request_errors_total counter\n")
	for _, addr := range names {
		fmt.Fprintf(w, "currents_router_request_errors_total{shard=%q} %d\n", addr, shards[addr].errors.Load())
	}
	fmt.Fprintf(w, "# HELP currents_router_shard_timeouts_total Proxied attempts that hit their per-try deadline, by shard.\n")
	fmt.Fprintf(w, "# TYPE currents_router_shard_timeouts_total counter\n")
	for _, addr := range names {
		fmt.Fprintf(w, "currents_router_shard_timeouts_total{shard=%q} %d\n", addr, shards[addr].timeouts.Load())
	}
	fmt.Fprintf(w, "# HELP currents_router_request_duration_seconds Proxied request latency, by shard.\n")
	fmt.Fprintf(w, "# TYPE currents_router_request_duration_seconds histogram\n")
	for _, addr := range names {
		sm := shards[addr]
		for i, le := range routerLatencyBuckets {
			fmt.Fprintf(w, "currents_router_request_duration_seconds_bucket{shard=%q,le=\"%g\"} %d\n",
				addr, le, sm.buckets[i].Load())
		}
		n := sm.requests.Load()
		fmt.Fprintf(w, "currents_router_request_duration_seconds_bucket{shard=%q,le=\"+Inf\"} %d\n", addr, n)
		fmt.Fprintf(w, "currents_router_request_duration_seconds_sum{shard=%q} %g\n",
			addr, float64(sm.sumNanos.Load())/1e9)
		fmt.Fprintf(w, "currents_router_request_duration_seconds_count{shard=%q} %d\n", addr, n)
	}
}
