// The fleet router: one http.Handler that fronts N `currents server`
// shards and exposes the same /v1/{dataset}/... API a single server does.
//
// Placement comes from the consistent-hash ring (ring.go): each dataset
// lives on rf shards, the first being its primary. Reads try the placement
// in order and fail over past shards that are down, erroring, or missing
// the world (mid-rebalance); appends go to the primary and, once accepted,
// fan out to the replicas so every copy advances through the same epochs.
// A background prober polls each shard's /readyz — which verifies every
// registered snapshot actually opens, not merely that the process is up —
// and the prober's dataset inventory doubles as the rebalance catalog:
// when /admin/ring changes the shard set, the router tells each shard that
// newly owns a world to adopt it by streaming a peer's snapshot.
//
// Gray failures — shards that hang, flap, or answer slowly rather than
// dying cleanly — are handled by a resilience layer on the proxy path:
// every try carries a deadline (TryTimeout) under the client's request
// context, failover retries back off exponentially with seeded
// deterministic jitter, a per-shard circuit breaker (breaker.go) fast-fails
// past shards that keep losing, an optional hedge fires the next replica
// after HedgeDelay and takes the first good answer, and a global retry
// budget (backoff.go) keeps failover from amplifying an outage into a
// retry storm. Replica append fan-out failures are reported in the append
// response and enqueued for repair: an anti-entropy loop (repair.go)
// compares per-dataset epochs across each placement and re-streams v2
// snapshots to lagging replicas.
//
// The router holds no dataset state of its own, so routed responses are
// byte-for-byte the shard's bytes — the golden suite pins routed answers
// to direct-shard answers, with and without the resilience knobs engaged.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes the router.
type Options struct {
	// RF is the replication factor: how many shards host each dataset.
	// Zero means DefaultRF.
	RF int
	// VNodes is the virtual-node count per shard (0 = DefaultVNodes).
	VNodes int
	// HealthInterval is the delay between readiness probe rounds once
	// Start is called (0 = DefaultHealthInterval).
	HealthInterval time.Duration
	// ProbeTimeout bounds one readiness probe (0 = DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// MaxRequestBytes caps buffered proxy request bodies (0 = 1 MiB).
	MaxRequestBytes int64
	// TryTimeout bounds one proxied attempt against one shard, so a hung
	// shard costs at most one deadline before failover (0 =
	// DefaultTryTimeout, <0 = no per-try deadline). Snapshot streams and
	// adoptions use RepairTimeout instead — they legitimately run long.
	TryTimeout time.Duration
	// HedgeDelay, when positive, fires a hedged attempt at the next read
	// replica after this delay; the first good answer wins and the loser
	// is canceled. Zero disables hedging.
	HedgeDelay time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// shard's circuit breaker (0 = DefaultBreakerThreshold, <0 = breakers
	// disabled).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a half-open probe (0 = DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// RetryRefill is the retry-budget refill per incoming request: the
	// router may issue roughly this fraction of its request volume as
	// failover retries, burst DefaultRetryBurst (0 = DefaultRetryRefill,
	// <0 = unlimited retries).
	RetryRefill float64
	// BackoffBase and BackoffMax bound the jittered exponential delay
	// between failover tries (0 = DefaultBackoffBase / DefaultBackoffMax).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives backoff jitter; the same seed yields the same delay
	// sequence (0 = 1).
	Seed int64
	// RepairInterval is the anti-entropy scan period: each scan compares
	// per-dataset epochs across the placement and re-streams snapshots to
	// lagging replicas (0 = DefaultRepairInterval, <0 = repair disabled).
	// The loop runs only after Start.
	RepairInterval time.Duration
	// RepairTimeout bounds one repair adoption — a full snapshot stream
	// (0 = DefaultRepairTimeout).
	RepairTimeout time.Duration
	// Client issues proxied requests and rebalance adoptions; nil uses a
	// dedicated client with pooled connections and no overall timeout
	// (per-try deadlines come from TryTimeout contexts instead).
	Client *http.Client
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// DefaultRF is the replication factor when Options.RF is zero.
const DefaultRF = 2

// DefaultHealthInterval is the readiness probe period.
const DefaultHealthInterval = 500 * time.Millisecond

// DefaultProbeTimeout bounds one readiness probe round trip.
const DefaultProbeTimeout = 2 * time.Second

// DefaultTryTimeout bounds one proxied attempt against one shard.
const DefaultTryTimeout = 2 * time.Second

// DefaultBreakerThreshold is the consecutive-failure trip count.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is the open -> half-open delay.
const DefaultBreakerCooldown = 2 * time.Second

// DefaultBackoffBase and DefaultBackoffMax bound failover retry delays.
const (
	DefaultBackoffBase = 25 * time.Millisecond
	DefaultBackoffMax  = 500 * time.Millisecond
)

// DefaultRetryRefill is the retry-budget refill per incoming request;
// DefaultRetryBurst is the bucket capacity.
const (
	DefaultRetryRefill = 0.2
	DefaultRetryBurst  = 10.0
)

// DefaultRepairInterval is the anti-entropy scan period.
const DefaultRepairInterval = 10 * time.Second

// DefaultRepairTimeout bounds one repair or rebalance snapshot adoption.
const DefaultRepairTimeout = 60 * time.Second

// shardState is the router's view of one shard, refreshed by the prober.
type shardState struct {
	addr  string
	ready atomic.Bool
	// datasets is the shard's inventory from its last successful probe
	// (map[string]bool); nil until first probed.
	datasets atomic.Value
	// epochs is the shard's per-dataset epoch report from its last
	// successful probe (map[string]uint64); nil until first probed.
	epochs atomic.Value
	// brk is the shard's circuit breaker; it survives ring changes so a
	// re-added shard keeps its history.
	brk *breaker
}

func (s *shardState) has(ds string) bool {
	m, _ := s.datasets.Load().(map[string]bool)
	return m[ds]
}

func (s *shardState) datasetCount() int {
	m, _ := s.datasets.Load().(map[string]bool)
	return len(m)
}

func (s *shardState) epochOf(ds string) (uint64, bool) {
	m, _ := s.epochs.Load().(map[string]uint64)
	e, ok := m[ds]
	return e, ok
}

// Router proxies the dataset API across a shard fleet. Create with
// NewRouter, optionally Start the background prober and repair loop, and
// Close when done. Safe for concurrent use.
type Router struct {
	opt     Options
	client  *http.Client
	probe   *http.Client
	met     *routerMetrics
	backoff *backoff
	budget  *retryBudget
	repair  *repairer

	mu     sync.RWMutex
	ring   *Ring
	shards map[string]*shardState

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup
}

// NewRouter builds a router over the given shard addresses (host:port) and
// synchronously probes each once, so a router over live shards routes
// immediately. Call Start to keep probing (and repairing) in the
// background.
func NewRouter(shardAddrs []string, opt Options) (*Router, error) {
	if opt.RF <= 0 {
		opt.RF = DefaultRF
	}
	if opt.HealthInterval <= 0 {
		opt.HealthInterval = DefaultHealthInterval
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = DefaultProbeTimeout
	}
	if opt.MaxRequestBytes <= 0 {
		opt.MaxRequestBytes = 1 << 20
	}
	switch {
	case opt.TryTimeout == 0:
		opt.TryTimeout = DefaultTryTimeout
	case opt.TryTimeout < 0:
		opt.TryTimeout = 0
	}
	switch {
	case opt.BreakerThreshold == 0:
		opt.BreakerThreshold = DefaultBreakerThreshold
	case opt.BreakerThreshold < 0:
		opt.BreakerThreshold = 0 // disabled
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = DefaultBreakerCooldown
	}
	switch {
	case opt.RepairInterval == 0:
		opt.RepairInterval = DefaultRepairInterval
	case opt.RepairInterval < 0:
		opt.RepairInterval = 0 // disabled
	}
	if opt.RepairTimeout <= 0 {
		opt.RepairTimeout = DefaultRepairTimeout
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
		}}
	}
	ring := NewRing(shardAddrs, opt.VNodes)
	if ring.Len() == 0 {
		return nil, errors.New("cluster: router needs at least one shard")
	}
	rt := &Router{
		opt:     opt,
		client:  client,
		probe:   &http.Client{Timeout: opt.ProbeTimeout},
		met:     newRouterMetrics(),
		backoff: newBackoff(opt.BackoffBase, opt.BackoffMax, opt.Seed),
		budget:  newRetryBudget(opt.RetryRefill),
		ring:    ring,
		shards:  make(map[string]*shardState, ring.Len()),
		done:    make(chan struct{}),
	}
	rt.repair = newRepairer(rt)
	for _, addr := range ring.Shards() {
		rt.shards[addr] = rt.newShardState(addr)
	}
	rt.probeAll()
	return rt, nil
}

func (rt *Router) newShardState(addr string) *shardState {
	return &shardState{
		addr: addr,
		brk:  newBreaker(rt.opt.BreakerThreshold, rt.opt.BreakerCooldown, nil),
	}
}

// Start launches the background readiness prober and, when RepairInterval
// is positive, the anti-entropy repair loop.
func (rt *Router) Start() {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(rt.opt.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.done:
				return
			case <-t.C:
				rt.probeAll()
			}
		}
	}()
	if rt.opt.RepairInterval > 0 {
		rt.startRepair()
	}
}

// Close stops the prober and repair loop. Idempotent.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.done) })
	rt.wg.Wait()
}

// shardList snapshots the current shard states.
func (rt *Router) shardList() []*shardState {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*shardState, 0, len(rt.shards))
	for _, s := range rt.shards {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// shardFor returns the live state for one address, or nil if the address
// left the ring.
func (rt *Router) shardFor(addr string) *shardState {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.shards[addr]
}

// probeAll refreshes every shard's readiness and inventory, in parallel.
func (rt *Router) probeAll() {
	shards := rt.shardList()
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			rt.probeShard(s)
		}(s)
	}
	wg.Wait()
}

// probeShard polls one shard's /readyz: 200 means every registered world
// is verified loadable, and the response carries the dataset inventory and
// per-dataset epochs (the repair loop's lag signal). Any other status —
// including a 503 "loading" — leaves the shard out of the routing set
// until it verifies.
func (rt *Router) probeShard(s *shardState) {
	resp, err := rt.probe.Get("http://" + s.addr + "/readyz")
	if err != nil {
		if s.ready.CompareAndSwap(true, false) {
			rt.opt.Logf("shard %s down: %v", s.addr, err)
		}
		return
	}
	defer resp.Body.Close()
	var rr struct {
		Datasets []string          `json:"datasets"`
		Epochs   map[string]uint64 `json:"epochs"`
	}
	dec := json.NewDecoder(io.LimitReader(resp.Body, 1<<20))
	_ = dec.Decode(&rr)
	if resp.StatusCode != http.StatusOK {
		if s.ready.CompareAndSwap(true, false) {
			rt.opt.Logf("shard %s not ready (status %d)", s.addr, resp.StatusCode)
		}
		return
	}
	inv := make(map[string]bool, len(rr.Datasets))
	for _, ds := range rr.Datasets {
		inv[ds] = true
	}
	s.datasets.Store(inv)
	if rr.Epochs == nil {
		rr.Epochs = map[string]uint64{}
	}
	s.epochs.Store(rr.Epochs)
	if s.ready.CompareAndSwap(false, true) {
		rt.opt.Logf("shard %s ready (%d datasets)", s.addr, len(inv))
	}
}

// Placement returns the rf shards responsible for a dataset, primary
// first.
func (rt *Router) Placement(dataset string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Place(dataset, rt.opt.RF)
}

// OwnerOf reports the primary shard for a dataset — the hint shards embed
// in their unknown-dataset 404s.
func (rt *Router) OwnerOf(dataset string) (string, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	p := rt.ring.Primary(dataset)
	return p, p != ""
}

// catalog returns the union of every shard's probed inventory, sorted.
func (rt *Router) catalog() []string {
	seen := map[string]bool{}
	for _, s := range rt.shardList() {
		if m, _ := s.datasets.Load().(map[string]bool); m != nil {
			for ds := range m {
				seen[ds] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for ds := range seen {
		out = append(out, ds)
	}
	sort.Strings(out)
	return out
}

// ServeHTTP routes: the router's own /healthz and /metrics, the /admin/ring
// control endpoint, and the proxied /v1/{dataset}/{op} API.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		rt.handleHealth(w, r)
		return
	case "/metrics":
		rt.handleMetrics(w, r)
		return
	case "/admin/ring":
		rt.handleAdminRing(w, r)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		rt.proxy(w, r)
		return
	}
	writeJSON(w, http.StatusNotFound,
		map[string]string{"error": "not found (try /healthz, /metrics, /admin/ring, /v1/{dataset}/{op})"})
}

// ShardHealth is one shard's state in the router's /healthz payload.
type ShardHealth struct {
	Addr     string   `json:"addr"`
	Ready    bool     `json:"ready"`
	Breaker  string   `json:"breaker"`
	Datasets []string `json:"datasets,omitempty"`
}

// RouterHealth is the router's /healthz payload.
type RouterHealth struct {
	Status string        `json:"status"`
	RF     int           `json:"rf"`
	Shards []ShardHealth `json:"shards"`
	// Placements maps every cataloged dataset to its placement, primary
	// first — the fleet's routing table at a glance.
	Placements map[string][]string `json:"placements,omitempty"`
}

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
		return
	}
	h := RouterHealth{Status: "ok", RF: rt.opt.RF}
	for _, s := range rt.shardList() {
		sh := ShardHealth{Addr: s.addr, Ready: s.ready.Load(), Breaker: breakerStateName(s.brk.snapshot())}
		if m, _ := s.datasets.Load().(map[string]bool); len(m) > 0 {
			sh.Datasets = make([]string, 0, len(m))
			for ds := range m {
				sh.Datasets = append(sh.Datasets, ds)
			}
			sort.Strings(sh.Datasets)
		}
		h.Shards = append(h.Shards, sh)
	}
	if cat := rt.catalog(); len(cat) > 0 {
		h.Placements = make(map[string][]string, len(cat))
		for _, ds := range cat {
			h.Placements[ds] = rt.Placement(ds)
		}
	}
	writeJSON(w, http.StatusOK, h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
		return
	}
	status := make([]shardStatus, 0)
	for _, s := range rt.shardList() {
		status = append(status, shardStatus{
			addr:     s.addr,
			ready:    s.ready.Load(),
			datasets: s.datasetCount(),
			breaker:  s.brk.snapshot(),
		})
	}
	var sb strings.Builder
	rt.met.write(&sb, status)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, sb.String())
}

// AdminRingRequest reconfigures the shard set.
type AdminRingRequest struct {
	Shards []string `json:"shards"`
}

// Move is one rebalance action: dataset adopted onto To by streaming From's
// snapshot.
type Move struct {
	Dataset string `json:"dataset"`
	To      string `json:"to"`
	From    string `json:"from"`
	Error   string `json:"error,omitempty"`
}

// AdminRingResponse reports the accepted shard set and the rebalance moves
// it triggered.
type AdminRingResponse struct {
	Shards []string `json:"shards"`
	RF     int      `json:"rf"`
	Moves  []Move   `json:"moves"`
}

func (rt *Router) handleAdminRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var req AdminRingRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad ring request: " + err.Error()})
		return
	}
	if len(req.Shards) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "ring needs at least one shard"})
		return
	}
	moves := rt.SetShards(req.Shards)
	resp := AdminRingResponse{RF: rt.opt.RF, Moves: moves}
	rt.mu.RLock()
	resp.Shards = rt.ring.Shards()
	rt.mu.RUnlock()
	if resp.Moves == nil {
		resp.Moves = []Move{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// SetShards replaces the ring's shard set and rebalances: every dataset
// whose new placement includes a shard that does not hold it yet is
// adopted there by streaming a current holder's snapshot. Returns the
// executed moves. New shards are probed synchronously first, so a shard
// that just booted empty participates immediately. Shards that stay on the
// ring keep their state — breakers included.
func (rt *Router) SetShards(addrs []string) []Move {
	ring := NewRing(addrs, rt.opt.VNodes)
	rt.mu.Lock()
	rt.ring = ring
	next := make(map[string]*shardState, ring.Len())
	for _, addr := range ring.Shards() {
		if s, ok := rt.shards[addr]; ok {
			next[addr] = s
		} else {
			next[addr] = rt.newShardState(addr)
		}
	}
	rt.shards = next
	rt.mu.Unlock()
	rt.met.ringChanges.Add(1)
	rt.opt.Logf("ring set to %d shard(s): %s", ring.Len(), strings.Join(ring.Shards(), ","))
	rt.probeAll()
	return rt.Rebalance()
}

// Rebalance walks the catalog (the union of every shard's probed
// inventory) and pulls each dataset onto the placement shards that lack
// it, streaming a holder's snapshot via the shard adopt endpoint. Safe to
// call repeatedly; adoption is idempotent on the shard side.
func (rt *Router) Rebalance() []Move {
	shards := rt.shardList()
	holders := map[string][]string{} // dataset -> shards holding it, sorted
	for _, s := range shards {
		if m, _ := s.datasets.Load().(map[string]bool); m != nil {
			for ds := range m {
				holders[ds] = append(holders[ds], s.addr)
			}
		}
	}
	catalog := make([]string, 0, len(holders))
	for ds := range holders {
		sort.Strings(holders[ds])
		catalog = append(catalog, ds)
	}
	sort.Strings(catalog)

	byAddr := make(map[string]*shardState, len(shards))
	for _, s := range shards {
		byAddr[s.addr] = s
	}
	var moves []Move
	adopted := map[string]bool{} // addrs that gained worlds, re-probed below
	for _, ds := range catalog {
		for _, target := range rt.Placement(ds) {
			ts := byAddr[target]
			if ts == nil || ts.has(ds) {
				continue
			}
			src := pickSource(holders[ds], byAddr)
			if src == "" {
				continue
			}
			mv := Move{Dataset: ds, To: target, From: src}
			if err := rt.adopt(target, ds, src, false); err != nil {
				mv.Error = err.Error()
				rt.met.rebalanceErrs.Add(1)
				rt.opt.Logf("rebalance: adopt %s onto %s from %s: %v", ds, target, src, err)
			} else {
				rt.met.rebalanceAdopts.Add(1)
				adopted[target] = true
				rt.opt.Logf("rebalance: adopted %s onto %s from %s", ds, target, src)
			}
			moves = append(moves, mv)
		}
	}
	for addr := range adopted {
		if s := byAddr[addr]; s != nil {
			rt.probeShard(s)
		}
	}
	return moves
}

// pickSource prefers a ready holder; any holder otherwise.
func pickSource(holding []string, byAddr map[string]*shardState) string {
	for _, addr := range holding {
		if s := byAddr[addr]; s != nil && s.ready.Load() {
			return addr
		}
	}
	if len(holding) > 0 {
		return holding[0]
	}
	return ""
}

// adopt tells target to pull dataset from src's snapshot stream, bounded
// by RepairTimeout. replace re-streams over an existing (lagging) world.
func (rt *Router) adopt(target, dataset, src string, replace bool) error {
	from := "http://" + src + "/v1/" + dataset + "/snapshot"
	u := "http://" + target + "/v1/" + dataset + "/adopt?from=" + url.QueryEscape(from)
	if replace {
		u += "&replace=1"
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.opt.RepairTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("adopt: shard answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// proxy forwards one /v1/{dataset}/{op} request to the dataset's placement.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/")
	name, op, ok := strings.Cut(rest, "/")
	if !ok || name == "" || op == "" {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "not found: want /v1/{dataset}/{op}"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opt.MaxRequestBytes))
	if err != nil {
		var maxErr *http.MaxBytesError
		status := http.StatusBadRequest
		if errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	placement := rt.Placement(name)
	if len(placement) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no shards on the ring"})
		return
	}
	if op == "append" || op == "adopt" {
		rt.proxyWrite(w, r, name, op, placement, body)
		return
	}
	if op == "snapshot" {
		// Whole-world snapshots stream through without buffering; routing
		// them through the buffered read path would hold entire worlds in
		// router memory under concurrent pulls.
		rt.proxySnapshot(w, r, placement, body)
		return
	}
	rt.proxyRead(w, r, op, placement, body)
}

// maxRelayBytes caps a buffered shard response on the routed read/write
// path. Snapshot streams never pass through the buffer (proxySnapshot
// relays them without materializing the body); every other operation
// answers JSON, so anything larger than this is a fault, not a payload.
const maxRelayBytes = 32 << 20

// snapshotCRCHeader mirrors server.SnapshotCRCHeader, which the adopting
// side verifies end to end (the cluster package deliberately does not
// import server).
const snapshotCRCHeader = "X-Snapshot-CRC32"

// shardShoot issues the routed request against one shard under ctx and
// returns the raw response with its body unread — the shared first half of
// the buffered (shardRequest) and streaming (proxySnapshot) relays.
func (rt *Router) shardShoot(ctx context.Context, r *http.Request, addr string, body []byte) (*http.Response, error) {
	u := "http://" + addr + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return rt.client.Do(req)
}

// shardRequest issues the request against one shard under ctx and returns
// the full response. A nil error with any status is a shard answer; an
// error is a transport failure. Canceled attempts (hedge losers, client
// gone) return without touching metrics — they say nothing about the
// shard; deadline expiries count on the per-shard timeout counter.
func (rt *Router) shardRequest(ctx context.Context, r *http.Request, addr string, body []byte) (*http.Response, []byte, error) {
	start := time.Now()
	resp, err := rt.shardShoot(ctx, r, addr, body)
	if err == nil {
		var respBody []byte
		respBody, err = io.ReadAll(io.LimitReader(resp.Body, maxRelayBytes+1))
		resp.Body.Close()
		if err == nil && len(respBody) > maxRelayBytes {
			err = fmt.Errorf("shard %s: response exceeds the %d-byte relay cap", addr, maxRelayBytes)
		}
		if err == nil {
			rt.met.observe(addr, time.Since(start), resp.StatusCode >= 500)
			return resp, respBody, nil
		}
	}
	if errors.Is(err, context.Canceled) {
		return nil, nil, err
	}
	if errors.Is(err, context.DeadlineExceeded) {
		rt.met.shardTimeout(addr)
	}
	rt.met.observe(addr, time.Since(start), true)
	return nil, nil, err
}

// retriable reports whether a shard answer should fail over to the next
// replica: server-side failures, and 404s (the world may not have reached
// this shard yet mid-rebalance, while a replica still serves it).
func retriable(status int) bool {
	return status >= 500 || status == http.StatusNotFound
}

// readCandidates orders a placement for attempts: ready shards whose
// breaker admits first, then down-marked ones (the prober's view may be
// stale), then breaker-denied shards as the very last resort. Ordering
// uses the read-only admits() so an open breaker whose cooldown elapsed
// sorts normally and the launch-time allow() performs its half-open
// transition under regular traffic.
func (rt *Router) readCandidates(placement []string) []*shardState {
	rt.mu.RLock()
	states := make([]*shardState, 0, len(placement))
	for _, addr := range placement {
		if s := rt.shards[addr]; s != nil {
			states = append(states, s)
		}
	}
	rt.mu.RUnlock()
	out := make([]*shardState, 0, len(states))
	var down, denied, downDenied []*shardState
	for _, s := range states {
		admits := s.brk.admits()
		ready := s.ready.Load()
		switch {
		case ready && admits:
			out = append(out, s)
		case admits:
			down = append(down, s)
		case ready:
			denied = append(denied, s)
		default:
			downDenied = append(downDenied, s)
		}
	}
	out = append(out, down...)
	out = append(out, denied...)
	return append(out, downDenied...)
}

// attemptResult is one shard attempt's outcome.
type attemptResult struct {
	s        *shardState
	hedged   bool
	resp     *http.Response
	body     []byte
	err      error
	canceled bool
}

// settleVerdict applies an attempt's outcome to its shard's breaker —
// shared by the read loop and the post-return reaper that drains attempts
// still in flight when a winner was already relayed.
func (rt *Router) settleVerdict(res attemptResult) {
	switch {
	case res.canceled:
		res.s.brk.onCancel()
	case res.err != nil:
		if res.s.brk.onFailure() {
			rt.met.breakerTrips.Add(1)
			rt.opt.Logf("breaker open: shard %s", res.s.addr)
		}
	case res.resp.StatusCode >= 500:
		if res.s.brk.onFailure() {
			rt.met.breakerTrips.Add(1)
			rt.opt.Logf("breaker open: shard %s", res.s.addr)
		}
	default:
		// Any non-5xx answer (404 included) proves the shard responsive.
		res.s.brk.onSuccess()
	}
}

// proxyRead forwards a read across the placement with per-try deadlines,
// jittered backoff between failover tries, breaker-aware ordering, and an
// optional hedged second attempt. The first non-retriable answer wins and
// is relayed byte-for-byte; losers run out their per-try deadline in the
// background so the breaker still learns from them. When every attempt fails
// the most informative response wins: the last shard answer if any, else
// 502.
func (rt *Router) proxyRead(w http.ResponseWriter, r *http.Request, op string, placement []string, body []byte) {
	rt.budget.onRequest()
	cands := rt.readCandidates(placement)
	if len(cands) == 0 {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "no shard could serve the request"})
		return
	}
	ctx := r.Context()
	tryTimeout := rt.opt.TryTimeout
	hedgeDelay := rt.opt.HedgeDelay

	results := make(chan attemptResult, len(cands))
	var cancels []context.CancelFunc
	inflight := 0
	next := 0

	// launch starts an attempt against the next candidate whose breaker
	// admits it; a denied candidate is only forced when skipping it would
	// leave the request with no attempt at all (the forced try doubles as
	// the breaker probe). Reports whether an attempt started.
	launch := func(hedged bool) bool {
		for next < len(cands) {
			s := cands[next]
			next++
			lastResort := next == len(cands) && inflight == 0
			if !s.brk.allow() && !lastResort {
				continue
			}
			actx, cancel := context.WithCancel(ctx)
			if tryTimeout > 0 {
				// Detached from the request context on purpose: an attempt
				// that loses to a hedge keeps running to its own per-try
				// deadline so its verdict still settles on the breaker — a
				// canceled attempt says nothing, and under pure hedged
				// traffic a blackholed shard would otherwise never
				// accumulate a single failure. The deadline bounds the
				// straggler; a gone client cancels through the cleanup path.
				actx, cancel = context.WithTimeout(context.Background(), tryTimeout)
			}
			cancels = append(cancels, cancel)
			inflight++
			if hedged {
				rt.met.hedgesFired.Add(1)
			}
			go func(s *shardState, hedged bool) {
				resp, respBody, err := rt.shardRequest(actx, r, s.addr, body)
				results <- attemptResult{
					s: s, hedged: hedged, resp: resp, body: respBody, err: err,
					canceled: err != nil && errors.Is(err, context.Canceled),
				}
			}(s, hedged)
			return true
		}
		return false
	}

	relayed := false
	var retryTimer, hedgeTimer *time.Timer
	var retryC, hedgeC <-chan time.Time
	defer func() {
		if retryTimer != nil {
			retryTimer.Stop()
		}
		if hedgeTimer != nil {
			hedgeTimer.Stop()
		}
		// After a relayed winner, losers with a per-try deadline run on:
		// their natural outcome (a timeout on a blackholed shard, a slow
		// success) is real breaker evidence. Everything else — client gone,
		// or no deadline to bound the straggler — is canceled now.
		if !relayed || tryTimeout <= 0 {
			for _, cancel := range cancels {
				cancel()
			}
		}
		if inflight > 0 {
			// Reap losers off-path so their breaker verdicts (and half-open
			// probe slots) settle without delaying the response; the contexts
			// are released once every straggler has reported in.
			n, cs := inflight, cancels
			go func() {
				for i := 0; i < n; i++ {
					rt.settleVerdict(<-results)
				}
				for _, cancel := range cs {
					cancel()
				}
			}()
			return
		}
		for _, cancel := range cancels {
			cancel()
		}
	}()

	if !launch(false) {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "no shard admitted the request"})
		return
	}
	if hedgeDelay > 0 && next < len(cands) {
		hedgeTimer = time.NewTimer(hedgeDelay)
		hedgeC = hedgeTimer.C
	}

	retries := 0
	var lastResp *http.Response
	var lastBody []byte
	var lastErr error

	finishFailed := func() {
		if lastResp != nil {
			relay(w, lastResp, lastBody)
			return
		}
		msg := "no shard could serve the request"
		if lastErr != nil {
			msg = lastErr.Error()
		}
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": msg})
	}

	// scheduleRetry arms the backoff timer toward the next candidate, if
	// the budget allows and candidates remain. Reports whether the request
	// still has a path forward (an armed timer or an attempt in flight).
	scheduleRetry := func() bool {
		if retryC != nil || inflight > 0 {
			return true
		}
		if next >= len(cands) {
			return false
		}
		if !rt.budget.withdraw() {
			rt.met.budgetExhausted.Add(1)
			rt.opt.Logf("retry budget exhausted; relaying last answer")
			next = len(cands)
			return false
		}
		retries++
		rt.met.retries.Add(1)
		rt.met.failovers.Add(1)
		retryTimer = time.NewTimer(rt.backoff.delay(retries))
		retryC = retryTimer.C
		return true
	}

	for {
		select {
		case <-ctx.Done():
			// Client gone; the deferred cleanup cancels and reaps.
			return
		case <-retryC:
			retryC = nil
			retryTimer = nil
			if !launch(false) && inflight == 0 {
				finishFailed()
				return
			}
		case <-hedgeC:
			hedgeC = nil
			hedgeTimer = nil
			launch(true)
		case res := <-results:
			inflight--
			rt.settleVerdict(res)
			switch {
			case res.canceled:
				if ctx.Err() != nil {
					return
				}
				if inflight == 0 && retryC == nil && !scheduleRetry() {
					finishFailed()
					return
				}
			case res.err == nil && !retriable(res.resp.StatusCode):
				if res.hedged {
					rt.met.hedgeWins.Add(1)
				}
				relayed = true
				relay(w, res.resp, res.body)
				return
			default:
				if res.err != nil {
					lastErr = res.err
				} else {
					lastResp, lastBody = res.resp, res.body
				}
				if !scheduleRetry() {
					finishFailed()
					return
				}
			}
		}
	}
}

// proxySnapshot relays a whole-world snapshot without buffering it in
// router memory: candidates are tried in placement order under the repair
// deadline (snapshot transfers legitimately run long, and hedging one would
// double a whole-world stream), and the first 200 answer's body is copied
// straight through to the client. Failover is only possible before the
// first relayed byte; a mid-stream failure aborts the response, and the
// client retries (adopt validates end to end, so a torn stream is caught).
func (rt *Router) proxySnapshot(w http.ResponseWriter, r *http.Request, placement []string, body []byte) {
	cands := rt.readCandidates(placement)
	if len(cands) == 0 {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "no shard could serve the request"})
		return
	}
	var lastResp *http.Response
	var lastBody []byte
	var lastErr error
	attempted := false
	for i, s := range cands {
		// Same breaker policy as launch: skip denied shards unless skipping
		// would leave the request with no attempt at all (the forced try
		// doubles as the breaker probe).
		lastResort := i == len(cands)-1 && !attempted
		if !s.brk.allow() && !lastResort {
			continue
		}
		attempted = true
		actx, cancel := context.WithTimeout(r.Context(), rt.opt.RepairTimeout)
		start := time.Now()
		resp, err := rt.shardShoot(actx, r, s.addr, body)
		if err != nil {
			cancel()
			if errors.Is(err, context.Canceled) {
				return // client gone; says nothing about the shard
			}
			if errors.Is(err, context.DeadlineExceeded) {
				rt.met.shardTimeout(s.addr)
			}
			rt.met.observe(s.addr, time.Since(start), true)
			rt.settleVerdict(attemptResult{s: s, err: err})
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			cancel()
			rt.met.observe(s.addr, time.Since(start), resp.StatusCode >= 500)
			rt.settleVerdict(attemptResult{s: s, resp: resp})
			if retriable(resp.StatusCode) {
				lastResp, lastBody = resp, b
				continue
			}
			relay(w, resp, b)
			return
		}
		// 200: stream straight through. The verdict settles on the headers —
		// the shard answered; a broken transfer surfaces to the client, whose
		// adopt-side validation rejects the torn world.
		rt.met.observe(s.addr, time.Since(start), false)
		rt.settleVerdict(attemptResult{s: s, resp: resp})
		for _, h := range []string{"Content-Type", "Content-Length", snapshotCRCHeader} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set("X-Content-Type-Options", "nosniff")
		w.WriteHeader(http.StatusOK)
		_, cerr := io.Copy(w, resp.Body)
		resp.Body.Close()
		cancel()
		if cerr != nil {
			rt.opt.Logf("snapshot relay from %s aborted mid-stream: %v", s.addr, cerr)
		}
		return
	}
	if lastResp != nil {
		relay(w, lastResp, lastBody)
		return
	}
	msg := "no shard could serve the request"
	if lastErr != nil {
		msg = lastErr.Error()
	}
	writeJSON(w, http.StatusBadGateway, map[string]string{"error": msg})
}

// ReplicaStatus is one replica's outcome in a routed append response.
type ReplicaStatus struct {
	Addr  string `json:"addr"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// appendBody mirrors server.AppendResponse field-for-field so the router
// can decorate a primary's append answer with replica fan-out statuses
// without importing the server package.
type appendBody struct {
	Dataset  string          `json:"dataset"`
	Epoch    uint64          `json:"epoch"`
	Appended int             `json:"appended"`
	Claims   int             `json:"claims"`
	Sources  int             `json:"sources"`
	Objects  int             `json:"objects"`
	Replicas []ReplicaStatus `json:"replicas,omitempty"`
}

// proxyWrite forwards an append (or adopt) to the dataset's primary and,
// when the primary accepts an append, fans the same batch out to the
// replicas so every copy advances to the same epoch. Replica failures do
// not fail the client's request, but they are counted
// (currents_replica_append_failures_total), reported in the response's
// "replicas" field, and enqueued for the repair loop — divergence is
// observable the moment it happens, and heals without waiting for a
// rebalance.
func (rt *Router) proxyWrite(w http.ResponseWriter, r *http.Request, name, op string, placement []string, body []byte) {
	// Appends recompute truth/dependence deltas; adoptions stream whole
	// snapshots. Both get a laxer deadline than a point read.
	timeout := rt.opt.RepairTimeout
	if op == "append" && rt.opt.TryTimeout > 0 {
		timeout = 4 * rt.opt.TryTimeout
	}
	writeCtx := func() (context.Context, context.CancelFunc) {
		if timeout > 0 {
			return context.WithTimeout(r.Context(), timeout)
		}
		return context.WithCancel(r.Context())
	}

	primary := placement[0]
	ps := rt.shardFor(primary)
	ctx, cancel := writeCtx()
	resp, respBody, err := rt.shardRequest(ctx, r, primary, body)
	cancel()
	if ps != nil {
		rt.settleVerdict(attemptResult{
			s: ps, resp: resp, err: err,
			canceled: err != nil && errors.Is(err, context.Canceled),
		})
	}
	if err != nil {
		writeJSON(w, http.StatusBadGateway,
			map[string]string{"error": fmt.Sprintf("primary %s: %v", primary, err)})
		return
	}
	if op != "append" || resp.StatusCode != http.StatusOK {
		relay(w, resp, respBody)
		return
	}

	// Fan out to the replicas concurrently: the client-visible cost of
	// replication is one write deadline regardless of replica count, so a
	// single hung replica cannot stack its timeout onto every append's
	// latency (failures are repaired asynchronously anyway).
	replicas := placement[1:]
	statuses := make([]ReplicaStatus, len(replicas))
	var wg sync.WaitGroup
	for i, replica := range replicas {
		rt.met.replicaAppends.Add(1)
		wg.Add(1)
		go func(i int, replica string) {
			defer wg.Done()
			rctx, rcancel := writeCtx()
			rresp, rbody, rerr := rt.shardRequest(rctx, r, replica, body)
			rcancel()
			if rs := rt.shardFor(replica); rs != nil {
				rt.settleVerdict(attemptResult{
					s: rs, resp: rresp, err: rerr,
					canceled: rerr != nil && errors.Is(rerr, context.Canceled),
				})
			}
			st := ReplicaStatus{Addr: replica, OK: true}
			if rerr != nil || rresp.StatusCode != http.StatusOK {
				rt.met.replicaAppErrs.Add(1)
				st.OK = false
				if rerr != nil {
					st.Error = rerr.Error()
					rt.opt.Logf("append %s: replica %s: %v", name, replica, rerr)
				} else {
					st.Error = fmt.Sprintf("status %d: %s", rresp.StatusCode, strings.TrimSpace(string(rbody)))
					rt.opt.Logf("append %s: replica %s answered %d: %s",
						name, replica, rresp.StatusCode, strings.TrimSpace(string(rbody)))
				}
				rt.repair.enqueue(name, replica)
			}
			statuses[i] = st
		}(i, replica)
	}
	wg.Wait()
	relayAppend(w, resp, respBody, statuses)
}

// relayAppend relays the primary's append answer with the replica fan-out
// statuses folded in. If the body is not the expected JSON shape it is
// relayed untouched.
func relayAppend(w http.ResponseWriter, resp *http.Response, body []byte, statuses []ReplicaStatus) {
	var ab appendBody
	if len(statuses) == 0 || json.Unmarshal(body, &ab) != nil {
		relay(w, resp, body)
		return
	}
	ab.Replicas = statuses
	out, err := json.Marshal(ab)
	if err != nil {
		relay(w, resp, body)
		return
	}
	relay(w, resp, append(out, '\n'))
}

// isReady reports the prober's view of a shard; unknown shards are not
// ready.
func (rt *Router) isReady(addr string) bool {
	s := rt.shardFor(addr)
	return s != nil && s.ready.Load()
}

// relay copies a shard response to the client byte-for-byte.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(`{"error":"encoding failure"}`)
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}
