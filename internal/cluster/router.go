// The fleet router: one http.Handler that fronts N `currents server`
// shards and exposes the same /v1/{dataset}/... API a single server does.
//
// Placement comes from the consistent-hash ring (ring.go): each dataset
// lives on rf shards, the first being its primary. Reads try the placement
// in order and fail over past shards that are down, erroring, or missing
// the world (mid-rebalance); appends go to the primary and, once accepted,
// fan out to the replicas so every copy advances through the same epochs.
// A background prober polls each shard's /readyz — which verifies every
// registered snapshot actually opens, not merely that the process is up —
// and the prober's dataset inventory doubles as the rebalance catalog:
// when /admin/ring changes the shard set, the router tells each shard that
// newly owns a world to adopt it by streaming a peer's snapshot.
//
// The router holds no dataset state of its own, so routed responses are
// byte-for-byte the shard's bytes — the golden suite pins routed answers
// to direct-shard answers.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes the router.
type Options struct {
	// RF is the replication factor: how many shards host each dataset.
	// Zero means DefaultRF.
	RF int
	// VNodes is the virtual-node count per shard (0 = DefaultVNodes).
	VNodes int
	// HealthInterval is the delay between readiness probe rounds once
	// Start is called (0 = DefaultHealthInterval).
	HealthInterval time.Duration
	// ProbeTimeout bounds one readiness probe (0 = DefaultProbeTimeout).
	ProbeTimeout time.Duration
	// MaxRequestBytes caps buffered proxy request bodies (0 = 1 MiB).
	MaxRequestBytes int64
	// Client issues proxied requests and rebalance adoptions; nil uses a
	// dedicated client with pooled connections and no overall timeout
	// (snapshot streams can be large).
	Client *http.Client
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// DefaultRF is the replication factor when Options.RF is zero.
const DefaultRF = 2

// DefaultHealthInterval is the readiness probe period.
const DefaultHealthInterval = 500 * time.Millisecond

// DefaultProbeTimeout bounds one readiness probe round trip.
const DefaultProbeTimeout = 2 * time.Second

// shardState is the router's view of one shard, refreshed by the prober.
type shardState struct {
	addr  string
	ready atomic.Bool
	// datasets is the shard's inventory from its last successful probe
	// (map[string]bool); nil until first probed.
	datasets atomic.Value
}

func (s *shardState) has(ds string) bool {
	m, _ := s.datasets.Load().(map[string]bool)
	return m[ds]
}

func (s *shardState) datasetCount() int {
	m, _ := s.datasets.Load().(map[string]bool)
	return len(m)
}

// Router proxies the dataset API across a shard fleet. Create with
// NewRouter, optionally Start the background prober, and Close when done.
// Safe for concurrent use.
type Router struct {
	opt    Options
	client *http.Client
	probe  *http.Client
	met    *routerMetrics

	mu     sync.RWMutex
	ring   *Ring
	shards map[string]*shardState

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup
}

// NewRouter builds a router over the given shard addresses (host:port) and
// synchronously probes each once, so a router over live shards routes
// immediately. Call Start to keep probing in the background.
func NewRouter(shardAddrs []string, opt Options) (*Router, error) {
	if opt.RF <= 0 {
		opt.RF = DefaultRF
	}
	if opt.HealthInterval <= 0 {
		opt.HealthInterval = DefaultHealthInterval
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = DefaultProbeTimeout
	}
	if opt.MaxRequestBytes <= 0 {
		opt.MaxRequestBytes = 1 << 20
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
		}}
	}
	ring := NewRing(shardAddrs, opt.VNodes)
	if ring.Len() == 0 {
		return nil, errors.New("cluster: router needs at least one shard")
	}
	rt := &Router{
		opt:    opt,
		client: client,
		probe:  &http.Client{Timeout: opt.ProbeTimeout},
		met:    newRouterMetrics(),
		ring:   ring,
		shards: make(map[string]*shardState, ring.Len()),
		done:   make(chan struct{}),
	}
	for _, addr := range ring.Shards() {
		rt.shards[addr] = &shardState{addr: addr}
	}
	rt.probeAll()
	return rt, nil
}

// Start launches the background readiness prober.
func (rt *Router) Start() {
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		t := time.NewTicker(rt.opt.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-rt.done:
				return
			case <-t.C:
				rt.probeAll()
			}
		}
	}()
}

// Close stops the prober. Idempotent.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.done) })
	rt.wg.Wait()
}

// shardList snapshots the current shard states.
func (rt *Router) shardList() []*shardState {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]*shardState, 0, len(rt.shards))
	for _, s := range rt.shards {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// probeAll refreshes every shard's readiness and inventory, in parallel.
func (rt *Router) probeAll() {
	shards := rt.shardList()
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			rt.probeShard(s)
		}(s)
	}
	wg.Wait()
}

// probeShard polls one shard's /readyz: 200 means every registered world
// is verified loadable, and the response carries the dataset inventory.
// Any other status — including a 503 "loading" — leaves the shard out of
// the routing set until it verifies.
func (rt *Router) probeShard(s *shardState) {
	resp, err := rt.probe.Get("http://" + s.addr + "/readyz")
	if err != nil {
		if s.ready.CompareAndSwap(true, false) {
			rt.opt.Logf("shard %s down: %v", s.addr, err)
		}
		return
	}
	defer resp.Body.Close()
	var rr struct {
		Datasets []string `json:"datasets"`
	}
	dec := json.NewDecoder(io.LimitReader(resp.Body, 1<<20))
	_ = dec.Decode(&rr)
	if resp.StatusCode != http.StatusOK {
		if s.ready.CompareAndSwap(true, false) {
			rt.opt.Logf("shard %s not ready (status %d)", s.addr, resp.StatusCode)
		}
		return
	}
	inv := make(map[string]bool, len(rr.Datasets))
	for _, ds := range rr.Datasets {
		inv[ds] = true
	}
	s.datasets.Store(inv)
	if s.ready.CompareAndSwap(false, true) {
		rt.opt.Logf("shard %s ready (%d datasets)", s.addr, len(inv))
	}
}

// Placement returns the rf shards responsible for a dataset, primary
// first.
func (rt *Router) Placement(dataset string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Place(dataset, rt.opt.RF)
}

// OwnerOf reports the primary shard for a dataset — the hint shards embed
// in their unknown-dataset 404s.
func (rt *Router) OwnerOf(dataset string) (string, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	p := rt.ring.Primary(dataset)
	return p, p != ""
}

// ServeHTTP routes: the router's own /healthz and /metrics, the /admin/ring
// control endpoint, and the proxied /v1/{dataset}/{op} API.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/healthz":
		rt.handleHealth(w, r)
		return
	case "/metrics":
		rt.handleMetrics(w, r)
		return
	case "/admin/ring":
		rt.handleAdminRing(w, r)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		rt.proxy(w, r)
		return
	}
	writeJSON(w, http.StatusNotFound,
		map[string]string{"error": "not found (try /healthz, /metrics, /admin/ring, /v1/{dataset}/{op})"})
}

// ShardHealth is one shard's state in the router's /healthz payload.
type ShardHealth struct {
	Addr     string   `json:"addr"`
	Ready    bool     `json:"ready"`
	Datasets []string `json:"datasets,omitempty"`
}

// RouterHealth is the router's /healthz payload.
type RouterHealth struct {
	Status string        `json:"status"`
	RF     int           `json:"rf"`
	Shards []ShardHealth `json:"shards"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
		return
	}
	h := RouterHealth{Status: "ok", RF: rt.opt.RF}
	for _, s := range rt.shardList() {
		sh := ShardHealth{Addr: s.addr, Ready: s.ready.Load()}
		if m, _ := s.datasets.Load().(map[string]bool); len(m) > 0 {
			sh.Datasets = make([]string, 0, len(m))
			for ds := range m {
				sh.Datasets = append(sh.Datasets, ds)
			}
			sort.Strings(sh.Datasets)
		}
		h.Shards = append(h.Shards, sh)
	}
	writeJSON(w, http.StatusOK, h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
		return
	}
	status := make([]shardStatus, 0)
	for _, s := range rt.shardList() {
		status = append(status, shardStatus{addr: s.addr, ready: s.ready.Load(), datasets: s.datasetCount()})
	}
	var sb strings.Builder
	rt.met.write(&sb, status)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, sb.String())
}

// AdminRingRequest reconfigures the shard set.
type AdminRingRequest struct {
	Shards []string `json:"shards"`
}

// Move is one rebalance action: dataset adopted onto To by streaming From's
// snapshot.
type Move struct {
	Dataset string `json:"dataset"`
	To      string `json:"to"`
	From    string `json:"from"`
	Error   string `json:"error,omitempty"`
}

// AdminRingResponse reports the accepted shard set and the rebalance moves
// it triggered.
type AdminRingResponse struct {
	Shards []string `json:"shards"`
	RF     int      `json:"rf"`
	Moves  []Move   `json:"moves"`
}

func (rt *Router) handleAdminRing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	var req AdminRingRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad ring request: " + err.Error()})
		return
	}
	if len(req.Shards) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "ring needs at least one shard"})
		return
	}
	moves := rt.SetShards(req.Shards)
	resp := AdminRingResponse{RF: rt.opt.RF, Moves: moves}
	rt.mu.RLock()
	resp.Shards = rt.ring.Shards()
	rt.mu.RUnlock()
	if resp.Moves == nil {
		resp.Moves = []Move{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// SetShards replaces the ring's shard set and rebalances: every dataset
// whose new placement includes a shard that does not hold it yet is
// adopted there by streaming a current holder's snapshot. Returns the
// executed moves. New shards are probed synchronously first, so a shard
// that just booted empty participates immediately.
func (rt *Router) SetShards(addrs []string) []Move {
	ring := NewRing(addrs, rt.opt.VNodes)
	rt.mu.Lock()
	rt.ring = ring
	next := make(map[string]*shardState, ring.Len())
	for _, addr := range ring.Shards() {
		if s, ok := rt.shards[addr]; ok {
			next[addr] = s
		} else {
			next[addr] = &shardState{addr: addr}
		}
	}
	rt.shards = next
	rt.mu.Unlock()
	rt.met.ringChanges.Add(1)
	rt.opt.Logf("ring set to %d shard(s): %s", ring.Len(), strings.Join(ring.Shards(), ","))
	rt.probeAll()
	return rt.Rebalance()
}

// Rebalance walks the catalog (the union of every shard's probed
// inventory) and pulls each dataset onto the placement shards that lack
// it, streaming a holder's snapshot via the shard adopt endpoint. Safe to
// call repeatedly; adoption is idempotent on the shard side.
func (rt *Router) Rebalance() []Move {
	shards := rt.shardList()
	holders := map[string][]string{} // dataset -> shards holding it, sorted
	for _, s := range shards {
		if m, _ := s.datasets.Load().(map[string]bool); m != nil {
			for ds := range m {
				holders[ds] = append(holders[ds], s.addr)
			}
		}
	}
	catalog := make([]string, 0, len(holders))
	for ds := range holders {
		sort.Strings(holders[ds])
		catalog = append(catalog, ds)
	}
	sort.Strings(catalog)

	byAddr := make(map[string]*shardState, len(shards))
	for _, s := range shards {
		byAddr[s.addr] = s
	}
	var moves []Move
	adopted := map[string]bool{} // addrs that gained worlds, re-probed below
	for _, ds := range catalog {
		for _, target := range rt.Placement(ds) {
			ts := byAddr[target]
			if ts == nil || ts.has(ds) {
				continue
			}
			src := pickSource(holders[ds], byAddr)
			if src == "" {
				continue
			}
			mv := Move{Dataset: ds, To: target, From: src}
			if err := rt.adopt(target, ds, src); err != nil {
				mv.Error = err.Error()
				rt.met.rebalanceErrs.Add(1)
				rt.opt.Logf("rebalance: adopt %s onto %s from %s: %v", ds, target, src, err)
			} else {
				rt.met.rebalanceAdopts.Add(1)
				adopted[target] = true
				rt.opt.Logf("rebalance: adopted %s onto %s from %s", ds, target, src)
			}
			moves = append(moves, mv)
		}
	}
	for addr := range adopted {
		if s := byAddr[addr]; s != nil {
			rt.probeShard(s)
		}
	}
	return moves
}

// pickSource prefers a ready holder; any holder otherwise.
func pickSource(holding []string, byAddr map[string]*shardState) string {
	for _, addr := range holding {
		if s := byAddr[addr]; s != nil && s.ready.Load() {
			return addr
		}
	}
	if len(holding) > 0 {
		return holding[0]
	}
	return ""
}

// adopt tells target to pull dataset from src's snapshot stream.
func (rt *Router) adopt(target, dataset, src string) error {
	from := "http://" + src + "/v1/" + dataset + "/snapshot"
	u := "http://" + target + "/v1/" + dataset + "/adopt?from=" + url.QueryEscape(from)
	resp, err := rt.client.Post(u, "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("adopt: shard answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// proxy forwards one /v1/{dataset}/{op} request to the dataset's placement.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/")
	name, op, ok := strings.Cut(rest, "/")
	if !ok || name == "" || op == "" {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "not found: want /v1/{dataset}/{op}"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.opt.MaxRequestBytes))
	if err != nil {
		var maxErr *http.MaxBytesError
		status := http.StatusBadRequest
		if errors.As(err, &maxErr) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	placement := rt.Placement(name)
	if len(placement) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no shards on the ring"})
		return
	}
	if op == "append" || op == "adopt" {
		rt.proxyWrite(w, r, name, placement, body)
		return
	}
	rt.proxyRead(w, r, placement, body)
}

// shardRequest issues the request against one shard and returns the full
// response. A nil error with any status is a shard answer; an error is a
// transport failure.
func (rt *Router) shardRequest(r *http.Request, addr string, body []byte) (*http.Response, []byte, error) {
	u := "http://" + addr + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.met.observe(addr, time.Since(start), true)
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	failed := err != nil || resp.StatusCode >= 500
	rt.met.observe(addr, time.Since(start), failed)
	if err != nil {
		return nil, nil, err
	}
	return resp, respBody, nil
}

// retriable reports whether a shard answer should fail over to the next
// replica: server-side failures, and 404s (the world may not have reached
// this shard yet mid-rebalance, while a replica still serves it).
func retriable(status int) bool {
	return status >= 500 || status == http.StatusNotFound
}

// proxyRead forwards a read, failing over along the placement. Shards the
// prober marked down are skipped up front; a transport error or retriable
// status moves on to the next replica. When every attempt fails the most
// informative response wins: the last shard answer if any, else 502.
func (rt *Router) proxyRead(w http.ResponseWriter, r *http.Request, placement []string, body []byte) {
	tried := 0
	var lastResp *http.Response
	var lastBody []byte
	var lastErr error
	attempt := func(addr string) bool {
		tried++
		resp, respBody, err := rt.shardRequest(r, addr, body)
		if err != nil {
			lastErr = err
			return false
		}
		lastResp, lastBody = resp, respBody
		return !retriable(resp.StatusCode)
	}
	for _, addr := range placement {
		if !rt.isReady(addr) {
			continue
		}
		if tried > 0 {
			rt.met.failovers.Add(1)
		}
		if attempt(addr) {
			relay(w, lastResp, lastBody)
			return
		}
	}
	// Every placement shard was down or failed; as a last resort try the
	// down-marked ones too — the prober's view may be stale.
	for _, addr := range placement {
		if rt.isReady(addr) {
			continue
		}
		if tried > 0 {
			rt.met.failovers.Add(1)
		}
		if attempt(addr) {
			relay(w, lastResp, lastBody)
			return
		}
	}
	if lastResp != nil {
		relay(w, lastResp, lastBody)
		return
	}
	msg := "no shard could serve the request"
	if lastErr != nil {
		msg = lastErr.Error()
	}
	writeJSON(w, http.StatusBadGateway, map[string]string{"error": msg})
}

// proxyWrite forwards an append (or adopt) to the dataset's primary and,
// when the primary accepts an append, fans the same batch out to the
// replicas so every copy advances to the same epoch. Replica failures are
// counted and logged but do not fail the client's request — the replica
// re-converges on the next rebalance adopt.
func (rt *Router) proxyWrite(w http.ResponseWriter, r *http.Request, name string, placement []string, body []byte) {
	primary := placement[0]
	resp, respBody, err := rt.shardRequest(r, primary, body)
	if err != nil {
		writeJSON(w, http.StatusBadGateway,
			map[string]string{"error": fmt.Sprintf("primary %s: %v", primary, err)})
		return
	}
	if r.URL.Path == "/v1/"+name+"/append" && resp.StatusCode == http.StatusOK {
		for _, replica := range placement[1:] {
			rt.met.replicaAppends.Add(1)
			rresp, rbody, rerr := rt.shardRequest(r, replica, body)
			if rerr != nil || rresp.StatusCode != http.StatusOK {
				rt.met.replicaAppErrs.Add(1)
				if rerr != nil {
					rt.opt.Logf("append %s: replica %s: %v", name, replica, rerr)
				} else {
					rt.opt.Logf("append %s: replica %s answered %d: %s",
						name, replica, rresp.StatusCode, strings.TrimSpace(string(rbody)))
				}
			}
		}
	}
	relay(w, resp, respBody)
}

// isReady reports the prober's view of a shard; unknown shards are not
// ready.
func (rt *Router) isReady(addr string) bool {
	rt.mu.RLock()
	s := rt.shards[addr]
	rt.mu.RUnlock()
	return s != nil && s.ready.Load()
}

// relay copies a shard response to the client byte-for-byte.
func relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(`{"error":"encoding failure"}`)
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}
