package synth

import (
	"errors"
	"fmt"
	"math/rand"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

// This file holds the snapshot, temporal and rating world generators used
// by the sweep experiments (EX5-EX9).

// SnapshotConfig parameterizes a generic snapshot world: independent
// sources with planted accuracies plus copiers attached to masters.
type SnapshotConfig struct {
	Seed     int64
	NObjects int
	// IndependentAcc lists the accuracies of the independent sources
	// (one source per entry, ids I0, I1, ...).
	IndependentAcc []float64
	// Copiers describe planted copiers (ids C0, C1, ...).
	Copiers []CopierSpec
	// FalsePool is the number of distinct false values per object.
	FalsePool int
}

// CopierSpec plants one copier.
type CopierSpec struct {
	// MasterIndex indexes IndependentAcc (the copied source).
	MasterIndex int
	// CopyRate is the per-object copy probability; OwnAcc the copier's
	// accuracy when answering independently.
	CopyRate, OwnAcc float64
}

// Validate reports configuration errors.
func (c SnapshotConfig) Validate() error {
	if c.NObjects < 1 {
		return errors.New("synth: NObjects must be >= 1")
	}
	if len(c.IndependentAcc) < 1 {
		return errors.New("synth: need at least one independent source")
	}
	for _, a := range c.IndependentAcc {
		if a <= 0 || a >= 1 {
			return errors.New("synth: accuracies must be in (0,1)")
		}
	}
	for _, cp := range c.Copiers {
		if cp.MasterIndex < 0 || cp.MasterIndex >= len(c.IndependentAcc) {
			return errors.New("synth: copier master index out of range")
		}
		if cp.CopyRate <= 0 || cp.CopyRate >= 1 || cp.OwnAcc <= 0 || cp.OwnAcc >= 1 {
			return errors.New("synth: copier rates must be in (0,1)")
		}
	}
	if c.FalsePool < 1 {
		return errors.New("synth: FalsePool must be >= 1")
	}
	return nil
}

// SnapshotWorld is a generated snapshot corpus with ground truth.
type SnapshotWorld struct {
	Dataset *dataset.Dataset
	World   *model.World
	// Independents and Copiers list the source ids.
	Independents, Copiers []model.SourceID
	// MasterOf maps copier id to master id.
	MasterOf map[model.SourceID]model.SourceID
}

// GenerateSnapshot builds the world.
func GenerateSnapshot(cfg SnapshotConfig) (*SnapshotWorld, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sw := &SnapshotWorld{
		World:    model.NewWorld(),
		MasterOf: map[model.SourceID]model.SourceID{},
	}
	d := dataset.New()
	for i := range cfg.IndependentAcc {
		sw.Independents = append(sw.Independents, model.SourceID(fmt.Sprintf("I%d", i)))
	}
	for i := range cfg.Copiers {
		id := model.SourceID(fmt.Sprintf("C%d", i))
		sw.Copiers = append(sw.Copiers, id)
		sw.MasterOf[id] = sw.Independents[cfg.Copiers[i].MasterIndex]
	}
	for oi := 0; oi < cfg.NObjects; oi++ {
		o := model.Obj(fmt.Sprintf("o%05d", oi), "v")
		truthV := fmt.Sprintf("T%d", oi)
		sw.World.SetSnapshot(o, truthV)
		falseVal := func() string {
			return fmt.Sprintf("F%d_%d", oi, rng.Intn(cfg.FalsePool))
		}
		masterVals := make([]string, len(cfg.IndependentAcc))
		for i, acc := range cfg.IndependentAcc {
			v := truthV
			if rng.Float64() >= acc {
				v = falseVal()
			}
			masterVals[i] = v
			if err := d.Add(model.NewClaim(sw.Independents[i], o, v)); err != nil {
				return nil, err
			}
		}
		for i, cp := range cfg.Copiers {
			var v string
			if rng.Float64() < cp.CopyRate {
				v = masterVals[cp.MasterIndex]
			} else {
				v = truthV
				if rng.Float64() >= cp.OwnAcc {
					v = falseVal()
				}
			}
			if err := d.Add(model.NewClaim(sw.Copiers[i], o, v)); err != nil {
				return nil, err
			}
		}
	}
	d.Freeze()
	sw.Dataset = d
	return sw, nil
}

// TemporalConfig parameterizes an evolving world observed by independent
// publishers with jittered delays plus lazy copiers that republish their
// master's publications.
type TemporalConfig struct {
	Seed     int64
	NObjects int
	Horizon  model.Time
	// ChangeRate is the per-tick probability an object's value changes.
	ChangeRate float64
	// Publishers lists independent publishers (ids P0, P1, ...).
	Publishers []PublisherSpec
	// LazyCopiers lists copiers (ids L0, L1, ...).
	LazyCopiers []LazyCopierSpec
	// SnapshotEvery > 0 quantizes all claim times to multiples of it — the
	// "incomplete observations" challenge: we only see periodic snapshots.
	SnapshotEvery model.Time
}

// PublisherSpec is an independent publisher: captures each transition with
// probability CaptureProb at a delay uniform in [0, MaxDelay].
type PublisherSpec struct {
	CaptureProb float64
	MaxDelay    model.Time
}

// LazyCopierSpec republishes the master publisher's updates.
type LazyCopierSpec struct {
	MasterIndex int
	// CopyProb is the probability of republishing a given master update;
	// the republication lag is uniform in [MinLag, MaxLag].
	CopyProb       float64
	MinLag, MaxLag model.Time
}

// Validate reports configuration errors.
func (c TemporalConfig) Validate() error {
	if c.NObjects < 1 || c.Horizon < 2 {
		return errors.New("synth: temporal world too small")
	}
	if c.ChangeRate <= 0 || c.ChangeRate >= 1 {
		return errors.New("synth: ChangeRate must be in (0,1)")
	}
	if len(c.Publishers) < 1 {
		return errors.New("synth: need at least one publisher")
	}
	for _, p := range c.Publishers {
		if p.CaptureProb <= 0 || p.CaptureProb > 1 || p.MaxDelay < 0 {
			return errors.New("synth: publisher spec invalid")
		}
	}
	for _, l := range c.LazyCopiers {
		if l.MasterIndex < 0 || l.MasterIndex >= len(c.Publishers) {
			return errors.New("synth: copier master index out of range")
		}
		if l.CopyProb <= 0 || l.CopyProb > 1 || l.MinLag < 1 || l.MaxLag < l.MinLag {
			return errors.New("synth: copier spec invalid")
		}
	}
	if c.SnapshotEvery < 0 {
		return errors.New("synth: SnapshotEvery must be >= 0")
	}
	return nil
}

// TemporalWorld is a generated temporal corpus.
type TemporalWorld struct {
	Dataset     *dataset.Dataset
	World       *model.World
	Publishers  []model.SourceID
	LazyCopiers []model.SourceID
	MasterOf    map[model.SourceID]model.SourceID
}

// GenerateTemporal builds the world.
func GenerateTemporal(cfg TemporalConfig) (*TemporalWorld, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tw := &TemporalWorld{
		World:    model.NewWorld(),
		MasterOf: map[model.SourceID]model.SourceID{},
	}
	for i := range cfg.Publishers {
		tw.Publishers = append(tw.Publishers, model.SourceID(fmt.Sprintf("P%d", i)))
	}
	for i, l := range cfg.LazyCopiers {
		id := model.SourceID(fmt.Sprintf("L%d", i))
		tw.LazyCopiers = append(tw.LazyCopiers, id)
		tw.MasterOf[id] = tw.Publishers[l.MasterIndex]
	}
	quantize := func(t model.Time) model.Time {
		if cfg.SnapshotEvery <= 1 {
			return t
		}
		return (t / cfg.SnapshotEvery) * cfg.SnapshotEvery
	}
	d := dataset.New()
	for oi := 0; oi < cfg.NObjects; oi++ {
		o := model.Obj(fmt.Sprintf("o%05d", oi), "v")
		tr := model.Truth{Object: o}
		version := 0
		tr.Periods = append(tr.Periods, model.TruthPeriod{Start: 0, Value: fmt.Sprintf("v%d_0", oi)})
		for t := model.Time(1); t < cfg.Horizon; t++ {
			if rng.Float64() < cfg.ChangeRate {
				version++
				tr.Periods = append(tr.Periods, model.TruthPeriod{
					Start: t, Value: fmt.Sprintf("v%d_%d", oi, version)})
			}
		}
		tw.World.Set(tr)
		// Publisher traces; remember each master's publication times so
		// copiers can trail them.
		published := make([]map[string]model.Time, len(cfg.Publishers))
		for i, spec := range cfg.Publishers {
			published[i] = map[string]model.Time{}
			for _, p := range tr.Periods {
				if rng.Float64() > spec.CaptureProb {
					continue
				}
				t := p.Start + model.Time(rng.Int63n(int64(spec.MaxDelay)+1))
				published[i][p.Value] = t
				c := model.NewTemporalClaim(tw.Publishers[i], o, p.Value, quantize(t))
				if err := d.Add(c); err != nil {
					return nil, err
				}
			}
		}
		for i, spec := range cfg.LazyCopiers {
			for _, p := range tr.Periods {
				t0, ok := published[spec.MasterIndex][p.Value]
				if !ok || rng.Float64() > spec.CopyProb {
					continue
				}
				lag := spec.MinLag + model.Time(rng.Int63n(int64(spec.MaxLag-spec.MinLag)+1))
				c := model.NewTemporalClaim(tw.LazyCopiers[i], o, p.Value, quantize(t0+lag))
				if err := d.Add(c); err != nil {
					return nil, err
				}
			}
		}
	}
	d.Freeze()
	tw.Dataset = d
	return tw, nil
}

// RatingConfig parameterizes an opinion world: items with latent quality,
// honest raters, plus planted contrarians and copiers.
type RatingConfig struct {
	Seed    int64
	NItems  int
	NHonest int
	// NoiseRate is the probability an honest rating deviates from the
	// item's latent quality.
	NoiseRate float64
	// Contrarians and Copiers each target rater R0.
	NContrarians, NCopiers int
	// OppositionRate is the probability a contrarian opposes (vs rates
	// honestly) — partial dissimilarity-dependence.
	OppositionRate float64
}

// Validate reports configuration errors.
func (c RatingConfig) Validate() error {
	if c.NItems < 1 || c.NHonest < 1 {
		return errors.New("synth: rating world too small")
	}
	if c.NoiseRate < 0 || c.NoiseRate >= 1 {
		return errors.New("synth: NoiseRate must be in [0,1)")
	}
	if c.NContrarians < 0 || c.NCopiers < 0 {
		return errors.New("synth: counts must be >= 0")
	}
	if c.OppositionRate <= 0 || c.OppositionRate > 1 {
		return errors.New("synth: OppositionRate must be in (0,1]")
	}
	return nil
}

// RatingWorld is a generated opinion corpus. Honest raters are R0..Rn;
// contrarians CONTRA<i> and copiers COPY<i> all target R0.
type RatingWorld struct {
	Dataset     *dataset.Dataset
	Honest      []model.SourceID
	Contrarians []model.SourceID
	Copiers     []model.SourceID
}

// GenerateRatings builds the world on the Good/Neutral/Bad scale.
func GenerateRatings(cfg RatingConfig) (*RatingWorld, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	labels := []string{"Bad", "Neutral", "Good"}
	opposite := map[string]string{"Bad": "Good", "Neutral": "Neutral", "Good": "Bad"}
	rw := &RatingWorld{}
	for i := 0; i < cfg.NHonest; i++ {
		rw.Honest = append(rw.Honest, model.SourceID(fmt.Sprintf("R%d", i)))
	}
	for i := 0; i < cfg.NContrarians; i++ {
		rw.Contrarians = append(rw.Contrarians, model.SourceID(fmt.Sprintf("CONTRA%d", i)))
	}
	for i := 0; i < cfg.NCopiers; i++ {
		rw.Copiers = append(rw.Copiers, model.SourceID(fmt.Sprintf("COPY%d", i)))
	}
	d := dataset.New()
	for it := 0; it < cfg.NItems; it++ {
		o := model.Obj(fmt.Sprintf("item%04d", it), dataset.RatingAttr)
		quality := rng.Intn(3)
		honestRating := func() string {
			l := quality
			if rng.Float64() < cfg.NoiseRate {
				l = rng.Intn(3)
			}
			return labels[l]
		}
		r0 := honestRating()
		if err := d.Add(model.NewClaim(rw.Honest[0], o, r0)); err != nil {
			return nil, err
		}
		for _, h := range rw.Honest[1:] {
			if err := d.Add(model.NewClaim(h, o, honestRating())); err != nil {
				return nil, err
			}
		}
		for _, c := range rw.Contrarians {
			v := honestRating()
			if rng.Float64() < cfg.OppositionRate {
				v = opposite[r0]
			}
			if err := d.Add(model.NewClaim(c, o, v)); err != nil {
				return nil, err
			}
		}
		for _, c := range rw.Copiers {
			if err := d.Add(model.NewClaim(c, o, r0)); err != nil {
				return nil, err
			}
		}
	}
	d.Freeze()
	rw.Dataset = d
	return rw, nil
}
