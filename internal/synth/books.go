// Package synth generates the synthetic worlds behind the experiments.
//
// The bookstore generator reproduces the population statistics of Example
// 4.1's AbeBooks crawl (876 bookstores, 1263 computer-science books, 24364
// listings, 1-1095 books per store, store accuracy spanning 0-0.92, 1-23
// author-list variants per book averaging about 4) while planting ground
// truth the crawl could not provide: the true author list of every book and
// the exact copier network, sized so the number of dependent store pairs
// sharing at least 10 books matches the paper's 471.
package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

// AuthorsAttr and friends are the attributes of a listing.
const (
	AuthorsAttr   = "authors"
	TitleAttr     = "title"
	PublisherAttr = "publisher"
	YearAttr      = "year"
	TopicAttr     = "topic"
)

// BookConfig parameterizes the bookstore corpus.
type BookConfig struct {
	Seed int64
	// Population targets (Example 4.1 defaults).
	NBooks, NStores, NListings int
	// MaxPerStore caps the biggest store's catalog.
	MaxPerStore int
	// DepPairTarget is the number of dependent store pairs to plant among
	// pairs sharing at least MinSharedForDep books.
	DepPairTarget   int
	MinSharedForDep int
	// CopyRate is the probability a copier reproduces the master's raw
	// listing for a shared book (otherwise it lists independently).
	CopyRate float64
	// ErrorPoolSize is the number of distinct corrupted author lists per
	// book (errors repeat across stores, as real-world corruptions do).
	ErrorPoolSize int
	// MinAccuracy, MaxAccuracy bound store accuracies.
	MinAccuracy, MaxAccuracy float64
}

// DefaultBookConfig matches Example 4.1.
func DefaultBookConfig() BookConfig {
	return BookConfig{
		Seed:            1,
		NBooks:          1263,
		NStores:         876,
		NListings:       24364,
		MaxPerStore:     1095,
		DepPairTarget:   471,
		MinSharedForDep: 10,
		CopyRate:        0.9,
		ErrorPoolSize:   6,
		MinAccuracy:     0,
		MaxAccuracy:     0.92,
	}
}

// Validate reports configuration errors.
func (c BookConfig) Validate() error {
	if c.NBooks < 1 || c.NStores < 2 || c.NListings < c.NStores {
		return errors.New("synth: population targets too small")
	}
	if c.MaxPerStore < 1 || c.MaxPerStore > c.NBooks {
		return errors.New("synth: MaxPerStore must be in [1, NBooks]")
	}
	if c.DepPairTarget < 0 {
		return errors.New("synth: DepPairTarget must be >= 0")
	}
	if c.MinSharedForDep < 1 {
		return errors.New("synth: MinSharedForDep must be >= 1")
	}
	if c.CopyRate <= 0 || c.CopyRate >= 1 {
		return errors.New("synth: CopyRate must be in (0,1)")
	}
	if c.ErrorPoolSize < 1 {
		return errors.New("synth: ErrorPoolSize must be >= 1")
	}
	if c.MinAccuracy < 0 || c.MaxAccuracy > 1 || c.MinAccuracy >= c.MaxAccuracy {
		return errors.New("synth: accuracy bounds invalid")
	}
	return nil
}

// Book is one generated book with its ground truth.
type Book struct {
	ID        string // entity id, e.g. "book0042"
	Title     string
	Topic     string
	Publisher string
	Year      int
	Authors   []author
	// TrueAuthors is the canonical rendering (full-name, semicolon form).
	TrueAuthors string
}

// BookCorpus is the generated world.
type BookCorpus struct {
	Config  BookConfig
	Dataset *dataset.Dataset
	World   *model.World
	Books   []Book
	Stores  []model.SourceID
	// StoreAccuracy is the planted per-store accuracy.
	StoreAccuracy map[model.SourceID]float64
	// MasterOf maps each copier to its master.
	MasterOf map[model.SourceID]model.SourceID
	// DependentPairs holds every planted dependent pair (copier-master and
	// copier-copier within a group).
	DependentPairs map[model.SourcePair]bool
	// Listings is the number of (store, book) listings generated.
	Listings int
}

// BookObj returns the authors object id of a book.
func BookObj(bookID string) model.ObjectID { return model.Obj(bookID, AuthorsAttr) }

// AuthorsDataset projects the corpus to author-list claims only — the
// conflicting attribute the dependence analysis runs on (title, publisher,
// year and topic are listed faithfully and would only dilute the
// evidence).
func (c *BookCorpus) AuthorsDataset() (*dataset.Dataset, error) {
	out := dataset.New()
	for _, cl := range c.Dataset.Claims() {
		if cl.Object.Attribute == AuthorsAttr {
			if err := out.Add(cl); err != nil {
				return nil, err
			}
		}
	}
	out.Freeze()
	return out, nil
}

// SampleAccuracy estimates a store's author-list accuracy on a sample of
// its books (Example 4.1 samples 100 books): the fraction of its listings
// whose parsed author list matches the truth up to formatting.
func (c *BookCorpus) SampleAccuracy(s model.SourceID, sample int,
	same func(listed, truth string) bool) float64 {
	objs := []model.ObjectID{}
	for _, o := range c.Dataset.ObjectsOf(s) {
		if o.Attribute == AuthorsAttr {
			objs = append(objs, o)
		}
	}
	if len(objs) == 0 {
		return 0
	}
	if sample > 0 && sample < len(objs) {
		objs = objs[:sample]
	}
	var right int
	for _, o := range objs {
		v, _ := c.Dataset.Value(s, o)
		truth, _ := c.World.TrueNow(o)
		if same(v, truth) {
			right++
		}
	}
	return float64(right) / float64(len(objs))
}

// GenerateBooks builds the corpus.
func GenerateBooks(cfg BookConfig) (*BookCorpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	corpus := &BookCorpus{
		Config:         cfg,
		World:          model.NewWorld(),
		StoreAccuracy:  map[model.SourceID]float64{},
		MasterOf:       map[model.SourceID]model.SourceID{},
		DependentPairs: map[model.SourcePair]bool{},
	}

	corpus.Books = generateBookTruths(rng, cfg, corpus.World)

	// Store catalog sizes: a skewed allocation hitting the exact listing
	// total with the configured maximum.
	sizes := sizesFor(rng, cfg.NStores, cfg.NListings, cfg.MaxPerStore)

	// Store ids sorted by descending size so copier groups can be attached
	// to adequately-sized masters.
	for i := 0; i < cfg.NStores; i++ {
		corpus.Stores = append(corpus.Stores, model.SourceID(fmt.Sprintf("store%04d", i)))
	}
	// Accuracies: most stores are decent (upper band), a minority are bad
	// (lower band), and the extremes are pinned so the reported range
	// matches the paper's 0-0.92. A uniform spread would make the whole
	// marketplace implausibly noisy.
	span := cfg.MaxAccuracy - cfg.MinAccuracy
	split := cfg.MinAccuracy + span*0.6
	upper := (cfg.NStores*4 + 4) / 5 // 80% of stores in the upper band
	for i, s := range corpus.Stores {
		var acc float64
		if i < upper {
			acc = split + (cfg.MaxAccuracy-split)*float64(i)/float64(max(upper-1, 1))
		} else {
			lo := cfg.NStores - upper
			acc = cfg.MinAccuracy + (split-cfg.MinAccuracy)*float64(i-upper)/float64(max(lo-1, 1))
		}
		corpus.StoreAccuracy[s] = acc
	}
	rng.Shuffle(len(corpus.Stores), func(i, j int) {
		a, b := corpus.Stores[i], corpus.Stores[j]
		corpus.StoreAccuracy[a], corpus.StoreAccuracy[b] =
			corpus.StoreAccuracy[b], corpus.StoreAccuracy[a]
	})

	// Plant copier groups: Σ C(group, 2) == DepPairTarget.
	groups := planGroups(cfg.DepPairTarget)
	memberships := assignGroups(rng, groups, corpus, sizes, cfg)

	// Popularity weights: Zipf with exponent 1.2 over books, heavy-tailed
	// enough that the rarest books receive a single listing (the paper's
	// variant counts start at 1) while popular books appear in hundreds of
	// stores.
	weights := make([]float64, cfg.NBooks)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -1.2)
	}

	// Error pools: per book, a small set of corrupted author lists.
	errorPools := make([][][]author, cfg.NBooks)
	for i, b := range corpus.Books {
		pool := make([][]author, cfg.ErrorPoolSize)
		for k := range pool {
			pool[k] = corruptAuthors(rng, b.Authors, i)
		}
		errorPools[i] = pool
	}

	// Phase 1: catalogs. Masters and independents sample by popularity;
	// copiers take (mostly) their master's catalog.
	order := generationOrder(corpus, memberships)
	catalogs := map[model.SourceID][]int{}
	for _, si := range order {
		s := corpus.Stores[si]
		size := sizes[si]
		if master, isCopier := corpus.MasterOf[s]; isCopier {
			catalogs[s] = copierCatalog(rng, catalogs[master], size, cfg, weights)
		} else {
			catalogs[s] = sampleBooks(rng, cfg.NBooks, size, weights)
		}
	}
	ensureCoverage(rng, corpus, catalogs, cfg)

	// Phase 2: values. Masters before copiers so copiers can replicate
	// the master's exact surface form.
	d := dataset.New()
	rawValue := map[model.SourceID]map[int]string{}
	for _, si := range order {
		s := corpus.Stores[si]
		master, isCopier := corpus.MasterOf[s]
		raw := map[int]string{}
		houseStyle := style(rng.Intn(int(numStyles)))
		for _, bi := range catalogs[s] {
			b := corpus.Books[bi]
			var authorsVal string
			if isCopier {
				if mv, ok := rawValue[master][bi]; ok && rng.Float64() < cfg.CopyRate {
					authorsVal = mv
				}
			}
			if authorsVal == "" {
				authorsVal = independentListing(rng, b, errorPools[bi],
					corpus.StoreAccuracy[s], houseStyle)
			}
			raw[bi] = authorsVal
			if err := addListing(d, s, b, authorsVal); err != nil {
				return nil, err
			}
			corpus.Listings++
		}
		rawValue[s] = raw
	}
	d.Freeze()
	corpus.Dataset = d
	return corpus, nil
}

// ensureCoverage guarantees every book at least one listing: unlisted books
// replace the most popular books in the largest catalogs (which certainly
// already carry them elsewhere), preserving catalog sizes and the listing
// total.
func ensureCoverage(rng *rand.Rand, corpus *BookCorpus,
	catalogs map[model.SourceID][]int, cfg BookConfig) {
	listed := make([]bool, cfg.NBooks)
	for _, cat := range catalogs {
		for _, bi := range cat {
			listed[bi] = true
		}
	}
	var missing []int
	for bi, ok := range listed {
		if !ok {
			missing = append(missing, bi)
		}
	}
	if len(missing) == 0 {
		return
	}
	// Count listings per book to find safely removable duplicates.
	counts := make([]int, cfg.NBooks)
	for _, cat := range catalogs {
		for _, bi := range cat {
			counts[bi]++
		}
	}
	// Walk big independent stores and swap duplicates for missing books.
	for _, s := range corpus.Stores {
		if len(missing) == 0 {
			break
		}
		if _, isCopier := corpus.MasterOf[s]; isCopier {
			continue // keep copier catalogs subsets of their masters
		}
		cat := catalogs[s]
		have := map[int]bool{}
		for _, bi := range cat {
			have[bi] = true
		}
		for i := len(cat) - 1; i >= 0 && len(missing) > 0; i-- {
			bi := cat[i]
			if counts[bi] <= 2 || have[missing[0]] {
				continue
			}
			counts[bi]--
			cat[i] = missing[0]
			have[missing[0]] = true
			counts[missing[0]]++
			missing = missing[1:]
		}
		sort.Ints(cat)
		catalogs[s] = cat
	}
	_ = rng
}

// generateBookTruths creates books and registers their ground truth.
func generateBookTruths(rng *rand.Rand, cfg BookConfig, w *model.World) []Book {
	books := make([]Book, cfg.NBooks)
	nextAuthor := 0
	for i := range books {
		topic := topics[i%len(topics)]
		nAuth := 1 + rng.Intn(4)
		authors := make([]author, nAuth)
		for a := range authors {
			g, f := personName(nextAuthor)
			authors[a] = author{given: g, family: f}
			nextAuthor += 1 + rng.Intn(3)
		}
		b := Book{
			ID:        fmt.Sprintf("book%04d", i),
			Title:     bookTitle(topic, i),
			Topic:     topic,
			Publisher: publishers[(i*7+i/10)%len(publishers)],
			Year:      1990 + rng.Intn(19),
			Authors:   authors,
		}
		b.TrueAuthors = renderAuthors(authors, styleFull)
		books[i] = b
		w.SetSnapshot(model.Obj(b.ID, AuthorsAttr), b.TrueAuthors)
		w.SetSnapshot(model.Obj(b.ID, TitleAttr), b.Title)
		w.SetSnapshot(model.Obj(b.ID, PublisherAttr), b.Publisher)
		w.SetSnapshot(model.Obj(b.ID, YearAttr), fmt.Sprintf("%d", b.Year))
		w.SetSnapshot(model.Obj(b.ID, TopicAttr), b.Topic)
	}
	return books
}

// sizesFor allocates per-store catalog sizes summing exactly to total, with
// the largest equal to max and the smallest 1 (a long-tailed marketplace).
func sizesFor(rng *rand.Rand, n, total, max int) []int {
	sizes := make([]int, n)
	// Power-law shape with a mild exponent: a marketplace has a fat head
	// and a long tail, but also enough mid-size stores to host the copier
	// network.
	raw := make([]float64, n)
	var sum float64
	for i := range raw {
		raw[i] = math.Pow(float64(i+1), -0.8)
		sum += raw[i]
	}
	// The bottom 5% of stores are micro-sellers with 1-3 books (the
	// paper's books-per-store range starts at 1); the rest follow the
	// power law.
	tail := n / 20
	if tail < 1 {
		tail = 1
	}
	remaining := total - n // every store gets at least 1
	for i := range sizes {
		if i >= n-tail {
			sizes[i] = 1 + i%3
			continue
		}
		sizes[i] = 1 + int(float64(remaining)*raw[i]/sum)
		if sizes[i] > max {
			sizes[i] = max
		}
	}
	// Fix the sum exactly: distribute the residue over mid-range stores,
	// leaving the micro-sellers untouched so the minimum stays 1.
	cur := 0
	for _, s := range sizes {
		cur += s
	}
	for cur != total {
		i := rng.Intn(n)
		if sizes[i] <= 3 {
			continue
		}
		if cur < total && sizes[i] < max {
			sizes[i]++
			cur++
		} else if cur > total && sizes[i] > 4 {
			sizes[i]--
			cur--
		}
	}
	// Pin the largest store to max so the reported range matches.
	largest := 0
	for i, s := range sizes {
		if s > sizes[largest] {
			largest = i
		}
		_ = s
	}
	diff := max - sizes[largest]
	sizes[largest] = max
	// Re-balance the diff over mid-range stores.
	for diff != 0 {
		i := rng.Intn(n)
		if i == largest || sizes[i] <= 3 {
			continue
		}
		if diff > 0 && sizes[i] > 4 {
			sizes[i]--
			diff--
		} else if diff < 0 && sizes[i] < max {
			sizes[i]++
			diff++
		}
	}
	return sizes
}

// planGroups returns copier-group sizes whose within-group pair counts sum
// to exactly target: Σ C(g,2) = target. Greedy from the largest group size
// so the store budget (groups need stores with adequate catalogs) stays
// small.
func planGroups(target int) []int {
	var groups []int
	remaining := target
	for _, g := range []int{5, 4, 3} {
		pairs := g * (g - 1) / 2
		for remaining >= pairs {
			groups = append(groups, g)
			remaining -= pairs
		}
	}
	for remaining > 0 {
		groups = append(groups, 2)
		remaining--
	}
	return groups
}

// assignGroups attaches copier groups to stores: each group has one master
// (a store with a big-enough catalog) and size-1 copiers. Returns the
// membership map used to order generation.
func assignGroups(rng *rand.Rand, groups []int, corpus *BookCorpus,
	sizes []int, cfg BookConfig) map[int]int {
	// Sort store indices by size descending; masters come from the top,
	// copiers from stores with size >= MinSharedForDep.
	idx := make([]int, len(sizes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return sizes[idx[a]] > sizes[idx[b]] })
	membership := map[int]int{} // store index -> group id
	// Two cursors: masters come from the big end, copiers from the small
	// end of the eligible range — otherwise copiers would consume the big
	// stores the later groups need for masters.
	front := 0
	back := len(idx) - 1
	takeMaster := func(minSize int) int {
		for front <= back {
			i := idx[front]
			front++
			if sizes[i] >= minSize {
				return i
			}
			return -1 // sorted descending: nothing bigger remains
		}
		return -1
	}
	takeCopier := func(minSize int) int {
		for front <= back {
			i := idx[back]
			back--
			if sizes[i] >= minSize {
				return i
			}
		}
		return -1
	}
	for gid, g := range groups {
		need := cfg.MinSharedForDep
		masterIdx := takeMaster(need * 2)
		if masterIdx < 0 {
			break
		}
		membership[masterIdx] = gid
		master := corpus.Stores[masterIdx]
		members := []model.SourceID{master}
		for k := 1; k < g; k++ {
			ci := takeCopier(need * 2)
			if ci < 0 {
				break
			}
			membership[ci] = gid
			copier := corpus.Stores[ci]
			corpus.MasterOf[copier] = master
			members = append(members, copier)
		}
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				corpus.DependentPairs[model.NewSourcePair(members[a], members[b])] = true
			}
		}
	}
	return membership
}

// generationOrder yields store indices with masters before their copiers.
func generationOrder(corpus *BookCorpus, membership map[int]int) []int {
	var masters, copiers, rest []int
	for i, s := range corpus.Stores {
		if _, isCopier := corpus.MasterOf[s]; isCopier {
			copiers = append(copiers, i)
		} else if _, inGroup := membership[i]; inGroup {
			masters = append(masters, i)
		} else {
			rest = append(rest, i)
		}
	}
	out := append(masters, rest...)
	return append(out, copiers...)
}

// sampleBooks draws a catalog of the given size without replacement,
// weighted by popularity.
func sampleBooks(rng *rand.Rand, nBooks, size int, weights []float64) []int {
	if size >= nBooks {
		all := make([]int, nBooks)
		for i := range all {
			all[i] = i
		}
		return all
	}
	chosen := map[int]bool{}
	out := make([]int, 0, size)
	var total float64
	for _, w := range weights {
		total += w
	}
	for len(out) < size {
		r := rng.Float64() * total
		for i, w := range weights {
			if chosen[i] {
				continue
			}
			r -= w
			if r <= 0 {
				chosen[i] = true
				out = append(out, i)
				total -= w
				break
			}
		}
		// Degenerate numeric tail: fall back to scanning.
		if r > 0 {
			for i := range weights {
				if !chosen[i] {
					chosen[i] = true
					out = append(out, i)
					total -= weights[i]
					break
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// copierCatalog picks the copier's books mostly from the master's catalog
// (at least MinSharedForDep overlap) plus independent extras. Copiers
// prefer the master's most popular books, so two copiers of the same
// master also overlap each other heavily (they are pairwise dependent and
// must share enough books to be analyzable).
func copierCatalog(rng *rand.Rand, masterCatalog []int, size int,
	cfg BookConfig, weights []float64) []int {
	shared := size * 9 / 10
	if shared > len(masterCatalog) {
		shared = len(masterCatalog)
	}
	if shared < cfg.MinSharedForDep {
		shared = min(cfg.MinSharedForDep, len(masterCatalog))
	}
	byPop := make([]int, len(masterCatalog))
	copy(byPop, masterCatalog)
	sort.Slice(byPop, func(a, b int) bool { return weights[byPop[a]] > weights[byPop[b]] })
	chosen := map[int]bool{}
	out := make([]int, 0, size)
	for _, bi := range byPop[:shared] {
		chosen[bi] = true
		out = append(out, bi)
	}
	// Fill the remainder with independent picks.
	nBooks := len(weights)
	for len(out) < size {
		bi := rng.Intn(nBooks)
		if !chosen[bi] {
			chosen[bi] = true
			out = append(out, bi)
		}
	}
	sort.Ints(out)
	return out
}

// independentListing renders the store's own listing for a book: the true
// author list (in the house style) with probability acc, otherwise a
// corruption — usually from the book's shared error pool (real corruptions
// recur: common upstream feeds, common OCR confusions), sometimes a fresh
// store-specific mistake.
func independentListing(rng *rand.Rand, b Book, errorPool [][]author,
	acc float64, houseStyle style) string {
	authors := b.Authors
	if rng.Float64() >= acc {
		if rng.Float64() < 0.95 {
			authors = errorPool[rng.Intn(len(errorPool))]
		} else {
			authors = corruptAuthors(rng, b.Authors, rng.Intn(1<<20))
		}
		// Corrupted listings come from upstream feeds and carry the feed's
		// canonical rendering, not the store's house style — which keeps
		// the distinct-forms count per book in the paper's 1-23 band.
		return renderAuthors(authors, styleFull)
	}
	// Occasionally deviate from the house style (inconsistent catalogs).
	st := houseStyle
	if rng.Float64() < 0.05 {
		st = style(rng.Intn(int(numStyles)))
	}
	return renderAuthors(authors, st)
}

// corruptAuthors produces one corrupted variant of an author list: drop an
// author, misspell a family name, swap in a wrong author, or reorder.
func corruptAuthors(rng *rand.Rand, authors []author, bookIdx int) []author {
	out := make([]author, len(authors))
	copy(out, authors)
	switch rng.Intn(4) {
	case 0: // drop one (if possible)
		if len(out) > 1 {
			i := rng.Intn(len(out))
			out = append(out[:i], out[i+1:]...)
		} else {
			out[0].family = misspell(rng, out[0].family)
		}
	case 1: // misspell a family name
		i := rng.Intn(len(out))
		out[i].family = misspell(rng, out[i].family)
	case 2: // wrong author swapped in
		g, f := personName(bookIdx*13 + 7)
		out[rng.Intn(len(out))] = author{given: g, family: f}
	default: // misordered plus a family misspelling (reordering alone is
		// only formatting, which linkage forgives; the misspelling makes
		// it a genuine error)
		if len(out) > 1 {
			out[0], out[len(out)-1] = out[len(out)-1], out[0]
		}
		out[0].family = misspell(rng, out[0].family)
	}
	return out
}

func addListing(d *dataset.Dataset, s model.SourceID, b Book, authorsVal string) error {
	o := model.Obj(b.ID, AuthorsAttr)
	if err := d.Add(model.NewClaim(s, o, authorsVal)); err != nil {
		return err
	}
	// Title, publisher, year and topic are listed faithfully; the
	// conflicting attribute under study is the author list. Fixed
	// attribute order keeps generation deterministic.
	rest := []struct{ attr, v string }{
		{TitleAttr, b.Title},
		{PublisherAttr, b.Publisher},
		{YearAttr, fmt.Sprintf("%d", b.Year)},
		{TopicAttr, b.Topic},
	}
	for _, kv := range rest {
		if err := d.Add(model.NewClaim(s, model.Obj(b.ID, kv.attr), kv.v)); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
