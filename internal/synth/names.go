package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// Deterministic name and word pools for the generators. Everything derives
// from small syllable inventories so corpora are reproducible from a seed
// and contain no external data.

var givenNames = []string{
	"James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
	"Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Anish",
	"Luna", "Amelie", "Divesh", "Laure", "Hector", "Jeffrey", "Jennifer",
	"Joshua", "Alon", "Dan", "Magda", "Nilesh", "Xin", "Wei", "Chen",
	"Yuki", "Ravi", "Priya", "Carlos", "Elena", "Olaf", "Ingrid", "Pierre",
	"Marie", "Giovanni", "Lucia", "Pavel", "Olga", "Kwame", "Amara",
}

var familySyllables = []string{
	"son", "berg", "stein", "man", "ton", "ley", "field", "worth", "wood",
	"ham", "ford", "well", "more", "gard", "lund", "vist", "dahl", "strom",
}

var familyRoots = []string{
	"Ander", "Peter", "Gold", "Silver", "Black", "White", "Green", "Hill",
	"Stone", "River", "Lake", "North", "South", "East", "West", "Fair",
	"Strong", "Wise", "Swift", "Bright", "Free", "Young", "Old", "New",
	"Linde", "Berg", "Ek", "Ceder", "Bjork", "Alm", "Ask", "Rosen",
}

// familyName deterministically composes a family name from an index.
func familyName(i int) string {
	root := familyRoots[i%len(familyRoots)]
	syl := familySyllables[(i/len(familyRoots))%len(familySyllables)]
	return root + syl
}

// personName returns a deterministic full name for an index.
func personName(i int) (given, family string) {
	return givenNames[i%len(givenNames)], familyName(i / len(givenNames) % 500)
}

// Topics used by the bookstore generator; Q1 and Q4 of Example 4.1 filter
// on these.
var topics = []string{
	"Java Programming", "Database Systems", "Operating Systems",
	"Computer Networks", "Artificial Intelligence", "Compilers",
	"Algorithms", "Software Engineering", "Computer Architecture",
	"Information Retrieval",
}

var titleAdjectives = []string{
	"Practical", "Advanced", "Effective", "Modern", "Essential",
	"Fundamental", "Applied", "Professional", "Introductory", "Complete",
}

var titleNouns = []string{
	"Guide", "Handbook", "Primer", "Reference", "Cookbook", "Companion",
	"Foundations", "Principles", "Patterns", "Techniques",
}

var publishers = []string{
	"Addison-Wesley", "O'Reilly", "Prentice Hall", "Morgan Kaufmann",
	"MIT Press", "Springer", "Cambridge University Press", "Wiley",
	"McGraw-Hill", "Manning",
}

// bookTitle composes a deterministic title for a topic and index.
func bookTitle(topic string, i int) string {
	adj := titleAdjectives[i%len(titleAdjectives)]
	noun := titleNouns[(i/len(titleAdjectives))%len(titleNouns)]
	if i%3 == 0 {
		return fmt.Sprintf("%s %s: A %s", adj, topic, noun)
	}
	return fmt.Sprintf("The %s %s %s", adj, topic, noun)
}

// misspell corrupts a word deterministically given an rng: swaps two
// adjacent letters, drops one, or doubles one.
func misspell(rng *rand.Rand, w string) string {
	r := []rune(w)
	if len(r) < 3 {
		return w + "x"
	}
	i := 1 + rng.Intn(len(r)-2)
	switch rng.Intn(3) {
	case 0: // transpose (fall through to drop when neighbors are equal)
		if r[i] != r[i+1] {
			r[i], r[i+1] = r[i+1], r[i]
			return string(r)
		}
		return string(r[:i]) + string(r[i+1:])
	case 1: // drop
		return string(r[:i]) + string(r[i+1:])
	default: // double
		return string(r[:i+1]) + string(r[i:])
	}
}

// styleRender renders an author list in one of the house styles bookstores
// use; all styles are alternative representations of the same value.
type style int

const (
	styleFull         style = iota // "Given Family; Given Family"
	styleInitials                  // "G. Family; G. Family"
	styleInverted                  // "Family, Given; ..."
	styleAndSeparated              // "Given Family and Given Family"
	numStyles
)

type author struct{ given, family string }

func renderAuthors(authors []author, st style) string {
	parts := make([]string, len(authors))
	for i, a := range authors {
		switch st {
		case styleInitials:
			parts[i] = a.given[:1] + ". " + a.family
		case styleInverted:
			parts[i] = a.family + ", " + a.given
		default:
			parts[i] = a.given + " " + a.family
		}
	}
	if st == styleAndSeparated {
		return strings.Join(parts, " and ")
	}
	return strings.Join(parts, "; ")
}
