package synth

import (
	"math/rand"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/strsim"
)

func TestBookConfigValidate(t *testing.T) {
	if err := DefaultBookConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*BookConfig){
		func(c *BookConfig) { c.NStores = 1 },
		func(c *BookConfig) { c.MaxPerStore = 0 },
		func(c *BookConfig) { c.MaxPerStore = c.NBooks + 1 },
		func(c *BookConfig) { c.DepPairTarget = -1 },
		func(c *BookConfig) { c.MinSharedForDep = 0 },
		func(c *BookConfig) { c.CopyRate = 1 },
		func(c *BookConfig) { c.ErrorPoolSize = 0 },
		func(c *BookConfig) { c.MinAccuracy = 0.95 },
	} {
		c := DefaultBookConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatal("invalid config accepted")
		}
	}
}

// smallBookConfig keeps unit tests fast; the full-scale corpus is exercised
// by EX4 and the benchmarks.
func smallBookConfig() BookConfig {
	cfg := DefaultBookConfig()
	cfg.NBooks = 120
	cfg.NStores = 60
	cfg.NListings = 1800
	cfg.MaxPerStore = 100
	cfg.DepPairTarget = 12
	return cfg
}

func TestGenerateBooksPopulationTargets(t *testing.T) {
	cfg := smallBookConfig()
	corpus, err := GenerateBooks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Books) != cfg.NBooks {
		t.Fatalf("books = %d", len(corpus.Books))
	}
	if len(corpus.Stores) != cfg.NStores {
		t.Fatalf("stores = %d", len(corpus.Stores))
	}
	if corpus.Listings != cfg.NListings {
		t.Fatalf("listings = %d, want %d", corpus.Listings, cfg.NListings)
	}
	if len(corpus.DependentPairs) != cfg.DepPairTarget {
		t.Fatalf("dependent pairs = %d, want %d", len(corpus.DependentPairs), cfg.DepPairTarget)
	}
	// Catalog sizes: min 1, max = MaxPerStore.
	sizes := map[model.SourceID]int{}
	for _, s := range corpus.Stores {
		for _, o := range corpus.Dataset.ObjectsOf(s) {
			if o.Attribute == AuthorsAttr {
				sizes[s]++
			}
		}
	}
	minS, maxS := cfg.NBooks+1, 0
	for _, n := range sizes {
		if n < minS {
			minS = n
		}
		if n > maxS {
			maxS = n
		}
	}
	if minS < 1 || maxS != cfg.MaxPerStore {
		t.Fatalf("catalog sizes: min=%d max=%d (want max=%d)", minS, maxS, cfg.MaxPerStore)
	}
}

func TestGenerateBooksDependentPairsShareEnough(t *testing.T) {
	corpus, err := GenerateBooks(smallBookConfig())
	if err != nil {
		t.Fatal(err)
	}
	authors, err := corpus.AuthorsDataset()
	if err != nil {
		t.Fatal(err)
	}
	for pair := range corpus.DependentPairs {
		ov := authors.OverlapOf(pair.A, pair.B)
		if len(ov.Objects) < corpus.Config.MinSharedForDep {
			t.Errorf("planted pair %v shares only %d books", pair, len(ov.Objects))
		}
	}
}

func TestGenerateBooksCopierReplication(t *testing.T) {
	corpus, err := GenerateBooks(smallBookConfig())
	if err != nil {
		t.Fatal(err)
	}
	authors, _ := corpus.AuthorsDataset()
	// Each copier must agree verbatim with its master on most shared books.
	for copier, master := range corpus.MasterOf {
		ov := authors.OverlapOf(copier, master)
		if len(ov.Objects) == 0 {
			t.Fatalf("copier %v shares nothing with master %v", copier, master)
		}
		agree := float64(ov.Same) / float64(len(ov.Objects))
		if agree < 0.6 {
			t.Errorf("copier %v agrees with master on %.0f%% of shared books", copier, 100*agree)
		}
	}
}

func TestGenerateBooksVariantStatistics(t *testing.T) {
	corpus, err := GenerateBooks(smallBookConfig())
	if err != nil {
		t.Fatal(err)
	}
	authors, _ := corpus.AuthorsDataset()
	// Variants per book: the raw surface-form count must span from 1 to
	// many, with a small average — the Example 4.1 dirtiness shape.
	var min, max, sum, n int
	min = 1 << 30
	for _, o := range authors.Objects() {
		v := len(authors.ValuesFor(o))
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
		n++
	}
	// The small test config is dense (every book gets several listings);
	// the full-scale corpus reaches min = 1 and is asserted by EX4.
	if min > 2 {
		t.Errorf("min variants = %d, want <= 2", min)
	}
	if max < 5 {
		t.Errorf("max variants = %d, want a dirty popular book", max)
	}
	mean := float64(sum) / float64(n)
	if mean < 1.5 || mean > 8 {
		t.Errorf("mean variants = %.2f, want a small-single-digit mean", mean)
	}
}

func TestGenerateBooksAccuracySpread(t *testing.T) {
	corpus, err := GenerateBooks(smallBookConfig())
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi float64 = 2, -1
	for _, a := range corpus.StoreAccuracy {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if lo != corpus.Config.MinAccuracy || hi != corpus.Config.MaxAccuracy {
		t.Fatalf("accuracy range [%v, %v], want [%v, %v]",
			lo, hi, corpus.Config.MinAccuracy, corpus.Config.MaxAccuracy)
	}
}

func TestGenerateBooksDeterministic(t *testing.T) {
	a, err := GenerateBooks(smallBookConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateBooks(smallBookConfig())
	if a.Listings != b.Listings || len(a.DependentPairs) != len(b.DependentPairs) {
		t.Fatal("corpus not deterministic")
	}
	ca, cb := a.Dataset.Claims(), b.Dataset.Claims()
	if len(ca) != len(cb) {
		t.Fatal("claim counts differ")
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("claim %d differs: %v vs %v", i, ca[i], cb[i])
		}
	}
}

func TestSampleAccuracyMatchesPlanted(t *testing.T) {
	corpus, err := GenerateBooks(smallBookConfig())
	if err != nil {
		t.Fatal(err)
	}
	same := func(listed, truth string) bool {
		return strsim.AuthorListSim(
			strsim.ParseAuthorList(listed), strsim.ParseAuthorList(truth)) > 0.9
	}
	// Independent stores' sampled accuracy should track their planted
	// accuracy; check correlation over stores with enough books.
	var planted, sampled []float64
	for _, s := range corpus.Stores {
		if _, isCopier := corpus.MasterOf[s]; isCopier {
			continue
		}
		objs := 0
		for _, o := range corpus.Dataset.ObjectsOf(s) {
			if o.Attribute == AuthorsAttr {
				objs++
			}
		}
		if objs < 20 {
			continue
		}
		planted = append(planted, corpus.StoreAccuracy[s])
		sampled = append(sampled, corpus.SampleAccuracy(s, 100, same))
	}
	if len(planted) < 5 {
		t.Skip("too few large stores in the small config")
	}
	var num, da, db float64
	ma, mb := mean(planted), mean(sampled)
	for i := range planted {
		num += (planted[i] - ma) * (sampled[i] - mb)
		da += (planted[i] - ma) * (planted[i] - ma)
		db += (sampled[i] - mb) * (sampled[i] - mb)
	}
	if da == 0 || db == 0 {
		t.Fatal("degenerate accuracy spread")
	}
	if r := num / (sqrt(da) * sqrt(db)); r < 0.8 {
		t.Fatalf("sampled accuracy correlates %v with planted, want >= 0.8", r)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestPlanGroupsExactPairCount(t *testing.T) {
	for _, target := range []int{0, 1, 5, 12, 100, 471} {
		groups := planGroups(target)
		var pairs int
		for _, g := range groups {
			pairs += g * (g - 1) / 2
		}
		if pairs != target {
			t.Errorf("planGroups(%d) yields %d pairs", target, pairs)
		}
	}
}

func TestSizesForInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sizes := sizesFor(rng, 100, 3000, 500)
	var sum, max int
	for _, s := range sizes {
		if s < 1 {
			t.Fatal("size below 1")
		}
		if s > max {
			max = s
		}
		sum += s
	}
	if sum != 3000 {
		t.Fatalf("sizes sum to %d", sum)
	}
	if max != 500 {
		t.Fatalf("max size = %d, want 500", max)
	}
}

func TestGenerateSnapshot(t *testing.T) {
	cfg := SnapshotConfig{
		Seed:           2,
		NObjects:       50,
		IndependentAcc: []float64{0.9, 0.8},
		Copiers:        []CopierSpec{{MasterIndex: 0, CopyRate: 0.8, OwnAcc: 0.7}},
		FalsePool:      10,
	}
	sw, err := GenerateSnapshot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Dataset.Sources()) != 3 || len(sw.Dataset.Objects()) != 50 {
		t.Fatalf("world shape: %d sources, %d objects",
			len(sw.Dataset.Sources()), len(sw.Dataset.Objects()))
	}
	if sw.MasterOf["C0"] != "I0" {
		t.Fatal("master mapping wrong")
	}
	// The copier should agree with its master far more than chance.
	ov := sw.Dataset.OverlapOf("C0", "I0")
	if float64(ov.Same)/float64(len(ov.Objects)) < 0.7 {
		t.Fatalf("copier agreement = %d/%d", ov.Same, len(ov.Objects))
	}
	if _, err := GenerateSnapshot(SnapshotConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestGenerateTemporal(t *testing.T) {
	cfg := TemporalConfig{
		Seed:       3,
		NObjects:   30,
		Horizon:    40,
		ChangeRate: 0.15,
		Publishers: []PublisherSpec{
			{CaptureProb: 0.95, MaxDelay: 2},
			{CaptureProb: 0.85, MaxDelay: 3},
		},
		LazyCopiers: []LazyCopierSpec{
			{MasterIndex: 0, CopyProb: 0.85, MinLag: 1, MaxLag: 4},
		},
	}
	tw, err := GenerateTemporal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tw.Dataset.Sources()) != 3 {
		t.Fatalf("sources = %v", tw.Dataset.Sources())
	}
	// Copier claims must postdate the master's same-value claims.
	trailing, total := 0, 0
	masterTimes := map[string]model.Time{}
	for _, c := range tw.Dataset.UpdateTrace("P0") {
		masterTimes[c.Object.String()+"\x00"+c.Value] = c.Time
	}
	for _, c := range tw.Dataset.UpdateTrace("L0") {
		if mt, ok := masterTimes[c.Object.String()+"\x00"+c.Value]; ok {
			total++
			if c.Time > mt {
				trailing++
			}
		}
	}
	if total == 0 || float64(trailing)/float64(total) < 0.95 {
		t.Fatalf("copier trails master on %d/%d matched updates", trailing, total)
	}
	// Quantization coarsens timestamps.
	cfg.SnapshotEvery = 5
	tq, err := GenerateTemporal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tq.Dataset.Claims() {
		if c.Time%5 != 0 {
			t.Fatalf("unquantized claim time %d", c.Time)
		}
	}
}

func TestGenerateRatings(t *testing.T) {
	cfg := RatingConfig{
		Seed: 4, NItems: 40, NHonest: 5, NoiseRate: 0.2,
		NContrarians: 1, NCopiers: 1, OppositionRate: 1,
	}
	rw, err := GenerateRatings(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rw.Dataset.Sources()) != 7 {
		t.Fatalf("sources = %v", rw.Dataset.Sources())
	}
	scale := map[string]bool{"Good": true, "Neutral": true, "Bad": true}
	for _, c := range rw.Dataset.Claims() {
		if !scale[c.Value] {
			t.Fatalf("off-scale rating %q", c.Value)
		}
	}
	// The copier matches R0 exactly.
	ov := rw.Dataset.OverlapOf("COPY0", "R0")
	if ov.Same != len(ov.Objects) {
		t.Fatalf("copier mismatch: %d/%d", ov.Same, len(ov.Objects))
	}
	// The full contrarian never agrees with R0 on polarized ratings.
	contra := rw.Dataset.OverlapOf("CONTRA0", "R0")
	if contra.Same > cfg.NItems/2 {
		t.Fatalf("contrarian agrees too much: %d/%d", contra.Same, len(contra.Objects))
	}
	if _, err := GenerateRatings(RatingConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRenderAuthorsStyles(t *testing.T) {
	authors := []author{{given: "Jeffrey", family: "Ullman"}, {given: "Jennifer", family: "Widom"}}
	forms := map[style]string{
		styleFull:         "Jeffrey Ullman; Jennifer Widom",
		styleInitials:     "J. Ullman; J. Widom",
		styleInverted:     "Ullman, Jeffrey; Widom, Jennifer",
		styleAndSeparated: "Jeffrey Ullman and Jennifer Widom",
	}
	for st, want := range forms {
		if got := renderAuthors(authors, st); got != want {
			t.Errorf("style %d = %q, want %q", int(st), got, want)
		}
	}
	// All styles must parse to the same canonical key.
	keys := map[string]bool{}
	for st := range forms {
		keys[strsim.ParseAuthorList(renderAuthors(authors, st)).CanonicalKey()] = true
	}
	if len(keys) != 1 {
		t.Fatalf("styles parse to %d distinct keys", len(keys))
	}
}

func TestMisspellChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		w := "Ullman"
		if got := misspell(rng, w); got == w {
			t.Fatalf("misspell returned the original")
		}
	}
	if got := misspell(rng, "ab"); got != "abx" {
		t.Fatalf("short word misspell = %q", got)
	}
}

func TestCorruptAuthorsDiffersFromTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	authors := []author{{given: "Hector", family: "Garcia"}, {given: "Jeff", family: "Ullman"}}
	truthKey := strsim.ParseAuthorList(renderAuthors(authors, styleFull)).CanonicalKey()
	for i := 0; i < 30; i++ {
		bad := corruptAuthors(rng, authors, i)
		key := strsim.ParseAuthorList(renderAuthors(bad, styleFull)).CanonicalKey()
		if key == truthKey {
			t.Fatalf("corruption %d preserved the canonical key", i)
		}
	}
}

func TestBookTruthRegistered(t *testing.T) {
	corpus, err := GenerateBooks(smallBookConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := corpus.Books[0]
	v, ok := corpus.World.TrueNow(BookObj(b.ID))
	if !ok || v != b.TrueAuthors {
		t.Fatalf("truth for %s = %q,%v", b.ID, v, ok)
	}
	if _, ok := corpus.World.TrueNow(model.Obj(b.ID, PublisherAttr)); !ok {
		t.Fatal("publisher truth missing")
	}
}

func TestAuthorsDatasetProjection(t *testing.T) {
	corpus, err := GenerateBooks(smallBookConfig())
	if err != nil {
		t.Fatal(err)
	}
	authors, err := corpus.AuthorsDataset()
	if err != nil {
		t.Fatal(err)
	}
	if authors.Len() != corpus.Listings {
		t.Fatalf("authors claims = %d, want %d listings", authors.Len(), corpus.Listings)
	}
	for _, o := range authors.Objects() {
		if o.Attribute != AuthorsAttr {
			t.Fatalf("non-author object %v leaked", o)
		}
	}
	_ = dataset.AffAttr // keep the import honest if assertions change
}
