package linkage

import (
	"fmt"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

func TestIterativeConfigValidate(t *testing.T) {
	if err := DefaultIterativeConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*IterativeConfig){
		func(c *IterativeConfig) { c.Rounds = 0 },
		func(c *IterativeConfig) { c.VetoBelief = 0 },
		func(c *IterativeConfig) { c.VetoRatio = 1 },
		func(c *IterativeConfig) { c.Linkage.Sim = nil },
		func(c *IterativeConfig) { c.Truth.N = 0 },
	} {
		c := DefaultIterativeConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatal("invalid config accepted")
		}
	}
}

func TestLinkThenDiscoverRequiresFrozen(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("S1", bookObj("i"), "A B"))
	if _, err := LinkThenDiscover(d, DefaultIterativeConfig()); err == nil {
		t.Fatal("unfrozen dataset accepted")
	}
}

func TestLinkThenDiscoverSingleRoundEqualsPipeline(t *testing.T) {
	d := dataset.New()
	o := bookObj("i1")
	_ = d.Add(model.NewClaim("S1", o, "Jeffrey Ullman"))
	_ = d.Add(model.NewClaim("S2", o, "J. Ullman"))
	_ = d.Add(model.NewClaim("S3", o, "Donald Knuth"))
	d.Freeze()
	cfg := DefaultIterativeConfig()
	cfg.Rounds = 1
	res, err := LinkThenDiscover(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	// The linked cluster (2 supporters) must win truth discovery.
	chosen := res.Truth.Chosen[o]
	if chosen != "Jeffrey Ullman" {
		t.Fatalf("chosen = %q", chosen)
	}
}

func TestLinkThenDiscoverVetoSeparatesWrongValue(t *testing.T) {
	// A typo form ("Xing Dong") sits close to the canonical; round 1
	// merges it, but its negligible support inside an established cluster
	// triggers the veto and round 2 splits it out.
	d := dataset.New()
	o := model.Obj("paper", "author")
	for i := 0; i < 6; i++ {
		_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("A%d", i)), o, "Xin Dong"))
	}
	_ = d.Add(model.NewClaim("B0", o, "Xing Dong"))
	d.Freeze()
	cfg := DefaultIterativeConfig()
	cfg.Linkage.Sim = func(a, b string) float64 {
		// Aggressive round-1 similarity that merges the typo.
		if a == b {
			return 1
		}
		return 0.9
	}
	cfg.Rounds = 2
	res, err := LinkThenDiscover(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := res.Linkage.ClustersOf(o)
	if len(clusters) != 2 {
		t.Fatalf("after veto round, clusters = %d: %+v", len(clusters), clusters)
	}
	if res.Truth.Chosen[o] != "Xin Dong" {
		t.Fatalf("chosen = %q", res.Truth.Chosen[o])
	}
}

func TestLinkThenDiscoverStableWhenNothingToVeto(t *testing.T) {
	d := dataset.New()
	o := bookObj("i2")
	_ = d.Add(model.NewClaim("S1", o, "Alpha Beta"))
	_ = d.Add(model.NewClaim("S2", o, "Alpha Beta"))
	_ = d.Add(model.NewClaim("S3", o, "Gamma Delta"))
	d.Freeze()
	cfg := DefaultIterativeConfig()
	cfg.Rounds = 3
	res, err := LinkThenDiscover(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if got := len(res.Linkage.ClustersOf(o)); got != 2 {
		t.Fatalf("clusters = %d", got)
	}
}
