// Package linkage implements record linkage — the second application of
// §4: linking alternative representations of the same value so that truth
// discovery votes on semantics rather than spelling.
//
// The Example 4.1 pipeline needs this for author lists: "Jeffrey D. Ullman",
// "J. Ullman" and "Ullman, Jeffrey" must merge into one cluster before
// voting, while "Xing Dong" (a typo) must stay apart from "Xin Dong" even
// though it is *closer* as a string than the legitimate alternative "Luna
// Dong". String similarity alone cannot make that call (§4's "the boundary
// between a wrong value and an alternative representation is often vague");
// the resolver therefore combines similarity with SUPPORT: a representation
// independently provided by many sources is an alternative representation,
// one provided only by low-support stragglers is a wrong value.
//
// Pipeline: blocking (cheap key) -> pairwise scoring (strsim) -> union-find
// clustering -> canonical representative (support-weighted) -> claim
// rewriting. The iterative entry point (LinkThenDiscover) alternates
// linkage and truth discovery as §4 suggests.
package linkage

import (
	"errors"
	"fmt"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/strsim"
)

// Similarity scores two value strings in [0, 1]. The default treats values
// as author lists; plain attributes can use strsim.JaroWinkler directly.
type Similarity func(a, b string) float64

// AuthorListSim parses both values as author lists and scores them
// order-insensitively.
func AuthorListSim(a, b string) float64 {
	return strsim.AuthorListSim(strsim.ParseAuthorList(a), strsim.ParseAuthorList(b))
}

// Config parameterizes linkage.
type Config struct {
	// Sim scores candidate pairs; MatchThreshold links them.
	Sim            Similarity
	MatchThreshold float64
	// BlockKey maps a value to a blocking key; only values sharing a key
	// are compared. nil compares everything within an object (values for
	// different objects never link).
	BlockKey func(v string) string
	// MinAltSupport is the minimum number of distinct sources a merged
	// representation needs to be considered a legitimate alternative; with
	// fewer supporters it is classified a wrong value (still linked, but
	// reported).
	MinAltSupport int
}

// DefaultConfig links author-list style values.
func DefaultConfig() Config {
	return Config{
		Sim:            AuthorListSim,
		MatchThreshold: 0.75,
		BlockKey:       nil,
		MinAltSupport:  2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sim == nil {
		return errors.New("linkage: Sim must be set")
	}
	if c.MatchThreshold <= 0 || c.MatchThreshold > 1 {
		return errors.New("linkage: MatchThreshold must be in (0,1]")
	}
	if c.MinAltSupport < 1 {
		return errors.New("linkage: MinAltSupport must be >= 1")
	}
	return nil
}

// unionFind is a standard disjoint-set structure over value indices.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

// Variant is one surface form within a cluster.
type Variant struct {
	Value   string
	Support int // distinct sources providing exactly this form
}

// Cluster is a set of linked representations of (what linkage believes is)
// one underlying value of one object.
type Cluster struct {
	Object model.ObjectID
	// Canonical is the chosen representative (max support, ties to the
	// longer then lexicographically smaller form — longer forms carry more
	// information, e.g. full names beat initials).
	Canonical string
	Variants  []Variant
	// Support is the total distinct-source support of the cluster.
	Support int
	// WrongValueForms lists member forms whose support falls below
	// MinAltSupport — likely typos rather than representations.
	WrongValueForms []string
}

// Result is the outcome of linking one dataset.
type Result struct {
	// Clusters per object, in object order; within an object, by
	// decreasing support.
	Clusters []Cluster
	// Rewritten is the dataset with every claim's value replaced by its
	// cluster canonical (frozen).
	Rewritten *dataset.Dataset
	// CanonicalOf maps (object, raw value) to the canonical form.
	CanonicalOf map[model.ObjectID]map[string]string
}

// VariantsOf returns the number of distinct raw forms observed for an
// object (the "author lists per book" statistic of Example 4.1).
func (r *Result) VariantsOf(o model.ObjectID) int {
	var n int
	for _, c := range r.Clusters {
		if c.Object == o {
			n += len(c.Variants)
		}
	}
	return n
}

// ClustersOf returns the clusters of one object.
func (r *Result) ClustersOf(o model.ObjectID) []Cluster {
	var out []Cluster
	for _, c := range r.Clusters {
		if c.Object == o {
			out = append(out, c)
		}
	}
	return out
}

// Link clusters the representations of every object in a frozen dataset.
func Link(d *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, errors.New("linkage: dataset must be frozen")
	}
	res := &Result{CanonicalOf: map[model.ObjectID]map[string]string{}}
	rewritten := dataset.New()
	for _, o := range d.Objects() {
		groups := d.ValuesFor(o)
		clusters := clusterObject(o, groups, cfg)
		res.Clusters = append(res.Clusters, clusters...)
		canon := map[string]string{}
		for _, c := range clusters {
			for _, v := range c.Variants {
				canon[v.Value] = c.Canonical
			}
		}
		res.CanonicalOf[o] = canon
	}
	// Rewrite claims with canonical values.
	for _, c := range d.Claims() {
		nc := c
		if canon, ok := res.CanonicalOf[c.Object][c.Value]; ok {
			nc.Value = canon
		}
		if err := rewritten.Add(nc); err != nil {
			return nil, fmt.Errorf("linkage: rewrite: %w", err)
		}
	}
	rewritten.Freeze()
	res.Rewritten = rewritten
	return res, nil
}

func clusterObject(o model.ObjectID, groups []dataset.ValueGroup, cfg Config) []Cluster {
	n := len(groups)
	if n == 0 {
		return nil
	}
	uf := newUnionFind(n)
	// Blocking.
	blocks := map[string][]int{}
	for i, g := range groups {
		key := ""
		if cfg.BlockKey != nil {
			key = cfg.BlockKey(g.Value)
		}
		blocks[key] = append(blocks[key], i)
	}
	keys := make([]string, 0, len(blocks))
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idxs := blocks[k]
		for x := 0; x < len(idxs); x++ {
			for y := x + 1; y < len(idxs); y++ {
				i, j := idxs[x], idxs[y]
				if cfg.Sim(groups[i].Value, groups[j].Value) >= cfg.MatchThreshold {
					uf.union(i, j)
				}
			}
		}
	}
	// Materialize clusters.
	byRoot := map[int][]int{}
	for i := range groups {
		r := uf.find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	var out []Cluster
	for _, r := range roots {
		members := byRoot[r]
		c := Cluster{Object: o}
		for _, i := range members {
			g := groups[i]
			c.Variants = append(c.Variants, Variant{Value: g.Value, Support: len(g.Sources)})
			c.Support += len(g.Sources)
		}
		sort.Slice(c.Variants, func(a, b int) bool {
			if c.Variants[a].Support != c.Variants[b].Support {
				return c.Variants[a].Support > c.Variants[b].Support
			}
			if len(c.Variants[a].Value) != len(c.Variants[b].Value) {
				return len(c.Variants[a].Value) > len(c.Variants[b].Value)
			}
			return c.Variants[a].Value < c.Variants[b].Value
		})
		c.Canonical = c.Variants[0].Value
		for _, v := range c.Variants {
			if v.Support < cfg.MinAltSupport && v.Value != c.Canonical {
				c.WrongValueForms = append(c.WrongValueForms, v.Value)
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Support != out[b].Support {
			return out[a].Support > out[b].Support
		}
		return out[a].Canonical < out[b].Canonical
	})
	return out
}

// ClassifyForm labels a raw form against a linkage result: "canonical",
// "alternative" (linked, adequately supported), "wrong" (linked but
// under-supported), or "unknown".
func (r *Result) ClassifyForm(o model.ObjectID, raw string, cfg Config) string {
	canon, ok := r.CanonicalOf[o][raw]
	if !ok {
		return "unknown"
	}
	if canon == raw {
		return "canonical"
	}
	for _, c := range r.ClustersOf(o) {
		if c.Canonical != canon {
			continue
		}
		for _, w := range c.WrongValueForms {
			if w == raw {
				return "wrong"
			}
		}
		return "alternative"
	}
	return "unknown"
}
