package linkage

import (
	"fmt"
	"testing"
	"testing/quick"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

func bookObj(isbn string) model.ObjectID { return model.Obj(isbn, "authors") }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.Sim = nil },
		func(c *Config) { c.MatchThreshold = 0 },
		func(c *Config) { c.MatchThreshold = 1.5 },
		func(c *Config) { c.MinAltSupport = 0 },
	} {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatal("invalid config accepted")
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	if uf.find(0) != uf.find(1) || uf.find(3) != uf.find(4) {
		t.Fatal("union failed")
	}
	if uf.find(0) == uf.find(3) {
		t.Fatal("disjoint sets merged")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(4) {
		t.Fatal("transitive union failed")
	}
	// Idempotence property.
	f := func(a, b uint8) bool {
		uf := newUnionFind(16)
		x, y := int(a%16), int(b%16)
		uf.union(x, y)
		r1 := uf.find(x)
		uf.union(x, y)
		return uf.find(x) == r1 && uf.find(y) == r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkRequiresFrozen(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("B1", bookObj("i1"), "J. Ullman"))
	if _, err := Link(d, DefaultConfig()); err == nil {
		t.Fatal("unfrozen dataset accepted")
	}
}

func TestLinkMergesAuthorListVariants(t *testing.T) {
	d := dataset.New()
	o := bookObj("isbn1")
	// Five stores, three surface forms of the same author list, plus a
	// genuinely different (wrong) author.
	_ = d.Add(model.NewClaim("B1", o, "Hector Garcia-Molina; Jeffrey Ullman; Jennifer Widom"))
	_ = d.Add(model.NewClaim("B2", o, "H. Garcia-Molina; J. Ullman; J. Widom"))
	_ = d.Add(model.NewClaim("B3", o, "J. Widom; H. Garcia-Molina; J. Ullman")) // reordered
	_ = d.Add(model.NewClaim("B4", o, "Hector Garcia-Molina; Jeffrey Ullman; Jennifer Widom"))
	_ = d.Add(model.NewClaim("B5", o, "Donald Knuth")) // different value entirely
	d.Freeze()
	res, err := Link(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clusters := res.ClustersOf(o)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d: %+v", len(clusters), clusters)
	}
	top := clusters[0]
	if top.Support != 4 {
		t.Fatalf("top cluster support = %d", top.Support)
	}
	// Canonical should be the fully spelled form (max support, longest).
	if top.Canonical != "Hector Garcia-Molina; Jeffrey Ullman; Jennifer Widom" {
		t.Fatalf("canonical = %q", top.Canonical)
	}
	// Rewritten dataset: B2's claim now carries the canonical value.
	v, _ := res.Rewritten.Value("B2", o)
	if v != top.Canonical {
		t.Fatalf("rewritten B2 = %q", v)
	}
	// After rewriting, voting sees 4 votes for one value.
	groups := res.Rewritten.ValuesFor(o)
	if len(groups) != 2 {
		t.Fatalf("rewritten groups = %+v", groups)
	}
}

func TestWrongValueVsAlternativeRepresentation(t *testing.T) {
	// The §4 challenge: "Luna Dong" is an alternative representation of
	// "Xin Dong" (both well supported), "Xing Dong" is a wrong value (one
	// straggler). String distance alone would order them the other way.
	d := dataset.New()
	o := model.Obj("dong-paper", "author")
	for i := 0; i < 4; i++ {
		_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("A%d", i)), o, "Xin Dong"))
	}
	for i := 0; i < 3; i++ {
		_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("B%d", i)), o, "Luna Dong"))
	}
	_ = d.Add(model.NewClaim("C0", o, "Xing Dong"))
	d.Freeze()
	cfg := DefaultConfig()
	cfg.Sim = func(a, b string) float64 { return nameSimForTest(a, b) }
	cfg.MatchThreshold = 0.7
	res, err := Link(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All three forms land in one cluster (all are Dongs), but support
	// classifies them differently.
	if got := res.ClassifyForm(o, "Xin Dong", cfg); got != "canonical" {
		t.Errorf("Xin Dong = %q", got)
	}
	if got := res.ClassifyForm(o, "Luna Dong", cfg); got != "alternative" {
		t.Errorf("Luna Dong = %q", got)
	}
	if got := res.ClassifyForm(o, "Xing Dong", cfg); got != "wrong" {
		t.Errorf("Xing Dong = %q", got)
	}
	if got := res.ClassifyForm(o, "Nobody", cfg); got != "unknown" {
		t.Errorf("unknown form = %q", got)
	}
}

// nameSimForTest links any two names with the same Soundex-ish family
// (last token), which deliberately over-links so support must disambiguate.
func nameSimForTest(a, b string) float64 {
	fa := lastToken(a)
	fb := lastToken(b)
	if fa == fb {
		return 1
	}
	return 0
}

func lastToken(s string) string {
	last := ""
	cur := ""
	for _, r := range s + " " {
		if r == ' ' {
			if cur != "" {
				last = cur
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	return last
}

func TestValuesForDifferentObjectsNeverLink(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("S1", bookObj("i1"), "Same Author"))
	_ = d.Add(model.NewClaim("S2", bookObj("i2"), "Same Author"))
	d.Freeze()
	res, err := Link(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("cross-object clustering: %+v", res.Clusters)
	}
}

func TestVariantsOfCountsSurfaceForms(t *testing.T) {
	d := dataset.New()
	o := bookObj("i1")
	_ = d.Add(model.NewClaim("S1", o, "Joshua Bloch"))
	_ = d.Add(model.NewClaim("S2", o, "J. Bloch"))
	_ = d.Add(model.NewClaim("S3", o, "Someone Else"))
	d.Freeze()
	res, err := Link(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.VariantsOf(o); got != 3 {
		t.Fatalf("VariantsOf = %d, want 3 raw forms", got)
	}
}

func TestBlockingLimitsComparisons(t *testing.T) {
	// With a blocking key on the first letter, "Alice" and "alice" (same
	// block after folding) link; "Bob" never gets compared to them.
	d := dataset.New()
	o := model.Obj("e", "name")
	_ = d.Add(model.NewClaim("S1", o, "Alice Smith"))
	_ = d.Add(model.NewClaim("S2", o, "alice smith"))
	_ = d.Add(model.NewClaim("S3", o, "Bob Smith"))
	d.Freeze()
	cfg := DefaultConfig()
	cfg.Sim = func(a, b string) float64 { return 1 } // would link everything
	cfg.BlockKey = func(v string) string {
		if v == "" {
			return ""
		}
		c := v[0]
		if c >= 'a' && c <= 'z' {
			c -= 32
		}
		return string(c)
	}
	res, err := Link(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clusters := res.ClustersOf(o)
	if len(clusters) != 2 {
		t.Fatalf("blocking failed: %+v", clusters)
	}
}

func TestLinkImprovesTruthDiscovery(t *testing.T) {
	// Before linkage, format fragmentation splits the true value's votes;
	// after linkage the consolidated cluster outvotes the wrong value.
	d := dataset.New()
	o := bookObj("i9")
	_ = d.Add(model.NewClaim("S1", o, "Jeffrey D. Ullman"))
	_ = d.Add(model.NewClaim("S2", o, "J. Ullman"))
	_ = d.Add(model.NewClaim("S3", o, "Ullman, Jeffrey"))
	_ = d.Add(model.NewClaim("S4", o, "John Wrongman"))
	_ = d.Add(model.NewClaim("S5", o, "John Wrongman"))
	d.Freeze()
	// Naive voting on raw forms: Wrongman wins 2 vs 1/1/1.
	rawGroups := d.ValuesFor(o)
	maxRaw := 0
	for _, g := range rawGroups {
		if len(g.Sources) > maxRaw {
			maxRaw = len(g.Sources)
		}
	}
	if maxRaw != 2 {
		t.Fatalf("raw max support = %d", maxRaw)
	}
	res, err := Link(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clusters := res.ClustersOf(o)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %+v", clusters)
	}
	if clusters[0].Support != 3 {
		t.Fatalf("linked Ullman support = %d, want 3", clusters[0].Support)
	}
}
