package linkage

import (
	"errors"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/truth"
)

// This file implements §4's iterative proposal: "iterative strategies can
// simultaneously help in record linkage and in determining source
// dependence" — linkage merges representations so truth discovery votes on
// semantics, and truth discovery's beliefs feed back into the next linkage
// round by vetoing merges between a well-supported value and a form the
// current belief says is wrong.

// IterativeConfig parameterizes LinkThenDiscover.
type IterativeConfig struct {
	Linkage Config
	Truth   truth.Config
	// Rounds is the number of linkage<->truth alternations (1 = plain
	// pipeline).
	Rounds int
	// VetoBelief is the posterior above which a cluster canonical is
	// considered established; a variant whose own belief is below
	// VetoRatio times the canonical's is re-examined as a wrong value
	// rather than a representation in the next round.
	VetoBelief float64
	VetoRatio  float64
}

// DefaultIterativeConfig returns two rounds with moderate vetoes.
func DefaultIterativeConfig() IterativeConfig {
	return IterativeConfig{
		Linkage:    DefaultConfig(),
		Truth:      truth.DefaultConfig(),
		Rounds:     2,
		VetoBelief: 0.6,
		VetoRatio:  0.2,
	}
}

// Validate reports configuration errors.
func (c IterativeConfig) Validate() error {
	if err := c.Linkage.Validate(); err != nil {
		return err
	}
	if err := c.Truth.Validate(); err != nil {
		return err
	}
	if c.Rounds < 1 {
		return errors.New("linkage: Rounds must be >= 1")
	}
	if c.VetoBelief <= 0 || c.VetoBelief > 1 {
		return errors.New("linkage: VetoBelief must be in (0,1]")
	}
	if c.VetoRatio < 0 || c.VetoRatio >= 1 {
		return errors.New("linkage: VetoRatio must be in [0,1)")
	}
	return nil
}

// IterativeResult is the outcome of LinkThenDiscover.
type IterativeResult struct {
	// Linkage is the final round's linkage result; Truth the truth result
	// over its canonicalized dataset.
	Linkage *Result
	Truth   *truth.Result
	// Rounds actually executed.
	Rounds int
}

// LinkThenDiscover alternates record linkage and truth discovery. Round 1
// links on string similarity alone; later rounds re-link with a similarity
// function that refuses to merge forms whose truth beliefs diverge sharply
// (an established canonical and a form the votes say is wrong stay apart
// even if the strings are close — the "Xing Dong" case).
func LinkThenDiscover(d *dataset.Dataset, cfg IterativeConfig) (*IterativeResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, errors.New("linkage: dataset must be frozen")
	}
	linkCfg := cfg.Linkage
	var lres *Result
	var tres *truth.Result
	var err error
	rounds := 0
	for r := 0; r < cfg.Rounds; r++ {
		lres, err = Link(d, linkCfg)
		if err != nil {
			return nil, err
		}
		tres, err = truth.Accu(lres.Rewritten, cfg.Truth)
		if err != nil {
			return nil, err
		}
		rounds = r + 1
		if r+1 == cfg.Rounds {
			break
		}
		// Build the veto for the next round: per object, the set of raw
		// forms whose canonical belief is high but whose own raw support
		// is negligible relative to the canonical — candidates for being
		// wrong values rather than representations.
		veto := buildVeto(d, lres, tres, cfg)
		baseSim := cfg.Linkage.Sim
		linkCfg.Sim = func(a, b string) float64 {
			if veto[pairKey(a, b)] {
				return 0
			}
			return baseSim(a, b)
		}
	}
	return &IterativeResult{Linkage: lres, Truth: tres, Rounds: rounds}, nil
}

func pairKey(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// buildVeto returns the form pairs the next linkage round must not merge.
func buildVeto(d *dataset.Dataset, lres *Result, tres *truth.Result,
	cfg IterativeConfig) map[[2]string]bool {
	veto := map[[2]string]bool{}
	for _, o := range d.Objects() {
		for _, c := range lres.ClustersOf(o) {
			canonBelief := tres.Probs[o][c.Canonical]
			if canonBelief < cfg.VetoBelief {
				continue
			}
			for _, w := range c.WrongValueForms {
				// A wrong-value form inside an established cluster: keep
				// it out of the canonical's cluster next round when its
				// support ratio is negligible.
				if float64(supportOf(c, w)) <= cfg.VetoRatio*float64(c.Support) {
					veto[pairKey(c.Canonical, w)] = true
				}
			}
		}
	}
	return veto
}

func supportOf(c Cluster, form string) int {
	for _, v := range c.Variants {
		if v.Value == form {
			return v.Support
		}
	}
	return 0
}
