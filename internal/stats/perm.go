package stats

import (
	"math"
	"math/rand"
)

// PermutationResult reports the outcome of a permutation test.
type PermutationResult struct {
	Observed float64 // observed statistic
	Mean     float64 // mean of the permutation distribution
	SD       float64 // standard deviation of the permutation distribution
	PLow     float64 // fraction of permutations with statistic <= observed
	PHigh    float64 // fraction of permutations with statistic >= observed
	Rounds   int     // number of permutations drawn
}

// PermutationTest draws rounds random permutations of ys, recomputing the
// statistic stat(xs, shuffled ys) each time, and locates the observed
// statistic within that null distribution. It is the model-free fallback the
// dissimilarity detector uses when the analytic variance is suspect.
func PermutationTest(xs, ys []float64, rounds int, rng *rand.Rand,
	stat func(a, b []float64) float64) PermutationResult {
	obs := stat(xs, ys)
	shuffled := make([]float64, len(ys))
	copy(shuffled, ys)
	var sum, sumsq float64
	var low, high int
	for r := 0; r < rounds; r++ {
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		s := stat(xs, shuffled)
		sum += s
		sumsq += s * s
		if s <= obs {
			low++
		}
		if s >= obs {
			high++
		}
	}
	res := PermutationResult{Observed: obs, Rounds: rounds}
	if rounds > 0 {
		n := float64(rounds)
		res.Mean = sum / n
		v := sumsq/n - res.Mean*res.Mean
		if v < 0 {
			v = 0
		}
		res.SD = math.Sqrt(v)
		// Add-one smoothing keeps p-values away from exactly zero.
		res.PLow = (float64(low) + 1) / (n + 1)
		res.PHigh = (float64(high) + 1) / (n + 1)
	}
	return res
}
