// Package stats is the numeric substrate for sourcecurrents.
//
// The algorithms in this repository are Bayesian and iterative; they need
// log-space arithmetic, a few classic distributions, rank correlation, and
// resampling tests. Go's standard library does not provide these, so this
// package implements them from scratch on top of package math. Every
// function is deterministic; randomized routines accept an explicit
// *rand.Rand so callers control seeding.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty inputs.
var ErrEmpty = errors.New("stats: empty input")

// ErrMismatch is returned when paired inputs have different lengths.
var ErrMismatch = errors.New("stats: length mismatch")

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampProb limits x to the open probability interval (eps, 1-eps) so that
// logs and odds stay finite. It is the standard guard used throughout the
// iterative solvers.
func ClampProb(x float64) float64 {
	const eps = 1e-9
	return Clamp(x, eps, 1-eps)
}

// LogSumExp returns log(sum(exp(xs))) computed stably. It returns -Inf for
// an empty slice, matching the sum of an empty set of probabilities.
func LogSumExp(xs ...float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// NormalizeLog exponentiates and normalizes a slice of log-weights into a
// probability vector. The input is not modified. It returns ErrEmpty for an
// empty slice.
func NormalizeLog(logw []float64) ([]float64, error) {
	if len(logw) == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, len(logw))
	if err := NormalizeLogInto(out, logw); err != nil {
		return nil, err
	}
	return out, nil
}

// NormalizeLogInto is NormalizeLog writing into a caller-provided slice
// (len(dst) must equal len(logw); dst may alias logw). It performs the
// exact same floating-point operations as NormalizeLog, so the two are
// bit-identical; the hot solver loops use it to normalize into reusable
// scratch buffers without allocating.
func NormalizeLogInto(dst, logw []float64) error {
	if len(logw) == 0 {
		return ErrEmpty
	}
	z := LogSumExp(logw...)
	if math.IsInf(z, -1) {
		// All weights are zero; fall back to uniform.
		u := 1 / float64(len(logw))
		for i := range dst {
			dst[i] = u
		}
		return nil
	}
	for i, w := range logw {
		dst[i] = math.Exp(w - z)
	}
	return nil
}

// Normalize scales a nonnegative vector to sum to one. A zero vector becomes
// uniform. The input is not modified.
func Normalize(w []float64) ([]float64, error) {
	if len(w) == 0 {
		return nil, ErrEmpty
	}
	var sum float64
	for _, x := range w {
		if x < 0 {
			return nil, errors.New("stats: negative weight")
		}
		sum += x
	}
	out := make([]float64, len(w))
	if sum == 0 {
		u := 1 / float64(len(w))
		for i := range out {
			out[i] = u
		}
		return out, nil
	}
	for i, x := range w {
		out[i] = x / sum
	}
	return out, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the population variance of xs.
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Pearson returns the Pearson correlation coefficient of the paired samples.
// It returns 0 when either marginal has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, _ := Mean(xs)
	my, _ := Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Ranks returns fractional ranks (1-based, ties averaged) of xs.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// average rank for the tie group [i, j]
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation of the paired samples.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// KendallTau returns the Kendall tau-b rank correlation of the paired
// samples (tie-corrected). O(n^2); our sample sizes are small.
func KendallTau(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatch
	}
	n := len(xs)
	if n == 0 {
		return 0, ErrEmpty
	}
	var concordant, discordant, tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				// tie in both; contributes to neither denominator term
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	den := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if den == 0 {
		return 0, nil
	}
	return (concordant - discordant) / den, nil
}

// LogBinomialCoeff returns log(C(n, k)) using the log-gamma function.
func LogBinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// BinomialLogPMF returns log P(X = k) for X ~ Binomial(n, p).
func BinomialLogPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	p = ClampProb(p)
	return LogBinomialCoeff(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
}

// BinomialTailUpper returns P(X >= k) for X ~ Binomial(n, p), by summation.
func BinomialTailUpper(k, n int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	logs := make([]float64, 0, n-k+1)
	for i := k; i <= n; i++ {
		logs = append(logs, BinomialLogPMF(i, n, p))
	}
	return math.Min(1, math.Exp(LogSumExp(logs...)))
}

// BinomialTailLower returns P(X <= k) for X ~ Binomial(n, p).
func BinomialTailLower(k, n int, p float64) float64 {
	if k >= n {
		return 1
	}
	if k < 0 {
		return 0
	}
	logs := make([]float64, 0, k+1)
	for i := 0; i <= k; i++ {
		logs = append(logs, BinomialLogPMF(i, n, p))
	}
	return math.Min(1, math.Exp(LogSumExp(logs...)))
}

// BetaMean returns the mean of a Beta(a, b) distribution; it is the standard
// smoothed accuracy estimator used by the iterative solvers
// (successes+a)/(trials+a+b) is obtained via BetaPosteriorMean.
func BetaMean(a, b float64) float64 {
	return a / (a + b)
}

// BetaPosteriorMean returns the posterior mean of a Beta(a, b) prior after
// observing successes out of trials. It is the Laplace-style smoothing used
// for source accuracy so that tiny samples do not saturate at 0 or 1.
func BetaPosteriorMean(successes, trials int, a, b float64) float64 {
	return (float64(successes) + a) / (float64(trials) + a + b)
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// ZScore returns (x - mean) / sd, or 0 when sd == 0.
func ZScore(x, mean, sd float64) float64 {
	if sd == 0 {
		return 0
	}
	return (x - mean) / sd
}
