package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Fatalf("Clamp(5,0,1) = %v, want 1", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Fatalf("Clamp(-5,0,1) = %v, want 0", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Fatalf("Clamp(0.5,0,1) = %v, want 0.5", got)
	}
}

func TestClampProbStaysOpen(t *testing.T) {
	for _, x := range []float64{-1, 0, 0.5, 1, 2} {
		p := ClampProb(x)
		if p <= 0 || p >= 1 {
			t.Fatalf("ClampProb(%v) = %v escapes (0,1)", x, p)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp(math.Log(0.25), math.Log(0.25), math.Log(0.5))
	if !almostEqual(got, 0, 1e-12) {
		t.Fatalf("LogSumExp of probs summing to 1 = %v, want 0", got)
	}
	if !math.IsInf(LogSumExp(), -1) {
		t.Fatal("LogSumExp() should be -Inf")
	}
	// Stability: huge magnitudes must not overflow.
	got = LogSumExp(1000, 1000)
	if !almostEqual(got, 1000+math.Log(2), 1e-9) {
		t.Fatalf("LogSumExp(1000,1000) = %v", got)
	}
}

func TestNormalizeLog(t *testing.T) {
	p, err := NormalizeLog([]float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p[0], 0.5, 1e-12) || !almostEqual(p[1], 0.5, 1e-12) {
		t.Fatalf("NormalizeLog equal weights = %v", p)
	}
	if _, err := NormalizeLog(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	// All -Inf falls back to uniform.
	p, err = NormalizeLog([]float64{math.Inf(-1), math.Inf(-1)})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p[0], 0.5, 1e-12) {
		t.Fatalf("degenerate NormalizeLog = %v", p)
	}
}

func TestNormalizeLogSumsToOne(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logw := make([]float64, len(raw))
		for i, x := range raw {
			logw[i] = math.Mod(x, 50) // keep magnitudes sane
			if math.IsNaN(logw[i]) {
				logw[i] = 0
			}
		}
		p, err := NormalizeLog(logw)
		if err != nil {
			return false
		}
		var sum float64
		for _, x := range p {
			if x < 0 {
				return false
			}
			sum += x
		}
		return almostEqual(sum, 1, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	p, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p[0], 0.25, 1e-12) || !almostEqual(p[1], 0.75, 1e-12) {
		t.Fatalf("Normalize = %v", p)
	}
	if _, err := Normalize([]float64{-1}); err == nil {
		t.Fatal("negative weight should error")
	}
	p, _ = Normalize([]float64{0, 0})
	if !almostEqual(p[0], 0.5, 1e-12) {
		t.Fatalf("zero vector should normalize uniform, got %v", p)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	v, _ := Variance(xs)
	if v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	sd, _ := StdDev(xs)
	if sd != 2 {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatal("Mean(nil) should be ErrEmpty")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	r, err := Pearson(xs, []float64{2, 4, 6, 8})
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("perfect positive: %v, %v", r, err)
	}
	r, _ = Pearson(xs, []float64{8, 6, 4, 2})
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("perfect negative: %v", r)
	}
	r, _ = Pearson(xs, []float64{5, 5, 5, 5})
	if r != 0 {
		t.Fatalf("zero-variance marginal should give 0, got %v", r)
	}
	if _, err := Pearson(xs, xs[:2]); err != ErrMismatch {
		t.Fatal("length mismatch should error")
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 5, 9, 20}
	ys := []float64{1, 25, 81, 400} // monotone transform
	r, err := Spearman(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Spearman monotone = %v, %v", r, err)
	}
}

func TestKendallTau(t *testing.T) {
	r, err := KendallTau([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("tau identity = %v", r)
	}
	r, _ = KendallTau([]float64{1, 2, 3}, []float64{3, 2, 1})
	if !almostEqual(r, -1, 1e-12) {
		t.Fatalf("tau reversal = %v", r)
	}
	r, _ = KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3})
	if r != 0 {
		t.Fatalf("all-ties tau = %v, want 0", r)
	}
}

func TestLogBinomialCoeff(t *testing.T) {
	if got := math.Exp(LogBinomialCoeff(5, 2)); !almostEqual(got, 10, 1e-9) {
		t.Fatalf("C(5,2) = %v", got)
	}
	if !math.IsInf(LogBinomialCoeff(5, 7), -1) {
		t.Fatal("C(5,7) should be log(0)")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	n, p := 12, 0.3
	var sum float64
	for k := 0; k <= n; k++ {
		sum += math.Exp(BinomialLogPMF(k, n, p))
	}
	if !almostEqual(sum, 1, 1e-9) {
		t.Fatalf("pmf sum = %v", sum)
	}
}

func TestBinomialTails(t *testing.T) {
	n, p := 10, 0.5
	if got := BinomialTailUpper(0, n, p); got != 1 {
		t.Fatalf("upper tail at 0 = %v", got)
	}
	if got := BinomialTailLower(10, n, p); got != 1 {
		t.Fatalf("lower tail at n = %v", got)
	}
	up := BinomialTailUpper(6, n, p)
	lo := BinomialTailLower(5, n, p)
	if !almostEqual(up+lo, 1, 1e-9) {
		t.Fatalf("tails should partition: %v + %v", up, lo)
	}
}

func TestBetaPosteriorMean(t *testing.T) {
	// Uniform prior, no data: 0.5.
	if got := BetaPosteriorMean(0, 0, 1, 1); got != 0.5 {
		t.Fatalf("prior mean = %v", got)
	}
	// Large data dominates the prior.
	got := BetaPosteriorMean(900, 1000, 1, 1)
	if !almostEqual(got, 0.9, 0.01) {
		t.Fatalf("posterior = %v", got)
	}
	if BetaMean(2, 2) != 0.5 {
		t.Fatal("BetaMean symmetric should be 0.5")
	}
}

func TestNormalCDF(t *testing.T) {
	if !almostEqual(NormalCDF(0), 0.5, 1e-12) {
		t.Fatal("Phi(0) != 0.5")
	}
	if got := NormalCDF(1.959963985); !almostEqual(got, 0.975, 1e-6) {
		t.Fatalf("Phi(1.96) = %v", got)
	}
	if got := NormalCDF(-10); got > 1e-20 {
		t.Fatalf("deep left tail = %v", got)
	}
}

func TestZScore(t *testing.T) {
	if ZScore(3, 1, 1) != 2 {
		t.Fatal("z(3;1,1) != 2")
	}
	if ZScore(3, 1, 0) != 0 {
		t.Fatal("zero-sd z should be 0")
	}
}

func TestPermutationTestDetectsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = float64(i) + rng.NormFloat64()
	}
	stat := func(a, b []float64) float64 {
		r, _ := Pearson(a, b)
		return r
	}
	res := PermutationTest(xs, ys, 200, rng, stat)
	if res.PHigh > 0.05 {
		t.Fatalf("strong correlation should be significant, PHigh=%v", res.PHigh)
	}
	if res.Observed < 0.9 {
		t.Fatalf("observed correlation too low: %v", res.Observed)
	}
}

func TestPermutationTestNull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	stat := func(a, b []float64) float64 {
		r, _ := Pearson(a, b)
		return r
	}
	res := PermutationTest(xs, ys, 300, rng, stat)
	if res.PHigh < 0.01 && res.PLow < 0.01 {
		t.Fatalf("independent data should not be extreme both ways: %+v", res)
	}
}

func TestBinomialTailMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		p := rng.Float64()
		prev := 1.0
		for k := 0; k <= n; k++ {
			cur := BinomialTailUpper(k, n, p)
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
