package temporal

import (
	"reflect"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/synth"
)

// The engine contract: pairwise and windowed temporal detection are
// bit-identical at every Parallelism setting.

func temporalWorld(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	tw, err := synth.GenerateTemporal(synth.TemporalConfig{
		Seed:       seed,
		NObjects:   40,
		Horizon:    60,
		ChangeRate: 0.12,
		Publishers: []synth.PublisherSpec{
			{CaptureProb: 0.9, MaxDelay: 2},
			{CaptureProb: 0.8, MaxDelay: 4},
			{CaptureProb: 0.7, MaxDelay: 3},
			{CaptureProb: 0.85, MaxDelay: 1},
		},
		LazyCopiers: []synth.LazyCopierSpec{
			{MasterIndex: 0, CopyProb: 0.8, MinLag: 1, MaxLag: 4},
			{MasterIndex: 2, CopyProb: 0.6, MinLag: 2, MaxLag: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tw.Dataset
}

func TestDetectPairsParallelismInvariant(t *testing.T) {
	for _, seed := range []int64{3, 17, 99} {
		d := temporalWorld(t, seed)
		var want *Result
		for _, p := range []int{1, 4, 16} {
			cfg := DefaultConfig()
			cfg.Parallelism = p
			got, err := DetectPairs(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: DetectPairs result at Parallelism=%d differs from sequential", seed, p)
			}
		}
	}
}

func TestDetectOverWindowsParallelismInvariant(t *testing.T) {
	d := temporalWorld(t, 13)
	var want *WindowedResult
	for _, p := range []int{1, 4, 16} {
		cfg := DefaultWindowedConfig()
		cfg.Parallelism = p
		cfg.Pair.Parallelism = p
		got, err := DetectOverWindows(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("DetectOverWindows result at Parallelism=%d differs from sequential", p)
		}
	}
}
