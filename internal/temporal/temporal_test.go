package temporal

import (
	"fmt"
	"math/rand"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

func obj(e string) model.ObjectID { return model.Obj(e, dataset.AffAttr) }

func TestValueClassString(t *testing.T) {
	for cl, want := range map[ValueClass]string{
		ClassCurrent: "current", ClassOutdated: "outdated",
		ClassEarly: "early", ClassFalse: "false",
	} {
		if cl.String() != want {
			t.Errorf("%d.String() = %q", int(cl), cl.String())
		}
	}
	if ValueClass(99).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestClassifyValue(t *testing.T) {
	w := dataset.Table3Truth()
	dong := obj("Dong")
	cases := []struct {
		v    string
		t    model.Time
		want ValueClass
	}{
		{"UW", 2003, ClassCurrent},
		{"UW", 2006, ClassOutdated},
		{"Google", 2006, ClassCurrent},
		{"Google", 2007, ClassOutdated},
		{"AT&T", 2007, ClassCurrent},
		{"AT&T", 2005, ClassEarly},
		{"MSR", 2006, ClassFalse},
	}
	for _, c := range cases {
		if got := ClassifyValue(w, dong, c.v, c.t); got != c.want {
			t.Errorf("ClassifyValue(Dong,%q,%d) = %v, want %v", c.v, c.t, got, c.want)
		}
	}
	if got := ClassifyValue(w, obj("nobody"), "x", 2000); got != ClassFalse {
		t.Errorf("unknown object = %v", got)
	}
}

func TestTable3NoFalseValues(t *testing.T) {
	// Example 3.2: "the availability of temporal information lets us infer
	// that S2 and S3 only provide out-of-date information, not false
	// information."
	d := dataset.Table3()
	w := dataset.Table3Truth()
	reports := ComputeMetrics(d, w)
	for _, s := range []model.SourceID{"S1", "S2", "S3"} {
		rep := reports[s]
		if rep.Census[ClassFalse] != 0 {
			t.Errorf("%s has %d false values: %v", s, rep.Census[ClassFalse], rep.ByClass[ClassFalse])
		}
	}
}

func TestTable3Metrics(t *testing.T) {
	d := dataset.Table3()
	w := dataset.Table3Truth()
	reports := ComputeMetrics(d, w)
	m1 := reports["S1"].Metrics
	m2 := reports["S2"].Metrics
	m3 := reports["S3"].Metrics
	if m1.Coverage != 1 {
		t.Errorf("S1 coverage = %v, want 1 (it is the up-to-date source)", m1.Coverage)
	}
	if m1.Exactness != 1 {
		t.Errorf("S1 exactness = %v", m1.Exactness)
	}
	if !(m2.Coverage < m1.Coverage) || !(m3.Coverage < m2.Coverage) {
		t.Errorf("coverage order wrong: S1=%v S2=%v S3=%v", m1.Coverage, m2.Coverage, m3.Coverage)
	}
	// The lazy copier has the largest mean capture lag.
	if !(m3.MeanLag > m1.MeanLag) || !(m3.MeanLag > m2.MeanLag) {
		t.Errorf("lag order wrong: S1=%v S2=%v S3=%v", m1.MeanLag, m2.MeanLag, m3.MeanLag)
	}
}

func TestFreshness(t *testing.T) {
	m := Metrics{}
	lags := []model.Time{0, 0, 1, 3}
	if got := m.Freshness(lags, 0); got != 0.5 {
		t.Errorf("Freshness(0) = %v", got)
	}
	if got := m.Freshness(lags, 3); got != 1 {
		t.Errorf("Freshness(3) = %v", got)
	}
	if got := m.Freshness(nil, 3); got != 0 {
		t.Errorf("Freshness(empty) = %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.Window = -1 },
		func(c *Config) { c.CopyRate = 0 },
		func(c *Config) { c.Alpha = 1 },
		func(c *Config) { c.OrderRho = 0.4 },
		func(c *Config) { c.OrderRho = 1 },
		func(c *Config) { c.MinSharedUpdates = 0 },
		func(c *Config) { c.DepThreshold = -0.1 },
	} {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("invalid config accepted: %+v", c)
		}
	}
}

func TestDetectRequiresFrozen(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewTemporalClaim("S1", obj("x"), "1", 1))
	if _, err := DetectPairs(d, DefaultConfig()); err == nil {
		t.Fatal("unfrozen dataset accepted")
	}
}

func TestTable3LazyCopierDetected(t *testing.T) {
	// Example 3.2: S3 is dependent on S1 (lazy copier); S2 is independent
	// of S1 because many of its updates precede or coincide with S1's.
	res, err := DetectPairs(dataset.Table3(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p13 := res.DependenceProb("S1", "S3")
	p12 := res.DependenceProb("S1", "S2")
	if p13 <= p12 {
		t.Fatalf("P(S1~S3)=%v should exceed P(S1~S2)=%v", p13, p12)
	}
	if p13 < 0.7 {
		t.Errorf("lazy copier posterior %v below threshold", p13)
	}
	if p12 >= 0.7 {
		t.Errorf("independent pair S1~S2 flagged: %v", p12)
	}
	// Direction: S3 is the copier of the S1~S3 pair.
	for _, dep := range res.AllPairs {
		if dep.Pair == model.NewSourcePair("S1", "S3") {
			copier, _ := dep.Copier()
			if copier != "S3" {
				t.Errorf("copier = %v, want S3", copier)
			}
		}
	}
}

func TestDependenceProbUnanalyzed(t *testing.T) {
	res := &Result{}
	if res.DependenceProb("A", "B") != 0 {
		t.Fatal("empty result should report 0")
	}
}

// synthTemporal generates a temporal world with independent publishers and
// one lazy copier of publisher P0.
func synthTemporal(seed int64, nObjects, horizon int, changeRate float64,
	copierLag int) (*dataset.Dataset, *model.World) {
	rng := rand.New(rand.NewSource(seed))
	w := model.NewWorld()
	d := dataset.New()
	type pub struct {
		id       model.SourceID
		maxDelay int // publication delay is uniform in [0, maxDelay]
		pCap     float64
	}
	pubs := []pub{
		{"P0", 2, 0.95},
		{"P1", 3, 0.9},
		{"P2", 4, 0.8},
	}
	for i := 0; i < nObjects; i++ {
		o := model.Obj(fmt.Sprintf("o%03d", i), "v")
		tr := model.Truth{Object: o}
		val := 0
		tr.Periods = append(tr.Periods, model.TruthPeriod{Start: 0, Value: fmt.Sprintf("v%d_0", i)})
		for t := 1; t < horizon; t++ {
			if rng.Float64() < changeRate {
				val++
				tr.Periods = append(tr.Periods,
					model.TruthPeriod{Start: model.Time(t), Value: fmt.Sprintf("v%d_%d", i, val)})
			}
		}
		w.Set(tr)
		// Independent publishers capture transitions with jittered delay:
		// they react to the real-world event, not to each other, so any of
		// them can lead on any given transition.
		p0Published := map[string]model.Time{}
		for _, p := range pubs {
			for _, per := range tr.Periods {
				if rng.Float64() > p.pCap {
					continue
				}
				t := per.Start + model.Time(rng.Intn(p.maxDelay+1))
				if p.id == "P0" {
					p0Published[per.Value] = t
				}
				_ = d.Add(model.NewTemporalClaim(p.id, o, per.Value, t))
			}
		}
		// Lazy copier C republishes P0's published updates with copierLag
		// after P0's publication (it reacts to P0, not to the event).
		for _, per := range tr.Periods {
			t0, ok := p0Published[per.Value]
			if !ok || rng.Float64() > 0.85 {
				continue
			}
			t := t0 + model.Time(1+rng.Intn(copierLag))
			_ = d.Add(model.NewTemporalClaim("C", o, per.Value, t))
		}
	}
	d.Freeze()
	return d, w
}

func TestSyntheticLazyCopier(t *testing.T) {
	d, _ := synthTemporal(31, 60, 20, 0.15, 3)
	res, err := DetectPairs(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// C~P0 must rank above every fully independent pair.
	pC := res.DependenceProb("C", "P0")
	for _, pair := range [][2]model.SourceID{{"P0", "P1"}, {"P0", "P2"}, {"P1", "P2"}} {
		if p := res.DependenceProb(pair[0], pair[1]); p >= pC {
			t.Errorf("independent pair %v prob %v >= copier prob %v", pair, p, pC)
		}
	}
	if pC < 0.7 {
		t.Errorf("copier posterior %v too low", pC)
	}
}

func TestEstimateWorldTable3(t *testing.T) {
	d := dataset.Table3()
	est := EstimateWorld(d, 2)
	// The estimate should recover S1's current values for the objects
	// where S1 leads (the weighted vote favors the exact source).
	want := dataset.Table3Truth()
	match := 0
	for _, o := range d.Objects() {
		got, ok1 := est.TrueNow(o)
		exp, ok2 := want.TrueNow(o)
		if ok1 && ok2 && got == exp {
			match++
		}
	}
	if match < 4 {
		t.Errorf("estimated world matches truth on %d/5 current values", match)
	}
}

func TestEstimateWorldEmptyAndRounds(t *testing.T) {
	d := dataset.New()
	d.Freeze()
	if w := EstimateWorld(d, 0); len(w.Truths) != 0 {
		t.Fatal("empty dataset should estimate empty world")
	}
}

func TestMatchUpdatesWindow(t *testing.T) {
	ta := []update{{o: obj("x"), v: "a", t: 0}}
	tb := []update{{o: obj("x"), v: "a", t: 10}}
	pop := map[model.ObjectID]map[string]int{obj("x"): {"a": 2}}
	got, misses := matchUpdates(ta, tb, pop, 2, 5)
	if len(got) != 0 {
		t.Fatalf("match outside window accepted: %v", got)
	}
	if misses != 1 {
		t.Fatalf("out-of-window shared value should count as a miss: %d", misses)
	}
	got, misses = matchUpdates(ta, tb, pop, 2, 15)
	if len(got) != 1 || got[0].lag != 10 {
		t.Fatalf("match = %+v", got)
	}
	if misses != 0 {
		t.Fatalf("misses = %d, want 0", misses)
	}
}

func TestMatchUpdatesLazyReassertionTrails(t *testing.T) {
	// A publishes v at 2; B asserts v at 1 and re-asserts at 3. The lag
	// must use B's LAST assertion, marking B as trailing.
	ta := []update{{o: obj("x"), v: "v", t: 2}}
	tb := []update{{o: obj("x"), v: "v", t: 1}, {o: obj("x"), v: "v", t: 3}}
	pop := map[model.ObjectID]map[string]int{obj("x"): {"v": 2}}
	got, _ := matchUpdates(ta, tb, pop, 3, 5)
	if len(got) != 1 || got[0].lag != 1 {
		t.Fatalf("lazy reassertion lag = %+v, want +1", got)
	}
}

func TestMatchUpdatesRarity(t *testing.T) {
	ta := []update{{o: obj("x"), v: "a", t: 0}}
	tb := []update{{o: obj("x"), v: "a", t: 1}}
	// 10 sources, nobody else makes this update: rarity 1.
	pop := map[model.ObjectID]map[string]int{obj("x"): {"a": 2}}
	got, _ := matchUpdates(ta, tb, pop, 10, 5)
	if len(got) != 1 || got[0].rarity != 1 {
		t.Fatalf("rare update weight = %+v", got)
	}
	// Everyone makes it: rarity small.
	pop[obj("x")]["a"] = 10
	got, _ = matchUpdates(ta, tb, pop, 10, 5)
	if len(got) != 1 || got[0].rarity >= 0.2 {
		t.Fatalf("popular update weight = %+v", got)
	}
}

func TestSlowIndependentNotFlagged(t *testing.T) {
	// Lazy-copier vs slow-provider challenge: a slow independent source
	// publishes AFTER the leader sometimes but BEFORE it other times
	// (because the leader also misses transitions). A copier never leads.
	rng := rand.New(rand.NewSource(77))
	d := dataset.New()
	w := model.NewWorld()
	for i := 0; i < 50; i++ {
		o := model.Obj(fmt.Sprintf("o%02d", i), "v")
		tr := model.Truth{Object: o, Periods: []model.TruthPeriod{{Start: 0, Value: fmt.Sprintf("u%d", i)}}}
		for t := 5; t < 40; t += 5 + rng.Intn(10) {
			tr.Periods = append(tr.Periods, model.TruthPeriod{Start: model.Time(t), Value: fmt.Sprintf("u%d_%d", i, t)})
		}
		w.Set(tr)
		for _, p := range tr.Periods {
			// Leader L: fast (delay 0-1) but misses 30%.
			captured := rng.Float64() < 0.7
			var lTime model.Time
			if captured {
				lTime = p.Start + model.Time(rng.Intn(2))
				_ = d.Add(model.NewTemporalClaim("L", o, p.Value, lTime))
			}
			// Slow independent S: captures 90% with delay 0-3 measured
			// from the EVENT — it leads L whenever L is slower or absent.
			if rng.Float64() < 0.9 {
				_ = d.Add(model.NewTemporalClaim("S", o, p.Value, p.Start+model.Time(rng.Intn(4))))
			}
			// Copier C: republishes L's updates 1-2 ticks after L.
			if captured && rng.Float64() < 0.9 {
				_ = d.Add(model.NewTemporalClaim("C", o, p.Value, lTime+model.Time(1+rng.Intn(2))))
			}
		}
	}
	d.Freeze()
	res, err := DetectPairs(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pLS := res.DependenceProb("L", "S")
	pLC := res.DependenceProb("L", "C")
	if pLC <= pLS {
		t.Errorf("copier pair %v should exceed slow-independent pair %v", pLC, pLS)
	}
}
