// Dense (compiled-index) execution of update-trace dependence detection.
//
// detectPairsCompiled replaces the per-pair span-map construction and key
// sort of the reference path with a single merge join over each source's
// precompiled, key-sorted span list (dataset.Compiled.SpanKey packs object
// and value indexes so int64 order equals the reference's string sort
// order). Both copy directions are matched in the one pass. Iteration and
// summation orders match the reference path exactly, so results are
// bit-identical (enforced by the golden equivalence tests).
package temporal

import (
	"math"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/engine"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/stats"
)

type tempScratch struct {
	logs [3]float64
	post [3]float64
}

// scorePairCompiled analyzes the pair (i, j), i < j, over the compiled span
// lists. ok is false when the pair lacks shared updates or the posterior is
// degenerate, mirroring the reference scorePair.
func scorePairCompiled(c *dataset.Compiled, i, j int, qCov []float64, cfg Config,
	sc *tempScratch) (Dependence, bool) {
	ai, ae := c.SpanStart[i], c.SpanStart[i+1]
	bi, be := c.SpanStart[j], c.SpanStart[j+1]
	nS := c.NumSources()
	denom := nS - 1
	if denom < 1 {
		denom = 1
	}
	qA := stats.ClampProb(qCov[i])
	qB := stats.ClampProb(qCov[j])

	var matchCount, missOfA, missOfB int
	var rarityAB, rarityBA, aFirst, bFirst, ties, raritySum float64
	p, q := ai, bi
	for p < ae && q < be {
		switch {
		case c.SpanKey[p] < c.SpanKey[q]:
			missOfA++
			p++
		case c.SpanKey[p] > c.SpanKey[q]:
			missOfB++
			q++
		default:
			key := c.SpanKey[p]
			saF, saL := c.SpanFirst[p], c.SpanLast[p]
			sbF, sbL := c.SpanFirst[q], c.SpanLast[q]
			p++
			q++
			// Direction "B copies A"-style match of the A→B pass: B's last
			// word against A's nearest assertion.
			lag := sbL - saF
			if alt := sbL - saL; abs64(alt) < abs64(lag) {
				lag = alt
			}
			// The reverse pass (roles swapped) decides B's miss count.
			lag2 := saL - sbF
			if alt := saL - sbL; abs64(alt) < abs64(lag2) {
				lag2 = alt
			}
			if abs64(lag2) > cfg.Window {
				missOfB++
			}
			if abs64(lag) > cfg.Window {
				missOfA++
				continue
			}
			matchCount++
			others := int(c.PopularityOf(key)) - 2 // exclude the pair itself
			if others < 0 {
				others = 0
			}
			rarity := 1 - float64(others)/float64(denom)
			qPop := stats.ClampProb(1 - rarity + 1.0/float64(nS))
			qForA := math.Max(qPop, qA)
			qForB := math.Max(qPop, qB)
			rarityAB += math.Log((cfg.CopyRate + (1-cfg.CopyRate)*qForA) / qForA)
			rarityBA += math.Log((cfg.CopyRate + (1-cfg.CopyRate)*qForB) / qForB)
			raritySum += rarity
			switch {
			case lag > 0: // A published first; B trails
				aFirst += rarity
			case lag < 0:
				bFirst += rarity
			default:
				ties += rarity
			}
		}
	}
	missOfA += int(ae - p)
	missOfB += int(be - q)

	if matchCount < cfg.MinSharedUpdates {
		return Dependence{}, false
	}
	dep := Dependence{
		Pair:   model.SourcePair{A: c.Source(i), B: c.Source(j)},
		Shared: matchCount,
		AFirst: aFirst, BFirst: bFirst,
		Rarity: raritySum,
	}

	// Order channel. tiePen < 0: ties favor independence.
	rho := cfg.OrderRho
	tiePen := math.Log(cfg.TieDep / cfg.TieInd)
	orderBA := aFirst*math.Log(rho/0.5) + bFirst*math.Log((1-rho)/0.5) + ties*tiePen
	orderAB := bFirst*math.Log(rho/0.5) + aFirst*math.Log((1-rho)/0.5) + ties*tiePen

	// Coverage channel: binomial over the master's distinct updates.
	m := float64(matchCount)
	cover := func(qCopier float64, missesOfMaster int) float64 {
		pd := stats.ClampProb(cfg.MissCopyRate + (1-cfg.MissCopyRate)*qCopier)
		k := float64(missesOfMaster)
		return m*math.Log(pd/qCopier) + k*math.Log((1-pd)/(1-qCopier))
	}
	coverBA := cover(qB, missOfA) // B copies A: A's updates are the trials
	coverAB := cover(qA, missOfB)

	sc.logs[0] = math.Log(1 - cfg.Alpha)
	sc.logs[1] = math.Log(cfg.Alpha/2) + rarityAB + orderAB + coverAB
	sc.logs[2] = math.Log(cfg.Alpha/2) + rarityBA + orderBA + coverBA
	post := sc.post[:]
	if err := stats.NormalizeLogInto(post, sc.logs[:]); err != nil {
		return Dependence{}, false
	}
	dep.ProbAB, dep.ProbBA = post[1], post[2]
	dep.Prob = post[1] + post[2]
	return dep, true
}

// detectPairsCompiled is DetectPairs over the compiled index.
func detectPairsCompiled(c *dataset.Compiled, cfg Config) *Result {
	nS := c.NumSources()
	// Global coverage per source: its share of the distinct (object, value)
	// assertions seen anywhere.
	union := len(c.PopKey)
	qCov := make([]float64, nS)
	if union > 0 {
		for si := 0; si < nS; si++ {
			qCov[si] = float64(c.SpanStart[si+1]-c.SpanStart[si]) / float64(union)
		}
	}

	type verdict struct {
		dep Dependence
		ok  bool
	}
	var pairs [][2]int32
	if nS >= 2 {
		pairs = make([][2]int32, 0, nS*(nS-1)/2)
		for i := 0; i < nS; i++ {
			for j := i + 1; j < nS; j++ {
				pairs = append(pairs, [2]int32{int32(i), int32(j)})
			}
		}
	}
	verdicts := make([]verdict, len(pairs))
	engine.ForNScratch(cfg.Engine(), len(pairs), func() *tempScratch { return &tempScratch{} },
		func(pi int, sc *tempScratch) {
			dep, ok := scorePairCompiled(c, int(pairs[pi][0]), int(pairs[pi][1]), qCov, cfg, sc)
			verdicts[pi] = verdict{dep: dep, ok: ok}
		})

	res := &Result{}
	for _, v := range verdicts {
		if !v.ok {
			continue
		}
		res.AllPairs = append(res.AllPairs, v.dep)
	}
	sort.Slice(res.AllPairs, func(a, b int) bool {
		if res.AllPairs[a].Prob != res.AllPairs[b].Prob {
			return res.AllPairs[a].Prob > res.AllPairs[b].Prob
		}
		return res.AllPairs[a].Pair.String() < res.AllPairs[b].Pair.String()
	})
	for _, dep := range res.AllPairs {
		if dep.Prob >= cfg.DepThreshold {
			res.Dependences = append(res.Dependences, dep)
		}
	}
	return res
}
