package temporal

import (
	"errors"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/engine"
	"sourcecurrents/internal/model"
)

// This file implements the paper's "discover dependence patterns of a data
// source over time" consideration: a copier is more likely to remain a
// copier, and it may copy periodically from the same sources. Windowed
// detection re-runs the pairwise analysis over sliding time windows and
// summarizes how persistent each pair's dependence is.

// WindowedConfig parameterizes DetectOverWindows.
type WindowedConfig struct {
	// Pair is the per-window detection configuration. Its Parallelism knob
	// applies within each window's pairwise scoring.
	Pair Config
	// WindowSpan is the width of each analysis window; Step the stride.
	WindowSpan, Step model.Time
	// Parallelism is the worker count for analyzing distinct windows
	// concurrently. Values <= 0 select runtime.GOMAXPROCS(0); 1 reproduces
	// sequential execution exactly. Results are bit-identical at every
	// setting: windows are merged in time order.
	Parallelism int
}

// DefaultWindowedConfig covers a trace in four to six windows with 50%
// overlap given a horizon around 40-60 ticks.
func DefaultWindowedConfig() WindowedConfig {
	return WindowedConfig{
		Pair:       DefaultConfig(),
		WindowSpan: 20,
		Step:       10,
	}
}

// Validate reports configuration errors.
func (c WindowedConfig) Validate() error {
	if err := c.Pair.Validate(); err != nil {
		return err
	}
	if c.WindowSpan < 1 {
		return errors.New("temporal: WindowSpan must be >= 1")
	}
	if c.Step < 1 {
		return errors.New("temporal: Step must be >= 1")
	}
	return nil
}

// WindowVerdict is one pair's posterior within one window.
type WindowVerdict struct {
	Start, End model.Time
	Prob       float64
	Analyzed   bool // false when the pair lacked shared updates here
}

// PairHistory summarizes a pair's dependence over time.
type PairHistory struct {
	Pair    model.SourcePair
	Windows []WindowVerdict
	// Persistence is the fraction of analyzed windows with posterior at or
	// above the detection threshold — "a copier is more likely to remain a
	// copier".
	Persistence float64
	// MeanProb is the mean posterior over analyzed windows.
	MeanProb float64
}

// WindowedResult aggregates all pairs' histories.
type WindowedResult struct {
	Histories []PairHistory
}

// History returns the history for a pair, if analyzed anywhere.
func (r *WindowedResult) History(a, b model.SourceID) (PairHistory, bool) {
	p := model.NewSourcePair(a, b)
	for _, h := range r.Histories {
		if h.Pair == p {
			return h, true
		}
	}
	return PairHistory{}, false
}

// DetectOverWindows slices the dataset's time range into overlapping
// windows and runs pairwise detection in each, summarizing persistence.
func DetectOverWindows(d *dataset.Dataset, cfg WindowedConfig) (*WindowedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, errors.New("temporal: dataset must be frozen")
	}
	lo, hi, ok := d.TimeRange()
	if !ok {
		return nil, errors.New("temporal: dataset has no timestamped claims")
	}
	// Enumerate window starts up front so the windows — each an independent
	// slice-and-detect — can run in parallel; the merge below walks them in
	// time order, keeping the result identical to the sequential loop.
	var starts []model.Time
	for start := lo; start <= hi; start += cfg.Step {
		starts = append(starts, start)
		if start+cfg.WindowSpan > hi {
			break
		}
	}
	type windowOut struct {
		verdicts map[model.SourcePair]float64
		err      error
	}
	eng := engine.Config{Workers: cfg.Parallelism}
	outs := engine.MapObjects(eng, starts, func(start model.Time) windowOut {
		sub, err := sliceWindow(d, start, start+cfg.WindowSpan)
		if err != nil {
			return windowOut{err: err}
		}
		if sub.Len() == 0 {
			return windowOut{}
		}
		res, err := DetectPairs(sub, cfg.Pair)
		if err != nil {
			return windowOut{err: err}
		}
		verdicts := make(map[model.SourcePair]float64, len(res.AllPairs))
		for _, dep := range res.AllPairs {
			verdicts[dep.Pair] = dep.Prob
		}
		return windowOut{verdicts: verdicts}
	})
	acc := map[model.SourcePair][]WindowVerdict{}
	for i, start := range starts {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		for p, prob := range outs[i].verdicts {
			acc[p] = append(acc[p], WindowVerdict{Start: start, End: start + cfg.WindowSpan, Prob: prob, Analyzed: true})
		}
	}
	res := &WindowedResult{}
	pairs := make([]model.SourcePair, 0, len(acc))
	for p := range acc {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].String() < pairs[j].String() })
	for _, p := range pairs {
		h := PairHistory{Pair: p, Windows: acc[p]}
		var flagged, analyzed int
		var sum float64
		for _, w := range h.Windows {
			if !w.Analyzed {
				continue
			}
			analyzed++
			sum += w.Prob
			if w.Prob >= cfg.Pair.DepThreshold {
				flagged++
			}
		}
		if analyzed > 0 {
			h.Persistence = float64(flagged) / float64(analyzed)
			h.MeanProb = sum / float64(analyzed)
		}
		res.Histories = append(res.Histories, h)
	}
	return res, nil
}

// sliceWindow projects the dataset to claims with Time in [start, end).
func sliceWindow(d *dataset.Dataset, start, end model.Time) (*dataset.Dataset, error) {
	out := dataset.New()
	for _, c := range d.Claims() {
		if !c.HasTime || c.Time < start || c.Time >= end {
			continue
		}
		if err := out.Add(c); err != nil {
			return nil, err
		}
	}
	out.Freeze()
	return out, nil
}
