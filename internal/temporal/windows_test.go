package temporal

import (
	"fmt"
	"math/rand"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

func TestWindowedConfigValidate(t *testing.T) {
	if err := DefaultWindowedConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*WindowedConfig){
		func(c *WindowedConfig) { c.WindowSpan = 0 },
		func(c *WindowedConfig) { c.Step = 0 },
		func(c *WindowedConfig) { c.Pair.CopyRate = 0 },
	} {
		c := DefaultWindowedConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatal("invalid config accepted")
		}
	}
}

func TestDetectOverWindowsErrors(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewTemporalClaim("S1", model.Obj("x", "v"), "1", 1))
	if _, err := DetectOverWindows(d, DefaultWindowedConfig()); err == nil {
		t.Fatal("unfrozen dataset accepted")
	}
	snap := dataset.New()
	_ = snap.Add(model.NewClaim("S1", model.Obj("x", "v"), "1"))
	snap.Freeze()
	if _, err := DetectOverWindows(snap, DefaultWindowedConfig()); err == nil {
		t.Fatal("snapshot-only dataset accepted")
	}
}

// persistentCopierWorld builds a long trace where C copies P0 throughout,
// while an independent P1 just co-publishes.
func persistentCopierWorld(seed int64, horizon int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New()
	for obj := 0; obj < 30; obj++ {
		o := model.Obj(fmt.Sprintf("o%02d", obj), "v")
		v := 0
		for t := 0; t < horizon; t += 2 + rng.Intn(5) {
			v++
			val := fmt.Sprintf("v%d_%d", obj, v)
			t0 := model.Time(t) + model.Time(rng.Intn(2))
			_ = d.Add(model.NewTemporalClaim("P0", o, val, t0))
			if rng.Float64() < 0.9 {
				_ = d.Add(model.NewTemporalClaim("P1", o, val, model.Time(t)+model.Time(rng.Intn(3))))
			}
			if rng.Float64() < 0.9 {
				_ = d.Add(model.NewTemporalClaim("C", o, val, t0+1+model.Time(rng.Intn(2))))
			}
		}
	}
	d.Freeze()
	return d
}

func TestDetectOverWindowsPersistence(t *testing.T) {
	d := persistentCopierWorld(3, 60)
	cfg := DefaultWindowedConfig()
	res, err := DetectOverWindows(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	copier, ok := res.History("C", "P0")
	if !ok {
		t.Fatal("copier pair never analyzed")
	}
	if copier.Persistence < 0.8 {
		t.Fatalf("copier persistence = %v (windows %+v)", copier.Persistence, copier.Windows)
	}
	indep, ok := res.History("P0", "P1")
	if ok && indep.Persistence >= copier.Persistence {
		t.Fatalf("independent persistence %v >= copier %v", indep.Persistence, copier.Persistence)
	}
	// Every verdict lies in [0,1] with coherent window bounds.
	for _, h := range res.Histories {
		for _, w := range h.Windows {
			if w.Prob < 0 || w.Prob > 1 {
				t.Fatalf("window prob %v out of range", w.Prob)
			}
			if w.End <= w.Start {
				t.Fatalf("bad window [%d,%d)", w.Start, w.End)
			}
		}
	}
}

func TestHistoryMissingPair(t *testing.T) {
	res := &WindowedResult{}
	if _, ok := res.History("A", "B"); ok {
		t.Fatal("missing pair reported present")
	}
}
