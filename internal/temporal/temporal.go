// Package temporal implements dependence discovery over timestamped data —
// the "Temporal Dependence" scenario of §3.2.
//
// With update traces available, three refinements over snapshot analysis
// apply (the paper's three numbered intuitions):
//
//  1. Out-of-date true values are distinguishable from false values, so
//     sharing them is weak evidence of dependence (ClassifyValue).
//  2. Sources performing the same updates in a close time frame are likely
//     dependent, especially when the same update trace is rarely observed
//     from other sources (the rarity channel of DetectPairs).
//  3. Systematic ordering — one source's updates consistently trailing the
//     other's — identifies the copier and separates a lazy copier from a
//     slow-but-independent provider (the order channel of DetectPairs).
//
// Source quality is summarized by the CEF triple: Coverage (which true
// periods the source ever captured), Exactness (whether its claims were
// true at claim time) and Freshness (how quickly it captured them).
package temporal

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/engine"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/stats"
)

// ValueClass classifies a claimed value against an object's history.
type ValueClass int

const (
	// ClassCurrent: the value was true at claim time.
	ClassCurrent ValueClass = iota
	// ClassOutdated: the value was true earlier but not at claim time.
	ClassOutdated
	// ClassEarly: the value becomes true only after claim time (a scoop or
	// a lucky guess).
	ClassEarly
	// ClassFalse: the value was never true.
	ClassFalse
)

// String names the class.
func (c ValueClass) String() string {
	switch c {
	case ClassCurrent:
		return "current"
	case ClassOutdated:
		return "outdated"
	case ClassEarly:
		return "early"
	case ClassFalse:
		return "false"
	}
	return fmt.Sprintf("ValueClass(%d)", int(c))
}

// ClassifyValue labels value v claimed for object o at time t against the
// world w. Unknown objects classify as ClassFalse.
func ClassifyValue(w *model.World, o model.ObjectID, v string, t model.Time) ValueClass {
	tr, ok := w.Truths[o]
	if !ok {
		return ClassFalse
	}
	if cur, ok := tr.ValueAt(t); ok && cur == v {
		return ClassCurrent
	}
	// True at some earlier time?
	for _, p := range tr.Periods {
		if p.Start <= t && p.Value == v {
			return ClassOutdated
		}
	}
	if tr.EverTrue(v) {
		return ClassEarly
	}
	return ClassFalse
}

// Metrics is the CEF quality triple of one source against a world.
type Metrics struct {
	Source model.SourceID
	// Coverage is captured periods / total periods over the objects the
	// source claims at least once.
	Coverage float64
	// Exactness is the fraction of the source's timestamped claims whose
	// value was true at claim time.
	Exactness float64
	// MeanLag is the average delay (in time units) between a captured
	// period's start and the source's earliest capturing claim.
	MeanLag float64
	// Captured and Periods are the coverage numerator and denominator;
	// Claims the exactness denominator.
	Captured, Periods, Claims int
}

// Freshness returns the fraction of captured periods captured within delta
// of their start. It is computed from the lag histogram collected by
// ComputeMetrics.
func (m Metrics) Freshness(lags []model.Time, delta model.Time) float64 {
	if len(lags) == 0 {
		return 0
	}
	var n int
	for _, l := range lags {
		if l <= delta {
			n++
		}
	}
	return float64(n) / float64(len(lags))
}

// SourceReport bundles Metrics with the per-period capture lags (for
// Freshness queries) and the classification census of the source's claims.
type SourceReport struct {
	Metrics Metrics
	Lags    []model.Time       // one entry per captured period, sorted
	Census  map[ValueClass]int // claim count per class
	ByClass map[ValueClass][]model.Claim
}

// ComputeMetrics evaluates every source of d against world w.
func ComputeMetrics(d *dataset.Dataset, w *model.World) map[model.SourceID]*SourceReport {
	out := make(map[model.SourceID]*SourceReport, len(d.Sources()))
	for _, s := range d.Sources() {
		out[s] = computeOne(d, w, s)
	}
	return out
}

func computeOne(d *dataset.Dataset, w *model.World, s model.SourceID) *SourceReport {
	rep := &SourceReport{
		Census:  map[ValueClass]int{},
		ByClass: map[ValueClass][]model.Claim{},
	}
	trace := d.UpdateTrace(s)
	objs := map[model.ObjectID]bool{}
	var exact int
	for _, c := range trace {
		objs[c.Object] = true
		cl := ClassifyValue(w, c.Object, c.Value, c.Time)
		rep.Census[cl]++
		rep.ByClass[cl] = append(rep.ByClass[cl], c)
		if cl == ClassCurrent {
			exact++
		}
	}
	// Coverage & lags: for each period of each claimed object, find the
	// earliest claim of the period's value at/after the period start and
	// before the period ends.
	var captured, periods int
	var lagSum float64
	for o := range objs {
		tr, ok := w.Truths[o]
		if !ok {
			continue
		}
		for i, p := range tr.Periods {
			periods++
			end := model.Time(math.MaxInt64)
			if i+1 < len(tr.Periods) {
				end = tr.Periods[i+1].Start
			}
			best := model.Time(-1)
			for _, c := range trace {
				if c.Object != o || c.Value != p.Value {
					continue
				}
				if c.Time >= p.Start && c.Time < end {
					if best < 0 || c.Time < best {
						best = c.Time
					}
				}
			}
			if best >= 0 {
				captured++
				lag := best - p.Start
				rep.Lags = append(rep.Lags, lag)
				lagSum += float64(lag)
			}
		}
	}
	sort.Slice(rep.Lags, func(i, j int) bool { return rep.Lags[i] < rep.Lags[j] })
	m := Metrics{Source: s, Captured: captured, Periods: periods, Claims: len(trace)}
	if periods > 0 {
		m.Coverage = float64(captured) / float64(periods)
	}
	if len(trace) > 0 {
		m.Exactness = float64(exact) / float64(len(trace))
	}
	if captured > 0 {
		m.MeanLag = lagSum / float64(captured)
	}
	rep.Metrics = m
	return rep
}

// Config parameterizes temporal dependence detection.
type Config struct {
	// Window is the maximum lag (time units) at which two sources' same
	// updates are considered "in a close enough time frame". Lazy copiers
	// need a generous window.
	Window model.Time
	// CopyRate is c, the per-update copy probability of a copier.
	CopyRate float64
	// Alpha is the prior probability of dependence for a random pair.
	Alpha float64
	// OrderRho is the probability that the master's update precedes the
	// copier's matched update (under dependence). 0.5 would disable the
	// order channel.
	OrderRho float64
	// TieDep and TieInd are the probabilities of a same-timestamp match
	// under dependence and independence. Independent sources cluster
	// around the real-world transition (same granularity bucket), while a
	// copier trails its master's publication, so TieDep < TieInd and ties
	// are evidence of independence.
	TieDep, TieInd float64
	// MissCopyRate is the per-update probability that a copier replicates
	// a given master update; deliberately small (copiers may be partial
	// and lazy), it makes wholesale non-overlap mild evidence of
	// independence without killing partial copiers.
	MissCopyRate float64
	// MinSharedUpdates is the minimum number of matched updates for a pair
	// to be analyzed.
	MinSharedUpdates int
	// DepThreshold is the posterior above which a pair is reported.
	DepThreshold float64
	// Parallelism is the worker count for the O(S²) pairwise scoring loop.
	// Values <= 0 select runtime.GOMAXPROCS(0); 1 reproduces sequential
	// execution exactly. Results are bit-identical at every setting.
	Parallelism int
}

// Engine returns the execution-engine configuration for this detector.
func (c Config) Engine() engine.Config {
	return engine.Config{Workers: c.Parallelism}
}

// DefaultConfig returns the parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Window:           5,
		CopyRate:         0.8,
		Alpha:            0.2,
		OrderRho:         0.9,
		TieDep:           0.3,
		TieInd:           0.7,
		MissCopyRate:     0.3,
		MinSharedUpdates: 2,
		DepThreshold:     0.7,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Window < 0 {
		return errors.New("temporal: Window must be >= 0")
	}
	if c.CopyRate <= 0 || c.CopyRate >= 1 {
		return errors.New("temporal: CopyRate must be in (0,1)")
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return errors.New("temporal: Alpha must be in (0,1)")
	}
	if c.OrderRho < 0.5 || c.OrderRho >= 1 {
		return errors.New("temporal: OrderRho must be in [0.5,1)")
	}
	if c.TieDep <= 0 || c.TieDep >= 1 || c.TieInd <= 0 || c.TieInd >= 1 {
		return errors.New("temporal: TieDep and TieInd must be in (0,1)")
	}
	if c.MissCopyRate <= 0 || c.MissCopyRate >= 1 {
		return errors.New("temporal: MissCopyRate must be in (0,1)")
	}
	if c.MinSharedUpdates < 1 {
		return errors.New("temporal: MinSharedUpdates must be >= 1")
	}
	if c.DepThreshold < 0 || c.DepThreshold > 1 {
		return errors.New("temporal: DepThreshold must be in [0,1]")
	}
	return nil
}

// Dependence is the temporal verdict on one pair.
type Dependence struct {
	Pair model.SourcePair
	// Prob = ProbAB + ProbBA; ProbAB is the posterior that A copies B.
	Prob, ProbAB, ProbBA float64
	// Shared is the number of matched updates (same object, same value,
	// within Window).
	Shared int
	// AFirst and BFirst are the rarity-weighted counts of matched updates
	// where A's (resp. B's) claim is strictly earlier.
	AFirst, BFirst float64
	// Rarity is the summed rarity weight of matched updates (the "same
	// rare update trace" evidence).
	Rarity float64
}

// Copier returns the more likely copier and the posterior margin.
func (dep Dependence) Copier() (model.SourceID, float64) {
	if dep.ProbAB >= dep.ProbBA {
		return dep.Pair.A, dep.ProbAB - dep.ProbBA
	}
	return dep.Pair.B, dep.ProbBA - dep.ProbAB
}

// update is one timestamped assertion in a trace.
type update struct {
	o model.ObjectID
	v string
	t model.Time
}

// Result is the outcome of temporal detection.
type Result struct {
	// Dependences holds pairs at/above DepThreshold, sorted by decreasing
	// posterior; AllPairs every analyzed pair.
	Dependences []Dependence
	AllPairs    []Dependence
}

// DependenceProb returns the posterior that a and b are dependent; 0 for
// unanalyzed pairs.
func (r *Result) DependenceProb(a, b model.SourceID) float64 {
	p := model.NewSourcePair(a, b)
	for _, dep := range r.AllPairs {
		if dep.Pair == p {
			return dep.Prob
		}
	}
	return 0
}

// DetectPairs runs Bayesian update-trace dependence detection on every
// source pair of a frozen temporal dataset. It executes on the dataset's
// compiled columnar index; the result is bit-identical to the map-based
// reference path (detectPairsMaps), which the golden equivalence tests
// enforce.
func DetectPairs(d *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, fmt.Errorf("temporal: dataset must be frozen")
	}
	// Compiled is non-nil for every frozen dataset; the fallback is
	// defensive only.
	if c := d.Compiled(); c != nil {
		return detectPairsCompiled(c, cfg), nil
	}
	return detectPairsMaps(d, cfg)
}

// detectPairsMaps is the map-based reference implementation of DetectPairs.
// It is not on any runtime path: it is kept as the semantic specification
// the compiled path is tested against (golden_test.go).
func detectPairsMaps(d *dataset.Dataset, cfg Config) (*Result, error) {
	sources := d.Sources()
	traces := make(map[model.SourceID][]update, len(sources))
	// popularity[o][v] = number of sources that ever assert (o, v) with a
	// timestamp; the rarity denominator.
	popularity := map[model.ObjectID]map[string]int{}
	for _, s := range sources {
		seen := map[update]bool{}
		for _, c := range d.UpdateTrace(s) {
			u := update{o: c.Object, v: c.Value, t: c.Time}
			traces[s] = append(traces[s], u)
			key := update{o: c.Object, v: c.Value} // popularity ignores time
			if !seen[key] {
				seen[key] = true
				inner, ok := popularity[c.Object]
				if !ok {
					inner = map[string]int{}
					popularity[c.Object] = inner
				}
				inner[c.Value]++
			}
		}
	}

	// Global coverage per source: its share of the distinct (object,
	// value) assertions seen anywhere.
	union := map[valueKey]bool{}
	distinct := map[model.SourceID]int{}
	for s, trace := range traces {
		for k := range spansOf(trace) {
			union[k] = true
			distinct[s]++
		}
	}
	qCov := make(map[model.SourceID]float64, len(sources))
	for _, s := range sources {
		if len(union) > 0 {
			qCov[s] = float64(distinct[s]) / float64(len(union))
		}
	}

	// Score every pair in parallel (workers only read the shared trace and
	// popularity indexes), then merge in the canonical pair order.
	type verdict struct {
		dep Dependence
		ok  bool
	}
	verdicts := engine.MapPairs(cfg.Engine(), len(sources), func(i, j int) verdict {
		dep, ok := scorePair(sources[i], sources[j], traces, popularity, len(sources), qCov, cfg)
		return verdict{dep: dep, ok: ok}
	})
	res := &Result{}
	for _, v := range verdicts {
		if !v.ok {
			continue
		}
		res.AllPairs = append(res.AllPairs, v.dep)
	}
	sort.Slice(res.AllPairs, func(a, b int) bool {
		if res.AllPairs[a].Prob != res.AllPairs[b].Prob {
			return res.AllPairs[a].Prob > res.AllPairs[b].Prob
		}
		return res.AllPairs[a].Pair.String() < res.AllPairs[b].Pair.String()
	})
	for _, dep := range res.AllPairs {
		if dep.Prob >= cfg.DepThreshold {
			res.Dependences = append(res.Dependences, dep)
		}
	}
	return res, nil
}

// valueKey identifies one distinct (object, value) assertion of a trace.
type valueKey struct {
	o model.ObjectID
	v string
}

// span records when a trace first and last asserted a value.
type span struct{ first, last model.Time }

// spansOf collapses a trace into per-(object, value) assertion spans.
func spansOf(trace []update) map[valueKey]span {
	out := map[valueKey]span{}
	for _, u := range trace {
		k := valueKey{o: u.o, v: u.v}
		sp, ok := out[k]
		if !ok {
			out[k] = span{first: u.t, last: u.t}
			continue
		}
		if u.t < sp.first {
			sp.first = u.t
		}
		if u.t > sp.last {
			sp.last = u.t
		}
		out[k] = sp
	}
	return out
}

// match describes one shared (object, value) between two traces.
type match struct {
	rarity float64
	// lag is B's last assertion minus A's nearest assertion: a lazy
	// copier keeps re-asserting stale values after the master published
	// them, so positive lag means "B trails A".
	lag model.Time
}

// matchUpdates pairs each of B's distinct (object, value) assertions with
// A's same-value assertions, keeping matches within the window.
func matchUpdates(ta, tb []update, popularity map[model.ObjectID]map[string]int,
	nSources int, window model.Time) (matches []match, missesOfA int) {
	spansA := spansOf(ta)
	spansB := spansOf(tb)
	keys := make([]valueKey, 0, len(spansB))
	for k := range spansB {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].o != keys[j].o {
			if keys[i].o.Entity != keys[j].o.Entity {
				return keys[i].o.Entity < keys[j].o.Entity
			}
			return keys[i].o.Attribute < keys[j].o.Attribute
		}
		return keys[i].v < keys[j].v
	})
	matchedA := map[valueKey]bool{}
	for _, key := range keys {
		sa, ok := spansA[key]
		if !ok {
			continue
		}
		sb := spansB[key]
		// Lag of B's last word on the value against A's nearest
		// assertion.
		lag := sb.last - sa.first
		if alt := sb.last - sa.last; abs64(alt) < abs64(lag) {
			lag = alt
		}
		if abs64(lag) > window {
			continue
		}
		matchedA[key] = true
		others := popularity[key.o][key.v] - 2 // exclude the pair itself
		if others < 0 {
			others = 0
		}
		// Rarity weight in (0, 1]: updates nobody else makes weigh 1;
		// updates everyone makes weigh ~2/n.
		denom := nSources - 1
		if denom < 1 {
			denom = 1
		}
		rarity := 1 - float64(others)/float64(denom)
		matches = append(matches, match{rarity: rarity, lag: lag})
	}
	for k := range spansA {
		if !matchedA[k] {
			missesOfA++
		}
	}
	return matches, missesOfA
}

func abs64(t model.Time) model.Time {
	if t < 0 {
		return -t
	}
	return t
}

// scorePair computes the three-hypothesis posterior for one pair. The
// log-likelihood of each copy direction combines three channels:
//
//   - rarity: sharing an update is more surprising the fewer other sources
//     make it and the lower the alleged copier's own coverage (intuition 2
//     of the temporal section);
//   - order: under "B copies A", A's publication precedes B's trailing
//     assertion with probability OrderRho, while same-timestamp matches
//     favor independence (independents cluster on the real-world event;
//     copiers trail the master's publication);
//   - coverage: under "B copies A", B holds each of A's distinct updates
//     with probability MissCopyRate + (1-MissCopyRate)·q_B, versus q_B (its
//     global coverage) under independence. A source holding almost exactly
//     the master's update set despite modest global coverage is suspicious;
//     a high-coverage source overlapping everyone is not.
func scorePair(a, b model.SourceID, traces map[model.SourceID][]update,
	popularity map[model.ObjectID]map[string]int, nSources int,
	qCov map[model.SourceID]float64, cfg Config) (Dependence, bool) {
	matchesAB, missOfA := matchUpdates(traces[a], traces[b], popularity, nSources, cfg.Window)
	_, missOfB := matchUpdates(traces[b], traces[a], popularity, nSources, cfg.Window)
	if len(matchesAB) < cfg.MinSharedUpdates {
		return Dependence{}, false
	}
	dep := Dependence{Pair: model.NewSourcePair(a, b), Shared: len(matchesAB)}
	// Orientation bookkeeping: matchUpdates(ta, tb) produced lags where
	// positive means "b trails a". Flip if pair normalization swapped.
	flip := dep.Pair.A != a
	if flip {
		missOfA, missOfB = missOfB, missOfA
	}
	qA := stats.ClampProb(qCov[dep.Pair.A])
	qB := stats.ClampProb(qCov[dep.Pair.B])

	// Rarity channel, directional: the alleged copier's probability of
	// making a matched update independently is at least its global
	// coverage and at least the update's popularity among other sources.
	var rarityAB, rarityBA float64
	var aFirst, bFirst, ties float64
	for _, m := range matchesAB {
		qPop := stats.ClampProb(1 - m.rarity + 1.0/float64(nSources))
		qForA := math.Max(qPop, qA)
		qForB := math.Max(qPop, qB)
		rarityAB += math.Log((cfg.CopyRate + (1-cfg.CopyRate)*qForA) / qForA)
		rarityBA += math.Log((cfg.CopyRate + (1-cfg.CopyRate)*qForB) / qForB)
		lag := m.lag
		if flip {
			lag = -lag
		}
		dep.Rarity += m.rarity
		switch {
		case lag > 0: // pair.A published first; pair.B trails
			aFirst += m.rarity
		case lag < 0:
			bFirst += m.rarity
		default:
			ties += m.rarity
		}
	}
	dep.AFirst, dep.BFirst = aFirst, bFirst

	// Order channel. tiePen < 0: ties favor independence.
	rho := cfg.OrderRho
	tiePen := math.Log(cfg.TieDep / cfg.TieInd)
	orderBA := aFirst*math.Log(rho/0.5) + bFirst*math.Log((1-rho)/0.5) + ties*tiePen
	orderAB := bFirst*math.Log(rho/0.5) + aFirst*math.Log((1-rho)/0.5) + ties*tiePen

	// Coverage channel: binomial over the master's distinct updates.
	m := float64(len(matchesAB))
	cover := func(qCopier float64, missesOfMaster int) float64 {
		pd := stats.ClampProb(cfg.MissCopyRate + (1-cfg.MissCopyRate)*qCopier)
		k := float64(missesOfMaster)
		return m*math.Log(pd/qCopier) + k*math.Log((1-pd)/(1-qCopier))
	}
	coverBA := cover(qB, missOfA) // B copies A: A's updates are the trials
	coverAB := cover(qA, missOfB)

	logPost := []float64{
		math.Log(1 - cfg.Alpha),                              // independent
		math.Log(cfg.Alpha/2) + rarityAB + orderAB + coverAB, // A copies B
		math.Log(cfg.Alpha/2) + rarityBA + orderBA + coverBA, // B copies A
	}
	post, err := stats.NormalizeLog(logPost)
	if err != nil {
		return Dependence{}, false
	}
	dep.ProbAB, dep.ProbBA = post[1], post[2]
	dep.Prob = post[1] + post[2]
	return dep, true
}

// EstimateWorld reconstructs a temporal ground-truth estimate from the
// dataset alone: for each object and each claim time, sources vote with
// their current (latest at-or-before) values, weighted by an exactness
// estimate obtained from one bootstrap round of unweighted voting. The
// result feeds ComputeMetrics when no ground truth is available.
func EstimateWorld(d *dataset.Dataset, rounds int) *model.World {
	if rounds < 1 {
		rounds = 1
	}
	weights := map[model.SourceID]float64{}
	for _, s := range d.Sources() {
		weights[s] = 1
	}
	var est *model.World
	for r := 0; r < rounds; r++ {
		est = estimateOnce(d, weights)
		reports := ComputeMetrics(d, est)
		for s, rep := range reports {
			// Exactness-weighted voting in the next round, floored so no
			// source is silenced entirely.
			weights[s] = 0.1 + rep.Metrics.Exactness
		}
	}
	return est
}

func estimateOnce(d *dataset.Dataset, weights map[model.SourceID]float64) *model.World {
	w := model.NewWorld()
	for _, o := range d.Objects() {
		// All claim times for o, ascending.
		timeSet := map[model.Time]bool{}
		for _, c := range d.ClaimsByObject(o) {
			if c.HasTime {
				timeSet[c.Time] = true
			}
		}
		if len(timeSet) == 0 {
			continue
		}
		times := make([]model.Time, 0, len(timeSet))
		for t := range timeSet {
			times = append(times, t)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		tr := model.Truth{Object: o}
		for _, t := range times {
			votes := map[string]float64{}
			for _, s := range d.Sources() {
				v, ok := currentValueAt(d, s, o, t)
				if !ok {
					continue
				}
				votes[v] += weights[s]
			}
			best, bestW := "", -1.0
			vals := make([]string, 0, len(votes))
			for v := range votes {
				vals = append(vals, v)
			}
			sort.Strings(vals)
			for _, v := range vals {
				if votes[v] > bestW {
					best, bestW = v, votes[v]
				}
			}
			if best != "" {
				tr.Periods = append(tr.Periods, model.TruthPeriod{Start: t, Value: best})
			}
		}
		tr.Normalize()
		w.Set(tr)
	}
	return w
}

// currentValueAt returns s's latest value for o at or before t.
func currentValueAt(d *dataset.Dataset, s model.SourceID, o model.ObjectID, t model.Time) (string, bool) {
	var best model.Claim
	found := false
	for _, c := range d.UpdateTrace(s) {
		if c.Object != o || c.Time > t {
			continue
		}
		if !found || c.Time >= best.Time {
			best = c
			found = true
		}
	}
	return best.Value, found
}
