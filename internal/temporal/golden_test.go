package temporal

import (
	"reflect"
	"testing"

	"sourcecurrents/internal/synth"
)

// Golden equivalence: DetectPairs (compiled merge-join path) must be
// bit-identical — reflect.DeepEqual, no tolerance — to detectPairsMaps
// (the map-based reference) on seeded temporal worlds with lazy copiers,
// at every Parallelism setting.

func TestDetectPairsCompiledMatchesMaps(t *testing.T) {
	for _, seed := range []int64{7, 43, 997} {
		tw, err := synth.GenerateTemporal(synth.TemporalConfig{
			Seed:       seed,
			NObjects:   40,
			Horizon:    60,
			ChangeRate: 0.12,
			Publishers: []synth.PublisherSpec{
				{CaptureProb: 0.9, MaxDelay: 2},
				{CaptureProb: 0.8, MaxDelay: 3},
				{CaptureProb: 0.7, MaxDelay: 4},
				{CaptureProb: 0.85, MaxDelay: 2},
			},
			LazyCopiers: []synth.LazyCopierSpec{
				{MasterIndex: 0, CopyProb: 0.8, MinLag: 1, MaxLag: 4},
				{MasterIndex: 2, CopyProb: 0.7, MinLag: 1, MaxLag: 5},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, windows := range []struct {
			name string
			cfg  Config
		}{
			{"default", DefaultConfig()},
			{"tight-window", func() Config { c := DefaultConfig(); c.Window = 2; return c }()},
		} {
			ref := windows.cfg
			ref.Parallelism = 1
			want, err := detectPairsMaps(tw.Dataset, ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 4, 16} {
				run := windows.cfg
				run.Parallelism = p
				got, err := DetectPairs(tw.Dataset, run)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d, cfg %q: compiled DetectPairs at Parallelism=%d differs from map reference", seed, windows.name, p)
				}
			}
		}
	}
}
