package dataset

import (
	"bytes"
	"testing"
)

// TestAt pins epoch navigation over the append chain: At(e) returns the
// exact predecessor object serving epoch e (the chain shares storage, so
// navigation is pointer-walking, not reconstruction), and out-of-range
// epochs are errors.
func TestAt(t *testing.T) {
	all := testClaims(60)
	d0, err := FromClaims(all[:30])
	if err != nil {
		t.Fatal(err)
	}
	d1, err := d0.Append(all[30:45])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := d1.Append(all[45:])
	if err != nil {
		t.Fatal(err)
	}
	for e, want := range []*Dataset{d0, d1, d2} {
		got, err := d2.At(e)
		if err != nil {
			t.Fatalf("At(%d): %v", e, err)
		}
		if got != want {
			t.Fatalf("At(%d) returned a different object than the epoch-%d predecessor", e, e)
		}
		if got.Epoch() != e {
			t.Fatalf("At(%d).Epoch() = %d", e, got.Epoch())
		}
	}
	// At is relative to the receiver, not the chain head.
	if got, err := d1.At(0); err != nil || got != d0 {
		t.Fatalf("d1.At(0) = %v, %v; want the flat origin", got, err)
	}
	if _, err := d2.At(-1); err == nil {
		t.Fatal("At(-1) accepted")
	}
	if _, err := d2.At(3); err == nil {
		t.Fatal("At above the receiver's epoch accepted")
	}
	// A flat dataset addresses only itself.
	if got, err := d0.At(0); err != nil || got != d0 {
		t.Fatalf("flat At(0) = %v, %v", got, err)
	}
}

// TestAtAfterSnapshotRoundTrip pins that the snapshot log keeps every epoch
// addressable: a reloaded chain answers At(e) for each epoch with state
// equivalent to the original predecessor.
func TestAtAfterSnapshotRoundTrip(t *testing.T) {
	all := testClaims(60)
	d0, err := FromClaims(all[:30])
	if err != nil {
		t.Fatal(err)
	}
	d1, err := d0.Append(all[30:50])
	if err != nil {
		t.Fatal(err)
	}
	d2, err := d1.Append(all[50:])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d2.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epoch() != 2 {
		t.Fatalf("loaded epoch = %d, want 2", loaded.Epoch())
	}
	for e, want := range []*Dataset{d0, d1, d2} {
		got, err := loaded.At(e)
		if err != nil {
			t.Fatalf("loaded At(%d): %v", e, err)
		}
		assertDatasetsEquivalent(t, got, want)
	}
}
