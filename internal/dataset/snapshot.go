// Binary snapshot format for frozen datasets.
//
// A dataset snapshot stores one interned string table (every distinct
// source, entity, attribute and value string appears exactly once, sorted)
// and the claims as fixed-width integer records laid out CSR-style: grouped
// by source in source order, each record carrying its original ingestion
// position so decoding rebuilds the exact claim sequence the dataset was
// built from. Reconstruction therefore round-trips bit-identically —
// including every tie-break that depends on ingestion order — while the
// encoded form stays pointer-free and decodes with two linear passes
// instead of CSV parsing.
//
// The frame (magic, version, length, CRC) comes from package snapio; a
// truncated, corrupted or future-versioned snapshot yields a descriptive
// error, never a panic.
package dataset

import (
	"fmt"
	"io"
	"sort"

	"sourcecurrents/internal/model"
	"sourcecurrents/internal/snapio"
)

// SnapshotMagic identifies the dataset snapshot format.
const SnapshotMagic = "SCDSDATA"

// SnapshotVersion is the current dataset snapshot version. Version 2
// appends the append-log epoch boundaries (LogBounds) after the claim
// records, so a log-carrying dataset round-trips with its full replay
// semantics. Flat datasets are still written as version 1 — byte-identical
// to pre-log snapshots — and version-1 snapshots load unchanged.
const SnapshotVersion = 2

// WriteSnapshot encodes the frozen dataset to w in the binary snapshot
// format.
func (d *Dataset) WriteSnapshot(w io.Writer) error {
	if !d.frozen {
		return fmt.Errorf("dataset: snapshot requires a frozen dataset")
	}

	// One interned table for every string in the dataset, sorted so the
	// encoding is canonical.
	seen := map[string]struct{}{}
	intern := func(s string) { seen[s] = struct{}{} }
	for _, c := range d.claims {
		intern(string(c.Source))
		intern(c.Object.Entity)
		intern(c.Object.Attribute)
		intern(c.Value)
	}
	strs := make([]string, 0, len(seen))
	for s := range seen {
		strs = append(strs, s)
	}
	sort.Strings(strs)
	ref := make(map[string]uint32, len(strs))
	for i, s := range strs {
		ref[s] = uint32(i)
	}

	var enc snapio.Writer
	enc.U32(uint32(len(strs)))
	for _, s := range strs {
		enc.Str(s)
	}

	// Claims, CSR by source: per-source record count followed by the
	// records, sources in sorted order. Each record carries its original
	// ingestion position, so decode restores the exact claim sequence.
	enc.U32(uint32(len(d.claims)))
	enc.U32(uint32(len(d.sources)))
	for _, s := range d.sources {
		idxs := d.bySource[s]
		enc.U32(ref[string(s)])
		enc.U32(uint32(len(idxs)))
		for _, idx := range idxs {
			c := d.claims[idx]
			enc.U32(uint32(idx))
			enc.U32(ref[c.Object.Entity])
			enc.U32(ref[c.Object.Attribute])
			enc.U32(ref[c.Value])
			enc.Bool(c.HasTime)
			enc.I64(int64(c.Time))
			enc.F64(c.Prob)
		}
	}

	// Log-carrying datasets append their epoch boundaries and are framed as
	// version 2; flat datasets keep the version-1 byte layout.
	bounds := d.LogBounds()
	if len(bounds) == 0 {
		return enc.Frame(w, SnapshotMagic, 1)
	}
	enc.U32(uint32(len(bounds)))
	for _, b := range bounds {
		enc.U32(uint32(b))
	}
	return enc.Frame(w, SnapshotMagic, SnapshotVersion)
}

// claimRecordBytes is the fixed per-claim record size (origPos, entity,
// attribute, value, hasTime, time, prob), used to validate declared counts
// against the remaining payload.
const claimRecordBytes = 4 + 4 + 4 + 4 + 1 + 8 + 8

// ReadSnapshot decodes a dataset snapshot written by WriteSnapshot and
// returns the rebuilt frozen dataset. Claims are restored in their original
// ingestion order, and a version-2 snapshot's append log is replayed
// (FromClaims over the base prefix, then Append per recorded batch), so the
// result is indistinguishable from the dataset the snapshot was taken of —
// including its epoch and replay semantics.
func ReadSnapshot(r io.Reader) (*Dataset, error) {
	dec, version, err := snapio.OpenFrame(r, SnapshotMagic, SnapshotVersion)
	if err != nil {
		return nil, fmt.Errorf("dataset: snapshot: %w", err)
	}

	nStr := dec.Count(1)
	strs := make([]string, nStr)
	for i := range strs {
		strs[i] = dec.Str()
	}

	nClaims := dec.Count(claimRecordBytes)
	nSources := dec.Count(8)
	claims := make([]model.Claim, nClaims)
	placed := make([]bool, nClaims)
	for si := 0; si < nSources; si++ {
		src := model.SourceID("")
		if i := dec.Index(nStr); dec.Err() == nil {
			src = model.SourceID(strs[i])
		}
		n := dec.Count(claimRecordBytes)
		for k := 0; k < n; k++ {
			pos := dec.Index(nClaims)
			entity := dec.Index(nStr)
			attr := dec.Index(nStr)
			val := dec.Index(nStr)
			hasTime := dec.Bool()
			tm := dec.I64()
			prob := dec.F64()
			if dec.Err() != nil {
				break
			}
			if placed[pos] {
				return nil, fmt.Errorf("dataset: snapshot: %w: duplicate claim position %d", snapio.ErrCorrupt, pos)
			}
			placed[pos] = true
			claims[pos] = model.Claim{
				Source:  src,
				Object:  model.Obj(strs[entity], strs[attr]),
				Value:   strs[val],
				Time:    model.Time(tm),
				HasTime: hasTime,
				Prob:    prob,
			}
		}
		if dec.Err() != nil {
			break
		}
	}
	var bounds []int
	if version >= 2 {
		nBounds := dec.Count(4)
		bounds = make([]int, 0, nBounds)
		prev := 0
		for k := 0; k < nBounds; k++ {
			b := int(dec.U32())
			if dec.Err() != nil {
				break
			}
			if b <= prev || b >= nClaims {
				return nil, fmt.Errorf("dataset: snapshot: %w: log bound %d out of order", snapio.ErrCorrupt, b)
			}
			bounds = append(bounds, b)
			prev = b
		}
	}
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("dataset: snapshot: %w", err)
	}
	for pos, ok := range placed {
		if !ok {
			return nil, fmt.Errorf("dataset: snapshot: %w: claim position %d missing", snapio.ErrCorrupt, pos)
		}
	}
	end := len(claims)
	if len(bounds) > 0 {
		end = bounds[0]
	}
	d, err := FromClaims(claims[:end:end])
	if err != nil {
		return nil, fmt.Errorf("dataset: snapshot: %w", err)
	}
	for i := range bounds {
		next := len(claims)
		if i+1 < len(bounds) {
			next = bounds[i+1]
		}
		d, err = d.Append(claims[bounds[i]:next])
		if err != nil {
			return nil, fmt.Errorf("dataset: snapshot: %w", err)
		}
	}
	return d, nil
}
