// Log-segment format: one appended claim batch as a standalone frame.
//
// A server persisting live appends cannot afford a full snapshot rewrite
// per batch; it writes one small segment file per accepted append and
// periodically compacts the segments into a fresh snapshot. A segment is
// deliberately simple — raw length-prefixed string records, no interning —
// because batches are small and the file is read exactly once at replay.
package dataset

import (
	"fmt"
	"io"

	"sourcecurrents/internal/model"
	"sourcecurrents/internal/snapio"
)

// SegmentMagic identifies the log-segment format.
const SegmentMagic = "SCDSSEGM"

// SegmentVersion is the current log-segment version.
const SegmentVersion = 1

// WriteSegment encodes one appended claim batch to w. The batch must be
// non-empty and every claim valid — the same contract as Dataset.Append.
func WriteSegment(w io.Writer, batch []model.Claim) error {
	if len(batch) == 0 {
		return fmt.Errorf("dataset: empty segment batch")
	}
	var enc snapio.Writer
	enc.U32(uint32(len(batch)))
	for i := range batch {
		c := &batch[i]
		if err := c.Validate(); err != nil {
			return fmt.Errorf("dataset: segment batch[%d]: %w", i, err)
		}
		enc.Str(string(c.Source))
		enc.Str(c.Object.Entity)
		enc.Str(c.Object.Attribute)
		enc.Str(c.Value)
		enc.Bool(c.HasTime)
		enc.I64(int64(c.Time))
		enc.F64(c.Prob)
	}
	return enc.Frame(w, SegmentMagic, SegmentVersion)
}

// segmentRecordBytes is the minimum encoded size of one claim record (four
// empty strings at one uvarint length byte each, the flag, time, prob),
// used to validate the declared count.
const segmentRecordBytes = 4*1 + 1 + 8 + 8

// ReadSegment decodes a log segment written by WriteSegment, returning the
// batch in its original order.
func ReadSegment(r io.Reader) ([]model.Claim, error) {
	dec, _, err := snapio.OpenFrame(r, SegmentMagic, SegmentVersion)
	if err != nil {
		return nil, fmt.Errorf("dataset: segment: %w", err)
	}
	n := dec.Count(segmentRecordBytes)
	batch := make([]model.Claim, 0, n)
	for k := 0; k < n; k++ {
		c := model.Claim{
			Source: model.SourceID(dec.Str()),
		}
		entity := dec.Str()
		attr := dec.Str()
		c.Object = model.Obj(entity, attr)
		c.Value = dec.Str()
		c.HasTime = dec.Bool()
		c.Time = model.Time(dec.I64())
		c.Prob = dec.F64()
		if dec.Err() != nil {
			break
		}
		batch = append(batch, c)
	}
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("dataset: segment: %w", err)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("dataset: segment: %w: empty batch", snapio.ErrCorrupt)
	}
	return batch, nil
}
