// Snapshot v2 section codec for the compiled columnar view.
//
// The write side lays every dense table of a Compiled into sections of a
// snapio container in its exact in-memory layout (int32/int64 tables cast
// to bytes, strings concatenated into one blob indexed by offset tables).
// The read side casts the mapped sections straight back into slices — no
// decode loop, no per-table allocation — after a linear structural
// validation pass that makes every later indexed access bounds-safe even
// against adversarial input.
package dataset

import (
	"fmt"
	"math"
	"unsafe"

	"sourcecurrents/internal/model"
	"sourcecurrents/internal/snapio"
)

// Section ids for the compiled tables inside a snapshot v2 container.
// Containers embedding a Compiled (the session snapshot) reserve ids below
// SecCompiledEnd for this codec and place their own sections above it.
const (
	SecGroupStart uint32 = iota + 1
	SecGroupValue
	SecGroupSrcStart
	SecGroupSrc
	SecSrcStart
	SecSrcObj
	SecSrcVal
	SecSrcGroup
	SecSpanStart
	SecSpanKey
	SecSpanFirst
	SecSpanLast
	SecPopKey
	SecPopCount
	SecStrBlob
	SecSrcOff
	SecObjOff
	SecValOff

	// SecCompiledEnd is the first id free for embedding containers.
	SecCompiledEnd = 64
)

// timeBytes views a []model.Time (defined as int64) as raw bytes.
func timeBytes(v []model.Time) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// timesFromI64 views an []int64 section as []model.Time.
func timesFromI64(v []int64) []model.Time {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*model.Time)(unsafe.Pointer(&v[0])), len(v))
}

// AppendSections adds every compiled table to w. The CSR slices are added
// as aliasing views (zero copy); the three interning tables are flattened
// into a fresh string blob plus offset tables, which is the one encode cost
// v2 pays at write time so loads never pay it again.
func (c *Compiled) AppendSections(w *snapio.SectionWriter) error {
	nS, nO, nV := c.NumSources(), c.NumObjects(), c.NumValues()
	var total int
	for i := 0; i < nS; i++ {
		total += len(c.Source(i))
	}
	for i := 0; i < nO; i++ {
		o := c.Object(i)
		total += len(o.Entity) + len(o.Attribute)
	}
	for i := 0; i < nV; i++ {
		total += len(c.Value(i))
	}
	if total > math.MaxInt32 {
		return fmt.Errorf("dataset: interned strings total %d bytes, too large for snapshot v2", total)
	}
	blob := make([]byte, 0, total)
	srcOff := make([]int32, nS+1)
	for i := 0; i < nS; i++ {
		blob = append(blob, c.Source(i)...)
		srcOff[i+1] = int32(len(blob))
	}
	objOff := make([]int32, 2*nO+1)
	objOff[0] = int32(len(blob))
	for i := 0; i < nO; i++ {
		o := c.Object(i)
		blob = append(blob, o.Entity...)
		objOff[2*i+1] = int32(len(blob))
		blob = append(blob, o.Attribute...)
		objOff[2*i+2] = int32(len(blob))
	}
	valOff := make([]int32, nV+1)
	valOff[0] = int32(len(blob))
	for i := 0; i < nV; i++ {
		blob = append(blob, c.Value(i)...)
		valOff[i+1] = int32(len(blob))
	}

	w.Add(SecGroupStart, snapio.I32Bytes(c.GroupStart))
	w.Add(SecGroupValue, snapio.I32Bytes(c.GroupValue))
	w.Add(SecGroupSrcStart, snapio.I32Bytes(c.GroupSrcStart))
	w.Add(SecGroupSrc, snapio.I32Bytes(c.GroupSrc))
	w.Add(SecSrcStart, snapio.I32Bytes(c.SrcStart))
	w.Add(SecSrcObj, snapio.I32Bytes(c.SrcObj))
	w.Add(SecSrcVal, snapio.I32Bytes(c.SrcVal))
	w.Add(SecSrcGroup, snapio.I32Bytes(c.SrcGroup))
	w.Add(SecSpanStart, snapio.I32Bytes(c.SpanStart))
	w.Add(SecSpanKey, snapio.I64Bytes(c.SpanKey))
	w.Add(SecSpanFirst, timeBytes(c.SpanFirst))
	w.Add(SecSpanLast, timeBytes(c.SpanLast))
	w.Add(SecPopKey, snapio.I64Bytes(c.PopKey))
	w.Add(SecPopCount, snapio.I32Bytes(c.PopCount))
	w.Add(SecStrBlob, blob)
	w.Add(SecSrcOff, snapio.I32Bytes(srcOff))
	w.Add(SecObjOff, snapio.I32Bytes(objOff))
	w.Add(SecValOff, snapio.I32Bytes(valOff))
	return nil
}

// secErr builds an ErrCorrupt-classed validation error.
func secErr(format string, args ...any) error {
	return fmt.Errorf("%w: compiled sections: %s", snapio.ErrCorrupt, fmt.Sprintf(format, args...))
}

// checkCSR validates a CSR start table: first entry 0 (or base), monotonic
// non-decreasing, last entry == limit.
func checkCSR(name string, start []int32, base, limit int32) error {
	if len(start) == 0 || start[0] != base {
		return secErr("%s must begin at %d", name, base)
	}
	for i := 1; i < len(start); i++ {
		if start[i] < start[i-1] {
			return secErr("%s not monotonic at %d", name, i)
		}
	}
	if start[len(start)-1] != limit {
		return secErr("%s ends at %d, want %d", name, start[len(start)-1], limit)
	}
	return nil
}

// checkRange validates every entry of tab lies in [0, limit).
func checkRange(name string, tab []int32, limit int32) error {
	for i, v := range tab {
		if v < 0 || v >= limit {
			return secErr("%s[%d] = %d out of range [0,%d)", name, i, v, limit)
		}
	}
	return nil
}

// CompiledFromMapped builds the mapped-backend Compiled over a validated
// section container. Every table is a zero-copy view into m; the result is
// usable only while m stays mapped. The validation pass is linear scans —
// O(tables) time, O(1) allocation — and guarantees that all the indexed
// accesses the solvers perform stay in bounds whatever the file contents.
func CompiledFromMapped(m *snapio.Mapped) (*Compiled, error) {
	c := &Compiled{}
	var err error
	sec32 := func(id uint32, dst *[]int32) {
		if err == nil {
			*dst, err = m.I32Section(id)
		}
	}
	sec64 := func(id uint32, dst *[]int64) {
		if err == nil {
			*dst, err = m.I64Section(id)
		}
	}
	sec32(SecGroupStart, &c.GroupStart)
	sec32(SecGroupValue, &c.GroupValue)
	sec32(SecGroupSrcStart, &c.GroupSrcStart)
	sec32(SecGroupSrc, &c.GroupSrc)
	sec32(SecSrcStart, &c.SrcStart)
	sec32(SecSrcObj, &c.SrcObj)
	sec32(SecSrcVal, &c.SrcVal)
	sec32(SecSrcGroup, &c.SrcGroup)
	sec32(SecSpanStart, &c.SpanStart)
	sec64(SecSpanKey, &c.SpanKey)
	var first, last []int64
	sec64(SecSpanFirst, &first)
	sec64(SecSpanLast, &last)
	sec64(SecPopKey, &c.PopKey)
	sec32(SecPopCount, &c.PopCount)
	sec32(SecSrcOff, &c.srcOff)
	sec32(SecObjOff, &c.objOff)
	sec32(SecValOff, &c.valOff)
	if err != nil {
		return nil, err
	}
	c.SpanFirst = timesFromI64(first)
	c.SpanLast = timesFromI64(last)
	blob, ok := m.Section(SecStrBlob)
	if !ok {
		return nil, secErr("string blob missing")
	}
	c.strBlob = blob

	// String offset tables: shapes, then in-blob monotonic ranges. An
	// out-of-range offset here is what would otherwise become an OOB string
	// view in an accessor.
	if len(c.srcOff) < 2 || len(c.valOff) < 2 || len(c.objOff) < 3 || len(c.objOff)%2 == 0 {
		return nil, secErr("string offset tables too short (%d/%d/%d)",
			len(c.srcOff), len(c.objOff), len(c.valOff))
	}
	checkOff := func(name string, off []int32, base int32) (int32, error) {
		if off[0] != base {
			return 0, secErr("%s must begin at %d, got %d", name, base, off[0])
		}
		for i := 1; i < len(off); i++ {
			if off[i] < off[i-1] {
				return 0, secErr("%s not monotonic at %d", name, i)
			}
		}
		if last := off[len(off)-1]; int(last) > len(blob) {
			return 0, secErr("%s ends at %d beyond blob of %d", name, last, len(blob))
		}
		return off[len(off)-1], nil
	}
	pos, err := checkOff("srcOff", c.srcOff, 0)
	if err != nil {
		return nil, err
	}
	if pos, err = checkOff("objOff", c.objOff, pos); err != nil {
		return nil, err
	}
	if pos, err = checkOff("valOff", c.valOff, pos); err != nil {
		return nil, err
	}
	if int(pos) != len(blob) {
		return nil, secErr("string blob has %d trailing bytes", len(blob)-int(pos))
	}

	nS, nO, nV := int32(c.NumSources()), int32(c.NumObjects()), int32(c.NumValues())

	// CSR shapes and cross-table index ranges.
	if len(c.GroupStart) != int(nO)+1 || len(c.SrcStart) != int(nS)+1 || len(c.SpanStart) != int(nS)+1 {
		return nil, secErr("CSR start tables sized %d/%d/%d for %d objects, %d sources",
			len(c.GroupStart), len(c.SrcStart), len(c.SpanStart), nO, nS)
	}
	nG := int32(len(c.GroupValue))
	if len(c.GroupSrcStart) != int(nG)+1 {
		return nil, secErr("GroupSrcStart sized %d for %d groups", len(c.GroupSrcStart), nG)
	}
	if len(c.SrcVal) != len(c.SrcObj) || len(c.SrcGroup) != len(c.SrcObj) {
		return nil, secErr("source claim tables sized %d/%d/%d",
			len(c.SrcObj), len(c.SrcVal), len(c.SrcGroup))
	}
	if len(c.SpanFirst) != len(c.SpanKey) || len(c.SpanLast) != len(c.SpanKey) {
		return nil, secErr("span tables sized %d/%d/%d",
			len(c.SpanKey), len(c.SpanFirst), len(c.SpanLast))
	}
	if len(c.PopCount) != len(c.PopKey) {
		return nil, secErr("popularity tables sized %d/%d", len(c.PopKey), len(c.PopCount))
	}
	checks := []error{
		checkCSR("GroupStart", c.GroupStart, 0, nG),
		checkCSR("GroupSrcStart", c.GroupSrcStart, 0, int32(len(c.GroupSrc))),
		checkCSR("SrcStart", c.SrcStart, 0, int32(len(c.SrcObj))),
		checkCSR("SpanStart", c.SpanStart, 0, int32(len(c.SpanKey))),
		checkRange("GroupValue", c.GroupValue, nV),
		checkRange("GroupSrc", c.GroupSrc, nS),
		checkRange("SrcObj", c.SrcObj, nO),
		checkRange("SrcVal", c.SrcVal, nV),
		checkRange("SrcGroup", c.SrcGroup, nG),
	}
	for _, e := range checks {
		if e != nil {
			return nil, e
		}
	}
	for i := int32(0); i < nO; i++ {
		if n := int(c.GroupStart[i+1] - c.GroupStart[i]); n > c.maxGroups {
			c.maxGroups = n
		}
	}
	return c, nil
}

// MappedBacked reports whether the compiled view reads from a mapped
// snapshot (true) or heap-built interning tables (false).
func (c *Compiled) MappedBacked() bool { return c.srcOff != nil }
