package dataset

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sourcecurrents/internal/model"
)

func testClaims(n int) []model.Claim {
	rng := rand.New(rand.NewSource(int64(n)))
	claims := make([]model.Claim, 0, n)
	for i := 0; i < n; i++ {
		s := model.SourceID(fmt.Sprintf("s%d", rng.Intn(7)))
		o := model.Obj(fmt.Sprintf("e%d", rng.Intn(11)), "a")
		v := fmt.Sprintf("v%d", rng.Intn(4))
		claims = append(claims, model.NewClaim(s, o, v))
	}
	return claims
}

// assertDatasetsEquivalent asserts that a log-carrying successor exposes
// exactly the state a flat from-scratch build over the same claim sequence
// exposes: claims, id tables, per-source time order, per-object source
// order, snapshot values, overlaps and value groups.
func assertDatasetsEquivalent(t *testing.T, got, want *Dataset) {
	t.Helper()
	if !reflect.DeepEqual(got.Claims(), want.Claims()) {
		t.Fatalf("claims differ")
	}
	if !reflect.DeepEqual(got.Sources(), want.Sources()) {
		t.Fatalf("sources differ: %v vs %v", got.Sources(), want.Sources())
	}
	if !reflect.DeepEqual(got.Objects(), want.Objects()) {
		t.Fatalf("objects differ")
	}
	for _, s := range want.Sources() {
		if !reflect.DeepEqual(got.ClaimsBySource(s), want.ClaimsBySource(s)) {
			t.Fatalf("source %s: time-ordered claims differ", s)
		}
		if !reflect.DeepEqual(got.ObjectsOf(s), want.ObjectsOf(s)) {
			t.Fatalf("source %s: objects differ", s)
		}
		for _, o := range want.ObjectsOf(s) {
			gv, gok := got.Value(s, o)
			wv, wok := want.Value(s, o)
			if gv != wv || gok != wok {
				t.Fatalf("value(%s, %v) = %q/%v, want %q/%v", s, o, gv, gok, wv, wok)
			}
		}
	}
	for _, o := range want.Objects() {
		if !reflect.DeepEqual(got.ClaimsByObject(o), want.ClaimsByObject(o)) {
			t.Fatalf("object %v: source-ordered claims differ", o)
		}
		if !reflect.DeepEqual(got.ValuesFor(o), want.ValuesFor(o)) {
			t.Fatalf("object %v: value groups differ", o)
		}
	}
	if !reflect.DeepEqual(got.Pairs(1), want.Pairs(1)) {
		t.Fatalf("pair overlaps differ")
	}
}

// TestAppendMatchesFromScratch pins the successor-sharing construction:
// appending batches (including new sources, objects and values mid-stream)
// yields a dataset indistinguishable from a flat build over the
// concatenated claim sequence, at every epoch.
func TestAppendMatchesFromScratch(t *testing.T) {
	all := testClaims(60)
	d, err := FromClaims(all[:30])
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int{30, 31, 45, 52}
	for i, b := range bounds {
		end := len(all)
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		d, err = d.Append(all[b:end])
		if err != nil {
			t.Fatal(err)
		}
		flat, err := FromClaims(all[:end])
		if err != nil {
			t.Fatal(err)
		}
		assertDatasetsEquivalent(t, d, flat)
		if got, want := d.Epoch(), i+1; got != want {
			t.Fatalf("epoch = %d, want %d", got, want)
		}
	}
	if got, want := d.LogBounds(), bounds; !reflect.DeepEqual(got, want) {
		t.Fatalf("LogBounds = %v, want %v", got, want)
	}
}

// TestAppendCompiledMatchesFromScratch pins that the compiled view of a
// successor — including the intern-table reuse fast path — equals the flat
// build's, field for field.
func TestAppendCompiledMatchesFromScratch(t *testing.T) {
	all := testClaims(80)
	base, err := FromClaims(all[:60])
	if err != nil {
		t.Fatal(err)
	}
	base.Compiled() // force the predecessor's view so the fast path engages
	for _, cut := range []int{70, 80} {
		d, err := base.Append(all[60:cut])
		if err != nil {
			t.Fatal(err)
		}
		flat, err := FromClaims(all[:cut])
		if err != nil {
			t.Fatal(err)
		}
		got, want := d.Compiled(), flat.Compiled()
		if !reflect.DeepEqual(got.sources, want.sources) ||
			!reflect.DeepEqual(got.objects, want.objects) ||
			!reflect.DeepEqual(got.values, want.values) {
			t.Fatal("interned tables differ")
		}
		if !reflect.DeepEqual(got.GroupStart, want.GroupStart) ||
			!reflect.DeepEqual(got.GroupValue, want.GroupValue) ||
			!reflect.DeepEqual(got.GroupSrcStart, want.GroupSrcStart) ||
			!reflect.DeepEqual(got.GroupSrc, want.GroupSrc) {
			t.Fatal("group CSR differs")
		}
		if !reflect.DeepEqual(got.SrcStart, want.SrcStart) ||
			!reflect.DeepEqual(got.SrcObj, want.SrcObj) ||
			!reflect.DeepEqual(got.SrcVal, want.SrcVal) ||
			!reflect.DeepEqual(got.SrcGroup, want.SrcGroup) {
			t.Fatal("per-source CSR differs")
		}
	}
}

// TestAppendSiblingsIndependent pins the shared-storage safety property:
// two successors appended from the same base must not clobber each other
// (the claims backing array is re-capped per epoch), and the base must stay
// untouched.
func TestAppendSiblingsIndependent(t *testing.T) {
	base, err := FromClaims(testClaims(40))
	if err != nil {
		t.Fatal(err)
	}
	baseClaims := append([]model.Claim(nil), base.Claims()...)
	b1 := []model.Claim{model.NewClaim("sibA", model.Obj("e1", "a"), "vA")}
	b2 := []model.Claim{model.NewClaim("sibB", model.Obj("e1", "a"), "vB")}
	d1, err := base.Append(b1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := base.Append(b2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d1.Claims()[40]; got.Source != "sibA" {
		t.Fatalf("sibling 2 clobbered sibling 1: %v", got)
	}
	if got := d2.Claims()[40]; got.Source != "sibB" {
		t.Fatalf("sibling 1 clobbered sibling 2: %v", got)
	}
	if !reflect.DeepEqual(base.Claims(), baseClaims) {
		t.Fatal("append mutated the base dataset")
	}
	if base.Epoch() != 0 || base.Base() != nil || base.LogBounds() != nil {
		t.Fatal("append gave the base a log")
	}
	if _, ok := base.Value("sibA", model.Obj("e1", "a")); ok {
		t.Fatal("base sees the appended claim")
	}
}

// TestAppendErrors pins the Append contract errors.
func TestAppendErrors(t *testing.T) {
	d := New()
	if err := d.AddAll(testClaims(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(testClaims(1)); err == nil {
		t.Fatal("append accepted an unfrozen dataset")
	}
	d.Freeze()
	if _, err := d.Append(nil); err == nil {
		t.Fatal("append accepted an empty batch")
	}
	if _, err := d.Append([]model.Claim{{}}); err == nil {
		t.Fatal("append accepted an invalid claim")
	}
}

// TestSnapshotV2RoundTrip pins that a log-carrying dataset snapshot
// round-trips with its epochs, while flat datasets still write the
// version-1 byte layout.
func TestSnapshotV2RoundTrip(t *testing.T) {
	all := testClaims(50)
	flat, err := FromClaims(all[:40])
	if err != nil {
		t.Fatal(err)
	}
	var flatBuf bytes.Buffer
	if err := flat.WriteSnapshot(&flatBuf); err != nil {
		t.Fatal(err)
	}
	// Byte 8 of the frame is the version (after the 8-byte magic).
	if v := flatBuf.Bytes()[8]; v != 1 {
		t.Fatalf("flat dataset framed as version %d, want 1", v)
	}

	d, err := flat.Append(all[40:46])
	if err != nil {
		t.Fatal(err)
	}
	d, err = d.Append(all[46:])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[8]; v != 2 {
		t.Fatalf("appended dataset framed as version %d, want 2", v)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch() != 2 {
		t.Fatalf("loaded epoch = %d, want 2", got.Epoch())
	}
	if !reflect.DeepEqual(got.LogBounds(), []int{40, 46}) {
		t.Fatalf("loaded bounds = %v", got.LogBounds())
	}
	assertDatasetsEquivalent(t, got, d)
}

// TestSegmentRoundTrip pins the log-segment format.
func TestSegmentRoundTrip(t *testing.T) {
	batch := testClaims(9)
	batch[0].HasTime = true
	batch[0].Time = -5
	var buf bytes.Buffer
	if err := WriteSegment(&buf, batch); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatal("segment round-trip differs")
	}
	if err := WriteSegment(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("empty segment accepted")
	}
	var trunc bytes.Buffer
	if err := WriteSegment(&trunc, batch); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSegment(bytes.NewReader(trunc.Bytes()[:trunc.Len()-3])); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

// TestSnapshotAtPrecedence pins the SnapshotAt visibility rule: a visible
// timestamped claim supersedes a timeless claim in either ingestion order,
// timestamped claims resolve by latest time, and timeless claims are the
// fallback when no timestamped claim is visible at t — including for zero
// and negative timestamps, where timeless claims (sorting at time 0)
// iterate after some timestamped ones.
func TestSnapshotAtPrecedence(t *testing.T) {
	o := model.Obj("e", "a")
	timeless := func(v string) model.Claim { return model.NewClaim("s", o, v) }
	at := func(v string, tm model.Time) model.Claim {
		c := model.NewClaim("s", o, v)
		c.HasTime = true
		c.Time = tm
		return c
	}
	cases := []struct {
		name   string
		claims []model.Claim
		t      model.Time
		want   string
	}{
		{"timestamped beats earlier timeless", []model.Claim{timeless("tl"), at("ts", 10)}, 20, "ts"},
		{"timestamped beats later-ingested timeless", []model.Claim{at("ts", 10), timeless("tl")}, 20, "ts"},
		{"timeless fallback before first timestamp", []model.Claim{timeless("tl"), at("ts", 10)}, 5, "tl"},
		{"latest visible timestamp wins", []model.Claim{at("a", 1), at("b", 5), at("c", 9)}, 6, "b"},
		{"negative timestamp beats timeless", []model.Claim{at("neg", -5), timeless("tl")}, 0, "neg"},
		{"negative timestamp beats timeless, reversed", []model.Claim{timeless("tl"), at("neg", -5)}, 0, "neg"},
		{"timeless fallback below negative timestamp", []model.Claim{at("neg", -5), timeless("tl")}, -10, "tl"},
		{"zero timestamp beats timeless", []model.Claim{timeless("tl"), at("zero", 0)}, 0, "zero"},
		{"later timeless wins among timeless", []model.Claim{timeless("tl1"), timeless("tl2")}, 0, "tl2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := FromClaims(tc.claims)
			if err != nil {
				t.Fatal(err)
			}
			snap := d.SnapshotAt(tc.t)
			got, ok := snap.Value("s", o)
			if !ok || got != tc.want {
				t.Fatalf("SnapshotAt(%d) = %q/%v, want %q", tc.t, got, ok, tc.want)
			}
		})
	}
}

// TestSnapshotAtOrderIndependent fuzzes the precedence rule: for random
// claim mixes, SnapshotAt must give the same projection whatever order the
// claims were ingested in.
func TestSnapshotAtOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	o := model.Obj("e", "a")
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		claims := make([]model.Claim, n)
		for i := range claims {
			c := model.NewClaim("s", o, fmt.Sprintf("v%d", i))
			if rng.Intn(2) == 0 {
				c.HasTime = true
				c.Time = model.Time(rng.Intn(11) - 5)
			}
			claims[i] = c
		}
		d1, err := FromClaims(claims)
		if err != nil {
			t.Fatal(err)
		}
		rev := make([]model.Claim, n)
		for i := range claims {
			rev[n-1-i] = claims[i]
		}
		d2, err := FromClaims(rev)
		if err != nil {
			t.Fatal(err)
		}
		for tm := model.Time(-6); tm <= 6; tm++ {
			v1, ok1 := d1.SnapshotAt(tm).Value("s", o)
			v2, ok2 := d2.SnapshotAt(tm).Value("s", o)
			if ok1 != ok2 {
				t.Fatalf("trial %d t=%d: visibility differs", trial, tm)
			}
			// Exact ties (same kind, same time) legitimately resolve by
			// ingestion order; only order-independent outcomes are compared.
			if ok1 && v1 != v2 && !hasExactTie(claims) {
				t.Fatalf("trial %d t=%d: %q vs %q", trial, tm, v1, v2)
			}
		}
	}
}

// hasExactTie reports whether two claims would tie exactly under the
// precedence rule (same HasTime kind and, for timestamped pairs, the same
// time) — the only case where ingestion order legitimately decides.
func hasExactTie(claims []model.Claim) bool {
	for i := range claims {
		for j := i + 1; j < len(claims); j++ {
			a, b := claims[i], claims[j]
			if a.HasTime == b.HasTime && (!a.HasTime || a.Time == b.Time) {
				return true
			}
		}
	}
	return false
}
