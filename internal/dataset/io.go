package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sourcecurrents/internal/model"
)

// CSV layout: source,entity,attribute,value[,time[,prob]]
// A header row "source,entity,attribute,value,..." is optional and detected
// by its first field. Empty time means a snapshot claim; empty prob means 1.

// ReadCSV parses claims from r. It accepts 4, 5, or 6 columns per record.
func ReadCSV(r io.Reader) ([]model.Claim, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // allow mixed 4/5/6 column rows
	var out []model.Claim
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line+1, err)
		}
		line++
		if line == 1 && len(rec) > 0 && rec[0] == "source" {
			continue // header
		}
		if len(rec) < 4 {
			return nil, fmt.Errorf("dataset: csv line %d: need at least 4 fields, got %d", line, len(rec))
		}
		c := model.Claim{
			Source: model.SourceID(rec[0]),
			Object: model.Obj(rec[1], rec[2]),
			Value:  rec[3],
			Prob:   1,
		}
		if len(rec) >= 5 && rec[4] != "" {
			t, err := strconv.ParseInt(rec[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d: bad time %q: %w", line, rec[4], err)
			}
			c.Time = model.Time(t)
			c.HasTime = true
		}
		if len(rec) >= 6 && rec[5] != "" {
			p, err := strconv.ParseFloat(rec[5], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d: bad prob %q: %w", line, rec[5], err)
			}
			c.Prob = p
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line, err)
		}
		out = append(out, c)
	}
}

// WriteCSV writes claims to w with a header row.
func WriteCSV(w io.Writer, claims []model.Claim) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"source", "entity", "attribute", "value", "time", "prob"}); err != nil {
		return err
	}
	for _, c := range claims {
		t := ""
		if c.HasTime {
			t = strconv.FormatInt(int64(c.Time), 10)
		}
		rec := []string{
			string(c.Source), c.Object.Entity, c.Object.Attribute, c.Value,
			t, strconv.FormatFloat(c.Prob, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FromClaims builds and freezes a dataset from a claim slice.
func FromClaims(claims []model.Claim) (*Dataset, error) {
	d := New()
	d.claims = make([]model.Claim, 0, len(claims))
	if err := d.AddAll(claims); err != nil {
		return nil, err
	}
	d.Freeze()
	return d, nil
}
