package dataset

import "sourcecurrents/internal/model"

// The paper's three worked examples, reproduced verbatim so that tests,
// examples, and the experiment harness all run against exactly the data in
// the paper.

// AffAttr is the attribute used by the researcher-affiliation examples.
const AffAttr = "affiliation"

// Table1 returns the snapshot dataset of Table 1 (researcher affiliations,
// sources S1..S5; S1 is fully accurate, S4 copies S3 exactly, S5 copies S3
// with one change), frozen and ready for solvers.
func Table1() *Dataset {
	rows := []struct {
		entity string
		vals   [5]string // S1..S5
	}{
		{"Suciu", [5]string{"UW", "MSR", "UW", "UW", "UWisc"}},
		{"Halevy", [5]string{"Google", "Google", "UW", "UW", "UW"}},
		{"Balazinska", [5]string{"UW", "UW", "UW", "UW", "UW"}},
		{"Dalvi", [5]string{"Yahoo!", "Yahoo!", "UW", "UW", "UW"}},
		{"Dong", [5]string{"AT&T", "Google", "UW", "UW", "UW"}},
	}
	d := New()
	for _, r := range rows {
		for i, v := range r.vals {
			src := model.SourceID([]string{"S1", "S2", "S3", "S4", "S5"}[i])
			if err := d.Add(model.NewClaim(src, model.Obj(r.entity, AffAttr), v)); err != nil {
				panic(err) // static data; cannot fail
			}
		}
	}
	d.Freeze()
	return d
}

// Table1Truth returns the ground truth of Table 1: S1 provides all true
// values.
func Table1Truth() *model.World {
	w := model.NewWorld()
	w.SetSnapshot(model.Obj("Suciu", AffAttr), "UW")
	w.SetSnapshot(model.Obj("Halevy", AffAttr), "Google")
	w.SetSnapshot(model.Obj("Balazinska", AffAttr), "UW")
	w.SetSnapshot(model.Obj("Dalvi", AffAttr), "Yahoo!")
	w.SetSnapshot(model.Obj("Dong", AffAttr), "AT&T")
	return w
}

// Table1Subset returns Table 1 restricted to the given sources (e.g. the
// S1..S3-only scenario of Example 2.1).
func Table1Subset(sources ...model.SourceID) *Dataset {
	full := Table1()
	keep := map[model.SourceID]bool{}
	for _, s := range sources {
		keep[s] = true
	}
	d := New()
	for _, c := range full.Claims() {
		if keep[c.Source] {
			if err := d.Add(c); err != nil {
				panic(err)
			}
		}
	}
	d.Freeze()
	return d
}

// RatingAttr is the attribute used by the movie-rating example.
const RatingAttr = "rating"

// Table2 returns the movie-rating dataset of Table 2 (reviewers R1..R4; R4
// always provides the opposite of R1).
func Table2() *Dataset {
	rows := []struct {
		entity string
		vals   [4]string // R1..R4
	}{
		{"The Pianist", [4]string{"Good", "Neutral", "Bad", "Bad"}},
		{"Into the Wild", [4]string{"Good", "Bad", "Good", "Bad"}},
		{"The Matrix", [4]string{"Bad", "Bad", "Good", "Good"}},
	}
	d := New()
	for _, r := range rows {
		for i, v := range r.vals {
			src := model.SourceID([]string{"R1", "R2", "R3", "R4"}[i])
			if err := d.Add(model.NewClaim(src, model.Obj(r.entity, RatingAttr), v)); err != nil {
				panic(err)
			}
		}
	}
	d.Freeze()
	return d
}

// Table3 returns the temporal dataset of Table 3 (timestamped researcher
// affiliations for sources S1..S3; S1 up-to-date and true since 2002, S2
// independent but sometimes behind, S3 a lazy copier of S1).
func Table3() *Dataset {
	type upd struct {
		t model.Time
		v string
	}
	rows := []struct {
		entity string
		s1     []upd
		s2     []upd
		s3     []upd
	}{
		{"Suciu",
			[]upd{{2002, "UW"}, {2006, "MSR"}, {2007, "UW"}},
			[]upd{{2006, "MSR"}},
			[]upd{{2001, "UW"}, {2003, "UW"}}},
		{"Halevy",
			[]upd{{2002, "UW"}, {2006, "Google"}},
			[]upd{{2006, "Google"}},
			[]upd{{2001, "UW"}, {2003, "UW"}}},
		{"Balazinska",
			[]upd{{2006, "UW"}},
			[]upd{{2006, "UW"}},
			[]upd{{2007, "UW"}}},
		{"Dalvi",
			[]upd{{2002, "UW"}, {2007, "Yahoo!"}},
			[]upd{{2007, "Yahoo!"}},
			[]upd{{2003, "UW"}}},
		{"Dong",
			[]upd{{2002, "UW"}, {2006, "Google"}, {2007, "AT&T"}},
			[]upd{{2001, "UW"}, {2006, "Google"}},
			[]upd{{2003, "UW"}}},
	}
	d := New()
	add := func(src model.SourceID, entity string, us []upd) {
		for _, u := range us {
			c := model.NewTemporalClaim(src, model.Obj(entity, AffAttr), u.v, u.t)
			if err := d.Add(c); err != nil {
				panic(err)
			}
		}
	}
	for _, r := range rows {
		add("S1", r.entity, r.s1)
		add("S2", r.entity, r.s2)
		add("S3", r.entity, r.s3)
	}
	d.Freeze()
	return d
}

// Table3Truth returns the temporal ground truth behind Table 3: S1's trace
// matches the truth ("only S1 provides up-to-date true values since 2002").
// Initial UW periods extend back to 2000 so that the early claims in the
// table (e.g. S2's and S3's UW values stamped 2001) are out-of-date or
// current — never false — exactly the inference Example 3.2 draws.
func Table3Truth() *model.World {
	w := model.NewWorld()
	set := func(entity string, periods ...model.TruthPeriod) {
		w.Set(model.Truth{Object: model.Obj(entity, AffAttr), Periods: periods})
	}
	set("Suciu",
		model.TruthPeriod{Start: 2000, Value: "UW"},
		model.TruthPeriod{Start: 2006, Value: "MSR"},
		model.TruthPeriod{Start: 2007, Value: "UW"})
	set("Halevy",
		model.TruthPeriod{Start: 2000, Value: "UW"},
		model.TruthPeriod{Start: 2006, Value: "Google"})
	set("Balazinska",
		model.TruthPeriod{Start: 2006, Value: "UW"})
	set("Dalvi",
		model.TruthPeriod{Start: 2000, Value: "UW"},
		model.TruthPeriod{Start: 2007, Value: "Yahoo!"})
	set("Dong",
		model.TruthPeriod{Start: 2000, Value: "UW"},
		model.TruthPeriod{Start: 2006, Value: "Google"},
		model.TruthPeriod{Start: 2007, Value: "AT&T"})
	return w
}
