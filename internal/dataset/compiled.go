// Compiled columnar view of a frozen dataset.
//
// The iterative solvers spend their time in loops over (object, value,
// source) triples and (source, source) pairs; running those loops over
// string-keyed maps dominates their profile. Compile interns every SourceID,
// ObjectID and value string into a dense int32 index and lays the snapshot
// and temporal views out as CSR-style slices, so the hot paths become
// pointer-free scans over contiguous memory.
//
// All three interning tables are built in sorted order, which makes integer
// index comparison equivalent to the string comparisons the map-based
// helpers sort by — the property that keeps the compiled solvers
// bit-identical to the map-based reference implementations (iteration and
// summation order is preserved exactly, including for the ValueSim
// similarity classes, whose per-object candidate enumeration follows the
// same sorted-value order).
package dataset

import (
	"sort"
	"strings"
	"unsafe"

	"sourcecurrents/internal/model"
)

// Compiled is the dense, interned, read-only view of a frozen Dataset.
// Build it with Dataset.Compiled() (heap backend) or load it zero-copy from
// a snapshot v2 container (mapped backend); all fields are shared and must
// not be mutated. Consumers reach the interning tables through the
// Source/Object/Value accessors, which hide which backend is underneath.
type Compiled struct {
	// Heap backend: interning tables built by compile(), each sorted, so
	// index order == string order. nil in the mapped backend.
	sources []model.SourceID
	objects []model.ObjectID
	values  []string

	// Mapped backend: every interned string is a byte range of strBlob
	// (which aliases the mapped snapshot). Table entry i spans
	// off[i]..off[i+1]; objects store two consecutive ranges (entity, then
	// attribute), so objOff holds 2n+1 offsets. nil in the heap backend.
	strBlob []byte
	srcOff  []int32
	objOff  []int32
	valOff  []int32

	// Per-object candidate value groups (snapshot view), CSR. Object oi's
	// groups occupy global group indexes GroupStart[oi]..GroupStart[oi+1],
	// ordered by value; group g's asserting sources (deduped, ascending)
	// occupy GroupSrc[GroupSrcStart[g]:GroupSrcStart[g+1]].
	GroupStart    []int32
	GroupValue    []int32
	GroupSrcStart []int32
	GroupSrc      []int32

	// Per-source snapshot claims, CSR, objects ascending. SrcGroup[k] is the
	// global group index holding the value source si asserts for SrcObj[k].
	SrcStart []int32
	SrcObj   []int32
	SrcVal   []int32
	SrcGroup []int32

	// Per-source temporal spans, CSR, sorted by key. SpanKey packs
	// (object index << 32 | value index), so int64 order equals the
	// (entity, attribute, value) order the temporal matcher sorts by.
	// SpanFirst/SpanLast are the first and last assertion times of the
	// (object, value) in the source's update trace.
	SpanStart []int32
	SpanKey   []int64
	SpanFirst []model.Time
	SpanLast  []model.Time

	// Popularity of each distinct timestamped (object, value) assertion:
	// PopCount[k] sources ever assert PopKey[k]. Sorted by key.
	PopKey   []int64
	PopCount []int32

	maxGroups int
	srcIdx    map[model.SourceID]int32
	objIdx    map[model.ObjectID]int32
	valIdx    map[string]int32
}

// Compiled returns the compiled columnar view, building it on first use
// (subsequent calls return the cached view). It returns nil before Freeze.
// The build is safe for concurrent callers.
func (d *Dataset) Compiled() *Compiled {
	if !d.frozen {
		return nil
	}
	d.compileOnce.Do(func() { d.compiled = compile(d) })
	return d.compiled
}

func compile(d *Dataset) *Compiled {
	if c := compileShared(d); c != nil {
		return c
	}
	c := &Compiled{
		sources: d.sources,
		objects: d.objects,
	}
	c.srcIdx = make(map[model.SourceID]int32, len(c.sources))
	for i, s := range c.sources {
		c.srcIdx[s] = int32(i)
	}
	c.objIdx = make(map[model.ObjectID]int32, len(c.objects))
	for i, o := range c.objects {
		c.objIdx[o] = int32(i)
	}

	// Intern every claim value, sorted so index order == string order.
	seen := make(map[string]struct{}, len(d.claims))
	for _, cl := range d.claims {
		seen[cl.Value] = struct{}{}
	}
	c.values = make([]string, 0, len(seen))
	for v := range seen {
		c.values = append(c.values, v)
	}
	sort.Strings(c.values)
	c.valIdx = make(map[string]int32, len(c.values))
	for i, v := range c.values {
		c.valIdx[v] = int32(i)
	}

	c.buildGroups(d)
	c.buildSourceClaims(d)
	c.buildSpans(d)
	return c
}

// compileShared builds the compiled view of an appended dataset by reusing
// the predecessor's interning tables when the batch introduced no new
// source, object, or value strings — the steady-state append. Only the
// sorted tables and index maps are shared (they are read-only and identical
// by construction); every CSR layout is rebuilt against the successor. It
// returns nil when the fast path does not apply.
func compileShared(d *Dataset) *Compiled {
	base := d.base
	if base == nil {
		return nil
	}
	// The replay and live-append paths always compile the predecessor before
	// the successor, so this is a cached fetch, not a recursive build.
	bc := base.Compiled()
	// Append only ever adds ids, so equal table lengths mean identical
	// (shared) tables.
	if len(d.sources) != bc.NumSources() || len(d.objects) != bc.NumObjects() {
		return nil
	}
	// The predecessor could be mapped (a session materialized from a v2
	// snapshot): its index maps are nil and its strings alias the mapping,
	// which must not leak into a successor that outlives it. Appends always
	// run against materialized datasets, so just rebuild from scratch.
	if bc.srcIdx == nil {
		return nil
	}
	for _, cl := range d.Batch() {
		if _, ok := bc.valIdx[cl.Value]; !ok {
			return nil
		}
	}
	c := &Compiled{
		sources: bc.sources,
		objects: bc.objects,
		values:  bc.values,
		srcIdx:  bc.srcIdx,
		objIdx:  bc.objIdx,
		valIdx:  bc.valIdx,
	}
	c.buildGroups(d)
	c.buildSourceClaims(d)
	c.buildSpans(d)
	return c
}

// buildGroups lays out the per-object candidate value groups. ValuesFor
// already returns groups in sorted-value order with deduped ascending
// sources, which is exactly the canonical order the solvers iterate in.
func (c *Compiled) buildGroups(d *Dataset) {
	c.GroupStart = make([]int32, len(c.objects)+1)
	c.GroupSrcStart = append(c.GroupSrcStart, 0)
	for oi, o := range c.objects {
		groups := d.ValuesFor(o)
		if len(groups) > c.maxGroups {
			c.maxGroups = len(groups)
		}
		for _, g := range groups {
			c.GroupValue = append(c.GroupValue, c.valIdx[g.Value])
			for _, s := range g.Sources {
				c.GroupSrc = append(c.GroupSrc, c.srcIdx[s])
			}
			c.GroupSrcStart = append(c.GroupSrcStart, int32(len(c.GroupSrc)))
		}
		c.GroupStart[oi+1] = int32(len(c.GroupValue))
	}
}

// buildSourceClaims lays out each source's snapshot claims with the global
// group index of each asserted value. One sweep over the objects in index
// order fills every source's exactly-sized region in ascending-object
// order — the same layout as iterating each source's sorted object list,
// without re-sorting per source.
func (c *Compiled) buildSourceClaims(d *Dataset) {
	nS := len(c.sources)
	c.SrcStart = make([]int32, nS+1)
	for si, s := range c.sources {
		c.SrcStart[si+1] = c.SrcStart[si] + int32(len(d.valueOf[s]))
	}
	total := int(c.SrcStart[nS])
	c.SrcObj = make([]int32, total)
	c.SrcVal = make([]int32, total)
	c.SrcGroup = make([]int32, total)
	cursor := make([]int32, nS)
	copy(cursor, c.SrcStart[:nS])
	for oi, o := range c.objects {
		// byObject is source-sorted after Freeze; a source re-asserting o
		// appears in adjacent entries and contributes one snapshot claim.
		var last model.SourceID
		haveLast := false
		for _, idx := range d.byObject[o] {
			s := d.claims[idx].Source
			if haveLast && s == last {
				continue
			}
			last, haveLast = s, true
			si := c.srcIdx[s]
			vi := c.valIdx[d.valueOf[s][o]]
			k := cursor[si]
			cursor[si]++
			c.SrcObj[k] = int32(oi)
			c.SrcVal[k] = vi
			c.SrcGroup[k] = c.findGroup(int32(oi), vi)
		}
	}
}

// findGroup locates the group of object oi holding value vi by binary search
// over the object's value-sorted groups.
func (c *Compiled) findGroup(oi, vi int32) int32 {
	lo, hi := c.GroupStart[oi], c.GroupStart[oi+1]
	vals := c.GroupValue[lo:hi]
	k := sort.Search(len(vals), func(i int) bool { return vals[i] >= vi })
	return lo + int32(k)
}

// buildSpans collapses each source's update trace into per-(object, value)
// first/last assertion spans, sorted by packed key, and tallies how many
// sources ever make each assertion (the temporal rarity denominator).
func (c *Compiled) buildSpans(d *Dataset) {
	c.SpanStart = make([]int32, len(c.sources)+1)
	pop := map[int64]int32{}
	type span struct{ first, last model.Time }
	for si, s := range c.sources {
		spans := map[int64]span{}
		for _, idx := range d.bySource[s] {
			cl := d.claims[idx]
			if !cl.HasTime {
				continue
			}
			key := int64(c.objIdx[cl.Object])<<32 | int64(c.valIdx[cl.Value])
			sp, ok := spans[key]
			if !ok {
				spans[key] = span{first: cl.Time, last: cl.Time}
				continue
			}
			if cl.Time < sp.first {
				sp.first = cl.Time
			}
			if cl.Time > sp.last {
				sp.last = cl.Time
			}
			spans[key] = sp
		}
		keys := make([]int64, 0, len(spans))
		for k := range spans {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, k := range keys {
			sp := spans[k]
			c.SpanKey = append(c.SpanKey, k)
			c.SpanFirst = append(c.SpanFirst, sp.first)
			c.SpanLast = append(c.SpanLast, sp.last)
			pop[k]++
		}
		c.SpanStart[si+1] = int32(len(c.SpanKey))
	}
	c.PopKey = make([]int64, 0, len(pop))
	for k := range pop {
		c.PopKey = append(c.PopKey, k)
	}
	sort.Slice(c.PopKey, func(a, b int) bool { return c.PopKey[a] < c.PopKey[b] })
	c.PopCount = make([]int32, len(c.PopKey))
	for i, k := range c.PopKey {
		c.PopCount[i] = pop[k]
	}
}

// MaxGroupsPerObject returns the largest candidate-value count over all
// objects; solvers size their per-worker scratch buffers with it.
func (c *Compiled) MaxGroupsPerObject() int { return c.maxGroups }

// MaxSourcesPerGroup returns the largest asserting-source count over all
// value groups.
func (c *Compiled) MaxSourcesPerGroup() int {
	max := 0
	for g := 0; g+1 < len(c.GroupSrcStart); g++ {
		if n := int(c.GroupSrcStart[g+1] - c.GroupSrcStart[g]); n > max {
			max = n
		}
	}
	return max
}

// Accessor API over the interning tables. Index order == string order in
// both backends, so the mapped backend answers lookups by binary search
// over the sorted table instead of rebuilding index maps (which would blow
// the snapshot-load allocation budget).

// NumSources returns the source-table length.
func (c *Compiled) NumSources() int {
	if c.srcOff != nil {
		return len(c.srcOff) - 1
	}
	return len(c.sources)
}

// NumObjects returns the object-table length.
func (c *Compiled) NumObjects() int {
	if c.objOff != nil {
		return (len(c.objOff) - 1) / 2
	}
	return len(c.objects)
}

// NumValues returns the value-table length.
func (c *Compiled) NumValues() int {
	if c.valOff != nil {
		return len(c.valOff) - 1
	}
	return len(c.values)
}

// str returns blob bytes [lo,hi) as a zero-copy string view. The view
// aliases the mapped region and is invalidated by unmapping.
func (c *Compiled) str(lo, hi int32) string {
	if lo == hi {
		return ""
	}
	return unsafe.String(&c.strBlob[lo], int(hi-lo))
}

// Source returns interned source i.
func (c *Compiled) Source(i int) model.SourceID {
	if c.srcOff != nil {
		return model.SourceID(c.str(c.srcOff[i], c.srcOff[i+1]))
	}
	return c.sources[i]
}

// Object returns interned object i.
func (c *Compiled) Object(i int) model.ObjectID {
	if c.objOff != nil {
		return model.ObjectID{
			Entity:    c.str(c.objOff[2*i], c.objOff[2*i+1]),
			Attribute: c.str(c.objOff[2*i+1], c.objOff[2*i+2]),
		}
	}
	return c.objects[i]
}

// Value returns interned value i.
func (c *Compiled) Value(i int) string {
	if c.valOff != nil {
		return c.str(c.valOff[i], c.valOff[i+1])
	}
	return c.values[i]
}

// SourceIDs returns the sorted source table as a slice. The heap backend
// returns the shared interning table (treat as read-only); the mapped
// backend materializes a fresh copy whose strings do not alias the mapping,
// so the result survives unmapping.
func (c *Compiled) SourceIDs() []model.SourceID {
	if c.srcOff == nil {
		return c.sources
	}
	out := make([]model.SourceID, c.NumSources())
	for i := range out {
		out[i] = model.SourceID(strings.Clone(string(c.Source(i))))
	}
	return out
}

// ObjectIDs returns the sorted object table as a slice, under the same
// sharing/copying contract as SourceIDs.
func (c *Compiled) ObjectIDs() []model.ObjectID {
	if c.objOff == nil {
		return c.objects
	}
	out := make([]model.ObjectID, c.NumObjects())
	for i := range out {
		o := c.Object(i)
		out[i] = model.ObjectID{
			Entity:    strings.Clone(o.Entity),
			Attribute: strings.Clone(o.Attribute),
		}
	}
	return out
}

// SourceIndex returns the dense index of s.
func (c *Compiled) SourceIndex(s model.SourceID) (int32, bool) {
	if c.srcIdx != nil {
		i, ok := c.srcIdx[s]
		return i, ok
	}
	n := c.NumSources()
	k := sort.Search(n, func(i int) bool { return c.Source(i) >= s })
	if k < n && c.Source(k) == s {
		return int32(k), true
	}
	return 0, false
}

// ObjectIndex returns the dense index of o.
func (c *Compiled) ObjectIndex(o model.ObjectID) (int32, bool) {
	if c.objIdx != nil {
		i, ok := c.objIdx[o]
		return i, ok
	}
	n := c.NumObjects()
	// Objects are sorted by (entity, attribute) — model.SortObjects order.
	k := sort.Search(n, func(i int) bool {
		ci := c.Object(i)
		if ci.Entity != o.Entity {
			return ci.Entity > o.Entity
		}
		return ci.Attribute >= o.Attribute
	})
	if k < n && c.Object(k) == o {
		return int32(k), true
	}
	return 0, false
}

// ValueIndex returns the dense index of value v.
func (c *Compiled) ValueIndex(v string) (int32, bool) {
	if c.valIdx != nil {
		i, ok := c.valIdx[v]
		return i, ok
	}
	n := c.NumValues()
	k := sort.Search(n, func(i int) bool { return c.Value(i) >= v })
	if k < n && c.Value(k) == v {
		return int32(k), true
	}
	return 0, false
}

// ClaimOf returns the position in the per-source claim arrays (SrcObj,
// SrcVal, SrcGroup) holding source si's snapshot claim for object oi, or -1
// when si asserts nothing about oi — the dense equivalent of
// Dataset.Value, by binary search over the source's ascending object list.
func (c *Compiled) ClaimOf(si, oi int32) int32 {
	lo, hi := c.SrcStart[si], c.SrcStart[si+1]
	objs := c.SrcObj[lo:hi]
	k := sort.Search(len(objs), func(i int) bool { return objs[i] >= oi })
	if k < len(objs) && objs[k] == oi {
		return lo + int32(k)
	}
	return -1
}

// GroupOf returns the global group index of object oi's candidate group
// holding value vi, by binary search over the object's value-sorted groups.
// The result is meaningful only when some source asserts vi for oi.
func (c *Compiled) GroupOf(oi, vi int32) int32 { return c.findGroup(oi, vi) }

// PopularityOf returns how many sources ever assert the timestamped
// (object, value) packed key, by binary search.
func (c *Compiled) PopularityOf(key int64) int32 {
	k := sort.Search(len(c.PopKey), func(i int) bool { return c.PopKey[i] >= key })
	if k < len(c.PopKey) && c.PopKey[k] == key {
		return c.PopCount[k]
	}
	return 0
}
