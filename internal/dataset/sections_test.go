package dataset

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"sourcecurrents/internal/model"
	"sourcecurrents/internal/snapio"
)

const testDSMagic = "SCDSTEST"

// compiledSectionBytes writes c's section layout into a standalone test
// container.
func compiledSectionBytes(t testing.TB, c *Compiled) []byte {
	t.Helper()
	var sw snapio.SectionWriter
	if err := c.AppendSections(&sw); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sw.WriteTo(&buf, testDSMagic, 1); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mappedCompiled(t testing.TB, raw []byte) (*snapio.Mapped, *Compiled) {
	t.Helper()
	m, err := snapio.OpenMappedBytes(raw, testDSMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompiledFromMapped(m)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

// sectionWorld returns a compiled view with non-trivial span and popularity
// tables (timestamped claims, repeated values) so every section is
// exercised.
func sectionWorld(t testing.TB) *Compiled {
	t.Helper()
	d := New()
	claims := []model.Claim{
		model.NewTemporalClaim("S1", model.Obj("carey", "affiliation"), "BEA", 1),
		model.NewTemporalClaim("S1", model.Obj("carey", "affiliation"), "UCI", 5),
		model.NewTemporalClaim("S2", model.Obj("carey", "affiliation"), "UCI", 3),
		model.NewTemporalClaim("S2", model.Obj("dong", "affiliation"), "ATT", 2),
		model.NewTemporalClaim("S3", model.Obj("dong", "affiliation"), "MSR", 2),
		model.NewTemporalClaim("S3", model.Obj("carey", "affiliation"), "BEA", 4),
		model.NewTemporalClaim("S3", model.Obj("dong", "age"), "30", 1),
	}
	for _, cl := range claims {
		if err := d.Add(cl); err != nil {
			t.Fatal(err)
		}
	}
	d.Freeze()
	return d.Compiled()
}

// TestCompiledSectionsRoundTrip pins the zero-copy codec contract: a
// Compiled rebuilt from its mapped sections is observationally identical to
// the heap-built original — same CSR tables, same interned strings in the
// same order, same index lookups.
func TestCompiledSectionsRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    *Compiled
	}{
		{"table1", Table1().Compiled()},
		{"timestamped", sectionWorld(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.c
			raw := compiledSectionBytes(t, want)
			_, got := mappedCompiled(t, raw)
			if !got.MappedBacked() || want.MappedBacked() {
				t.Fatal("backend flags wrong way around")
			}

			if got.NumSources() != want.NumSources() ||
				got.NumObjects() != want.NumObjects() ||
				got.NumValues() != want.NumValues() {
				t.Fatalf("shape %d/%d/%d, want %d/%d/%d",
					got.NumSources(), got.NumObjects(), got.NumValues(),
					want.NumSources(), want.NumObjects(), want.NumValues())
			}
			for i := 0; i < want.NumSources(); i++ {
				s := want.Source(i)
				if got.Source(i) != s {
					t.Fatalf("Source(%d) = %q, want %q", i, got.Source(i), s)
				}
				if gi, ok := got.SourceIndex(s); !ok || int(gi) != i {
					t.Fatalf("SourceIndex(%q) = %d,%v", s, gi, ok)
				}
			}
			if _, ok := got.SourceIndex("no-such-source"); ok {
				t.Fatal("SourceIndex found a source that does not exist")
			}
			for i := 0; i < want.NumObjects(); i++ {
				o := want.Object(i)
				if got.Object(i) != o {
					t.Fatalf("Object(%d) = %v, want %v", i, got.Object(i), o)
				}
				if gi, ok := got.ObjectIndex(o); !ok || int(gi) != i {
					t.Fatalf("ObjectIndex(%v) = %d,%v", o, gi, ok)
				}
			}
			if _, ok := got.ObjectIndex(model.Obj("zzz", "zzz")); ok {
				t.Fatal("ObjectIndex found an object that does not exist")
			}
			for i := 0; i < want.NumValues(); i++ {
				if got.Value(i) != want.Value(i) {
					t.Fatalf("Value(%d) = %q, want %q", i, got.Value(i), want.Value(i))
				}
			}
			if !reflect.DeepEqual(got.SourceIDs(), want.SourceIDs()) {
				t.Fatal("SourceIDs differ")
			}
			if !reflect.DeepEqual(got.ObjectIDs(), want.ObjectIDs()) {
				t.Fatal("ObjectIDs differ")
			}

			pairs := [][2][]int32{
				{got.GroupStart, want.GroupStart},
				{got.GroupValue, want.GroupValue},
				{got.GroupSrcStart, want.GroupSrcStart},
				{got.GroupSrc, want.GroupSrc},
				{got.SrcStart, want.SrcStart},
				{got.SrcObj, want.SrcObj},
				{got.SrcVal, want.SrcVal},
				{got.SrcGroup, want.SrcGroup},
				{got.SpanStart, want.SpanStart},
				{got.PopCount, want.PopCount},
			}
			for i, p := range pairs {
				// A zero-length mapped table decodes as nil; treat it as
				// equal to the heap side's empty slice.
				if len(p[0]) != len(p[1]) || (len(p[0]) > 0 && !reflect.DeepEqual(p[0], p[1])) {
					t.Fatalf("int32 table %d differs: %v vs %v", i, p[0], p[1])
				}
			}
			eq64 := func(a, b []int64) bool {
				return len(a) == len(b) && (len(a) == 0 || reflect.DeepEqual(a, b))
			}
			eqT := func(a, b []model.Time) bool {
				return len(a) == len(b) && (len(a) == 0 || reflect.DeepEqual(a, b))
			}
			if !eq64(got.SpanKey, want.SpanKey) ||
				!eqT(got.SpanFirst, want.SpanFirst) ||
				!eqT(got.SpanLast, want.SpanLast) ||
				!eq64(got.PopKey, want.PopKey) {
				t.Fatal("span/popularity tables differ")
			}
			if got.MaxGroupsPerObject() != want.MaxGroupsPerObject() {
				t.Fatalf("maxGroups %d, want %d",
					got.MaxGroupsPerObject(), want.MaxGroupsPerObject())
			}
		})
	}
}

// TestCompiledSectionsCorruption mutates mapped payload bytes — which the
// header CRC deliberately does not cover — and checks the structural
// validation pass classifies every mutation as ErrCorrupt instead of
// letting it become an out-of-bounds access later.
func TestCompiledSectionsCorruption(t *testing.T) {
	want := sectionWorld(t)
	raw := compiledSectionBytes(t, want)

	cases := []struct {
		name    string
		corrupt func(m *snapio.Mapped)
	}{
		{"srcOff-negative", func(m *snapio.Mapped) {
			off, _ := m.I32Section(SecSrcOff)
			off[1] = -1
		}},
		{"srcOff-nonmonotonic", func(m *snapio.Mapped) {
			off, _ := m.I32Section(SecSrcOff)
			off[len(off)-1] = off[0]
		}},
		{"valOff-beyond-blob", func(m *snapio.Mapped) {
			off, _ := m.I32Section(SecValOff)
			off[len(off)-1] += 8
		}},
		{"valOff-trailing-blob", func(m *snapio.Mapped) {
			off, _ := m.I32Section(SecValOff)
			off[len(off)-1]--
		}},
		{"objOff-wrong-base", func(m *snapio.Mapped) {
			off, _ := m.I32Section(SecObjOff)
			off[0]++
		}},
		{"groupstart-bad-base", func(m *snapio.Mapped) {
			tab, _ := m.I32Section(SecGroupStart)
			tab[0] = 1
		}},
		{"groupstart-nonmonotonic", func(m *snapio.Mapped) {
			tab, _ := m.I32Section(SecGroupStart)
			tab[1] = tab[len(tab)-1] + 5
		}},
		{"groupvalue-out-of-range", func(m *snapio.Mapped) {
			tab, _ := m.I32Section(SecGroupValue)
			tab[0] = int32(want.NumValues()) + 7
		}},
		{"srcobj-negative", func(m *snapio.Mapped) {
			tab, _ := m.I32Section(SecSrcObj)
			tab[0] = -3
		}},
		{"srcgroup-out-of-range", func(m *snapio.Mapped) {
			tab, _ := m.I32Section(SecSrcGroup)
			tab[len(tab)-1] = int32(len(want.GroupValue)) + 1
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := snapio.OpenMappedBytes(append([]byte(nil), raw...), testDSMagic, 1)
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(m)
			if _, err := CompiledFromMapped(m); !errors.Is(err, snapio.ErrCorrupt) {
				t.Fatalf("CompiledFromMapped = %v, want ErrCorrupt", err)
			}
		})
	}

	t.Run("missing-section", func(t *testing.T) {
		var sw snapio.SectionWriter
		if err := want.AppendSections(&sw); err != nil {
			t.Fatal(err)
		}
		// Rebuild the container without the string blob.
		m, err := snapio.OpenMappedBytes(raw, testDSMagic, 1)
		if err != nil {
			t.Fatal(err)
		}
		var sw2 snapio.SectionWriter
		for id := SecGroupStart; id <= SecValOff; id++ {
			if id == SecStrBlob {
				continue
			}
			if b, ok := m.Section(id); ok {
				sw2.Add(id, b)
			}
		}
		var buf bytes.Buffer
		if err := sw2.WriteTo(&buf, testDSMagic, 1); err != nil {
			t.Fatal(err)
		}
		m2, err := snapio.OpenMappedBytes(buf.Bytes(), testDSMagic, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CompiledFromMapped(m2); !errors.Is(err, snapio.ErrCorrupt) {
			t.Fatalf("CompiledFromMapped without blob = %v, want ErrCorrupt", err)
		}
	})
}

// FuzzCompiledFromMapped drives the section validator with arbitrary
// containers: every outcome is a clean error or a structurally safe
// Compiled, never a panic. Seeds live in testdata/fuzz.
func FuzzCompiledFromMapped(f *testing.F) {
	f.Add(compiledSectionBytes(f, Table1().Compiled()))
	f.Add(compiledSectionBytes(f, sectionWorld(f)))
	raw := compiledSectionBytes(f, sectionWorld(f))
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:24])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := snapio.OpenMappedBytes(data, testDSMagic, 1)
		if err != nil {
			return
		}
		c, err := CompiledFromMapped(m)
		if err != nil {
			return
		}
		// Walk every accessor: validation must have made these safe.
		for i := 0; i < c.NumSources(); i++ {
			_ = c.Source(i)
		}
		for i := 0; i < c.NumObjects(); i++ {
			_ = c.Object(i)
		}
		for i := 0; i < c.NumValues(); i++ {
			_ = c.Value(i)
		}
	})
}
