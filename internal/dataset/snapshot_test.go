package dataset

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"sourcecurrents/internal/model"
	"sourcecurrents/internal/snapio"
)

// snapTestDataset builds a dataset that exercises the format's corners:
// temporal claims, snapshot claims, re-asserted values, multi-value
// conflicts, claim probabilities, and shared strings across roles.
func snapTestDataset(t testing.TB) *Dataset {
	t.Helper()
	d := New()
	add := func(c model.Claim) {
		if err := d.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	add(model.NewClaim("S1", model.Obj("Dong", "affiliation"), "AT&T"))
	add(model.NewClaim("S2", model.Obj("Dong", "affiliation"), "AT&T"))
	add(model.NewClaim("S3", model.Obj("Dong", "affiliation"), "UW"))
	add(model.NewTemporalClaim("S1", model.Obj("Carey", "affiliation"), "BEA", 1))
	add(model.NewTemporalClaim("S1", model.Obj("Carey", "affiliation"), "UCI", 5))
	add(model.NewTemporalClaim("S2", model.Obj("Carey", "affiliation"), "BEA", 3))
	// Same value re-asserted; same strings used as entity and value.
	add(model.NewTemporalClaim("S3", model.Obj("Carey", "affiliation"), "BEA", 2))
	add(model.NewTemporalClaim("S3", model.Obj("Carey", "affiliation"), "BEA", 6))
	add(model.NewClaim("S3", model.Obj("BEA", "status"), "acquired"))
	c := model.NewClaim("S2", model.Obj("BEA", "status"), "independent")
	c.Prob = 0.25
	add(c)
	d.Freeze()
	return d
}

func encodeSnapshot(t testing.TB, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := snapTestDataset(t)
	raw := encodeSnapshot(t, d)
	got, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Claims(), d.Claims()) {
		t.Fatal("claims differ after round trip")
	}
	if !reflect.DeepEqual(got.Sources(), d.Sources()) {
		t.Fatal("sources differ after round trip")
	}
	if !reflect.DeepEqual(got.Objects(), d.Objects()) {
		t.Fatal("objects differ after round trip")
	}
	// Snapshot view and value groups (the solver inputs) must agree too.
	for _, o := range d.Objects() {
		if !reflect.DeepEqual(got.ValuesFor(o), d.ValuesFor(o)) {
			t.Fatalf("ValuesFor(%v) differs after round trip", o)
		}
	}
	// Re-encoding the decoded dataset is byte-identical (canonical form).
	if !bytes.Equal(encodeSnapshot(t, got), raw) {
		t.Fatal("re-encoded snapshot is not byte-identical")
	}
}

func TestSnapshotRequiresFrozen(t *testing.T) {
	d := New()
	if err := d.Add(model.NewClaim("S1", model.Obj("e", "a"), "v")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err == nil {
		t.Fatal("expected error for unfrozen dataset")
	}
}

func TestSnapshotEmptyDataset(t *testing.T) {
	d := New()
	d.Freeze()
	raw := encodeSnapshot(t, d)
	got, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || !got.Frozen() {
		t.Fatalf("decoded empty dataset: len=%d frozen=%v", got.Len(), got.Frozen())
	}
}

func TestSnapshotWrongMagic(t *testing.T) {
	raw := encodeSnapshot(t, snapTestDataset(t))
	raw[0] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(raw)); !errors.Is(err, snapio.ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestSnapshotFutureVersion(t *testing.T) {
	raw := encodeSnapshot(t, snapTestDataset(t))
	raw[snapio.MagicLen] = SnapshotVersion + 1
	if _, err := ReadSnapshot(bytes.NewReader(raw)); !errors.Is(err, snapio.ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestSnapshotTruncatedEverywhere(t *testing.T) {
	raw := encodeSnapshot(t, snapTestDataset(t))
	for cut := 0; cut < len(raw); cut += 1 {
		if _, err := ReadSnapshot(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("cut at %d bytes: expected error", cut)
		}
	}
}

func TestSnapshotBitFlips(t *testing.T) {
	raw := encodeSnapshot(t, snapTestDataset(t))
	for off := 0; off < len(raw); off += 7 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x10
		// Must never panic; almost always errors (the CRC catches payload
		// damage, header damage trips magic/version/length checks). A flip
		// in the CRC bytes themselves errors as a checksum mismatch.
		if _, err := ReadSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at %d decoded successfully", off)
		}
	}
}

// craftFrame builds a validly-framed payload with arbitrary contents, so
// corruption below the CRC layer can be exercised.
func craftFrame(t *testing.T, build func(w *snapio.Writer)) []byte {
	t.Helper()
	var w snapio.Writer
	build(&w)
	var buf bytes.Buffer
	if err := w.Frame(&buf, SnapshotMagic, SnapshotVersion); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotDuplicateClaimPosition(t *testing.T) {
	raw := craftFrame(t, func(w *snapio.Writer) {
		w.U32(3) // strings: "S", "e", "v" (attribute reuses "e")
		w.Str("S")
		w.Str("e")
		w.Str("v")
		w.U32(2) // two claims
		w.U32(1) // one source
		w.U32(0) // source ref "S"
		w.U32(2) // two records
		for i := 0; i < 2; i++ {
			w.U32(0) // position 0 twice
			w.U32(1)
			w.U32(1)
			w.U32(2)
			w.Bool(false)
			w.I64(0)
			w.F64(1)
		}
	})
	if _, err := ReadSnapshot(bytes.NewReader(raw)); !errors.Is(err, snapio.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotMissingClaimPosition(t *testing.T) {
	raw := craftFrame(t, func(w *snapio.Writer) {
		w.U32(3)
		w.Str("S")
		w.Str("e")
		w.Str("v")
		w.U32(2) // declares two claims ...
		w.U32(1)
		w.U32(0)
		w.U32(1) // ... but encodes only one
		w.U32(0)
		w.U32(1)
		w.U32(1)
		w.U32(2)
		w.Bool(false)
		w.I64(0)
		w.F64(1)
	})
	if _, err := ReadSnapshot(bytes.NewReader(raw)); !errors.Is(err, snapio.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotInvalidClaim(t *testing.T) {
	// An empty source string is structurally valid in the format but fails
	// claim validation at rebuild — must error, not panic.
	raw := craftFrame(t, func(w *snapio.Writer) {
		w.U32(3)
		w.Str("") // sorted first
		w.Str("e")
		w.Str("v")
		w.U32(1)
		w.U32(1)
		w.U32(0) // source ref "" — invalid claim
		w.U32(1)
		w.U32(0)
		w.U32(1)
		w.U32(1)
		w.U32(2)
		w.Bool(false)
		w.I64(0)
		w.F64(1)
	})
	if _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected claim validation error")
	}
}

// FuzzReadSnapshot drives the decoder with arbitrary bytes: it must return
// an error or a valid dataset, and never panic. The seed corpus (checked in
// under testdata/fuzz) covers a valid snapshot, truncations, and header
// damage.
func FuzzReadSnapshot(f *testing.F) {
	d := snapTestDataset(f)
	var buf bytes.Buffer
	if err := d.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:snapio.MagicLen+4])
	f.Add([]byte{})
	f.Add([]byte("SCDSDATA"))
	mut := append([]byte(nil), raw...)
	mut[len(mut)/3] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadSnapshot(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil dataset without error")
		}
	})
}
