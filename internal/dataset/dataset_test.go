package dataset

import (
	"bytes"
	"strings"
	"testing"

	"sourcecurrents/internal/model"
)

func TestAddAndFreeze(t *testing.T) {
	d := New()
	if err := d.Add(model.NewClaim("S1", model.Obj("a", "x"), "1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(model.Claim{}); err == nil {
		t.Fatal("invalid claim accepted")
	}
	d.Freeze()
	if !d.Frozen() {
		t.Fatal("not frozen")
	}
	if err := d.Add(model.NewClaim("S2", model.Obj("a", "x"), "2")); err == nil {
		t.Fatal("Add after Freeze accepted")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestTable1Shape(t *testing.T) {
	d := Table1()
	if got := len(d.Sources()); got != 5 {
		t.Fatalf("sources = %d", got)
	}
	if got := len(d.Objects()); got != 5 {
		t.Fatalf("objects = %d", got)
	}
	if d.Len() != 25 {
		t.Fatalf("claims = %d", d.Len())
	}
	v, ok := d.Value("S1", model.Obj("Dong", AffAttr))
	if !ok || v != "AT&T" {
		t.Fatalf("S1 Dong = %q,%v", v, ok)
	}
	v, ok = d.Value("S5", model.Obj("Suciu", AffAttr))
	if !ok || v != "UWisc" {
		t.Fatalf("S5 Suciu = %q,%v", v, ok)
	}
}

func TestTable1TruthMatchesS1(t *testing.T) {
	d := Table1()
	w := Table1Truth()
	for _, o := range d.Objects() {
		want, _ := w.TrueNow(o)
		got, _ := d.Value("S1", o)
		if got != want {
			t.Errorf("S1 %v = %q, truth %q", o, got, want)
		}
	}
}

func TestOverlap(t *testing.T) {
	d := Table1()
	ov := d.OverlapOf("S3", "S4") // S4 exact copy of S3
	if len(ov.Objects) != 5 || ov.Same != 5 {
		t.Fatalf("S3~S4 overlap = %d shared, %d same", len(ov.Objects), ov.Same)
	}
	ov = d.OverlapOf("S3", "S5") // S5 changed Suciu
	if len(ov.Objects) != 5 || ov.Same != 4 {
		t.Fatalf("S3~S5 overlap = %d shared, %d same", len(ov.Objects), ov.Same)
	}
	// Symmetry.
	ba := d.OverlapOf("S4", "S3")
	if ba.Same != 5 || len(ba.Objects) != 5 {
		t.Fatal("overlap not symmetric")
	}
}

func TestPairsThreshold(t *testing.T) {
	d := Table1()
	if got := len(d.Pairs(5)); got != 10 { // C(5,2), all share 5 objects
		t.Fatalf("Pairs(5) = %d", got)
	}
	if got := len(d.Pairs(6)); got != 0 {
		t.Fatalf("Pairs(6) = %d", got)
	}
}

func TestValuesFor(t *testing.T) {
	d := Table1()
	groups := d.ValuesFor(model.Obj("Dong", AffAttr))
	if len(groups) != 3 {
		t.Fatalf("Dong value groups = %d: %v", len(groups), groups)
	}
	// Sorted by value: AT&T, Google, UW.
	if groups[0].Value != "AT&T" || len(groups[0].Sources) != 1 {
		t.Fatalf("group0 = %+v", groups[0])
	}
	if groups[2].Value != "UW" || len(groups[2].Sources) != 3 {
		t.Fatalf("group2 = %+v", groups[2])
	}
}

func TestCoverage(t *testing.T) {
	d := New()
	_ = d.Add(model.NewClaim("S1", model.Obj("a", "x"), "1"))
	_ = d.Add(model.NewClaim("S1", model.Obj("b", "x"), "1"))
	_ = d.Add(model.NewClaim("S2", model.Obj("a", "x"), "2"))
	d.Freeze()
	if got := d.Coverage("S1"); got != 1 {
		t.Fatalf("S1 coverage = %v", got)
	}
	if got := d.Coverage("S2"); got != 0.5 {
		t.Fatalf("S2 coverage = %v", got)
	}
}

func TestTable3SnapshotProjection(t *testing.T) {
	d := Table3()
	// As of 2005: S1 shows UW for everyone it has updated by then.
	snap := d.SnapshotAt(2005)
	v, ok := snap.Value("S1", model.Obj("Dong", AffAttr))
	if !ok || v != "UW" {
		t.Fatalf("S1 Dong @2005 = %q,%v", v, ok)
	}
	// As of 2007: S1 shows the current truth.
	snap = d.SnapshotAt(2007)
	v, _ = snap.Value("S1", model.Obj("Dong", AffAttr))
	if v != "AT&T" {
		t.Fatalf("S1 Dong @2007 = %q", v)
	}
	// S2 has not updated Dong since 2006.
	v, _ = snap.Value("S2", model.Obj("Dong", AffAttr))
	if v != "Google" {
		t.Fatalf("S2 Dong @2007 = %q", v)
	}
	// Before any updates, sources show nothing.
	snap = d.SnapshotAt(2000)
	if _, ok := snap.Value("S1", model.Obj("Dong", AffAttr)); ok {
		t.Fatal("S1 should have no Dong value in 2000")
	}
}

func TestUpdateTraceOrder(t *testing.T) {
	d := Table3()
	trace := d.UpdateTrace("S1")
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].Time < trace[i-1].Time {
			t.Fatalf("trace out of order at %d", i)
		}
	}
}

func TestTimeRange(t *testing.T) {
	d := Table3()
	lo, hi, ok := d.TimeRange()
	if !ok || lo != 2001 || hi != 2007 {
		t.Fatalf("TimeRange = %d..%d,%v", lo, hi, ok)
	}
	s := Table1()
	if _, _, ok := s.TimeRange(); ok {
		t.Fatal("snapshot dataset should have no time range")
	}
}

func TestTable3TruthConsistency(t *testing.T) {
	w := Table3Truth()
	v, ok := w.TrueAt(model.Obj("Suciu", AffAttr), 2006)
	if !ok || v != "MSR" {
		t.Fatalf("Suciu @2006 = %q,%v", v, ok)
	}
	v, _ = w.TrueNow(model.Obj("Suciu", AffAttr))
	if v != "UW" {
		t.Fatalf("Suciu now = %q", v)
	}
	// Outdated-vs-false distinction: UW was true for Dong in the past.
	tr := w.Truths[model.Obj("Dong", AffAttr)]
	if !tr.EverTrue("UW") || tr.EverTrue("MSR") {
		t.Fatal("EverTrue misclassifies Dong history")
	}
}

func TestTable1Subset(t *testing.T) {
	d := Table1Subset("S1", "S2", "S3")
	if len(d.Sources()) != 3 || d.Len() != 15 {
		t.Fatalf("subset = %d sources, %d claims", len(d.Sources()), d.Len())
	}
}

func TestTable2Shape(t *testing.T) {
	d := Table2()
	if len(d.Sources()) != 4 || len(d.Objects()) != 3 {
		t.Fatalf("table2 = %d sources, %d objects", len(d.Sources()), len(d.Objects()))
	}
	v, _ := d.Value("R4", model.Obj("The Pianist", RatingAttr))
	if v != "Bad" {
		t.Fatalf("R4 Pianist = %q", v)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Table3().Claims()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip %d -> %d claims", len(orig), len(back))
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatalf("claim %d changed: %v -> %v", i, orig[i], back[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b,c\n")); err == nil {
		t.Fatal("3-field row accepted")
	}
	if _, err := ReadCSV(strings.NewReader("S1,e,a,v,notatime\n")); err == nil {
		t.Fatal("bad time accepted")
	}
	if _, err := ReadCSV(strings.NewReader("S1,e,a,v,5,notaprob\n")); err == nil {
		t.Fatal("bad prob accepted")
	}
	if _, err := ReadCSV(strings.NewReader("S1,e,a,v,5,2.0\n")); err == nil {
		t.Fatal("out-of-range prob accepted")
	}
	cs, err := ReadCSV(strings.NewReader("source,entity,attribute,value,time,prob\nS1,e,a,v,,\n"))
	if err != nil || len(cs) != 1 {
		t.Fatalf("header handling: %v, %d claims", err, len(cs))
	}
	if cs[0].HasTime || cs[0].Prob != 1 {
		t.Fatalf("defaults wrong: %+v", cs[0])
	}
}

func TestFromClaims(t *testing.T) {
	d, err := FromClaims([]model.Claim{model.NewClaim("S1", model.Obj("a", "x"), "1")})
	if err != nil || !d.Frozen() || d.Len() != 1 {
		t.Fatalf("FromClaims: %v", err)
	}
	if _, err := FromClaims([]model.Claim{{}}); err == nil {
		t.Fatal("invalid claim accepted")
	}
}

func TestSnapshotLatestWinsWithinSource(t *testing.T) {
	d := New()
	_ = d.Add(model.NewTemporalClaim("S1", model.Obj("a", "x"), "old", 1))
	_ = d.Add(model.NewTemporalClaim("S1", model.Obj("a", "x"), "new", 5))
	d.Freeze()
	v, _ := d.Value("S1", model.Obj("a", "x"))
	if v != "new" {
		t.Fatalf("snapshot view = %q, want latest", v)
	}
	groups := d.ValuesFor(model.Obj("a", "x"))
	if len(groups) != 1 || groups[0].Value != "new" {
		t.Fatalf("ValuesFor should only count current values: %v", groups)
	}
}
