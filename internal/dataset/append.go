// Append-only ingest: successor datasets over a claim log.
//
// A frozen Dataset never mutates — every index, the compiled view and any
// running solver may be read concurrently, and that invariant is what makes
// the serving layer lock-free. Live ingest therefore does not edit a
// dataset in place: Append builds a *successor* dataset that shares the
// predecessor's storage wherever the batch did not touch it (the claims
// backing array, per-source and per-object index slices, per-source
// snapshot maps, the sorted id tables) and records the batch boundary in a
// log chained through Base. The predecessor keeps serving, untouched, until
// the caller swaps it out.
//
// The log is semantic, not just provenance: depen.Detect on a log-carrying
// dataset replays it — a full solve of the flat base followed by one
// bounded refinement pass per batch — so a session advanced live through
// Session.Append and a session rebuilt from scratch over the same successor
// dataset reach bit-identical state (the equivalence the append suites
// pin).
package dataset

import (
	"fmt"
	"sort"

	"sourcecurrents/internal/model"
)

// Append returns a new frozen dataset holding this dataset's claims plus
// batch, recorded as one appended log batch. The receiver must be frozen
// and is not modified; the successor shares the receiver's internal
// structures for every source and object the batch does not touch.
// The batch must be non-empty and every claim valid.
func (d *Dataset) Append(batch []model.Claim) (*Dataset, error) {
	if !d.frozen {
		return nil, fmt.Errorf("dataset: append requires a frozen dataset")
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("dataset: empty append batch")
	}
	for i := range batch {
		if err := batch[i].Validate(); err != nil {
			return nil, fmt.Errorf("dataset: append batch[%d]: %w", i, err)
		}
	}

	n := len(d.claims)
	// The three-index slice caps capacity at length, so the append below
	// always copies into a fresh array: a sibling successor (or a caller
	// holding Claims()) can never clobber this epoch's claims.
	claims := append(d.claims[:n:n], batch...)

	nd := &Dataset{
		claims:   claims,
		bySource: make(map[model.SourceID][]int, len(d.bySource)+1),
		byObject: make(map[model.ObjectID][]int, len(d.byObject)+1),
		valueOf:  make(map[model.SourceID]map[model.ObjectID]string, len(d.valueOf)+1),
		frozen:   true,
		base:     d,
		baseLen:  n,
		epoch:    d.epoch + 1,
	}

	// Batch claim indices per touched source/object, in ingestion order.
	addSrc := map[model.SourceID][]int{}
	addObj := map[model.ObjectID][]int{}
	for i := range batch {
		idx := n + i
		addSrc[claims[idx].Source] = append(addSrc[claims[idx].Source], idx)
		addObj[claims[idx].Object] = append(addObj[claims[idx].Object], idx)
	}

	// Share untouched structures; copy-extend-resort the touched ones. The
	// stable sorts reproduce Freeze exactly: the old slices are already
	// stably ordered and the batch indices follow them in ingestion order,
	// so sorting the concatenation yields the permutation a from-scratch
	// Freeze over the full claim sequence would produce.
	for s, idxs := range d.bySource {
		nd.bySource[s] = idxs
	}
	for o, idxs := range d.byObject {
		nd.byObject[o] = idxs
	}
	for s, vals := range d.valueOf {
		nd.valueOf[s] = vals
	}
	newSources := 0
	for s, add := range addSrc {
		old := d.bySource[s]
		if len(old) == 0 {
			newSources++
		}
		merged := make([]int, 0, len(old)+len(add))
		merged = append(append(merged, old...), add...)
		sort.SliceStable(merged, func(a, b int) bool {
			ca, cb := claims[merged[a]], claims[merged[b]]
			if ca.Time != cb.Time {
				return ca.Time < cb.Time
			}
			if ca.Object.Entity != cb.Object.Entity {
				return ca.Object.Entity < cb.Object.Entity
			}
			return ca.Object.Attribute < cb.Object.Attribute
		})
		nd.bySource[s] = merged
		vals := make(map[model.ObjectID]string, len(d.valueOf[s])+len(add))
		for _, idx := range merged {
			vals[claims[idx].Object] = claims[idx].Value
		}
		nd.valueOf[s] = vals
	}
	newObjects := 0
	for o, add := range addObj {
		old := d.byObject[o]
		if len(old) == 0 {
			newObjects++
		}
		merged := make([]int, 0, len(old)+len(add))
		merged = append(append(merged, old...), add...)
		sort.SliceStable(merged, func(a, b int) bool {
			return claims[merged[a]].Source < claims[merged[b]].Source
		})
		nd.byObject[o] = merged
	}

	// Sorted id tables: shared verbatim unless the batch introduced ids.
	nd.sources = d.sources
	if newSources > 0 {
		nd.sources = make([]model.SourceID, 0, len(d.sources)+newSources)
		nd.sources = append(nd.sources, d.sources...)
		for s := range addSrc {
			if len(d.bySource[s]) == 0 {
				nd.sources = append(nd.sources, s)
			}
		}
		model.SortSources(nd.sources)
	}
	nd.objects = d.objects
	if newObjects > 0 {
		nd.objects = make([]model.ObjectID, 0, len(d.objects)+newObjects)
		nd.objects = append(nd.objects, d.objects...)
		for o := range addObj {
			if len(d.byObject[o]) == 0 {
				nd.objects = append(nd.objects, o)
			}
		}
		model.SortObjects(nd.objects)
	}
	return nd, nil
}

// Epoch returns the number of appended batches in this dataset's log; 0 for
// a flat dataset built by Freeze or FromClaims.
func (d *Dataset) Epoch() int { return d.epoch }

// At returns the dataset as it stood at the given epoch, walking the append
// log's base chain. Epoch d.Epoch() is the receiver itself; epoch 0 the flat
// origin. Every returned dataset is frozen and shares storage with the
// receiver (the chain retains each epoch's index structures), so At is O(log
// length) pointer chasing — no claims are copied. Epochs outside [0,
// Epoch()] are an error, as is a chain whose early epochs were not retained
// (a dataset rebuilt from a v1 snapshot has no log).
func (d *Dataset) At(epoch int) (*Dataset, error) {
	if epoch < 0 || epoch > d.epoch {
		return nil, fmt.Errorf("dataset: epoch %d out of range [0, %d]", epoch, d.epoch)
	}
	cur := d
	for cur.epoch > epoch {
		if cur.base == nil {
			return nil, fmt.Errorf("dataset: epoch %d not addressable (log truncated at epoch %d)", epoch, cur.epoch)
		}
		cur = cur.base
	}
	if cur.epoch != epoch {
		// The chain stepped past the target: epochs must be contiguous, so
		// this indicates a malformed chain rather than a pruned one.
		return nil, fmt.Errorf("dataset: epoch %d missing from log chain", epoch)
	}
	return cur, nil
}

// Base returns the predecessor this dataset was appended onto, or nil for a
// flat dataset. Walking Base to nil visits every epoch of the log.
func (d *Dataset) Base() *Dataset { return d.base }

// Batch returns the most recently appended batch (empty for a flat
// dataset). The slice aliases internal storage; callers must not mutate it.
func (d *Dataset) Batch() []model.Claim { return d.claims[d.baseLen:] }

// LogBounds returns the claim-count boundary of every epoch in append
// order: LogBounds()[0] is the flat base's length and each later entry the
// length after one more batch (the final boundary, Len(), is omitted). A
// flat dataset returns nil. The bounds plus the claim sequence reconstruct
// the full log: FromClaims over the prefix, then Append per batch.
func (d *Dataset) LogBounds() []int {
	if d.base == nil {
		return nil
	}
	out := make([]int, d.epoch)
	for e := d; e.base != nil; e = e.base {
		out[e.epoch-1] = e.baseLen
	}
	return out
}
