// Package dataset provides the indexed claim store the discovery algorithms
// run against.
//
// A Dataset ingests model.Claim values and maintains the indexes the
// iterative solvers need on their hot paths: claims by source, claims by
// object, the value each source asserts per object, and pairwise overlap
// enumeration. For temporal data it additionally maintains per-source update
// traces (time-ordered claims) and can project a snapshot "as of" a time,
// which is how the incomplete-observations experiments sample worlds.
package dataset

import (
	"fmt"
	"sort"
	"sync"

	"sourcecurrents/internal/model"
)

// Dataset is an immutable-after-Freeze collection of claims with indexes.
// Build it with Add/AddAll, then call Freeze before handing it to solvers;
// Freeze sorts the internal slices so every iteration order is
// deterministic.
type Dataset struct {
	claims []model.Claim

	bySource map[model.SourceID][]int // indexes into claims, time-ordered after Freeze
	byObject map[model.ObjectID][]int

	// snapshot view: latest (or only) value per (source, object)
	valueOf map[model.SourceID]map[model.ObjectID]string

	sources []model.SourceID
	objects []model.ObjectID
	frozen  bool

	// Append-only log (see append.go): base is the predecessor dataset this
	// one was appended onto (nil for a flat dataset), baseLen the number of
	// claims belonging to it, and epoch the number of appended batches.
	base    *Dataset
	baseLen int
	epoch   int

	// compiled is the lazily built columnar view (see compiled.go).
	compileOnce sync.Once
	compiled    *Compiled
}

// New returns an empty dataset.
func New() *Dataset {
	return &Dataset{
		bySource: map[model.SourceID][]int{},
		byObject: map[model.ObjectID][]int{},
		valueOf:  map[model.SourceID]map[model.ObjectID]string{},
	}
}

// Add appends one claim. It returns an error for invalid claims or when the
// dataset is already frozen.
func (d *Dataset) Add(c model.Claim) error {
	if d.frozen {
		return fmt.Errorf("dataset: frozen")
	}
	if err := c.Validate(); err != nil {
		return err
	}
	idx := len(d.claims)
	d.claims = append(d.claims, c)
	d.bySource[c.Source] = append(d.bySource[c.Source], idx)
	d.byObject[c.Object] = append(d.byObject[c.Object], idx)
	return nil
}

// AddAll appends claims, stopping at the first invalid one.
func (d *Dataset) AddAll(cs []model.Claim) error {
	for _, c := range cs {
		if err := d.Add(c); err != nil {
			return err
		}
	}
	return nil
}

// Freeze finalizes the dataset: sorts index slices (per source by time, then
// object; per object by source) and computes the snapshot view. For a
// source that asserted multiple values for one object over time, the
// snapshot view keeps the latest claim.
func (d *Dataset) Freeze() {
	if d.frozen {
		return
	}
	d.frozen = true
	for s, idxs := range d.bySource {
		sort.SliceStable(idxs, func(a, b int) bool {
			ca, cb := d.claims[idxs[a]], d.claims[idxs[b]]
			if ca.Time != cb.Time {
				return ca.Time < cb.Time
			}
			if ca.Object.Entity != cb.Object.Entity {
				return ca.Object.Entity < cb.Object.Entity
			}
			return ca.Object.Attribute < cb.Object.Attribute
		})
		d.sources = append(d.sources, s)
	}
	model.SortSources(d.sources)
	for o, idxs := range d.byObject {
		sort.SliceStable(idxs, func(a, b int) bool {
			return d.claims[idxs[a]].Source < d.claims[idxs[b]].Source
		})
		d.objects = append(d.objects, o)
	}
	model.SortObjects(d.objects)

	for _, s := range d.sources {
		vals := map[model.ObjectID]string{}
		// bySource is time-ordered, so later claims overwrite earlier ones.
		for _, idx := range d.bySource[s] {
			c := d.claims[idx]
			vals[c.Object] = c.Value
		}
		d.valueOf[s] = vals
	}
}

// Frozen reports whether Freeze has run.
func (d *Dataset) Frozen() bool { return d.frozen }

// Len returns the number of claims.
func (d *Dataset) Len() int { return len(d.claims) }

// Sources returns source ids in sorted order. Valid after Freeze.
//
// The slice aliases internal storage and may additionally be shared with
// successor datasets built by Append; callers must treat it as read-only
// (copy before sorting, filtering in place, or appending).
func (d *Dataset) Sources() []model.SourceID { return d.sources }

// Objects returns object ids in sorted order. Valid after Freeze. Shared
// read-only storage — the same ownership rule as Sources.
func (d *Dataset) Objects() []model.ObjectID { return d.objects }

// Claims returns all claims in ingestion order. The slice aliases internal
// storage shared across the dataset's log chain; callers must not mutate
// it, append to it, or reslice it beyond its length — Append derives
// successor epochs from this storage.
func (d *Dataset) Claims() []model.Claim { return d.claims }

// ClaimsBySource returns s's claims in time order. Valid after Freeze.
func (d *Dataset) ClaimsBySource(s model.SourceID) []model.Claim {
	idxs := d.bySource[s]
	out := make([]model.Claim, len(idxs))
	for i, idx := range idxs {
		out[i] = d.claims[idx]
	}
	return out
}

// ClaimsByObject returns all claims about o, ordered by source.
func (d *Dataset) ClaimsByObject(o model.ObjectID) []model.Claim {
	idxs := d.byObject[o]
	out := make([]model.Claim, len(idxs))
	for i, idx := range idxs {
		out[i] = d.claims[idx]
	}
	return out
}

// Value returns the (snapshot) value source s asserts for object o.
func (d *Dataset) Value(s model.SourceID, o model.ObjectID) (string, bool) {
	v, ok := d.valueOf[s][o]
	return v, ok
}

// ObjectsOf returns the objects s provides values for, sorted.
func (d *Dataset) ObjectsOf(s model.SourceID) []model.ObjectID {
	vals := d.valueOf[s]
	out := make([]model.ObjectID, 0, len(vals))
	for o := range vals {
		out = append(out, o)
	}
	model.SortObjects(out)
	return out
}

// Coverage returns |objects of s| / |all objects|.
func (d *Dataset) Coverage(s model.SourceID) float64 {
	if len(d.objects) == 0 {
		return 0
	}
	return float64(len(d.valueOf[s])) / float64(len(d.objects))
}

// Overlap describes the shared objects of a source pair in the snapshot
// view.
type Overlap struct {
	Pair    model.SourcePair
	Objects []model.ObjectID // shared objects, sorted
	Same    int              // shared objects on which the two values agree
}

// OverlapOf computes the overlap between two sources.
func (d *Dataset) OverlapOf(a, b model.SourceID) Overlap {
	va, vb := d.valueOf[a], d.valueOf[b]
	if len(vb) < len(va) {
		va, vb = vb, va
	}
	ov := Overlap{Pair: model.NewSourcePair(a, b)}
	for o, v := range va {
		w, ok := vb[o]
		if !ok {
			continue
		}
		ov.Objects = append(ov.Objects, o)
		if v == w {
			ov.Same++
		}
	}
	model.SortObjects(ov.Objects)
	return ov
}

// Pairs enumerates all unordered source pairs whose overlap has at least
// minShared objects, in deterministic order. This is the candidate set for
// pairwise dependence analysis; Example 4.1 uses minShared = 10.
func (d *Dataset) Pairs(minShared int) []Overlap {
	var out []Overlap
	for i := 0; i < len(d.sources); i++ {
		for j := i + 1; j < len(d.sources); j++ {
			ov := d.OverlapOf(d.sources[i], d.sources[j])
			if len(ov.Objects) >= minShared {
				out = append(out, ov)
			}
		}
	}
	return out
}

// ValuesFor returns the distinct values asserted for object o with the
// sources asserting each, in deterministic (value-sorted) order.
func (d *Dataset) ValuesFor(o model.ObjectID) []ValueGroup {
	bySrc := map[string][]model.SourceID{}
	for _, idx := range d.byObject[o] {
		c := d.claims[idx]
		// snapshot view: only count the value the source currently holds
		if cur, ok := d.valueOf[c.Source][o]; !ok || cur != c.Value {
			continue
		}
		bySrc[c.Value] = append(bySrc[c.Value], c.Source)
	}
	vals := make([]string, 0, len(bySrc))
	for v := range bySrc {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	out := make([]ValueGroup, 0, len(vals))
	for _, v := range vals {
		srcs := bySrc[v]
		model.SortSources(srcs)
		// a source may appear multiple times when it re-asserted the same
		// value at different times; dedupe
		srcs = dedupeSources(srcs)
		out = append(out, ValueGroup{Value: v, Sources: srcs})
	}
	return out
}

// ValueGroup is one candidate value for an object with its asserting
// sources.
type ValueGroup struct {
	Value   string
	Sources []model.SourceID
}

func dedupeSources(srcs []model.SourceID) []model.SourceID {
	out := srcs[:0]
	for i, s := range srcs {
		if i == 0 || srcs[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// SnapshotAt projects the temporal dataset to the snapshot each source
// would show at time t. For every (source, object) the visible claims are
// the timestamped ones with Time <= t plus every timeless claim, and
// precedence among them is pinned as:
//
//  1. any visible timestamped claim supersedes a timeless claim — a
//     timeless claim is the source's fallback assertion, shown only when
//     the source has no dated statement at or before t;
//  2. among timestamped claims the latest wins (ingestion order breaks
//     exact ties);
//  3. among timeless claims the latest ingested wins.
//
// The rule is applied symmetrically in both directions, so the outcome does
// not depend on the order claims are considered in (timeless claims sort at
// Time 0 and therefore iterate *after* negatively-timestamped claims — the
// ordering that made the old overwrite condition look asymmetric). The
// projection is returned as a new frozen Dataset whose claims carry
// HasTime=false.
func (d *Dataset) SnapshotAt(t model.Time) *Dataset {
	out := New()
	for _, s := range d.sources {
		latest := map[model.ObjectID]model.Claim{}
		for _, idx := range d.bySource[s] {
			c := d.claims[idx]
			if c.HasTime && c.Time > t {
				continue
			}
			prev, ok := latest[c.Object]
			supersedes := false
			switch {
			case !ok:
				supersedes = true
			case c.HasTime && prev.HasTime:
				supersedes = c.Time >= prev.Time // later claim wins; ties to ingestion order
			case c.HasTime != prev.HasTime:
				supersedes = c.HasTime // timestamped beats timeless, whichever came first
			default:
				supersedes = true // both timeless: later ingested wins
			}
			if supersedes {
				latest[c.Object] = c
			}
		}
		objs := make([]model.ObjectID, 0, len(latest))
		for o := range latest {
			objs = append(objs, o)
		}
		model.SortObjects(objs)
		for _, o := range objs {
			c := latest[o]
			c.HasTime = false
			c.Time = 0
			// Add cannot fail here: claims were validated on ingestion.
			_ = out.Add(c)
		}
	}
	out.Freeze()
	return out
}

// UpdateTrace returns s's timestamped claims in time order, skipping
// snapshot-only claims. The temporal detector consumes these.
func (d *Dataset) UpdateTrace(s model.SourceID) []model.Claim {
	var out []model.Claim
	for _, idx := range d.bySource[s] {
		c := d.claims[idx]
		if c.HasTime {
			out = append(out, c)
		}
	}
	return out
}

// TimeRange returns the min and max timestamps over all temporal claims;
// ok is false when the dataset has none.
func (d *Dataset) TimeRange() (lo, hi model.Time, ok bool) {
	for _, c := range d.claims {
		if !c.HasTime {
			continue
		}
		if !ok {
			lo, hi, ok = c.Time, c.Time, true
			continue
		}
		if c.Time < lo {
			lo = c.Time
		}
		if c.Time > hi {
			hi = c.Time
		}
	}
	return lo, hi, ok
}
