// Dense (compiled-index) execution of the ACCUCOPY loop.
//
// detectCompiled re-expresses detectMaps over dataset.Compiled: candidate
// overlaps become flat int32 slices built by merge-joining the per-source
// claim lists, the directional posteriors become a flat source×source
// table, and the per-object discount factors are ranked once per (group,
// round) over dense accuracy vectors. Iteration and summation orders match
// the reference path exactly, so results are bit-identical (enforced by the
// golden equivalence tests).
package depen

import (
	"math"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/engine"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/stats"
	"sourcecurrents/internal/truth"
)

// pairCand is one candidate pair with its overlap stored as a slice
// [off, off+n) of the shared flat overlap arrays.
type pairCand struct {
	a, b   int32
	off, n int32
	same   int32
}

// overlaps holds every candidate's shared objects in three parallel flat
// arrays: the object index and each member's global value-group index.
type overlaps struct {
	obj, ag, bg []int32
}

// depenScratch is one worker's buffers for both the per-object truth step
// (score + rank + discount factors) and the per-pair Bayes step.
type depenScratch struct {
	ds   *truth.DenseScratch
	rank []int32
	fac  []float64
	logs [3]float64
	post [3]float64
}

// buildCandidates merge-joins every source pair's sorted claim lists,
// keeping pairs with at least minShared shared objects — the dense
// equivalent of Dataset.Pairs, in the same (i asc, j asc) order.
func buildCandidates(c *dataset.Compiled, minShared int) ([]pairCand, overlaps) {
	var cands []pairCand
	var ov overlaps
	nS := c.NumSources()
	for i := 0; i < nS; i++ {
		ai, ae := c.SrcStart[i], c.SrcStart[i+1]
		for j := i + 1; j < nS; j++ {
			bi, be := c.SrcStart[j], c.SrcStart[j+1]
			off := int32(len(ov.obj))
			var same int32
			p, q := ai, bi
			for p < ae && q < be {
				switch {
				case c.SrcObj[p] < c.SrcObj[q]:
					p++
				case c.SrcObj[p] > c.SrcObj[q]:
					q++
				default:
					ov.obj = append(ov.obj, c.SrcObj[p])
					ov.ag = append(ov.ag, c.SrcGroup[p])
					ov.bg = append(ov.bg, c.SrcGroup[q])
					if c.SrcGroup[p] == c.SrcGroup[q] {
						same++
					}
					p++
					q++
				}
			}
			n := int32(len(ov.obj)) - off
			if int(n) < minShared {
				ov.obj = ov.obj[:off]
				ov.ag = ov.ag[:off]
				ov.bg = ov.bg[:off]
				continue
			}
			cands = append(cands, pairCand{a: int32(i), b: int32(j), off: off, n: n, same: same})
		}
	}
	return cands, ov
}

// fillFactorsDense mirrors discountTable.fillFactors: rank the group's
// sources by (accuracy desc, index asc) and charge each one the probability
// it did not copy from any higher-ranked source. The returned factors are
// positioned to match srcs (the group's ascending-id order).
func fillFactorsDense(srcs []int32, acc, depTab []float64, nS int, copyRate float64,
	sc *depenScratch) []float64 {
	k := len(srcs)
	rank := sc.rank[:k]
	for i := range rank {
		rank[i] = int32(i)
	}
	// Insertion sort: the comparator is a strict total order (ids are
	// distinct), so any comparison sort yields the reference permutation.
	for i := 1; i < k; i++ {
		r := rank[i]
		j := i - 1
		for j >= 0 {
			p, q := r, rank[j]
			ap, aq := acc[srcs[p]], acc[srcs[q]]
			if ap != aq {
				if !(ap > aq) {
					break
				}
			} else if !(srcs[p] < srcs[q]) {
				break
			}
			rank[j+1] = rank[j]
			j--
		}
		rank[j+1] = r
	}
	fac := sc.fac[:k]
	for r := 0; r < k; r++ {
		p := rank[r]
		f := 1.0
		base := int(srcs[p]) * nS
		for q := 0; q < r; q++ {
			dep := depTab[base+int(srcs[rank[q]])]
			if dep > 1 {
				dep = 1
			}
			f *= 1 - copyRate*dep
		}
		fac[p] = f
	}
	return fac
}

// scoreObjectDiscounted is truth.ScoreValues with the dependence discount
// over the dense view: per candidate, sum each source's weight times its
// independence factor, in ascending source order.
func scoreObjectDiscounted(c *dataset.Compiled, oi int, weights, acc, depTab []float64,
	haveDep bool, copyRate float64, sc *depenScratch) []float64 {
	gs, ge := c.GroupStart[oi], c.GroupStart[oi+1]
	scores := sc.ds.Scores(int(ge - gs))
	nS := c.NumSources()
	for k := range scores {
		g := gs + int32(k)
		srcs := c.GroupSrc[c.GroupSrcStart[g]:c.GroupSrcStart[g+1]]
		var cum float64
		if !haveDep {
			// First round: no posteriors yet, every factor is exactly 1.
			for _, si := range srcs {
				cum += weights[si]
			}
		} else {
			fac := fillFactorsDense(srcs, acc, depTab, nS, copyRate, sc)
			for p, si := range srcs {
				cum += weights[si] * fac[p]
			}
		}
		scores[k] = cum
	}
	return scores
}

// scorePairDense accumulates one candidate's evidence from the flat overlap
// slices (shared objects ascending, as in the reference path) and applies
// the three-hypothesis Bayes step.
func scorePairDense(c *dataset.Compiled, solver *truth.DenseSolver, cand pairCand,
	ov overlaps, probs, acc []float64, cfg Config, logPrior [3]float64,
	sc *depenScratch) Dependence {
	var kt, kf, kd float64
	for e := cand.off; e < cand.off+cand.n; e++ {
		if ov.ag[e] != ov.bg[e] {
			kd++
			continue
		}
		p := solver.ClassMass(probs, int(ov.obj[e]), ov.ag[e])
		kt += p
		kf += 1 - p
	}
	li, lab, lba := pairHypotheses(kt, kf, kd, acc[cand.a], acc[cand.b],
		cfg.CopyRate, cfg.Truth.N)
	sc.logs[0] = li + logPrior[0]
	sc.logs[1] = lab + logPrior[1]
	sc.logs[2] = lba + logPrior[2]
	post := sc.post[:]
	if err := stats.NormalizeLogInto(post, sc.logs[:]); err != nil {
		post[0], post[1], post[2] = 1, 0, 0
	}
	return Dependence{
		Pair:   model.SourcePair{A: c.Source(int(cand.a)), B: c.Source(int(cand.b))},
		Prob:   post[1] + post[2],
		ProbAB: post[1],
		ProbBA: post[2],
		Shared: int(cand.n),
		Same:   int(cand.same),
		KT:     kt, KF: kf, KD: kd,
	}
}

// detectCompiled is Detect over the compiled index.
func detectCompiled(c *dataset.Compiled, cfg Config) *Result {
	solver := truth.NewDenseSolver(c, cfg.Truth)
	cands, ov := buildCandidates(c, cfg.MinShared)

	nS := c.NumSources()
	acc := make([]float64, nS)
	for i := range acc {
		acc[i] = cfg.Truth.InitialAccuracy
	}
	weights := make([]float64, nS)
	next := make([]float64, nS)
	probs := make([]float64, len(c.GroupValue))
	// depTab[i*nS+j] is the total (both-direction) dependence posterior of
	// the pair {i, j} from the previous round — the flat replacement for the
	// nested dirProb map on the discount path.
	depTab := make([]float64, nS*nS)
	haveDep := false
	deps := make([]Dependence, len(cands))
	maxGroupSrc := c.MaxSourcesPerGroup()
	newScratch := func() *depenScratch {
		return &depenScratch{
			ds:   solver.NewScratch(),
			rank: make([]int32, maxGroupSrc),
			fac:  make([]float64, maxGroupSrc),
		}
	}
	logPrior := [3]float64{
		math.Log(1 - cfg.Alpha), math.Log(cfg.Alpha / 2), math.Log(cfg.Alpha / 2),
	}
	eng := cfg.Engine()
	res := &Result{}

	for round := 1; round <= cfg.MaxRounds; round++ {
		// Truth step with dependence discounts from the previous round.
		solver.FillWeights(acc, weights)
		engine.ForNScratch(eng, c.NumObjects(), newScratch, func(oi int, sc *depenScratch) {
			row := solver.Row(probs, oi)
			if kr := solver.KnownRow(oi); kr != nil {
				copy(row, kr)
				return
			}
			scores := scoreObjectDiscounted(c, oi, weights, acc, depTab, haveDep, cfg.CopyRate, sc)
			solver.FinishObject(oi, scores, row, sc.ds)
		})

		// Accuracy step.
		solver.UpdateAccuracy(eng, probs, next)

		// Dependence step: score candidates in their canonical order.
		engine.ForNScratch(eng, len(cands), newScratch, func(pi int, sc *depenScratch) {
			deps[pi] = scorePairDense(c, solver, cands[pi], ov, probs, next, cfg, logPrior, sc)
		})
		for i := range depTab {
			depTab[i] = 0
		}
		for pi := range deps {
			a, b := int(cands[pi].a), int(cands[pi].b)
			t := deps[pi].ProbAB + deps[pi].ProbBA
			depTab[a*nS+b] = t
			depTab[b*nS+a] = t
		}
		haveDep = len(cands) > 0
		res.Rounds = round

		if truth.MaxAccuracyDeltaVec(acc, next) < cfg.Tol {
			copy(acc, next)
			res.Converged = true
			break
		}
		copy(acc, next)
	}

	res.Truth = &truth.Result{
		Probs:     solver.ProbsMap(probs),
		Accuracy:  solver.AccuracyMap(acc),
		Rounds:    res.Rounds,
		Converged: res.Converged,
	}
	res.Truth.PickChosen()
	res.dir = newDirTableFor(c.SourceIDs())
	for pi := range deps {
		res.dir.set(cands[pi].a, cands[pi].b, deps[pi].ProbAB, deps[pi].ProbBA)
	}
	finishPairs(res, deps, cfg.DepThreshold)
	return res
}
