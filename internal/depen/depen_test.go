package depen

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/truth"
)

func obj(e string) model.ObjectID { return model.Obj(e, dataset.AffAttr) }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.CopyRate = 0 },
		func(c *Config) { c.CopyRate = 1 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.MinShared = 0 },
		func(c *Config) { c.DepThreshold = 1.5 },
		func(c *Config) { c.MaxRounds = 0 },
		func(c *Config) { c.Tol = 0 },
		func(c *Config) { c.Truth.N = 0 },
	} {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("invalid config accepted: %+v", c)
		}
	}
}

func TestDetectRequiresFrozen(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("S1", obj("x"), "1"))
	if _, err := Detect(d, DefaultConfig()); err == nil {
		t.Fatal("unfrozen dataset accepted")
	}
}

// knownTwo is the Example 3.1 side information: truth for two of the five
// researchers.
func knownTwo() map[model.ObjectID]string {
	return map[model.ObjectID]string{
		obj("Halevy"): "Google",
		obj("Dalvi"):  "Yahoo!",
	}
}

func TestTable1WithLabelsRecoversAllTruth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Truth.Known = knownTwo()
	res, err := Detect(dataset.Table1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := dataset.Table1Truth()
	for o, v := range res.Truth.Chosen {
		want, _ := w.TrueNow(o)
		if v != want {
			t.Errorf("%v chosen %q, want %q", o, v, want)
		}
	}
	if !res.Converged {
		t.Error("expected convergence")
	}
}

func TestTable1WithLabelsFindsCopierClique(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Truth.Known = knownTwo()
	res, err := Detect(dataset.Table1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[model.SourcePair]bool{
		model.NewSourcePair("S3", "S4"): true,
		model.NewSourcePair("S3", "S5"): true,
		model.NewSourcePair("S4", "S5"): true,
	}
	got := map[model.SourcePair]bool{}
	for _, dep := range res.Dependences {
		got[dep.Pair] = true
	}
	for p := range want {
		if !got[p] {
			t.Errorf("clique pair %v not detected", p)
		}
	}
	// The independent accurate pair must NOT be flagged (the "accurate
	// sources" challenge of §3.1).
	if got[model.NewSourcePair("S1", "S2")] {
		t.Error("independent pair S1~S2 wrongly flagged")
	}
	// Sanity on the probability accessors.
	if p := res.DependenceProb("S3", "S4"); p < 0.9 {
		t.Errorf("P(S3~S4) = %v, want near 1", p)
	}
	if p := res.DependenceProb("S1", "S2"); p > 0.5 {
		t.Errorf("P(S1~S2) = %v, want low", p)
	}
	if res.DependenceProb("S3", "S4") != res.DependenceProb("S4", "S3") {
		t.Error("DependenceProb not symmetric")
	}
}

func TestTable1ColdStartIsAmbiguous(t *testing.T) {
	// Without side information the 5-object toy is genuinely ambiguous:
	// the copier bloc is a majority that agrees with itself everywhere, so
	// the loop settles in the majority basin. Pin that documented
	// behaviour: truth equals naive voting and the independent pair's
	// shared minority values make it LOOK dependent.
	res, err := Detect(dataset.Table1(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	naive := truth.Vote(dataset.Table1())
	agree := 0
	for o, v := range res.Truth.Chosen {
		if naive.Chosen[o] == v {
			agree++
		}
	}
	if agree != len(res.Truth.Chosen) {
		t.Errorf("cold start diverged from majority basin on %d objects", len(res.Truth.Chosen)-agree)
	}
	if len(res.Dependences) == 0 {
		t.Error("cold start should still flag some dependence")
	}
}

func TestDependenceProbBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Truth.Known = knownTwo()
	res, err := Detect(dataset.Table1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.AllPairs {
		if p.Prob < 0 || p.Prob > 1+1e-9 {
			t.Errorf("pair %v prob %v out of range", p.Pair, p.Prob)
		}
		if math.Abs(p.ProbAB+p.ProbBA-p.Prob) > 1e-9 {
			t.Errorf("pair %v: directions %v+%v != total %v", p.Pair, p.ProbAB, p.ProbBA, p.Prob)
		}
		if p.KT < -1e-9 || p.KF < -1e-9 || p.KD < -1e-9 {
			t.Errorf("pair %v negative evidence", p.Pair)
		}
		if got := p.KT + p.KF + p.KD; math.Abs(got-float64(p.Shared)) > 1e-6 {
			t.Errorf("pair %v evidence sums to %v, want %d", p.Pair, got, p.Shared)
		}
	}
}

func TestCopierMargin(t *testing.T) {
	dep := Dependence{Pair: model.NewSourcePair("A", "B"), ProbAB: 0.7, ProbBA: 0.2}
	who, margin := dep.Copier()
	if who != "A" || math.Abs(margin-0.5) > 1e-12 {
		t.Fatalf("Copier = %v, %v", who, margin)
	}
	dep.ProbAB, dep.ProbBA = 0.1, 0.6
	who, _ = dep.Copier()
	if who != "B" {
		t.Fatalf("Copier = %v, want B", who)
	}
}

// synthWorld builds a larger snapshot world: nObjects objects, independent
// sources with given accuracies, plus a copier that copies `copyRate` of
// master's values and answers independently otherwise.
func synthWorld(t *testing.T, seed int64, nObjects int, indAcc []float64,
	copierOwnAcc, copyRate float64) (*dataset.Dataset, *model.World) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := model.NewWorld()
	d := dataset.New()
	falseVal := func(i int) string { return fmt.Sprintf("F%d_%d", i, rng.Intn(10)) }
	type srcSpec struct {
		id  model.SourceID
		acc float64
	}
	var specs []srcSpec
	for i, a := range indAcc {
		specs = append(specs, srcSpec{model.SourceID(fmt.Sprintf("I%d", i)), a})
	}
	master := specs[0].id
	for i := 0; i < nObjects; i++ {
		o := model.Obj(fmt.Sprintf("o%03d", i), "v")
		truthV := fmt.Sprintf("T%d", i)
		w.SetSnapshot(o, truthV)
		masterVal := ""
		for _, sp := range specs {
			v := truthV
			if rng.Float64() > sp.acc {
				v = falseVal(i)
			}
			if sp.id == master {
				masterVal = v
			}
			if err := d.Add(model.NewClaim(sp.id, o, v)); err != nil {
				t.Fatal(err)
			}
		}
		// Copier C copies the master's value with prob copyRate.
		v := masterVal
		if rng.Float64() > copyRate {
			v = truthV
			if rng.Float64() > copierOwnAcc {
				v = falseVal(i)
			}
		}
		if err := d.Add(model.NewClaim("C", o, v)); err != nil {
			t.Fatal(err)
		}
	}
	d.Freeze()
	return d, w
}

func TestColdStartDetectsCopierAtScale(t *testing.T) {
	// At realistic scale the cold start works: independent sources agree
	// mostly on true values, the copier shares the master's false values.
	d, w := synthWorld(t, 42, 120, []float64{0.85, 0.8, 0.75, 0.7}, 0.7, 0.8)
	cfg := DefaultConfig()
	res, err := Detect(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The copier pair must be the top-ranked dependence.
	if len(res.Dependences) == 0 {
		t.Fatal("no dependence detected")
	}
	top := res.Dependences[0]
	wantPair := model.NewSourcePair("I0", "C")
	if top.Pair != wantPair {
		t.Fatalf("top pair = %v (p=%.3f), want %v", top.Pair, top.Prob, wantPair)
	}
	if top.Prob < 0.9 {
		t.Fatalf("copier pair posterior %v too low", top.Prob)
	}
	// No independent pair above the copier pair; ideally none flagged.
	for _, dep := range res.Dependences[1:] {
		if dep.Prob > top.Prob {
			t.Errorf("independent pair %v ranked above copier", dep.Pair)
		}
	}
	// Direction: C should be the likelier copier.
	copier, _ := top.Copier()
	if copier != "C" {
		t.Errorf("direction wrong: copier = %v", copier)
	}
	// Truth quality: dependence-aware beats naive voting.
	naive := truth.Vote(d)
	var depRight, naiveRight int
	for _, o := range d.Objects() {
		want, _ := w.TrueNow(o)
		if res.Truth.Chosen[o] == want {
			depRight++
		}
		if naive.Chosen[o] == want {
			naiveRight++
		}
	}
	if depRight < naiveRight {
		t.Errorf("DEPEN %d correct < naive %d", depRight, naiveRight)
	}
	if depRight < 100 {
		t.Errorf("DEPEN only %d/120 correct", depRight)
	}
}

func TestColdStartNoFalsePositivesAmongIndependents(t *testing.T) {
	// Accurate-independent-sources challenge: high-accuracy independent
	// sources share many (true) values; they must not be flagged.
	rng := rand.New(rand.NewSource(9))
	d := dataset.New()
	for i := 0; i < 150; i++ {
		o := model.Obj(fmt.Sprintf("o%03d", i), "v")
		truthV := fmt.Sprintf("T%d", i)
		for s := 0; s < 5; s++ {
			v := truthV
			if rng.Float64() > 0.9 {
				v = fmt.Sprintf("F%d_%d", i, rng.Intn(20))
			}
			_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("I%d", s)), o, v))
		}
	}
	d.Freeze()
	res, err := Detect(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, dep := range res.Dependences {
		t.Errorf("independent pair %v flagged with p=%.3f", dep.Pair, dep.Prob)
	}
}

func TestSplitAccuracyPartialCopier(t *testing.T) {
	// Partial-dependence challenge: the master M is a specialist covering
	// only the first half of the objects, with mediocre accuracy. P copies
	// M there and provides its own highly accurate values elsewhere, so
	// P's accuracy ON the overlap with M differs sharply from its accuracy
	// OFF it — intuition 2's partial-copier signature.
	rng := rand.New(rand.NewSource(5))
	d := dataset.New()
	nObj := 160
	for i := 0; i < nObj; i++ {
		o := model.Obj(fmt.Sprintf("o%03d", i), "v")
		truthV := fmt.Sprintf("T%d", i)
		masterV := truthV
		if rng.Float64() > 0.6 {
			masterV = fmt.Sprintf("F%d", i)
		}
		if i < nObj/2 {
			_ = d.Add(model.NewClaim("M", o, masterV))
		}
		// Three independent accurate sources establish the truth.
		for s := 0; s < 3; s++ {
			v := truthV
			if rng.Float64() > 0.9 {
				v = fmt.Sprintf("G%d_%d", i, s)
			}
			_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("I%d", s)), o, v))
		}
		// P: copies M on the first half, accurate on its own second half.
		if i < nObj/2 {
			_ = d.Add(model.NewClaim("P", o, masterV))
		} else if rng.Float64() <= 0.95 {
			_ = d.Add(model.NewClaim("P", o, truthV))
		} else {
			_ = d.Add(model.NewClaim("P", o, fmt.Sprintf("H%d", i)))
		}
	}
	d.Freeze()
	res, err := Detect(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp := SplitAccuracy(d, res.Truth.Probs, "P", "M")
	if !sp.LikelyDependent {
		t.Fatalf("partial copier not flagged: %+v", sp)
	}
	if sp.OnOverlap >= sp.OffOverlap {
		t.Fatalf("copied half should be less accurate: %+v", sp)
	}
	// An independent source shows no significant gap against M.
	spInd := SplitAccuracy(d, res.Truth.Probs, "I0", "M")
	if spInd.Gap > sp.Gap {
		t.Errorf("independent gap %v exceeds copier gap %v", spInd.Gap, sp.Gap)
	}
}

func TestSplitAccuracyDegenerate(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("A", obj("x"), "1"))
	_ = d.Add(model.NewClaim("B", obj("x"), "1"))
	d.Freeze()
	probs := map[model.ObjectID]map[string]float64{obj("x"): {"1": 1}}
	sp := SplitAccuracy(d, probs, "A", "B")
	if sp.NOff != 0 || sp.LikelyDependent {
		t.Fatalf("no exclusive data must not flag: %+v", sp)
	}
}

func TestPairHypothesesSharedFalseIsStrongestEvidence(t *testing.T) {
	// A unit of shared-false evidence should move the posterior toward
	// dependence much more than a unit of shared-true evidence.
	li1, lab1, _ := pairHypotheses(1, 0, 0, 0.8, 0.8, 0.8, 100)
	li2, lab2, _ := pairHypotheses(0, 1, 0, 0.8, 0.8, 0.8, 100)
	gainTrue := lab1 - li1
	gainFalse := lab2 - li2
	if gainFalse <= gainTrue {
		t.Fatalf("shared-false gain %v should exceed shared-true gain %v", gainFalse, gainTrue)
	}
	// Disagreement is evidence against dependence.
	li3, lab3, _ := pairHypotheses(0, 0, 1, 0.8, 0.8, 0.8, 100)
	if lab3 >= li3 {
		t.Fatalf("disagreement should penalize dependence: %v >= %v", lab3, li3)
	}
}

func TestDiscountMonotoneInDependence(t *testing.T) {
	d := dataset.New()
	o := obj("x")
	_ = d.Add(model.NewClaim("A", o, "v"))
	_ = d.Add(model.NewClaim("B", o, "v"))
	d.Freeze()
	acc := map[model.SourceID]float64{"A": 0.9, "B": 0.8}
	mk := func(dep float64) float64 {
		dir := map[model.SourceID]map[model.SourceID]float64{
			"B": {"A": dep},
		}
		tab := makeDiscount(d, acc, dir, 0.8)
		return discountFor(tab, o)("B", "v")
	}
	prev := 1.1
	for _, dep := range []float64{0, 0.25, 0.5, 0.75, 1} {
		f := mk(dep)
		if f >= prev {
			t.Fatalf("discount not strictly decreasing at dep=%v: %v >= %v", dep, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("factor %v out of range", f)
		}
		prev = f
	}
	// Highest-accuracy source always keeps the full vote.
	dir := map[model.SourceID]map[model.SourceID]float64{"B": {"A": 1}, "A": {"B": 1}}
	tab := makeDiscount(d, acc, dir, 0.8)
	if got := discountFor(tab, o)("A", "v"); got != 1 {
		t.Fatalf("top-ranked factor = %v, want 1", got)
	}
}

func TestDetectDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Truth.Known = knownTwo()
	r1, err := Detect(dataset.Table1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Detect(dataset.Table1(), cfg)
	if len(r1.AllPairs) != len(r2.AllPairs) {
		t.Fatal("pair count differs between runs")
	}
	for i := range r1.AllPairs {
		if r1.AllPairs[i] != r2.AllPairs[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, r1.AllPairs[i], r2.AllPairs[i])
		}
	}
}

func TestMinSharedFiltersPairs(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("A", obj("x"), "1"))
	_ = d.Add(model.NewClaim("B", obj("x"), "1"))
	_ = d.Add(model.NewClaim("B", obj("y"), "2"))
	_ = d.Add(model.NewClaim("C", obj("y"), "2"))
	d.Freeze()
	cfg := DefaultConfig()
	cfg.MinShared = 2
	res, err := Detect(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AllPairs) != 0 {
		t.Fatalf("pairs below MinShared analyzed: %v", res.AllPairs)
	}
	if res.DependenceProb("A", "B") != 0 {
		t.Fatal("unanalyzed pair should have prob 0")
	}
}
