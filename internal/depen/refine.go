// Bounded delta recompute for appended batches.
//
// Refine advances a predecessor Detect result across one appended batch
// without re-running the full ACCUCOPY loop. The batch marks a set of
// sources and objects dirty; each refinement round then
//
//   - rescores only the dirty objects' posteriors (seeded from the
//     predecessor's, so untouched objects keep their converged rows),
//   - re-estimates every source's accuracy online over the full posterior
//     vector (cheap, and it keeps the global accuracy/vote-weight coupling
//     exact), and
//   - rescores only the dirty pairs — pairs with a dirty member and pairs
//     new to the candidate set.
//
// Non-dirty pairs keep their predecessor verdicts: the accuracy and
// posterior drift a batch induces elsewhere — including on objects the pair
// shares — is not re-applied to them. That is the documented approximation
// bounding the cost of an append (dirtying every pair that merely shares an
// object with the batch degenerates to a full rescore on dense datasets).
// Their Shared/Same counts are provably current, because growing a pair's
// overlap or agreement requires a claim by one of its members, which would
// have dirtied the pair.
//
// Refine is a pure function of (successor dataset, predecessor result,
// config). Both the live path (Session.Append refining its cached result)
// and the rebuild path (Detect replaying the log from the flat base) call
// it with identical inputs, which is what makes incremental and
// from-scratch sessions bit-identical by construction.
package depen

import (
	"fmt"
	"math"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/engine"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/truth"
)

// Refine advances prev — the Detect result of d.Base() — across d's most
// recently appended batch, running cfg.RefineRounds bounded passes. The
// result is exactly what Detect(d, cfg) produces for the final link of d's
// log chain.
func Refine(d *dataset.Dataset, prev *Result, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, fmt.Errorf("depen: dataset must be frozen")
	}
	if d.Base() == nil {
		return nil, fmt.Errorf("depen: Refine requires an appended dataset (use Detect for flat datasets)")
	}
	if prev == nil || prev.Truth == nil {
		return nil, fmt.Errorf("depen: Refine requires the predecessor's result")
	}
	return refine(d, prev, cfg), nil
}

// refine implements Refine for validated inputs.
//
// The candidate set over the successor is assembled incrementally: overlap
// and agreement between two sources can only grow through a claim by one of
// them, so a pair either has a dirty member (merge-joined fresh over the
// successor's claim lists) or is carried over from the predecessor verbatim
// — rebuilding the full pair×overlap structure per batch would cost as much
// as Detect itself.
func refine(d *dataset.Dataset, prev *Result, cfg Config) *Result {
	c := d.Compiled()
	solver := truth.NewDenseSolver(c, cfg.Truth)
	nS := c.NumSources()
	nO := c.NumObjects()

	// Seed accuracies and posteriors from the predecessor. Sources and value
	// groups it never saw start at the prior (InitialAccuracy / zero rows);
	// every such group belongs to a dirty object and is rescored in round 1
	// before anything reads it.
	acc := make([]float64, nS)
	for i := 0; i < nS; i++ {
		if a, ok := prev.Truth.Accuracy[c.Source(i)]; ok {
			acc[i] = a
		} else {
			acc[i] = cfg.Truth.InitialAccuracy
		}
	}
	probs := make([]float64, len(c.GroupValue))
	solver.FillProbs(probs, prev.Truth.Probs)

	// Dirty sets, fixed for the whole refinement: the batch's sources and
	// objects, and the pairs whose evidence they can have moved.
	dirtySrc := make([]bool, nS)
	dirtyObj := make([]bool, nO)
	for _, cl := range d.Batch() {
		if si, ok := c.SourceIndex(cl.Source); ok {
			dirtySrc[si] = true
		}
		if oi, ok := c.ObjectIndex(cl.Object); ok {
			dirtyObj[oi] = true
		}
	}
	var dirtyObjs []int32
	for oi := 0; oi < nO; oi++ {
		if dirtyObj[oi] {
			dirtyObjs = append(dirtyObjs, int32(oi))
		}
	}

	// Candidate pairs with a dirty member, merge-joined over the successor.
	cands, ov := buildDirtyCandidates(c, cfg.MinShared, dirtySrc)

	// Partition the predecessor's pairs: a pair with a dirty member is
	// superseded by its freshly-joined candidate (seeded below); every other
	// pair is kept verbatim — verdict, Shared and Same all still exact.
	kept := make([]int32, 0, len(prev.AllPairs))
	keptA := make([]int32, 0, len(prev.AllPairs))
	keptB := make([]int32, 0, len(prev.AllPairs))
	seeds := make(map[model.SourcePair]*Dependence)
	for i := range prev.AllPairs {
		pd := &prev.AllPairs[i]
		ai, aok := c.SourceIndex(pd.Pair.A)
		bi, bok := c.SourceIndex(pd.Pair.B)
		if !aok || !bok {
			continue // unreachable: the log is append-only
		}
		if dirtySrc[ai] || dirtySrc[bi] {
			seeds[pd.Pair] = pd
			continue
		}
		kept = append(kept, int32(i))
		keptA = append(keptA, int32(ai))
		keptB = append(keptB, int32(bi))
	}
	deps := make([]Dependence, len(cands))
	for pi := range cands {
		pair := model.SourcePair{A: c.Source(int(cands[pi].a)), B: c.Source(int(cands[pi].b))}
		if seed := seeds[pair]; seed != nil {
			deps[pi] = *seed
		}
	}

	// The discount table is kept-pairs (constant all rounds) plus the dirty
	// pairs' current verdicts, exactly the all-pairs table the full loop
	// rebuilds each round.
	baseTab := make([]float64, nS*nS)
	for k, i := range kept {
		t := prev.AllPairs[i].ProbAB + prev.AllPairs[i].ProbBA
		baseTab[keptA[k]*int32(nS)+keptB[k]] = t
		baseTab[keptB[k]*int32(nS)+keptA[k]] = t
	}
	depTab := make([]float64, nS*nS)
	fillDepTab(depTab, baseTab, nS, cands, deps)
	haveDep := len(cands) > 0 || len(kept) > 0

	weights := make([]float64, nS)
	next := make([]float64, nS)
	maxGroupSrc := c.MaxSourcesPerGroup()
	newScratch := func() *depenScratch {
		return &depenScratch{
			ds:   solver.NewScratch(),
			rank: make([]int32, maxGroupSrc),
			fac:  make([]float64, maxGroupSrc),
		}
	}
	logPrior := [3]float64{
		math.Log(1 - cfg.Alpha), math.Log(cfg.Alpha / 2), math.Log(cfg.Alpha / 2),
	}
	eng := cfg.Engine()
	res := &Result{}

	for round := 1; round <= cfg.EffectiveRefineRounds(); round++ {
		// Truth step over the dirty objects only.
		solver.FillWeights(acc, weights)
		engine.ForNScratch(eng, len(dirtyObjs), newScratch, func(k int, sc *depenScratch) {
			oi := int(dirtyObjs[k])
			row := solver.Row(probs, oi)
			if kr := solver.KnownRow(oi); kr != nil {
				copy(row, kr)
				return
			}
			scores := scoreObjectDiscounted(c, oi, weights, acc, depTab, haveDep, cfg.CopyRate, sc)
			solver.FinishObject(oi, scores, row, sc.ds)
		})

		// Accuracy step over every source: untouched sources recompute the
		// same sums from unchanged rows, so this keeps the global coupling
		// without costing precision.
		solver.UpdateAccuracy(eng, probs, next)

		// Dependence step over the dirty pairs only.
		engine.ForNScratch(eng, len(cands), newScratch, func(pi int, sc *depenScratch) {
			deps[pi] = scorePairDense(c, solver, cands[pi], ov, probs, next, cfg, logPrior, sc)
		})
		fillDepTab(depTab, baseTab, nS, cands, deps)
		res.Rounds = round

		if truth.MaxAccuracyDeltaVec(acc, next) < cfg.Tol {
			copy(acc, next)
			res.Converged = true
			break
		}
		copy(acc, next)
	}

	res.Truth = &truth.Result{
		Probs:     solver.ProbsMap(probs),
		Accuracy:  solver.AccuracyMap(acc),
		Rounds:    res.Rounds,
		Converged: res.Converged,
	}
	res.Truth.PickChosen()
	res.dir = newDirTableFor(c.SourceIDs())
	for k, i := range kept {
		res.dir.set(keptA[k], keptB[k], prev.AllPairs[i].ProbAB, prev.AllPairs[i].ProbBA)
	}
	for pi := range deps {
		res.dir.set(cands[pi].a, cands[pi].b, deps[pi].ProbAB, deps[pi].ProbBA)
	}

	// AllPairs: the kept subsequence is already in finishPairs order (it is
	// an order-preserving filter of the predecessor's sorted AllPairs), so
	// sorting only the rescored pairs and merging avoids the full-set sort.
	sortDeps(deps)
	all := make([]Dependence, 0, len(kept)+len(deps))
	ki, di := 0, 0
	for ki < len(kept) && di < len(deps) {
		if depLess(&prev.AllPairs[kept[ki]], &deps[di]) {
			all = append(all, prev.AllPairs[kept[ki]])
			ki++
		} else {
			all = append(all, deps[di])
			di++
		}
	}
	for ; ki < len(kept); ki++ {
		all = append(all, prev.AllPairs[kept[ki]])
	}
	all = append(all, deps[di:]...)
	finishSortedPairs(res, all, cfg.DepThreshold)
	return res
}

// buildDirtyCandidates merge-joins the claim lists of every pair with at
// least one dirty member, keeping pairs with at least minShared shared
// objects — the subset of buildCandidates a batch can have changed, in the
// same (i asc, j asc) order.
func buildDirtyCandidates(c *dataset.Compiled, minShared int, dirtySrc []bool) ([]pairCand, overlaps) {
	var cands []pairCand
	var ov overlaps
	nS := c.NumSources()
	for i := 0; i < nS; i++ {
		ai, ae := c.SrcStart[i], c.SrcStart[i+1]
		for j := i + 1; j < nS; j++ {
			if !dirtySrc[i] && !dirtySrc[j] {
				continue
			}
			bi, be := c.SrcStart[j], c.SrcStart[j+1]
			off := int32(len(ov.obj))
			var same int32
			p, q := ai, bi
			for p < ae && q < be {
				switch {
				case c.SrcObj[p] < c.SrcObj[q]:
					p++
				case c.SrcObj[p] > c.SrcObj[q]:
					q++
				default:
					ov.obj = append(ov.obj, c.SrcObj[p])
					ov.ag = append(ov.ag, c.SrcGroup[p])
					ov.bg = append(ov.bg, c.SrcGroup[q])
					if c.SrcGroup[p] == c.SrcGroup[q] {
						same++
					}
					p++
					q++
				}
			}
			n := int32(len(ov.obj)) - off
			if int(n) < minShared {
				ov.obj = ov.obj[:off]
				ov.ag = ov.ag[:off]
				ov.bg = ov.bg[:off]
				continue
			}
			cands = append(cands, pairCand{a: int32(i), b: int32(j), off: off, n: n, same: same})
		}
	}
	return cands, ov
}

// fillDepTab overlays the dirty pairs' current totals on the constant
// kept-pair table.
func fillDepTab(depTab, baseTab []float64, nS int, cands []pairCand, deps []Dependence) {
	copy(depTab, baseTab)
	for pi := range deps {
		a, b := int(cands[pi].a), int(cands[pi].b)
		t := deps[pi].ProbAB + deps[pi].ProbBA
		depTab[a*nS+b] = t
		depTab[b*nS+a] = t
	}
}
