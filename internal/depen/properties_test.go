package depen

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/stats"
)

// Property tests on the Bayesian core: the posteriors must behave like
// probabilities under arbitrary evidence, and the evidence channels must
// move them in the documented directions.

func TestPairHypothesesPosteriorIsDistribution(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		kt := rng.Float64() * 50
		kf := rng.Float64() * 20
		kd := rng.Float64() * 50
		a1 := 0.05 + rng.Float64()*0.9
		a2 := 0.05 + rng.Float64()*0.9
		c := 0.05 + rng.Float64()*0.9
		li, lab, lba := pairHypotheses(kt, kf, kd, a1, a2, c, 100)
		post, err := stats.NormalizeLog([]float64{li, lab, lba})
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range post {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedFalseMonotonicallyIncreasesDependence(t *testing.T) {
	// Adding shared-false evidence must never reduce the dependence
	// posterior.
	prev := -1.0
	for kf := 0.0; kf <= 20; kf++ {
		li, lab, lba := pairHypotheses(5, kf, 2, 0.8, 0.7, 0.8, 100)
		post, err := stats.NormalizeLog([]float64{li, lab, lba})
		if err != nil {
			t.Fatal(err)
		}
		dep := post[1] + post[2]
		if dep < prev-1e-9 {
			t.Fatalf("dependence dropped at kf=%v: %v < %v", kf, dep, prev)
		}
		prev = dep
	}
}

func TestDisagreementMonotonicallyDecreasesDependence(t *testing.T) {
	prev := 2.0
	for kd := 0.0; kd <= 20; kd++ {
		li, lab, lba := pairHypotheses(5, 3, kd, 0.8, 0.7, 0.8, 100)
		post, err := stats.NormalizeLog([]float64{li, lab, lba})
		if err != nil {
			t.Fatal(err)
		}
		dep := post[1] + post[2]
		if dep > prev+1e-9 {
			t.Fatalf("dependence rose at kd=%v: %v > %v", kd, dep, prev)
		}
		prev = dep
	}
}

func TestDetectPosteriorsAreProbabilitiesOnRandomWorlds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dataset.New()
		nObj := 20 + rng.Intn(30)
		nSrc := 3 + rng.Intn(4)
		for i := 0; i < nObj; i++ {
			o := model.Obj(fmt.Sprintf("o%d", i), "v")
			for s := 0; s < nSrc; s++ {
				v := fmt.Sprintf("T%d", i)
				if rng.Float64() < 0.3 {
					v = fmt.Sprintf("F%d_%d", i, rng.Intn(5))
				}
				_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("S%d", s)), o, v))
			}
		}
		d.Freeze()
		cfg := DefaultConfig()
		cfg.MaxRounds = 4
		res, err := Detect(d, cfg)
		if err != nil {
			return false
		}
		for _, dp := range res.AllPairs {
			if dp.Prob < -1e-9 || dp.Prob > 1+1e-9 {
				return false
			}
			if dp.ProbAB < -1e-9 || dp.ProbBA < -1e-9 {
				return false
			}
		}
		for _, pv := range res.Truth.Probs {
			var sum float64
			for _, p := range pv {
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		for _, a := range res.Truth.Accuracy {
			if a <= 0 || a >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
