package depen

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/stats"
)

// Property tests on the Bayesian core: the posteriors must behave like
// probabilities under arbitrary evidence, and the evidence channels must
// move them in the documented directions.

func TestPairHypothesesPosteriorIsDistribution(t *testing.T) {
	f := func(seedRaw int64) bool {
		rng := rand.New(rand.NewSource(seedRaw))
		kt := rng.Float64() * 50
		kf := rng.Float64() * 20
		kd := rng.Float64() * 50
		a1 := 0.05 + rng.Float64()*0.9
		a2 := 0.05 + rng.Float64()*0.9
		c := 0.05 + rng.Float64()*0.9
		li, lab, lba := pairHypotheses(kt, kf, kd, a1, a2, c, 100)
		post, err := stats.NormalizeLog([]float64{li, lab, lba})
		if err != nil {
			return false
		}
		var sum float64
		for _, p := range post {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedFalseMonotonicallyIncreasesDependence(t *testing.T) {
	// Adding shared-false evidence must never reduce the dependence
	// posterior.
	prev := -1.0
	for kf := 0.0; kf <= 20; kf++ {
		li, lab, lba := pairHypotheses(5, kf, 2, 0.8, 0.7, 0.8, 100)
		post, err := stats.NormalizeLog([]float64{li, lab, lba})
		if err != nil {
			t.Fatal(err)
		}
		dep := post[1] + post[2]
		if dep < prev-1e-9 {
			t.Fatalf("dependence dropped at kf=%v: %v < %v", kf, dep, prev)
		}
		prev = dep
	}
}

func TestDisagreementMonotonicallyDecreasesDependence(t *testing.T) {
	prev := 2.0
	for kd := 0.0; kd <= 20; kd++ {
		li, lab, lba := pairHypotheses(5, 3, kd, 0.8, 0.7, 0.8, 100)
		post, err := stats.NormalizeLog([]float64{li, lab, lba})
		if err != nil {
			t.Fatal(err)
		}
		dep := post[1] + post[2]
		if dep > prev+1e-9 {
			t.Fatalf("dependence rose at kd=%v: %v > %v", kd, dep, prev)
		}
		prev = dep
	}
}

func TestDetectPosteriorsAreProbabilitiesOnRandomWorlds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := dataset.New()
		nObj := 20 + rng.Intn(30)
		nSrc := 3 + rng.Intn(4)
		for i := 0; i < nObj; i++ {
			o := model.Obj(fmt.Sprintf("o%d", i), "v")
			for s := 0; s < nSrc; s++ {
				v := fmt.Sprintf("T%d", i)
				if rng.Float64() < 0.3 {
					v = fmt.Sprintf("F%d_%d", i, rng.Intn(5))
				}
				_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("S%d", s)), o, v))
			}
		}
		d.Freeze()
		cfg := DefaultConfig()
		cfg.MaxRounds = 4
		res, err := Detect(d, cfg)
		if err != nil {
			return false
		}
		for _, dp := range res.AllPairs {
			if dp.Prob < -1e-9 || dp.Prob > 1+1e-9 {
				return false
			}
			if dp.ProbAB < -1e-9 || dp.ProbBA < -1e-9 {
				return false
			}
		}
		for _, pv := range res.Truth.Probs {
			var sum float64
			for _, p := range pv {
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				return false
			}
		}
		for _, a := range res.Truth.Accuracy {
			if a <= 0 || a >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// randomDetectWorld builds a random snapshot dataset for Result-level
// property tests: a handful of sources with random claim patterns (partial
// coverage included, so some pairs fall below MinShared).
func randomDetectWorld(rng *rand.Rand) *dataset.Dataset {
	d := dataset.New()
	nObj := 15 + rng.Intn(25)
	nSrc := 4 + rng.Intn(4)
	for i := 0; i < nObj; i++ {
		o := model.Obj(fmt.Sprintf("o%d", i), "v")
		for s := 0; s < nSrc; s++ {
			if rng.Float64() < 0.2 { // partial coverage
				continue
			}
			v := fmt.Sprintf("T%d", i)
			if rng.Float64() < 0.35 {
				v = fmt.Sprintf("F%d_%d", i, rng.Intn(4))
			}
			_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("S%d", s)), o, v))
		}
	}
	d.Freeze()
	return d
}

func TestResultDependenceProbIsSymmetric(t *testing.T) {
	// DependenceProb(a,b) == DependenceProb(b,a) for every pair — analyzed
	// or not — and CopyProb's two directions sum to exactly the pair's
	// hypothesis posterior P(dependent) = ProbAB + ProbBA.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomDetectWorld(rng)
		cfg := DefaultConfig()
		cfg.MaxRounds = 4
		res, err := Detect(d, cfg)
		if err != nil {
			return false
		}
		sources := d.Sources()
		analyzed := map[model.SourcePair]Dependence{}
		for _, dp := range res.AllPairs {
			analyzed[dp.Pair] = dp
		}
		for i := 0; i < len(sources); i++ {
			for j := i + 1; j < len(sources); j++ {
				a, b := sources[i], sources[j]
				if res.DependenceProb(a, b) != res.DependenceProb(b, a) {
					return false
				}
				dp, ok := analyzed[model.NewSourcePair(a, b)]
				if !ok {
					// Unanalyzed pairs report zero everywhere.
					if res.DependenceProb(a, b) != 0 || res.CopyProb(a, b) != 0 || res.CopyProb(b, a) != 0 {
						return false
					}
					continue
				}
				// Directional posteriors must match the verdict and sum to
				// the total dependence posterior.
				if res.CopyProb(dp.Pair.A, dp.Pair.B) != dp.ProbAB ||
					res.CopyProb(dp.Pair.B, dp.Pair.A) != dp.ProbBA {
					return false
				}
				if math.Abs(res.CopyProb(a, b)+res.CopyProb(b, a)-res.DependenceProb(a, b)) > 1e-12 {
					return false
				}
				if math.Abs(dp.ProbAB+dp.ProbBA-dp.Prob) > 1e-9 {
					return false
				}
				// The three-hypothesis posterior is a distribution: the
				// implied P(independent) completes it to 1.
				if dp.Prob < -1e-9 || dp.Prob > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
