package depen

import (
	"reflect"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/synth"
	"sourcecurrents/internal/truth"
)

// Golden equivalence: Detect (compiled columnar path) must be bit-identical
// — reflect.DeepEqual over the whole Result, including the internal
// directional-probability table — to detectMaps (the map-based reference),
// across plain, ValueSim, and Known-label configurations, at every
// Parallelism setting.

func goldenSim(a, b string) float64 {
	if a == b {
		return 1
	}
	if len(a) > 0 && len(b) > 0 && a[0] == b[0] {
		return 0.4
	}
	return 0
}

func goldenSnapshot(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed:           seed,
		NObjects:       50,
		IndependentAcc: []float64{0.9, 0.8, 0.7, 0.6, 0.85, 0.75},
		Copiers: []synth.CopierSpec{
			{MasterIndex: 0, CopyRate: 0.85, OwnAcc: 0.7},
			{MasterIndex: 2, CopyRate: 0.6, OwnAcc: 0.65},
			{MasterIndex: 4, CopyRate: 0.95, OwnAcc: 0.5},
		},
		FalsePool: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sw.Dataset
}

func goldenConfigs(d *dataset.Dataset) map[string]Config {
	objs := d.Objects()
	plain := DefaultConfig()
	sim := DefaultConfig()
	sim.Truth.ValueSim = goldenSim
	sim.Truth.ValueSimWeight = 0.3
	lab := DefaultConfig()
	lab.Truth.Known = map[model.ObjectID]string{
		objs[0]: "T0",
		objs[1]: "A_unseen",
		objs[2]: "zzz_unseen",
	}
	both := sim
	both.Truth.Known = lab.Truth.Known
	both.Truth.KnownConfidence = 0.95
	return map[string]Config{"plain": plain, "valuesim": sim, "known": lab, "sim+known": both}
}

func TestDetectCompiledMatchesMaps(t *testing.T) {
	for _, seed := range []int64{5, 23, 131} {
		d := goldenSnapshot(t, seed)
		for name, cfg := range goldenConfigs(d) {
			ref := cfg
			ref.Parallelism = 1
			want, err := detectMaps(d, ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{1, 4, 16} {
				run := cfg
				run.Parallelism = p
				got, err := Detect(d, run)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d, cfg %q: compiled Detect at Parallelism=%d differs from map reference", seed, name, p)
				}
			}
		}
	}
}

// TestDetectCompiledTruthChosenCanonical pins the shared tie-break helper:
// the compiled detector's Chosen must match re-deriving it from Probs with
// truth.Result.PickChosen.
func TestDetectCompiledTruthChosenCanonical(t *testing.T) {
	d := goldenSnapshot(t, 7)
	res, err := Detect(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	re := &truth.Result{Probs: res.Truth.Probs}
	re.PickChosen()
	if !reflect.DeepEqual(re.Chosen, res.Truth.Chosen) {
		t.Fatal("Detect's Chosen differs from truth.Result.PickChosen over the same Probs")
	}
}
