package depen

import (
	"reflect"
	"testing"

	"sourcecurrents/internal/synth"
)

// The engine contract: Detect's output — pairwise posteriors, copy-aware
// truth, accuracies, directional probabilities — is bit-identical at every
// Parallelism setting.

func TestDetectParallelismInvariant(t *testing.T) {
	for _, seed := range []int64{2, 11, 101} {
		sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
			Seed:           seed,
			NObjects:       80,
			IndependentAcc: []float64{0.9, 0.8, 0.7, 0.6, 0.85, 0.75},
			Copiers: []synth.CopierSpec{
				{MasterIndex: 0, CopyRate: 0.85, OwnAcc: 0.7},
				{MasterIndex: 2, CopyRate: 0.6, OwnAcc: 0.65},
				{MasterIndex: 4, CopyRate: 0.95, OwnAcc: 0.5},
			},
			FalsePool: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		var want *Result
		for _, p := range []int{1, 4, 16} {
			cfg := DefaultConfig()
			cfg.Parallelism = p
			got, err := Detect(sw.Dataset, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = got
				continue
			}
			// DeepEqual covers Truth (probs, chosen incl. tie-breaks,
			// accuracies), AllPairs/Dependences ordering, and the internal
			// directional map.
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: Detect result at Parallelism=%d differs from sequential", seed, p)
			}
		}
	}
}

func TestDetectParallelismInvariantWithSimilarity(t *testing.T) {
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed:           5,
		NObjects:       60,
		IndependentAcc: []float64{0.9, 0.7, 0.8},
		Copiers:        []synth.CopierSpec{{MasterIndex: 0, CopyRate: 0.8, OwnAcc: 0.6}},
		FalsePool:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := func(a, b string) float64 {
		if len(a) > 1 && len(b) > 1 && a[:2] == b[:2] {
			return 0.4
		}
		return 0
	}
	var want *Result
	for _, p := range []int{1, 4, 16} {
		cfg := DefaultConfig()
		cfg.Parallelism = p
		cfg.Truth.ValueSim = sim
		cfg.Truth.ValueSimWeight = 0.25
		got, err := Detect(sw.Dataset, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got.AllPairs, want.AllPairs) ||
			!reflect.DeepEqual(got.Dependences, want.Dependences) ||
			!reflect.DeepEqual(got.Truth.Probs, want.Truth.Probs) ||
			!reflect.DeepEqual(got.Truth.Chosen, want.Truth.Chosen) ||
			!reflect.DeepEqual(got.Truth.Accuracy, want.Truth.Accuracy) ||
			got.Rounds != want.Rounds || got.Converged != want.Converged {
			t.Fatalf("similarity run at Parallelism=%d differs from sequential", p)
		}
	}
}
