// Package depen implements the paper's primary contribution for snapshot
// data: discovery of similarity-dependence (copying) between sources, and
// dependence-aware truth discovery.
//
// Two intuitions from §3.2 drive the detector:
//
//  1. Sources sharing false values are far more likely to be dependent than
//     sources sharing true values — independent accurate sources agree on
//     the truth for free, but agreeing on the same mistake is improbable
//     (the multiple-choice-quiz argument). Evidence is therefore split into
//     fractional counts kt (shared-and-true), kf (shared-and-false) and kd
//     (differing), weighted by the current belief that the shared value is
//     true.
//
//  2. A copier's accuracy on the data it shares with its master differs
//     from its accuracy on the data it provides alone; an independent
//     source is equally good everywhere. This yields both a direction
//     signal and a partial-copier diagnostic (AccuracySplit).
//
// The generative model (the companion VLDB 2009 formalization of this
// paper's sketch): a copier copies each object independently with
// probability c; otherwise it behaves like an independent source with its
// own accuracy. With n plausible false values per object and accuracies
// A1, A2:
//
//	independent:  Pt = A1·A2          Pf = (1−A1)(1−A2)/n   Pd = 1−Pt−Pf
//	S2 copies S1: Pt' = c·A1 + (1−c)·Pt
//	              Pf' = c·(1−A1) + (1−c)·Pf
//	              Pd' = (1−c)·Pd
//
// Bayes over the three hypotheses {independent, A→B, B→A} with prior α of
// dependence gives the pairwise posteriors; the direction is identified
// because the copy branch uses the *master's* accuracy.
//
// Truth discovery then discounts votes: within the sources asserting a
// value, each source's weight is multiplied by Π (1 − c·P(this source
// copies an already-counted source)), so a clique of copiers contributes
// barely more than one independent vote. The outer loop iterates truth ↔
// accuracy ↔ dependence to a fixpoint (the ACCUCOPY scheme the paper's
// §3.2 proposes as "iteratively determining true values, computing accuracy
// of sources, and discovering dependence").
package depen

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/engine"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/stats"
	"sourcecurrents/internal/truth"
)

// Config parameterizes detection. Start from DefaultConfig.
type Config struct {
	// Truth configures the inner truth-discovery step (N, smoothing, ...).
	Truth truth.Config
	// CopyRate is c: the probability that a copier copies any given object.
	CopyRate float64
	// Alpha is the prior probability that a random pair is dependent
	// (split evenly between the two directions).
	Alpha float64
	// MinShared is the minimum overlap for a pair to be analyzed at all
	// (Example 4.1 uses 10). Pairs below it are treated as independent.
	MinShared int
	// DepThreshold is the posterior above which a pair is reported as
	// dependent.
	DepThreshold float64
	// MaxRounds caps the outer loop; Tol is its accuracy-fixpoint
	// threshold.
	MaxRounds int
	Tol       float64
	// Parallelism is the worker count for the per-object truth step and the
	// O(S²) pairwise hypothesis scoring. Values <= 0 select
	// runtime.GOMAXPROCS(0); 1 reproduces sequential execution exactly.
	// Results are bit-identical at every setting. It governs every phase of
	// Detect; the embedded Truth config's own Parallelism is not consulted
	// here.
	Parallelism int
	// RefineRounds is the number of bounded refinement passes an appended
	// batch gets when a log-carrying dataset is replayed (see Refine).
	// Values <= 0 select DefaultRefineRounds. It does not affect flat
	// datasets.
	RefineRounds int
}

// DefaultRefineRounds is the per-batch refinement pass count used when
// Config.RefineRounds is unset. Two passes let the appended evidence
// propagate truth -> accuracy -> dependence and settle once more, which the
// equivalence suite shows is where the marginal accuracy of more passes
// collapses to the Tol scale.
const DefaultRefineRounds = 2

// EffectiveRefineRounds returns the per-batch refinement pass count with the
// default applied — the value that actually shapes a replayed result (and
// that session snapshots fingerprint).
func (c Config) EffectiveRefineRounds() int {
	if c.RefineRounds <= 0 {
		return DefaultRefineRounds
	}
	return c.RefineRounds
}

// Engine returns the execution-engine configuration for this detector.
func (c Config) Engine() engine.Config {
	return engine.Config{Workers: c.Parallelism}
}

// DefaultConfig returns the parameters used across the experiments.
func DefaultConfig() Config {
	return Config{
		Truth:        truth.DefaultConfig(),
		CopyRate:     0.8,
		Alpha:        0.2,
		MinShared:    2,
		DepThreshold: 0.5,
		MaxRounds:    15,
		Tol:          1e-4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Truth.Validate(); err != nil {
		return err
	}
	if c.CopyRate <= 0 || c.CopyRate >= 1 {
		return errors.New("depen: CopyRate must be in (0,1)")
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return errors.New("depen: Alpha must be in (0,1)")
	}
	if c.MinShared < 1 {
		return errors.New("depen: MinShared must be >= 1")
	}
	if c.DepThreshold < 0 || c.DepThreshold > 1 {
		return errors.New("depen: DepThreshold must be in [0,1]")
	}
	if c.MaxRounds < 1 {
		return errors.New("depen: MaxRounds must be >= 1")
	}
	if c.Tol <= 0 {
		return errors.New("depen: Tol must be > 0")
	}
	return nil
}

// Dependence is the detector's verdict on one source pair.
type Dependence struct {
	Pair model.SourcePair
	// Prob is the posterior probability that the pair is dependent
	// (either direction).
	Prob float64
	// ProbAB is the posterior that A copies B; ProbBA that B copies A.
	// Prob = ProbAB + ProbBA.
	ProbAB, ProbBA float64
	// Shared is the overlap size; Same the number of shared objects with
	// equal values.
	Shared, Same int
	// KT, KF, KD are the fractional evidence counts (shared-true,
	// shared-false, differing).
	KT, KF, KD float64
}

// Copier returns the more likely copier of the pair under the current
// posterior, and the margin ProbCopier − ProbOther.
func (dep Dependence) Copier() (model.SourceID, float64) {
	if dep.ProbAB >= dep.ProbBA {
		return dep.Pair.A, dep.ProbAB - dep.ProbBA
	}
	return dep.Pair.B, dep.ProbBA - dep.ProbAB
}

// Result is the outcome of the full detection loop.
type Result struct {
	// Truth is the dependence-aware truth-discovery result.
	Truth *truth.Result
	// Dependences holds every analyzed pair with posterior >= DepThreshold,
	// sorted by decreasing posterior (ties by pair name).
	Dependences []Dependence
	// AllPairs holds every analyzed pair regardless of threshold.
	AllPairs []Dependence
	// Rounds is the number of outer-loop iterations; Converged whether the
	// accuracy fixpoint was reached.
	Rounds    int
	Converged bool

	dir *dirTable
}

// dirTable is the dense directional-posterior lookup backing CopyProb and
// DependenceProb: every dataset source in sorted order, with P(i copies j)
// in a flat row-major table. Every construction path builds it over the
// same sorted source list, so results are structurally identical whichever
// path produced them. The nested-map form it replaces cost more to
// populate than the entire rest of a snapshot load.
type dirTable struct {
	idx  map[model.SourceID]int32
	n    int
	prob []float64
}

// newDirTableFor returns an empty table over the (sorted) source list.
func newDirTableFor(sources []model.SourceID) *dirTable {
	idx := make(map[model.SourceID]int32, len(sources))
	for i, s := range sources {
		idx[s] = int32(i)
	}
	n := len(sources)
	return &dirTable{idx: idx, n: n, prob: make([]float64, n*n)}
}

// set records a pair verdict by dense source index.
func (t *dirTable) set(ai, bi int32, probAB, probBA float64) {
	t.prob[int(ai)*t.n+int(bi)] = probAB
	t.prob[int(bi)*t.n+int(ai)] = probBA
}

// setByID records a pair verdict by source id (the map-path form).
func (t *dirTable) setByID(a, b model.SourceID, probAB, probBA float64) {
	t.set(t.idx[a], t.idx[b], probAB, probBA)
}

// of returns P(from copies to); 0 for sources outside the table.
func (t *dirTable) of(from, to model.SourceID) float64 {
	if t == nil {
		return 0
	}
	fi, ok := t.idx[from]
	if !ok {
		return 0
	}
	ti, ok := t.idx[to]
	if !ok {
		return 0
	}
	return t.prob[int(fi)*t.n+int(ti)]
}

// FillTotals writes the total (both-direction) dependence posterior of
// every source pair into out[i*n+j], where i, j index the given sorted
// source list — the dense serving table. It reports false when the result's
// lookup table was not built over exactly this source list (the caller then
// falls back to iterating AllPairs).
func (r *Result) FillTotals(sources []model.SourceID, out []float64) bool {
	t := r.dir
	if t == nil || t.n != len(sources) || len(out) != t.n*t.n {
		return false
	}
	for i, s := range sources {
		if got, ok := t.idx[s]; !ok || got != int32(i) {
			return false
		}
	}
	for i := 0; i < t.n; i++ {
		for j := 0; j < t.n; j++ {
			out[i*t.n+j] = t.prob[i*t.n+j] + t.prob[j*t.n+i]
		}
	}
	return true
}

// DependenceProb returns the posterior that a and b are dependent (either
// direction); 0 for unanalyzed pairs.
func (r *Result) DependenceProb(a, b model.SourceID) float64 {
	return r.directional(a, b) + r.directional(b, a)
}

// CopyProb returns the posterior that copier copies master; 0 for
// unanalyzed pairs.
func (r *Result) CopyProb(copier, master model.SourceID) float64 {
	return r.directional(copier, master)
}

func (r *Result) directional(from, to model.SourceID) float64 {
	return r.dir.of(from, to)
}

// ResultFromParts reassembles a Result from its serializable parts — the
// truth result, the dataset's sorted source list, every analyzed pair's
// final-round verdict, and the threshold/round bookkeeping. The session
// snapshot loader uses it to rebuild the cached precompute without
// re-running Detect; given the parts of a prior Detect run it reproduces
// that run's Result exactly (the directional lookup table and the
// thresholded Dependences slice are derived from allPairs the same way
// Detect derives them). It takes ownership of allPairs, which may be
// re-sorted in place.
//
// pairA and pairB, when non-nil, give each pair's dense indices into
// sources (pairA[i] indexes allPairs[i].Pair.A), letting a decoder that
// already holds indices skip ~2·|pairs| string-map lookups; pass nil to
// derive them by lookup.
func ResultFromParts(tr *truth.Result, sources []model.SourceID,
	allPairs []Dependence, pairA, pairB []int32,
	depThreshold float64, rounds int, converged bool) *Result {
	t := newDirTableFor(sources)
	if len(pairA) == len(allPairs) && len(pairB) == len(allPairs) {
		for i := range allPairs {
			t.set(pairA[i], pairB[i], allPairs[i].ProbAB, allPairs[i].ProbBA)
		}
	} else {
		for i := range allPairs {
			t.setByID(allPairs[i].Pair.A, allPairs[i].Pair.B, allPairs[i].ProbAB, allPairs[i].ProbBA)
		}
	}
	res := &Result{
		Truth:     tr,
		Rounds:    rounds,
		Converged: converged,
		dir:       t,
	}
	finishPairs(res, allPairs, depThreshold)
	return res
}

// pairHypotheses returns log-likelihoods of the evidence under the three
// hypotheses. a1, a2 are accuracies of the pair's A and B members.
func pairHypotheses(kt, kf, kd float64, a1, a2, c float64, n int) (indep, aCopiesB, bCopiesA float64) {
	a1 = stats.ClampProb(a1)
	a2 = stats.ClampProb(a2)
	nf := float64(n)
	pt := a1 * a2
	pf := (1 - a1) * (1 - a2) / nf
	pd := 1 - pt - pf

	logL := func(pt, pf, pd float64) float64 {
		return kt*math.Log(stats.ClampProb(pt)) +
			kf*math.Log(stats.ClampProb(pf)) +
			kd*math.Log(stats.ClampProb(pd))
	}
	indep = logL(pt, pf, pd)
	// A copies B: the copy branch reproduces B's value, so B's accuracy
	// governs whether the shared value is true.
	aCopiesB = logL(c*a2+(1-c)*pt, c*(1-a2)+(1-c)*pf, (1-c)*pd)
	bCopiesA = logL(c*a1+(1-c)*pt, c*(1-a1)+(1-c)*pf, (1-c)*pd)
	return indep, aCopiesB, bCopiesA
}

// evidence accumulates the fractional counts for one pair from the current
// posterior beliefs. For each shared object: if the values agree exactly
// (verbatim — formatting included, since verbatim replication is itself
// copy evidence), the agreement is "true agreement" with the belief mass of
// that value's similarity class and "false agreement" with the complement;
// if they differ, kd += 1.
func evidence(d *dataset.Dataset, ov dataset.Overlap,
	probs map[model.ObjectID]map[string]float64,
	sim func(a, b string) float64) (kt, kf, kd float64) {
	for _, o := range ov.Objects {
		va, _ := d.Value(ov.Pair.A, o)
		vb, _ := d.Value(ov.Pair.B, o)
		if va != vb {
			kd++
			continue
		}
		p := truth.ClassMass(probs[o], va, sim)
		kt += p
		kf += 1 - p
	}
	return kt, kf, kd
}

// scorePair turns evidence into a Dependence verdict via Bayes.
func scorePair(ov dataset.Overlap, kt, kf, kd float64,
	acc map[model.SourceID]float64, cfg Config) Dependence {
	li, lab, lba := pairHypotheses(kt, kf, kd, acc[ov.Pair.A], acc[ov.Pair.B],
		cfg.CopyRate, cfg.Truth.N)
	// Priors: 1-α independent, α/2 per direction.
	logPrior := []float64{math.Log(1 - cfg.Alpha), math.Log(cfg.Alpha / 2), math.Log(cfg.Alpha / 2)}
	post, err := stats.NormalizeLog([]float64{li + logPrior[0], lab + logPrior[1], lba + logPrior[2]})
	if err != nil {
		post = []float64{1, 0, 0}
	}
	return Dependence{
		Pair:   ov.Pair,
		Prob:   post[1] + post[2],
		ProbAB: post[1],
		ProbBA: post[2],
		Shared: len(ov.Objects),
		Same:   ov.Same,
		KT:     kt, KF: kf, KD: kd,
	}
}

// Detect runs the full iterative loop on a frozen snapshot dataset. It
// executes on the dataset's compiled columnar index; the result is
// bit-identical to the map-based reference path (detectMaps), which the
// golden equivalence tests enforce.
//
// A dataset carrying an append log (dataset.Append) is solved by *replay*:
// a full solve of the flat base followed by one bounded refinement pass per
// appended batch (see Refine). Replay is the semantic definition of a
// log-carrying dataset's result — a session advanced live batch-by-batch
// and a session rebuilt from scratch over the same successor dataset run
// the identical pass sequence and reach bit-identical state.
func Detect(d *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, fmt.Errorf("depen: dataset must be frozen")
	}
	if base := d.Base(); base != nil {
		prev, err := Detect(base, cfg)
		if err != nil {
			return nil, err
		}
		return refine(d, prev, cfg), nil
	}
	// Compiled is non-nil for every frozen dataset; the fallback is
	// defensive only.
	if c := d.Compiled(); c != nil {
		return detectCompiled(c, cfg), nil
	}
	return detectMaps(d, cfg)
}

// detectMaps is the map-based reference implementation of Detect. It is not
// on any runtime path: it is kept as the semantic specification the
// compiled path is tested against (golden_test.go).
func detectMaps(d *dataset.Dataset, cfg Config) (*Result, error) {
	// Candidate pairs and their overlaps are fixed across rounds.
	candidates := d.Pairs(cfg.MinShared)

	acc := make(map[model.SourceID]float64, len(d.Sources()))
	for _, s := range d.Sources() {
		acc[s] = cfg.Truth.InitialAccuracy
	}

	res := &Result{}
	var probs map[model.ObjectID]map[string]float64
	var pairs []Dependence
	// dirState holds the previous round's directional posteriors for the
	// vote discounts; the final round's verdicts become the result's dense
	// lookup table below.
	dirState := map[model.SourceID]map[model.SourceID]float64{}
	objects := d.Objects()
	eng := cfg.Engine()

	for round := 1; round <= cfg.MaxRounds; round++ {
		// Truth step with dependence discounts from the previous round.
		// Each object gets its own discount closure (discountFor keeps
		// per-object state only), so workers share nothing but read-only
		// maps; the merge below iterates in canonical object order.
		discount := makeDiscount(d, acc, dirState, cfg.CopyRate)
		scored := engine.MapObjects(eng, objects, func(o model.ObjectID) map[string]float64 {
			scores := truth.ScoreValues(d.ValuesFor(o), acc, cfg.Truth.N, discountFor(discount, o))
			scores = truth.ApplySimilarity(scores, cfg.Truth.ValueSim, cfg.Truth.ValueSimWeight)
			return cfg.Truth.ApplyKnown(o, truth.SoftmaxScores(scores))
		})
		probs = make(map[model.ObjectID]map[string]float64, len(objects))
		for i, o := range objects {
			probs[o] = scored[i]
		}

		// Accuracy step.
		next := truth.UpdateAccuracySim(d, probs, cfg.Truth.PriorA, cfg.Truth.PriorB, cfg.Truth.ValueSim)

		// Dependence step: score candidate pairs in parallel, then merge in
		// the candidates' deterministic order.
		pairs = engine.MapObjects(eng, candidates, func(ov dataset.Overlap) Dependence {
			kt, kf, kd := evidence(d, ov, probs, cfg.Truth.ValueSim)
			return scorePair(ov, kt, kf, kd, next, cfg)
		})
		dir := map[model.SourceID]map[model.SourceID]float64{}
		for _, dep := range pairs {
			setDir(dir, dep.Pair.A, dep.Pair.B, dep.ProbAB)
			setDir(dir, dep.Pair.B, dep.Pair.A, dep.ProbBA)
		}
		dirState = dir
		res.Rounds = round

		if truth.MaxAccuracyDelta(acc, next) < cfg.Tol {
			acc = next
			res.Converged = true
			break
		}
		acc = next
	}

	res.Truth = &truth.Result{
		Probs:     probs,
		Accuracy:  acc,
		Rounds:    res.Rounds,
		Converged: res.Converged,
	}
	res.Truth.PickChosen()
	res.dir = newDirTableFor(d.Sources())
	for _, dep := range pairs {
		res.dir.setByID(dep.Pair.A, dep.Pair.B, dep.ProbAB, dep.ProbBA)
	}
	finishPairs(res, pairs, cfg.DepThreshold)
	return res, nil
}

// finishPairs fills AllPairs (sorted) and Dependences (thresholded,
// preallocated after a counting pass) from the final round's verdicts. It
// takes ownership of pairs and sorts it in place — no caller reads the
// final-round slice afterwards, and the copy it replaces was a measurable
// share of a snapshot load.
func finishPairs(res *Result, pairs []Dependence, threshold float64) {
	sortDeps(pairs)
	res.AllPairs = pairs
	var n int
	for _, p := range res.AllPairs {
		if p.Prob >= threshold {
			n++
		}
	}
	if n == 0 {
		return
	}
	res.Dependences = make([]Dependence, 0, n)
	for _, p := range res.AllPairs {
		if p.Prob >= threshold {
			res.Dependences = append(res.Dependences, p)
		}
	}
}

func setDir(m map[model.SourceID]map[model.SourceID]float64, from, to model.SourceID, p float64) {
	inner, ok := m[from]
	if !ok {
		inner = map[model.SourceID]float64{}
		m[from] = inner
	}
	inner[to] = p
}

func sortDeps(deps []Dependence) {
	sort.Slice(deps, func(i, j int) bool {
		return depLess(&deps[i], &deps[j])
	})
}

// depLess is the AllPairs ordering: confidence first, pair identity as the
// deterministic tie-break.
func depLess(x, y *Dependence) bool {
	if x.Prob != y.Prob {
		return x.Prob > y.Prob
	}
	if x.Pair.A != y.Pair.A {
		return x.Pair.A < y.Pair.A
	}
	return x.Pair.B < y.Pair.B
}

// finishSortedPairs is finishPairs for a slice already in sortDeps order —
// refine merges two sorted runs and must not pay a full re-sort.
func finishSortedPairs(res *Result, pairs []Dependence, threshold float64) {
	res.AllPairs = pairs
	var n int
	for _, p := range res.AllPairs {
		if p.Prob >= threshold {
			n++
		}
	}
	if n == 0 {
		return
	}
	res.Dependences = make([]Dependence, 0, n)
	for _, p := range res.AllPairs {
		if p.Prob >= threshold {
			res.Dependences = append(res.Dependences, p)
		}
	}
}

// discountTable holds the read-only inputs of the per-round vote
// multipliers; built once per round and shared by all workers.
type discountTable struct {
	d   *dataset.Dataset
	acc map[model.SourceID]float64
	dir map[model.SourceID]map[model.SourceID]float64
	c   float64
}

func makeDiscount(d *dataset.Dataset, acc map[model.SourceID]float64,
	dir map[model.SourceID]map[model.SourceID]float64, c float64) *discountTable {
	return &discountTable{d: d, acc: acc, dir: dir, c: c}
}

// discountFor adapts the table to truth.ScoreValues' callback signature for
// a fixed object. The returned closure memoizes per-object factors locally
// — the table itself stays read-only — so distinct objects can be scored
// concurrently without synchronization. Each closure is used by a single
// goroutine (the one scoring its object).
func discountFor(t *discountTable, o model.ObjectID) func(s model.SourceID, v string) float64 {
	if t == nil {
		return nil
	}
	memo := map[model.SourceID]float64{}
	computed := map[string]bool{}
	return func(s model.SourceID, v string) float64 {
		if f, ok := memo[s]; ok {
			return f
		}
		if !computed[v] {
			computed[v] = true
			t.fillFactors(o, v, memo)
		}
		if f, ok := memo[s]; ok {
			return f
		}
		return 1
	}
}

// fillFactors computes the independence probability of each vote for value
// v on object o: the probability that the source did NOT copy its value
// from any higher-ranked source asserting the same value. Sources are
// ranked by accuracy (descending, ties by id) so the most credible provider
// keeps the full vote — the greedy order of the VLDB 2009 vote-count
// computation. Results are written into the caller's memo.
//
// The discount uses the pair's TOTAL dependence posterior rather than the
// directional split: within a clique asserting the same value, what matters
// is how many independent origins the value has, and when the direction is
// ambiguous (identical sources) a directional split would leak votes — a
// fully dependent pair would keep 1.6 votes instead of ~1.2. Charging the
// lower-ranked member the full dependence implements the paper's "ignore
// the values provided by S4 and S5 during the voting process".
func (t *discountTable) fillFactors(o model.ObjectID, v string, memo map[model.SourceID]float64) {
	// Collect the sources asserting v on o and rank them.
	var group []model.SourceID
	for _, g := range t.d.ValuesFor(o) {
		if g.Value == v {
			group = append(group, g.Sources...)
			break
		}
	}
	sort.Slice(group, func(i, j int) bool {
		ai, aj := t.acc[group[i]], t.acc[group[j]]
		if ai != aj {
			return ai > aj
		}
		return group[i] < group[j]
	})
	for i, si := range group {
		f := 1.0
		for j := 0; j < i; j++ {
			dep := t.dirOf(si, group[j]) + t.dirOf(group[j], si)
			if dep > 1 {
				dep = 1
			}
			f *= 1 - t.c*dep
		}
		memo[si] = f
	}
}

func (t *discountTable) dirOf(from, to model.SourceID) float64 {
	if m, ok := t.dir[from]; ok {
		return m[to]
	}
	return 0
}

// AccuracySplit reports source s's estimated accuracy on the objects it
// shares with other, versus on the objects it provides alone — intuition 2
// of §3.2: a significant gap marks s as a (possibly partial) copier of
// other. Probabilities come from an existing truth result.
type AccuracySplit struct {
	Source, Other   model.SourceID
	OnOverlap       float64 // accuracy on shared objects
	OffOverlap      float64 // accuracy on s's exclusive objects
	NOn, NOff       int     // sample sizes
	Gap             float64 // |OnOverlap − OffOverlap|
	LikelyDependent bool    // gap significant given the sample sizes
}

// SplitAccuracy computes the AccuracySplit of s against other.
func SplitAccuracy(d *dataset.Dataset, probs map[model.ObjectID]map[string]float64,
	s, other model.SourceID) AccuracySplit {
	var onSum, offSum float64
	var nOn, nOff int
	for _, o := range d.ObjectsOf(s) {
		v, _ := d.Value(s, o)
		p := probs[o][v]
		if _, shared := d.Value(other, o); shared {
			onSum += p
			nOn++
		} else {
			offSum += p
			nOff++
		}
	}
	sp := AccuracySplit{Source: s, Other: other, NOn: nOn, NOff: nOff}
	if nOn > 0 {
		sp.OnOverlap = onSum / float64(nOn)
	}
	if nOff > 0 {
		sp.OffOverlap = offSum / float64(nOff)
	}
	sp.Gap = math.Abs(sp.OnOverlap - sp.OffOverlap)
	// Two-proportion z-test against the pooled accuracy; significant gaps
	// with both samples populated mark likely (partial) dependence.
	if nOn > 0 && nOff > 0 {
		pooled := (onSum + offSum) / float64(nOn+nOff)
		se := math.Sqrt(pooled * (1 - pooled) * (1/float64(nOn) + 1/float64(nOff)))
		if se > 0 {
			z := sp.Gap / se
			sp.LikelyDependent = z > 1.96
		}
	}
	return sp
}
