package dissim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

func ratingObj(e string) model.ObjectID { return model.Obj(e, dataset.RatingAttr) }

func TestScale(t *testing.T) {
	s := GoodNeutralBad()
	if l, ok := s.Level("Good"); !ok || l != 2 {
		t.Fatalf("Level(Good) = %d,%v", l, ok)
	}
	if _, ok := s.Level("Meh"); ok {
		t.Fatal("unknown label accepted")
	}
	if !s.Opposed("Good", "Bad") {
		t.Fatal("Good vs Bad should oppose")
	}
	if s.Opposed("Good", "Neutral") {
		t.Fatal("Neutral opposes nothing")
	}
	if s.Opposed("Good", "Good") {
		t.Fatal("same label cannot oppose")
	}
	if s.Opposed("Good", "Unknown") {
		t.Fatal("unknown label cannot oppose")
	}
	// Even-length scale: midpoint between levels.
	s4 := NewScale("Terrible", "Bad", "Good", "Great")
	if !s4.Opposed("Bad", "Good") {
		t.Fatal("4-level scale: Bad vs Good should oppose")
	}
}

func TestKindString(t *testing.T) {
	if Independent.String() != "independent" ||
		Similarity.String() != "similarity-dependent" ||
		Dissimilarity.String() != "dissimilarity-dependent" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.Scale = Scale{} },
		func(c *Config) { c.MinOverlap = 0 },
		func(c *Config) { c.ZThreshold = 0 },
		func(c *Config) { c.Smoothing = 0 },
	} {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("invalid config accepted")
		}
	}
}

func TestDetectRequiresFrozen(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("R1", ratingObj("m"), "Good"))
	if _, err := Detect(d, DefaultConfig()); err == nil {
		t.Fatal("unfrozen dataset accepted")
	}
}

func TestTable2ContrarianPair(t *testing.T) {
	// Example 2.2: R4 always opposes R1. The opposition count (3 of 3
	// co-rated movies polarity-opposed) clears its null even with three
	// items, because opposed ratings are rare under independence.
	res, err := Detect(dataset.Table2(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := res.Verdict("R1", "R4")
	if v.Kind != Dissimilarity {
		t.Fatalf("R1~R4 verdict = %v (z=%.2f, zOpp=%.2f, opposed %d/%d)",
			v.Kind, v.Z, v.ZOpp, v.Opposed, v.Overlap)
	}
	if v.Opposed != 3 || v.Agreed != 0 {
		t.Fatalf("R1~R4 stats: %+v", v)
	}
	if v.ZOpp < 1.64 {
		t.Fatalf("contrarian zOpp = %v, want significant", v.ZOpp)
	}
	// The R1~R4 pair must carry the strongest opposition among all pairs.
	for _, dep := range res.Pairs {
		if dep.Pair != model.NewSourcePair("R1", "R4") && dep.ZOpp >= v.ZOpp {
			t.Errorf("pair %v zOpp %.2f >= contrarian's %.2f", dep.Pair, dep.ZOpp, v.ZOpp)
		}
	}
}

// synthRaters builds a rating world: nItems items with latent quality,
// honest raters with noise, one contrarian of R0, and one copier of R0.
func synthRaters(seed int64, nItems, nHonest int) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"Bad", "Neutral", "Good"}
	d := dataset.New()
	opposite := map[string]string{"Bad": "Good", "Neutral": "Neutral", "Good": "Bad"}
	for i := 0; i < nItems; i++ {
		o := ratingObj(fmt.Sprintf("item%03d", i))
		quality := rng.Intn(3)
		rate := func() string {
			l := quality
			if r := rng.Float64(); r < 0.2 {
				l = rng.Intn(3)
			}
			return labels[l]
		}
		r0 := rate()
		_ = d.Add(model.NewClaim("R0", o, r0))
		for h := 1; h <= nHonest; h++ {
			_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("R%d", h)), o, rate()))
		}
		_ = d.Add(model.NewClaim("CONTRA", o, opposite[r0]))
		_ = d.Add(model.NewClaim("COPY", o, r0))
	}
	d.Freeze()
	return d
}

func TestSyntheticContrarianAndCopier(t *testing.T) {
	d := synthRaters(3, 40, 4)
	res, err := Detect(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Verdict("CONTRA", "R0"); v.Kind != Dissimilarity {
		t.Errorf("contrarian verdict = %v (z=%.2f, zOpp=%.2f)", v.Kind, v.Z, v.ZOpp)
	}
	if v := res.Verdict("COPY", "R0"); v.Kind != Similarity {
		t.Errorf("copier verdict = %v (z=%.2f)", v.Kind, v.Z)
	}
	// Honest raters vs R0: independent — this is the correlated-
	// information challenge; they share tastes (the latent quality) but
	// conditioning on consensus absorbs that.
	for h := 1; h <= 4; h++ {
		v := res.Verdict("R0", model.SourceID(fmt.Sprintf("R%d", h)))
		if v.Kind != Independent {
			t.Errorf("honest rater R%d flagged %v (z=%.2f)", h, v.Kind, v.Z)
		}
	}
}

func TestCorrelatedFansNotFlagged(t *testing.T) {
	// Two raters who both follow popular opinion exactly: their mutual
	// agreement is fully explained by consensus. They must stay
	// independent even though their raw agreement rate is 100%.
	rng := rand.New(rand.NewSource(11))
	labels := []string{"Bad", "Neutral", "Good"}
	d := dataset.New()
	for i := 0; i < 40; i++ {
		o := ratingObj(fmt.Sprintf("m%02d", i))
		quality := labels[rng.Intn(3)]
		_ = d.Add(model.NewClaim("FAN1", o, quality))
		_ = d.Add(model.NewClaim("FAN2", o, quality))
		// A large honest population also rating at quality.
		for h := 0; h < 6; h++ {
			v := quality
			if rng.Float64() < 0.15 {
				v = labels[rng.Intn(3)]
			}
			_ = d.Add(model.NewClaim(model.SourceID(fmt.Sprintf("H%d", h)), o, v))
		}
	}
	d.Freeze()
	res, err := Detect(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v := res.Verdict("FAN1", "FAN2")
	// Agreement is perfect but largely predicted by consensus; the z
	// score must be far below what a true copier of a NOISY rater scores.
	if v.Kind == Dissimilarity {
		t.Fatalf("fans flagged dissimilar: %+v", v)
	}
	d2 := synthRaters(7, 40, 4)
	res2, _ := Detect(d2, DefaultConfig())
	copier := res2.Verdict("COPY", "R0")
	if copier.Z <= v.Z {
		t.Errorf("noisy-rater copier z=%.2f should exceed consensus-fan z=%.2f", copier.Z, v.Z)
	}
}

func TestConsensusDropsContrarian(t *testing.T) {
	cfg := DefaultConfig()
	d := dataset.Table2()
	res, err := Detect(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	excluded := Excluded(d, res)
	// R4 (fewer... equal counts; tie keeps the later one dropped — assert
	// membership rather than identity) must be among the dropped raters.
	foundR4 := false
	for _, s := range excluded {
		if s == "R4" || s == "R1" {
			foundR4 = true
		}
	}
	if !foundR4 {
		t.Fatalf("neither member of the contrarian pair dropped: %v", excluded)
	}

	with := Consensus(d, res, cfg, KeepAll)
	without := Consensus(d, res, cfg, DropDependents)
	// Dropping the contrarian must change some item's mean level.
	changed := false
	for o, w := range with {
		if wo, ok := without[o]; ok && math.Abs(wo.MeanLevel-w.MeanLevel) > 1e-9 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("consensus unchanged after dropping contrarian")
	}
}

func TestConsensusDistributionsNormalized(t *testing.T) {
	d := dataset.Table2()
	cons := Consensus(d, nil, DefaultConfig(), KeepAll)
	if len(cons) != 3 {
		t.Fatalf("consensus items = %d", len(cons))
	}
	for o, c := range cons {
		var sum float64
		for _, p := range c.Dist {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v dist sums to %v", o, sum)
		}
		if c.MeanLevel < 0 || c.MeanLevel > 2 {
			t.Errorf("%v mean level %v out of scale", o, c.MeanLevel)
		}
		if c.Raters != 4 {
			t.Errorf("%v raters = %d", o, c.Raters)
		}
	}
}

func TestVerdictUnanalyzed(t *testing.T) {
	res := &Result{}
	v := res.Verdict("A", "B")
	if v.Kind != Independent {
		t.Fatal("unanalyzed pair should default independent")
	}
}

func TestMinOverlapFilter(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("A", ratingObj("x"), "Good"))
	_ = d.Add(model.NewClaim("B", ratingObj("x"), "Bad"))
	d.Freeze()
	res, err := Detect(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("pair below MinOverlap analyzed: %v", res.Pairs)
	}
}

func TestDetectDeterministic(t *testing.T) {
	d := synthRaters(5, 30, 3)
	r1, err := Detect(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Detect(d, DefaultConfig())
	if len(r1.Pairs) != len(r2.Pairs) {
		t.Fatal("pair counts differ")
	}
	for i := range r1.Pairs {
		if r1.Pairs[i] != r2.Pairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}
