// Package dissim implements dissimilarity-dependence discovery on opinion
// data — the second kind of dependence §2.2 defines, where a source chooses
// to provide values that conflict with another source's (Example 2.2's
// reviewer R4, who always opposes R1).
//
// Opinion data has no underlying true value, so the shared-false-value
// machinery of package depen does not apply. Instead the detector compares
// each pair's observed agreement with the agreement expected under
// independence *conditioned on each item's consensus distribution*: two
// science-fiction fans both loving every Star Wars movie agree exactly as
// often as the consensus predicts, while a copier agrees far more and a
// contrarian far less. Conditioning on consensus is the answer to the
// "correlated information" challenge of §3.1.
//
// Verdicts:
//   - observed agreement significantly ABOVE expectation: similarity-
//     dependence (rating plagiarism / herding);
//   - significantly BELOW expectation, with high opposition rate:
//     dissimilarity-dependence;
//   - otherwise: independent.
//
// Aggregation (Consensus) then excludes or reweights dependent raters so
// that the published consensus is unbiased, as §4's recommendation-systems
// discussion requires.
package dissim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/stats"
)

// Scale maps ordinal rating labels to integer levels, e.g.
// {"Bad": 0, "Neutral": 1, "Good": 2}. Opposition is measured on this
// scale: two ratings oppose when they sit on opposite sides of the
// midpoint.
type Scale struct {
	Levels map[string]int
	Max    int
}

// NewScale builds a scale from ordered labels (worst first).
func NewScale(labels ...string) Scale {
	s := Scale{Levels: map[string]int{}}
	for i, l := range labels {
		s.Levels[l] = i
	}
	s.Max = len(labels) - 1
	return s
}

// GoodNeutralBad is the scale of Table 2.
func GoodNeutralBad() Scale { return NewScale("Bad", "Neutral", "Good") }

// Level returns the numeric level of a label.
func (s Scale) Level(label string) (int, bool) {
	l, ok := s.Levels[label]
	return l, ok
}

// Opposed reports whether two labels sit strictly on opposite sides of the
// scale midpoint.
func (s Scale) Opposed(a, b string) bool {
	la, oka := s.Levels[a]
	lb, okb := s.Levels[b]
	if !oka || !okb {
		return false
	}
	mid := float64(s.Max) / 2
	return (float64(la)-mid)*(float64(lb)-mid) < 0
}

// Config parameterizes detection.
type Config struct {
	// Scale is the rating scale.
	Scale Scale
	// MinOverlap is the minimum number of co-rated items for a pair to be
	// analyzed.
	MinOverlap int
	// ZThreshold is the |z| above which deviation from expected agreement
	// is significant.
	ZThreshold float64
	// Smoothing is the pseudocount used when estimating each rater's
	// conformity (its probability of matching an item's consensus mode).
	Smoothing float64
}

// DefaultConfig returns the detector parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Scale:      GoodNeutralBad(),
		MinOverlap: 3,
		ZThreshold: 1.64, // one-sided 5%
		Smoothing:  1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Scale.Levels) < 2 {
		return errors.New("dissim: scale needs at least 2 levels")
	}
	if c.MinOverlap < 1 {
		return errors.New("dissim: MinOverlap must be >= 1")
	}
	if c.ZThreshold <= 0 {
		return errors.New("dissim: ZThreshold must be > 0")
	}
	if c.Smoothing <= 0 {
		return errors.New("dissim: Smoothing must be > 0")
	}
	return nil
}

// Kind is the pairwise verdict.
type Kind int

const (
	// Independent: agreement consistent with consensus-conditioned chance.
	Independent Kind = iota
	// Similarity: agreement significantly above expectation.
	Similarity
	// Dissimilarity: agreement significantly below expectation with
	// systematic opposition.
	Dissimilarity
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Independent:
		return "independent"
	case Similarity:
		return "similarity-dependent"
	case Dissimilarity:
		return "dissimilarity-dependent"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dependence is the verdict on one rater pair. Two standardized statistics
// decide the kind: Z (agreement above its conformity-conditioned null marks
// similarity-dependence) and ZOpp (opposition above its null marks
// dissimilarity-dependence).
type Dependence struct {
	Pair model.SourcePair
	Kind Kind
	// Overlap is the number of co-rated items; Agreed how many ratings
	// matched exactly; Opposed how many sat on opposite polarity sides.
	Overlap, Agreed, Opposed int
	// ExpectedAgree and SD describe the null distribution of Agreed under
	// independence given the raters' conformities.
	ExpectedAgree, SD float64
	// Z is the standardized deviation of Agreed from ExpectedAgree.
	Z float64
	// ExpectedOpposed, SDOpp and ZOpp are the analogous statistics for the
	// count of polarity-opposed rating pairs.
	ExpectedOpposed, SDOpp, ZOpp float64
}

// Result is the detection outcome.
type Result struct {
	// Pairs holds every analyzed pair, sorted by |Z| descending.
	Pairs []Dependence
}

// Verdict returns the verdict for a pair; Independent (zero value) for
// unanalyzed pairs.
func (r *Result) Verdict(a, b model.SourceID) Dependence {
	p := model.NewSourcePair(a, b)
	for _, dep := range r.Pairs {
		if dep.Pair == p {
			return dep
		}
	}
	return Dependence{Pair: p, Kind: Independent}
}

// Dependent returns analyzed pairs with non-independent verdicts.
func (r *Result) Dependent() []Dependence {
	var out []Dependence
	for _, dep := range r.Pairs {
		if dep.Kind != Independent {
			out = append(out, dep)
		}
	}
	return out
}

// Detect analyzes every rater pair of a frozen snapshot dataset of ratings.
func Detect(d *dataset.Dataset, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, fmt.Errorf("dissim: dataset must be frozen")
	}
	sources := d.Sources()
	modes := consensusModes(d, cfg)
	conf := conformities(d, modes, cfg)
	res := &Result{}
	for i := 0; i < len(sources); i++ {
		for j := i + 1; j < len(sources); j++ {
			dep, ok := analyzePair(d, sources[i], sources[j], modes, conf, cfg)
			if ok {
				res.Pairs = append(res.Pairs, dep)
			}
		}
	}
	sort.Slice(res.Pairs, func(a, b int) bool {
		za, zb := math.Abs(res.Pairs[a].Z), math.Abs(res.Pairs[b].Z)
		if za != zb {
			return za > zb
		}
		return res.Pairs[a].Pair.String() < res.Pairs[b].Pair.String()
	})
	return res, nil
}

// consensusModes returns each item's consensus mode: the most frequent
// rating label (ties broken by lexicographically smaller label, so runs are
// deterministic).
func consensusModes(d *dataset.Dataset, cfg Config) map[model.ObjectID]string {
	out := make(map[model.ObjectID]string, len(d.Objects()))
	for _, o := range d.Objects() {
		counts := map[string]int{}
		for _, c := range d.ClaimsByObject(o) {
			if _, ok := cfg.Scale.Levels[c.Value]; ok {
				counts[c.Value]++
			}
		}
		labels := make([]string, 0, len(counts))
		for l := range counts {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		best, bestN := "", -1
		for _, l := range labels {
			if counts[l] > bestN {
				best, bestN = l, counts[l]
			}
		}
		if best != "" {
			out[o] = best
		}
	}
	return out
}

// conformities estimates, per rater, the smoothed probability of matching
// an item's consensus mode. This is the rater-level analogue of source
// accuracy: it lets the null model explain away agreement between two
// raters who are both merely aligned with popular opinion (the
// correlated-information challenge), while a copier of a NOISY rater and a
// systematic contrarian both deviate from their conformity-predicted
// agreement.
func conformities(d *dataset.Dataset, modes map[model.ObjectID]string, cfg Config) map[model.SourceID]float64 {
	out := make(map[model.SourceID]float64, len(d.Sources()))
	for _, s := range d.Sources() {
		var match, total int
		for _, o := range d.ObjectsOf(s) {
			mode, ok := modes[o]
			if !ok {
				continue
			}
			v, _ := d.Value(s, o)
			if _, onScale := cfg.Scale.Levels[v]; !onScale {
				continue
			}
			total++
			if v == mode {
				match++
			}
		}
		out[s] = stats.ClampProb((float64(match) + cfg.Smoothing) /
			(float64(total) + 2*cfg.Smoothing))
	}
	return out
}

// pairAgreeProb returns the null probability that raters with conformities
// ga, gb agree on an item: each rates the mode with its conformity and
// spreads the remainder uniformly over the other K-1 labels.
func pairAgreeProb(ga, gb float64, k int) float64 {
	if k < 2 {
		return 1
	}
	rest := float64(k - 1)
	return ga*gb + rest*((1-ga)/rest)*((1-gb)/rest)
}

// pairOpposeProb returns the null probability that raters with conformities
// ga, gb give polarity-opposed ratings on an item whose consensus mode is
// the given label, under the same conformity spread model.
func pairOpposeProb(ga, gb float64, mode string, s Scale) float64 {
	k := len(s.Levels)
	if k < 2 {
		return 0
	}
	rest := float64(k - 1)
	prob := func(g float64, label string) float64 {
		if label == mode {
			return g
		}
		return (1 - g) / rest
	}
	labels := make([]string, 0, k)
	for l := range s.Levels {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var p float64
	for _, la := range labels {
		for _, lb := range labels {
			if s.Opposed(la, lb) {
				p += prob(ga, la) * prob(gb, lb)
			}
		}
	}
	return p
}

func analyzePair(d *dataset.Dataset, a, b model.SourceID, modes map[model.ObjectID]string,
	conf map[model.SourceID]float64, cfg Config) (Dependence, bool) {
	pair := model.NewSourcePair(a, b)
	ov := d.OverlapOf(a, b)
	if len(ov.Objects) < cfg.MinOverlap {
		return Dependence{}, false
	}
	dep := Dependence{Pair: pair, Overlap: len(ov.Objects)}
	k := len(cfg.Scale.Levels)
	var expAgree, varAgree, expOpp, varOpp float64
	for _, o := range ov.Objects {
		va, _ := d.Value(a, o)
		vb, _ := d.Value(b, o)
		if va == vb {
			dep.Agreed++
		}
		if cfg.Scale.Opposed(va, vb) {
			dep.Opposed++
		}
		pAgree := pairAgreeProb(conf[a], conf[b], k)
		expAgree += pAgree
		varAgree += pAgree * (1 - pAgree)
		pOpp := pairOpposeProb(conf[a], conf[b], modes[o], cfg.Scale)
		expOpp += pOpp
		varOpp += pOpp * (1 - pOpp)
	}
	dep.ExpectedAgree = expAgree
	dep.SD = math.Sqrt(varAgree)
	dep.Z = stats.ZScore(float64(dep.Agreed), expAgree, dep.SD)
	dep.ExpectedOpposed = expOpp
	dep.SDOpp = math.Sqrt(varOpp)
	dep.ZOpp = stats.ZScore(float64(dep.Opposed), expOpp, dep.SDOpp)
	switch {
	case dep.ZOpp >= cfg.ZThreshold && dep.ZOpp >= dep.Z:
		dep.Kind = Dissimilarity
	case dep.Z >= cfg.ZThreshold:
		dep.Kind = Similarity
	default:
		dep.Kind = Independent
	}
	return dep, true
}

// ConsensusOption controls how Consensus treats dependent raters.
type ConsensusOption int

const (
	// DropDependents removes the lower-information member of every
	// dependent pair from the aggregation entirely.
	DropDependents ConsensusOption = iota
	// KeepAll aggregates everything (the naive baseline).
	KeepAll
)

// ItemConsensus is the aggregated opinion on one item.
type ItemConsensus struct {
	Object model.ObjectID
	// Dist is the aggregated rating distribution; MeanLevel its mean on
	// the numeric scale.
	Dist      map[string]float64
	MeanLevel float64
	// Raters is the number of ratings aggregated.
	Raters int
}

// Consensus aggregates ratings into per-item consensus, optionally
// excluding dependent raters discovered by Detect. For each dependent pair
// the member with the smaller rating count is dropped (the contrarian or
// copier adds no independent information).
func Consensus(d *dataset.Dataset, res *Result, cfg Config, opt ConsensusOption) map[model.ObjectID]ItemConsensus {
	dropped := map[model.SourceID]bool{}
	if opt == DropDependents && res != nil {
		for _, dep := range res.Dependent() {
			a, b := dep.Pair.A, dep.Pair.B
			if len(d.ObjectsOf(a)) < len(d.ObjectsOf(b)) {
				dropped[a] = true
			} else {
				dropped[b] = true
			}
		}
	}
	out := map[model.ObjectID]ItemConsensus{}
	for _, o := range d.Objects() {
		counts := map[string]float64{}
		var total float64
		var levelSum float64
		var raters int
		for _, c := range d.ClaimsByObject(o) {
			if dropped[c.Source] {
				continue
			}
			lvl, ok := cfg.Scale.Level(c.Value)
			if !ok {
				continue
			}
			counts[c.Value]++
			levelSum += float64(lvl)
			total++
			raters++
		}
		if total == 0 {
			continue
		}
		dist := make(map[string]float64, len(counts))
		for l, v := range counts {
			dist[l] = v / total
		}
		out[o] = ItemConsensus{
			Object:    o,
			Dist:      dist,
			MeanLevel: levelSum / total,
			Raters:    raters,
		}
	}
	return out
}

// Excluded reports which raters Consensus would drop for the given result.
func Excluded(d *dataset.Dataset, res *Result) []model.SourceID {
	dropped := map[model.SourceID]bool{}
	for _, dep := range res.Dependent() {
		a, b := dep.Pair.A, dep.Pair.B
		if len(d.ObjectsOf(a)) < len(d.ObjectsOf(b)) {
			dropped[a] = true
		} else {
			dropped[b] = true
		}
	}
	out := make([]model.SourceID, 0, len(dropped))
	for s := range dropped {
		out = append(out, s)
	}
	model.SortSources(out)
	return out
}
