package chaos

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// bootUpstream serves a fixed body with a marker header, echoing method and
// path so passthrough fidelity is checkable.
func bootUpstream(t testing.TB, body []byte) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Upstream-Marker", "yes")
		w.Header().Set("X-Echo-Path", r.URL.RequestURI())
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func bootProxy(t testing.TB, upstream *httptest.Server, f Faults) *Proxy {
	t.Helper()
	p, err := New("127.0.0.1:0", strings.TrimPrefix(upstream.URL, "http://"), f, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// With no faults, the proxy is invisible: status, headers (the snapshot CRC
// travels in one), and body pass through untouched.
func TestProxyPassthrough(t *testing.T) {
	want := []byte(`{"hello":"world"}`)
	up := bootUpstream(t, want)
	p := bootProxy(t, up, Faults{})

	resp, err := http.Get("http://" + p.Addr() + "/v1/ds/answer?as_of=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("status %d body %q, want 200 %q", resp.StatusCode, body, want)
	}
	if resp.Header.Get("X-Upstream-Marker") != "yes" {
		t.Fatal("upstream header dropped — adopt CRC headers would be lost the same way")
	}
	if got := resp.Header.Get("X-Echo-Path"); got != "/v1/ds/answer?as_of=3" {
		t.Fatalf("upstream saw path %q, want query preserved", got)
	}
	if st := p.Stats(); st.Proxied != 1 {
		t.Fatalf("stats = %+v, want Proxied 1", st)
	}
}

// Latency holds the request for the configured delay, then forwards it.
func TestProxyLatency(t *testing.T) {
	up := bootUpstream(t, []byte("ok"))
	p := bootProxy(t, up, Faults{LatencyMS: 150})
	start := time.Now()
	resp, err := http.Get("http://" + p.Addr() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("answered in %v, want >= 150ms", elapsed)
	}
	if st := p.Stats(); st.Delayed != 1 {
		t.Fatalf("stats = %+v, want Delayed 1", st)
	}
}

// ErrorProb 1 turns every request into an injected 503.
func TestProxyInjectedError(t *testing.T) {
	up := bootUpstream(t, []byte("ok"))
	p := bootProxy(t, up, Faults{ErrorProb: 1})
	resp, err := http.Get("http://" + p.Addr() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "chaos") {
		t.Fatalf("body %q, want injected marker", body)
	}
	if st := p.Stats(); st.Errors != 1 || st.Proxied != 0 {
		t.Fatalf("stats = %+v, want Errors 1 and nothing proxied", st)
	}
}

// A blackholed request accepts and never answers: only the client's own
// deadline gets it out — exactly the gray failure TryTimeout must bound.
func TestProxyBlackhole(t *testing.T) {
	up := bootUpstream(t, []byte("ok"))
	p := bootProxy(t, up, Faults{Blackhole: true})
	client := &http.Client{Timeout: 150 * time.Millisecond}
	start := time.Now()
	_, err := client.Get("http://" + p.Addr() + "/x")
	if err == nil {
		t.Fatal("blackholed request answered")
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("failed in %v, want to hang until the client deadline", elapsed)
	}
	if st := p.Stats(); st.Blackholed != 1 {
		t.Fatalf("stats = %+v, want Blackholed 1", st)
	}
}

// Reset aborts the connection without an HTTP answer.
func TestProxyReset(t *testing.T) {
	up := bootUpstream(t, []byte("ok"))
	p := bootProxy(t, up, Faults{Reset: true})
	_, err := http.Get("http://" + p.Addr() + "/x")
	if err == nil {
		t.Fatal("reset connection produced an HTTP response")
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("stats = %+v, want Resets 1", st)
	}
}

// TruncateAfter cuts the body mid-stream and aborts, so the client sees an
// unexpected EOF rather than a clean short response.
func TestProxyTruncate(t *testing.T) {
	up := bootUpstream(t, bytes.Repeat([]byte("a"), 1000))
	p := bootProxy(t, up, Faults{TruncateAfter: 100})
	resp, err := http.Get("http://" + p.Addr() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes cleanly, want a mid-body error", len(body))
	}
	if len(body) > 100 {
		t.Fatalf("client received %d bytes, want <= 100", len(body))
	}
	if st := p.Stats(); st.Truncated != 1 {
		t.Fatalf("stats = %+v, want Truncated 1", st)
	}
}

// BytesPerSec throttles the body without corrupting it.
func TestProxyThrottle(t *testing.T) {
	want := bytes.Repeat([]byte("b"), 50)
	up := bootUpstream(t, want)
	p := bootProxy(t, up, Faults{BytesPerSec: 100}) // 10-byte chunks per 100ms
	start := time.Now()
	resp, err := http.Get("http://" + p.Addr() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !bytes.Equal(body, want) {
		t.Fatalf("throttled body corrupted (err=%v, %d bytes)", err, len(body))
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("50 bytes at 100 B/s arrived in %v, want >= 300ms", elapsed)
	}
}

// Faults flip at runtime mid-connection: a pooled client that saw a fault
// observes the healthy path on its very next request.
func TestProxyRuntimeFlip(t *testing.T) {
	up := bootUpstream(t, []byte("ok"))
	p := bootProxy(t, up, Faults{ErrorProb: 1})
	client := &http.Client{}
	resp, err := client.Get("http://" + p.Addr() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted status %d, want 503", resp.StatusCode)
	}
	p.SetFaults(Faults{})
	resp, err = client.Get("http://" + p.Addr() + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healed status %d, want 200 on the same pooled client", resp.StatusCode)
	}
}

// The admin endpoint reads and replaces the fault set, validates inputs,
// and reports stats.
func TestAdminHandler(t *testing.T) {
	up := bootUpstream(t, []byte("ok"))
	p := bootProxy(t, up, Faults{})
	admin := httptest.NewServer(p.AdminHandler())
	t.Cleanup(admin.Close)

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(admin.URL+"/faults", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post(`{"latency_ms":250,"error_prob":0.5}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid POST status %d", resp.StatusCode)
	}
	if f := p.Faults(); f.LatencyMS != 250 || f.ErrorProb != 0.5 {
		t.Fatalf("faults after POST = %+v", f)
	}
	if resp := post(`{"latency":250}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field POST status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"error_prob":2}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range error_prob status %d, want 400", resp.StatusCode)
	}
	// The rejected POSTs must not have clobbered the accepted set.
	if f := p.Faults(); f.LatencyMS != 250 {
		t.Fatalf("rejected POST clobbered faults: %+v", f)
	}

	resp, err := http.Get(admin.URL + "/faults")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(body), `"latency_ms":250`) ||
		!strings.Contains(string(body), `"proxied"`) {
		t.Fatalf("GET /faults = %d %s", resp.StatusCode, body)
	}
}
