// Fault-injection proxy: the fleet's chaos harness.
//
// A Proxy sits between the router and one shard (its listen address goes on
// the ring; the shard's real address is the upstream) and forwards HTTP
// requests byte-for-byte until a fault is switched on. Faults are applied
// per request from the current fault set, so a long-lived pooled router
// connection picks up a fault flip on its very next request — no redial
// needed. The supported faults cover the gray-failure spectrum the router's
// resilience layer must absorb:
//
//   - Latency: hold each request for a fixed delay before forwarding.
//   - Blackhole: accept the connection, read the request, answer nothing —
//     the hang that distinguishes a gray failure from a clean crash.
//   - Reset: kill the connection immediately (RST where the platform
//     allows, via SO_LINGER 0).
//   - ErrorProb: answer a deterministic pseudo-random fraction of requests
//     with a canned 503.
//   - BytesPerSec: throttle the response body to a trickle.
//   - TruncateAfter: cut the response body after N bytes and abort the
//     connection, so the client sees an unexpected EOF mid-body.
//
// The fault set is runtime-mutable: in-process tests call SetFaults, and
// the `currents chaos` subcommand exposes AdminHandler on a second listener
// so shell harnesses (scripts/fleet_e2e.sh) flip faults mid-run with curl.
// Probabilistic faults draw from a seeded source, so a given seed injects
// the same fault schedule on every run.
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is one fault configuration, applied per proxied request. The zero
// value forwards everything untouched. JSON tags are the admin-endpoint
// wire names.
type Faults struct {
	// LatencyMS delays every request this many milliseconds before it is
	// forwarded upstream.
	LatencyMS int64 `json:"latency_ms"`
	// Blackhole accepts requests and never answers them: the connection
	// stays open until the client gives up or the proxy closes.
	Blackhole bool `json:"blackhole"`
	// Reset aborts every connection as soon as a request arrives.
	Reset bool `json:"reset"`
	// ErrorProb answers this fraction of requests (0..1) with a 503.
	ErrorProb float64 `json:"error_prob"`
	// BytesPerSec throttles response bodies to this rate (0 = unthrottled).
	BytesPerSec int `json:"bytes_per_sec"`
	// TruncateAfter cuts response bodies after this many bytes and aborts
	// the connection (0 = whole body).
	TruncateAfter int64 `json:"truncate_after"`
}

// Stats counts what the proxy has done, for assertions and the admin GET.
type Stats struct {
	Proxied    int64 `json:"proxied"`
	Delayed    int64 `json:"delayed"`
	Blackholed int64 `json:"blackholed"`
	Resets     int64 `json:"resets"`
	Errors     int64 `json:"errors_injected"`
	Truncated  int64 `json:"truncated"`
}

// Proxy is one fault-injection proxy in front of one upstream. Create with
// New, reconfigure with SetFaults at any time, and Close when done. Safe
// for concurrent use.
type Proxy struct {
	upstream string
	ln       net.Listener
	srv      *http.Server
	client   *http.Client
	done     chan struct{}

	mu  sync.Mutex
	f   Faults
	rng *rand.Rand

	proxied    atomic.Int64
	delayed    atomic.Int64
	blackholed atomic.Int64
	resets     atomic.Int64
	errs       atomic.Int64
	truncated  atomic.Int64
}

// New starts a proxy listening on listen (host:port, ":0" for an ephemeral
// port) and forwarding to the upstream host:port. The seed drives the
// probabilistic faults; the same seed injects the same schedule.
func New(listen, upstream string, f Faults, seed int64) (*Proxy, error) {
	if upstream == "" {
		return nil, fmt.Errorf("chaos: upstream address required")
	}
	if seed == 0 {
		seed = 1
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen %s: %w", listen, err)
	}
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		done:     make(chan struct{}),
		f:        f,
		rng:      rand.New(rand.NewSource(seed)),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
		}},
	}
	p.srv = &http.Server{Handler: p, ErrorLog: nil}
	go func() { _ = p.srv.Serve(ln) }()
	return p, nil
}

// Addr returns the proxy's bound listen address (host:port) — the address
// that goes on the ring in place of the upstream shard's.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetFaults replaces the active fault set; the next request observes it.
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.f = f
	p.mu.Unlock()
}

// Faults returns the active fault set.
func (p *Proxy) Faults() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.f
}

// Stats returns the proxy's lifetime counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Proxied:    p.proxied.Load(),
		Delayed:    p.delayed.Load(),
		Blackholed: p.blackholed.Load(),
		Resets:     p.resets.Load(),
		Errors:     p.errs.Load(),
		Truncated:  p.truncated.Load(),
	}
}

// Close stops the proxy immediately, releasing blackholed connections too
// (a graceful shutdown would wait on them forever).
func (p *Proxy) Close() error {
	close(p.done)
	return p.srv.Close()
}

// roll draws one deterministic uniform sample in [0, 1).
func (p *Proxy) roll() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}

// ServeHTTP applies the current fault set to one request, then forwards it.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f := p.Faults()
	if f.Reset {
		p.resets.Add(1)
		abortConn(w)
		return
	}
	if f.Blackhole {
		p.blackholed.Add(1)
		// Accept-then-hang: the request was read, nothing is ever written.
		// Released when the client gives up (its per-try deadline) or the
		// proxy closes.
		select {
		case <-r.Context().Done():
		case <-p.done:
		}
		return
	}
	if f.ErrorProb > 0 && p.roll() < f.ErrorProb {
		p.errs.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = io.WriteString(w, `{"error":"chaos: injected 503"}`+"\n")
		return
	}
	if f.LatencyMS > 0 {
		p.delayed.Add(1)
		t := time.NewTimer(time.Duration(f.LatencyMS) * time.Millisecond)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		case <-p.done:
			t.Stop()
			return
		}
	}

	u := "http://" + p.upstream + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, r.Body)
	if err != nil {
		http.Error(w, "chaos: "+err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		_, _ = fmt.Fprintf(w, `{"error":"chaos: upstream: %s"}%s`, err, "\n")
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	p.proxied.Add(1)
	p.copyBody(w, resp.Body, f)
}

// copyBody relays a response body, applying throttle and truncation faults.
func (p *Proxy) copyBody(w http.ResponseWriter, body io.Reader, f Faults) {
	if f.TruncateAfter > 0 {
		n, _ := io.CopyN(w, body, f.TruncateAfter)
		if n == f.TruncateAfter {
			// More may remain; abort the connection so the client sees a cut
			// stream, not a clean short response. Flush first — without it the
			// truncated prefix dies in the server's write buffer and the
			// client sees a clean connection drop instead of a mid-body cut.
			if _, err := io.CopyN(io.Discard, body, 1); err == nil {
				if fl, ok := w.(http.Flusher); ok {
					fl.Flush()
				}
				p.truncated.Add(1)
				panic(http.ErrAbortHandler)
			}
		}
		return
	}
	if f.BytesPerSec <= 0 {
		_, _ = io.Copy(w, body)
		return
	}
	// Throttle: move a tenth of the budget every 100ms.
	chunk := int64(f.BytesPerSec / 10)
	if chunk < 1 {
		chunk = 1
	}
	fl, _ := w.(http.Flusher)
	for {
		n, err := io.CopyN(w, body, chunk)
		if fl != nil && n > 0 {
			fl.Flush()
		}
		if err != nil {
			return
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-p.done:
			return
		}
	}
}

// abortConn tears the client connection down as abruptly as the platform
// allows: SO_LINGER 0 turns the close into an RST; if hijacking is not
// available the handler abort still drops the connection mid-request.
func abortConn(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = conn.Close()
}

// AdminHandler returns the runtime control surface, served on a separate
// listener by `currents chaos`:
//
//	GET  /faults  -> {"faults": {...}, "stats": {...}}
//	POST /faults  <- a Faults JSON object; replaces the active set
func (p *Proxy) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/faults", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeAdminJSON(w, http.StatusOK, map[string]any{"faults": p.Faults(), "stats": p.Stats()})
		case http.MethodPost:
			var f Faults
			dec := json.NewDecoder(io.LimitReader(r.Body, 1<<16))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&f); err != nil {
				writeAdminJSON(w, http.StatusBadRequest, map[string]string{"error": "bad faults: " + err.Error()})
				return
			}
			if f.ErrorProb < 0 || f.ErrorProb > 1 {
				writeAdminJSON(w, http.StatusBadRequest, map[string]string{"error": "error_prob must be in [0, 1]"})
				return
			}
			p.SetFaults(f)
			writeAdminJSON(w, http.StatusOK, map[string]any{"faults": p.Faults()})
		default:
			writeAdminJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"})
		}
	})
	return mux
}

func writeAdminJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(`{"error":"encoding failure"}`)
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(b, '\n'))
}
