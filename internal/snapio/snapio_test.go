package snapio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const testMagic = "SNAPTEST"

func frame(t *testing.T, version uint32, build func(w *Writer)) []byte {
	t.Helper()
	var w Writer
	build(&w)
	var buf bytes.Buffer
	if err := w.Frame(&buf, testMagic, version); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTripPrimitives(t *testing.T) {
	raw := frame(t, 1, func(w *Writer) {
		w.U8(200)
		w.Bool(true)
		w.Bool(false)
		w.U32(0xDEADBEEF)
		w.U64(1 << 60)
		w.I64(-42)
		w.F64(3.14159e-300)
		w.Str("hello, 世界")
		w.Str("")
	})
	r, version, err := OpenFrame(bytes.NewReader(raw), testMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	if version != 1 {
		t.Fatalf("version = %d", version)
	}
	if got := r.U8(); got != 200 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.F64(); got != 3.14159e-300 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Str(); got != "hello, 世界" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Str(); got != "" {
		t.Errorf("empty Str = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	raw := frame(t, 1, func(w *Writer) { w.U32(7) })
	raw[0] ^= 0xFF
	if _, _, err := OpenFrame(bytes.NewReader(raw), testMagic, 1); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestBadVersion(t *testing.T) {
	for _, v := range []uint32{0, 2, 99} {
		var w Writer
		w.U32(7)
		var buf bytes.Buffer
		if v == 0 {
			// Frame a zero version by patching a valid frame.
			if err := w.Frame(&buf, testMagic, 1); err != nil {
				t.Fatal(err)
			}
			b := buf.Bytes()
			b[MagicLen] = 0
			buf = *bytes.NewBuffer(b)
		} else if err := w.Frame(&buf, testMagic, v); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenFrame(bytes.NewReader(buf.Bytes()), testMagic, 1); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("version %d: err = %v, want ErrBadVersion", v, err)
		}
	}
}

func TestTruncatedEverywhere(t *testing.T) {
	raw := frame(t, 1, func(w *Writer) {
		w.U32(12345)
		w.Str("payload string")
		w.F64(1.5)
	})
	for cut := 0; cut < len(raw); cut++ {
		r, _, err := OpenFrame(bytes.NewReader(raw[:cut]), testMagic, 1)
		if err == nil {
			// Frame opened (cut beyond the CRC is impossible: cut < len).
			_ = r
			t.Fatalf("cut %d: frame unexpectedly opened", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
			!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
	}
}

func TestChecksumMismatch(t *testing.T) {
	raw := frame(t, 1, func(w *Writer) { w.Str("checksummed") })
	raw[MagicLen+4+8+2] ^= 0x01 // flip a payload bit
	if _, _, err := OpenFrame(bytes.NewReader(raw), testMagic, 1); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestReaderLatchesFirstError(t *testing.T) {
	raw := frame(t, 1, func(w *Writer) { w.U8(1) })
	r, _, err := OpenFrame(bytes.NewReader(raw), testMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.U8()
	_ = r.U64() // past the end: latches
	first := r.Err()
	if first == nil {
		t.Fatal("expected latched error")
	}
	_ = r.Str()
	_ = r.F64()
	if r.Err() != first {
		t.Fatal("error was overwritten")
	}
}

func TestCountAndIndexValidation(t *testing.T) {
	raw := frame(t, 1, func(w *Writer) {
		w.U32(1 << 30) // absurd count
	})
	r, _, err := OpenFrame(bytes.NewReader(raw), testMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Count(8); n != 0 || !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Count = %d, err = %v", n, r.Err())
	}

	raw = frame(t, 1, func(w *Writer) { w.U32(9) })
	r, _, err = OpenFrame(bytes.NewReader(raw), testMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	if i := r.Index(9); i != 0 || !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Index = %d, err = %v", i, r.Err())
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	raw := frame(t, 1, func(w *Writer) { w.U32(1); w.U32(2) })
	r, _, err := OpenFrame(bytes.NewReader(raw), testMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.U32()
	if err := r.Finish(); !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("Finish = %v, want trailing-bytes ErrCorrupt", err)
	}
}

func TestBadMagicLength(t *testing.T) {
	var w Writer
	var buf bytes.Buffer
	if err := w.Frame(&buf, "short", 1); err == nil {
		t.Fatal("expected error for short magic")
	}
}
