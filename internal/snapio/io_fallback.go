//go:build !linux && !darwin

package snapio

import (
	"fmt"
	"os"
)

// OpenMappedFile reads path into an 8-aligned private heap buffer and
// validates it as a section container — the portable fallback for platforms
// without mmap support. Loading is one sequential read instead of
// O(page faults), but the zero-decode cast path and the accessor API are
// identical, so callers never branch on platform.
func OpenMappedFile(path string, magic string, maxVersion uint32) (*Mapped, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.Size() > maxPayload {
		return nil, fmt.Errorf("%w: %s is %d bytes, exceeds %d", ErrCorrupt, path, st.Size(), maxPayload)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty file %s", ErrTruncated, path)
	}
	return OpenMappedBytes(data, magic, maxVersion)
}
