// Package snapio provides the framing and primitive encoding shared by the
// binary snapshot formats (dataset and session snapshots).
//
// A snapshot is a single frame:
//
//	magic    [8]byte   format identifier, ASCII, space-padded
//	version  uint32    format version (little endian)
//	length   uint64    payload length in bytes
//	payload  [length]byte
//	crc32    uint32    IEEE CRC of the payload
//
// Everything inside the payload is little endian and fixed width except
// strings, which are uvarint-length-prefixed UTF-8. The Reader is fully
// bounds-checked and error-latching: after the first failure every
// subsequent read returns the zero value and Err() reports the original
// problem, so decoders can be written as straight-line code that checks one
// error at the end — corrupt or truncated input yields a descriptive error,
// never a panic or partial state.
package snapio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// MagicLen is the fixed magic length in the frame header.
const MagicLen = 8

// maxPayload caps the declared payload length so a corrupted header cannot
// drive a huge allocation. 1 GiB is far above any realistic snapshot.
const maxPayload = 1 << 30

// Sentinel errors for frame-level failures; decode errors wrap these so
// callers can errors.Is on the class.
var (
	// ErrBadMagic reports a frame whose magic does not match the expected
	// format identifier.
	ErrBadMagic = errors.New("snapio: bad magic")
	// ErrBadVersion reports a frame version the decoder does not understand.
	ErrBadVersion = errors.New("snapio: unsupported version")
	// ErrTruncated reports input shorter than its frame or fields declare.
	ErrTruncated = errors.New("snapio: truncated input")
	// ErrChecksum reports a payload whose CRC does not match.
	ErrChecksum = errors.New("snapio: checksum mismatch")
	// ErrCorrupt reports any other structural inconsistency in the payload.
	ErrCorrupt = errors.New("snapio: corrupt payload")
)

// Writer accumulates a payload. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bits, so round-trips are
// bit-identical.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Str appends a uvarint-length-prefixed string.
func (w *Writer) Str(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a uint32-length-prefixed byte blob (e.g. a nested frame).
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Len returns the current payload size.
func (w *Writer) Len() int { return len(w.buf) }

// Frame writes the complete frame (header, payload, CRC) to out.
func (w *Writer) Frame(out io.Writer, magic string, version uint32) error {
	if len(magic) != MagicLen {
		return fmt.Errorf("snapio: magic %q must be %d bytes", magic, MagicLen)
	}
	var hdr [MagicLen + 4 + 8]byte
	copy(hdr[:], magic)
	binary.LittleEndian.PutUint32(hdr[MagicLen:], version)
	binary.LittleEndian.PutUint64(hdr[MagicLen+4:], uint64(len(w.buf)))
	if _, err := out.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := out.Write(w.buf); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(w.buf))
	_, err := out.Write(crc[:])
	return err
}

// Reader decodes a payload with latched errors and full bounds checking.
type Reader struct {
	buf []byte
	pos int
	err error
}

// OpenFrame reads and validates a complete frame from r: magic, a version
// no newer than maxVersion, declared length, and CRC. It returns a Reader
// over the payload and the frame's version.
func OpenFrame(r io.Reader, magic string, maxVersion uint32) (*Reader, uint32, error) {
	var hdr [MagicLen + 4 + 8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: frame header: %v", ErrTruncated, err)
	}
	if string(hdr[:MagicLen]) != magic {
		return nil, 0, fmt.Errorf("%w: have %q, want %q", ErrBadMagic, hdr[:MagicLen], magic)
	}
	version := binary.LittleEndian.Uint32(hdr[MagicLen:])
	if version == 0 || version > maxVersion {
		return nil, 0, fmt.Errorf("%w: version %d (decoder supports 1..%d)", ErrBadVersion, version, maxVersion)
	}
	length := binary.LittleEndian.Uint64(hdr[MagicLen+4:])
	if length > maxPayload {
		return nil, 0, fmt.Errorf("%w: declared payload %d exceeds %d", ErrCorrupt, length, maxPayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("%w: payload (%d bytes declared): %v", ErrTruncated, length, err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: checksum: %v", ErrTruncated, err)
	}
	if want, have := binary.LittleEndian.Uint32(crcBuf[:]), crc32.ChecksumIEEE(payload); want != have {
		return nil, 0, fmt.Errorf("%w: have %08x, want %08x", ErrChecksum, have, want)
	}
	return &Reader{buf: payload}, version, nil
}

// fail latches the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// need reports whether n more bytes are available, latching ErrTruncated
// otherwise.
func (r *Reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.pos, len(r.buf)))
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

// Bool reads a one-byte boolean, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	v := r.U8()
	if r.err == nil && v > 1 {
		r.fail(fmt.Errorf("%w: boolean byte %d", ErrCorrupt, v))
	}
	return v == 1
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 from its IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a uvarint-length-prefixed string.
func (r *Reader) Str() string {
	if r.err != nil {
		return ""
	}
	n, w := binary.Uvarint(r.buf[r.pos:])
	if w <= 0 {
		r.fail(fmt.Errorf("%w: bad string length at offset %d", ErrCorrupt, r.pos))
		return ""
	}
	r.pos += w
	if n > uint64(len(r.buf)-r.pos) {
		r.fail(fmt.Errorf("%w: string of %d bytes at offset %d of %d", ErrTruncated, n, r.pos, len(r.buf)))
		return ""
	}
	s := string(r.buf[r.pos : r.pos+uint64n(n)])
	r.pos += uint64n(n)
	return s
}

// uint64n narrows a validated uint64 to int.
func uint64n(n uint64) int { return int(n) }

// Blob reads a uint32-length-prefixed byte blob. The returned slice aliases
// the payload buffer and must not be mutated.
func (r *Reader) Blob() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if int64(n) > int64(len(r.buf)-r.pos) {
		r.fail(fmt.Errorf("%w: blob of %d bytes at offset %d of %d", ErrTruncated, n, r.pos, len(r.buf)))
		return nil
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

// Count reads a uint32 element count and validates it against the bytes
// remaining, assuming each element occupies at least minElemBytes — a
// corrupted count fails here instead of driving a huge allocation.
func (r *Reader) Count(minElemBytes int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if minElemBytes > 0 && int(n) > (len(r.buf)-r.pos)/minElemBytes {
		r.fail(fmt.Errorf("%w: count %d exceeds remaining payload", ErrCorrupt, n))
		return 0
	}
	return int(n)
}

// Index reads a uint32 and validates it is < limit.
func (r *Reader) Index(limit int) int {
	v := r.U32()
	if r.err != nil {
		return 0
	}
	if int64(v) >= int64(limit) {
		r.fail(fmt.Errorf("%w: index %d out of range [0,%d)", ErrCorrupt, v, limit))
		return 0
	}
	return int(v)
}

// Finish reports the latched error, or an error if undecoded payload bytes
// remain (a well-formed decoder consumes the payload exactly).
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.pos)
	}
	return nil
}

// Err returns the latched error without the trailing-bytes check.
func (r *Reader) Err() error { return r.err }
