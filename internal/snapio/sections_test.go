package snapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

const testSecMagic = "SCTESTM2"

// buildContainer writes a three-section container with typed payloads and
// returns the bytes.
func buildContainer(t *testing.T) ([]byte, []int32, []float64, []byte) {
	t.Helper()
	i32 := []int32{0, 3, 5, 9, -1, 1 << 30}
	f64 := []float64{0, 1.5, -2.25, 1e300}
	blob := []byte("hello, sections") // deliberately not 8-aligned in length
	var w SectionWriter
	w.Add(1, I32Bytes(i32))
	w.Add(2, F64Bytes(f64))
	w.Add(3, blob)
	var buf bytes.Buffer
	if err := w.WriteTo(&buf, testSecMagic, 2); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes(), i32, f64, blob
}

func TestSectionRoundTrip(t *testing.T) {
	data, i32, f64, blob := buildContainer(t)
	m, err := OpenMappedBytes(data, testSecMagic, 2)
	if err != nil {
		t.Fatalf("OpenMappedBytes: %v", err)
	}
	if m.Version() != 2 {
		t.Fatalf("Version = %d, want 2", m.Version())
	}
	if m.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", m.Size(), len(data))
	}
	gotI32, err := m.I32Section(1)
	if err != nil {
		t.Fatalf("I32Section: %v", err)
	}
	for i := range i32 {
		if gotI32[i] != i32[i] {
			t.Fatalf("i32[%d] = %d, want %d", i, gotI32[i], i32[i])
		}
	}
	gotF64, err := m.F64Section(2)
	if err != nil {
		t.Fatalf("F64Section: %v", err)
	}
	if !Float64SliceEqualBits(gotF64, f64) {
		t.Fatalf("f64 mismatch: %v vs %v", gotF64, f64)
	}
	gotBlob, ok := m.Section(3)
	if !ok || !bytes.Equal(gotBlob, blob) {
		t.Fatalf("blob = %q ok=%v, want %q", gotBlob, ok, blob)
	}
	if _, ok := m.Section(99); ok {
		t.Fatal("Section(99) should be absent")
	}
	if _, err := m.I64Section(99); err == nil {
		t.Fatal("I64Section(99) should error on missing section")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSectionMisalignedInput(t *testing.T) {
	data, i32, _, _ := buildContainer(t)
	// Shift the buffer by one byte so the base pointer is misaligned; the
	// opener must copy into an aligned buffer rather than produce
	// misaligned casts.
	shifted := make([]byte, len(data)+1)
	copy(shifted[1:], data)
	m, err := OpenMappedBytes(shifted[1:], testSecMagic, 2)
	if err != nil {
		t.Fatalf("OpenMappedBytes(misaligned): %v", err)
	}
	got, err := m.I32Section(1)
	if err != nil {
		t.Fatalf("I32Section: %v", err)
	}
	if got[5] != i32[5] {
		t.Fatalf("i32[5] = %d, want %d", got[5], i32[5])
	}
}

func TestSectionMappedFile(t *testing.T) {
	data, i32, f64, _ := buildContainer(t)
	path := filepath.Join(t.TempDir(), "world.snap2")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMappedFile(path, testSecMagic, 2)
	if err != nil {
		t.Fatalf("OpenMappedFile: %v", err)
	}
	gotI32, err := m.I32Section(1)
	if err != nil {
		t.Fatalf("I32Section: %v", err)
	}
	gotF64, err := m.F64Section(2)
	if err != nil {
		t.Fatalf("F64Section: %v", err)
	}
	if gotI32[3] != i32[3] || !Float64SliceEqualBits(gotF64, f64) {
		t.Fatal("mapped file sections differ from written tables")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// corrupt applies fn to a copy of data and asserts OpenMappedBytes fails
// with an error in class want.
func corrupt(t *testing.T, data []byte, want error, name string, fn func([]byte) []byte) {
	t.Helper()
	c := append([]byte(nil), data...)
	c = fn(c)
	if _, err := OpenMappedBytes(c, testSecMagic, 2); !errors.Is(err, want) {
		t.Errorf("%s: err = %v, want %v", name, err, want)
	}
}

// refreshCRC recomputes the header CRC after a deliberate table edit, so the
// test exercises the structural check rather than the checksum.
func refreshCRC(c []byte) {
	count := binary.LittleEndian.Uint32(c[MagicLen+8:])
	hdrLen := sectionHdrLen + sectionEntryLen*int(count) + 4
	binary.LittleEndian.PutUint32(c[hdrLen-4:], crc32.ChecksumIEEE(c[:hdrLen-4]))
}

func TestSectionCorruption(t *testing.T) {
	data, _, _, _ := buildContainer(t)

	corrupt(t, data, ErrTruncated, "empty", func(c []byte) []byte { return c[:0] })
	corrupt(t, data, ErrTruncated, "header-cut", func(c []byte) []byte { return c[:sectionHdrLen-1] })
	corrupt(t, data, ErrBadMagic, "magic", func(c []byte) []byte { c[0] ^= 0xFF; return c })
	corrupt(t, data, ErrBadVersion, "version-zero", func(c []byte) []byte {
		binary.LittleEndian.PutUint32(c[MagicLen:], 0)
		refreshCRC(c)
		return c
	})
	corrupt(t, data, ErrBadVersion, "version-future", func(c []byte) []byte {
		binary.LittleEndian.PutUint32(c[MagicLen:], 99)
		refreshCRC(c)
		return c
	})
	corrupt(t, data, ErrCorrupt, "endian", func(c []byte) []byte {
		c[MagicLen+4], c[MagicLen+7] = c[MagicLen+7], c[MagicLen+4]
		c[MagicLen+5], c[MagicLen+6] = c[MagicLen+6], c[MagicLen+5]
		refreshCRC(c)
		return c
	})
	corrupt(t, data, ErrChecksum, "crc-bitflip", func(c []byte) []byte {
		c[sectionHdrLen] ^= 0x01 // first table entry byte
		return c
	})
	corrupt(t, data, ErrCorrupt, "count-huge", func(c []byte) []byte {
		// The count cap is checked before the CRC, so no refresh needed.
		binary.LittleEndian.PutUint32(c[MagicLen+8:], maxSections+1)
		return c
	})
	corrupt(t, data, ErrTruncated, "count-past-end", func(c []byte) []byte {
		binary.LittleEndian.PutUint32(c[MagicLen+8:], maxSections)
		// CRC position moved; the shorter buffer fails the header length
		// check before any CRC comparison.
		return c
	})
	corrupt(t, data, ErrCorrupt, "misaligned-offset", func(c []byte) []byte {
		e := c[sectionHdrLen:]
		binary.LittleEndian.PutUint64(e[8:], binary.LittleEndian.Uint64(e[8:])+1)
		refreshCRC(c)
		return c
	})
	corrupt(t, data, ErrTruncated, "offset-into-header", func(c []byte) []byte {
		e := c[sectionHdrLen:]
		binary.LittleEndian.PutUint64(e[8:], 0)
		refreshCRC(c)
		return c
	})
	corrupt(t, data, ErrTruncated, "length-past-end", func(c []byte) []byte {
		e := c[sectionHdrLen:]
		binary.LittleEndian.PutUint64(e[16:], uint64(len(c)))
		refreshCRC(c)
		return c
	})
	corrupt(t, data, ErrCorrupt, "duplicate-id", func(c []byte) []byte {
		e := c[sectionHdrLen+sectionEntryLen:]
		binary.LittleEndian.PutUint32(e, 1) // second section claims id 1
		refreshCRC(c)
		return c
	})
	corrupt(t, data, ErrCorrupt, "overlap", func(c []byte) []byte {
		e0 := c[sectionHdrLen:]
		e1 := c[sectionHdrLen+sectionEntryLen:]
		// Point section 2 at section 1's offset with a nonzero length.
		binary.LittleEndian.PutUint64(e1[8:], binary.LittleEndian.Uint64(e0[8:]))
		refreshCRC(c)
		return c
	})
	// Truncation at every section boundary: cut the file at each section's
	// start and end; any cut below a section's declared end must fail.
	count := binary.LittleEndian.Uint32(data[MagicLen+8:])
	for i := 0; i < int(count); i++ {
		e := data[sectionHdrLen+sectionEntryLen*i:]
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		for _, cut := range []uint64{off, off + length - 1} {
			if cut >= uint64(len(data)) {
				continue
			}
			corrupt(t, data, ErrTruncated, "section-boundary-cut", func(c []byte) []byte { return c[:cut] })
		}
	}
}

func TestSectionWriterRejects(t *testing.T) {
	var w SectionWriter
	w.Add(1, []byte("a"))
	w.Add(1, []byte("b"))
	if err := w.WriteTo(&bytes.Buffer{}, testSecMagic, 2); err == nil {
		t.Fatal("duplicate section id should fail WriteTo")
	}
	var w2 SectionWriter
	if err := w2.WriteTo(&bytes.Buffer{}, "short", 2); err == nil {
		t.Fatal("bad magic length should fail WriteTo")
	}
}

func TestEmptySectionsAndReader(t *testing.T) {
	var w SectionWriter
	w.Add(7, nil)
	var buf bytes.Buffer
	if err := w.WriteTo(&buf, testSecMagic, 1); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMappedBytes(buf.Bytes(), testSecMagic, 2)
	if err != nil {
		t.Fatalf("OpenMappedBytes: %v", err)
	}
	if b, ok := m.Section(7); !ok || len(b) != 0 {
		t.Fatalf("empty section: %v ok=%v", b, ok)
	}
	if v, err := m.F64Section(7); err != nil || v != nil {
		t.Fatalf("empty typed view: %v err=%v", v, err)
	}

	// NewReader decodes an encoder-built payload embedded as a section.
	var enc Writer
	enc.U32(42)
	enc.Str("embedded")
	r := NewReader(enc.Payload())
	if got := r.U32(); got != 42 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.Str(); got != "embedded" {
		t.Fatalf("Str = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}
