//go:build linux || darwin

package snapio

import (
	"fmt"
	"os"
	"syscall"
)

// OpenMappedFile memory-maps path read-only and validates it as a section
// container. Sections alias the mapping; Close munmaps, after which no
// section may be touched. Page-cache residency is shared across every
// process mapping the same file — that is the multi-world hosting win.
func OpenMappedFile(path string, magic string, maxVersion uint32) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("%w: empty file %s", ErrTruncated, path)
	}
	if size > maxPayload {
		return nil, fmt.Errorf("%w: %s is %d bytes, exceeds %d", ErrCorrupt, path, size, maxPayload)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("snapio: mmap %s: %w", path, err)
	}
	m, err := newMapped(data, magic, maxVersion, func() error {
		return syscall.Munmap(data)
	})
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	return m, nil
}
