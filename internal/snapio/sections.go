// Section-table container: the mmap-friendly snapshot layout (format v2).
//
// The frame format in snapio.go serializes every table through an encoder,
// which forces the reader to decode — and therefore allocate — each table on
// load. The section container instead stores every dense table in its exact
// in-memory wire layout, 8-byte aligned, behind a CRC-covered header of
// section offsets:
//
//	magic    [8]byte   format identifier, ASCII
//	version  uint32    format version
//	order    uint32    byte-order marker (orderMarker written natively)
//	count    uint32    number of sections
//	reserved uint32    zero
//	table    [count]{id uint32, reserved uint32, offset uint64, length uint64}
//	crc32    uint32    IEEE CRC of everything above
//	pad to 8 bytes
//	sections, each starting 8-byte aligned, padded with zero bytes
//
// Loading is mmap (or one aligned read on platforms without mmap) plus
// structural validation of the header: offsets must be 8-aligned, in bounds,
// and non-overlapping. Section payloads are NOT checksummed — that is the
// point: a reader casts a section straight into a typed slice without
// touching its pages, so cold start is O(page faults) and every process
// mapping the same file shares one physical copy. Dense tables are written
// in host byte order; the order marker makes a snapshot written on a
// different-endian host fail loudly instead of decoding garbage.
package snapio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"unsafe"
)

// orderMarker is written in host byte order and compared against its
// little-endian reading; a mismatch means the snapshot was written on a
// host with different endianness (rebuild it there).
const orderMarker uint32 = 0x01020304

// sectionAlign is the alignment every section offset honors, chosen for the
// widest element type the tables hold (int64/float64).
const sectionAlign = 8

// sectionHdrLen is the fixed header prefix before the section table.
const sectionHdrLen = MagicLen + 4 + 4 + 4 + 4

// sectionEntryLen is one section-table entry.
const sectionEntryLen = 4 + 4 + 8 + 8

// maxSections caps the declared section count so a corrupt header cannot
// drive a huge allocation or scan.
const maxSections = 1 << 10

// SectionWriter accumulates named sections and writes the complete
// container. The zero value is ready to use. Section data slices are
// retained until WriteTo, not copied.
type SectionWriter struct {
	ids  []uint32
	data [][]byte
}

// Add appends a section. Ids must be unique; order is preserved.
func (w *SectionWriter) Add(id uint32, data []byte) {
	w.ids = append(w.ids, id)
	w.data = append(w.data, data)
}

// pad8 returns the zero padding needed to align n up to sectionAlign.
func pad8(n uint64) uint64 { return (sectionAlign - n%sectionAlign) % sectionAlign }

// WriteTo writes the full container (header, CRC-covered section table,
// aligned payloads) to out.
func (w *SectionWriter) WriteTo(out io.Writer, magic string, version uint32) error {
	if len(magic) != MagicLen {
		return fmt.Errorf("snapio: magic %q must be %d bytes", magic, MagicLen)
	}
	if len(w.ids) > maxSections {
		return fmt.Errorf("snapio: %d sections exceeds %d", len(w.ids), maxSections)
	}
	seen := map[uint32]bool{}
	for _, id := range w.ids {
		if seen[id] {
			return fmt.Errorf("snapio: duplicate section id %d", id)
		}
		seen[id] = true
	}

	hdrLen := uint64(sectionHdrLen + sectionEntryLen*len(w.ids) + 4)
	hdr := make([]byte, hdrLen+pad8(hdrLen))
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[MagicLen:], version)
	// The order marker is written through the same unsafe cast the dense
	// sections use, so it records the byte order of the payload tables.
	*(*uint32)(unsafe.Pointer(&hdr[MagicLen+4])) = orderMarker
	binary.LittleEndian.PutUint32(hdr[MagicLen+8:], uint32(len(w.ids)))

	off := uint64(len(hdr))
	for i, id := range w.ids {
		e := hdr[sectionHdrLen+sectionEntryLen*i:]
		binary.LittleEndian.PutUint32(e, id)
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], uint64(len(w.data[i])))
		off += uint64(len(w.data[i]))
		off += pad8(off)
	}
	binary.LittleEndian.PutUint32(hdr[hdrLen-4:],
		crc32.ChecksumIEEE(hdr[:hdrLen-4]))

	if _, err := out.Write(hdr); err != nil {
		return err
	}
	var zeros [sectionAlign]byte
	for _, data := range w.data {
		if _, err := out.Write(data); err != nil {
			return err
		}
		if p := pad8(uint64(len(data))); p > 0 {
			if _, err := out.Write(zeros[:p]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Mapped is a validated, read-only view over a section container — memory
// mapped when the platform supports it, a private heap copy otherwise.
// Sections alias the mapping and must be treated as immutable; Close
// releases the mapping, after which no section (or anything derived from
// one, including unsafe string views) may be touched again.
type Mapped struct {
	data     []byte
	version  uint32
	sections map[uint32][]byte
	closeFn  func() error
}

// OpenMappedBytes validates data as a section container. The bytes are
// copied into an 8-aligned private buffer only when data itself is
// misaligned (heap buffers almost always are aligned; fuzzing inputs may
// not be). Close on the result is a no-op.
func OpenMappedBytes(data []byte, magic string, maxVersion uint32) (*Mapped, error) {
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%sectionAlign != 0 {
		aligned := make([]uint64, (len(data)+7)/8)
		buf := unsafe.Slice((*byte)(unsafe.Pointer(&aligned[0])), len(data))
		copy(buf, data)
		data = buf
	}
	return newMapped(data, magic, maxVersion, nil)
}

// newMapped validates the container and builds the section index.
func newMapped(data []byte, magic string, maxVersion uint32, closeFn func() error) (*Mapped, error) {
	if len(data) < sectionHdrLen+4 {
		return nil, fmt.Errorf("%w: %d bytes is smaller than a section header", ErrTruncated, len(data))
	}
	if string(data[:MagicLen]) != magic {
		return nil, fmt.Errorf("%w: have %q, want %q", ErrBadMagic, data[:MagicLen], magic)
	}
	version := binary.LittleEndian.Uint32(data[MagicLen:])
	if version == 0 || version > maxVersion {
		return nil, fmt.Errorf("%w: version %d (decoder supports 1..%d)", ErrBadVersion, version, maxVersion)
	}
	if *(*uint32)(unsafe.Pointer(&data[MagicLen+4])) != orderMarker {
		return nil, fmt.Errorf("%w: snapshot was written on a host with different byte order — rebuild it", ErrCorrupt)
	}
	count := binary.LittleEndian.Uint32(data[MagicLen+8:])
	if count > maxSections {
		return nil, fmt.Errorf("%w: %d sections exceeds %d", ErrCorrupt, count, maxSections)
	}
	hdrLen := sectionHdrLen + sectionEntryLen*int(count) + 4
	if len(data) < hdrLen {
		return nil, fmt.Errorf("%w: header declares %d sections but only %d bytes present", ErrTruncated, count, len(data))
	}
	if want, have := binary.LittleEndian.Uint32(data[hdrLen-4:]),
		crc32.ChecksumIEEE(data[:hdrLen-4]); want != have {
		return nil, fmt.Errorf("%w: header CRC have %08x, want %08x", ErrChecksum, have, want)
	}

	type span struct {
		id       uint32
		off, end uint64
	}
	spans := make([]span, count)
	sections := make(map[uint32][]byte, count)
	minOff := uint64(hdrLen) + pad8(uint64(hdrLen))
	for i := range spans {
		e := data[sectionHdrLen+sectionEntryLen*i:]
		id := binary.LittleEndian.Uint32(e)
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		if off%sectionAlign != 0 {
			return nil, fmt.Errorf("%w: section %d offset %d is not %d-aligned", ErrCorrupt, id, off, sectionAlign)
		}
		if off < minOff || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %d [%d,+%d) outside payload of %d bytes", ErrTruncated, id, off, length, len(data))
		}
		if _, dup := sections[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section id %d", ErrCorrupt, id)
		}
		spans[i] = span{id: id, off: off, end: off + length}
		sections[id] = data[off : off+length : off+length]
	}
	sort.Slice(spans, func(a, b int) bool { return spans[a].off < spans[b].off })
	for i := 1; i < len(spans); i++ {
		if spans[i].off < spans[i-1].end {
			return nil, fmt.Errorf("%w: sections %d and %d overlap", ErrCorrupt, spans[i-1].id, spans[i].id)
		}
	}
	return &Mapped{data: data, version: version, sections: sections, closeFn: closeFn}, nil
}

// Version returns the container's format version.
func (m *Mapped) Version() uint32 { return m.version }

// Size returns the mapped length in bytes.
func (m *Mapped) Size() int64 { return int64(len(m.data)) }

// Bytes returns the full mapped container, header and all — the exact bytes
// on disk, which is what snapshot streaming serves to a bootstrapping
// replica. The slice aliases the mapping: callers must copy anything that
// outlives their pin on the session.
func (m *Mapped) Bytes() []byte { return m.data }

// Section returns the raw bytes of section id; ok is false when absent.
// The slice aliases the mapping.
func (m *Mapped) Section(id uint32) ([]byte, bool) {
	b, ok := m.sections[id]
	return b, ok
}

// Close releases the mapping. Idempotent; no section may be used after.
func (m *Mapped) Close() error {
	fn := m.closeFn
	m.closeFn = nil
	if fn != nil {
		return fn()
	}
	return nil
}

// The typed section views cast the raw bytes in place (zero copy). Length
// must divide evenly by the element size; alignment is guaranteed by the
// container's 8-aligned offsets.

// I32Section returns section id as an []int32 view.
func (m *Mapped) I32Section(id uint32) ([]int32, error) {
	b, err := m.need(id, 4)
	if err != nil || len(b) == 0 {
		return nil, err
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), nil
}

// U32Section returns section id as an []uint32 view.
func (m *Mapped) U32Section(id uint32) ([]uint32, error) {
	b, err := m.need(id, 4)
	if err != nil || len(b) == 0 {
		return nil, err
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4), nil
}

// I64Section returns section id as an []int64 view.
func (m *Mapped) I64Section(id uint32) ([]int64, error) {
	b, err := m.need(id, 8)
	if err != nil || len(b) == 0 {
		return nil, err
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8), nil
}

// F64Section returns section id as a []float64 view.
func (m *Mapped) F64Section(id uint32) ([]float64, error) {
	b, err := m.need(id, 8)
	if err != nil || len(b) == 0 {
		return nil, err
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8), nil
}

// need fetches a section and validates its length divides the element size.
func (m *Mapped) need(id uint32, elem int) ([]byte, error) {
	b, ok := m.sections[id]
	if !ok {
		return nil, fmt.Errorf("%w: section %d missing", ErrCorrupt, id)
	}
	if len(b)%elem != 0 {
		return nil, fmt.Errorf("%w: section %d length %d not a multiple of %d", ErrCorrupt, id, len(b), elem)
	}
	return b, nil
}

// The inverse casts, for writers laying dense tables into sections without
// an encode pass. The returned bytes alias the slice.

// I32Bytes views an []int32 as raw bytes.
func I32Bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

// U32Bytes views a []uint32 as raw bytes.
func U32Bytes(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

// I64Bytes views an []int64 as raw bytes.
func I64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// F64Bytes views a []float64 as raw bytes.
func F64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// NewReader returns a Reader over an in-memory payload — the bridge that
// lets the frame decoders in the v1 formats run over a byte section of a
// mapped container.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Payload exposes a Writer's accumulated bytes without framing, for
// embedding an encoder-built table as one section of a container.
func (w *Writer) Payload() []byte { return w.buf }

// Float64SliceEqualBits reports whether two float64 slices are bit-identical
// (NaNs compare equal to themselves); used by equivalence tests comparing
// mapped and decoded tables.
func Float64SliceEqualBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
