// Package profiling provides the shared -cpuprofile / -memprofile plumbing
// for the command-line tools, so performance work on the solvers can attach
// pprof evidence (go tool pprof <binary> <file>) without ad-hoc patching.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the profile destinations registered on a FlagSet.
type Flags struct {
	cpu, mem *string
	f        *os.File
}

// Register adds -cpuprofile and -memprofile to fs and returns the handle to
// Start/Stop profiling around the measured work.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when -cpuprofile was given. Pair it with Stop
// (or Finish in a defer).
func (p *Flags) Start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.f = f
	return nil
}

// Stop ends CPU profiling and writes the heap profile when -memprofile was
// given.
func (p *Flags) Stop() error {
	if p.f != nil {
		pprof.StopCPUProfile()
		if err := p.f.Close(); err != nil {
			return err
		}
		p.f = nil
	}
	if *p.mem == "" {
		return nil
	}
	f, err := os.Create(*p.mem)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize up-to-date allocation data
	return pprof.WriteHeapProfile(f)
}

// Finish is Stop for defer sites: failures are reported to stderr rather
// than returned.
func (p *Flags) Finish() {
	if err := p.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "profiling:", err)
	}
}
