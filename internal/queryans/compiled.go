// Compiled (columnar-index) execution of the probing planner.
//
// Planner is the reusable form of AnswerObjects: built once from a frozen
// dataset plus accuracies/dependence, it answers unlimited queries against
// precompiled claim lists, a dense accuracy vector and precomputed vote
// weights. The per-query loop is incremental where the map-based reference
// recomputes: after each probe only the objects covered by the newly probed
// source are rescored (the reference rescores every query object), and the
// independence products maintained for the gain heuristic are running
// products updated in probe order (the reference rebuilds them over the
// whole probed prefix at every step). Both changes preserve the reference
// trace bit-for-bit — unchanged objects would rescore to identical floats,
// and the running products multiply in the exact order the reference loops
// in — which the golden equivalence tests enforce.
package queryans

import (
	"errors"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/engine"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/stats"
	"sourcecurrents/internal/truth"
)

// Planner is a reusable compiled query planner. It is read-only after
// NewPlanner, so a single Planner may serve Answer calls from any number of
// concurrent goroutines.
type Planner struct {
	c   *dataset.Compiled
	cfg Config
	// acc and weights are the dense per-source accuracies and the
	// precomputed vote weights ln(n·A/(1−A)).
	acc     []float64
	weights []float64
	// dep returns the (symmetric) dependence posterior of a source-index
	// pair; never nil.
	dep func(a, b int32) float64
}

// NewPlanner compiles the configuration against d's columnar index,
// densifying cfg.Accuracy and wrapping cfg.Dependence. The Planner holds no
// reference to cfg's maps afterwards.
func NewPlanner(d *dataset.Dataset, cfg Config) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, errors.New("queryans: dataset must be frozen")
	}
	c := d.Compiled()
	acc := make([]float64, len(c.Sources))
	for i, s := range c.Sources {
		if a, ok := cfg.Accuracy[s]; ok {
			acc[i] = a
		} else {
			acc[i] = cfg.DefaultAccuracy
		}
	}
	var dep func(a, b int32) float64
	if cfg.Dependence == nil {
		dep = func(a, b int32) float64 { return 0 }
	} else {
		fn, sources := cfg.Dependence, c.Sources
		dep = func(a, b int32) float64 { return fn(sources[a], sources[b]) }
	}
	return newPlanner(c, cfg, acc, dep), nil
}

// NewPlannerDense is NewPlanner for callers that already hold dense inputs
// (the serving session): acc is indexed by c's source order and depTab is
// the flat nS×nS total (both-direction) dependence posterior table. Both are
// retained, not copied, and must not be mutated afterwards.
func NewPlannerDense(d *dataset.Dataset, cfg Config, acc, depTab []float64) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, errors.New("queryans: dataset must be frozen")
	}
	c := d.Compiled()
	nS := len(c.Sources)
	if len(acc) != nS || len(depTab) != nS*nS {
		return nil, errors.New("queryans: dense input sizes do not match the source count")
	}
	dep := func(a, b int32) float64 { return depTab[int(a)*nS+int(b)] }
	return newPlanner(c, cfg, acc, dep), nil
}

func newPlanner(c *dataset.Compiled, cfg Config, acc []float64, dep func(a, b int32) float64) *Planner {
	p := &Planner{c: c, cfg: cfg, acc: acc, dep: dep}
	p.weights = make([]float64, len(acc))
	for i, a := range acc {
		p.weights[i] = truth.WeightOf(a, cfg.N)
	}
	return p
}

// candidate is one source covering at least one query object.
type candidate struct {
	si int32
	// pos lists the covered query positions in query order and posObj the
	// object index at each position (duplicates in the query stay
	// duplicated, mirroring the reference coverage lists).
	pos, posObj []int32
	// obj/val list the distinct covered (object, value) index pairs.
	obj, val []int32
}

// claimRef is one probed source's claim about a query object.
type claimRef struct{ si, vi int32 }

// answerScratch is one worker's buffer set for rescoring objects.
type answerScratch struct {
	rank    []int32
	groupLo []int32
	scores  []float64
	probs   []float64
}

// Answer probes sources to answer the value of each query object, returning
// the step-by-step trace. Safe for concurrent callers.
func (p *Planner) Answer(query []model.ObjectID) (*Result, error) {
	if len(query) == 0 {
		return nil, errors.New("queryans: empty query")
	}
	c := p.c
	cfg := p.cfg
	eng := cfg.Engine()

	// Query positions per distinct object index, in query order.
	qIdx := make([]int32, len(query))
	positions := map[int32][]int32{}
	for i, o := range query {
		oi, ok := c.ObjectIndex(o)
		if !ok {
			qIdx[i] = -1
			continue
		}
		qIdx[i] = oi
		positions[oi] = append(positions[oi], int32(i))
	}

	// Candidate sources: those covering at least one query object, compiled
	// in parallel (one index-addressed slot per source) and kept in source
	// order — the reference iteration order.
	perSource := engine.MapN(eng, len(c.Sources), func(si int) candidate {
		cand := candidate{si: int32(si)}
		for i, oi := range qIdx {
			if oi < 0 {
				continue
			}
			k := c.ClaimOf(int32(si), oi)
			if k < 0 {
				continue
			}
			// Record the distinct (object, value) pair at the object's first
			// query position only — O(1) dedupe of duplicate query entries.
			if positions[oi][0] == int32(i) {
				cand.obj = append(cand.obj, oi)
				cand.val = append(cand.val, c.SrcVal[k])
			}
			cand.pos = append(cand.pos, int32(i))
			cand.posObj = append(cand.posObj, oi)
		}
		return cand
	})
	var candidates []candidate
	for _, cand := range perSource {
		if len(cand.pos) > 0 {
			candidates = append(candidates, cand)
		}
	}
	max := len(candidates)
	if cfg.MaxSources > 0 && cfg.MaxSources < max {
		max = cfg.MaxSources
	}

	res := &Result{}
	probed := make([]int32, 0, max)
	probedSet := make([]bool, len(c.Sources))
	// objCov[oi] accumulates the probability that oi is already covered by
	// an independent probed source (the gain heuristic's state).
	objCov := map[int32]float64{}
	// indepAcc[ci] is candidate ci's running independence product over the
	// probed prefix, multiplied in probe order — exactly the product the
	// reference rebuilds from scratch at each step.
	indepAcc := make([]float64, len(candidates))
	for i := range indepAcc {
		indepAcc[i] = 1
	}
	// probedClaims[oi] collects the probed sources' claims per query object.
	probedClaims := map[int32][]claimRef{}
	// cur is the current answer per query position; uncovered objects keep
	// the empty answer, as in the reference.
	cur := make([]Answer, len(query))
	for i, o := range query {
		cur[i] = Answer{Object: o}
	}
	newScratch := func() *answerScratch {
		return &answerScratch{
			rank:    make([]int32, max),
			groupLo: make([]int32, 0, c.MaxGroupsPerObject()+1),
			scores:  make([]float64, c.MaxGroupsPerObject()),
			probs:   make([]float64, c.MaxGroupsPerObject()),
		}
	}

	for len(probed) < max {
		ci, gain := p.pickNext(candidates, probedSet, indepAcc, objCov)
		if ci < 0 {
			break
		}
		next := &candidates[ci]
		probed = append(probed, next.si)
		probedSet[next.si] = true
		// next's running product is Π over the previous probes of
		// (1−dep(next, p)), multiplied in probe order — bit-identical to the
		// product the reference rebuilds per covered object at this step.
		indepNext := indepAcc[ci]
		// Charge every still-unprobed candidate the new probe exactly once,
		// keeping each running product in probe order.
		for j := range candidates {
			if !probedSet[candidates[j].si] {
				indepAcc[j] *= 1 - p.dep(candidates[j].si, next.si)
			}
		}
		accNext := p.acc[next.si]
		for _, oi := range next.posObj {
			objCov[oi] = 1 - (1-objCov[oi])*(1-accNext*indepNext)
		}
		// Incremental answer refresh: only objects the new probe covers can
		// change; rescore them in parallel (distinct positions per object).
		// Each object's claim list is kept sorted by (value, source) as it
		// grows, so rescoring never re-sorts — value-index order is string
		// order, giving exactly the reference's sorted-value group walk.
		for i, oi := range next.obj {
			cl := probedClaims[oi]
			nc := claimRef{si: next.si, vi: next.val[i]}
			at := sort.Search(len(cl), func(k int) bool {
				if cl[k].vi != nc.vi {
					return cl[k].vi > nc.vi
				}
				return cl[k].si > nc.si
			})
			cl = append(cl, claimRef{})
			copy(cl[at+1:], cl[at:])
			cl[at] = nc
			probedClaims[oi] = cl
		}
		engine.ForNScratch(eng, len(next.obj), newScratch, func(i int, sc *answerScratch) {
			oi := next.obj[i]
			a := p.scoreObject(oi, probedClaims[oi], sc)
			for _, pos := range positions[oi] {
				cur[pos] = a
			}
		})
		answers := make([]Answer, len(cur))
		copy(answers, cur)
		res.Steps = append(res.Steps, Step{Source: c.Sources[next.si], Gain: gain, Answers: answers})
		if cfg.StopProb > 0 && stable(answers, query, cfg.StopProb) {
			break
		}
	}
	if len(res.Steps) > 0 {
		res.Final = res.Steps[len(res.Steps)-1].Answers
	}
	res.Probed = make([]model.SourceID, len(probed))
	for i, si := range probed {
		res.Probed[i] = c.Sources[si]
	}
	return res, nil
}

// pickNext chooses the next candidate under the configured policy,
// mirroring the reference's iteration order (candidates ascending by source
// id, first maximum wins).
func (p *Planner) pickNext(candidates []candidate, probedSet []bool,
	indepAcc []float64, objCov map[int32]float64) (int, float64) {
	best, bestGain := -1, -1.0
	for ci := range candidates {
		cand := &candidates[ci]
		if probedSet[cand.si] {
			continue
		}
		var gain float64
		switch p.cfg.Policy {
		case ByID:
			return ci, 0
		case AccuracyCoverage:
			gain = p.acc[cand.si] * float64(len(cand.pos))
		case GreedyGain:
			// Uncovered mass sums per query entry (duplicates included),
			// not per distinct object — the reference's coverage semantics.
			var uncovered float64
			for _, oi := range cand.posObj {
				uncovered += 1 - objCov[oi]
			}
			gain = p.acc[cand.si] * indepAcc[ci] * uncovered
		}
		if gain > bestGain {
			best, bestGain = ci, gain
		}
	}
	if best < 0 {
		return -1, 0
	}
	return best, bestGain
}

// scoreObject reruns dependence-discounted accuracy-weighted voting for one
// query object over the probed claims (pre-sorted by value then source),
// mirroring the reference computeAnswers: values in sorted order, sources
// ranked by (accuracy desc, id asc), later same-value sources discounted by
// their dependence on earlier ones, softmax over the sorted candidates.
func (p *Planner) scoreObject(oi int32, cl []claimRef, sc *answerScratch) Answer {
	c := p.c
	o := c.Objects[oi]
	if len(cl) == 0 {
		return Answer{Object: o}
	}
	groupLo := sc.groupLo[:0]
	scores := sc.scores[:0]
	for lo := 0; lo < len(cl); {
		hi := lo
		for hi < len(cl) && cl[hi].vi == cl[lo].vi {
			hi++
		}
		groupLo = append(groupLo, int32(lo))
		scores = append(scores, p.scoreGroup(cl[lo:hi], sc))
		lo = hi
	}
	nGroups := len(scores)
	probs := sc.probs[:nGroups]
	// Candidate sets are never empty here, so NormalizeLogInto cannot fail.
	_ = stats.NormalizeLogInto(probs, scores)
	bestK, bestP := 0, -1.0
	for k := 0; k < nGroups; k++ {
		if probs[k] > bestP {
			bestK, bestP = k, probs[k]
		}
	}
	return Answer{Object: o, Value: c.Values[cl[groupLo[bestK]].vi], Prob: bestP}
}

// scoreGroup scores one value group: rank the asserting probed sources by
// (accuracy desc, id asc) and sum each one's weight times the probability it
// did not copy from an earlier-ranked group member.
func (p *Planner) scoreGroup(group []claimRef, sc *answerScratch) float64 {
	k := len(group)
	rank := sc.rank[:k]
	for i := range rank {
		rank[i] = int32(i)
	}
	// Insertion sort over a strict total order (ids are distinct), so the
	// permutation matches the reference's sort.Slice result exactly.
	for i := 1; i < k; i++ {
		r := rank[i]
		j := i - 1
		for j >= 0 {
			a, b := group[r].si, group[rank[j]].si
			aa, ab := p.acc[a], p.acc[b]
			if aa != ab {
				if !(aa > ab) {
					break
				}
			} else if !(a < b) {
				break
			}
			rank[j+1] = rank[j]
			j--
		}
		rank[j+1] = r
	}
	var score float64
	for i := 0; i < k; i++ {
		s := group[rank[i]].si
		f := 1.0
		for j := 0; j < i; j++ {
			f *= 1 - p.cfg.CopyRate*p.dep(s, group[rank[j]].si)
		}
		score += p.weights[s] * f
	}
	return score
}
