// Compiled (columnar-index) execution of the probing planner.
//
// Planner is the reusable form of AnswerObjects: built once from a frozen
// dataset plus accuracies/dependence, it answers unlimited queries against
// precompiled claim lists, a dense accuracy vector and precomputed vote
// weights. Three structural optimizations keep the per-query loop off the
// reference's O(P²·|query|) recompute shape without changing a single bit of
// the output (the golden equivalence tests enforce bit-identity against
// answerObjectsMaps):
//
//   - Lazy-greedy (CELF) probe selection. The reference rescans every
//     candidate's gain at every probe step. Under the GreedyGain policy each
//     candidate's gain is monotone non-increasing across steps — the
//     independence product only multiplies factors in [0,1] and the
//     uncovered-object mass only shrinks — so a previously computed gain is
//     an upper bound on the current one. pickNext therefore keeps candidates
//     in a max-heap of stale bounds, re-evaluating only the top until the
//     top's gain is fresh for the current step. The heap orders ties by
//     candidate index (ascending source id), which reproduces the
//     reference's first-maximum-wins scan exactly: when a fresh top is
//     selected, every other candidate's true gain is bounded by a stale
//     value that lost to the top under the reference's ordering. Gains are
//     evaluated with the same expression, the same running independence
//     product (multiplied in probe order) and the same query-order
//     uncovered sum as the reference, so every gain the two paths both
//     compute is the same float64.
//
//   - Incremental group scoring. The reference rescores every value group
//     of every covered object after every probe, and each group score is an
//     O(k²) dependence-discounted sum. But a group's score is a pure
//     function of its members: a probe changes exactly one group per
//     covered object (the one holding the value it asserts), so every other
//     group's cached score is bit-for-bit what the reference would
//     recompute. The changed group keeps its members in reference rank
//     order (accuracy desc, id asc) with each member's discount product
//     cached; a member that ranks last extends the score in O(k) with the
//     exact same multiply-and-add sequence the reference uses, and a
//     mid-rank insert recomputes the affected suffix in reference order.
//
//   - Pooled per-request state. All planning state — the query-slot
//     interning, the candidate CSR built in two parallel passes (count,
//     fill), the coverage/independence vectors, the heap, the per-object
//     group tables and the softmax buffers — lives in a planScratch
//     recycled through a sync.Pool shared by the planner and every planner
//     Derive returns, so a steady-state Answer call allocates only the
//     Result it hands to the caller.
//
// Accuracy and dependence inputs are probabilities; values outside [0,1]
// void the monotonicity the lazy evaluation relies on (the map reference
// never promised sensible output for them either).
package queryans

import (
	"errors"
	"sync"
	"sync/atomic"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/engine"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/stats"
	"sourcecurrents/internal/truth"
)

// Planner is a reusable compiled query planner. It is read-only after
// NewPlanner, so a single Planner may serve Answer calls from any number of
// concurrent goroutines (each call leases its own scratch from the shared
// pool).
type Planner struct {
	c   *dataset.Compiled
	cfg Config
	// acc and weights are the dense per-source accuracies and the
	// precomputed vote weights ln(n·A/(1−A)).
	acc     []float64
	weights []float64
	// dep returns the (symmetric) dependence posterior of a source-index
	// pair; never nil. The hot loops bypass it when a faster form exists:
	// depTab is the flat nS×nS posterior table when the planner was built
	// dense, and depZero is set when every pair is independent — both give
	// bit-identical arithmetic (a direct load is the same float64 the
	// closure returns, and a zero dependence multiplies by exactly 1).
	dep     func(a, b int32) float64
	depTab  []float64
	depZero bool
	// scratch pools *planScratch between Answer calls. Derived planners
	// share it, so per-request buffers amortize across every planner built
	// over the same compiled index.
	scratch *sync.Pool
}

// NewPlanner compiles the configuration against d's columnar index,
// densifying cfg.Accuracy and wrapping cfg.Dependence. The Planner holds no
// reference to cfg's maps afterwards.
func NewPlanner(d *dataset.Dataset, cfg Config) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, errors.New("queryans: dataset must be frozen")
	}
	c := d.Compiled()
	acc := make([]float64, c.NumSources())
	for i := range acc {
		if a, ok := cfg.Accuracy[c.Source(i)]; ok {
			acc[i] = a
		} else {
			acc[i] = cfg.DefaultAccuracy
		}
	}
	var dep func(a, b int32) float64
	depZero := cfg.Dependence == nil
	if depZero {
		dep = func(a, b int32) float64 { return 0 }
	} else {
		fn, sources := cfg.Dependence, c.SourceIDs()
		dep = func(a, b int32) float64 { return fn(sources[a], sources[b]) }
	}
	p := newPlanner(c, cfg, acc, dep)
	p.depZero = depZero
	return p, nil
}

// NewPlannerDense is NewPlanner for callers that already hold dense inputs
// (the serving session): acc is indexed by c's source order and depTab is
// the flat nS×nS total (both-direction) dependence posterior table. Both are
// retained, not copied, and must not be mutated afterwards.
func NewPlannerDense(d *dataset.Dataset, cfg Config, acc, depTab []float64) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, errors.New("queryans: dataset must be frozen")
	}
	c := d.Compiled()
	nS := c.NumSources()
	if len(acc) != nS || len(depTab) != nS*nS {
		return nil, errors.New("queryans: dense input sizes do not match the source count")
	}
	dep := func(a, b int32) float64 { return depTab[int(a)*nS+int(b)] }
	p := newPlanner(c, cfg, acc, dep)
	p.depTab = depTab
	return p, nil
}

// NewPlannerFromCompiled is NewPlannerDense for callers that hold a
// compiled view directly — a session serving straight from a mapped
// snapshot, which has no materialized Dataset to hand over.
func NewPlannerFromCompiled(c *dataset.Compiled, cfg Config, acc, depTab []float64) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, errors.New("queryans: nil compiled view")
	}
	nS := c.NumSources()
	if len(acc) != nS || len(depTab) != nS*nS {
		return nil, errors.New("queryans: dense input sizes do not match the source count")
	}
	dep := func(a, b int32) float64 { return depTab[int(a)*nS+int(b)] }
	p := newPlanner(c, cfg, acc, dep)
	p.depTab = depTab
	return p, nil
}

func newPlanner(c *dataset.Compiled, cfg Config, acc []float64, dep func(a, b int32) float64) *Planner {
	p := &Planner{c: c, cfg: cfg, acc: acc, dep: dep}
	p.weights = make([]float64, len(acc))
	for i, a := range acc {
		p.weights[i] = truth.WeightOf(a, cfg.N)
	}
	p.scratch = &sync.Pool{New: func() any { return new(planScratch) }}
	return p
}

// Derive returns a lightweight planner over the same compiled index, dense
// accuracies and dependence lookup, under a different per-call configuration
// (policy, probe cap, early stopping, parallelism). cfg's Accuracy and
// Dependence fields are ignored — the parent's dense state is reused — and
// the scratch pool is shared, so derived planners keep the zero-allocation
// serve path. Vote weights are recycled unless cfg.N differs.
func (p *Planner) Derive(cfg Config) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	np := &Planner{c: p.c, cfg: cfg, acc: p.acc, weights: p.weights, dep: p.dep,
		depTab: p.depTab, depZero: p.depZero, scratch: p.scratch}
	if cfg.N != p.cfg.N {
		np.weights = make([]float64, len(p.acc))
		for i, a := range p.acc {
			np.weights[i] = truth.WeightOf(a, cfg.N)
		}
	}
	return np, nil
}

// answerScratch is one worker's softmax buffer.
type answerScratch struct {
	probs []float64
}

// heapEntry is one candidate's (possibly stale) gain bound in the CELF
// max-heap. round records the probe step the gain was evaluated at; a
// popped entry whose round matches the current step holds a fresh gain and
// is the exact greedy choice.
type heapEntry struct {
	gain  float64
	ci    int32
	round int32
}

// heapLess orders the lazy-evaluation heap: gain descending, candidate
// index (== source order) ascending on ties — the reference's
// first-maximum-wins scan order.
func heapLess(a, b heapEntry) bool {
	if a.gain != b.gain {
		return a.gain > b.gain
	}
	return a.ci < b.ci
}

func siftDown(h []heapEntry, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		best := l
		if r := l + 1; r < len(h) && heapLess(h[r], h[l]) {
			best = r
		}
		if !heapLess(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func heapify(h []heapEntry) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func heapPop(h *[]heapEntry) heapEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	if n > 0 {
		siftDown(s, 0)
	}
	return top
}

func heapPush(h *[]heapEntry, e heapEntry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

// planScratch is the pooled per-request planning state. Every slice is
// grown to the request's dimensions and fully initialized before use, so a
// recycled scratch carries no information between requests.
type planScratch struct {
	// Query-slot interning: qSlot maps each query position to a compact
	// slot (-1 for objects absent from the dataset); slots maps a slot back
	// to its compiled object index, in first-occurrence order.
	qSlot  []int32
	slotOf map[int32]int32
	slots  []int32
	// posStart/posList CSR: the query positions of each slot, query order.
	posStart []int32
	posCur   []int32
	posList  []int32

	// Per-source coverage counts from the parallel counting pass.
	covCount []int32
	objCount []int32

	// Candidate CSR, candidates in source order. candPosSlot lists the slot
	// of every covered query entry (duplicates included, query order) and
	// candSlot/candVal the distinct covered (slot, value) pairs in slot
	// (== first-occurrence) order.
	candSrc      []int32
	candPosStart []int32
	candObjStart []int32
	candPosSlot  []int32
	candSlot     []int32
	candVal      []int32

	// Probe-loop state.
	probedSet []bool
	probed    []int32 // candidate indexes in probe order
	indepAcc  []float64
	objCov    []float64
	heap      []heapEntry

	// Per-slot probed-member state. memStart[slot] is the base of slot's
	// region in rankSi/rankF (capacity = the slot's candidate count) and
	// memLen its fill. Within a region members are grouped by value in
	// sorted-value order; inside a group they are kept in reference rank
	// order (accuracy desc, id asc) with rankF caching each member's
	// dependence-discount product.
	memStart []int32
	memLen   []int32
	rankSi   []int32
	rankF    []float64

	// Per-slot value-group table, stride groupStride per slot: the distinct
	// claimed values in sorted order, each group's member count and its
	// cached score.
	groupStride int
	groupNum    []int32
	groupVi     []int32
	groupLen    []int32
	groupScore  []float64

	// cur is the current answer per query position.
	cur []Answer

	// workerScore hands one softmax buffer to each rescoring worker via an
	// atomic cursor (reset per probe).
	workerScore []answerScratch
	scoreIdx    atomic.Int32
}

// grown returns s with length n, reusing capacity when possible. Contents
// are unspecified; the caller initializes what it reads.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// containsSlot reports whether sorted (ascending) contains s.
func containsSlot(sorted []int32, s int32) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == s
}

// gainOf evaluates candidate ci's current GreedyGain exactly as the
// reference does: uncovered mass summed per query entry in query order
// (duplicates included), times the running independence product, times
// accuracy — same expression, same association order, same float64.
func (p *Planner) gainOf(sc *planScratch, ci int32) float64 {
	var uncovered float64
	for _, slot := range sc.candPosSlot[sc.candPosStart[ci]:sc.candPosStart[ci+1]] {
		uncovered += 1 - sc.objCov[slot]
	}
	return p.acc[sc.candSrc[ci]] * sc.indepAcc[ci] * uncovered
}

// Answer probes sources to answer the value of each query object, returning
// the step-by-step trace. Safe for concurrent callers. The returned Result
// is freshly allocated and owned by the caller; all intermediate state is
// recycled.
func (p *Planner) Answer(query []model.ObjectID) (*Result, error) {
	if len(query) == 0 {
		return nil, errors.New("queryans: empty query")
	}
	c := p.c
	cfg := p.cfg
	eng := cfg.Engine()
	nQ := len(query)
	nS := c.NumSources()

	sc, _ := p.scratch.Get().(*planScratch)
	if sc == nil {
		sc = new(planScratch)
	}
	if sc.slotOf == nil {
		sc.slotOf = map[int32]int32{}
	} else {
		clear(sc.slotOf)
	}

	// Query positions per distinct object, interned into compact slots in
	// first-occurrence order (slot order == the reference's distinct-pair
	// recording order).
	sc.qSlot = grown(sc.qSlot, nQ)
	sc.cur = grown(sc.cur, nQ)
	sc.slots = sc.slots[:0]
	for i, o := range query {
		sc.cur[i] = Answer{Object: o}
		oi, ok := c.ObjectIndex(o)
		if !ok {
			sc.qSlot[i] = -1
			continue
		}
		slot, ok := sc.slotOf[oi]
		if !ok {
			slot = int32(len(sc.slots))
			sc.slotOf[oi] = slot
			sc.slots = append(sc.slots, oi)
		}
		sc.qSlot[i] = slot
	}
	nSlots := len(sc.slots)

	sc.posStart = grown(sc.posStart, nSlots+1)
	for i := range sc.posStart {
		sc.posStart[i] = 0
	}
	for _, s := range sc.qSlot {
		if s >= 0 {
			sc.posStart[s+1]++
		}
	}
	for i := 0; i < nSlots; i++ {
		sc.posStart[i+1] += sc.posStart[i]
	}
	sc.posCur = grown(sc.posCur, nSlots)
	copy(sc.posCur, sc.posStart[:nSlots])
	sc.posList = grown(sc.posList, int(sc.posStart[nSlots]))
	for i, s := range sc.qSlot {
		if s >= 0 {
			sc.posList[sc.posCur[s]] = int32(i)
			sc.posCur[s]++
		}
	}

	// Candidate sources, compiled in two parallel index-addressed passes
	// (count coverage per source, then fill the CSR regions) and kept in
	// source order — the reference iteration order.
	sc.covCount = grown(sc.covCount, nS)
	sc.objCount = grown(sc.objCount, nS)
	engine.ForN(eng, nS, func(si int) {
		var nPos, nObj int32
		for slot, oi := range sc.slots {
			if c.ClaimOf(int32(si), oi) >= 0 {
				nObj++
				nPos += sc.posStart[slot+1] - sc.posStart[slot]
			}
		}
		sc.covCount[si] = nPos
		sc.objCount[si] = nObj
	})
	sc.candSrc = sc.candSrc[:0]
	sc.candPosStart = sc.candPosStart[:0]
	sc.candObjStart = sc.candObjStart[:0]
	var totPos, totObj int32
	for si := 0; si < nS; si++ {
		if sc.objCount[si] == 0 {
			continue
		}
		sc.candSrc = append(sc.candSrc, int32(si))
		sc.candPosStart = append(sc.candPosStart, totPos)
		sc.candObjStart = append(sc.candObjStart, totObj)
		totPos += sc.covCount[si]
		totObj += sc.objCount[si]
	}
	nCand := len(sc.candSrc)
	sc.candPosStart = append(sc.candPosStart, totPos)
	sc.candObjStart = append(sc.candObjStart, totObj)
	sc.candPosSlot = grown(sc.candPosSlot, int(totPos))
	sc.candSlot = grown(sc.candSlot, int(totObj))
	sc.candVal = grown(sc.candVal, int(totObj))
	engine.ForN(eng, nCand, func(ci int) {
		si := sc.candSrc[ci]
		k := sc.candObjStart[ci]
		for slot, oi := range sc.slots {
			cl := c.ClaimOf(si, oi)
			if cl < 0 {
				continue
			}
			sc.candSlot[k] = int32(slot)
			sc.candVal[k] = c.SrcVal[cl]
			k++
		}
		region := sc.candSlot[sc.candObjStart[ci]:k]
		j := sc.candPosStart[ci]
		for _, s := range sc.qSlot {
			if s >= 0 && containsSlot(region, s) {
				sc.candPosSlot[j] = s
				j++
			}
		}
	})

	maxProbes := nCand
	if cfg.MaxSources > 0 && cfg.MaxSources < maxProbes {
		maxProbes = cfg.MaxSources
	}

	// Per-slot member regions sized to each slot's candidate count, plus
	// the per-slot value-group tables.
	sc.memStart = grown(sc.memStart, nSlots+1)
	for i := range sc.memStart {
		sc.memStart[i] = 0
	}
	for _, slot := range sc.candSlot[:totObj] {
		sc.memStart[slot+1]++
	}
	for i := 0; i < nSlots; i++ {
		sc.memStart[i+1] += sc.memStart[i]
	}
	sc.memLen = grown(sc.memLen, nSlots)
	for i := range sc.memLen {
		sc.memLen[i] = 0
	}
	sc.rankSi = grown(sc.rankSi, int(totObj))
	sc.rankF = grown(sc.rankF, int(totObj))
	sc.groupStride = c.MaxGroupsPerObject()
	groupTot := nSlots * sc.groupStride
	sc.groupNum = grown(sc.groupNum, nSlots)
	for i := range sc.groupNum {
		sc.groupNum[i] = 0
	}
	sc.groupVi = grown(sc.groupVi, groupTot)
	sc.groupLen = grown(sc.groupLen, groupTot)
	sc.groupScore = grown(sc.groupScore, groupTot)

	sc.probedSet = grown(sc.probedSet, nS)
	for i := range sc.probedSet {
		sc.probedSet[i] = false
	}
	sc.probed = sc.probed[:0]

	// Selection state: ByID walks candidates in order; the other policies
	// run off the max-heap. GreedyGain additionally maintains objCov (the
	// probability each slot is covered by an independent probed source) and
	// indepAcc (each candidate's running independence product over the
	// probed prefix, multiplied in probe order — exactly the product the
	// reference rebuilds from scratch at each step).
	lazy := cfg.Policy == GreedyGain
	if lazy {
		sc.indepAcc = grown(sc.indepAcc, nCand)
		for i := range sc.indepAcc {
			sc.indepAcc[i] = 1
		}
		sc.objCov = grown(sc.objCov, nSlots)
		for i := range sc.objCov {
			sc.objCov[i] = 0
		}
	}
	switch cfg.Policy {
	case GreedyGain:
		sc.heap = grown(sc.heap, nCand)
		for ci := 0; ci < nCand; ci++ {
			sc.heap[ci] = heapEntry{gain: p.gainOf(sc, int32(ci)), ci: int32(ci)}
		}
		heapify(sc.heap)
	case AccuracyCoverage:
		// Accuracy×coverage never changes as probes accumulate, so every
		// heap entry is permanently fresh.
		sc.heap = grown(sc.heap, nCand)
		for ci := 0; ci < nCand; ci++ {
			n := sc.candPosStart[ci+1] - sc.candPosStart[ci]
			sc.heap[ci] = heapEntry{gain: p.acc[sc.candSrc[ci]] * float64(n), ci: int32(ci)}
		}
		heapify(sc.heap)
	}

	// Softmax buffers: one per potential rescoring worker, sized once to
	// the compiled index's group bound.
	nW := eng.WorkerCount()
	if nW < 1 {
		nW = 1
	}
	if len(sc.workerScore) < nW {
		old := sc.workerScore
		sc.workerScore = make([]answerScratch, nW)
		copy(sc.workerScore, old)
	}
	for i := 0; i < nW; i++ {
		sc.workerScore[i].probs = grown(sc.workerScore[i].probs, sc.groupStride)
	}
	newScore := func() *answerScratch {
		return &sc.workerScore[sc.scoreIdx.Add(1)-1]
	}
	// rescore folds the current probe's claim about the i-th covered slot
	// into the slot's group table and refreshes the slot's answer;
	// allocated once per request and reused across probes. Slots are
	// disjoint per probe, so rescoring parallelizes without synchronization.
	var covLo, probeSi int32
	rescore := func(i int, as *answerScratch) {
		k := int(covLo) + i
		slot := sc.candSlot[k]
		p.applyClaim(sc, slot, probeSi, sc.candVal[k])
		a := p.answerSlot(sc, slot, as)
		for _, pos := range sc.posList[sc.posStart[slot]:sc.posStart[slot+1]] {
			sc.cur[pos] = a
		}
	}

	res := &Result{}
	var steps []Step
	var backing []Answer
	if maxProbes > 0 {
		steps = make([]Step, 0, maxProbes)
		// Without early stopping the loop runs exactly maxProbes steps, so
		// one backing array sized for all of them replaces a per-step
		// allocation. With StopProb set the step count is unknown — there
		// the steps allocate individually, so an early exit never pays for
		// the probes it skipped.
		if cfg.StopProb == 0 {
			backing = make([]Answer, maxProbes*nQ)
		}
	}

	round := int32(0)
	for len(sc.probed) < maxProbes {
		// Lazy pick: pop the best stale bound; if it was evaluated this
		// round it is the exact greedy maximum (ties already broken in
		// candidate order by the heap), otherwise refresh and reinsert.
		var ci int32
		var gain float64
		if cfg.Policy == ByID {
			ci = int32(len(sc.probed))
		} else {
			for {
				top := heapPop(&sc.heap)
				if !lazy || top.round == round {
					ci, gain = top.ci, top.gain
					break
				}
				top.gain = p.gainOf(sc, top.ci)
				top.round = round
				heapPush(&sc.heap, top)
			}
		}
		si := sc.candSrc[ci]
		sc.probed = append(sc.probed, ci)
		sc.probedSet[si] = true
		if lazy {
			// The new probe's own product is Π over the previous probes of
			// (1−dep(next, p)) in probe order; charge every still-unprobed
			// candidate the new probe exactly once, keeping each running
			// product in probe order.
			indepNext := sc.indepAcc[ci]
			accNext := p.acc[si]
			if p.depZero {
				// All-independent: every factor is exactly 1.
			} else if dt := p.depTab; dt != nil {
				nSrc := len(p.acc)
				for j, sj := range sc.candSrc {
					if !sc.probedSet[sj] {
						sc.indepAcc[j] *= 1 - dt[int(sj)*nSrc+int(si)]
					}
				}
			} else {
				for j, sj := range sc.candSrc {
					if !sc.probedSet[sj] {
						sc.indepAcc[j] *= 1 - p.dep(sj, si)
					}
				}
			}
			for _, slot := range sc.candPosSlot[sc.candPosStart[ci]:sc.candPosStart[ci+1]] {
				sc.objCov[slot] = 1 - (1-sc.objCov[slot])*(1-accNext*indepNext)
			}
		}
		// Incremental answer refresh: only slots the new probe covers can
		// change; fold the new claim in and rescore them (in parallel when
		// the request's engine and the covered count warrant goroutines).
		covLo, probeSi = sc.candObjStart[ci], si
		nCov := int(sc.candObjStart[ci+1] - covLo)
		if nW == 1 || nCov < 32 {
			for i := 0; i < nCov; i++ {
				rescore(i, &sc.workerScore[0])
			}
		} else {
			sc.scoreIdx.Store(0)
			engine.ForNScratch(eng, nCov, newScore, rescore)
		}
		var dst []Answer
		if backing != nil {
			stepIdx := len(sc.probed) - 1
			dst = backing[stepIdx*nQ : (stepIdx+1)*nQ : (stepIdx+1)*nQ]
		} else {
			dst = make([]Answer, nQ)
		}
		copy(dst, sc.cur)
		steps = append(steps, Step{Source: c.Source(int(si)), Gain: gain, Answers: dst})
		if cfg.StopProb > 0 && stable(dst, query, cfg.StopProb) {
			break
		}
		round++
	}
	res.Steps = steps
	if len(steps) > 0 {
		res.Final = steps[len(steps)-1].Answers
	}
	res.Probed = make([]model.SourceID, len(sc.probed))
	for i, ci := range sc.probed {
		res.Probed[i] = c.Source(int(sc.candSrc[ci]))
	}
	p.scratch.Put(sc)
	return res, nil
}

// applyClaim folds one probed claim (source si asserting value vi about
// slot) into the slot's group table, updating only the group that received
// the member — every other group's cached score is already bit-for-bit what
// the reference would recompute.
//
// The new member's discount product and the group score extension follow
// the reference's exact arithmetic: members iterate in rank order
// (accuracy desc, id asc), each member's product multiplies (1 −
// CopyRate·dep) factors in that order, and the score is the left-fold sum
// of weight×product terms in that order. A member that ranks last extends
// the cached fold in O(k); a mid-rank insert recomputes the suffix products
// it invalidated and re-folds the sum, still in reference order.
func (p *Planner) applyClaim(sc *planScratch, slot, si, vi int32) {
	gBase := int(slot) * sc.groupStride
	num := int(sc.groupNum[slot])
	gVi := sc.groupVi[gBase : gBase+num]
	// Locate the value group (sorted by value index == string order).
	gi, hi := 0, num
	for gi < hi {
		mid := int(uint(gi+hi) >> 1)
		if gVi[mid] < vi {
			gi = mid + 1
		} else {
			hi = mid
		}
	}
	isNew := gi == num || gVi[gi] != vi
	// Member region offset of group gi within the slot's rank arrays.
	off := int(sc.memStart[slot])
	for g := 0; g < gi; g++ {
		off += int(sc.groupLen[gBase+g])
	}
	memLen := int(sc.memLen[slot])
	if isNew {
		// Shift the group table and the member regions of later groups
		// right by one.
		copy(sc.groupVi[gBase+gi+1:gBase+num+1], sc.groupVi[gBase+gi:gBase+num])
		copy(sc.groupLen[gBase+gi+1:gBase+num+1], sc.groupLen[gBase+gi:gBase+num])
		copy(sc.groupScore[gBase+gi+1:gBase+num+1], sc.groupScore[gBase+gi:gBase+num])
		sc.groupVi[gBase+gi] = vi
		sc.groupLen[gBase+gi] = 0
		sc.groupScore[gBase+gi] = 0
		sc.groupNum[slot] = int32(num + 1)
	}
	k := int(sc.groupLen[gBase+gi])
	// Rank position of the new member inside the group: first index whose
	// member does not rank before (accuracy desc, id asc) the new one.
	accN := p.acc[si]
	r := 0
	for r < k {
		m := sc.rankSi[off+r]
		am := p.acc[m]
		if am > accN || (am == accN && m < si) {
			r++
		} else {
			break
		}
	}
	// Shift the slot's rank arrays open at off+r (later groups included).
	base := int(sc.memStart[slot])
	at := off + r
	copy(sc.rankSi[at+1:base+memLen+1], sc.rankSi[at:base+memLen])
	copy(sc.rankF[at+1:base+memLen+1], sc.rankF[at:base+memLen])
	sc.rankSi[at] = si
	sc.memLen[slot] = int32(memLen + 1)
	sc.groupLen[gBase+gi] = int32(k + 1)

	cr := p.cfg.CopyRate
	members := sc.rankSi[off : off+k+1]
	fs := sc.rankF[off : off+k+1]
	fs[r] = p.discountProduct(si, members[:r], cr)
	if r == k {
		// Ranked last: every earlier term is untouched; extend the fold.
		sc.groupScore[gBase+gi] += p.weights[si] * fs[r]
		return
	}
	// Mid-rank insert: the products of later-ranked members gained a
	// factor at a position the cached value can't reproduce bit-exactly,
	// so recompute them (and the sum) in reference order.
	for i := r + 1; i <= k; i++ {
		fs[i] = p.discountProduct(members[i], members[:i], cr)
	}
	var score float64
	for i := 0; i <= k; i++ {
		score += p.weights[members[i]] * fs[i]
	}
	sc.groupScore[gBase+gi] = score
}

// discountProduct is the reference's discount factor for a member ranked
// after earlier: Π (1 − CopyRate·dep(s, e)) over earlier in rank order. The
// dense and all-independent planner forms run it without the dep closure;
// both produce the identical float64 sequence.
func (p *Planner) discountProduct(s int32, earlier []int32, cr float64) float64 {
	f := 1.0
	switch {
	case p.depZero:
		// Every factor is 1 − cr·0 == 1; the product stays exactly 1.
	case p.depTab != nil:
		dt, nSrc := p.depTab, len(p.acc)
		row := dt[int(s)*nSrc : int(s)*nSrc+nSrc]
		for _, e := range earlier {
			f *= 1 - cr*row[e]
		}
	default:
		for _, e := range earlier {
			f *= 1 - cr*p.dep(s, e)
		}
	}
	return f
}

// answerSlot softmaxes the slot's cached group scores and returns the
// current answer, mirroring the reference computeAnswers: values in sorted
// order, softmax over the per-value scores, first maximum wins.
func (p *Planner) answerSlot(sc *planScratch, slot int32, as *answerScratch) Answer {
	gBase := int(slot) * sc.groupStride
	num := int(sc.groupNum[slot])
	scores := sc.groupScore[gBase : gBase+num]
	probs := as.probs[:num]
	// Group sets are never empty here, so NormalizeLogInto cannot fail.
	_ = stats.NormalizeLogInto(probs, scores)
	bestK, bestP := 0, -1.0
	for k := 0; k < num; k++ {
		if probs[k] > bestP {
			bestK, bestP = k, probs[k]
		}
	}
	return Answer{
		Object: p.c.Object(int(sc.slots[slot])),
		Value:  p.c.Value(int(sc.groupVi[gBase+bestK])),
		Prob:   bestP,
	}
}
