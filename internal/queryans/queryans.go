// Package queryans implements online (top-k) query answering — the third
// application of §4: "rather than necessarily going to all data sources and
// then combining the retrieved answers, we want to visit the most promising
// sources and avoid going to sources dependent on, or having been copied
// by, the ones already visited."
//
// The planner probes sources one at a time. After each probe it refreshes
// the answer probabilities from the sources seen so far (accuracy-weighted,
// dependence-discounted voting) and records a step, so callers can plot
// answer quality against the number of sources probed (EX8). Ordering
// policies: dependence-aware greedy gain (the paper's proposal),
// accuracy×coverage (dependence-blind), and the source-id order baseline.
package queryans

import (
	"errors"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/engine"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/truth"
)

// Policy selects the probing order.
type Policy int

const (
	// GreedyGain probes the source with the highest expected marginal
	// gain: accuracy × uncovered-coverage × independence from the sources
	// already probed.
	GreedyGain Policy = iota
	// AccuracyCoverage ignores dependence: accuracy × coverage.
	AccuracyCoverage
	// ByID probes in source-id order (the deterministic naive baseline).
	ByID
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case GreedyGain:
		return "greedy-gain"
	case AccuracyCoverage:
		return "accuracy-coverage"
	case ByID:
		return "by-id"
	}
	return "unknown"
}

// Config parameterizes the planner.
type Config struct {
	Policy Policy
	// Accuracy supplies per-source accuracies (e.g. from a depen run).
	// Sources missing from the map default to DefaultAccuracy.
	Accuracy        map[model.SourceID]float64
	DefaultAccuracy float64
	// Dependence returns the dependence probability of a pair (symmetric);
	// nil means all-independent.
	Dependence func(a, b model.SourceID) float64
	// CopyRate is the c used in vote discounting.
	CopyRate float64
	// N is the false-value space for vote weights.
	N int
	// MaxSources caps the probes (0 = all sources).
	MaxSources int
	// StopProb stops early once every query object's top value reaches
	// this posterior (0 disables early stopping).
	StopProb float64
	// Parallelism is the worker count for the planner's bulk phases
	// (candidate compilation and the per-probe answer refresh). Values <= 0
	// select runtime.GOMAXPROCS(0); 1 forces sequential execution. Results
	// are bit-identical at every setting.
	Parallelism int
}

// Engine returns the execution-engine configuration for this planner.
func (c Config) Engine() engine.Config {
	return engine.Config{Workers: c.Parallelism}
}

// DefaultConfig returns the planner defaults.
func DefaultConfig() Config {
	return Config{
		Policy:          GreedyGain,
		DefaultAccuracy: 0.7,
		CopyRate:        0.8,
		N:               100,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DefaultAccuracy <= 0 || c.DefaultAccuracy >= 1 {
		return errors.New("queryans: DefaultAccuracy must be in (0,1)")
	}
	if c.CopyRate <= 0 || c.CopyRate >= 1 {
		return errors.New("queryans: CopyRate must be in (0,1)")
	}
	if c.N < 1 {
		return errors.New("queryans: N must be >= 1")
	}
	if c.MaxSources < 0 {
		return errors.New("queryans: MaxSources must be >= 0")
	}
	if c.StopProb < 0 || c.StopProb >= 1 {
		return errors.New("queryans: StopProb must be in [0,1)")
	}
	return nil
}

// Answer is the current belief about one query object.
type Answer struct {
	Object model.ObjectID
	Value  string
	Prob   float64
}

// Step records the state after one probe.
type Step struct {
	Source  model.SourceID
	Gain    float64 // the planner's expected gain when it chose this source
	Answers []Answer
}

// Result is the full probing trace.
type Result struct {
	Steps []Step
	// Final holds the answers after the last probe.
	Final []Answer
	// Probed lists the sources in probe order.
	Probed []model.SourceID
}

// AnswerObjects probes sources to answer "what is the value of each query
// object", returning the step-by-step trace. It executes on the dataset's
// compiled columnar index via a one-shot Planner; the trace is bit-identical
// to the map-based reference path (answerObjectsMaps), which the golden
// equivalence tests enforce. Callers issuing many queries against one
// dataset should build a Planner (or a session.Session) once instead.
func AnswerObjects(d *dataset.Dataset, query []model.ObjectID, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, errors.New("queryans: dataset must be frozen")
	}
	// Compiled is non-nil for every frozen dataset; the fallback is
	// defensive only.
	if d.Compiled() != nil {
		p, err := NewPlanner(d, cfg)
		if err != nil {
			return nil, err
		}
		return p.Answer(query)
	}
	return answerObjectsMaps(d, query, cfg)
}

// answerObjectsMaps is the map-based reference implementation of
// AnswerObjects. It is not on any runtime path: it is kept as the semantic
// specification the compiled incremental Planner is tested against
// (golden_test.go). It deliberately recomputes every answer and every
// independence product from scratch after each probe — the O(P²·|query|)
// behavior the Planner makes incremental without changing a single bit of
// the output.
func answerObjectsMaps(d *dataset.Dataset, query []model.ObjectID, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !d.Frozen() {
		return nil, errors.New("queryans: dataset must be frozen")
	}
	if len(query) == 0 {
		return nil, errors.New("queryans: empty query")
	}
	acc := func(s model.SourceID) float64 {
		if a, ok := cfg.Accuracy[s]; ok {
			return a
		}
		return cfg.DefaultAccuracy
	}
	dep := cfg.Dependence
	if dep == nil {
		dep = func(a, b model.SourceID) float64 { return 0 }
	}

	// Candidate sources: those covering at least one query object.
	var candidates []model.SourceID
	coverage := map[model.SourceID][]model.ObjectID{}
	for _, s := range d.Sources() {
		var covered []model.ObjectID
		for _, o := range query {
			if _, ok := d.Value(s, o); ok {
				covered = append(covered, o)
			}
		}
		if len(covered) > 0 {
			candidates = append(candidates, s)
			coverage[s] = covered
		}
	}
	max := len(candidates)
	if cfg.MaxSources > 0 && cfg.MaxSources < max {
		max = cfg.MaxSources
	}

	res := &Result{}
	probed := []model.SourceID{}
	probedSet := map[model.SourceID]bool{}
	// objCovered[o] accumulates the probability that o is already covered
	// by an independent probed source; used by the gain heuristic.
	objCovered := map[model.ObjectID]float64{}

	for len(probed) < max {
		next, gain := pickNext(candidates, probedSet, probed, coverage, objCovered, acc, dep, cfg)
		if next == "" {
			break
		}
		probed = append(probed, next)
		probedSet[next] = true
		for _, o := range coverage[next] {
			indep := 1.0
			for _, p := range probed[:len(probed)-1] {
				indep *= 1 - dep(next, p)
			}
			objCovered[o] = 1 - (1-objCovered[o])*(1-acc(next)*indep)
		}
		answers := computeAnswers(d, query, probed, acc, dep, cfg)
		res.Steps = append(res.Steps, Step{Source: next, Gain: gain, Answers: answers})
		if cfg.StopProb > 0 && stable(answers, query, cfg.StopProb) {
			break
		}
	}
	if len(res.Steps) > 0 {
		res.Final = res.Steps[len(res.Steps)-1].Answers
	}
	res.Probed = probed
	return res, nil
}

// pickNext chooses the next source under the configured policy.
func pickNext(candidates []model.SourceID, probedSet map[model.SourceID]bool,
	probed []model.SourceID, coverage map[model.SourceID][]model.ObjectID,
	objCovered map[model.ObjectID]float64,
	acc func(model.SourceID) float64, dep func(a, b model.SourceID) float64,
	cfg Config) (model.SourceID, float64) {
	best := model.SourceID("")
	bestGain := -1.0
	for _, s := range candidates {
		if probedSet[s] {
			continue
		}
		var gain float64
		switch cfg.Policy {
		case ByID:
			// First unprobed source in id order; candidates are sorted.
			return s, 0
		case AccuracyCoverage:
			gain = acc(s) * float64(len(coverage[s]))
		case GreedyGain:
			indep := 1.0
			for _, p := range probed {
				indep *= 1 - dep(s, p)
			}
			var uncovered float64
			for _, o := range coverage[s] {
				uncovered += 1 - objCovered[o]
			}
			gain = acc(s) * indep * uncovered
		}
		if gain > bestGain {
			best, bestGain = s, gain
		}
	}
	if best == "" {
		return "", 0
	}
	return best, bestGain
}

// computeAnswers runs dependence-discounted accuracy-weighted voting over
// the probed sources only.
func computeAnswers(d *dataset.Dataset, query []model.ObjectID, probed []model.SourceID,
	acc func(model.SourceID) float64, dep func(a, b model.SourceID) float64,
	cfg Config) []Answer {
	accMap := map[model.SourceID]float64{}
	for _, s := range probed {
		accMap[s] = acc(s)
	}
	var out []Answer
	for _, o := range query {
		// Group probed sources by value.
		byValue := map[string][]model.SourceID{}
		for _, s := range probed {
			if v, ok := d.Value(s, o); ok {
				byValue[v] = append(byValue[v], s)
			}
		}
		if len(byValue) == 0 {
			out = append(out, Answer{Object: o})
			continue
		}
		vals := make([]string, 0, len(byValue))
		for v := range byValue {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		scores := map[string]float64{}
		for _, v := range vals {
			srcs := byValue[v]
			// Rank by accuracy; later same-value sources are discounted by
			// their dependence on earlier ones.
			sort.Slice(srcs, func(i, j int) bool {
				ai, aj := accMap[srcs[i]], accMap[srcs[j]]
				if ai != aj {
					return ai > aj
				}
				return srcs[i] < srcs[j]
			})
			var score float64
			for i, s := range srcs {
				f := 1.0
				for j := 0; j < i; j++ {
					f *= 1 - cfg.CopyRate*dep(s, srcs[j])
				}
				score += truth.WeightOf(accMap[s], cfg.N) * f
			}
			scores[v] = score
		}
		probs := truth.SoftmaxScores(scores)
		bestV, bestP := "", -1.0
		for _, v := range vals {
			if probs[v] > bestP {
				bestV, bestP = v, probs[v]
			}
		}
		out = append(out, Answer{Object: o, Value: bestV, Prob: bestP})
	}
	return out
}

func stable(answers []Answer, query []model.ObjectID, stopProb float64) bool {
	if len(answers) < len(query) {
		return false
	}
	for _, a := range answers {
		if a.Value == "" || a.Prob < stopProb {
			return false
		}
	}
	return true
}

// QualityCurve scores each step's answers against a ground-truth world,
// returning the fraction of query objects answered correctly after each
// probe — the series EX8 plots.
func QualityCurve(res *Result, w *model.World) []float64 {
	out := make([]float64, len(res.Steps))
	for i, st := range res.Steps {
		var right, total int
		for _, a := range st.Answers {
			want, ok := w.TrueNow(a.Object)
			if !ok {
				continue
			}
			total++
			if a.Value == want {
				right++
			}
		}
		if total > 0 {
			out[i] = float64(right) / float64(total)
		}
	}
	return out
}
