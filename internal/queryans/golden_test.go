package queryans

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

// Golden equivalence: AnswerObjects (compiled incremental Planner) must be
// bit-identical — reflect.DeepEqual, no tolerance — to answerObjectsMaps
// (the map-based reference that recomputes every answer and every
// independence product from scratch after each probe), across policies,
// early stopping, probe caps, duplicate query objects and partial coverage,
// at every Parallelism setting.

// goldenQueryWorld builds a ragged-coverage world: sources cover random
// object windows, some values are shared through a copier clique, and
// accuracies collide so the (accuracy desc, id asc) tie-break is exercised.
func goldenQueryWorld(t *testing.T, seed int64) (*dataset.Dataset, Config) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New()
	nObj := 40
	objs := make([]model.ObjectID, nObj)
	for i := range objs {
		objs[i] = model.Obj(fmt.Sprintf("o%02d", i), "v")
	}
	nSrc := 12
	acc := map[model.SourceID]float64{}
	var clique []model.SourceID
	for s := 0; s < nSrc; s++ {
		id := model.SourceID(fmt.Sprintf("S%02d", s))
		// Deliberate accuracy collisions: only five distinct levels.
		acc[id] = 0.55 + 0.1*float64(s%5)
		lo := rng.Intn(nObj / 2)
		hi := lo + 5 + rng.Intn(nObj/2)
		if hi > nObj {
			hi = nObj
		}
		for i := lo; i < hi; i++ {
			v := fmt.Sprintf("T%d", i)
			switch rng.Intn(4) {
			case 0:
				v = fmt.Sprintf("F%d_%d", i, rng.Intn(3))
			}
			_ = d.Add(model.NewClaim(id, objs[i], v))
		}
		if s%4 == 0 {
			clique = append(clique, id)
		}
	}
	d.Freeze()
	cfg := DefaultConfig()
	cfg.Accuracy = acc
	inClique := map[model.SourceID]bool{}
	for _, s := range clique {
		inClique[s] = true
	}
	cfg.Dependence = func(a, b model.SourceID) float64 {
		if inClique[a] && inClique[b] {
			return 0.9
		}
		return 0
	}
	return d, cfg
}

func goldenQueries(d *dataset.Dataset) map[string][]model.ObjectID {
	objs := d.Objects()
	half := objs[:len(objs)/2]
	dup := append(append([]model.ObjectID{}, objs[3], objs[3], objs[7]), objs[3])
	missing := append(append([]model.ObjectID{}, objs[:5]...), model.Obj("ghost", "v"))
	return map[string][]model.ObjectID{
		"all":     objs,
		"half":    half,
		"dups":    dup,
		"missing": missing,
	}
}

func TestAnswerCompiledMatchesMaps(t *testing.T) {
	for _, seed := range []int64{5, 21, 99} {
		d, base := goldenQueryWorld(t, seed)
		for qname, query := range goldenQueries(d) {
			for _, pol := range []Policy{GreedyGain, AccuracyCoverage, ByID} {
				for _, variant := range []struct {
					name string
					mut  func(*Config)
				}{
					{"plain", func(c *Config) {}},
					{"stop", func(c *Config) { c.StopProb = 0.6 }},
					{"cap", func(c *Config) { c.MaxSources = 3 }},
					{"nodep", func(c *Config) { c.Dependence = nil }},
				} {
					cfg := base
					cfg.Policy = pol
					variant.mut(&cfg)
					ref := cfg
					ref.Parallelism = 1
					want, err := answerObjectsMaps(d, query, ref)
					if err != nil {
						t.Fatal(err)
					}
					for _, par := range []int{1, 4, 16} {
						run := cfg
						run.Parallelism = par
						got, err := AnswerObjects(d, query, run)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("seed %d query %q policy %v variant %q: compiled trace at Parallelism=%d differs from map reference",
								seed, qname, pol, variant.name, par)
						}
					}
				}
			}
		}
	}
}

// TestPlannerReuseMatchesOneShot pins that a Planner answering many queries
// returns the same traces as fresh one-shot AnswerObjects calls.
func TestPlannerReuseMatchesOneShot(t *testing.T) {
	d, cfg := goldenQueryWorld(t, 7)
	p, err := NewPlanner(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for qname, query := range goldenQueries(d) {
		want, err := AnswerObjects(d, query, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Answer(query)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %q: planner reuse differs from one-shot answer", qname)
		}
	}
}
