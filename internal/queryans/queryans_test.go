package queryans

import (
	"fmt"
	"math/rand"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

func TestPolicyString(t *testing.T) {
	if GreedyGain.String() != "greedy-gain" || AccuracyCoverage.String() != "accuracy-coverage" || ByID.String() != "by-id" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "unknown" {
		t.Fatal("unknown policy should render unknown")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.DefaultAccuracy = 0 },
		func(c *Config) { c.CopyRate = 1 },
		func(c *Config) { c.N = 0 },
		func(c *Config) { c.MaxSources = -1 },
		func(c *Config) { c.StopProb = 1 },
	} {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatal("invalid config accepted")
		}
	}
}

func TestAnswerErrors(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("S1", model.Obj("a", "x"), "1"))
	if _, err := AnswerObjects(d, []model.ObjectID{model.Obj("a", "x")}, DefaultConfig()); err == nil {
		t.Fatal("unfrozen dataset accepted")
	}
	d.Freeze()
	if _, err := AnswerObjects(d, nil, DefaultConfig()); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestAnswerTable1WithOracle(t *testing.T) {
	// With oracle accuracies and the copier clique known, the planner
	// should answer all five researchers correctly and avoid wasting
	// probes on S4/S5 (copies of S3).
	d := dataset.Table1()
	cfg := DefaultConfig()
	cfg.Accuracy = map[model.SourceID]float64{
		"S1": 0.95, "S2": 0.7, "S3": 0.5, "S4": 0.5, "S5": 0.45,
	}
	clique := map[model.SourcePair]float64{
		model.NewSourcePair("S3", "S4"): 1,
		model.NewSourcePair("S3", "S5"): 1,
		model.NewSourcePair("S4", "S5"): 1,
	}
	cfg.Dependence = func(a, b model.SourceID) float64 {
		return clique[model.NewSourcePair(a, b)]
	}
	query := d.Objects()
	res, err := AnswerObjects(d, query, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probed) != 5 {
		t.Fatalf("probed %d sources", len(res.Probed))
	}
	// S1 first (highest accuracy × coverage × independence).
	if res.Probed[0] != "S1" {
		t.Fatalf("first probe = %v", res.Probed[0])
	}
	// The copier clique members must come last: after S3 is probed, S4
	// and S5 have near-zero gain.
	last2 := map[model.SourceID]bool{res.Probed[3]: true, res.Probed[4]: true}
	if !last2["S4"] || !last2["S5"] {
		t.Fatalf("probe order = %v; S4,S5 should be last", res.Probed)
	}
	// Final answers match the truth.
	w := dataset.Table1Truth()
	for _, a := range res.Final {
		want, _ := w.TrueNow(a.Object)
		if a.Value != want {
			t.Errorf("%v answered %q, want %q", a.Object, a.Value, want)
		}
	}
	curve := QualityCurve(res, w)
	if curve[len(curve)-1] != 1 {
		t.Fatalf("final quality = %v", curve[len(curve)-1])
	}
}

func TestEarlyStopping(t *testing.T) {
	d := dataset.Table1()
	cfg := DefaultConfig()
	cfg.Accuracy = map[model.SourceID]float64{"S1": 0.95}
	cfg.StopProb = 0.5
	res, err := AnswerObjects(d, d.Objects(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probed) >= 5 {
		t.Fatalf("early stopping did not trigger: probed %v", res.Probed)
	}
}

func TestMaxSourcesCap(t *testing.T) {
	d := dataset.Table1()
	cfg := DefaultConfig()
	cfg.MaxSources = 2
	res, err := AnswerObjects(d, d.Objects(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probed) != 2 || len(res.Steps) != 2 {
		t.Fatalf("cap ignored: %v", res.Probed)
	}
}

func TestByIDPolicyOrder(t *testing.T) {
	d := dataset.Table1()
	cfg := DefaultConfig()
	cfg.Policy = ByID
	res, err := AnswerObjects(d, d.Objects(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []model.SourceID{"S1", "S2", "S3", "S4", "S5"}
	for i, s := range want {
		if res.Probed[i] != s {
			t.Fatalf("ByID order = %v", res.Probed)
		}
	}
}

// buildQueryWorld makes a world where the dependence-aware order provably
// beats the accuracy-only order: the most accurate sources after the leader
// are all copies of the leader, while a slightly less accurate independent
// source holds the key complementary coverage.
func buildQueryWorld(seed int64) (*dataset.Dataset, *model.World, Config) {
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New()
	w := model.NewWorld()
	nObj := 60
	objs := make([]model.ObjectID, nObj)
	for i := range objs {
		objs[i] = model.Obj(fmt.Sprintf("o%02d", i), "v")
		w.SetSnapshot(objs[i], fmt.Sprintf("T%d", i))
	}
	add := func(s model.SourceID, lo, hi int, acc float64) {
		for i := lo; i < hi; i++ {
			v := fmt.Sprintf("T%d", i)
			if rng.Float64() > acc {
				v = fmt.Sprintf("F%d_%s", i, s)
			}
			_ = d.Add(model.NewClaim(s, objs[i], v))
		}
	}
	// Leader covers the first half very accurately.
	add("LEAD", 0, 30, 0.95)
	// Copies of the leader (same coverage; values copied exactly).
	for i := 0; i < 30; i++ {
		if v, ok := dValue(d, "LEAD", objs[i]); ok {
			_ = d.Add(model.NewClaim("COPY1", objs[i], v))
			_ = d.Add(model.NewClaim("COPY2", objs[i], v))
		}
	}
	// Independent source covering the second half, slightly less accurate.
	add("IND", 30, 60, 0.85)
	d.Freeze()

	cfg := DefaultConfig()
	cfg.Accuracy = map[model.SourceID]float64{
		"LEAD": 0.95, "COPY1": 0.94, "COPY2": 0.93, "IND": 0.85,
	}
	dep := map[model.SourcePair]float64{
		model.NewSourcePair("LEAD", "COPY1"):  1,
		model.NewSourcePair("LEAD", "COPY2"):  1,
		model.NewSourcePair("COPY1", "COPY2"): 1,
	}
	cfg.Dependence = func(a, b model.SourceID) float64 {
		return dep[model.NewSourcePair(a, b)]
	}
	return d, w, cfg
}

// dValue reads a value from an unfrozen dataset by scanning claims (test
// helper; Value requires Freeze).
func dValue(d *dataset.Dataset, s model.SourceID, o model.ObjectID) (string, bool) {
	for _, c := range d.Claims() {
		if c.Source == s && c.Object == o {
			return c.Value, true
		}
	}
	return "", false
}

func TestGreedyGainBeatsAccuracyOrderEarly(t *testing.T) {
	d, w, cfg := buildQueryWorld(13)
	query := d.Objects()

	cfg.Policy = GreedyGain
	greedy, err := AnswerObjects(d, query, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = AccuracyCoverage
	accOnly, err := AnswerObjects(d, query, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gc := QualityCurve(greedy, w)
	ac := QualityCurve(accOnly, w)
	// After two probes, the dependence-aware order has probed LEAD + IND
	// (full coverage) while accuracy-only probed LEAD + COPY1 (half).
	if gc[1] <= ac[1] {
		t.Fatalf("after 2 probes: greedy %.2f should beat accuracy-only %.2f (greedy=%v accOnly=%v)",
			gc[1], ac[1], greedy.Probed, accOnly.Probed)
	}
	if greedy.Probed[1] != "IND" {
		t.Fatalf("greedy second probe = %v, want IND", greedy.Probed[1])
	}
	if accOnly.Probed[1] == "IND" {
		t.Fatalf("accuracy-only should waste its second probe on a copy: %v", accOnly.Probed)
	}
}

func TestAnswersDiscountCopierVotes(t *testing.T) {
	// Three copies asserting a wrong value must not outvote one accurate
	// independent source when the dependence is known.
	d := dataset.New()
	o := model.Obj("x", "v")
	_ = d.Add(model.NewClaim("GOOD", o, "right"))
	_ = d.Add(model.NewClaim("C1", o, "wrong"))
	_ = d.Add(model.NewClaim("C2", o, "wrong"))
	_ = d.Add(model.NewClaim("C3", o, "wrong"))
	d.Freeze()
	cfg := DefaultConfig()
	cfg.Accuracy = map[model.SourceID]float64{"GOOD": 0.9, "C1": 0.6, "C2": 0.6, "C3": 0.6}
	cfg.Dependence = func(a, b model.SourceID) float64 {
		if a != "GOOD" && b != "GOOD" {
			return 1
		}
		return 0
	}
	res, err := AnswerObjects(d, []model.ObjectID{o}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Final[0].Value != "right" {
		t.Fatalf("copier clique outvoted the good source: %+v", res.Final[0])
	}
	// Blind to dependence, the clique wins — pin the contrast.
	cfg.Dependence = nil
	res2, _ := AnswerObjects(d, []model.ObjectID{o}, cfg)
	if res2.Final[0].Value != "wrong" {
		t.Fatalf("without dependence knowledge expected the clique to win: %+v", res2.Final[0])
	}
}

func TestUncoveredObjectAnswer(t *testing.T) {
	d := dataset.New()
	_ = d.Add(model.NewClaim("S1", model.Obj("a", "v"), "1"))
	d.Freeze()
	res, err := AnswerObjects(d, []model.ObjectID{model.Obj("a", "v"), model.Obj("b", "v")}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range res.Final {
		if a.Object == model.Obj("b", "v") && a.Value == "" {
			found = true
		}
	}
	if !found {
		t.Fatalf("uncovered object should have empty answer: %+v", res.Final)
	}
}
