package queryans

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
)

// benchWorld is goldenQueryWorld scaled to nSrc sources for the planner
// benchmark.
func benchWorld(tb testing.TB, nSrc int) (*dataset.Dataset, Config) {
	tb.Helper()
	rng := rand.New(rand.NewSource(int64(nSrc)))
	d := dataset.New()
	nObj := 40
	objs := make([]model.ObjectID, nObj)
	for i := range objs {
		objs[i] = model.Obj(fmt.Sprintf("o%02d", i), "v")
	}
	acc := map[model.SourceID]float64{}
	inClique := map[model.SourceID]bool{}
	for s := 0; s < nSrc; s++ {
		id := model.SourceID(fmt.Sprintf("S%03d", s))
		acc[id] = 0.55 + 0.1*float64(s%5)
		for i := 0; i < nObj; i++ {
			v := fmt.Sprintf("T%d", i)
			if rng.Intn(4) == 0 {
				v = fmt.Sprintf("F%d_%d", i, rng.Intn(3))
			}
			_ = d.Add(model.NewClaim(id, objs[i], v))
		}
		if s%4 == 0 {
			inClique[id] = true
		}
	}
	d.Freeze()
	cfg := DefaultConfig()
	cfg.Accuracy = acc
	cfg.Dependence = func(a, b model.SourceID) float64 {
		if inClique[a] && inClique[b] {
			return 0.9
		}
		return 0
	}
	return d, cfg
}

// Edge-case coverage for the lazy-greedy (CELF) Planner.Answer path: each
// case is pinned reflect.DeepEqual against the map-based reference at
// Parallelism 1/4/16, so the heap selection, the dense slot state and the
// incremental group scores reproduce the reference bit-for-bit at the
// boundaries where lazy evaluation could drift (no candidates, duplicate
// coverage mass, a probe cap tighter than the candidate pool, early stop).

func TestLazyGreedyEdgeCases(t *testing.T) {
	d, base := goldenQueryWorld(t, 42)
	objs := d.Objects()
	ghost := []model.ObjectID{model.Obj("ghost1", "v"), model.Obj("ghost2", "v")}

	cases := []struct {
		name  string
		query []model.ObjectID
		mut   func(*Config)
	}{
		{"all-unknown objects", ghost, func(c *Config) {}},
		{"duplicate query objects",
			[]model.ObjectID{objs[2], objs[2], objs[5], objs[2], objs[5]},
			func(c *Config) {}},
		{"duplicates with unknowns",
			[]model.ObjectID{objs[2], ghost[0], objs[2], ghost[0]},
			func(c *Config) {}},
		{"MaxSources below candidate count", objs[:6],
			func(c *Config) { c.MaxSources = 2 }},
		{"MaxSources of one", objs[:6],
			func(c *Config) { c.MaxSources = 1 }},
		{"MaxSources above candidate count", objs[:6],
			func(c *Config) { c.MaxSources = 10000 }},
		{"StopProb early exit", objs[:6],
			func(c *Config) { c.StopProb = 0.5 }},
		{"StopProb unreachable", objs[:6],
			func(c *Config) { c.StopProb = 0.999999 }},
		{"single object", objs[3:4], func(c *Config) {}},
	}
	for _, tc := range cases {
		for _, pol := range []Policy{GreedyGain, AccuracyCoverage, ByID} {
			cfg := base
			cfg.Policy = pol
			tc.mut(&cfg)
			ref := cfg
			ref.Parallelism = 1
			want, err := answerObjectsMaps(d, tc.query, ref)
			if err != nil {
				t.Fatalf("%s/%v: reference: %v", tc.name, pol, err)
			}
			for _, par := range []int{1, 4, 16} {
				run := cfg
				run.Parallelism = par
				got, err := AnswerObjects(d, tc.query, run)
				if err != nil {
					t.Fatalf("%s/%v par=%d: %v", tc.name, pol, par, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%v par=%d: compiled trace differs from map reference",
						tc.name, pol, par)
				}
			}
		}
	}
}

// TestLazyGreedyEmptyQuery pins that both paths reject an empty query.
func TestLazyGreedyEmptyQuery(t *testing.T) {
	d, cfg := goldenQueryWorld(t, 42)
	if _, err := answerObjectsMaps(d, nil, cfg); err == nil {
		t.Fatal("reference accepted an empty query")
	}
	for _, par := range []int{1, 4, 16} {
		run := cfg
		run.Parallelism = par
		if _, err := AnswerObjects(d, nil, run); err == nil {
			t.Fatalf("par=%d: compiled path accepted an empty query", par)
		}
		p, err := NewPlanner(d, run)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Answer(nil); err == nil {
			t.Fatalf("par=%d: planner accepted an empty query", par)
		}
	}
}

// TestPlannerScratchReuseAcrossQueries pins that a recycled scratch cannot
// leak state between requests: interleaved queries of different shapes
// through one planner match fresh one-shot runs every time.
func TestPlannerScratchReuseAcrossQueries(t *testing.T) {
	d, cfg := goldenQueryWorld(t, 7)
	objs := d.Objects()
	p, err := NewPlanner(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := objs[len(objs)-1]
	queries := [][]model.ObjectID{
		objs,
		objs[:3],
		{objs[1], objs[1], objs[9]},
		{model.Obj("ghost", "v")},
		objs[:17],
		{last, model.Obj("ghost", "v"), last},
	}
	for round := 0; round < 3; round++ {
		for qi, q := range queries {
			want, err := AnswerObjects(d, q, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d query %d: reused planner differs from one-shot", round, qi)
			}
		}
	}
}

// TestDeriveMatchesDense pins that a derived planner answers identically to
// a fresh dense planner under the same overridden configuration.
func TestDeriveMatchesDense(t *testing.T) {
	d, cfg := goldenQueryWorld(t, 21)
	c := d.Compiled()
	nS := c.NumSources()
	acc := make([]float64, nS)
	for i := range acc {
		acc[i] = cfg.Accuracy[c.Source(i)]
	}
	depTab := make([]float64, nS*nS)
	for i := 0; i < nS; i++ {
		for j := 0; j < nS; j++ {
			depTab[i*nS+j] = cfg.Dependence(c.Source(i), c.Source(j))
		}
	}
	base := cfg
	base.Accuracy = nil
	base.Dependence = nil
	parent, err := NewPlannerDense(d, base, acc, depTab)
	if err != nil {
		t.Fatal(err)
	}
	objs := d.Objects()
	for _, mut := range []func(*Config){
		func(c *Config) { c.Policy = AccuracyCoverage },
		func(c *Config) { c.MaxSources = 3 },
		func(c *Config) { c.StopProb = 0.6 },
		func(c *Config) { c.N = 50 }, // forces a weight recompute
	} {
		over := base
		mut(&over)
		derived, err := parent.Derive(over)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewPlannerDense(d, over, acc, depTab)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Answer(objs[:8])
		if err != nil {
			t.Fatal(err)
		}
		got, err := derived.Answer(objs[:8])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("derived planner differs from fresh dense planner")
		}
	}
	// Invalid overrides surface Validate errors.
	bad := base
	bad.MaxSources = -1
	if _, err := parent.Derive(bad); err == nil {
		t.Fatal("Derive accepted an invalid config")
	}
}

// BenchmarkPlannerAnswerMicro is the in-package micro form of the root
// BenchmarkPlannerAnswer: one precompiled planner answering a 5-object
// query over small map-configured worlds, cheap enough for -benchtime
// sweeps while iterating on the planner.
func BenchmarkPlannerAnswerMicro(b *testing.B) {
	for _, n := range []int{12, 48} {
		b.Run(fmt.Sprintf("sources=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			d, cfg := benchWorld(b, n)
			p, err := NewPlanner(d, cfg)
			if err != nil {
				b.Fatal(err)
			}
			query := d.Objects()[:5]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Answer(query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
