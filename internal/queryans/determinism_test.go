package queryans

import (
	"reflect"
	"testing"
)

// The engine contract extended to the application layer: repeated runs and
// every Parallelism setting produce bit-identical traces. The dataset is
// rebuilt per run so Go's randomized map iteration order gets a fresh
// chance to leak into the output if any path forgets to canonicalize.

func TestAnswerDeterministicAcrossRunsAndParallelism(t *testing.T) {
	for _, seed := range []int64{5, 21} {
		var want *Result
		for run := 0; run < 3; run++ {
			d, cfg := goldenQueryWorld(t, seed)
			query := d.Objects()
			for _, p := range []int{1, 4, 16} {
				run := cfg
				run.Parallelism = p
				got, err := AnswerObjects(d, query, run)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: trace differs across runs (Parallelism=%d)", seed, p)
				}
			}
		}
	}
}
