// Package eval provides the evaluation harness: detection-quality metrics
// against planted ground truth, truth-discovery accuracy, and the
// fixed-width table renderer the experiment binaries print with.
package eval

import (
	"fmt"
	"io"
	"strings"

	"sourcecurrents/internal/model"
)

// PRF is a precision/recall/F1 triple with raw counts.
type PRF struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

// PairPRF scores detected source pairs against the planted truth set.
func PairPRF(detected []model.SourcePair, truth map[model.SourcePair]bool) PRF {
	var prf PRF
	seen := map[model.SourcePair]bool{}
	for _, p := range detected {
		if seen[p] {
			continue
		}
		seen[p] = true
		if truth[p] {
			prf.TP++
		} else {
			prf.FP++
		}
	}
	for p := range truth {
		if !seen[p] {
			prf.FN++
		}
	}
	if prf.TP+prf.FP > 0 {
		prf.Precision = float64(prf.TP) / float64(prf.TP+prf.FP)
	}
	if prf.TP+prf.FN > 0 {
		prf.Recall = float64(prf.TP) / float64(prf.TP+prf.FN)
	}
	if prf.Precision+prf.Recall > 0 {
		prf.F1 = 2 * prf.Precision * prf.Recall / (prf.Precision + prf.Recall)
	}
	return prf
}

// ChosenAccuracy scores chosen values against a world's current truth.
func ChosenAccuracy(chosen map[model.ObjectID]string, w *model.World) float64 {
	var right, total int
	for o, v := range chosen {
		want, ok := w.TrueNow(o)
		if !ok {
			continue
		}
		total++
		if v == want {
			right++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(right) / float64(total)
}

// MAE returns the mean absolute error between two per-key float maps over
// their shared keys.
func MAE(a, b map[model.ObjectID]float64) float64 {
	var sum float64
	var n int
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			continue
		}
		d := av - bv
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Table renders aligned fixed-width text tables (the experiment binaries'
// output format).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v except floats, which use %.3f.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.3f", v))
		case float32:
			row = append(row, fmt.Sprintf("%.3f", v))
		default:
			row = append(row, fmt.Sprintf("%v", c))
		}
	}
	t.AddRow(row...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Histogram summarizes a slice of ints: min, max, mean.
type Histogram struct {
	Min, Max int
	Mean     float64
	N        int
}

// Summarize computes a Histogram.
func Summarize(xs []int) Histogram {
	h := Histogram{N: len(xs)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	var sum int
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
		sum += x
	}
	h.Mean = float64(sum) / float64(len(xs))
	return h
}
