package eval

import (
	"math"
	"strings"
	"testing"

	"sourcecurrents/internal/model"
)

func TestPairPRF(t *testing.T) {
	truth := map[model.SourcePair]bool{
		model.NewSourcePair("A", "B"): true,
		model.NewSourcePair("C", "D"): true,
	}
	detected := []model.SourcePair{
		model.NewSourcePair("A", "B"), // TP
		model.NewSourcePair("A", "B"), // duplicate, ignored
		model.NewSourcePair("E", "F"), // FP
	}
	prf := PairPRF(detected, truth)
	if prf.TP != 1 || prf.FP != 1 || prf.FN != 1 {
		t.Fatalf("counts: %+v", prf)
	}
	if math.Abs(prf.Precision-0.5) > 1e-12 || math.Abs(prf.Recall-0.5) > 1e-12 {
		t.Fatalf("P/R: %+v", prf)
	}
	if math.Abs(prf.F1-0.5) > 1e-12 {
		t.Fatalf("F1: %v", prf.F1)
	}
	// Degenerate cases.
	empty := PairPRF(nil, nil)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Fatalf("empty PRF: %+v", empty)
	}
	perfect := PairPRF([]model.SourcePair{model.NewSourcePair("A", "B")},
		map[model.SourcePair]bool{model.NewSourcePair("A", "B"): true})
	if perfect.F1 != 1 {
		t.Fatalf("perfect F1 = %v", perfect.F1)
	}
}

func TestChosenAccuracy(t *testing.T) {
	w := model.NewWorld()
	w.SetSnapshot(model.Obj("a", "v"), "x")
	w.SetSnapshot(model.Obj("b", "v"), "y")
	chosen := map[model.ObjectID]string{
		model.Obj("a", "v"): "x",
		model.Obj("b", "v"): "wrong",
		model.Obj("c", "v"): "ignored", // not in world
	}
	if got := ChosenAccuracy(chosen, w); got != 0.5 {
		t.Fatalf("accuracy = %v", got)
	}
	if ChosenAccuracy(nil, w) != 0 {
		t.Fatal("empty chosen should be 0")
	}
}

func TestMAE(t *testing.T) {
	a := map[model.ObjectID]float64{model.Obj("a", "v"): 1, model.Obj("b", "v"): 2}
	b := map[model.ObjectID]float64{model.Obj("a", "v"): 2, model.Obj("b", "v"): 2}
	if got := MAE(a, b); got != 0.5 {
		t.Fatalf("MAE = %v", got)
	}
	if MAE(a, map[model.ObjectID]float64{}) != 0 {
		t.Fatal("no shared keys should give 0")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta", 0.123456)
	tab.AddRow("gamma") // short row padded
	s := tab.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "alpha") {
		t.Fatalf("render missing content:\n%s", s)
	}
	if !strings.Contains(s, "0.123") {
		t.Fatalf("float formatting wrong:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Fatalf("line count = %d:\n%s", len(lines), s)
	}
	// All data lines align to the same width structure: the separator row
	// is dashes only.
	if !strings.HasPrefix(lines[2], "-") {
		t.Fatalf("separator missing:\n%s", s)
	}
}

func TestSummarize(t *testing.T) {
	h := Summarize([]int{3, 1, 4, 1, 5})
	if h.Min != 1 || h.Max != 5 || h.N != 5 {
		t.Fatalf("summary: %+v", h)
	}
	if math.Abs(h.Mean-2.8) > 1e-12 {
		t.Fatalf("mean = %v", h.Mean)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
}
