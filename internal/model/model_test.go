package model

import (
	"testing"
	"testing/quick"
)

func TestClaimValidate(t *testing.T) {
	good := NewClaim("S1", Obj("Dong", "affiliation"), "AT&T")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid claim rejected: %v", err)
	}
	bad := good
	bad.Source = ""
	if bad.Validate() == nil {
		t.Fatal("empty source accepted")
	}
	bad = good
	bad.Object.Entity = ""
	if bad.Validate() == nil {
		t.Fatal("empty entity accepted")
	}
	bad = good
	bad.Prob = 1.5
	if bad.Validate() == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestClaimString(t *testing.T) {
	c := NewTemporalClaim("S1", Obj("Dong", "affiliation"), "AT&T", 2007)
	if got := c.String(); got == "" {
		t.Fatal("empty String")
	}
	s := NewClaim("S1", Obj("Dong", "affiliation"), "AT&T")
	if s.String() == c.String() {
		t.Fatal("temporal and snapshot render identically")
	}
}

func TestTruthValueAt(t *testing.T) {
	tr := Truth{
		Object: Obj("Dong", "affiliation"),
		Periods: []TruthPeriod{
			{Start: 2002, Value: "UW"},
			{Start: 2006, Value: "Google"},
			{Start: 2007, Value: "AT&T"},
		},
	}
	cases := []struct {
		t    Time
		want string
		ok   bool
	}{
		{2001, "", false},
		{2002, "UW", true},
		{2005, "UW", true},
		{2006, "Google", true},
		{2007, "AT&T", true},
		{2020, "AT&T", true},
	}
	for _, c := range cases {
		got, ok := tr.ValueAt(c.t)
		if got != c.want || ok != c.ok {
			t.Errorf("ValueAt(%d) = %q,%v want %q,%v", c.t, got, ok, c.want, c.ok)
		}
	}
	cur, ok := tr.Current()
	if !ok || cur != "AT&T" {
		t.Fatalf("Current = %q,%v", cur, ok)
	}
}

func TestTruthEverTrue(t *testing.T) {
	tr := Truth{Periods: []TruthPeriod{{Start: 0, Value: "UW"}, {Start: 5, Value: "MSR"}}}
	if !tr.EverTrue("UW") || !tr.EverTrue("MSR") {
		t.Fatal("historical values should be EverTrue")
	}
	if tr.EverTrue("Google") {
		t.Fatal("never-true value reported EverTrue")
	}
}

func TestTruthNormalize(t *testing.T) {
	tr := Truth{Periods: []TruthPeriod{
		{Start: 5, Value: "B"},
		{Start: 0, Value: "A"},
		{Start: 9, Value: "B"}, // duplicate of previous after sorting
	}}
	tr.Normalize()
	if len(tr.Periods) != 2 || tr.Periods[0].Value != "A" || tr.Periods[1].Value != "B" {
		t.Fatalf("Normalize = %+v", tr.Periods)
	}
	if got := tr.Transitions(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Transitions = %v", got)
	}
}

func TestTruthEmpty(t *testing.T) {
	var tr Truth
	if _, ok := tr.Current(); ok {
		t.Fatal("empty truth has no current value")
	}
	if tr.Transitions() != nil {
		t.Fatal("empty truth has no transitions")
	}
}

func TestWorld(t *testing.T) {
	w := NewWorld()
	w.SetSnapshot(Obj("Suciu", "affiliation"), "UW")
	w.Set(Truth{
		Object: Obj("Dong", "affiliation"),
		Periods: []TruthPeriod{
			{Start: 2006, Value: "Google"},
			{Start: 2002, Value: "UW"},
		},
	})
	if v, ok := w.TrueNow(Obj("Suciu", "affiliation")); !ok || v != "UW" {
		t.Fatalf("TrueNow snapshot = %q,%v", v, ok)
	}
	if v, ok := w.TrueAt(Obj("Dong", "affiliation"), 2003); !ok || v != "UW" {
		t.Fatalf("TrueAt(2003) = %q,%v", v, ok)
	}
	if _, ok := w.TrueNow(Obj("nobody", "x")); ok {
		t.Fatal("unknown object should miss")
	}
	objs := w.Objects()
	if len(objs) != 2 || objs[0].Entity != "Dong" {
		t.Fatalf("Objects order = %v", objs)
	}
}

func TestSourcePairNormalization(t *testing.T) {
	p := NewSourcePair("S2", "S1")
	if p.A != "S1" || p.B != "S2" {
		t.Fatalf("pair not normalized: %+v", p)
	}
	if NewSourcePair("S1", "S2") != p {
		t.Fatal("pairs should compare equal regardless of order")
	}
	if !p.Has("S1") || !p.Has("S2") || p.Has("S3") {
		t.Fatal("Has wrong")
	}
	o, ok := p.Other("S1")
	if !ok || o != "S2" {
		t.Fatalf("Other = %v,%v", o, ok)
	}
	if _, ok := p.Other("S3"); ok {
		t.Fatal("Other of non-member should fail")
	}
	if p.String() != "S1~S2" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestSourcePairSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		return NewSourcePair(SourceID(a), SourceID(b)) == NewSourcePair(SourceID(b), SourceID(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSortHelpers(t *testing.T) {
	objs := []ObjectID{Obj("b", "y"), Obj("a", "z"), Obj("a", "x")}
	SortObjects(objs)
	if objs[0] != Obj("a", "x") || objs[2] != Obj("b", "y") {
		t.Fatalf("SortObjects = %v", objs)
	}
	srcs := []SourceID{"S3", "S1", "S2"}
	SortSources(srcs)
	if srcs[0] != "S1" || srcs[2] != "S3" {
		t.Fatalf("SortSources = %v", srcs)
	}
}
