// Package model defines the data model of §2.1 of the paper.
//
// A structured data source provides a set of 4-tuples (id, value, time,
// prob): identifier id carries value v at time t with probability p. The
// identifier encapsulates entity and attribute (for a relational cell it
// would be table/record/column); values are opaque strings after record
// linkage has normalized representations; time may be absent (snapshot
// data); probability defaults to 1 when the source does not qualify its
// claims.
package model

import (
	"fmt"
	"sort"
)

// SourceID identifies a data source (a bookstore, a website, a rater).
type SourceID string

// ObjectID identifies a data item: an (entity, attribute) pair such as
// ("Dong", "affiliation") or (ISBN, "authors"). Object is the paper's
// "identifier" d_i.
type ObjectID struct {
	Entity    string
	Attribute string
}

// String renders the object as "entity.attribute".
func (o ObjectID) String() string { return o.Entity + "." + o.Attribute }

// Obj is shorthand for constructing an ObjectID.
func Obj(entity, attribute string) ObjectID {
	return ObjectID{Entity: entity, Attribute: attribute}
}

// Time is a discrete timestamp. The paper's model does not fix a
// granularity; experiments use years (Table 3) or abstract ticks. A zero
// Time together with HasTime=false on a Claim means "snapshot only".
type Time int64

// Claim is the paper's 4-tuple: source S claims that object O has value V
// at time T with probability P.
type Claim struct {
	Source  SourceID
	Object  ObjectID
	Value   string
	Time    Time
	HasTime bool
	Prob    float64 // claimed probability; 1 when the source is categorical
}

// NewClaim builds a snapshot claim with probability 1.
func NewClaim(source SourceID, object ObjectID, value string) Claim {
	return Claim{Source: source, Object: object, Value: value, Prob: 1}
}

// NewTemporalClaim builds a timestamped claim with probability 1.
func NewTemporalClaim(source SourceID, object ObjectID, value string, t Time) Claim {
	return Claim{Source: source, Object: object, Value: value, Time: t, HasTime: true, Prob: 1}
}

// Validate reports structural problems with the claim.
func (c Claim) Validate() error {
	if c.Source == "" {
		return fmt.Errorf("model: claim %v has empty source", c)
	}
	if c.Object.Entity == "" {
		return fmt.Errorf("model: claim by %s has empty entity", c.Source)
	}
	if c.Prob < 0 || c.Prob > 1 {
		return fmt.Errorf("model: claim %s/%s has probability %v outside [0,1]",
			c.Source, c.Object, c.Prob)
	}
	return nil
}

// String renders the claim for logs and CLIs.
func (c Claim) String() string {
	if c.HasTime {
		return fmt.Sprintf("%s: %s=%q @%d (p=%.2f)", c.Source, c.Object, c.Value, c.Time, c.Prob)
	}
	return fmt.Sprintf("%s: %s=%q (p=%.2f)", c.Source, c.Object, c.Value, c.Prob)
}

// Truth records the ground-truth value of an object, possibly evolving over
// time. Periods are sorted by start time; each value holds from its Start
// until the next period's Start (the last one holds forever). For snapshot
// worlds there is a single period.
type Truth struct {
	Object  ObjectID
	Periods []TruthPeriod
}

// TruthPeriod is one constant-value interval of an object's history.
type TruthPeriod struct {
	Start Time
	Value string
}

// NewSnapshotTruth builds a truth with a single eternal value.
func NewSnapshotTruth(object ObjectID, value string) Truth {
	return Truth{Object: object, Periods: []TruthPeriod{{Value: value}}}
}

// ValueAt returns the true value at time t, and false if t precedes the
// first period.
func (tr Truth) ValueAt(t Time) (string, bool) {
	idx := -1
	for i, p := range tr.Periods {
		if p.Start <= t {
			idx = i
		} else {
			break
		}
	}
	if idx < 0 {
		return "", false
	}
	return tr.Periods[idx].Value, true
}

// Current returns the latest true value; false for an empty truth.
func (tr Truth) Current() (string, bool) {
	if len(tr.Periods) == 0 {
		return "", false
	}
	return tr.Periods[len(tr.Periods)-1].Value, true
}

// EverTrue reports whether v was the true value during any period. The
// temporal solver uses it to separate out-of-date values (once true) from
// false values (never true) — the distinction Example 3.2 turns on.
func (tr Truth) EverTrue(v string) bool {
	for _, p := range tr.Periods {
		if p.Value == v {
			return true
		}
	}
	return false
}

// Normalize sorts periods by start time and drops consecutive duplicates.
func (tr *Truth) Normalize() {
	sort.SliceStable(tr.Periods, func(i, j int) bool {
		return tr.Periods[i].Start < tr.Periods[j].Start
	})
	out := tr.Periods[:0]
	for _, p := range tr.Periods {
		if len(out) == 0 || out[len(out)-1].Value != p.Value {
			out = append(out, p)
		}
	}
	tr.Periods = out
}

// Transitions returns the times at which the truth changes value (the start
// of every period after the first). Temporal coverage is measured against
// these.
func (tr Truth) Transitions() []Time {
	if len(tr.Periods) <= 1 {
		return nil
	}
	out := make([]Time, 0, len(tr.Periods)-1)
	for _, p := range tr.Periods[1:] {
		out = append(out, p.Start)
	}
	return out
}

// World is a ground-truth assignment for a set of objects. It is produced
// by the synthetic generators and consumed by the evaluation harness; the
// discovery algorithms never see it.
type World struct {
	Truths map[ObjectID]Truth
}

// NewWorld returns an empty world.
func NewWorld() *World { return &World{Truths: map[ObjectID]Truth{}} }

// SetSnapshot records a single eternal true value for object o.
func (w *World) SetSnapshot(o ObjectID, value string) {
	w.Truths[o] = NewSnapshotTruth(o, value)
}

// Set records a full temporal truth.
func (w *World) Set(tr Truth) {
	tr.Normalize()
	w.Truths[tr.Object] = tr
}

// TrueAt returns the true value of o at time t.
func (w *World) TrueAt(o ObjectID, t Time) (string, bool) {
	tr, ok := w.Truths[o]
	if !ok {
		return "", false
	}
	return tr.ValueAt(t)
}

// TrueNow returns the latest true value of o.
func (w *World) TrueNow(o ObjectID) (string, bool) {
	tr, ok := w.Truths[o]
	if !ok {
		return "", false
	}
	return tr.Current()
}

// Objects returns the object ids in deterministic (sorted) order.
func (w *World) Objects() []ObjectID {
	out := make([]ObjectID, 0, len(w.Truths))
	for o := range w.Truths {
		out = append(out, o)
	}
	SortObjects(out)
	return out
}

// SortObjects sorts ids by (entity, attribute) for deterministic iteration.
func SortObjects(ids []ObjectID) {
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Entity != ids[j].Entity {
			return ids[i].Entity < ids[j].Entity
		}
		return ids[i].Attribute < ids[j].Attribute
	})
}

// SortSources sorts source ids lexicographically.
func SortSources(ids []SourceID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// SourcePair is an unordered pair of sources, normalized so A < B. Pairwise
// dependence is reported on these.
type SourcePair struct {
	A, B SourceID
}

// NewSourcePair returns the normalized pair.
func NewSourcePair(a, b SourceID) SourcePair {
	if b < a {
		a, b = b, a
	}
	return SourcePair{A: a, B: b}
}

// Has reports whether s is one of the pair.
func (p SourcePair) Has(s SourceID) bool { return p.A == s || p.B == s }

// Other returns the member of the pair that is not s; ok is false when s is
// not in the pair.
func (p SourcePair) Other(s SourceID) (SourceID, bool) {
	switch s {
	case p.A:
		return p.B, true
	case p.B:
		return p.A, true
	}
	return "", false
}

// String renders the pair as "A~B".
func (p SourcePair) String() string { return string(p.A) + "~" + string(p.B) }
