// Package experiments implements the paper-reproduction harness: one entry
// point per table/figure-equivalent listed in DESIGN.md §4, each returning
// rendered tables plus the key numbers EXPERIMENTS.md records. The
// cmd/experiments binary prints them; bench_test.go times them.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/depen"
	"sourcecurrents/internal/dissim"
	"sourcecurrents/internal/eval"
	"sourcecurrents/internal/linkage"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/queryans"
	"sourcecurrents/internal/recommend"
	"sourcecurrents/internal/session"
	"sourcecurrents/internal/strsim"
	"sourcecurrents/internal/synth"
	"sourcecurrents/internal/temporal"
	"sourcecurrents/internal/truth"
	"sourcecurrents/internal/winnow"
)

// Parallelism is the worker count every experiment's solver configurations
// run with: 0 selects runtime.GOMAXPROCS(0), 1 forces sequential execution.
// Results are identical at every setting (the engine guarantees
// determinism); the knob exists so cmd/experiments and the benchmarks can
// compare sequential against parallel wall-clock.
var Parallelism int

// truthConfig is truth.DefaultConfig with the package Parallelism applied.
func truthConfig() truth.Config {
	c := truth.DefaultConfig()
	c.Parallelism = Parallelism
	return c
}

// depenConfig is depen.DefaultConfig with the package Parallelism applied.
func depenConfig() depen.Config {
	c := depen.DefaultConfig()
	c.Parallelism = Parallelism
	return c
}

// temporalConfig is temporal.DefaultConfig with the package Parallelism
// applied.
func temporalConfig() temporal.Config {
	c := temporal.DefaultConfig()
	c.Parallelism = Parallelism
	return c
}

// Report is one experiment's output.
type Report struct {
	ID     string
	Title  string
	Tables []*eval.Table
	// Notes carries the headline findings in prose.
	Notes []string
}

// String renders the report.
func (r *Report) String() string {
	out := fmt.Sprintf("=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "* " + n + "\n"
	}
	return out
}

// knownTwo is the Example 3.1 side information used by EX1.
func knownTwo() map[model.ObjectID]string {
	return map[model.ObjectID]string{
		model.Obj("Halevy", dataset.AffAttr): "Google",
		model.Obj("Dalvi", dataset.AffAttr):  "Yahoo!",
	}
}

// EX1Table1 reproduces Table 1 / Examples 2.1 and 3.1: naive voting fails
// under copying; copy-aware discovery with the example's side information
// recovers all truths and the copier clique.
func EX1Table1() *Report {
	rep := &Report{ID: "EX1", Title: "Table 1 — snapshot dependence on the researcher-affiliation example"}
	d := dataset.Table1()
	w := dataset.Table1Truth()

	vote := truth.Vote(d)
	voteAcc := eval.ChosenAccuracy(vote.Chosen, w)

	accuRes, err := truth.Accu(d, truthConfig())
	if err != nil {
		panic(err)
	}
	accuAcc := eval.ChosenAccuracy(accuRes.Chosen, w)

	cold, err := depen.Detect(d, depenConfig())
	if err != nil {
		panic(err)
	}
	coldAcc := eval.ChosenAccuracy(cold.Truth.Chosen, w)

	cfg := depenConfig()
	cfg.Truth.Known = knownTwo()
	labeled, err := depen.Detect(d, cfg)
	if err != nil {
		panic(err)
	}
	labeledAcc := eval.ChosenAccuracy(labeled.Truth.Chosen, w)

	t1 := eval.NewTable("Truth-discovery accuracy on Table 1 (5 objects)",
		"method", "correct", "accuracy")
	t1.AddRowf("naive voting", fmt.Sprintf("%d/5", int(voteAcc*5+0.5)), voteAcc)
	t1.AddRowf("ACCU (accuracy-weighted)", fmt.Sprintf("%d/5", int(accuAcc*5+0.5)), accuAcc)
	t1.AddRowf("DEPEN cold start", fmt.Sprintf("%d/5", int(coldAcc*5+0.5)), coldAcc)
	t1.AddRowf("DEPEN + 2 labeled objects", fmt.Sprintf("%d/5", int(labeledAcc*5+0.5)), labeledAcc)
	rep.Tables = append(rep.Tables, t1)

	t2 := eval.NewTable("Dependences found (DEPEN + labels)", "pair", "P(dep)", "kt", "kf", "kd")
	for _, dp := range labeled.Dependences {
		t2.AddRowf(dp.Pair.String(), dp.Prob, dp.KT, dp.KF, dp.KD)
	}
	rep.Tables = append(rep.Tables, t2)

	rep.Notes = append(rep.Notes,
		"paper: naive voting is wrong on 3 of 5 researchers once S4, S5 copy S3",
		fmt.Sprintf("measured: naive voting accuracy %.1f (3/5 wrong), copy-aware with Example 3.1's side information %.1f (5/5)", voteAcc, labeledAcc),
		fmt.Sprintf("copier clique flagged: %d pairs among {S3,S4,S5}; independent pair S1~S2 at P=%.2f",
			len(labeled.Dependences), labeled.DependenceProb("S1", "S2")),
		"cold start on the bare 5-object table settles in the majority basin (documented ambiguity: the copier bloc is a self-consistent majority)")
	return rep
}

// EX2Table2 reproduces Table 2 / Example 2.2: the contrarian reviewer R4 is
// dissimilarity-dependent on R1 and consensus changes once it is dropped.
func EX2Table2() *Report {
	rep := &Report{ID: "EX2", Title: "Table 2 — dissimilarity-dependence on the movie-rating example"}
	d := dataset.Table2()
	cfg := dissim.DefaultConfig()
	res, err := dissim.Detect(d, cfg)
	if err != nil {
		panic(err)
	}
	t := eval.NewTable("Rater-pair analysis (Table 2)", "pair", "kind", "agree", "opposed", "zAgree", "zOpp")
	for _, dp := range res.Pairs {
		t.AddRowf(dp.Pair.String(), dp.Kind.String(),
			fmt.Sprintf("%d/%d", dp.Agreed, dp.Overlap),
			fmt.Sprintf("%d/%d", dp.Opposed, dp.Overlap), dp.Z, dp.ZOpp)
	}
	rep.Tables = append(rep.Tables, t)

	with := dissim.Consensus(d, res, cfg, dissim.KeepAll)
	without := dissim.Consensus(d, res, cfg, dissim.DropDependents)
	t2 := eval.NewTable("Consensus mean level (0=Bad..2=Good)", "movie", "all raters", "w/o dependent", "shift")
	for _, o := range d.Objects() {
		a := with[o].MeanLevel
		b := without[o].MeanLevel
		t2.AddRowf(o.Entity, a, b, b-a)
	}
	rep.Tables = append(rep.Tables, t2)

	v := res.Verdict("R1", "R4")
	rep.Notes = append(rep.Notes,
		"paper: R4 always provides the opposite of R1's ratings; naive aggregation over R1..R4 is biased",
		fmt.Sprintf("measured: R1~R4 verdict %q with opposition 3/3 (zOpp=%.2f); excluded raters: %v",
			v.Kind, v.ZOpp, dissim.Excluded(d, res)))
	return rep
}

// EX3Table3 reproduces Table 3 / Example 3.2: temporal information
// reclassifies S2/S3's values as out-of-date (not false), identifies S3 as
// a lazy copier of S1 and S2 as independent.
func EX3Table3() *Report {
	rep := &Report{ID: "EX3", Title: "Table 3 — temporal dependence on the timestamped affiliation example"}
	d := dataset.Table3()
	w := dataset.Table3Truth()
	reports := temporal.ComputeMetrics(d, w)

	t := eval.NewTable("CEF metrics and value census", "source", "coverage", "exactness", "meanLag", "current", "outdated", "false")
	for _, s := range d.Sources() {
		r := reports[s]
		t.AddRowf(string(s), r.Metrics.Coverage, r.Metrics.Exactness, r.Metrics.MeanLag,
			r.Census[temporal.ClassCurrent], r.Census[temporal.ClassOutdated], r.Census[temporal.ClassFalse])
	}
	rep.Tables = append(rep.Tables, t)

	res, err := temporal.DetectPairs(d, temporalConfig())
	if err != nil {
		panic(err)
	}
	t2 := eval.NewTable("Temporal dependence", "pair", "P(dep)", "shared", "A-first", "B-first")
	for _, dp := range res.AllPairs {
		t2.AddRowf(dp.Pair.String(), dp.Prob, dp.Shared, dp.AFirst, dp.BFirst)
	}
	rep.Tables = append(rep.Tables, t2)

	rep.Notes = append(rep.Notes,
		"paper: temporal info shows S2 and S3 provide out-of-date (not false) values; S2 is independent (its updates often precede S1's), S3 is a lazy copier",
		fmt.Sprintf("measured: zero false values for all sources; P(S1~S3)=%.2f flagged, P(S1~S2)=%.2f not flagged",
			res.DependenceProb("S1", "S3"), res.DependenceProb("S1", "S2")))
	return rep
}

// BookSim is the author-list similarity (with a representation threshold)
// shared by the EX4 pipeline; memoized because the solvers call it in
// inner loops. The memo is mutex-guarded: ValueSim callbacks are invoked
// concurrently by the engine's workers when Parallelism > 1.
func BookSim() func(a, b string) float64 {
	var mu sync.Mutex
	memo := map[[2]string]float64{}
	return func(a, b string) float64 {
		k := [2]string{a, b}
		if a > b {
			k = [2]string{b, a}
		}
		mu.Lock()
		v, ok := memo[k]
		mu.Unlock()
		if ok {
			return v
		}
		v = strsim.AuthorListSim(strsim.ParseAuthorList(a), strsim.ParseAuthorList(b))
		if v < 0.75 {
			v = 0 // below representation-level similarity nothing leaks
		}
		mu.Lock()
		memo[k] = v
		mu.Unlock()
		return v
	}
}

// EX4Config controls the AbeBooks reproduction scale.
type EX4Config struct {
	Books synth.BookConfig
	// MaxRounds for the detector (the corpus is large).
	MaxRounds int
}

// DefaultEX4Config runs at full Example 4.1 scale.
func DefaultEX4Config() EX4Config {
	return EX4Config{Books: synth.DefaultBookConfig(), MaxRounds: 8}
}

// SmallEX4Config is a fast variant for tests and quick benchmarks.
func SmallEX4Config() EX4Config {
	cfg := synth.DefaultBookConfig()
	cfg.NBooks = 150
	cfg.NStores = 80
	cfg.NListings = 2400
	cfg.MaxPerStore = 120
	cfg.DepPairTarget = 15
	return EX4Config{Books: cfg, MaxRounds: 6}
}

// EX4AbeBooks reproduces Example 4.1 end to end: corpus statistics,
// dependence discovery, record linkage, fusion and the four queries.
func EX4AbeBooks(cfg EX4Config) *Report {
	rep := &Report{ID: "EX4", Title: "Example 4.1 — AbeBooks-scale bookstore case study"}
	corpus, err := synth.GenerateBooks(cfg.Books)
	if err != nil {
		panic(err)
	}
	authors, err := corpus.AuthorsDataset()
	if err != nil {
		panic(err)
	}

	// Population statistics.
	perStore := []int{}
	for _, s := range corpus.Stores {
		n := 0
		for _, o := range authors.ObjectsOf(s) {
			_ = o
			n++
		}
		perStore = append(perStore, n)
	}
	storeHist := eval.Summarize(perStore)
	variants := []int{}
	for _, o := range authors.Objects() {
		variants = append(variants, len(authors.ValuesFor(o)))
	}
	varHist := eval.Summarize(variants)
	var accLo, accHi float64 = 2, -1
	for _, a := range corpus.StoreAccuracy {
		if a < accLo {
			accLo = a
		}
		if a > accHi {
			accHi = a
		}
	}

	t := eval.NewTable("Corpus statistics (paper's Example 4.1 figures in parentheses)",
		"statistic", "measured", "paper")
	t.AddRowf("bookstores", len(corpus.Stores), cfg.Books.NStores)
	t.AddRowf("books", len(corpus.Books), cfg.Books.NBooks)
	t.AddRowf("listings", corpus.Listings, cfg.Books.NListings)
	t.AddRowf("books/store min-max", fmt.Sprintf("%d-%d", storeHist.Min, storeHist.Max),
		fmt.Sprintf("1-%d", cfg.Books.MaxPerStore))
	t.AddRowf("author lists/book min-max (mean)",
		fmt.Sprintf("%d-%d (%.1f)", varHist.Min, varHist.Max, varHist.Mean), "1-23 (4)")
	t.AddRowf("store accuracy range", fmt.Sprintf("%.2f-%.2f", accLo, accHi), "0-0.92")
	rep.Tables = append(rep.Tables, t)

	// Dependence discovery on raw surface forms with representation-aware
	// truth discovery.
	dcfg := depenConfig()
	dcfg.MinShared = cfg.Books.MinSharedForDep
	dcfg.MaxRounds = cfg.MaxRounds
	dcfg.Truth.ValueSim = BookSim()
	dcfg.Truth.ValueSimWeight = 1.0
	res, err := depen.Detect(authors, dcfg)
	if err != nil {
		panic(err)
	}
	var detected []model.SourcePair
	for _, dp := range res.Dependences {
		detected = append(detected, dp.Pair)
	}
	prf := eval.PairPRF(detected, corpus.DependentPairs)
	t2 := eval.NewTable("Dependence discovery", "metric", "value")
	t2.AddRowf("candidate pairs (share >= 10 books)", len(res.AllPairs))
	t2.AddRowf("pairs flagged dependent", len(res.Dependences))
	t2.AddRowf("planted dependent pairs", len(corpus.DependentPairs))
	t2.AddRowf("precision vs planted", prf.Precision)
	t2.AddRowf("recall vs planted", prf.Recall)
	t2.AddRowf("F1", prf.F1)
	rep.Tables = append(rep.Tables, t2)

	// Record linkage (the variants statistic after canonicalization).
	lres, err := linkage.Link(authors, linkage.DefaultConfig())
	if err != nil {
		panic(err)
	}
	clustersPerBook := []int{}
	for _, o := range authors.Objects() {
		clustersPerBook = append(clustersPerBook, len(lres.ClustersOf(o)))
	}
	clHist := eval.Summarize(clustersPerBook)
	t3 := eval.NewTable("Record linkage", "metric", "value")
	t3.AddRowf("raw surface forms per book (mean)", varHist.Mean)
	t3.AddRowf("clusters per book after linkage (mean)", clHist.Mean)
	rep.Tables = append(rep.Tables, t3)

	// Queries Q1-Q4.
	qt := runBookQueries(corpus, authors, res)
	rep.Tables = append(rep.Tables, qt)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("paper: 471 store pairs sharing >= 10 books are very likely dependent; measured: %d flagged (precision %.2f, recall %.2f against the planted copier network)",
			len(res.Dependences), prf.Precision, prf.Recall),
		"truth discovery runs on raw surface forms with representation-aware (similarity-pooled) support, preserving the verbatim-copy signal linkage would erase")
	return rep
}

// runBookQueries answers the four Example 4.1 queries.
func runBookQueries(corpus *synth.BookCorpus, authors *dataset.Dataset,
	res *depen.Result) *eval.Table {
	t := eval.NewTable("Example 4.1 queries", "query", "answer")

	// Q1: What are the books on Java Programming? (topic filter)
	javaCount := 0
	for _, b := range corpus.Books {
		if b.Topic == "Java Programming" {
			javaCount++
		}
	}
	t.AddRowf("Q1 books on Java Programming", fmt.Sprintf("%d books", javaCount))

	// Q2: Who are the authors of one contested popular book? Resolve with
	// the dependence-aware posterior.
	popular := corpus.Books[0]
	o := synth.BookObj(popular.ID)
	best, bestP := "", -1.0
	for v, p := range res.Truth.Probs[o] {
		if p > bestP {
			best, bestP = v, p
		}
	}
	match := strsim.AuthorListSim(strsim.ParseAuthorList(best),
		strsim.ParseAuthorList(popular.TrueAuthors)) > 0.9
	t.AddRowf(fmt.Sprintf("Q2 authors of %q", popular.Title),
		fmt.Sprintf("%s (p=%.2f, correct=%v)", best, bestP, match))

	// Q3: Which books does the most prolific author family appear on?
	byFamily := map[string]int{}
	for _, b := range corpus.Books {
		seen := map[string]bool{}
		for _, a := range strsim.ParseAuthorList(b.TrueAuthors) {
			if !seen[a.Family] {
				seen[a.Family] = true
				byFamily[a.Family]++
			}
		}
	}
	topFam, topN := "", 0
	fams := make([]string, 0, len(byFamily))
	for f := range byFamily {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		if byFamily[f] > topN {
			topFam, topN = f, byFamily[f]
		}
	}
	t.AddRowf("Q3 most prolific author (family)", fmt.Sprintf("%s (%d books)", topFam, topN))

	// Q4: most productive publisher in the Database field.
	byPub := map[string]int{}
	for _, b := range corpus.Books {
		if b.Topic == "Database Systems" {
			byPub[b.Publisher]++
		}
	}
	pubs := make([]string, 0, len(byPub))
	for p := range byPub {
		pubs = append(pubs, p)
	}
	sort.Strings(pubs)
	topPub, topPN := "", 0
	for _, p := range pubs {
		if byPub[p] > topPN {
			topPub, topPN = p, byPub[p]
		}
	}
	t.AddRowf("Q4 top Database publisher", fmt.Sprintf("%s (%d books)", topPub, topPN))
	return t
}

// EX5CopySweep measures copy-detection quality versus copy rate and error
// rate (figure-equivalent; challenges: accurate sources, partial
// dependence).
func EX5CopySweep(seed int64, nObjects int) *Report {
	rep := &Report{ID: "EX5", Title: "copy-detection F1 vs copy rate and source error rate"}
	t := eval.NewTable("Detection quality (3 independents at 0.9/0.8/0.7 + 1 copier)",
		"copyRate", "ownAcc", "P", "R", "F1")
	for _, copyRate := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		for _, ownAcc := range []float64{0.6, 0.8} {
			sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
				Seed: seed, NObjects: nObjects,
				IndependentAcc: []float64{0.9, 0.8, 0.7},
				Copiers:        []synth.CopierSpec{{MasterIndex: 0, CopyRate: copyRate, OwnAcc: ownAcc}},
				FalsePool:      20,
			})
			if err != nil {
				panic(err)
			}
			res, err := depen.Detect(sw.Dataset, depenConfig())
			if err != nil {
				panic(err)
			}
			truthPairs := map[model.SourcePair]bool{
				model.NewSourcePair("C0", "I0"): true,
			}
			var det []model.SourcePair
			for _, dp := range res.Dependences {
				det = append(det, dp.Pair)
			}
			prf := eval.PairPRF(det, truthPairs)
			t.AddRowf(copyRate, ownAcc, prf.Precision, prf.Recall, prf.F1)
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"expected shape: detection strengthens with copy rate; low copy rates are hard (partial dependence challenge); no false positives among accurate independents")
	return rep
}

// EX6TruthSweep compares Vote/ACCU/DEPEN truth accuracy as copiers
// multiply (figure-equivalent; the paper's headline motivation).
func EX6TruthSweep(seed int64, nObjects int) *Report {
	rep := &Report{ID: "EX6", Title: "truth-discovery accuracy vs number of copiers"}
	t := eval.NewTable("Accuracy of chosen values (master of copiers is 70% accurate)",
		"copiers", "vote", "accu", "depen")
	for _, nCopiers := range []int{0, 1, 2, 3, 4} {
		copiers := make([]synth.CopierSpec, nCopiers)
		for i := range copiers {
			// All copiers copy the weakest independent source I3.
			copiers[i] = synth.CopierSpec{MasterIndex: 3, CopyRate: 0.9, OwnAcc: 0.6}
		}
		sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
			Seed: seed + int64(nCopiers), NObjects: nObjects,
			IndependentAcc: []float64{0.9, 0.85, 0.8, 0.7},
			Copiers:        copiers,
			FalsePool:      20,
		})
		if err != nil {
			panic(err)
		}
		vote := truth.Vote(sw.Dataset)
		accuRes, err := truth.Accu(sw.Dataset, truthConfig())
		if err != nil {
			panic(err)
		}
		dres, err := depen.Detect(sw.Dataset, depenConfig())
		if err != nil {
			panic(err)
		}
		t.AddRowf(nCopiers,
			eval.ChosenAccuracy(vote.Chosen, sw.World),
			eval.ChosenAccuracy(accuRes.Chosen, sw.World),
			eval.ChosenAccuracy(dres.Truth.Chosen, sw.World))
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"expected shape: voting degrades as the copier bloc grows; DEPEN beats voting once the bloc is detectable",
		"at the crossover (bloc size ~ honest sources) the cold-start problem is maximally ambiguous and all methods dip — the bootstrapping issue §3.2's iterative scheme is designed around")
	return rep
}

// EX7TemporalSweep measures temporal detection quality versus snapshot
// granularity (incomplete observations) and copier laziness.
func EX7TemporalSweep(seed int64, nObjects int) *Report {
	rep := &Report{ID: "EX7", Title: "temporal detection vs observation granularity and laziness"}
	t := eval.NewTable("Lazy-copier posterior under coarser snapshots",
		"snapshotEvery", "laziness(maxLag)", "P(copier pair)", "max P(independent pair)")
	for _, every := range []model.Time{0, 2, 4} {
		for _, lag := range []model.Time{3, 8} {
			tw, err := synth.GenerateTemporal(synth.TemporalConfig{
				Seed: seed, NObjects: nObjects, Horizon: 60, ChangeRate: 0.12,
				Publishers: []synth.PublisherSpec{
					{CaptureProb: 0.95, MaxDelay: 2},
					{CaptureProb: 0.9, MaxDelay: 3},
					{CaptureProb: 0.8, MaxDelay: 4},
				},
				LazyCopiers: []synth.LazyCopierSpec{
					{MasterIndex: 0, CopyProb: 0.85, MinLag: 1, MaxLag: lag},
				},
				SnapshotEvery: every,
			})
			if err != nil {
				panic(err)
			}
			cfg := temporalConfig()
			cfg.Window = lag + 4
			res, err := temporal.DetectPairs(tw.Dataset, cfg)
			if err != nil {
				panic(err)
			}
			copierP := res.DependenceProb("L0", "P0")
			maxInd := 0.0
			for _, pair := range [][2]model.SourceID{{"P0", "P1"}, {"P0", "P2"}, {"P1", "P2"}} {
				if p := res.DependenceProb(pair[0], pair[1]); p > maxInd {
					maxInd = p
				}
			}
			t.AddRowf(every, lag, copierP, maxInd)
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"expected shape: the copier pair dominates the independent pairs; coarse snapshots blur the order signal (incomplete-observations challenge)")
	return rep
}

// EX8QueryOrder compares answer quality per probe across ordering policies
// (figure-equivalent for §4's online query answering).
func EX8QueryOrder(seed int64) *Report {
	rep := &Report{ID: "EX8", Title: "online query answering: quality vs sources probed"}
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed: seed, NObjects: 120,
		IndependentAcc: []float64{0.92, 0.85, 0.7, 0.65},
		Copiers: []synth.CopierSpec{
			{MasterIndex: 0, CopyRate: 0.9, OwnAcc: 0.6},
			{MasterIndex: 0, CopyRate: 0.9, OwnAcc: 0.6},
		},
		FalsePool: 20,
	})
	if err != nil {
		panic(err)
	}
	// One serving session: the truth+dependence precompute runs once and the
	// three policy traces are answered against its cached state (bit-identical
	// to per-call AnswerObjects with this discovery result).
	scfg := session.DefaultConfig()
	scfg.Depen = depenConfig()
	scfg.Query.Parallelism = Parallelism
	sess, err := session.New(sw.Dataset, scfg)
	if err != nil {
		panic(err)
	}

	t := eval.NewTable("Fraction of query objects answered correctly after k probes",
		"k", "greedy-gain", "accuracy-coverage", "by-id")
	curves := map[queryans.Policy][]float64{}
	for _, pol := range []queryans.Policy{queryans.GreedyGain, queryans.AccuracyCoverage, queryans.ByID} {
		cfg := queryans.DefaultConfig()
		cfg.Policy = pol
		cfg.Parallelism = Parallelism
		res, err := sess.AnswerObjectsWith(sw.Dataset.Objects(), cfg)
		if err != nil {
			panic(err)
		}
		curves[pol] = queryans.QualityCurve(res, sw.World)
	}
	maxLen := 0
	for _, c := range curves {
		if len(c) > maxLen {
			maxLen = len(c)
		}
	}
	at := func(c []float64, i int) float64 {
		if i < len(c) {
			return c[i]
		}
		if len(c) == 0 {
			return 0
		}
		return c[len(c)-1]
	}
	for i := 0; i < maxLen; i++ {
		t.AddRowf(i+1,
			at(curves[queryans.GreedyGain], i),
			at(curves[queryans.AccuracyCoverage], i),
			at(curves[queryans.ByID], i))
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"expected shape: the dependence-aware order skips copies of already-probed sources and reaches high quality with fewer probes")
	return rep
}

// EX9DissimSweep measures dissimilarity-detection power versus overlap and
// opposition rate, plus the correlated-raters false-positive check.
func EX9DissimSweep(seed int64) *Report {
	rep := &Report{ID: "EX9", Title: "dissimilarity detection vs overlap and opposition rate"}
	t := eval.NewTable("Verdicts for the planted contrarian (vs rater R0)",
		"items", "oppositionRate", "verdict", "zOpp", "honest FPs")
	for _, nItems := range []int{10, 30, 80} {
		for _, opp := range []float64{0.5, 1.0} {
			rw, err := synth.GenerateRatings(synth.RatingConfig{
				Seed: seed, NItems: nItems, NHonest: 5, NoiseRate: 0.2,
				NContrarians: 1, NCopiers: 1, OppositionRate: opp,
			})
			if err != nil {
				panic(err)
			}
			res, err := dissim.Detect(rw.Dataset, dissim.DefaultConfig())
			if err != nil {
				panic(err)
			}
			v := res.Verdict("CONTRA0", "R0")
			fps := 0
			for i := 1; i < 5; i++ {
				hv := res.Verdict("R0", model.SourceID(fmt.Sprintf("R%d", i)))
				if hv.Kind != dissim.Independent {
					fps++
				}
			}
			t.AddRowf(nItems, opp, v.Kind.String(), v.ZOpp, fps)
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"expected shape: power grows with overlap and opposition rate; honest raters sharing tastes stay independent (correlated-information challenge)")
	return rep
}

// EX10Winnow compares the winnowing-fingerprint baseline with the Bayesian
// detector on the EX5 world (ablation).
func EX10Winnow(seed int64, nObjects int) *Report {
	rep := &Report{ID: "EX10", Title: "winnowing baseline vs Bayesian detection"}
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed: seed, NObjects: nObjects,
		// Two highly accurate independents agree on almost everything —
		// the baseline's trap.
		IndependentAcc: []float64{0.95, 0.93, 0.7},
		Copiers:        []synth.CopierSpec{{MasterIndex: 2, CopyRate: 0.85, OwnAcc: 0.6}},
		FalsePool:      20,
	})
	if err != nil {
		panic(err)
	}
	truthPairs := map[model.SourcePair]bool{model.NewSourcePair("C0", "I2"): true}

	wpairs, err := winnow.DetectPairs(sw.Dataset, winnow.DefaultConfig(), 0.3)
	if err != nil {
		panic(err)
	}
	var wdet []model.SourcePair
	for _, p := range wpairs {
		wdet = append(wdet, p.Pair)
	}
	wprf := eval.PairPRF(wdet, truthPairs)

	dres, err := depen.Detect(sw.Dataset, depenConfig())
	if err != nil {
		panic(err)
	}
	var bdet []model.SourcePair
	for _, dp := range dres.Dependences {
		bdet = append(bdet, dp.Pair)
	}
	bprf := eval.PairPRF(bdet, truthPairs)

	t := eval.NewTable("Copy detection, accurate-independents world", "method", "flagged", "P", "R", "F1")
	t.AddRowf("winnowing fingerprints (sim>=0.3)", len(wdet), wprf.Precision, wprf.Recall, wprf.F1)
	t.AddRowf("Bayesian (DEPEN)", len(bdet), bprf.Precision, bprf.Recall, bprf.F1)
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"expected shape: fingerprint similarity flags the accurate independent pair (it ignores truth); the Bayesian detector separates shared-true from shared-false agreement")
	return rep
}

// RecommendDemo exercises §4's source recommendation on the Table 1 + Table
// 2 results (used by cmd/experiments for completeness).
func RecommendDemo() *Report {
	rep := &Report{ID: "EX11", Title: "source recommendation (trust and diversity modes)"}
	d := dataset.Table1()
	cfg := depenConfig()
	cfg.Truth.Known = knownTwo()
	dres, err := depen.Detect(d, cfg)
	if err != nil {
		panic(err)
	}
	profiles := recommend.BuildProfiles(d, dres, nil)
	ranked, err := recommend.Rank(profiles, recommend.DefaultWeights())
	if err != nil {
		panic(err)
	}
	t := eval.NewTable("Trust ranking (Table 1 sources)", "source", "trust", "accuracy", "independence")
	for _, p := range ranked {
		t.AddRowf(string(p.Source), p.Trust, p.Accuracy, p.Independence)
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes, "copiers rank below independent sources through the independence axis")
	return rep
}
