package experiments

import (
	"strings"
	"testing"
)

// These tests pin the headline claims each experiment must reproduce; the
// full tables are printed by cmd/experiments and recorded in EXPERIMENTS.md.

func TestEX1HeadlineClaims(t *testing.T) {
	rep := EX1Table1()
	out := rep.String()
	if !strings.Contains(out, "naive voting") || !strings.Contains(out, "0.400") {
		t.Fatalf("EX1 should show naive voting at 2/5 = 0.4:\n%s", out)
	}
	if !strings.Contains(out, "DEPEN + 2 labeled objects") || !strings.Contains(out, "1.000") {
		t.Fatalf("EX1 should show the labeled run at 5/5:\n%s", out)
	}
	if !strings.Contains(out, "S3~S4") {
		t.Fatalf("EX1 should flag the copier clique:\n%s", out)
	}
}

func TestEX2HeadlineClaims(t *testing.T) {
	out := EX2Table2().String()
	if !strings.Contains(out, "R1~R4") || !strings.Contains(out, "dissimilarity-dependent") {
		t.Fatalf("EX2 should flag R1~R4:\n%s", out)
	}
}

func TestEX3HeadlineClaims(t *testing.T) {
	out := EX3Table3().String()
	if !strings.Contains(out, "zero false values") {
		t.Fatalf("EX3 should report no false values:\n%s", out)
	}
	if !strings.Contains(out, "S1~S3") {
		t.Fatalf("EX3 should analyze the lazy copier pair:\n%s", out)
	}
}

func TestEX4SmallScale(t *testing.T) {
	rep := EX4AbeBooks(SmallEX4Config())
	out := rep.String()
	for _, want := range []string{"bookstores", "Dependence discovery", "Q1 books on Java Programming"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EX4 missing %q:\n%s", want, out)
		}
	}
}

func TestEX5Through10Run(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps")
	}
	for _, rep := range []*Report{
		EX5CopySweep(11, 120),
		EX6TruthSweep(13, 120),
		EX7TemporalSweep(17, 40),
		EX8QueryOrder(19),
		EX9DissimSweep(23),
		EX10Winnow(29, 120),
		RecommendDemo(),
	} {
		if len(rep.Tables) == 0 {
			t.Fatalf("%s produced no tables", rep.ID)
		}
		if rep.String() == "" {
			t.Fatalf("%s renders empty", rep.ID)
		}
	}
}

func TestBookSimMemoizesAndThresholds(t *testing.T) {
	sim := BookSim()
	a := "Jeffrey Ullman; Jennifer Widom"
	b := "J. Ullman; J. Widom"
	if s := sim(a, b); s < 0.75 {
		t.Fatalf("representation pair sim = %v", s)
	}
	if s := sim(a, "Donald Knuth"); s != 0 {
		t.Fatalf("unrelated pair sim = %v, want 0 below threshold", s)
	}
	if sim(a, b) != sim(b, a) {
		t.Fatal("sim not symmetric")
	}
}
