// Minimal singleflight for response coalescing.
//
// Under fan-in traffic many clients ask the same question at once (a hot
// query behind a cache miss). Computing the answer once and handing every
// waiter the same response bytes turns an N×cost spike into 1×cost — the
// request-level form of the amortization argument the Session makes for
// the precompute. Hand-rolled because the module has no external
// dependencies; the semantics match the well-known golang.org/x/sync shape
// but return response bytes plus a shared flag.
package server

import "sync"

// flightResult is the outcome every waiter of one key receives.
type flightResult struct {
	status int
	body   []byte
}

// flightGroup deduplicates concurrent calls by key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	res flightResult
}

// do runs fn once per key among concurrent callers; later callers block and
// receive the leader's result with shared=true. The key is forgotten once
// the leader finishes, so sequential calls re-execute.
func (g *flightGroup) do(key string, fn func() flightResult) (res flightResult, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.res, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.res = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	return c.res, false
}
