// Request metrics: counters, latency histograms and an in-flight gauge,
// exposed in Prometheus text format on /metrics. Hand-rolled on
// sync/atomic — no client library dependency — with a fixed operation set
// and fixed buckets so the hot path is a few atomic adds.
package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// ops is the fixed label set; one opMetrics per entry. "other" counts
// requests that matched no dataset/operation (404 traffic must still be
// visible to an operator watching /metrics).
var ops = []string{"accuracy", "adopt", "answer", "append", "fuse", "healthz", "history", "link", "metrics", "other", "readyz", "recommend", "snapshot", "trajectory"}

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// opMetrics is one operation's counters.
type opMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	// buckets[i] counts observations <= latencyBuckets[i]; an implicit +Inf
	// bucket equals requests.
	buckets  [8]atomic.Int64
	sumNanos atomic.Int64
}

// metrics is the server-wide instrument set.
type metrics struct {
	inFlight  atomic.Int64
	coalesced atomic.Int64
	// historical counts requests that resolved an ?as_of= epoch rather
	// than serving the current one.
	historical atomic.Int64
	perOp      map[string]*opMetrics
}

func newMetrics() *metrics {
	m := &metrics{perOp: make(map[string]*opMetrics, len(ops))}
	for _, op := range ops {
		m.perOp[op] = &opMetrics{}
	}
	return m
}

// observe records one finished request.
func (m *metrics) observe(op string, d time.Duration, status int) {
	om, ok := m.perOp[op]
	if !ok {
		return
	}
	om.requests.Add(1)
	if status >= 400 {
		om.errors.Add(1)
	}
	om.sumNanos.Add(int64(d))
	secs := d.Seconds()
	for i, le := range latencyBuckets {
		if secs <= le {
			om.buckets[i].Add(1)
		}
	}
}

// write renders the Prometheus text exposition.
func (m *metrics) write(w io.Writer) {
	names := make([]string, 0, len(m.perOp))
	for op := range m.perOp {
		names = append(names, op)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP currents_in_flight Requests currently being served.\n")
	fmt.Fprintf(w, "# TYPE currents_in_flight gauge\n")
	fmt.Fprintf(w, "currents_in_flight %d\n", m.inFlight.Load())

	fmt.Fprintf(w, "# HELP currents_answer_coalesced_total Answer requests served by joining an identical in-flight request.\n")
	fmt.Fprintf(w, "# TYPE currents_answer_coalesced_total counter\n")
	fmt.Fprintf(w, "currents_answer_coalesced_total %d\n", m.coalesced.Load())

	fmt.Fprintf(w, "# HELP currents_historical_requests_total Requests served against a retained (as_of) epoch rather than the current one.\n")
	fmt.Fprintf(w, "# TYPE currents_historical_requests_total counter\n")
	fmt.Fprintf(w, "currents_historical_requests_total %d\n", m.historical.Load())

	fmt.Fprintf(w, "# HELP currents_requests_total Requests served, by operation.\n")
	fmt.Fprintf(w, "# TYPE currents_requests_total counter\n")
	for _, op := range names {
		fmt.Fprintf(w, "currents_requests_total{op=%q} %d\n", op, m.perOp[op].requests.Load())
	}

	fmt.Fprintf(w, "# HELP currents_request_errors_total Requests answered with status >= 400, by operation.\n")
	fmt.Fprintf(w, "# TYPE currents_request_errors_total counter\n")
	for _, op := range names {
		fmt.Fprintf(w, "currents_request_errors_total{op=%q} %d\n", op, m.perOp[op].errors.Load())
	}

	fmt.Fprintf(w, "# HELP currents_request_duration_seconds Request latency, by operation.\n")
	fmt.Fprintf(w, "# TYPE currents_request_duration_seconds histogram\n")
	for _, op := range names {
		om := m.perOp[op]
		for i, le := range latencyBuckets {
			fmt.Fprintf(w, "currents_request_duration_seconds_bucket{op=%q,le=\"%g\"} %d\n",
				op, le, om.buckets[i].Load())
		}
		n := om.requests.Load()
		fmt.Fprintf(w, "currents_request_duration_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", op, n)
		fmt.Fprintf(w, "currents_request_duration_seconds_sum{op=%q} %g\n",
			op, float64(om.sumNanos.Load())/1e9)
		fmt.Fprintf(w, "currents_request_duration_seconds_count{op=%q} %d\n", op, n)
	}
}

// writeResidencyMetrics renders the lazy-registry gauges: how many worlds
// are resident, how many mmap'd bytes they hold, and the lifetime load and
// eviction counts — what an operator watches to size -max-resident.
func writeResidencyMetrics(w io.Writer, rs ResidencyStats) {
	fmt.Fprintf(w, "# HELP currents_datasets_resident Sessions currently loaded in memory.\n")
	fmt.Fprintf(w, "# TYPE currents_datasets_resident gauge\n")
	fmt.Fprintf(w, "currents_datasets_resident %d\n", rs.Resident)
	fmt.Fprintf(w, "# HELP currents_mapped_bytes Bytes of snapshot files currently memory-mapped.\n")
	fmt.Fprintf(w, "# TYPE currents_mapped_bytes gauge\n")
	fmt.Fprintf(w, "currents_mapped_bytes %d\n", rs.MappedBytes)
	fmt.Fprintf(w, "# HELP currents_world_loads_total Lazy session loads since server start.\n")
	fmt.Fprintf(w, "# TYPE currents_world_loads_total counter\n")
	fmt.Fprintf(w, "currents_world_loads_total %d\n", rs.Loads)
	fmt.Fprintf(w, "# HELP currents_world_evictions_total Sessions evicted under the resident bound since server start.\n")
	fmt.Fprintf(w, "# TYPE currents_world_evictions_total counter\n")
	fmt.Fprintf(w, "currents_world_evictions_total %d\n", rs.Evictions)
}

// writeDatasetMetrics renders the per-dataset lifecycle series (epoch
// gauge, swap and append counters) from a registry snapshot taken at
// scrape time.
func writeDatasetMetrics(w io.Writer, stats []DatasetStat) {
	fmt.Fprintf(w, "# HELP currents_dataset_epoch Serving epoch of each dataset (increments on every swap).\n")
	fmt.Fprintf(w, "# TYPE currents_dataset_epoch gauge\n")
	for _, st := range stats {
		fmt.Fprintf(w, "currents_dataset_epoch{dataset=%q} %d\n", st.Name, st.Epoch)
	}
	fmt.Fprintf(w, "# HELP currents_dataset_swaps_total Session swaps per dataset since server start.\n")
	fmt.Fprintf(w, "# TYPE currents_dataset_swaps_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(w, "currents_dataset_swaps_total{dataset=%q} %d\n", st.Name, st.Swaps)
	}
	fmt.Fprintf(w, "# HELP currents_dataset_appends_total Accepted append batches per dataset since server start.\n")
	fmt.Fprintf(w, "# TYPE currents_dataset_appends_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(w, "currents_dataset_appends_total{dataset=%q} %d\n", st.Name, st.Appends)
	}
	fmt.Fprintf(w, "# HELP currents_dataset_resident Whether each dataset's session is currently loaded (1) or lazy/evicted (0).\n")
	fmt.Fprintf(w, "# TYPE currents_dataset_resident gauge\n")
	for _, st := range stats {
		v := 0
		if st.Resident {
			v = 1
		}
		fmt.Fprintf(w, "currents_dataset_resident{dataset=%q} %d\n", st.Name, v)
	}
	fmt.Fprintf(w, "# HELP currents_retained_epochs Historical epochs addressable behind the current one, per dataset.\n")
	fmt.Fprintf(w, "# TYPE currents_retained_epochs gauge\n")
	for _, st := range stats {
		fmt.Fprintf(w, "currents_retained_epochs{dataset=%q} %d\n", st.Name, st.RetainedEpochs)
	}
	fmt.Fprintf(w, "# HELP currents_asof_materializations_total Historical sessions rebuilt on demand for as_of queries, per dataset.\n")
	fmt.Fprintf(w, "# TYPE currents_asof_materializations_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(w, "currents_asof_materializations_total{dataset=%q} %d\n", st.Name, st.AsOfMaterializations)
	}
}
