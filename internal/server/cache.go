// Server-side answer cache: an LRU with optional TTL layered above the
// singleflight group.
//
// Singleflight only helps while identical requests overlap; a *series* of
// identical queries spread over time — the dashboard that re-asks the same
// question every few seconds, the hot entity every client looks up — pays
// the full planner cost each time. The cache closes that gap: a hit returns
// the previously rendered response bytes, which are byte-identical to a
// fresh computation because the planner is deterministic and the cache key
// captures every request field that can influence the bytes.
//
// The key is the *normalized* request (see AnswerRequest.cacheKey): the
// decoded semantic fields rather than the raw body, so requests differing
// only in JSON whitespace, field order or the parallelism override (results
// are bit-identical at every parallelism, a property the determinism suites
// pin) share an entry. The query list is length-prefixed in request order,
// duplicates included: answer traces are positional and duplicate entries
// change the greedy gain sums, so reordering or deduplicating the query
// would conflate requests with different byte-exact responses.
//
// Only status-200 responses are cached. Hit/miss/eviction counts and the
// entry gauge are exported on /metrics.
package server

import (
	"container/list"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// answerCache is a mutex-guarded LRU of rendered answer responses. A nil
// *answerCache is a valid, always-missing cache (caching disabled).
type answerCache struct {
	mu      sync.Mutex
	maxSize int
	ttl     time.Duration // 0 = entries never expire
	order   *list.List    // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	flushes   atomic.Int64

	// now is the clock, injectable for TTL tests.
	now func() time.Time
}

type cacheEntry struct {
	key     string
	body    []byte
	expires time.Time // zero = never
}

// newAnswerCache returns a cache bounded to maxSize entries with the given
// TTL, or nil (disabled) when maxSize <= 0.
func newAnswerCache(maxSize int, ttl time.Duration) *answerCache {
	if maxSize <= 0 {
		return nil
	}
	return &answerCache{
		maxSize: maxSize,
		ttl:     ttl,
		order:   list.New(),
		entries: make(map[string]*list.Element, maxSize),
		now:     time.Now,
	}
}

// get returns the cached response body for key, counting the lookup. An
// expired entry is removed (counted as an eviction) and reported as a miss.
func (c *answerCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.expires.IsZero() || !c.now().After(e.expires) {
			c.order.MoveToFront(el)
			c.mu.Unlock()
			c.hits.Add(1)
			return e.body, true
		}
		c.order.Remove(el)
		delete(c.entries, key)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// put stores a rendered response, evicting the least recently used entry
// when full. body must not be mutated afterwards.
func (c *answerCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	e := &cacheEntry{key: key, body: body}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(e)
	for c.order.Len() > c.maxSize {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// flushPrefix removes every entry whose key starts with prefix and counts
// one flush. The epoch in the cache key already prevents a swapped dataset
// from serving stale bytes; flushing on swap additionally reclaims the dead
// epoch's entries immediately instead of waiting for LRU pressure.
func (c *answerCache) flushPrefix(prefix string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	var removed int
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); strings.HasPrefix(e.key, prefix) {
			c.order.Remove(el)
			delete(c.entries, e.key)
			removed++
		}
		el = next
	}
	c.mu.Unlock()
	c.flushes.Add(1)
	return removed
}

// len returns the current entry count.
func (c *answerCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// writeMetrics renders the cache series in Prometheus text form. The series
// are always present — zeros when caching is disabled — so scrapers (and
// `currents loadgen`) never have to special-case a missing metric.
func (c *answerCache) writeMetrics(w io.Writer) {
	var hits, misses, evictions, flushes int64
	var size int
	if c != nil {
		hits, misses, evictions = c.hits.Load(), c.misses.Load(), c.evictions.Load()
		flushes = c.flushes.Load()
		size = c.len()
	}
	fmt.Fprintf(w, "# HELP currents_answer_cache_hits_total Answer requests served from the response cache.\n")
	fmt.Fprintf(w, "# TYPE currents_answer_cache_hits_total counter\n")
	fmt.Fprintf(w, "currents_answer_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# HELP currents_answer_cache_misses_total Answer cache lookups that missed.\n")
	fmt.Fprintf(w, "# TYPE currents_answer_cache_misses_total counter\n")
	fmt.Fprintf(w, "currents_answer_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# HELP currents_answer_cache_evictions_total Entries evicted (capacity or TTL).\n")
	fmt.Fprintf(w, "# TYPE currents_answer_cache_evictions_total counter\n")
	fmt.Fprintf(w, "currents_answer_cache_evictions_total %d\n", evictions)
	fmt.Fprintf(w, "# HELP currents_answer_cache_flushes_total Cache flushes triggered by session swaps.\n")
	fmt.Fprintf(w, "# TYPE currents_answer_cache_flushes_total counter\n")
	fmt.Fprintf(w, "currents_answer_cache_flushes_total %d\n", flushes)
	fmt.Fprintf(w, "# HELP currents_answer_cache_entries Entries currently cached.\n")
	fmt.Fprintf(w, "# TYPE currents_answer_cache_entries gauge\n")
	fmt.Fprintf(w, "currents_answer_cache_entries %d\n", size)
}
