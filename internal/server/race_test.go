package server

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// TestServerRace16Clients drives one server instance with 16 concurrent
// clients mixing answer, fuse, recommend and accuracy requests across two
// registered datasets, each client asserting byte-identity against
// golden bodies computed from direct Session calls. Run under -race this
// exercises every shared structure on the serving path: the registry's
// read path, the sessions' cached state, the singleflight group (half the
// clients issue the same hot answer request concurrently) and the metrics
// counters.
func TestServerRace16Clients(t *testing.T) {
	ts, sessions := testServer(t)

	type nameAndSession struct {
		name string
		base string
	}
	datasets := []nameAndSession{
		{"alpha", ts.URL + "/v1/alpha"},
		{"beta", ts.URL + "/v1/beta"},
	}

	// Golden bodies, one set per dataset, precomputed from direct Session
	// calls before the goroutines launch (the clients only compare bytes).
	const coldVariants = 8
	type golden struct {
		hotReq    string
		hotWant   []byte
		coldReqs  [coldVariants]string
		coldWants [coldVariants][]byte
		fuseWant  []byte
		recReq    string
		recWant   []byte
		accWant   []byte
	}
	goldens := map[string]*golden{}
	for _, ds := range datasets {
		sess := sessions[ds.name]
		objs := sess.Dataset().Objects()
		hot := AnswerRequest{Query: refsFor(objs[:5])}
		recommendReq := RecommendRequest{K: intp(4)}
		top, err := ExecRecommend(sess, recommendReq)
		if err != nil {
			t.Fatal(err)
		}
		fuseRes, err := ExecFuse(sess)
		if err != nil {
			t.Fatal(err)
		}
		g := &golden{
			hotReq:   marshalReq(t, hot),
			hotWant:  expectedAnswer(t, sess, hot),
			fuseWant: expectJSON(t, BuildFuseResponse(objs, fuseRes)),
			recReq:   marshalReq(t, recommendReq),
			recWant:  expectJSON(t, BuildRecommendResponse(top)),
			accWant:  expectJSON(t, BuildAccuracyResponse(ExecAccuracy(sess))),
		}
		for v := 0; v < coldVariants; v++ {
			req := AnswerRequest{Query: refsFor(objs[v%len(objs) : v%len(objs)+2])}
			g.coldReqs[v] = marshalReq(t, req)
			g.coldWants[v] = expectedAnswer(t, sess, req)
		}
		goldens[ds.name] = g
	}

	const clients = 16
	const reqsPerClient = 12
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ds := datasets[c%len(datasets)]
			g := goldens[ds.name]
			for i := 0; i < reqsPerClient; i++ {
				var (
					resp *http.Response
					body []byte
					want []byte
					err  error
				)
				switch (c + i) % 4 {
				case 0: // hot answer — identical across half the fleet, coalesced
					resp, body, err = doPost(ds.base+"/answer", g.hotReq)
					want = g.hotWant
				case 1: // cold answer — varies across clients/iterations
					v := (c*reqsPerClient + i) % coldVariants
					resp, body, err = doPost(ds.base+"/answer", g.coldReqs[v])
					want = g.coldWants[v]
				case 2:
					resp, body, err = doPost(ds.base+"/fuse", "")
					want = g.fuseWant
				case 3:
					if i%2 == 0 {
						resp, body, err = doPost(ds.base+"/recommend", g.recReq)
						want = g.recWant
					} else {
						resp, body, err = doGet(ds.base + "/accuracy")
						want = g.accWant
					}
				}
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d req %d: status %d: %s", c, i, resp.StatusCode, body)
					return
				}
				if !bytes.Equal(body, want) {
					errs <- fmt.Errorf("client %d req %d: body differs from direct session call", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The metrics endpoint must serve consistently after the storm.
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("metrics after storm: %d", resp.StatusCode)
	}
}

func doPost(url, body string) (*http.Response, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, nil, err
	}
	return resp, buf.Bytes(), nil
}

func doGet(url string) (*http.Response, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, nil, err
	}
	return resp, buf.Bytes(), nil
}
