package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sourcecurrents/internal/session"
)

// snapDir writes n worlds as v2 snapshots into a temp directory and
// returns it with the golden answer body for each world.
func snapDir(t testing.TB, n int) (string, map[string]string, map[string][]byte) {
	t.Helper()
	dir := t.TempDir()
	reqs := make(map[string]string, n)
	wants := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("world%d", i)
		s := testSession(t, int64(100+i), 12+i)
		f, err := os.Create(filepath.Join(dir, name+".snap"))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteSnapshotV2(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		reqs[name] = answerBody(t, s, 6)
		var ar AnswerRequest
		if err := decodeBody([]byte(reqs[name]), &ar); err != nil {
			t.Fatal(err)
		}
		wants[name] = expectedAnswer(t, s, ar)
	}
	return dir, reqs, wants
}

// TestLazyLoadDir pins the manifest contract: LoadDir registers worlds
// without loading any (zero resident), the first request maps exactly one,
// and its answers are byte-identical to the eagerly built session's.
func TestLazyLoadDir(t *testing.T) {
	dir, reqs, wants := snapDir(t, 3)
	reg, err := LoadDir(dir, session.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs := reg.Residency(); rs.Resident != 0 || rs.Loads != 0 {
		t.Fatalf("after LoadDir: %+v, want nothing resident", rs)
	}

	ts := httptest.NewServer(New(reg, Options{}))
	defer ts.Close()
	resp, body := post(t, ts.URL+"/v1/world1/answer", reqs["world1"])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if string(body) != string(wants["world1"]) {
		t.Fatal("lazy-loaded answer differs from eager session's")
	}
	rs := reg.Residency()
	if rs.Resident != 1 || rs.Loads != 1 {
		t.Fatalf("after first request: %+v, want exactly one world resident", rs)
	}
	if rs.MappedBytes == 0 {
		t.Fatal("v2 world resident but mapped bytes gauge is zero")
	}

	// The metrics endpoint exposes the residency series.
	_, metricsBody := get(t, ts.URL+"/metrics")
	for _, series := range []string{
		"currents_datasets_resident 1",
		"currents_world_loads_total 1",
		"currents_world_evictions_total 0",
		`currents_dataset_resident{dataset="world1"} 1`,
		`currents_dataset_resident{dataset="world0"} 0`,
	} {
		if !strings.Contains(string(metricsBody), series) {
			t.Fatalf("metrics missing %q:\n%s", series, metricsBody)
		}
	}
}

// TestLazyEviction pins the LRU bound: with max-resident 1, touching three
// worlds in turn keeps exactly one resident, evicting the least recently
// used; a reload after eviction serves identical bytes.
func TestLazyEviction(t *testing.T) {
	dir, reqs, wants := snapDir(t, 3)
	reg, err := LoadDir(dir, session.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetMaxResident(1)
	ts := httptest.NewServer(New(reg, Options{}))
	defer ts.Close()

	for _, name := range []string{"world0", "world1", "world2", "world0"} {
		resp, body := post(t, ts.URL+"/v1/"+name+"/answer", reqs[name])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
		if string(body) != string(wants[name]) {
			t.Fatalf("%s: answer differs after eviction cycling", name)
		}
		if rs := reg.Residency(); rs.Resident != 1 {
			t.Fatalf("%s: %d resident, want 1", name, rs.Resident)
		}
	}
	rs := reg.Residency()
	if rs.Loads != 4 || rs.Evictions != 3 {
		t.Fatalf("loads/evictions = %d/%d, want 4/3 over the touch sequence", rs.Loads, rs.Evictions)
	}
}

// TestLazyEvictionConcurrentReaders is the acceptance race: 8 goroutines
// hammer 3 worlds through a server bound to one resident session, forcing
// constant evict/reload churn while requests are in flight. Under -race
// this checks the pin handoff — no request ever reads an unmapped session,
// and every response is byte-identical to the golden. Zero failed requests
// required.
func TestLazyEvictionConcurrentReaders(t *testing.T) {
	dir, reqs, wants := snapDir(t, 3)
	reg, err := LoadDir(dir, session.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetMaxResident(1)
	ts := httptest.NewServer(New(reg, Options{}))
	defer ts.Close()

	const (
		clients   = 8
		perClient = 30
	)
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				name := fmt.Sprintf("world%d", (c+i)%3)
				resp, err := http.Post(ts.URL+"/v1/"+name+"/answer",
					"application/json", strings.NewReader(reqs[name]))
				if err != nil {
					errc <- err
					return
				}
				body := make([]byte, 0, 1024)
				buf := make([]byte, 4096)
				for {
					n, rerr := resp.Body.Read(buf)
					body = append(body, buf[:n]...)
					if rerr != nil {
						break
					}
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: status %d: %s", name, resp.StatusCode, body)
					return
				}
				if string(body) != string(wants[name]) {
					errc <- fmt.Errorf("%s: body differs under eviction churn", name)
					return
				}
			}
			errc <- nil
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	rs := reg.Residency()
	if rs.Resident > 1 {
		t.Fatalf("%d resident after churn, want <= 1", rs.Resident)
	}
	if rs.Evictions == 0 {
		t.Fatal("no evictions observed — the churn did not exercise the bound")
	}
}

// TestLazySwappedWorldNotEvicted pins the safety rule for mutated worlds:
// once a world absorbs an append (epoch swap), its serving state diverges
// from the snapshot file, so the evictor must never unload it.
func TestLazySwappedWorldNotEvicted(t *testing.T) {
	dir, reqs, _ := snapDir(t, 2)
	reg, err := LoadDir(dir, session.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetMaxResident(1)

	// Load world0 and swap it: append no claims via Update is not exposed,
	// so swap in the same session to mark the entry mutated.
	s0, _, ok := reg.GetWithEpoch("world0")
	if !ok {
		t.Fatal("world0 missing")
	}
	if _, err := reg.Swap("world0", s0); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(reg, Options{}))
	defer ts.Close()
	// Touch world1 repeatedly: the bound is 1 but world0 is unevictable, so
	// residency settles at 2 and world0 stays loaded.
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL+"/v1/world1/answer", reqs["world1"])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	stats := reg.Stats()
	for _, st := range stats {
		if st.Name == "world0" && !st.Resident {
			t.Fatal("swapped world was evicted")
		}
	}
}
