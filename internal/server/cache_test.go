package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// cacheTestServer builds a one-dataset server with the given cache options,
// returning the base URL and the underlying *Server for counter access.
func cacheTestServer(t testing.TB, opt Options) (*httptest.Server, *Server) {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Register("alpha", testSession(t, 11, 40)); err != nil {
		t.Fatal(err)
	}
	srv := New(reg, opt)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestAnswerCacheGolden pins the cache's correctness contract: a response
// served from the cache is byte-identical to one computed fresh, across
// alternating cached/uncached rounds and with/without the probe trace.
func TestAnswerCacheGolden(t *testing.T) {
	cached, _ := cacheTestServer(t, Options{AnswerCacheSize: 64})
	fresh, _ := cacheTestServer(t, Options{}) // cache disabled
	sess := testSession(t, 11, 40)
	for _, body := range []string{
		answerBody(t, sess, 3),
		answerBody(t, sess, 5),
		`{"query":[{"entity":"e0","attribute":"a"},{"entity":"e1","attribute":"a"}],"include_steps":true}`,
		`{"query":[{"entity":"e2","attribute":"a"}],"policy":"accuracy-coverage","max_sources":3}`,
	} {
		var first []byte
		for round := 0; round < 3; round++ {
			respC, gotC := post(t, cached.URL+"/v1/alpha/answer", body)
			respF, gotF := post(t, fresh.URL+"/v1/alpha/answer", body)
			if respC.StatusCode != http.StatusOK || respF.StatusCode != http.StatusOK {
				t.Fatalf("round %d: status cached=%d fresh=%d", round, respC.StatusCode, respF.StatusCode)
			}
			if string(gotC) != string(gotF) {
				t.Fatalf("round %d: cached response differs from uncached server\ncached: %s\nfresh:  %s",
					round, gotC, gotF)
			}
			if round == 0 {
				first = gotC
			} else if string(gotC) != string(first) {
				t.Fatalf("round %d: cached response drifted from round 0", round)
			}
		}
	}
}

// TestAnswerCacheNormalizedKey pins that JSON-presentation variants and
// parallelism-only differences share one cache entry, while semantic
// differences do not.
func TestAnswerCacheNormalizedKey(t *testing.T) {
	ts, srv := cacheTestServer(t, Options{AnswerCacheSize: 64})
	base := `{"query":[{"entity":"e0","attribute":"a"},{"entity":"e1","attribute":"a"}]}`
	post(t, ts.URL+"/v1/alpha/answer", base)
	if h := srv.cache.hits.Load(); h != 0 {
		t.Fatalf("first request hit the cache (%d hits)", h)
	}
	// Whitespace variant, reordered fields, and a parallelism override all
	// normalize to the same key.
	variants := []string{
		`{ "query" : [ {"entity":"e0","attribute":"a"}, {"entity":"e1","attribute":"a"} ] }`,
		`{"query":[{"attribute":"a","entity":"e0"},{"attribute":"a","entity":"e1"}]}`,
		`{"query":[{"entity":"e0","attribute":"a"},{"entity":"e1","attribute":"a"}],"parallelism":4}`,
	}
	for i, v := range variants {
		resp, _ := post(t, ts.URL+"/v1/alpha/answer", v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("variant %d: status %d", i, resp.StatusCode)
		}
	}
	if h := srv.cache.hits.Load(); h != int64(len(variants)) {
		t.Fatalf("normalized variants: want %d hits, got %d", len(variants), h)
	}
	// Different order, different steps flag, different cap: distinct keys.
	distinct := []string{
		`{"query":[{"entity":"e1","attribute":"a"},{"entity":"e0","attribute":"a"}]}`,
		`{"query":[{"entity":"e0","attribute":"a"},{"entity":"e1","attribute":"a"}],"include_steps":true}`,
		`{"query":[{"entity":"e0","attribute":"a"},{"entity":"e1","attribute":"a"}],"max_sources":2}`,
	}
	before := srv.cache.hits.Load()
	for i, v := range distinct {
		resp, _ := post(t, ts.URL+"/v1/alpha/answer", v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("distinct %d: status %d", i, resp.StatusCode)
		}
	}
	if h := srv.cache.hits.Load(); h != before {
		t.Fatalf("semantically distinct requests hit the cache (%d new hits)", h-before)
	}
}

// TestAnswerCacheHitFasterAndCounted exercises the metrics plumbing: the
// hit/miss counters and the entry gauge appear on /metrics and move as
// requests repeat.
func TestAnswerCacheMetrics(t *testing.T) {
	ts, _ := cacheTestServer(t, Options{AnswerCacheSize: 64})
	sess := testSession(t, 11, 40)
	body := answerBody(t, sess, 3)
	for i := 0; i < 4; i++ {
		post(t, ts.URL+"/v1/alpha/answer", body)
	}
	_, metricsBody := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"currents_answer_cache_hits_total 3",
		"currents_answer_cache_misses_total 1",
		"currents_answer_cache_evictions_total 0",
		"currents_answer_cache_entries 1",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAnswerCacheDisabledMetrics pins that the cache series stay present
// (as zeros) when caching is off, so scrapers never special-case.
func TestAnswerCacheDisabledMetrics(t *testing.T) {
	ts, _ := cacheTestServer(t, Options{})
	sess := testSession(t, 11, 40)
	post(t, ts.URL+"/v1/alpha/answer", answerBody(t, sess, 3))
	_, metricsBody := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"currents_answer_cache_hits_total 0",
		"currents_answer_cache_misses_total 0",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAnswerCacheLRUEviction fills a capacity-1 cache with alternating keys
// and checks evictions are counted and correctness is preserved.
func TestAnswerCacheLRUEviction(t *testing.T) {
	ts, srv := cacheTestServer(t, Options{AnswerCacheSize: 1})
	sess := testSession(t, 11, 40)
	a, b := answerBody(t, sess, 2), answerBody(t, sess, 4)
	var wantA, wantB []byte
	for i := 0; i < 3; i++ {
		_, gotA := post(t, ts.URL+"/v1/alpha/answer", a)
		_, gotB := post(t, ts.URL+"/v1/alpha/answer", b)
		if i == 0 {
			wantA, wantB = gotA, gotB
		} else if string(gotA) != string(wantA) || string(gotB) != string(wantB) {
			t.Fatalf("round %d: eviction churn changed response bytes", i)
		}
	}
	if ev := srv.cache.evictions.Load(); ev < 4 {
		t.Fatalf("alternating keys on a size-1 cache: want >=4 evictions, got %d", ev)
	}
	if n := srv.cache.len(); n != 1 {
		t.Fatalf("cache size: want 1, got %d", n)
	}
}

// TestAnswerCacheTTL drives the injected clock past the TTL and checks the
// entry expires (counted as an eviction) and is recomputed.
func TestAnswerCacheTTL(t *testing.T) {
	ts, srv := cacheTestServer(t, Options{AnswerCacheSize: 16, AnswerCacheTTL: time.Minute})
	now := time.Unix(1000, 0)
	srv.cache.now = func() time.Time { return now }
	sess := testSession(t, 11, 40)
	body := answerBody(t, sess, 3)

	_, want := post(t, ts.URL+"/v1/alpha/answer", body)
	post(t, ts.URL+"/v1/alpha/answer", body)
	if h := srv.cache.hits.Load(); h != 1 {
		t.Fatalf("within TTL: want 1 hit, got %d", h)
	}
	now = now.Add(2 * time.Minute)
	_, got := post(t, ts.URL+"/v1/alpha/answer", body)
	if h := srv.cache.hits.Load(); h != 1 {
		t.Fatalf("expired entry still hit (hits=%d)", srv.cache.hits.Load())
	}
	if ev := srv.cache.evictions.Load(); ev != 1 {
		t.Fatalf("TTL expiry: want 1 eviction, got %d", ev)
	}
	if string(got) != string(want) {
		t.Fatal("recomputed response differs after TTL expiry")
	}
}

// TestAnswerCacheErrorNotCached pins that non-200 responses never enter the
// cache.
func TestAnswerCacheErrorNotCached(t *testing.T) {
	ts, srv := cacheTestServer(t, Options{AnswerCacheSize: 16})
	bad := `{"query":[{"entity":"e0","attribute":"a"}],"policy":"no-such-policy"}`
	for i := 0; i < 2; i++ {
		resp, _ := post(t, ts.URL+"/v1/alpha/answer", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("want 400, got %d", resp.StatusCode)
		}
	}
	if n := srv.cache.len(); n != 0 {
		t.Fatalf("error response was cached (%d entries)", n)
	}
	if h := srv.cache.hits.Load(); h != 0 {
		t.Fatalf("error response produced cache hits (%d)", h)
	}
}

// TestAnswerCacheHitSpeedup pins the acceptance bound: a cache-hit round
// trip is at least 10x faster than the cold answer it replays. The world is
// sized so the cold answer costs real planner work (200 sources), keeping
// the 10x margin far from HTTP round-trip noise, and the hit side takes the
// fastest of its iterations so one scheduler stall can't sink the ratio.
func TestAnswerCacheHitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	url, body := benchServerCached(t, 200, 40, Options{AnswerCacheSize: 16})

	// Establish the client connection off the clock so the cold measurement
	// is planner work, not TCP setup.
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cold := time.Now()
	postRaw(t, url+"/v1/bench/answer", body)
	coldDur := time.Since(cold)

	const hits = 20
	hitDur := time.Duration(math.MaxInt64)
	for i := 0; i < hits; i++ {
		start := time.Now()
		postRaw(t, url+"/v1/bench/answer", body)
		if d := time.Since(start); d < hitDur {
			hitDur = d
		}
	}
	if hitDur*10 > coldDur {
		t.Fatalf("cache hit %v not >=10x faster than cold %v", hitDur, coldDur)
	}
}

func postRaw(t testing.TB, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
