// Package server is the HTTP/JSON serving layer over a registry of
// sessions — the network boundary in front of the §4 applications.
//
// One Server hosts any number of named datasets, each a read-only
// session.Session, and answers
//
//	POST /v1/{dataset}/answer     online query answering (per-request
//	                              policy/parallelism overrides, coalesced)
//	POST /v1/{dataset}/append     live ingest: append a claim batch and
//	                              epoch-swap in the refined successor
//	POST /v1/{dataset}/fuse       fused view of every object
//	POST /v1/{dataset}/recommend  trust-ranked source recommendation
//	POST /v1/{dataset}/link       record-linkage clusters
//	GET  /v1/{dataset}/accuracy   discovered per-source accuracies
//	GET  /v1/{dataset}/snapshot   stream the v2 snapshot (replica bootstrap)
//	POST /v1/{dataset}/adopt      pull + validate + register a peer snapshot
//	GET  /healthz                 liveness + registered datasets (+ ready bit)
//	GET  /readyz                  active readiness: every world verifiably opens
//	GET  /metrics                 Prometheus text metrics
//
// Sessions are immutable; an append builds a successor session (delta
// recompute over the batch) and atomically swaps it in, bumping the
// dataset's epoch. The epoch is part of every answer cache and singleflight
// key, and the swap flushes the dataset's cached answers, so no request can
// observe bytes computed from a retired epoch — requests already in flight
// finish against the session they resolved, with zero downtime.
//
// Responses are rendered by the Build* helpers in core.go from exactly the
// values a direct Session call returns, so an HTTP response is byte-for-byte
// the JSON encoding of the in-process result — the equivalence the golden
// tests pin. Request bodies are size-capped, identical concurrent answer
// requests are computed once (singleflight), and every request is counted
// in the metrics with a latency histogram and an in-flight gauge.
//
// The Server is an http.Handler; lifecycle (ListenAndServe, graceful
// Shutdown) belongs to the caller.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/probdb"
	"sourcecurrents/internal/session"
	"sourcecurrents/internal/snapio"
)

// DefaultMaxRequestBytes caps request bodies when Options.MaxRequestBytes
// is zero.
const DefaultMaxRequestBytes = 1 << 20

// Options tunes the server.
type Options struct {
	// MaxRequestBytes caps the request body size; requests beyond it are
	// answered 413. Zero means DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// AnswerCacheSize bounds the server-side answer cache (entries across
	// all datasets). Zero disables caching — the default, so embedding the
	// handler changes nothing unless asked to.
	AnswerCacheSize int
	// AnswerCacheTTL expires cached answers after this duration; zero means
	// entries live until evicted by capacity. Ignored unless
	// AnswerCacheSize > 0.
	AnswerCacheTTL time.Duration
	// PersistDir, when set, makes every accepted append durable: the batch
	// is written as a log segment (<dataset>.<epoch>.seg) in this directory
	// before the swap, and LoadDir replays segments on cold start. Empty
	// disables persistence (appends are memory-only).
	PersistDir string
	// CompactEvery, with PersistDir set, compacts a dataset's log once it
	// accumulates this many segments: the refined session is snapshotted to
	// <dataset>.snap (atomic rename) and the segments are deleted. Zero
	// means DefaultCompactEvery; negative disables compaction.
	CompactEvery int
	// Logf, when non-nil, receives operational log lines (append
	// persistence, compaction). Pass nil to run silently.
	Logf func(format string, args ...any)
	// AdoptDir, when set, enables POST /v1/{dataset}/adopt: fetched
	// snapshots are validated and installed here (typically the same
	// directory the registry loaded from). Empty disables adoption.
	AdoptDir string
	// SessionCfg is the session configuration adopted snapshots load under —
	// the same config the server's other worlds use, so an adopted world
	// serves identically to a locally loaded one.
	SessionCfg session.Config
	// OwnerOf, when non-nil, resolves a dataset name to the fleet address
	// that owns it (the ring primary). Unknown-dataset 404s then carry the
	// owner in the error body so a client that hit the wrong shard can
	// retry at the right one.
	OwnerOf func(dataset string) (addr string, ok bool)
}

// DefaultCompactEvery is the segment count that triggers log compaction
// when Options.CompactEvery is zero.
const DefaultCompactEvery = 16

// Server serves a Registry over HTTP. Create with New; safe for concurrent
// use.
type Server struct {
	reg     *Registry
	opt     Options
	met     *metrics
	cache   *answerCache
	answers flightGroup
}

// New returns a Server over the registry.
func New(reg *Registry, opt Options) *Server {
	if opt.MaxRequestBytes <= 0 {
		opt.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if opt.CompactEvery == 0 {
		opt.CompactEvery = DefaultCompactEvery
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	return &Server{
		reg:   reg,
		opt:   opt,
		met:   newMetrics(),
		cache: newAnswerCache(opt.AnswerCacheSize, opt.AnswerCacheTTL),
	}
}

// ErrorResponse is the JSON error payload. Owner, when set on an
// unknown-dataset 404, is the fleet address of the shard that does serve
// the dataset — the hint `currents append` follows to reach the primary.
type ErrorResponse struct {
	Error string `json:"error"`
	Owner string `json:"owner,omitempty"`
}

// response is an internal fully-rendered reply.
type response struct {
	status      int
	contentType string
	body        []byte
	// headers are extra response headers (the snapshot stream's CRC).
	headers map[string]string
}

// encodeBuffer is a pooled JSON encode buffer: the encoder's scratch and
// the output buffer's capacity are recycled across requests, so a steady
// state encode allocates only the final body copy.
type encodeBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	eb := &encodeBuffer{}
	eb.enc = json.NewEncoder(&eb.buf)
	return eb
}}

// jsonResponse encodes v (with a trailing newline, byte-identical to
// json.Marshal plus '\n') into a response using a pooled buffer.
func jsonResponse(status int, v any) response {
	eb := encPool.Get().(*encodeBuffer)
	eb.buf.Reset()
	if err := eb.enc.Encode(v); err != nil {
		encPool.Put(eb)
		return response{
			status:      http.StatusInternalServerError,
			contentType: "application/json",
			body:        []byte(`{"error":"encoding failure"}` + "\n"),
		}
	}
	body := make([]byte, eb.buf.Len())
	copy(body, eb.buf.Bytes())
	encPool.Put(eb)
	return response{status: status, contentType: "application/json", body: body}
}

// errResponse maps an error to its HTTP form.
func errResponse(err error) response {
	return jsonResponse(statusOf(err), ErrorResponse{Error: err.Error()})
}

// statusOf maps errors to status codes: request-caused errors — the
// ErrBadRequest wrapper and the probdb input sentinels — are 400, body-cap
// violations 413, everything else 500.
func statusOf(err error) int {
	var maxErr *http.MaxBytesError
	switch {
	case errors.As(err, &maxErr):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, probdb.ErrProbOutOfRange),
		errors.Is(err, probdb.ErrDepenMismatch),
		errors.Is(err, probdb.ErrDepenOutOfRange):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// ServeHTTP routes requests. Routing is hand-rolled (two fixed paths plus
// /v1/{dataset}/{op}) so it works identically on every toolchain the
// module's go directive admits.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	op, resp := s.route(w, r)
	for k, v := range map[string]string{
		"Content-Type":           resp.contentType,
		"X-Content-Type-Options": "nosniff",
	} {
		w.Header().Set(k, v)
	}
	for k, v := range resp.headers {
		w.Header().Set(k, v)
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
	s.met.observe(op, time.Since(start), resp.status)
}

// route dispatches to the operation handlers, returning the metrics
// operation label and the rendered response.
func (s *Server) route(w http.ResponseWriter, r *http.Request) (string, response) {
	path := r.URL.Path
	switch path {
	case "/healthz":
		if r.Method != http.MethodGet {
			return "healthz", methodNotAllowed(w, http.MethodGet)
		}
		// Liveness plus the loading-vs-ready distinction: Ready is a cheap
		// all-verified check that never triggers a load, so a booting lazy
		// server answers ok/ready:false until its worlds prove loadable.
		return "healthz", jsonResponse(http.StatusOK,
			BuildHealthResponse(s.reg.Names(), s.reg.AllVerified()))
	case "/readyz":
		if r.Method != http.MethodGet {
			return "readyz", methodNotAllowed(w, http.MethodGet)
		}
		return "readyz", s.handleReadyz()
	case "/metrics":
		if r.Method != http.MethodGet {
			return "metrics", methodNotAllowed(w, http.MethodGet)
		}
		var sb strings.Builder
		s.met.write(&sb)
		s.cache.writeMetrics(&sb)
		writeResidencyMetrics(&sb, s.reg.Residency())
		writeDatasetMetrics(&sb, s.reg.Stats())
		return "metrics", response{
			status:      http.StatusOK,
			contentType: "text/plain; version=0.0.4; charset=utf-8",
			body:        []byte(sb.String()),
		}
	}

	rest, ok := strings.CutPrefix(path, "/v1/")
	if !ok {
		return "other", jsonResponse(http.StatusNotFound,
			ErrorResponse{Error: "not found (try /healthz, /metrics, /v1/{dataset}/{op})"})
	}
	name, op, ok := strings.Cut(rest, "/")
	if !ok || name == "" || op == "" || strings.Contains(op, "/") {
		return "other", jsonResponse(http.StatusNotFound,
			ErrorResponse{Error: "not found: want /v1/{dataset}/{answer|fuse|recommend|link|accuracy|history|trajectory}"})
	}
	// Adoption targets a dataset this shard does not serve yet, so it is
	// dispatched before the registry lookup that would 404 it.
	if op == "adopt" {
		if r.Method != http.MethodPost {
			return "adopt", methodNotAllowed(w, http.MethodPost)
		}
		return "adopt", s.handleAdopt(r, name)
	}
	// Acquire pins the session for the request's lifetime: a lazy world
	// loads on this first touch, and eviction under -max-resident cannot
	// unmap the snapshot while any request still reads from it. The pin
	// also covers any historical session resolved below — the grave reaper
	// closes retired mapped epochs only once the entry's pins drain.
	sess, epoch, release, err := s.reg.Acquire(name)
	if errors.Is(err, ErrUnknownDataset) {
		er := ErrorResponse{Error: fmt.Sprintf("unknown dataset %q", name)}
		// In a fleet, "unknown here" usually means "owned elsewhere": embed
		// the ring primary so the client can retry at the right shard.
		if s.opt.OwnerOf != nil {
			if owner, ok := s.opt.OwnerOf(name); ok {
				er.Owner = owner
				er.Error += fmt.Sprintf(" (owned by %s)", owner)
			}
		}
		return "other", jsonResponse(http.StatusNotFound, er)
	}
	if err != nil {
		return "other", errResponse(err)
	}
	defer release()

	// ?as_of=<epoch|timestamp> retargets the read operations at a retained
	// historical epoch; the resolved epoch replaces the current one in
	// every cache and singleflight key, so historical responses cache under
	// their own immutable generation.
	if spec := r.URL.Query().Get("as_of"); spec != "" {
		switch op {
		case "answer", "fuse", "recommend", "accuracy":
			hs, he, err := ResolveAsOf(sess, spec)
			if err != nil {
				return op, errResponse(err)
			}
			sess, epoch = hs, he
			s.met.historical.Add(1)
		}
	}

	switch op {
	case "answer":
		if r.Method != http.MethodPost {
			return op, methodNotAllowed(w, http.MethodPost)
		}
		return op, s.handleAnswer(w, r, name, epoch, sess)
	case "append":
		if r.Method != http.MethodPost {
			return op, methodNotAllowed(w, http.MethodPost)
		}
		return op, s.handleAppend(w, r, name)
	case "fuse":
		if r.Method != http.MethodPost {
			return op, methodNotAllowed(w, http.MethodPost)
		}
		return op, s.handleFuse(sess)
	case "recommend":
		if r.Method != http.MethodPost {
			return op, methodNotAllowed(w, http.MethodPost)
		}
		return op, s.handleRecommend(w, r, sess)
	case "link":
		if r.Method != http.MethodPost {
			return op, methodNotAllowed(w, http.MethodPost)
		}
		return op, s.handleLink(w, r, sess)
	case "accuracy":
		if r.Method != http.MethodGet {
			return op, methodNotAllowed(w, http.MethodGet)
		}
		return op, jsonResponse(http.StatusOK, BuildAccuracyResponse(ExecAccuracy(sess)))
	case "history":
		if r.Method != http.MethodGet {
			return op, methodNotAllowed(w, http.MethodGet)
		}
		return op, jsonResponse(http.StatusOK, BuildHistoryResponse(name, sess))
	case "trajectory":
		if r.Method != http.MethodGet {
			return op, methodNotAllowed(w, http.MethodGet)
		}
		return op, s.handleTrajectory(r, name, sess)
	case "snapshot":
		if r.Method != http.MethodGet {
			return op, methodNotAllowed(w, http.MethodGet)
		}
		return op, s.handleSnapshot(sess)
	}
	return "other", jsonResponse(http.StatusNotFound,
		ErrorResponse{Error: fmt.Sprintf("unknown operation %q", op)})
}

func methodNotAllowed(w http.ResponseWriter, allow string) response {
	w.Header().Set("Allow", allow)
	return jsonResponse(http.StatusMethodNotAllowed, ErrorResponse{Error: "method not allowed"})
}

// readBody reads the size-capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxRequestBytes))
	if err != nil {
		return nil, err
	}
	return body, nil
}

// decodeBody strictly decodes a JSON body into v; empty bodies leave v at
// its zero value.
func decodeBody(body []byte, v any) error {
	if len(body) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Reject trailing garbage after the JSON value.
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", ErrBadRequest)
	}
	return nil
}

// handleAnswer serves an answer request through two read-mostly layers
// keyed on the normalized request (dataset + epoch + AnswerRequest.cacheKey):
// the LRU answer cache returns previously rendered bytes for a repeated
// request, and the singleflight group computes a cache-missing response
// once for every identical concurrent request. Keying on the decoded
// request rather than the raw body means whitespace/field-order variants
// and parallelism-only differences share both layers; the rendered bytes
// are identical either way. The epoch is the one read atomically with sess:
// a response computed from a session is only ever cached or joined under
// that session's own generation, so an epoch swap can never surface bytes
// from a retired session.
func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request, name string, epoch uint64, sess *session.Session) response {
	body, err := s.readBody(w, r)
	if err != nil {
		return errResponse(err)
	}
	var req AnswerRequest
	if err := decodeBody(body, &req); err != nil {
		return errResponse(err)
	}
	key := name + "\x00" + strconv.FormatUint(epoch, 10) + "\x00" + req.cacheKey()
	if cached, ok := s.cache.get(key); ok {
		return response{status: http.StatusOK, contentType: "application/json", body: cached}
	}
	res, shared := s.answers.do(key, func() flightResult {
		resp := answerResponse(sess, req)
		return flightResult{status: resp.status, body: resp.body}
	})
	if shared {
		s.met.coalesced.Add(1)
	}
	if res.status == http.StatusOK {
		s.cache.put(key, res.body)
	}
	return response{status: res.status, contentType: "application/json", body: res.body}
}

// answerResponse executes one decoded answer request.
func answerResponse(sess *session.Session, req AnswerRequest) response {
	res, err := ExecAnswer(sess, req)
	if err != nil {
		return errResponse(err)
	}
	return jsonResponse(http.StatusOK, BuildAnswerResponse(res, req.IncludeSteps))
}

// handleAppend ingests one claim batch: it builds the refined successor
// session off the request path's current session, persists the batch as a
// log segment when configured (a failed write aborts the ingest — nothing
// swaps that isn't durable), and epoch-swaps the successor in. Appends to
// the same dataset are serialized by the registry's per-entry update mutex;
// readers are never blocked and keep serving the retired session until the
// swap lands. After the swap the dataset's cached answers are flushed —
// the epoch key already makes them unreachable; the flush reclaims them.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request, name string) response {
	body, err := s.readBody(w, r)
	if err != nil {
		return errResponse(err)
	}
	var req AppendRequest
	if err := decodeBody(body, &req); err != nil {
		return errResponse(err)
	}
	batch, err := req.batch()
	if err != nil {
		return errResponse(err)
	}
	next, epoch, err := s.reg.Update(name, func(cur *session.Session) (*session.Session, error) {
		succ, err := cur.Append(batch)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		if s.opt.PersistDir != "" {
			if err := s.persistSegment(name, succ.Dataset().Epoch(), batch); err != nil {
				return nil, err
			}
		}
		return succ, nil
	})
	if err != nil {
		// The route already resolved the dataset, so a failure here is the
		// batch (400 via the ErrBadRequest wrap) or persistence (500).
		return errResponse(err)
	}
	// Epochs are immutable worlds, so cached answers for epochs still inside
	// the retention window stay valid — and servable via ?as_of= — across
	// the swap. Only the epoch the swap pushed below the retention floor is
	// flushed: its answers are no longer addressable, so the flush is pure
	// memory reclamation. With RetainEpochs 0 the floor is the new epoch and
	// this reduces to the old swap-and-discard flush of the predecessor.
	if floor := next.HistoryFloor(); floor > 0 {
		dropped := strconv.FormatUint(uint64(floor-1), 10)
		if n := s.cache.flushPrefix(name + "\x00" + dropped + "\x00"); n > 0 {
			s.opt.Logf("append %s: flushed %d cached answers for pruned epoch %s", name, n, dropped)
		}
	}
	if s.opt.PersistDir != "" && s.opt.CompactEvery > 0 {
		s.maybeCompact(name, next)
	}
	return jsonResponse(http.StatusOK, BuildAppendResponse(name, epoch, len(batch), next))
}

// persistSegment writes one append batch as <name>.<epoch>.seg via a
// temporary file and rename, so a crash mid-write leaves no torn segment.
func (s *Server) persistSegment(name string, epoch int, batch []model.Claim) error {
	path := filepath.Join(s.opt.PersistDir, fmt.Sprintf("%s.%06d.seg", name, epoch))
	tmp, err := os.CreateTemp(s.opt.PersistDir, ".seg-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := dataset.WriteSegment(tmp, batch); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// maybeCompact folds a dataset's accumulated log segments into a fresh
// session snapshot once there are CompactEvery of them: the refined serving
// state is written to <name>.snap (atomic rename — no re-solve, the
// snapshot captures the precompute), then the superseded segments move into
// the archive/ subdirectory. Archiving instead of deleting keeps every
// epoch's batch addressable on disk — the raw material for rebuilding any
// historical epoch a snapshot's log no longer carries — while keeping the
// hot directory's replay set minimal (LoadDir ignores subdirectories, and
// segments at or below the snapshot's epoch are skipped at replay anyway).
// The snapshot lands before any segment moves, so a crash at any point
// leaves a directory LoadDir restores exactly. Compaction failure is
// logged, never surfaced: the append itself is already durable in its
// segment.
func (s *Server) maybeCompact(name string, sess *session.Session) {
	segs, err := filepath.Glob(filepath.Join(s.opt.PersistDir, name+".*.seg"))
	if err != nil || len(segs) < s.opt.CompactEvery {
		return
	}
	snapPath := filepath.Join(s.opt.PersistDir, name+".snap")
	tmp, err := os.CreateTemp(s.opt.PersistDir, ".snap-*")
	if err != nil {
		s.opt.Logf("compact %s: %v", name, err)
		return
	}
	defer os.Remove(tmp.Name())
	if err := sess.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		s.opt.Logf("compact %s: %v", name, err)
		return
	}
	if err := tmp.Close(); err != nil {
		s.opt.Logf("compact %s: %v", name, err)
		return
	}
	if err := os.Rename(tmp.Name(), snapPath); err != nil {
		s.opt.Logf("compact %s: %v", name, err)
		return
	}
	archiveDir := filepath.Join(s.opt.PersistDir, "archive")
	if err := os.MkdirAll(archiveDir, 0o755); err != nil {
		s.opt.Logf("compact %s: archive dir: %v", name, err)
		return
	}
	archived := 0
	for _, seg := range segs {
		if sf, ok := parseSegmentName(strings.TrimSuffix(filepath.Base(seg), ".seg")); ok &&
			sf.epoch <= sess.Dataset().Epoch() {
			if err := os.Rename(seg, filepath.Join(archiveDir, filepath.Base(seg))); err == nil {
				archived++
			}
		}
	}
	s.opt.Logf("compacted %s: snapshot at epoch %d, %d segments archived",
		name, sess.Dataset().Epoch(), archived)
}

func (s *Server) handleFuse(sess *session.Session) response {
	res, err := ExecFuse(sess)
	if err != nil {
		return errResponse(err)
	}
	return jsonResponse(http.StatusOK, BuildFuseResponse(sess.Dataset().Objects(), res))
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request, sess *session.Session) response {
	body, err := s.readBody(w, r)
	if err != nil {
		return errResponse(err)
	}
	var req RecommendRequest
	if err := decodeBody(body, &req); err != nil {
		return errResponse(err)
	}
	top, err := ExecRecommend(sess, req)
	if err != nil {
		return errResponse(err)
	}
	return jsonResponse(http.StatusOK, BuildRecommendResponse(top))
}

func (s *Server) handleLink(w http.ResponseWriter, r *http.Request, sess *session.Session) response {
	body, err := s.readBody(w, r)
	if err != nil {
		return errResponse(err)
	}
	var req LinkRequest
	if err := decodeBody(body, &req); err != nil {
		return errResponse(err)
	}
	res, err := ExecLink(sess, req)
	if err != nil {
		return errResponse(err)
	}
	return jsonResponse(http.StatusOK, BuildLinkResponse(res))
}

// handleReadyz actively verifies every registered world opens (cached after
// the first success), answering 200 only when the whole shard is servable.
// The body carries the dataset inventory either way — the router's prober
// reads it to build the fleet catalog — and per-dataset failures when
// unready, so an operator can see exactly which snapshot is bad.
func (s *Server) handleReadyz() response {
	checks := s.reg.VerifyAll()
	resp := ReadyResponse{Status: "ready"}
	status := http.StatusOK
	for _, c := range checks {
		resp.Datasets = append(resp.Datasets, c.Name)
		if c.Err != nil {
			resp.Failures = append(resp.Failures, ReadyFailure{Dataset: c.Name, Error: c.Err.Error()})
		}
	}
	if len(resp.Failures) > 0 {
		resp.Status = "unready"
		status = http.StatusServiceUnavailable
	}
	if resp.Datasets == nil {
		resp.Datasets = []string{}
	}
	resp.Epochs = s.reg.KnownEpochs()
	return jsonResponse(status, resp)
}

// handleSnapshot streams the session's v2 snapshot container: the mapped
// bytes verbatim when the session is snapshot-backed (copied while the
// registry pin still holds — the response outlives the pin), rendered fresh
// for heap-built or appended sessions so every world is adoptable. The
// whole-stream CRC rides in a header; the container's section payloads are
// unchecksummed by design, so this is what catches in-transit bit flips.
func (s *Server) handleSnapshot(sess *session.Session) response {
	var body []byte
	if mapped := sess.MappedSnapshot(); mapped != nil {
		body = append([]byte(nil), mapped...)
	} else {
		var buf bytes.Buffer
		if err := sess.WriteSnapshotV2(&buf); err != nil {
			return errResponse(err)
		}
		body = buf.Bytes()
	}
	return response{
		status:      http.StatusOK,
		contentType: "application/octet-stream",
		body:        body,
		headers: map[string]string{
			SnapshotCRCHeader: strconv.FormatUint(uint64(crc32.ChecksumIEEE(body)), 10),
		},
	}
}

// AdoptResponse is the /v1/{dataset}/adopt success payload.
type AdoptResponse struct {
	Dataset string `json:"dataset"`
	// Status is "adopted" for a fresh pull, "exists" when the shard already
	// served the dataset (idempotent retry), "replaced" when ?replace=1
	// overwrote a stale world with a newer snapshot, and "current" when
	// replace mode found nothing newer to install.
	Status string `json:"status"`
}

// handleAdopt pulls a snapshot stream from the `from` URL and registers it
// under name. Integrity failures surface as 502 (the upstream bytes were
// bad), bad requests as 400; an already-registered dataset is success —
// unless ?replace=1 (the router's repair mode), which overwrites the
// served world when the fetched snapshot's epoch is ahead. A replace
// flushes every cached answer for the dataset: the old chain's epochs are
// gone, and no stale bytes may outlive it.
func (s *Server) handleAdopt(r *http.Request, name string) response {
	from := r.URL.Query().Get("from")
	if from == "" {
		return errResponse(fmt.Errorf("%w: adopt needs ?from=<snapshot URL>", ErrBadRequest))
	}
	replace := false
	switch r.URL.Query().Get("replace") {
	case "1", "true":
		replace = true
	}
	var status string
	var err error
	if replace {
		// The flush runs inside Replace's critical section, before the new
		// chain becomes visible: no request routed after the swap can hit a
		// cache entry keyed to the replaced chain's epochs.
		status, err = AdoptReplaceFromURL(s.reg, name, from, s.opt.AdoptDir, s.opt.SessionCfg, nil, func() {
			if n := s.cache.flushPrefix(name + "\x00"); n > 0 {
				s.opt.Logf("replace %s: flushed %d cached answers from the replaced chain", name, n)
			}
		})
	} else {
		status = "adopted"
		err = AdoptFromURL(s.reg, name, from, s.opt.AdoptDir, s.opt.SessionCfg, nil)
	}
	switch {
	case errors.Is(err, ErrAlreadyRegistered):
		return jsonResponse(http.StatusOK, AdoptResponse{Dataset: name, Status: "exists"})
	case errors.Is(err, snapio.ErrCorrupt):
		return jsonResponse(http.StatusBadGateway, ErrorResponse{Error: err.Error()})
	case err != nil:
		return errResponse(err)
	}
	s.opt.Logf("adopt %q from %s: %s", name, from, status)
	return jsonResponse(http.StatusOK, AdoptResponse{Dataset: name, Status: status})
}
