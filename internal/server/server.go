// Package server is the HTTP/JSON serving layer over a registry of
// sessions — the network boundary in front of the §4 applications.
//
// One Server hosts any number of named datasets, each a read-only
// session.Session, and answers
//
//	POST /v1/{dataset}/answer     online query answering (per-request
//	                              policy/parallelism overrides, coalesced)
//	POST /v1/{dataset}/fuse       fused view of every object
//	POST /v1/{dataset}/recommend  trust-ranked source recommendation
//	POST /v1/{dataset}/link       record-linkage clusters
//	GET  /v1/{dataset}/accuracy   discovered per-source accuracies
//	GET  /healthz                 liveness + registered datasets
//	GET  /metrics                 Prometheus text metrics
//
// Responses are rendered by the Build* helpers in core.go from exactly the
// values a direct Session call returns, so an HTTP response is byte-for-byte
// the JSON encoding of the in-process result — the equivalence the golden
// tests pin. Request bodies are size-capped, identical concurrent answer
// requests are computed once (singleflight), and every request is counted
// in the metrics with a latency histogram and an in-flight gauge.
//
// The Server is an http.Handler; lifecycle (ListenAndServe, graceful
// Shutdown) belongs to the caller.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"sourcecurrents/internal/probdb"
	"sourcecurrents/internal/session"
)

// DefaultMaxRequestBytes caps request bodies when Options.MaxRequestBytes
// is zero.
const DefaultMaxRequestBytes = 1 << 20

// Options tunes the server.
type Options struct {
	// MaxRequestBytes caps the request body size; requests beyond it are
	// answered 413. Zero means DefaultMaxRequestBytes.
	MaxRequestBytes int64
	// AnswerCacheSize bounds the server-side answer cache (entries across
	// all datasets). Zero disables caching — the default, so embedding the
	// handler changes nothing unless asked to.
	AnswerCacheSize int
	// AnswerCacheTTL expires cached answers after this duration; zero means
	// entries live until evicted by capacity. Ignored unless
	// AnswerCacheSize > 0.
	AnswerCacheTTL time.Duration
}

// Server serves a Registry over HTTP. Create with New; safe for concurrent
// use.
type Server struct {
	reg     *Registry
	opt     Options
	met     *metrics
	cache   *answerCache
	answers flightGroup
}

// New returns a Server over the registry.
func New(reg *Registry, opt Options) *Server {
	if opt.MaxRequestBytes <= 0 {
		opt.MaxRequestBytes = DefaultMaxRequestBytes
	}
	return &Server{
		reg:   reg,
		opt:   opt,
		met:   newMetrics(),
		cache: newAnswerCache(opt.AnswerCacheSize, opt.AnswerCacheTTL),
	}
}

// ErrorResponse is the JSON error payload.
type ErrorResponse struct {
	Error string `json:"error"`
}

// response is an internal fully-rendered reply.
type response struct {
	status      int
	contentType string
	body        []byte
}

// encodeBuffer is a pooled JSON encode buffer: the encoder's scratch and
// the output buffer's capacity are recycled across requests, so a steady
// state encode allocates only the final body copy.
type encodeBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	eb := &encodeBuffer{}
	eb.enc = json.NewEncoder(&eb.buf)
	return eb
}}

// jsonResponse encodes v (with a trailing newline, byte-identical to
// json.Marshal plus '\n') into a response using a pooled buffer.
func jsonResponse(status int, v any) response {
	eb := encPool.Get().(*encodeBuffer)
	eb.buf.Reset()
	if err := eb.enc.Encode(v); err != nil {
		encPool.Put(eb)
		return response{
			status:      http.StatusInternalServerError,
			contentType: "application/json",
			body:        []byte(`{"error":"encoding failure"}` + "\n"),
		}
	}
	body := make([]byte, eb.buf.Len())
	copy(body, eb.buf.Bytes())
	encPool.Put(eb)
	return response{status: status, contentType: "application/json", body: body}
}

// errResponse maps an error to its HTTP form.
func errResponse(err error) response {
	return jsonResponse(statusOf(err), ErrorResponse{Error: err.Error()})
}

// statusOf maps errors to status codes: request-caused errors — the
// ErrBadRequest wrapper and the probdb input sentinels — are 400, body-cap
// violations 413, everything else 500.
func statusOf(err error) int {
	var maxErr *http.MaxBytesError
	switch {
	case errors.As(err, &maxErr):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrBadRequest),
		errors.Is(err, probdb.ErrProbOutOfRange),
		errors.Is(err, probdb.ErrDepenMismatch),
		errors.Is(err, probdb.ErrDepenOutOfRange):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// ServeHTTP routes requests. Routing is hand-rolled (two fixed paths plus
// /v1/{dataset}/{op}) so it works identically on every toolchain the
// module's go directive admits.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)

	op, resp := s.route(w, r)
	for k, v := range map[string]string{
		"Content-Type":           resp.contentType,
		"X-Content-Type-Options": "nosniff",
	} {
		w.Header().Set(k, v)
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
	s.met.observe(op, time.Since(start), resp.status)
}

// route dispatches to the operation handlers, returning the metrics
// operation label and the rendered response.
func (s *Server) route(w http.ResponseWriter, r *http.Request) (string, response) {
	path := r.URL.Path
	switch path {
	case "/healthz":
		if r.Method != http.MethodGet {
			return "healthz", methodNotAllowed(w, http.MethodGet)
		}
		return "healthz", jsonResponse(http.StatusOK, BuildHealthResponse(s.reg.Names()))
	case "/metrics":
		if r.Method != http.MethodGet {
			return "metrics", methodNotAllowed(w, http.MethodGet)
		}
		var sb strings.Builder
		s.met.write(&sb)
		s.cache.writeMetrics(&sb)
		return "metrics", response{
			status:      http.StatusOK,
			contentType: "text/plain; version=0.0.4; charset=utf-8",
			body:        []byte(sb.String()),
		}
	}

	rest, ok := strings.CutPrefix(path, "/v1/")
	if !ok {
		return "other", jsonResponse(http.StatusNotFound,
			ErrorResponse{Error: "not found (try /healthz, /metrics, /v1/{dataset}/{op})"})
	}
	name, op, ok := strings.Cut(rest, "/")
	if !ok || name == "" || op == "" || strings.Contains(op, "/") {
		return "other", jsonResponse(http.StatusNotFound,
			ErrorResponse{Error: "not found: want /v1/{dataset}/{answer|fuse|recommend|link|accuracy}"})
	}
	sess, ok := s.reg.Get(name)
	if !ok {
		return "other", jsonResponse(http.StatusNotFound,
			ErrorResponse{Error: fmt.Sprintf("unknown dataset %q", name)})
	}

	switch op {
	case "answer":
		if r.Method != http.MethodPost {
			return op, methodNotAllowed(w, http.MethodPost)
		}
		return op, s.handleAnswer(w, r, name, sess)
	case "fuse":
		if r.Method != http.MethodPost {
			return op, methodNotAllowed(w, http.MethodPost)
		}
		return op, s.handleFuse(sess)
	case "recommend":
		if r.Method != http.MethodPost {
			return op, methodNotAllowed(w, http.MethodPost)
		}
		return op, s.handleRecommend(w, r, sess)
	case "link":
		if r.Method != http.MethodPost {
			return op, methodNotAllowed(w, http.MethodPost)
		}
		return op, s.handleLink(w, r, sess)
	case "accuracy":
		if r.Method != http.MethodGet {
			return op, methodNotAllowed(w, http.MethodGet)
		}
		return op, jsonResponse(http.StatusOK, BuildAccuracyResponse(ExecAccuracy(sess)))
	}
	return "other", jsonResponse(http.StatusNotFound,
		ErrorResponse{Error: fmt.Sprintf("unknown operation %q", op)})
}

func methodNotAllowed(w http.ResponseWriter, allow string) response {
	w.Header().Set("Allow", allow)
	return jsonResponse(http.StatusMethodNotAllowed, ErrorResponse{Error: "method not allowed"})
}

// readBody reads the size-capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxRequestBytes))
	if err != nil {
		return nil, err
	}
	return body, nil
}

// decodeBody strictly decodes a JSON body into v; empty bodies leave v at
// its zero value.
func decodeBody(body []byte, v any) error {
	if len(body) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// Reject trailing garbage after the JSON value.
	if dec.More() {
		return fmt.Errorf("%w: trailing data after JSON body", ErrBadRequest)
	}
	return nil
}

// handleAnswer serves an answer request through two read-mostly layers
// keyed on the normalized request (dataset + AnswerRequest.cacheKey): the
// LRU answer cache returns previously rendered bytes for a repeated
// request, and the singleflight group computes a cache-missing response
// once for every identical concurrent request. Keying on the decoded
// request rather than the raw body means whitespace/field-order variants
// and parallelism-only differences share both layers; the rendered bytes
// are identical either way.
func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request, name string, sess *session.Session) response {
	body, err := s.readBody(w, r)
	if err != nil {
		return errResponse(err)
	}
	var req AnswerRequest
	if err := decodeBody(body, &req); err != nil {
		return errResponse(err)
	}
	key := name + "\x00" + req.cacheKey()
	if cached, ok := s.cache.get(key); ok {
		return response{status: http.StatusOK, contentType: "application/json", body: cached}
	}
	res, shared := s.answers.do(key, func() flightResult {
		resp := answerResponse(sess, req)
		return flightResult{status: resp.status, body: resp.body}
	})
	if shared {
		s.met.coalesced.Add(1)
	}
	if res.status == http.StatusOK {
		s.cache.put(key, res.body)
	}
	return response{status: res.status, contentType: "application/json", body: res.body}
}

// answerResponse executes one decoded answer request.
func answerResponse(sess *session.Session, req AnswerRequest) response {
	res, err := ExecAnswer(sess, req)
	if err != nil {
		return errResponse(err)
	}
	return jsonResponse(http.StatusOK, BuildAnswerResponse(res, req.IncludeSteps))
}

func (s *Server) handleFuse(sess *session.Session) response {
	res, err := ExecFuse(sess)
	if err != nil {
		return errResponse(err)
	}
	return jsonResponse(http.StatusOK, BuildFuseResponse(sess.Dataset().Objects(), res))
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request, sess *session.Session) response {
	body, err := s.readBody(w, r)
	if err != nil {
		return errResponse(err)
	}
	var req RecommendRequest
	if err := decodeBody(body, &req); err != nil {
		return errResponse(err)
	}
	top, err := ExecRecommend(sess, req)
	if err != nil {
		return errResponse(err)
	}
	return jsonResponse(http.StatusOK, BuildRecommendResponse(top))
}

func (s *Server) handleLink(w http.ResponseWriter, r *http.Request, sess *session.Session) response {
	body, err := s.readBody(w, r)
	if err != nil {
		return errResponse(err)
	}
	var req LinkRequest
	if err := decodeBody(body, &req); err != nil {
		return errResponse(err)
	}
	res, err := ExecLink(sess, req)
	if err != nil {
		return errResponse(err)
	}
	return jsonResponse(http.StatusOK, BuildLinkResponse(res))
}
