package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/session"
)

// TestCIGoldenInSync guards the checked-in CI e2e fixtures: the golden
// response in testdata/ci_answer_golden.json must equal what the server
// produces for testdata/ci_answer_request.json over testdata/ci_claims.csv.
// The CI workflow boots a real `currents server` from a snapshot of the
// same CSV, curls the same request, and diffs against the same golden — so
// this test failing means the golden needs regenerating:
//
//	REGEN_CI_GOLDEN=1 go test -run TestCIGoldenInSync ./internal/server/
func TestCIGoldenInSync(t *testing.T) {
	csvFile, err := os.Open(filepath.Join("testdata", "ci_claims.csv"))
	if err != nil {
		t.Fatal(err)
	}
	claims, err := dataset.ReadCSV(csvFile)
	csvFile.Close()
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.FromClaims(claims)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := session.New(d, session.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	reqBody, err := os.ReadFile(filepath.Join("testdata", "ci_answer_request.json"))
	if err != nil {
		t.Fatal(err)
	}
	var req AnswerRequest
	if err := decodeBody(reqBody, &req); err != nil {
		t.Fatal(err)
	}
	res, err := ExecAnswer(sess, req)
	if err != nil {
		t.Fatal(err)
	}
	want := expectJSON(t, BuildAnswerResponse(res, req.IncludeSteps))

	goldenPath := filepath.Join("testdata", "ci_answer_golden.json")
	if os.Getenv("REGEN_CI_GOLDEN") == "1" {
		if err := os.WriteFile(goldenPath, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", goldenPath, len(want))
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v — regenerate with REGEN_CI_GOLDEN=1", err)
	}
	if !bytes.Equal(golden, want) {
		t.Fatalf("ci_answer_golden.json out of sync with the serving path — regenerate with REGEN_CI_GOLDEN=1\ngolden: %s\nwant:   %s", golden, want)
	}
}
