// Request-handling core shared by the HTTP server and the CLI REPL.
//
// Every serving surface — the HTTP handlers in this package and the
// `currents serve` stdin loop — dispatches through the Exec* functions
// below, so the two paths cannot drift: a request means the same thing and
// produces the same domain result whichever transport carried it. The
// transports differ only in rendering (JSON responses here, fixed-width
// tables on the REPL's stdout).
//
// Errors caused by the request itself (unknown policy, empty query, knobs
// out of range) wrap ErrBadRequest so the HTTP layer can answer 400 without
// string-matching.
package server

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sourcecurrents/internal/fusion"
	"sourcecurrents/internal/linkage"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/queryans"
	"sourcecurrents/internal/recommend"
	"sourcecurrents/internal/session"
)

// ErrBadRequest marks errors caused by the request (mapped to HTTP 400).
var ErrBadRequest = errors.New("bad request")

// ObjectRef is the transport form of a query object.
type ObjectRef struct {
	Entity    string `json:"entity"`
	Attribute string `json:"attribute"`
}

// AnswerRequest asks for the value of each query object. The zero value of
// every override field means "use the session's configuration"; non-zero
// fields override per request (the probing policy, the probe cap, the
// early-stop posterior, and the worker count).
type AnswerRequest struct {
	Query       []ObjectRef `json:"query"`
	Policy      string      `json:"policy,omitempty"`
	MaxSources  int         `json:"max_sources,omitempty"`
	StopProb    float64     `json:"stop_prob,omitempty"`
	Parallelism int         `json:"parallelism,omitempty"`
	// IncludeSteps adds the full per-probe trace to the response.
	IncludeSteps bool `json:"include_steps,omitempty"`
}

// overrides reports whether the request needs a per-call planner.
func (r AnswerRequest) overrides() bool {
	return r.Policy != "" || r.MaxSources != 0 || r.StopProb != 0 || r.Parallelism != 0
}

// cacheKey renders the request's normalized form: every decoded field that
// can influence the response bytes, and nothing else. Parallelism is
// deliberately absent (results are bit-identical at every setting — the
// determinism suites pin it), so requests differing only in worker count
// share a cache entry and a singleflight slot. The query list is
// length-prefixed verbatim in request order — answers are positional and
// duplicates change the greedy gain sums, so sorting or deduplicating here
// would alias requests with different byte-exact responses.
func (r AnswerRequest) cacheKey() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d:%s|%d|%s|%t",
		len(r.Policy), r.Policy, r.MaxSources,
		strconv.FormatFloat(r.StopProb, 'x', -1, 64), r.IncludeSteps)
	for _, o := range r.Query {
		fmt.Fprintf(&sb, "|%d:%s,%d:%s", len(o.Entity), o.Entity, len(o.Attribute), o.Attribute)
	}
	return sb.String()
}

// ParsePolicy maps the transport names (the Policy.String forms) back to
// probing policies.
func ParsePolicy(name string) (queryans.Policy, error) {
	switch name {
	case "greedy-gain":
		return queryans.GreedyGain, nil
	case "accuracy-coverage":
		return queryans.AccuracyCoverage, nil
	case "by-id":
		return queryans.ByID, nil
	}
	return 0, fmt.Errorf("%w: unknown policy %q (greedy-gain|accuracy-coverage|by-id)", ErrBadRequest, name)
}

// ExecAnswer answers a query against the session, applying any per-request
// overrides. Without overrides it uses the session's precompiled planner —
// the hot path; with overrides it builds the lightweight per-call planner
// over the same cached precompute.
func ExecAnswer(s *session.Session, req AnswerRequest) (*queryans.Result, error) {
	if len(req.Query) == 0 {
		return nil, fmt.Errorf("%w: empty query", ErrBadRequest)
	}
	query := make([]model.ObjectID, len(req.Query))
	for i, ref := range req.Query {
		if ref.Entity == "" {
			return nil, fmt.Errorf("%w: query[%d] has empty entity", ErrBadRequest, i)
		}
		query[i] = model.Obj(ref.Entity, ref.Attribute)
	}
	if !req.overrides() {
		res, err := s.AnswerObjects(query)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return res, nil
	}
	qcfg := s.QueryConfig()
	if req.Policy != "" {
		pol, err := ParsePolicy(req.Policy)
		if err != nil {
			return nil, err
		}
		qcfg.Policy = pol
	}
	if req.MaxSources != 0 {
		qcfg.MaxSources = req.MaxSources
	}
	if req.StopProb != 0 {
		qcfg.StopProb = req.StopProb
	}
	if req.Parallelism != 0 {
		qcfg.Parallelism = req.Parallelism
	}
	res, err := s.AnswerObjectsWith(query, qcfg)
	if err != nil {
		// Every failure mode here is a bad knob or bad query.
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return res, nil
}

// ExecFuse resolves all conflicts under the session's fusion strategy.
func ExecFuse(s *session.Session) (*fusion.Result, error) {
	return s.Fuse()
}

// RecommendRequest asks for the k most trusted sources. K absent defaults
// to 5 (the REPL's default); an explicit k of 0 validly requests zero
// results. Weights default to recommend.DefaultWeights when absent.
type RecommendRequest struct {
	K       *int            `json:"k,omitempty"`
	Weights *WeightsRequest `json:"weights,omitempty"`
}

// WeightsRequest is the transport form of trust weights.
type WeightsRequest struct {
	Accuracy     float64 `json:"accuracy"`
	Coverage     float64 `json:"coverage"`
	Freshness    float64 `json:"freshness"`
	Independence float64 `json:"independence"`
}

// ExecRecommend ranks the session's cached trust profiles.
func ExecRecommend(s *session.Session, req RecommendRequest) ([]recommend.Profile, error) {
	k := 5
	if req.K != nil {
		k = *req.K
	}
	w := recommend.DefaultWeights()
	if req.Weights != nil {
		w = recommend.Weights{
			Accuracy:     req.Weights.Accuracy,
			Coverage:     req.Weights.Coverage,
			Freshness:    req.Weights.Freshness,
			Independence: req.Weights.Independence,
		}
	}
	top, err := s.RecommendSources(w, k)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return top, nil
}

// ClaimJSON is the transport form of one appended claim. A zero Prob means
// "probability 1" (the categorical-source default, matching model.NewClaim);
// Time absent means the claim is timeless.
type ClaimJSON struct {
	Source    string  `json:"source"`
	Entity    string  `json:"entity"`
	Attribute string  `json:"attribute"`
	Value     string  `json:"value"`
	Time      *int64  `json:"time,omitempty"`
	Prob      float64 `json:"prob,omitempty"`
}

// AppendRequest carries one append batch for /v1/{dataset}/append.
type AppendRequest struct {
	Claims []ClaimJSON `json:"claims"`
}

// batch validates the request and converts it to model claims.
func (r AppendRequest) batch() ([]model.Claim, error) {
	if len(r.Claims) == 0 {
		return nil, fmt.Errorf("%w: empty append batch", ErrBadRequest)
	}
	batch := make([]model.Claim, len(r.Claims))
	for i, cj := range r.Claims {
		c := model.Claim{
			Source: model.SourceID(cj.Source),
			Object: model.Obj(cj.Entity, cj.Attribute),
			Value:  cj.Value,
			Prob:   cj.Prob,
		}
		if c.Prob == 0 {
			c.Prob = 1
		}
		if cj.Time != nil {
			c.Time = model.Time(*cj.Time)
			c.HasTime = true
		}
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("%w: claims[%d]: %v", ErrBadRequest, i, err)
		}
		batch[i] = c
	}
	return batch, nil
}

// AppendResponse is the /append payload: the dataset's new generation.
type AppendResponse struct {
	Dataset  string `json:"dataset"`
	Epoch    uint64 `json:"epoch"`
	Appended int    `json:"appended"`
	Claims   int    `json:"claims"`
	Sources  int    `json:"sources"`
	Objects  int    `json:"objects"`
}

// BuildAppendResponse renders the post-append serving state.
func BuildAppendResponse(name string, epoch uint64, appended int, s *session.Session) AppendResponse {
	d := s.Dataset()
	return AppendResponse{
		Dataset:  name,
		Epoch:    epoch,
		Appended: appended,
		Claims:   d.Len(),
		Sources:  len(d.Sources()),
		Objects:  len(d.Objects()),
	}
}

// AccuracyEntry is one source's discovered accuracy.
type AccuracyEntry struct {
	Source   model.SourceID
	Accuracy float64
}

// ExecAccuracy returns the discovered per-source accuracies in source
// order.
func ExecAccuracy(s *session.Session) []AccuracyEntry {
	acc := s.Accuracy()
	srcs := s.Dataset().Sources()
	out := make([]AccuracyEntry, len(srcs))
	for i, src := range srcs {
		out[i] = AccuracyEntry{Source: src, Accuracy: acc[src]}
	}
	return out
}

// LinkRequest parameterizes record linkage over the session's dataset.
// Zero values take the linkage defaults (author-list similarity).
type LinkRequest struct {
	MatchThreshold float64 `json:"match_threshold,omitempty"`
	MinAltSupport  int     `json:"min_alt_support,omitempty"`
}

// ExecLink clusters alternative value representations per object.
func ExecLink(s *session.Session, req LinkRequest) (*linkage.Result, error) {
	cfg := linkage.DefaultConfig()
	if req.MatchThreshold != 0 {
		cfg.MatchThreshold = req.MatchThreshold
	}
	if req.MinAltSupport != 0 {
		cfg.MinAltSupport = req.MinAltSupport
	}
	res, err := s.Link(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return res, nil
}

// --- Response shapes -------------------------------------------------------
//
// The Build* helpers are the single source of truth for how domain results
// render as JSON; the golden equivalence tests marshal them directly from
// session results and require the HTTP bytes to match exactly.

// AnswerJSON is one object's current answer.
type AnswerJSON struct {
	Entity    string  `json:"entity"`
	Attribute string  `json:"attribute"`
	Value     string  `json:"value,omitempty"`
	Prob      float64 `json:"prob"`
}

// StepJSON is one probe of the planner trace.
type StepJSON struct {
	Source  string       `json:"source"`
	Gain    float64      `json:"gain"`
	Answers []AnswerJSON `json:"answers"`
}

// AnswerResponse is the /answer payload.
type AnswerResponse struct {
	Probed []string     `json:"probed"`
	Final  []AnswerJSON `json:"final"`
	Steps  []StepJSON   `json:"steps,omitempty"`
}

func answersJSON(answers []queryans.Answer) []AnswerJSON {
	out := make([]AnswerJSON, len(answers))
	for i, a := range answers {
		out[i] = AnswerJSON{
			Entity:    a.Object.Entity,
			Attribute: a.Object.Attribute,
			Value:     a.Value,
			Prob:      a.Prob,
		}
	}
	return out
}

// BuildAnswerResponse renders a planner trace.
func BuildAnswerResponse(res *queryans.Result, includeSteps bool) AnswerResponse {
	probed := make([]string, len(res.Probed))
	for i, s := range res.Probed {
		probed[i] = string(s)
	}
	resp := AnswerResponse{Probed: probed, Final: answersJSON(res.Final)}
	if includeSteps {
		resp.Steps = make([]StepJSON, len(res.Steps))
		for i, st := range res.Steps {
			resp.Steps[i] = StepJSON{
				Source:  string(st.Source),
				Gain:    st.Gain,
				Answers: answersJSON(st.Answers),
			}
		}
	}
	return resp
}

// FusedObjectJSON is one object's fused value.
type FusedObjectJSON struct {
	Entity    string  `json:"entity"`
	Attribute string  `json:"attribute"`
	Value     string  `json:"value,omitempty"`
	Prob      float64 `json:"prob"`
}

// FuseResponse is the /fuse payload: every object in canonical order.
type FuseResponse struct {
	Strategy string            `json:"strategy"`
	Objects  []FusedObjectJSON `json:"objects"`
}

// BuildFuseResponse renders a fusion result over the dataset's canonical
// object order.
func BuildFuseResponse(objects []model.ObjectID, res *fusion.Result) FuseResponse {
	out := FuseResponse{
		Strategy: res.Strategy.String(),
		Objects:  make([]FusedObjectJSON, len(objects)),
	}
	for i, o := range objects {
		v := res.Chosen[o]
		out.Objects[i] = FusedObjectJSON{
			Entity:    o.Entity,
			Attribute: o.Attribute,
			Value:     v,
			Prob:      res.Relation.Tuples[o].Prob(v),
		}
	}
	return out
}

// ProfileJSON is one recommended source.
type ProfileJSON struct {
	Source       string  `json:"source"`
	Trust        float64 `json:"trust"`
	Accuracy     float64 `json:"accuracy"`
	Coverage     float64 `json:"coverage"`
	Freshness    float64 `json:"freshness"`
	Independence float64 `json:"independence"`
}

// RecommendResponse is the /recommend payload.
type RecommendResponse struct {
	Sources []ProfileJSON `json:"sources"`
}

// BuildRecommendResponse renders ranked trust profiles.
func BuildRecommendResponse(top []recommend.Profile) RecommendResponse {
	out := RecommendResponse{Sources: make([]ProfileJSON, len(top))}
	for i, p := range top {
		out.Sources[i] = ProfileJSON{
			Source:       string(p.Source),
			Trust:        p.Trust,
			Accuracy:     p.Accuracy,
			Coverage:     p.Coverage,
			Freshness:    p.Freshness,
			Independence: p.Independence,
		}
	}
	return out
}

// AccuracyJSON is one source's accuracy.
type AccuracyJSON struct {
	Source   string  `json:"source"`
	Accuracy float64 `json:"accuracy"`
}

// AccuracyResponse is the /accuracy payload.
type AccuracyResponse struct {
	Sources []AccuracyJSON `json:"sources"`
}

// BuildAccuracyResponse renders the per-source accuracies.
func BuildAccuracyResponse(entries []AccuracyEntry) AccuracyResponse {
	out := AccuracyResponse{Sources: make([]AccuracyJSON, len(entries))}
	for i, e := range entries {
		out.Sources[i] = AccuracyJSON{Source: string(e.Source), Accuracy: e.Accuracy}
	}
	return out
}

// ClusterJSON is one linkage cluster.
type ClusterJSON struct {
	Entity          string   `json:"entity"`
	Attribute       string   `json:"attribute"`
	Canonical       string   `json:"canonical"`
	Support         int      `json:"support"`
	Variants        []string `json:"variants"`
	WrongValueForms []string `json:"wrong_value_forms,omitempty"`
}

// LinkResponse is the /link payload.
type LinkResponse struct {
	Clusters []ClusterJSON `json:"clusters"`
}

// BuildLinkResponse renders linkage clusters.
func BuildLinkResponse(res *linkage.Result) LinkResponse {
	out := LinkResponse{Clusters: make([]ClusterJSON, len(res.Clusters))}
	for i, cl := range res.Clusters {
		variants := make([]string, len(cl.Variants))
		for j, v := range cl.Variants {
			variants[j] = v.Value
		}
		out.Clusters[i] = ClusterJSON{
			Entity:          cl.Object.Entity,
			Attribute:       cl.Object.Attribute,
			Canonical:       cl.Canonical,
			Support:         cl.Support,
			Variants:        variants,
			WrongValueForms: cl.WrongValueForms,
		}
	}
	return out
}

// HealthResponse is the /healthz payload. Status is liveness ("ok" as long
// as the process serves); Ready distinguishes loading from ready — true
// only once every registered world has been proven loadable, checked
// without triggering any load (see /readyz for the active probe).
type HealthResponse struct {
	Status   string   `json:"status"`
	Ready    bool     `json:"ready"`
	Datasets []string `json:"datasets"`
}

// BuildHealthResponse renders the registry's dataset names, sorted.
func BuildHealthResponse(names []string, ready bool) HealthResponse {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	return HealthResponse{Status: "ok", Ready: ready, Datasets: sorted}
}

// ReadyFailure is one dataset that failed readiness verification.
type ReadyFailure struct {
	Dataset string `json:"dataset"`
	Error   string `json:"error"`
}

// ReadyResponse is the /readyz payload: 200/"ready" only when every
// registered world verifiably opens. Datasets is the shard's inventory —
// the router's prober reads it to know what lives where — and Epochs
// reports each known dataset's append-log epoch, the signal the router's
// anti-entropy repair loop compares across a placement to spot lagging
// replicas.
type ReadyResponse struct {
	Status   string            `json:"status"`
	Datasets []string          `json:"datasets"`
	Epochs   map[string]uint64 `json:"epochs,omitempty"`
	Failures []ReadyFailure    `json:"failures,omitempty"`
}
