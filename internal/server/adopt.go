// Replica bootstrap by snapshot streaming: the shard side of the fleet's
// rebalance path.
//
// GET /v1/{dataset}/snapshot streams the world's v2 container bytes — for a
// mapped session that is literally the bytes on disk, zero rebuild — with a
// whole-stream CRC32 in the X-Snapshot-CRC32 header. The v2 container's own
// section-table CRC covers the header and layout, but section payloads are
// deliberately unchecksummed (they are served straight from the mapping), so
// the transfer header is what catches a bit flip inside a payload in
// transit.
//
// POST /v1/{dataset}/adopt?from=URL is the pull side: fetch the stream into
// a temporary file, validate it end to end (transfer CRC, container
// structure, fingerprint — the same gauntlet a local load runs), and only
// then rename it into the serving directory and register it with the lazy
// registry. Every validation failure reports snapio.ErrCorrupt and leaves
// the registry and directory untouched: a partial or corrupted world is
// never observable, which is the invariant the corruption suite pins.
package server

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"

	"sourcecurrents/internal/session"
	"sourcecurrents/internal/snapio"
)

// SnapshotCRCHeader carries the CRC32 (IEEE, decimal) of the full snapshot
// stream, computed by the serving shard and verified by the adopting one.
const SnapshotCRCHeader = "X-Snapshot-CRC32"

// maxSnapshotStream caps an adopted snapshot fetch (1 GiB — far above any
// world this system builds, low enough to stop a runaway peer).
const maxSnapshotStream = 1 << 30

// ErrAlreadyRegistered reports an adopt for a dataset this shard already
// serves. Adoption is idempotent at the fleet layer: the router's rebalancer
// may retry a pull that already landed, so the HTTP handler answers it 200.
var ErrAlreadyRegistered = errors.New("server: dataset already registered")

// adoptClient fetches snapshot streams. No overall timeout: snapshots can
// be large and the transfer is bounded by maxSnapshotStream, not time.
var adoptClient = &http.Client{}

// AdoptFromURL fetches a snapshot stream, validates it, installs it as
// <dir>/<name>.snap, and registers it with the registry (lazily — the world
// maps on its first request, already marked verified). Returns the cause
// wrapped in snapio.ErrCorrupt for any integrity failure; a dataset already
// registered under name is ErrAlreadyRegistered (adoption is idempotent at
// the fleet layer — the caller treats it as success).
func AdoptFromURL(reg *Registry, name, from, dir string, cfg session.Config, client *http.Client) error {
	_, err := adoptFromURL(reg, name, from, dir, cfg, client, false, nil)
	return err
}

// AdoptReplaceFromURL is AdoptFromURL in replace mode: an already-registered
// dataset is overwritten with the fetched snapshot — session, epoch, and
// disk file swap together — provided the fetched epoch is ahead of the
// current one. This is the repair loop's convergence primitive: a replica
// that missed append fan-outs re-streams the primary's world over its own.
// The returned status is "adopted" (fresh), "replaced" (overwritten), or
// "current" (the fetched snapshot was not newer; nothing changed).
//
// The epoch comparison and the install are one atomic step
// (Registry.Replace holds the entry's update and load mutexes across
// both), so a replace can never shadow an epoch a concurrent append just
// produced on the old chain. onReplaced, when non-nil, runs inside that
// critical section just before the new chain becomes visible — the
// server's hook for flushing cached answers keyed to the replaced chain.
func AdoptReplaceFromURL(reg *Registry, name, from, dir string, cfg session.Config, client *http.Client, onReplaced func()) (string, error) {
	return adoptFromURL(reg, name, from, dir, cfg, client, true, onReplaced)
}

func adoptFromURL(reg *Registry, name, from, dir string, cfg session.Config, client *http.Client, replace bool, onReplaced func()) (string, error) {
	if !validName(name) {
		return "", fmt.Errorf("%w: invalid dataset name %q", ErrBadRequest, name)
	}
	if dir == "" {
		return "", fmt.Errorf("%w: adoption disabled (no adopt directory configured)", ErrBadRequest)
	}
	exists := reg.Has(name)
	if exists && !replace {
		return "", fmt.Errorf("%w: %q", ErrAlreadyRegistered, name)
	}
	if client == nil {
		client = adoptClient
	}
	resp, err := client.Get(from)
	if err != nil {
		return "", fmt.Errorf("server: adopt %q: fetch %s: %w", name, from, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return "", fmt.Errorf("server: adopt %q: %s answered %d: %s", name, from, resp.StatusCode, body)
	}

	tmp, err := os.CreateTemp(dir, ".adopt-*")
	if err != nil {
		return "", fmt.Errorf("server: adopt %q: %w", name, err)
	}
	tmpPath := tmp.Name()
	// The temp file is removed on every exit path; after the successful
	// rename below the remove is a harmless ENOENT.
	defer os.Remove(tmpPath)

	crc := crc32.NewIEEE()
	n, err := io.Copy(io.MultiWriter(tmp, crc), io.LimitReader(resp.Body, maxSnapshotStream))
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("server: adopt %q: stream: %w", name, err)
	}
	if n >= maxSnapshotStream {
		return "", fmt.Errorf("server: adopt %q: %w: stream exceeds %d bytes", name, snapio.ErrCorrupt, int64(maxSnapshotStream))
	}
	if want := resp.Header.Get(SnapshotCRCHeader); want != "" {
		got := strconv.FormatUint(uint64(crc.Sum32()), 10)
		if got != want {
			return "", fmt.Errorf("server: adopt %q: %w: transfer CRC mismatch (got %s, want %s)",
				name, snapio.ErrCorrupt, got, want)
		}
	}

	// Validate exactly as a cold start would: map the container, build every
	// typed view, check the fingerprint. Anything short of a fully servable
	// world is corruption — truncations and bad magic keep their own
	// sentinels in the chain, but errors.Is(err, snapio.ErrCorrupt) holds for
	// all of them.
	s, err := session.LoadSnapshotFile(tmpPath, cfg)
	if err != nil {
		return "", fmt.Errorf("server: adopt %q: %w (%w)", name, snapio.ErrCorrupt, err)
	}

	if exists {
		// Replace mode over a live world: only move forward. Epoch gaps in
		// this fleet are always a lagging strict prefix (every placement
		// member applies the same fan-out batches in order), so "not newer"
		// means there is nothing to heal. The epoch check lives inside
		// Replace, atomically with the install — and the rename runs in its
		// commit slot, so the disk file is only overwritten once the swap is
		// certain to land and the serving session and snapshot swap together.
		final := filepath.Join(dir, name+".snap")
		_, err := reg.Replace(name, s, final, cfg, func() error {
			if err := os.Rename(tmpPath, final); err != nil {
				return err
			}
			if onReplaced != nil {
				onReplaced()
			}
			return nil
		})
		switch {
		case errors.Is(err, ErrReplaceStale):
			_ = s.Close()
			return "current", nil
		case err != nil:
			_ = s.Close()
			return "", fmt.Errorf("server: adopt %q: %w", name, err)
		}
		return "replaced", nil
	}

	epoch := uint64(s.DatasetEpoch())
	_ = s.Close()
	final := filepath.Join(dir, name+".snap")
	if err := os.Rename(tmpPath, final); err != nil {
		return "", fmt.Errorf("server: adopt %q: %w", name, err)
	}
	if err := reg.RegisterLazy(name, final, cfg); err != nil {
		// Lost a race with a concurrent adopt or register; the file stays (it
		// is valid and at its final name) but this call did not win.
		return "", fmt.Errorf("%w: %q: %v", ErrAlreadyRegistered, name, err)
	}
	reg.markVerified(name)
	reg.recordEpoch(name, epoch)
	return "adopted", nil
}

// Has reports whether name is registered (without loading anything).
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[name]
	return ok
}
