package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"sourcecurrents/internal/session"
	"sourcecurrents/internal/snapio"
)

// snapshotBytes renders a session's v2 container into memory.
func snapshotBytes(t testing.TB, s *session.Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshotV2(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sectionBoundaries parses the v2 container header and returns every
// interesting truncation point: the end of the header/table, each section's
// start, and each section's end. Truncating the stream at any of these
// (except the very last byte of the file) destroys part of the world.
func sectionBoundaries(t testing.TB, b []byte) []int {
	t.Helper()
	const magicLen = 8
	const hdrFixed = magicLen + 4 + 4 + 4 + 4 // magic, version, order, count, reserved
	const entryLen = 24
	if len(b) < hdrFixed+4 {
		t.Fatalf("snapshot too short to parse: %d bytes", len(b))
	}
	if string(b[:magicLen]) != session.SnapshotV2Magic {
		t.Fatalf("magic = %q", b[:magicLen])
	}
	count := int(binary.LittleEndian.Uint32(b[magicLen+8:]))
	if count == 0 {
		t.Fatal("snapshot declares zero sections")
	}
	hdrLen := hdrFixed + entryLen*count + 4
	bounds := []int{hdrLen}
	for i := 0; i < count; i++ {
		e := b[hdrFixed+entryLen*i:]
		off := int(binary.LittleEndian.Uint64(e[8:]))
		length := int(binary.LittleEndian.Uint64(e[16:]))
		bounds = append(bounds, off, off+length)
	}
	return bounds
}

// snapshotUpstream serves body as a snapshot stream with the given CRC
// header value.
func snapshotUpstream(t testing.TB, body []byte, crcHeader string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		if crcHeader != "" {
			w.Header().Set(SnapshotCRCHeader, crcHeader)
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func crcOf(b []byte) string {
	return strconv.FormatUint(uint64(crc32.ChecksumIEEE(b)), 10)
}

// assertCleanReject asserts an adopt failure left no trace: the dataset is
// not registered, no .snap landed, and no temp file leaked.
func assertCleanReject(t *testing.T, reg *Registry, dir, name string, err error) {
	t.Helper()
	if err == nil {
		t.Fatal("adopt accepted a corrupted stream")
	}
	if !errors.Is(err, snapio.ErrCorrupt) {
		t.Fatalf("adopt error = %v, want errors.Is(_, snapio.ErrCorrupt)", err)
	}
	if reg.Has(name) {
		t.Fatalf("corrupted adopt registered %q", name)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	for _, e := range entries {
		t.Fatalf("adopt reject left %q in the serving dir", e.Name())
	}
}

// The snapshot endpoint must stream the container with a matching
// whole-stream CRC header, from both session flavors: heap-built (rendered
// fresh) and snapshot-backed (the mapped bytes verbatim).
func TestSnapshotEndpointCRC(t *testing.T) {
	// Heap-built session: testServer registers in-memory sessions.
	ts, sessions := testServer(t)
	resp, body := get(t, ts.URL+"/v1/alpha/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if got, want := resp.Header.Get(SnapshotCRCHeader), crcOf(body); got != want {
		t.Fatalf("CRC header = %s, body CRC = %s", got, want)
	}
	if !bytes.Equal(body, snapshotBytes(t, sessions["alpha"])) {
		t.Fatal("streamed bytes differ from WriteSnapshotV2 output")
	}

	// Mapped session: load the same world from disk and stream it again —
	// the bytes must be the file's bytes exactly.
	dir := t.TempDir()
	path := filepath.Join(dir, "alpha.snap")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	mappedSess, err := session.LoadSnapshotFile(path, session.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register("alpha", mappedSess); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(reg, Options{}))
	defer ts2.Close()
	resp2, body2 := get(t, ts2.URL+"/v1/alpha/snapshot")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("mapped status = %d", resp2.StatusCode)
	}
	if !bytes.Equal(body2, body) {
		t.Fatal("mapped stream differs from the on-disk container")
	}
	if got, want := resp2.Header.Get(SnapshotCRCHeader), crcOf(body); got != want {
		t.Fatalf("mapped CRC header = %s, want %s", got, want)
	}
}

// The happy path end to end: adopt a streamed snapshot and serve answers
// byte-identical to the source shard's.
func TestAdoptGolden(t *testing.T) {
	src, sessions := testServer(t)
	dir := t.TempDir()
	reg := NewRegistry()
	err := AdoptFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, session.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.Has("alpha") {
		t.Fatal("adopted dataset not registered")
	}
	if _, err := os.Stat(filepath.Join(dir, "alpha.snap")); err != nil {
		t.Fatalf("adopted snapshot not installed: %v", err)
	}

	adopted := httptest.NewServer(New(reg, Options{AdoptDir: dir, SessionCfg: session.DefaultConfig()}))
	defer adopted.Close()
	req := answerBody(t, sessions["alpha"], 5)
	_, want := post(t, src.URL+"/v1/alpha/answer", req)
	resp, got := post(t, adopted.URL+"/v1/alpha/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adopted answer status = %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("adopted answers diverge from source:\n%s\n%s", got, want)
	}

	// Idempotence: a second adopt of the same dataset is ErrAlreadyRegistered
	// to the caller, 200 {"status":"exists"} over HTTP.
	err = AdoptFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, session.DefaultConfig(), nil)
	if !errors.Is(err, ErrAlreadyRegistered) {
		t.Fatalf("second adopt error = %v, want ErrAlreadyRegistered", err)
	}
	resp, body := post(t, adopted.URL+"/v1/alpha/adopt?from="+src.URL+"/v1/alpha/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP re-adopt status = %d: %s", resp.StatusCode, body)
	}
	var ar AdoptResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Status != "exists" {
		t.Fatalf("HTTP re-adopt status field = %q, want \"exists\"", ar.Status)
	}
}

// Truncate the stream at every section boundary. With the upstream
// advertising the ORIGINAL CRC (the truncation happened mid-transfer), the
// transfer check must reject every cut. With an HONEST CRC of the truncated
// bytes (a corrupt source), the structural validation must reject instead.
// Either way: ErrCorrupt, nothing registered, nothing left on disk.
func TestAdoptRejectsTruncation(t *testing.T) {
	full := snapshotBytes(t, testSession(t, 11, 40))
	bounds := sectionBoundaries(t, full)
	maxEnd := 0
	for _, b := range bounds {
		if b > maxEnd {
			maxEnd = b
		}
	}
	origCRC := crcOf(full)
	for _, cut := range bounds {
		if cut >= len(full) {
			continue
		}
		cut := cut
		t.Run(fmt.Sprintf("midtransfer_cut_%d", cut), func(t *testing.T) {
			up := snapshotUpstream(t, full[:cut], origCRC)
			dir := t.TempDir()
			reg := NewRegistry()
			err := AdoptFromURL(reg, "w", up.URL, dir, session.DefaultConfig(), nil)
			assertCleanReject(t, reg, dir, "w", err)
		})
		// Cutting exactly at the final section's end only drops alignment
		// padding — the container can still validate, so the honest-CRC grid
		// covers strictly-destructive cuts only.
		if cut >= maxEnd {
			continue
		}
		t.Run(fmt.Sprintf("badsource_cut_%d", cut), func(t *testing.T) {
			trunc := full[:cut]
			up := snapshotUpstream(t, trunc, crcOf(trunc))
			dir := t.TempDir()
			reg := NewRegistry()
			err := AdoptFromURL(reg, "w", up.URL, dir, session.DefaultConfig(), nil)
			assertCleanReject(t, reg, dir, "w", err)
		})
	}
}

// Flip single bytes across the container — in the magic, the section table,
// and deep inside section payloads — with the upstream advertising the
// original CRC (an in-transit flip). Payloads are unchecksummed by design,
// so the transfer CRC is the only line of defense for the payload flips;
// every flip must be rejected cleanly.
func TestAdoptRejectsBitFlips(t *testing.T) {
	full := snapshotBytes(t, testSession(t, 11, 40))
	origCRC := crcOf(full)
	positions := []int{
		2,                 // magic
		30,                // section table
		len(full) / 2,     // mid-payload
		len(full) - 1,     // final byte
		len(full) * 3 / 4, // another payload spot
	}
	for _, pos := range positions {
		pos := pos
		t.Run(fmt.Sprintf("flip_%d", pos), func(t *testing.T) {
			flipped := append([]byte(nil), full...)
			flipped[pos] ^= 0x40
			up := snapshotUpstream(t, flipped, origCRC)
			dir := t.TempDir()
			reg := NewRegistry()
			err := AdoptFromURL(reg, "w", up.URL, dir, session.DefaultConfig(), nil)
			assertCleanReject(t, reg, dir, "w", err)
		})
	}
}

// A source that serves no CRC header still cannot sneak structural garbage
// past adopt: the full load validation runs regardless.
func TestAdoptRejectsGarbageWithoutCRC(t *testing.T) {
	garbage := append([]byte(session.SnapshotV2Magic), bytes.Repeat([]byte{0xAB}, 512)...)
	up := snapshotUpstream(t, garbage, "")
	dir := t.TempDir()
	reg := NewRegistry()
	err := AdoptFromURL(reg, "w", up.URL, dir, session.DefaultConfig(), nil)
	assertCleanReject(t, reg, dir, "w", err)
}

// The /readyz bugfix: a lazily-registered snapshot that passes the cheap
// magic sniff but cannot actually open must flip /healthz to ready:false
// and make /readyz answer 503 naming the dataset — before any request ever
// touches the broken world.
func TestReadyzCatchesBrokenLazySnapshot(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.snap")
	if err := os.WriteFile(good, snapshotBytes(t, testSession(t, 11, 25)), 0o644); err != nil {
		t.Fatal(err)
	}
	// Valid magic, garbage body: RegisterLazy's sniff accepts it.
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, append([]byte(session.SnapshotV2Magic), bytes.Repeat([]byte{0xCD}, 256)...), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := session.DefaultConfig()
	reg := NewRegistry()
	if err := reg.RegisterLazy("good", good, cfg); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterLazy("bad", bad, cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{}))
	defer ts.Close()

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Ready {
		t.Fatal("healthz reports ready before any snapshot was verified")
	}

	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status = %d, want 503: %s", resp.StatusCode, body)
	}
	var rr ReadyResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "unready" && rr.Status != "loading" {
		t.Fatalf("readyz status field = %q", rr.Status)
	}
	if len(rr.Failures) != 1 || rr.Failures[0].Dataset != "bad" {
		t.Fatalf("readyz failures = %+v, want exactly the bad dataset", rr.Failures)
	}
	if len(rr.Datasets) != 2 {
		t.Fatalf("readyz inventory = %v, want both datasets", rr.Datasets)
	}

	// An all-good registry verifies and answers 200, and the verdict is
	// cached: healthz flips to ready.
	reg2 := NewRegistry()
	if err := reg2.RegisterLazy("good", good, cfg); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(reg2, Options{}))
	defer ts2.Close()
	resp, body = get(t, ts2.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-good readyz status = %d: %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts2.URL+"/healthz")
	var h2 HealthResponse
	if err := json.Unmarshal(body, &h2); err != nil {
		t.Fatal(err)
	}
	if !h2.Ready {
		t.Fatal("healthz not ready after readyz verified every world")
	}
}

// An unknown dataset's 404 must carry the owner hint when the server knows
// the fleet placement.
func TestUnknownDatasetOwnerHint(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("alpha", testSession(t, 11, 20)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{
		OwnerOf: func(ds string) (string, bool) {
			if ds == "elsewhere" {
				return "10.9.9.9:9001", true
			}
			return "", false
		},
	}))
	defer ts.Close()

	resp, body := post(t, ts.URL+"/v1/elsewhere/answer", `{"query":[{"entity":"e","attribute":"a"}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Owner != "10.9.9.9:9001" {
		t.Fatalf("owner = %q, want the hinted shard", er.Owner)
	}
	if !strings.Contains(er.Error, "owned by 10.9.9.9:9001") {
		t.Fatalf("error body %q lacks the owner hint", er.Error)
	}

	// No hint available: the 404 stays plain.
	resp, body = post(t, ts.URL+"/v1/alsounknown/answer", `{"query":[{"entity":"e","attribute":"a"}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var er2 ErrorResponse
	if err := json.Unmarshal(body, &er2); err != nil {
		t.Fatal(err)
	}
	if er2.Owner != "" || strings.Contains(er2.Error, "owned by") {
		t.Fatalf("unhinted 404 grew an owner: %+v", er2)
	}
}
