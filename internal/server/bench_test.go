package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"sourcecurrents/internal/session"
	"sourcecurrents/internal/synth"
)

// benchServer builds an httptest server over one synthetic dataset of the
// given scale, returning the base URL and a small answer-request body.
func benchServer(b *testing.B, nSources, nObjects int) (string, string) {
	return benchServerCached(b, nSources, nObjects, Options{})
}

// benchServerCached is benchServer with explicit server options (answer
// cache configuration).
func benchServerCached(b testing.TB, nSources, nObjects int, opt Options) (string, string) {
	b.Helper()
	accs := make([]float64, nSources)
	for i := range accs {
		accs[i] = 0.55 + 0.4*float64(i%9)/8
	}
	var copiers []synth.CopierSpec
	for i := 0; i < nSources/10; i++ {
		copiers = append(copiers, synth.CopierSpec{MasterIndex: i, CopyRate: 0.8, OwnAcc: 0.6})
	}
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed:           int64(nSources)*31 + int64(nObjects),
		NObjects:       nObjects,
		IndependentAcc: accs,
		Copiers:        copiers,
		FalsePool:      5,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := session.New(sw.Dataset, session.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register("bench", s); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, opt))
	b.Cleanup(ts.Close)

	objs := sw.Dataset.Objects()
	n := 5
	if n > len(objs) {
		n = len(objs)
	}
	var sb bytes.Buffer
	sb.WriteString(`{"query":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"entity":%q,"attribute":%q}`, objs[i].Entity, objs[i].Attribute)
	}
	sb.WriteString(`]}`)
	return ts.URL, sb.String()
}

var serverBenchSizes = []struct {
	sources, objects int
	short            bool
}{
	{50, 60, true},
	{200, 40, false},
	{500, 30, false},
}

// BenchmarkServerAnswer measures one serial client: full HTTP round trip,
// JSON decode/execute/encode, against the precompiled planner (5-object
// query).
func BenchmarkServerAnswer(b *testing.B) {
	for _, sz := range serverBenchSizes {
		b.Run(fmt.Sprintf("sources=%d", sz.sources), func(b *testing.B) {
			b.ReportAllocs()
			if testing.Short() && !sz.short {
				b.Skip("large scale skipped in short mode")
			}
			url, body := benchServer(b, sz.sources, sz.objects)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(url+"/v1/bench/answer", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
		})
	}
}

// BenchmarkServerAnswerCached measures the cache-hit round trip: the same
// answer request repeated against a cache-enabled server, so every
// measured iteration after the first is HTTP + LRU lookup. Compare with
// BenchmarkServerAnswer at the same size for the hit-vs-cold ratio.
func BenchmarkServerAnswerCached(b *testing.B) {
	for _, sz := range serverBenchSizes {
		b.Run(fmt.Sprintf("sources=%d", sz.sources), func(b *testing.B) {
			b.ReportAllocs()
			if testing.Short() && !sz.short {
				b.Skip("large scale skipped in short mode")
			}
			url, body := benchServerCached(b, sz.sources, sz.objects, Options{AnswerCacheSize: 64})
			// Warm the single entry so every timed iteration hits.
			warm, err := http.Post(url+"/v1/bench/answer", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, warm.Body)
			warm.Body.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(url+"/v1/bench/answer", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
		})
	}
}

// BenchmarkServerAnswerParallel measures the concurrent-serving shape:
// GOMAXPROCS client goroutines hammering one server instance with the same
// hot query (exercising the singleflight path under overlap).
func BenchmarkServerAnswerParallel(b *testing.B) {
	for _, sz := range serverBenchSizes {
		b.Run(fmt.Sprintf("sources=%d", sz.sources), func(b *testing.B) {
			b.ReportAllocs()
			if testing.Short() && !sz.short {
				b.Skip("large scale skipped in short mode")
			}
			url, body := benchServer(b, sz.sources, sz.objects)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := http.Post(url+"/v1/bench/answer", "application/json", bytes.NewReader([]byte(body)))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := io.Copy(io.Discard, resp.Body); err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("status %d", resp.StatusCode)
					}
				}
			})
		})
	}
}

// BenchmarkServerColdStart measures time-to-first-answer through the lazy
// registry: each iteration registers a v2 snapshot directory (manifest scan
// only) and serves one answer request, so the timed path is exactly what a
// fresh server pays on the first query — mmap, section validation, planner
// run — with no precompute and no decode loop.
func BenchmarkServerColdStart(b *testing.B) {
	dir, reqs, _ := snapDir(b, 1)
	body := []byte(reqs["world0"])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg, err := LoadDir(dir, session.DefaultConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		h := New(reg, Options{})
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/world0/answer", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
