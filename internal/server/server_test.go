package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/probdb"
	"sourcecurrents/internal/session"
	"sourcecurrents/internal/synth"
)

// testWorld generates a deterministic snapshot corpus.
func testWorld(t testing.TB, seed int64, nObjects int) *dataset.Dataset {
	t.Helper()
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed:           seed,
		NObjects:       nObjects,
		IndependentAcc: []float64{0.9, 0.8, 0.7, 0.6, 0.85, 0.75},
		Copiers: []synth.CopierSpec{
			{MasterIndex: 0, CopyRate: 0.85, OwnAcc: 0.7},
			{MasterIndex: 2, CopyRate: 0.6, OwnAcc: 0.65},
		},
		FalsePool: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sw.Dataset
}

func testSession(t testing.TB, seed int64, nObjects int) *session.Session {
	t.Helper()
	s, err := session.New(testWorld(t, seed, nObjects), session.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testServer builds a two-dataset server on httptest.
func testServer(t testing.TB) (*httptest.Server, map[string]*session.Session) {
	t.Helper()
	reg := NewRegistry()
	sessions := map[string]*session.Session{
		"alpha": testSession(t, 11, 40),
		"beta":  testSession(t, 13, 25),
	}
	for name, s := range sessions {
		if err := reg.Register(name, s); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(reg, Options{}))
	t.Cleanup(ts.Close)
	return ts, sessions
}

func post(t testing.TB, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func get(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// answerBody renders an answer request for the first n objects.
func answerBody(t testing.TB, s *session.Session, n int) string {
	t.Helper()
	objs := s.Dataset().Objects()
	if n > len(objs) {
		n = len(objs)
	}
	refs := make([]ObjectRef, n)
	for i := 0; i < n; i++ {
		refs[i] = ObjectRef{Entity: objs[i].Entity, Attribute: objs[i].Attribute}
	}
	b, err := json.Marshal(AnswerRequest{Query: refs})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHealthz(t *testing.T) {
	ts, _ := testServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Datasets) != 2 || h.Datasets[0] != "alpha" || h.Datasets[1] != "beta" {
		t.Fatalf("healthz = %+v", h)
	}
}

func TestAnswerBasic(t *testing.T) {
	ts, sessions := testServer(t)
	resp, body := post(t, ts.URL+"/v1/alpha/answer", answerBody(t, sessions["alpha"], 5))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var ar AnswerResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Final) != 5 || len(ar.Probed) == 0 {
		t.Fatalf("answer = %+v", ar)
	}
	if len(ar.Steps) != 0 {
		t.Fatal("steps included without include_steps")
	}
}

func TestAnswerOverrides(t *testing.T) {
	ts, sessions := testServer(t)
	objs := sessions["alpha"].Dataset().Objects()
	req := fmt.Sprintf(`{"query":[{"entity":%q,"attribute":%q}],"policy":"by-id","max_sources":2,"include_steps":true}`,
		objs[0].Entity, objs[0].Attribute)
	resp, body := post(t, ts.URL+"/v1/alpha/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var ar AnswerResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Probed) > 2 {
		t.Fatalf("max_sources ignored: probed %v", ar.Probed)
	}
	if len(ar.Steps) == 0 {
		t.Fatal("include_steps ignored")
	}
	// by-id probes in source-id order.
	for i := 1; i < len(ar.Probed); i++ {
		if ar.Probed[i-1] >= ar.Probed[i] {
			t.Fatalf("by-id order violated: %v", ar.Probed)
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	ts, sessions := testServer(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"unknown dataset", "POST", "/v1/nosuch/answer", `{"query":[{"entity":"e","attribute":"a"}]}`, 404},
		{"unknown op", "POST", "/v1/alpha/nosuch", ``, 404},
		{"root", "GET", "/", ``, 404},
		{"deep path", "POST", "/v1/alpha/answer/extra", ``, 404},
		{"wrong method answer", "GET", "/v1/alpha/answer", ``, 405},
		{"wrong method accuracy", "POST", "/v1/alpha/accuracy", ``, 405},
		{"wrong method healthz", "POST", "/healthz", ``, 405},
		{"empty query", "POST", "/v1/alpha/answer", `{"query":[]}`, 400},
		{"malformed json", "POST", "/v1/alpha/answer", `{"query":`, 400},
		{"unknown field", "POST", "/v1/alpha/answer", `{"queryy":[]}`, 400},
		{"trailing garbage", "POST", "/v1/alpha/answer", `{"query":[{"entity":"e","attribute":"a"}]} extra`, 400},
		{"bad policy", "POST", "/v1/alpha/answer", `{"query":[{"entity":"e","attribute":"a"}],"policy":"psychic"}`, 400},
		{"bad stop prob", "POST", "/v1/alpha/answer", `{"query":[{"entity":"e","attribute":"a"}],"stop_prob":1.5}`, 400},
		{"negative k", "POST", "/v1/alpha/recommend", `{"k":-3}`, 400},
		{"bad weights", "POST", "/v1/alpha/recommend", `{"k":2,"weights":{"accuracy":-1}}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var body []byte
			if tc.method == "GET" {
				resp, body = get(t, ts.URL+tc.path)
			} else {
				resp, body = post(t, ts.URL+tc.path, tc.body)
			}
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
			if resp.StatusCode >= 400 {
				var er ErrorResponse
				if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
					t.Fatalf("error body not JSON: %s", body)
				}
			}
		})
	}
	_ = sessions
}

func TestRequestSizeCap(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("tiny", testSession(t, 17, 10)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{MaxRequestBytes: 256}))
	defer ts.Close()

	big := `{"query":[` + strings.Repeat(`{"entity":"padding-entity","attribute":"a"},`, 50)
	big = big[:len(big)-1] + `]}`
	resp, _ := post(t, ts.URL+"/v1/tiny/answer", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestProbdbErrorsMapTo400(t *testing.T) {
	// The named probdb sentinels are client errors at the HTTP boundary.
	for _, err := range []error{
		probdb.ErrProbOutOfRange,
		probdb.ErrDepenMismatch,
		probdb.ErrDepenOutOfRange,
		fmt.Errorf("wrapped: %w", probdb.ErrProbOutOfRange),
	} {
		if got := statusOf(err); got != http.StatusBadRequest {
			t.Fatalf("statusOf(%v) = %d, want 400", err, got)
		}
	}
	if got := statusOf(fmt.Errorf("boom")); got != http.StatusInternalServerError {
		t.Fatalf("statusOf(internal) = %d, want 500", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, sessions := testServer(t)
	post(t, ts.URL+"/v1/alpha/answer", answerBody(t, sessions["alpha"], 3))
	post(t, ts.URL+"/v1/alpha/answer", `{"query":[]}`) // a 400
	get(t, ts.URL+"/v1/beta/accuracy")
	get(t, ts.URL+"/v1/nosuch/accuracy") // 404 traffic must be observable

	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`currents_requests_total{op="answer"} 2`,
		`currents_request_errors_total{op="answer"} 1`,
		`currents_requests_total{op="accuracy"} 1`,
		`currents_in_flight`,
		`currents_request_duration_seconds_bucket{op="answer",le="+Inf"} 2`,
		`currents_request_duration_seconds_count{op="answer"} 2`,
		`currents_requests_total{op="other"} 1`,
		`currents_request_errors_total{op="other"} 1`,
		`currents_answer_coalesced_total`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestSingleflightCoalesces exercises the flight group directly: concurrent
// identical keys execute the function once.
func TestSingleflightCoalesces(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]flightResult, waiters)
	shared := make([]bool, waiters)
	// Leader occupies the key until release closes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], shared[0] = g.do("k", func() flightResult {
			calls.Add(1)
			close(started)
			<-release
			return flightResult{status: 200, body: []byte("x")}
		})
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], shared[i] = g.do("k", func() flightResult {
				calls.Add(1)
				return flightResult{status: 200, body: []byte("x")}
			})
		}(i)
	}
	close(release)
	wg.Wait()

	// The leader is guaranteed to be in flight (started closed before the
	// waiters launch and release closes after all launched), so every
	// waiter that reached the group before the leader finished shares the
	// leader's single call. Invariant: executions + shared = all callers.
	var sharedCount int
	for i := 0; i < waiters; i++ {
		if string(results[i].body) != "x" || results[i].status != 200 {
			t.Fatalf("waiter %d got %+v", i, results[i])
		}
		if shared[i] {
			sharedCount++
		}
	}
	if calls.Load()+int64(sharedCount) != waiters {
		t.Fatalf("calls %d + shared %d != %d waiters", calls.Load(), sharedCount, waiters)
	}
	if shared[0] {
		t.Fatal("leader reported shared")
	}

	// Sequential reuse re-executes (key forgotten).
	res, wasShared := g.do("k", func() flightResult { return flightResult{status: 201} })
	if wasShared || res.status != 201 {
		t.Fatalf("sequential call: shared=%v res=%+v", wasShared, res)
	}
}

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	s := testSession(t, 19, 8)
	if err := reg.Register("ok-name_1.2", s); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "a/b", "a b", "\x00", ".hidden", "ünïcode"} {
		if err := reg.Register(bad, s); err == nil {
			t.Fatalf("name %q accepted", bad)
		}
	}
	if err := reg.Register("ok-name_1.2", s); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := reg.Register("nil", nil); err == nil {
		t.Fatal("nil session accepted")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "ok-name_1.2" {
		t.Fatalf("Names = %v", names)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	s := testSession(t, 23, 12)

	// One snapshot, one CSV, one ignored file.
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snappy.snap"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := dataset.WriteCSV(&csvBuf, s.Dataset().Claims()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fresh.csv"), csvBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("ignored"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A .csv sharing a .snap's base name (the `currents snapshot -o
	// data/x.snap data/x.csv` layout) is skipped in favor of the snapshot
	// instead of failing the boot on a duplicate name.
	if err := os.WriteFile(filepath.Join(dir, "snappy.csv"), csvBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var lines []string
	reg, err := LoadDir(dir, session.DefaultConfig(), func(f string, a ...any) {
		lines = append(lines, fmt.Sprintf(f, a...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if names := reg.Names(); len(names) != 2 || names[0] != "fresh" || names[1] != "snappy" {
		t.Fatalf("Names = %v", names)
	}
	if len(lines) != 3 { // loaded snap, skipped same-name csv, built csv
		t.Fatalf("log lines = %v", lines)
	}

	// Both routes end at the same serving state.
	snappy, _, _ := reg.GetWithEpoch("snappy")
	fresh, _, _ := reg.GetWithEpoch("fresh")
	q := s.Dataset().Objects()[:4]
	a1, err := snappy.AnswerObjects(q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := fresh.AnswerObjects(q)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(BuildAnswerResponse(a1, false))
	b2, _ := json.Marshal(BuildAnswerResponse(a2, false))
	if !bytes.Equal(b1, b2) {
		t.Fatal("snapshot-loaded and csv-built sessions answer differently")
	}

	// A corrupt snapshot with a valid magic registers lazily (LoadDir only
	// sniffs the header) and fails with a descriptive error on first
	// acquisition; a wrong magic fails LoadDir itself.
	bad := t.TempDir()
	if err := os.WriteFile(filepath.Join(bad, "broken.snap"), []byte("SCDSSESSgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	badReg, err := LoadDir(bad, session.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := badReg.Acquire("broken"); err == nil {
		t.Fatal("corrupt snapshot served")
	}
	worse := t.TempDir()
	if err := os.WriteFile(filepath.Join(worse, "nonsense.snap"), []byte("NOTASNAPfile"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(worse, session.DefaultConfig(), nil); err == nil {
		t.Fatal("non-snapshot file accepted")
	}
	// Empty dir errors.
	if _, err := LoadDir(t.TempDir(), session.DefaultConfig(), nil); err == nil {
		t.Fatal("empty dir accepted")
	}
}
