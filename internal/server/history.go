// Time-travel serving: as-of resolution, the epoch history listing, and
// the trajectory endpoint.
//
// Epochs are immutable worlds, so serving one that is no longer current is
// the same read-only dispatch as serving the current one — the only new
// machinery is resolution (?as_of= → a retained session via session.AsOf)
// and navigation (GET /history lists what is addressable, GET /trajectory
// walks a value across the addressable range). Historical responses cache
// under their own epoch key and never go stale.
package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sourcecurrents/internal/model"
	"sourcecurrents/internal/session"
	"sourcecurrents/internal/temporal"
)

// ResolveAsOf resolves an as_of specifier against a session's epoch
// history: a bare integer is an epoch number, "@<seconds>" a Unix
// timestamp, and anything else an RFC3339 instant. It returns the session
// serving that epoch together with the epoch itself (the cache-key
// generation). Unparseable specifiers and epochs outside the retention
// window are request errors (400).
func ResolveAsOf(sess *session.Session, spec string) (*session.Session, uint64, error) {
	if epoch, err := strconv.Atoi(spec); err == nil {
		hs, err := sess.AsOf(epoch)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: as_of: %v", ErrBadRequest, err)
		}
		return hs, uint64(epoch), nil
	}
	var t time.Time
	if secs, ok := strings.CutPrefix(spec, "@"); ok {
		n, err := strconv.ParseInt(secs, 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: as_of: bad unix timestamp %q", ErrBadRequest, spec)
		}
		t = time.Unix(n, 0)
	} else {
		var err error
		if t, err = time.Parse(time.RFC3339, spec); err != nil {
			return nil, 0, fmt.Errorf("%w: as_of: want an epoch number, @unixseconds, or RFC3339 instant, got %q", ErrBadRequest, spec)
		}
	}
	hs, err := sess.AsOfTime(t)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: as_of: %v", ErrBadRequest, err)
	}
	return hs, uint64(hs.DatasetEpoch()), nil
}

// EpochJSON is one addressable epoch in the /history listing.
type EpochJSON struct {
	Epoch int `json:"epoch"`
	// Created is when the epoch became current, RFC3339; absent when the
	// epoch predates this process (restored from a snapshot's log).
	Created string `json:"created,omitempty"`
	// Resident reports whether a serving session for the epoch is in
	// memory right now; non-resident epochs materialize lazily on first
	// as_of touch.
	Resident bool `json:"resident"`
	Current  bool `json:"current,omitempty"`
}

// HistoryResponse is the /history payload: the dataset's addressable epoch
// range, oldest first.
type HistoryResponse struct {
	Dataset string      `json:"dataset"`
	Current int         `json:"current"`
	Floor   int         `json:"floor"`
	Epochs  []EpochJSON `json:"epochs"`
}

// BuildHistoryResponse renders a session's retained epoch spine.
func BuildHistoryResponse(name string, sess *session.Session) HistoryResponse {
	infos := sess.History()
	out := HistoryResponse{
		Dataset: name,
		Current: sess.DatasetEpoch(),
		Floor:   sess.HistoryFloor(),
		Epochs:  make([]EpochJSON, len(infos)),
	}
	for i, info := range infos {
		ej := EpochJSON{Epoch: info.Epoch, Resident: info.Resident, Current: info.Current}
		if !info.Created.IsZero() {
			ej.Created = info.Created.UTC().Format(time.RFC3339)
		}
		out.Epochs[i] = ej
	}
	return out
}

// TrajectoryPointJSON is one epoch's reading along a trajectory. Source
// mode fills Accuracy; pair mode fills the dependence posterior and both
// copy directions. Pointers keep true zeros distinguishable from an absent
// mode.
type TrajectoryPointJSON struct {
	Epoch    int      `json:"epoch"`
	Accuracy *float64 `json:"accuracy,omitempty"`
	// Dependence is P(A~B); CopyForward P(A copies B), CopyReverse the
	// other direction.
	Dependence  *float64 `json:"dependence,omitempty"`
	CopyForward *float64 `json:"copy_forward,omitempty"`
	CopyReverse *float64 `json:"copy_reverse,omitempty"`
}

// WindowJSON is one sliding-window verdict from temporal.DetectOverWindows.
type WindowJSON struct {
	Start    int64   `json:"start"`
	End      int64   `json:"end"`
	Prob     float64 `json:"prob"`
	Analyzed bool    `json:"analyzed"`
	// A and B name the pair in source mode, where windows from every pair
	// involving the source are merged; absent in pair mode.
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
}

// TrajectoryResponse is the /trajectory payload: how a source's accuracy or
// a pair's copy verdict evolved across the retained epochs, optionally with
// the per-window temporal verdicts over the current dataset's time range.
type TrajectoryResponse struct {
	Dataset string `json:"dataset"`
	Source  string `json:"source,omitempty"`
	A       string `json:"a,omitempty"`
	B       string `json:"b,omitempty"`
	// Points walks the addressable epochs oldest-first. Source-mode points
	// begin at the epoch the source first appears.
	Points  []TrajectoryPointJSON `json:"points"`
	Windows []WindowJSON          `json:"windows,omitempty"`
}

// handleTrajectory serves GET /v1/{ds}/trajectory?source=S or ?pair=A,B,
// plus &windows=1 for the sliding-window temporal verdicts.
func (s *Server) handleTrajectory(r *http.Request, name string, sess *session.Session) response {
	q := r.URL.Query()
	src, pair := q.Get("source"), q.Get("pair")
	resp, err := ExecTrajectory(sess, name, src, pair, q.Get("windows") != "")
	if err != nil {
		return errResponse(err)
	}
	return jsonResponse(http.StatusOK, resp)
}

// ExecTrajectory computes a trajectory over the session's retained epoch
// range. Exactly one of source/pair selects the mode; includeWindows adds
// temporal.DetectOverWindows verdicts computed over the current dataset
// (an error when it carries no timestamped claims).
func ExecTrajectory(sess *session.Session, name, source, pair string, includeWindows bool) (*TrajectoryResponse, error) {
	if (source == "") == (pair == "") {
		return nil, fmt.Errorf("%w: trajectory: want exactly one of ?source=S or ?pair=A,B", ErrBadRequest)
	}
	resp := &TrajectoryResponse{Dataset: name}
	var a, b model.SourceID
	if pair != "" {
		as, bs, ok := strings.Cut(pair, ",")
		if !ok || as == "" || bs == "" || as == bs {
			return nil, fmt.Errorf("%w: trajectory: ?pair wants two distinct comma-separated sources, got %q", ErrBadRequest, pair)
		}
		a, b = model.SourceID(as), model.SourceID(bs)
		resp.A, resp.B = as, bs
	} else {
		resp.Source = source
	}

	for _, info := range sess.History() {
		hs, err := sess.AsOf(info.Epoch)
		if err != nil {
			// The window can slide under a concurrent append; skip epochs
			// that were pruned between listing and resolution.
			continue
		}
		pt := TrajectoryPointJSON{Epoch: info.Epoch}
		if source != "" {
			acc, ok := hs.AccuracyOf(model.SourceID(source))
			if !ok {
				continue // source not yet present at this epoch
			}
			pt.Accuracy = &acc
		} else {
			dep := hs.Dependence()
			if dep == nil {
				return nil, fmt.Errorf("trajectory: epoch %d: discovery result unavailable", info.Epoch)
			}
			d := dep.DependenceProb(a, b)
			cf := dep.CopyProb(a, b)
			cr := dep.CopyProb(b, a)
			pt.Dependence, pt.CopyForward, pt.CopyReverse = &d, &cf, &cr
		}
		resp.Points = append(resp.Points, pt)
	}

	if includeWindows {
		d := sess.Dataset()
		if d == nil {
			return nil, fmt.Errorf("trajectory: dataset unavailable")
		}
		wres, err := temporal.DetectOverWindows(d, temporal.DefaultWindowedConfig())
		if err != nil {
			return nil, fmt.Errorf("%w: trajectory windows: %v", ErrBadRequest, err)
		}
		if pair != "" {
			if h, ok := wres.History(a, b); ok {
				for _, wv := range h.Windows {
					resp.Windows = append(resp.Windows, WindowJSON{
						Start: int64(wv.Start), End: int64(wv.End),
						Prob: wv.Prob, Analyzed: wv.Analyzed,
					})
				}
			}
		} else {
			srcID := model.SourceID(source)
			for _, h := range wres.Histories {
				if h.Pair.A != srcID && h.Pair.B != srcID {
					continue
				}
				for _, wv := range h.Windows {
					resp.Windows = append(resp.Windows, WindowJSON{
						Start: int64(wv.Start), End: int64(wv.End),
						Prob: wv.Prob, Analyzed: wv.Analyzed,
						A: string(h.Pair.A), B: string(h.Pair.B),
					})
				}
			}
		}
	}
	return resp, nil
}
