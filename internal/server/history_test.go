package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/session"
)

// retainedSession builds a test session with an epoch retention window.
func retainedSession(t testing.TB, seed int64, nObjects, retain int) *session.Session {
	t.Helper()
	cfg := session.DefaultConfig()
	cfg.RetainEpochs = retain
	s, err := session.New(testWorld(t, seed, nObjects), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAsOfEndpointGolden is the time-travel acceptance test: on a world
// advanced through two appends, ?as_of=0 returns byte-for-byte the answer
// served before any append, ?as_of=1 the mid-chain answer, and current
// queries keep serving the live epoch — while the history endpoint and the
// retention metrics expose the addressable range.
func TestAsOfEndpointGolden(t *testing.T) {
	reg := NewRegistry()
	s0 := retainedSession(t, 11, 40, 4)
	if err := reg.Register("alpha", s0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{AnswerCacheSize: 64}))
	defer ts.Close()

	ansBody := answerBody(t, s0, 6)
	ansURL := ts.URL + "/v1/alpha/answer"

	resp, golden0 := post(t, ansURL, ansBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch-0 answer status %d: %s", resp.StatusCode, golden0)
	}

	// Advance two epochs over HTTP, mirroring each batch on a direct chain
	// so the per-epoch goldens are the library's own serving state.
	direct := s0
	goldens := map[int][]byte{0: golden0}
	for i := 1; i <= 2; i++ {
		batch := appendBody(t, direct, fmt.Sprintf("tt%d", i), fmt.Sprintf("Z%d", i), 8)
		resp, body := post(t, ts.URL+"/v1/alpha/append", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d status %d: %s", i, resp.StatusCode, body)
		}
		var req AppendRequest
		if err := json.Unmarshal([]byte(batch), &req); err != nil {
			t.Fatal(err)
		}
		claims, err := req.batch()
		if err != nil {
			t.Fatal(err)
		}
		if direct, err = direct.Append(claims); err != nil {
			t.Fatal(err)
		}
		goldens[i] = expectedAnswer(t, direct, decodeAnswerReq(t, ansBody))
	}

	// Current queries serve the live epoch, untouched by history machinery.
	if _, got := post(t, ansURL, ansBody); string(got) != string(goldens[2]) {
		t.Fatalf("current answer differs from the direct two-append chain:\ngot  %s\nwant %s", got, goldens[2])
	}
	// Every retained epoch serves its exact pre-append bytes.
	for e := 0; e <= 2; e++ {
		resp, got := post(t, ansURL+"?as_of="+fmt.Sprint(e), ansBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("as_of=%d status %d: %s", e, resp.StatusCode, got)
		}
		if string(got) != string(goldens[e]) {
			t.Fatalf("as_of=%d bytes differ from the answer served at epoch %d", e, e)
		}
	}
	// And the current world still serves current bytes afterwards.
	if _, got := post(t, ansURL, ansBody); string(got) != string(goldens[2]) {
		t.Fatal("historical reads perturbed the current answer")
	}

	// Timestamp resolution: an instant in the far future is the current
	// epoch; RFC3339 and @unixseconds forms both parse.
	future := time.Now().Add(time.Hour)
	for _, spec := range []string{future.Format(time.RFC3339), fmt.Sprintf("@%d", future.Unix())} {
		resp, got := post(t, ansURL+"?as_of="+url.QueryEscape(spec), ansBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("as_of=%s status %d: %s", spec, resp.StatusCode, got)
		}
		if string(got) != string(goldens[2]) {
			t.Fatalf("as_of=%s did not resolve to the current epoch", spec)
		}
	}

	// Error contract: out-of-range epochs and unparseable specs are 400s.
	for _, spec := range []string{"9", "-1", "garbage", "@notasecond"} {
		resp, body := post(t, ansURL+"?as_of="+url.QueryEscape(spec), ansBody)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("as_of=%s status %d, want 400: %s", spec, resp.StatusCode, body)
		}
	}

	// The history listing exposes the addressable range.
	resp, body := get(t, ts.URL+"/v1/alpha/history")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history status %d: %s", resp.StatusCode, body)
	}
	var hr HistoryResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Dataset != "alpha" || hr.Current != 2 || hr.Floor != 0 || len(hr.Epochs) != 3 {
		t.Fatalf("history = %+v", hr)
	}
	if !hr.Epochs[2].Current || !hr.Epochs[2].Resident || hr.Epochs[0].Current {
		t.Fatalf("history epoch flags = %+v", hr.Epochs)
	}
	if resp, _ := post(t, ts.URL+"/v1/alpha/history", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatal("POST history accepted")
	}

	_, met := get(t, ts.URL+"/metrics")
	for _, line := range []string{
		`currents_retained_epochs{dataset="alpha"} 2`,
		// One GET plus the rejected POST, both labeled history.
		`currents_requests_total{op="history"} 2`,
	} {
		if !strings.Contains(string(met), line) {
			t.Errorf("metrics missing %q", line)
		}
	}
	// 3 as_of epoch reads + 2 timestamp reads resolved historically... the
	// two timestamp forms resolve to the current epoch, which still counts
	// as an as_of-specified request.
	if !strings.Contains(string(met), "currents_historical_requests_total 5") {
		t.Errorf("historical request counter not at 5:\n%s",
			grepMetric(string(met), "currents_historical_requests_total"))
	}
}

func grepMetric(body, name string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			return line
		}
	}
	return "(absent)"
}

// TestAsOfBelowFloor pins the retention boundary over HTTP: epochs pruned
// out of the window are a 400, not a silent fallback to some other epoch.
func TestAsOfBelowFloor(t *testing.T) {
	reg := NewRegistry()
	s0 := retainedSession(t, 13, 25, 1)
	if err := reg.Register("beta", s0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{}))
	defer ts.Close()

	for i := 0; i < 2; i++ {
		cur, _, _ := reg.GetWithEpoch("beta")
		resp, body := post(t, ts.URL+"/v1/beta/append",
			appendBody(t, cur, fmt.Sprintf("bf%d", i), "Z7", 3))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	body := answerBody(t, s0, 4)
	if resp, b := post(t, ts.URL+"/v1/beta/answer?as_of=0", body); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("as_of below the floor: status %d, want 400: %s", resp.StatusCode, b)
	}
	if resp, _ := post(t, ts.URL+"/v1/beta/answer?as_of=1", body); resp.StatusCode != http.StatusOK {
		t.Fatal("as_of at the floor rejected")
	}
}

// timestampedWorld builds a frozen dataset with a persistent copier over a
// time horizon, so windowed trajectory serving has real windows to report.
func timestampedWorld(t testing.TB) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	d := dataset.New()
	for obj := 0; obj < 20; obj++ {
		o := model.Obj(fmt.Sprintf("o%02d", obj), "v")
		v := 0
		for tick := 0; tick < 60; tick += 2 + rng.Intn(4) {
			v++
			val := fmt.Sprintf("v%d_%d", obj, v)
			t0 := model.Time(tick)
			if err := d.Add(model.NewTemporalClaim("P0", o, val, t0)); err != nil {
				t.Fatal(err)
			}
			if rng.Float64() < 0.9 {
				if err := d.Add(model.NewTemporalClaim("P1", o, val, t0+model.Time(rng.Intn(3)))); err != nil {
					t.Fatal(err)
				}
			}
			if rng.Float64() < 0.85 {
				if err := d.Add(model.NewTemporalClaim("C", o, val, t0+1+model.Time(rng.Intn(2)))); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	d.Freeze()
	return d
}

// TestTrajectoryEndpoint pins trajectory serving: accuracy evolution for a
// source, copy-verdict evolution for a pair, windowed temporal verdicts,
// and the parameter error contract.
func TestTrajectoryEndpoint(t *testing.T) {
	cfg := session.DefaultConfig()
	cfg.RetainEpochs = -1
	tw, err := session.New(timestampedWorld(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Register("tw", tw); err != nil {
		t.Fatal(err)
	}
	snapOnly := retainedSession(t, 11, 30, -1)
	if err := reg.Register("alpha", snapOnly); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{}))
	defer ts.Close()

	// Two appends on tw: one from an established source, one introducing a
	// brand-new source mid-chain.
	for i, src := range []string{"P1", "newsrc"} {
		cur, _, _ := reg.GetWithEpoch("tw")
		resp, body := post(t, ts.URL+"/v1/tw/append", appendBody(t, cur, src, fmt.Sprintf("T%d", i), 5))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d status %d: %s", i, resp.StatusCode, body)
		}
	}

	decode := func(u string) TrajectoryResponse {
		t.Helper()
		resp, body := get(t, u)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("trajectory status %d: %s", resp.StatusCode, body)
		}
		var tr TrajectoryResponse
		if err := json.Unmarshal(body, &tr); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	// Source mode: a source present from epoch 0 has one accuracy reading
	// per addressable epoch.
	tr := decode(ts.URL + "/v1/tw/trajectory?source=P0")
	if tr.Source != "P0" || len(tr.Points) != 3 {
		t.Fatalf("source trajectory = %+v", tr)
	}
	for i, pt := range tr.Points {
		if pt.Epoch != i || pt.Accuracy == nil || pt.Dependence != nil {
			t.Fatalf("source point %d = %+v", i, pt)
		}
	}
	// A source born at epoch 2 has readings only from its birth epoch on.
	tr = decode(ts.URL + "/v1/tw/trajectory?source=newsrc")
	if len(tr.Points) != 1 || tr.Points[0].Epoch != 2 {
		t.Fatalf("mid-chain source trajectory = %+v", tr.Points)
	}

	// Pair mode: dependence posterior and both copy directions per epoch.
	tr = decode(ts.URL + "/v1/tw/trajectory?pair=P0,C")
	if tr.A != "P0" || tr.B != "C" || len(tr.Points) != 3 {
		t.Fatalf("pair trajectory = %+v", tr)
	}
	for i, pt := range tr.Points {
		if pt.Dependence == nil || pt.CopyForward == nil || pt.CopyReverse == nil || pt.Accuracy != nil {
			t.Fatalf("pair point %d = %+v", i, pt)
		}
	}

	// Windowed verdicts ride along for timestamped worlds — per-window
	// probabilities for the pair, and merged per-pair windows in source
	// mode.
	tr = decode(ts.URL + "/v1/tw/trajectory?pair=P0,C&windows=1")
	if len(tr.Windows) == 0 {
		t.Fatal("pair windows empty on a timestamped world")
	}
	for _, wj := range tr.Windows {
		if wj.A != "" || wj.B != "" {
			t.Fatalf("pair-mode window names the pair redundantly: %+v", wj)
		}
	}
	tr = decode(ts.URL + "/v1/tw/trajectory?source=C&windows=1")
	if len(tr.Windows) == 0 {
		t.Fatal("source windows empty on a timestamped world")
	}
	for _, wj := range tr.Windows {
		if wj.A == "" || wj.B == "" {
			t.Fatalf("source-mode window missing pair names: %+v", wj)
		}
	}

	// Error contract.
	for _, q := range []string{"", "?source=P0&pair=P0,C", "?pair=P0", "?pair=P0,P0", "?pair=,C"} {
		resp, body := get(t, ts.URL+"/v1/tw/trajectory"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("trajectory%s status %d, want 400: %s", q, resp.StatusCode, body)
		}
	}
	// Windows on a world with no timestamped claims cannot slice a range.
	resp, body := get(t, ts.URL+"/v1/alpha/trajectory?source="+
		url.QueryEscape(string(snapOnly.Dataset().Sources()[0]))+"&windows=1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("windows on snapshot world: status %d, want 400: %s", resp.StatusCode, body)
	}
	if resp, _ := post(t, ts.URL+"/v1/tw/trajectory?source=P0", ""); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatal("POST trajectory accepted")
	}
}

// TestRetentionEvictionChurn is the retention × lazy-eviction race: three
// mmap-backed worlds behind -max-resident 1 with -retain-epochs 3, one
// world churning through appends while readers replay every addressable
// epoch via ?as_of= and others force evict/reload cycles. Meaningful under
// -race: retired mapped epochs must never be unmapped while a pinned
// request reads them, and every 200 must be byte-identical to the answer
// that epoch served when it was current. Zero failed requests required.
func TestRetentionEvictionChurn(t *testing.T) {
	dir, reqs, wants := snapDir(t, 3)
	cfg := session.DefaultConfig()
	cfg.RetainEpochs = 3
	reg, err := LoadDir(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg.SetMaxResident(1)
	ts := httptest.NewServer(New(reg, Options{AnswerCacheSize: 256}))
	defer ts.Close()

	const churnWorld = "world0"
	churnReq := reqs[churnWorld]
	var goldens sync.Map // epoch int -> []byte
	goldens.Store(0, wants[churnWorld])

	stop := make(chan struct{})
	errc := make(chan error, 16)
	var wg sync.WaitGroup

	// As-of readers walk the retained window of the churning world.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var epochs []int
				goldens.Range(func(k, _ any) bool {
					epochs = append(epochs, k.(int))
					return true
				})
				e := epochs[rng.Intn(len(epochs))]
				resp, err := http.Post(
					fmt.Sprintf("%s/v1/%s/answer?as_of=%d", ts.URL, churnWorld, e),
					"application/json", strings.NewReader(churnReq))
				if err != nil {
					errc <- err
					return
				}
				body := readAll(resp)
				if resp.StatusCode == http.StatusBadRequest {
					continue // epoch slid below the floor mid-request
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("as_of=%d: status %d: %s", e, resp.StatusCode, body)
					return
				}
				want, _ := goldens.Load(e)
				if string(body) != string(want.([]byte)) {
					errc <- fmt.Errorf("as_of=%d: bytes differ from the epoch's golden", e)
					return
				}
			}
		}(w)
	}
	// Eviction churners hammer the two read-only worlds, keeping the
	// resident bound under pressure while the mutated world stays pinned.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("world%d", 1+w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/"+name+"/answer",
					"application/json", strings.NewReader(reqs[name]))
				if err != nil {
					errc <- err
					return
				}
				body := readAll(resp)
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("%s: status %d: %s", name, resp.StatusCode, body)
					return
				}
				if string(body) != string(wants[name]) {
					errc <- fmt.Errorf("%s: bytes differ under eviction churn", name)
					return
				}
			}
		}(w)
	}

	// The appender drives 6 epochs through the retention window (floor
	// reaches 3, so mapped epoch 0 is pruned and reaped mid-run), recording
	// each new epoch's golden before the next append.
	for i := 1; i <= 6; i++ {
		cur, _, ok := reg.GetWithEpoch(churnWorld)
		if !ok {
			t.Fatal("churn world missing")
		}
		resp, body := post(t, ts.URL+"/v1/"+churnWorld+"/append",
			appendBody(t, cur, fmt.Sprintf("ch%d", i), fmt.Sprintf("V%d", i), 4))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d status %d: %s", i, resp.StatusCode, body)
		}
		resp2, golden := post(t, ts.URL+"/v1/"+churnWorld+"/answer", churnReq)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("post-append answer status %d: %s", resp2.StatusCode, golden)
		}
		goldens.Store(i, golden)
		// Epochs below the new floor are no longer valid targets; drop them
		// so readers mostly stay in the window.
		if floor := i - 3; floor > 0 {
			goldens.Delete(floor - 1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}

	_, met := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(met), `currents_retained_epochs{dataset="world0"} 3`) {
		t.Errorf("retention gauge wrong:\n%s", grepMetric(string(met), "currents_retained_epochs"))
	}
	if strings.Contains(string(met), "currents_historical_requests_total 0\n") {
		t.Error("no historical requests counted during churn")
	}
}

func readAll(resp *http.Response) []byte {
	defer resp.Body.Close()
	var body []byte
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			return body
		}
	}
}
