package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"sourcecurrents/internal/model"
	"sourcecurrents/internal/session"
)

// expectJSON renders the byte-exact body the server must produce for a
// value: json.Marshal plus the trailing newline.
func expectJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

func intp(v int) *int { return &v }

func refsFor(objs []model.ObjectID) []ObjectRef {
	refs := make([]ObjectRef, len(objs))
	for i, o := range objs {
		refs[i] = ObjectRef{Entity: o.Entity, Attribute: o.Attribute}
	}
	return refs
}

func marshalReq(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// expectedAnswer computes the golden response bytes for an answer request
// by calling the Session directly — the same path ExecAnswer takes.
func expectedAnswer(t testing.TB, sess *session.Session, req AnswerRequest) []byte {
	t.Helper()
	res, err := ExecAnswer(sess, req)
	if err != nil {
		t.Fatal(err)
	}
	return expectJSON(t, BuildAnswerResponse(res, req.IncludeSteps))
}

// TestHTTPByteIdenticalToSessionCalls pins the equivalence acceptance
// criterion: every HTTP response body is byte-for-byte the JSON encoding of
// the result a direct Session call returns for the same request.
func TestHTTPByteIdenticalToSessionCalls(t *testing.T) {
	ts, sessions := testServer(t)

	for name, sess := range sessions {
		base := ts.URL + "/v1/" + name
		objs := sess.Dataset().Objects()

		answerReqs := []AnswerRequest{
			{Query: refsFor(objs)},
			{Query: refsFor(objs[:3])},
			{Query: refsFor([]model.ObjectID{objs[0], objs[0], objs[4]})}, // duplicates
			{Query: refsFor(objs[:6]), Policy: "accuracy-coverage", MaxSources: 3},
			{Query: refsFor(objs[:4]), Policy: "by-id", IncludeSteps: true},
			{Query: refsFor(objs[:5]), StopProb: 0.9, Parallelism: 2},
		}
		for i, req := range answerReqs {
			t.Run(fmt.Sprintf("%s/answer/%d", name, i), func(t *testing.T) {
				want := expectedAnswer(t, sess, req)
				resp, got := post(t, base+"/answer", marshalReq(t, req))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status = %d: %s", resp.StatusCode, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("HTTP body differs from direct call:\nhttp: %s\nwant: %s", got, want)
				}
			})
		}

		t.Run(name+"/fuse", func(t *testing.T) {
			res, err := ExecFuse(sess)
			if err != nil {
				t.Fatal(err)
			}
			want := expectJSON(t, BuildFuseResponse(sess.Dataset().Objects(), res))
			resp, got := post(t, base+"/fuse", "")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d: %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("HTTP fuse differs from direct call:\nhttp: %s\nwant: %s", got, want)
			}
		})

		recommendReqs := []RecommendRequest{
			{K: intp(3)},
			{K: intp(5), Weights: &WeightsRequest{Accuracy: 1}},
			{K: intp(0)}, // explicitly zero results
			{},           // absent K defaults to 5
		}
		for i, req := range recommendReqs {
			t.Run(fmt.Sprintf("%s/recommend/%d", name, i), func(t *testing.T) {
				top, err := ExecRecommend(sess, req)
				if err != nil {
					t.Fatal(err)
				}
				want := expectJSON(t, BuildRecommendResponse(top))
				resp, got := post(t, base+"/recommend", marshalReq(t, req))
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("status = %d: %s", resp.StatusCode, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("HTTP recommend differs from direct call:\nhttp: %s\nwant: %s", got, want)
				}
			})
		}

		t.Run(name+"/accuracy", func(t *testing.T) {
			want := expectJSON(t, BuildAccuracyResponse(ExecAccuracy(sess)))
			resp, got := get(t, base+"/accuracy")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d: %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("HTTP accuracy differs from direct call:\nhttp: %s\nwant: %s", got, want)
			}
		})

		t.Run(name+"/link", func(t *testing.T) {
			req := LinkRequest{MatchThreshold: 0.8}
			res, err := ExecLink(sess, req)
			if err != nil {
				t.Fatal(err)
			}
			want := expectJSON(t, BuildLinkResponse(res))
			resp, got := post(t, base+"/link", marshalReq(t, req))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d: %s", resp.StatusCode, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("HTTP link differs from direct call:\nhttp: %s\nwant: %s", got, want)
			}
		})
	}
}

// TestSnapshotServedByteIdentical closes the loop across the new subsystem:
// a server cold-started from a session snapshot serves byte-identical
// responses to one built from raw claims.
func TestSnapshotServedByteIdentical(t *testing.T) {
	built := testSession(t, 47, 30)
	var buf bytes.Buffer
	if err := built.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := session.LoadSnapshot(bytes.NewReader(buf.Bytes()), session.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry()
	if err := reg.Register("built", built); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("loaded", loaded); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{}))
	t.Cleanup(ts.Close)

	body := marshalReq(t, AnswerRequest{Query: refsFor(built.Dataset().Objects()), IncludeSteps: true})
	_, a := post(t, ts.URL+"/v1/built/answer", body)
	_, b := post(t, ts.URL+"/v1/loaded/answer", body)
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot-loaded server answers differ from built server")
	}
	_, fa := post(t, ts.URL+"/v1/built/fuse", "")
	_, fb := post(t, ts.URL+"/v1/loaded/fuse", "")
	if !bytes.Equal(fa, fb) {
		t.Fatal("snapshot-loaded server fuse differs from built server")
	}
}
