// Replace-mode adoption: the repair loop's convergence primitive. A lagging
// replica re-streams the primary's snapshot over its own world — session,
// epoch, and disk file swap together — and "not newer" streams are refused
// without touching anything.
package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"sourcecurrents/internal/session"
)

const appendOneClaim = `{"claims":[{"source":"s_extra","entity":"o00000","attribute":"v","value":"zzz"}]}`

// A replica that adopted at epoch 0 converges to the source's epoch 1 via
// replace mode, serves byte-identical answers, and a re-replace of the same
// stream reports "current" without re-installing anything.
func TestAdoptReplaceConverges(t *testing.T) {
	src, sessions := testServer(t)
	dir := t.TempDir()
	reg := NewRegistry()
	cfg := session.DefaultConfig()
	if err := AdoptFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if e, ok := reg.EpochIfKnown("alpha"); !ok || e != 0 {
		t.Fatalf("adopted epoch = %d (ok=%v), want 0", e, ok)
	}

	// The source advances an epoch the replica never sees — the divergence a
	// failed fan-out leaves.
	if resp, body := post(t, src.URL+"/v1/alpha/append", appendOneClaim); resp.StatusCode != http.StatusOK {
		t.Fatalf("source append status %d: %s", resp.StatusCode, body)
	}

	status, err := AdoptReplaceFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != "replaced" {
		t.Fatalf("replace status = %q, want \"replaced\"", status)
	}
	if e, ok := reg.EpochIfKnown("alpha"); !ok || e != 1 {
		t.Fatalf("post-replace epoch = %d (ok=%v), want 1", e, ok)
	}

	replica := httptest.NewServer(New(reg, Options{AdoptDir: dir, SessionCfg: cfg}))
	defer replica.Close()
	req := answerBody(t, sessions["alpha"], 5)
	_, want := post(t, src.URL+"/v1/alpha/answer", req)
	resp, got := post(t, replica.URL+"/v1/alpha/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica answer status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("replaced replica diverges from source:\n%s\n%s", got, want)
	}

	// Re-streaming the same epoch is "current": nothing to heal.
	status, err = AdoptReplaceFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != "current" {
		t.Fatalf("re-replace status = %q, want \"current\"", status)
	}
	if e, _ := reg.EpochIfKnown("alpha"); e != 1 {
		t.Fatalf("epoch after \"current\" = %d, want unchanged 1", e)
	}
}

// The HTTP replace path must flush the answer cache: a cached pre-replace
// answer served after the swap would undo the heal for exactly the queries
// that matter.
func TestAdoptReplaceFlushesAnswerCache(t *testing.T) {
	src, sessions := testServer(t)
	dir := t.TempDir()
	reg := NewRegistry()
	cfg := session.DefaultConfig()
	if err := AdoptFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	replica := httptest.NewServer(New(reg, Options{AdoptDir: dir, SessionCfg: cfg, AnswerCacheSize: 64}))
	defer replica.Close()

	req := answerBody(t, sessions["alpha"], 5)
	_, stale := post(t, replica.URL+"/v1/alpha/answer", req) // now cached

	if resp, body := post(t, src.URL+"/v1/alpha/append", appendOneClaim); resp.StatusCode != http.StatusOK {
		t.Fatalf("source append status %d: %s", resp.StatusCode, body)
	}
	_, fresh := post(t, src.URL+"/v1/alpha/answer", req)
	if bytes.Equal(stale, fresh) {
		t.Fatal("fixture bug: the append did not change the answer, cache flush is unobservable")
	}

	resp, body := post(t, replica.URL+"/v1/alpha/adopt?from="+src.URL+"/v1/alpha/snapshot&replace=1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP replace status %d: %s", resp.StatusCode, body)
	}
	var ar AdoptResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Status != "replaced" {
		t.Fatalf("HTTP replace status field = %q, want \"replaced\"", ar.Status)
	}

	resp, got := post(t, replica.URL+"/v1/alpha/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-replace answer status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatalf("post-replace answer is stale (cache not flushed):\n%s\n%s", got, fresh)
	}
}

// /readyz reports each registered dataset's epoch — the repair loop's lag
// signal — and the report tracks append swaps.
func TestReadyzReportsEpochs(t *testing.T) {
	src, _ := testServer(t)
	decode := func() ReadyResponse {
		t.Helper()
		resp, body := get(t, src.URL+"/readyz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz status %d: %s", resp.StatusCode, body)
		}
		var rr ReadyResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}
	rr := decode()
	if rr.Epochs["alpha"] != 0 || rr.Epochs["beta"] != 0 {
		t.Fatalf("epochs = %v, want alpha and beta at 0", rr.Epochs)
	}
	if resp, body := post(t, src.URL+"/v1/alpha/append", appendOneClaim); resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, body)
	}
	rr = decode()
	if rr.Epochs["alpha"] != 1 || rr.Epochs["beta"] != 0 {
		t.Fatalf("post-append epochs = %v, want alpha 1, beta 0", rr.Epochs)
	}
}
