// Replace-mode adoption: the repair loop's convergence primitive. A lagging
// replica re-streams the primary's snapshot over its own world — session,
// epoch, and disk file swap together — and "not newer" streams are refused
// without touching anything.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sourcecurrents/internal/session"
)

const appendOneClaim = `{"claims":[{"source":"s_extra","entity":"o00000","attribute":"v","value":"zzz"}]}`

// A replica that adopted at epoch 0 converges to the source's epoch 1 via
// replace mode, serves byte-identical answers, and a re-replace of the same
// stream reports "current" without re-installing anything.
func TestAdoptReplaceConverges(t *testing.T) {
	src, sessions := testServer(t)
	dir := t.TempDir()
	reg := NewRegistry()
	cfg := session.DefaultConfig()
	if err := AdoptFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	if e, ok := reg.EpochIfKnown("alpha"); !ok || e != 0 {
		t.Fatalf("adopted epoch = %d (ok=%v), want 0", e, ok)
	}

	// The source advances an epoch the replica never sees — the divergence a
	// failed fan-out leaves.
	if resp, body := post(t, src.URL+"/v1/alpha/append", appendOneClaim); resp.StatusCode != http.StatusOK {
		t.Fatalf("source append status %d: %s", resp.StatusCode, body)
	}

	status, err := AdoptReplaceFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != "replaced" {
		t.Fatalf("replace status = %q, want \"replaced\"", status)
	}
	if e, ok := reg.EpochIfKnown("alpha"); !ok || e != 1 {
		t.Fatalf("post-replace epoch = %d (ok=%v), want 1", e, ok)
	}

	replica := httptest.NewServer(New(reg, Options{AdoptDir: dir, SessionCfg: cfg}))
	defer replica.Close()
	req := answerBody(t, sessions["alpha"], 5)
	_, want := post(t, src.URL+"/v1/alpha/answer", req)
	resp, got := post(t, replica.URL+"/v1/alpha/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica answer status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("replaced replica diverges from source:\n%s\n%s", got, want)
	}

	// Re-streaming the same epoch is "current": nothing to heal.
	status, err = AdoptReplaceFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status != "current" {
		t.Fatalf("re-replace status = %q, want \"current\"", status)
	}
	if e, _ := reg.EpochIfKnown("alpha"); e != 1 {
		t.Fatalf("epoch after \"current\" = %d, want unchanged 1", e)
	}
}

// The HTTP replace path must flush the answer cache: a cached pre-replace
// answer served after the swap would undo the heal for exactly the queries
// that matter.
func TestAdoptReplaceFlushesAnswerCache(t *testing.T) {
	src, sessions := testServer(t)
	dir := t.TempDir()
	reg := NewRegistry()
	cfg := session.DefaultConfig()
	if err := AdoptFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	replica := httptest.NewServer(New(reg, Options{AdoptDir: dir, SessionCfg: cfg, AnswerCacheSize: 64}))
	defer replica.Close()

	req := answerBody(t, sessions["alpha"], 5)
	_, stale := post(t, replica.URL+"/v1/alpha/answer", req) // now cached

	if resp, body := post(t, src.URL+"/v1/alpha/append", appendOneClaim); resp.StatusCode != http.StatusOK {
		t.Fatalf("source append status %d: %s", resp.StatusCode, body)
	}
	_, fresh := post(t, src.URL+"/v1/alpha/answer", req)
	if bytes.Equal(stale, fresh) {
		t.Fatal("fixture bug: the append did not change the answer, cache flush is unobservable")
	}

	resp, body := post(t, replica.URL+"/v1/alpha/adopt?from="+src.URL+"/v1/alpha/snapshot&replace=1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP replace status %d: %s", resp.StatusCode, body)
	}
	var ar AdoptResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Status != "replaced" {
		t.Fatalf("HTTP replace status field = %q, want \"replaced\"", ar.Status)
	}

	resp, got := post(t, replica.URL+"/v1/alpha/answer", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-replace answer status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatalf("post-replace answer is stale (cache not flushed):\n%s\n%s", got, fresh)
	}
}

// A replace and a concurrent append must serialize: if the append could
// interleave with the replace's epoch check, it would build a successor on
// the pre-replace chain and swap it in at the same epoch the replace
// installs — a same-epoch fork the epoch-comparing repair scan can never
// detect. The commit hook blocks mid-replace to hold the critical section
// open while an append hammers the same dataset.
func TestReplaceSerializesWithAppend(t *testing.T) {
	src, _ := testServer(t)
	dir := t.TempDir()
	reg := NewRegistry()
	cfg := session.DefaultConfig()
	if err := AdoptFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	replica := httptest.NewServer(New(reg, Options{AdoptDir: dir, SessionCfg: cfg}))
	defer replica.Close()

	// The source advances to epoch 1 — the lag a failed fan-out leaves.
	if resp, body := post(t, src.URL+"/v1/alpha/append", appendOneClaim); resp.StatusCode != http.StatusOK {
		t.Fatalf("source append status %d: %s", resp.StatusCode, body)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	repDone := make(chan error, 1)
	go func() {
		status, err := AdoptReplaceFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil, func() {
			close(entered)
			<-release
		})
		if err == nil && status != "replaced" {
			err = fmt.Errorf("replace status = %q, want \"replaced\"", status)
		}
		repDone <- err
	}()
	<-entered

	appDone := make(chan uint64, 1)
	go func() {
		resp, body := post(t, replica.URL+"/v1/alpha/append",
			`{"claims":[{"source":"s_other","entity":"o00001","attribute":"v","value":"yyy"}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("replica append status %d: %s", resp.StatusCode, body)
			appDone <- 0
			return
		}
		var ar AppendResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Error(err)
			appDone <- 0
			return
		}
		appDone <- ar.Epoch
	}()

	select {
	case e := <-appDone:
		t.Fatalf("append completed (epoch %d) while the replace held the critical section", e)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-repDone; err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-appDone:
		if e != 2 {
			t.Fatalf("append epoch = %d, want 2 (built on the replaced epoch-1 chain)", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("append never completed after the replace released")
	}
	if e, _ := reg.EpochIfKnown("alpha"); e != 2 {
		t.Fatalf("final epoch = %d, want 2", e)
	}
}

// A replace whose snapshot is not ahead of the live epoch refuses without
// touching the serving directory: the epoch CAS must run before the disk
// rename, or a stale stream would clobber <dir>/<name>.snap under a newer
// live world and an eviction reload would silently regress the epoch.
func TestReplaceStaleLeavesDiskAlone(t *testing.T) {
	src, _ := testServer(t)
	dir := t.TempDir()
	reg := NewRegistry()
	cfg := session.DefaultConfig()
	if err := AdoptFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "alpha.snap")
	before, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}

	status, err := AdoptReplaceFromURL(reg, "alpha", src.URL+"/v1/alpha/snapshot", dir, cfg, nil, func() {
		t.Error("commit hook ran for a stale replace")
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != "current" {
		t.Fatalf("stale replace status = %q, want \"current\"", status)
	}
	after, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("stale replace rewrote the snapshot on disk")
	}
}

// /readyz reports each registered dataset's epoch — the repair loop's lag
// signal — and the report tracks append swaps.
func TestReadyzReportsEpochs(t *testing.T) {
	src, _ := testServer(t)
	decode := func() ReadyResponse {
		t.Helper()
		resp, body := get(t, src.URL+"/readyz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz status %d: %s", resp.StatusCode, body)
		}
		var rr ReadyResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}
	rr := decode()
	if rr.Epochs["alpha"] != 0 || rr.Epochs["beta"] != 0 {
		t.Fatalf("epochs = %v, want alpha and beta at 0", rr.Epochs)
	}
	if resp, body := post(t, src.URL+"/v1/alpha/append", appendOneClaim); resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, body)
	}
	rr = decode()
	if rr.Epochs["alpha"] != 1 || rr.Epochs["beta"] != 0 {
		t.Fatalf("post-append epochs = %v, want alpha 1, beta 0", rr.Epochs)
	}
}
