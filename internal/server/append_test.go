package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sourcecurrents/internal/session"
)

// appendBody renders an append request: source asserting value for the
// dataset's first n objects.
func appendBody(t testing.TB, s *session.Session, source, value string, n int) string {
	t.Helper()
	objs := s.Dataset().Objects()
	if n > len(objs) {
		n = len(objs)
	}
	req := AppendRequest{Claims: make([]ClaimJSON, n)}
	for i := 0; i < n; i++ {
		req.Claims[i] = ClaimJSON{
			Source: source, Entity: objs[i].Entity, Attribute: objs[i].Attribute, Value: value,
		}
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSwapNeverServesStaleAnswer is the epoch-key regression test: with the
// answer cache enabled and warm, swapping a dataset's session must never
// let a later request observe response bytes computed from the retired
// session — the pre-fix cache key (name + request, no epoch) did exactly
// that.
func TestSwapNeverServesStaleAnswer(t *testing.T) {
	reg := NewRegistry()
	s1 := testSession(t, 11, 40)
	if err := reg.Register("alpha", s1); err != nil {
		t.Fatal(err)
	}
	srv := New(reg, Options{AnswerCacheSize: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := answerBody(t, s1, 6)
	url := ts.URL + "/v1/alpha/answer"

	resp, got1 := post(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got1)
	}
	// Warm hit: identical bytes from the cache.
	if _, again := post(t, url, body); string(again) != string(got1) {
		t.Fatalf("cache hit differs from first response")
	}
	if srv.cache.hits.Load() == 0 {
		t.Fatalf("expected a cache hit before the swap")
	}

	// A different world over the same object universe: same query, different
	// data, different answers.
	s2 := testSession(t, 29, 40)
	if _, err := reg.Swap("alpha", s2); err != nil {
		t.Fatal(err)
	}

	wantRes, err := ExecAnswer(s2, decodeAnswerReq(t, body))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(BuildAnswerResponse(wantRes, false))
	if err != nil {
		t.Fatal(err)
	}
	if string(want)+"\n" == string(got1) {
		t.Fatalf("test worlds produced identical answers; pick different seeds")
	}
	resp, got2 := post(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got2)
	}
	if string(got2) == string(got1) {
		t.Fatalf("swapped dataset served pre-swap bytes")
	}
	if string(got2) != string(want)+"\n" {
		t.Fatalf("post-swap response is not the new session's answer:\ngot  %s\nwant %s", got2, want)
	}
}

func decodeAnswerReq(t testing.TB, body string) AnswerRequest {
	t.Helper()
	var req AnswerRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	return req
}

// TestAppendEndpoint drives the live-ingest happy path over HTTP: the
// response reports the new generation, the swapped-in session serves
// exactly what a direct Session.Append produces, and the lifecycle metrics
// (epoch gauge, append counter, cache flush counter) all move.
func TestAppendEndpoint(t *testing.T) {
	reg := NewRegistry()
	s1 := testSession(t, 11, 40)
	if err := reg.Register("alpha", s1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{AnswerCacheSize: 64}))
	defer ts.Close()

	ansBody := answerBody(t, s1, 6)
	post(t, ts.URL+"/v1/alpha/answer", ansBody) // seed the cache

	batch := appendBody(t, s1, "fresh", "Z0", 10)
	resp, body := post(t, ts.URL+"/v1/alpha/append", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status %d: %s", resp.StatusCode, body)
	}
	var ar AppendResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Dataset != "alpha" || ar.Epoch != 1 || ar.Appended != 10 {
		t.Fatalf("append response = %+v", ar)
	}
	if ar.Claims != s1.Dataset().Len()+10 || ar.Sources != len(s1.Dataset().Sources())+1 {
		t.Fatalf("append response counts = %+v", ar)
	}

	// The served answer after the append is the direct Append result.
	var req AppendRequest
	if err := json.Unmarshal([]byte(batch), &req); err != nil {
		t.Fatal(err)
	}
	claims, err := req.batch()
	if err != nil {
		t.Fatal(err)
	}
	wantSess, err := s1.Append(claims)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := ExecAnswer(wantSess, decodeAnswerReq(t, ansBody))
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(BuildAnswerResponse(wantRes, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, got := post(t, ts.URL+"/v1/alpha/answer", ansBody); string(got) != string(want)+"\n" {
		t.Fatalf("post-append answer differs from direct Append result:\ngot  %s\nwant %s", got, want)
	}

	_, met := get(t, ts.URL+"/metrics")
	for _, line := range []string{
		`currents_dataset_epoch{dataset="alpha"} 1`,
		`currents_dataset_appends_total{dataset="alpha"} 1`,
		`currents_dataset_swaps_total{dataset="alpha"} 1`,
		`currents_answer_cache_flushes_total 1`,
		`currents_requests_total{op="append"} 1`,
	} {
		if !strings.Contains(string(met), line) {
			t.Errorf("metrics missing %q", line)
		}
	}
}

// TestAppendErrorPaths pins the endpoint's error contract.
func TestAppendErrorPaths(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		name, url, body string
		status          int
	}{
		{"empty batch", "/v1/alpha/append", `{"claims":[]}`, http.StatusBadRequest},
		{"no body", "/v1/alpha/append", ``, http.StatusBadRequest},
		{"invalid claim", "/v1/alpha/append",
			`{"claims":[{"source":"","entity":"e","attribute":"a","value":"v"}]}`, http.StatusBadRequest},
		{"bad prob", "/v1/alpha/append",
			`{"claims":[{"source":"s","entity":"e","attribute":"a","value":"v","prob":1.5}]}`, http.StatusBadRequest},
		{"unknown field", "/v1/alpha/append", `{"clams":[]}`, http.StatusBadRequest},
		{"unknown dataset", "/v1/nope/append", `{"claims":[]}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
		})
	}
	t.Run("method not allowed", func(t *testing.T) {
		resp, _ := get(t, ts.URL+"/v1/alpha/append")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET append status %d, want 405", resp.StatusCode)
		}
	})
}

// TestAppendPersistAndReplay round-trips live ingest through the
// persistence layer: appends write segments, and LoadDir restores the
// exact post-append serving state from base snapshot + segment replay.
func TestAppendPersistAndReplay(t *testing.T) {
	dir := t.TempDir()
	s1 := testSession(t, 11, 30)
	snap, err := os.Create(filepath.Join(dir, "alpha.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	snap.Close()

	reg := NewRegistry()
	if err := reg.Register("alpha", s1); err != nil {
		t.Fatal(err)
	}
	// CompactEvery < 0 disables compaction so every segment survives.
	ts := httptest.NewServer(New(reg, Options{PersistDir: dir, CompactEvery: -1}))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		cur, _, _ := reg.GetWithEpoch("alpha")
		resp, body := post(t, ts.URL+"/v1/alpha/append",
			appendBody(t, cur, fmt.Sprintf("w%d", i), fmt.Sprintf("Z%d", i), 4+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	for i := 1; i <= 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("alpha.%06d.seg", i))
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("segment %s missing: %v", p, err)
		}
	}

	live, _, _ := reg.GetWithEpoch("alpha")
	reloaded, err := LoadDir(dir, session.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, epoch, ok := reloaded.GetWithEpoch("alpha")
	if !ok || epoch != 3 {
		t.Fatalf("reloaded epoch = %d (ok=%t), want 3", epoch, ok)
	}
	assertServesSame(t, cold, live)
}

// TestAppendCompaction pins the compaction lifecycle: once CompactEvery
// segments accumulate, the server folds them into a fresh session snapshot
// and removes them, and a cold start from the compacted directory still
// restores the live state exactly.
func TestAppendCompaction(t *testing.T) {
	dir := t.TempDir()
	s1 := testSession(t, 13, 25)
	snap, err := os.Create(filepath.Join(dir, "beta.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	snap.Close()

	reg := NewRegistry()
	if err := reg.Register("beta", s1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{PersistDir: dir, CompactEvery: 2}))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		cur, _, _ := reg.GetWithEpoch("beta")
		resp, body := post(t, ts.URL+"/v1/beta/append",
			appendBody(t, cur, fmt.Sprintf("w%d", i), "Z9", 3))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	// Appends 1 and 2 compacted into beta.snap; append 3 left one segment.
	segs, err := filepath.Glob(filepath.Join(dir, "beta.*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || !strings.HasSuffix(segs[0], "beta.000003.seg") {
		t.Fatalf("post-compaction segments = %v, want only beta.000003.seg", segs)
	}
	// Compaction archives superseded segments instead of deleting them, so
	// every epoch's raw batch stays addressable on disk after its claims
	// fold into the snapshot.
	archived, err := filepath.Glob(filepath.Join(dir, "archive", "beta.*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(archived) != 2 ||
		!strings.HasSuffix(archived[0], "beta.000001.seg") ||
		!strings.HasSuffix(archived[1], "beta.000002.seg") {
		t.Fatalf("archived segments = %v, want beta.000001.seg and beta.000002.seg", archived)
	}

	live, _, _ := reg.GetWithEpoch("beta")
	reloaded, err := LoadDir(dir, session.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, epoch, ok := reloaded.GetWithEpoch("beta")
	if !ok || epoch != 3 {
		t.Fatalf("reloaded epoch = %d (ok=%t), want 3", epoch, ok)
	}
	assertServesSame(t, cold, live)
}

// assertServesSame asserts two sessions serve identical accuracies and
// answers over the first objects — the cold-start equivalence contract.
func assertServesSame(t testing.TB, got, want *session.Session) {
	t.Helper()
	ga, wa := got.Accuracy(), want.Accuracy()
	if len(ga) != len(wa) {
		t.Fatalf("accuracy sizes differ: %d vs %d", len(ga), len(wa))
	}
	for src, v := range wa {
		if ga[src] != v {
			t.Fatalf("accuracy[%s] = %v, want %v", src, ga[src], v)
		}
	}
	objs := want.Dataset().Objects()
	n := 8
	if n > len(objs) {
		n = len(objs)
	}
	gr, err := got.AnswerObjects(objs[:n])
	if err != nil {
		t.Fatal(err)
	}
	wr, err := want.AnswerObjects(objs[:n])
	if err != nil {
		t.Fatal(err)
	}
	g, _ := json.Marshal(BuildAnswerResponse(gr, true))
	w, _ := json.Marshal(BuildAnswerResponse(wr, true))
	if string(g) != string(w) {
		t.Fatalf("answers differ:\ngot  %s\nwant %s", g, w)
	}
}

// TestRegistrySwapErrors pins Swap/Update error handling.
func TestRegistrySwapErrors(t *testing.T) {
	reg := NewRegistry()
	s := testSession(t, 11, 25)
	if _, err := reg.Swap("ghost", s); err == nil {
		t.Fatal("swap of unregistered dataset accepted")
	}
	if err := reg.Register("a", s); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Swap("a", nil); err == nil {
		t.Fatal("nil swap accepted")
	}
	if _, _, err := reg.Update("ghost", func(cur *session.Session) (*session.Session, error) {
		return cur, nil
	}); err == nil {
		t.Fatal("update of unregistered dataset accepted")
	}
	if _, _, err := reg.Update("a", func(*session.Session) (*session.Session, error) {
		return nil, fmt.Errorf("boom")
	}); err == nil {
		t.Fatal("failed update did not surface its error")
	}
	if _, epoch, _ := reg.GetWithEpoch("a"); epoch != 0 {
		t.Fatalf("failed update advanced the epoch to %d", epoch)
	}
}

// TestAppendConcurrentWithReads hammers a live server with concurrent
// answer traffic while appends swap the session underneath — zero failed
// requests is the pass condition (the loadgen invariant, in-process).
func TestAppendConcurrentWithReads(t *testing.T) {
	reg := NewRegistry()
	s1 := testSession(t, 11, 30)
	if err := reg.Register("alpha", s1); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{AnswerCacheSize: 32}))
	defer ts.Close()

	body := answerBody(t, s1, 5)
	done := make(chan struct{})
	errs := make(chan error, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/alpha/answer", "application/json", strings.NewReader(body))
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					select {
					case errs <- fmt.Errorf("answer status %d", resp.StatusCode):
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		cur, _, _ := reg.GetWithEpoch("alpha")
		resp, b := post(t, ts.URL+"/v1/alpha/append",
			appendBody(t, cur, fmt.Sprintf("liv%d", i), "Z1", 3))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d status %d: %s", i, resp.StatusCode, b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if _, epoch, _ := reg.GetWithEpoch("alpha"); epoch != 5 {
		t.Fatalf("epoch = %d, want 5", epoch)
	}
}
