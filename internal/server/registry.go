// Registry of named serving sessions.
//
// A server hosts many datasets at once — the multi-dataset registry the
// ROADMAP's traffic goal needs. Sessions register under a URL-safe name and
// are themselves immutable and concurrency-safe, so the registry only
// guards its own map; lookups on the request path take a read lock.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/session"
)

// Registry maps dataset names to serving sessions.
type Registry struct {
	mu       sync.RWMutex
	sessions map[string]*session.Session
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sessions: map[string]*session.Session{}}
}

// validName reports whether a dataset name is URL-safe (letters, digits,
// dot, underscore, dash; non-empty; no leading dot).
func validName(name string) bool {
	if name == "" || name[0] == '.' {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Register adds a session under name, rejecting invalid or duplicate names.
func (r *Registry) Register(name string, s *session.Session) error {
	if !validName(name) {
		return fmt.Errorf("server: invalid dataset name %q", name)
	}
	if s == nil {
		return fmt.Errorf("server: nil session for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.sessions[name]; ok {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.sessions[name] = s
	return nil
}

// Get returns the session registered under name.
func (r *Registry) Get(name string) (*session.Session, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.sessions[name]
	return s, ok
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sessions))
	for name := range r.sessions {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.sessions)
}

// LoadDir populates a registry from a directory: every *.snap file loads as
// a session snapshot (the fast cold-start path) and every *.csv file as raw
// claims that build a fresh session (paying the full precompute). The
// dataset name is the file name without extension. logf, when non-nil,
// receives one line per dataset (used by the CLI to report cold-start
// progress); pass nil to load silently.
func LoadDir(dir string, cfg session.Config, logf func(format string, args ...any)) (*Registry, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// A .snap is a precompute of a .csv; when both share a base name (the
	// natural `currents snapshot -o data/x.snap data/x.csv` layout), serve
	// the snapshot and skip the claims file instead of failing on the
	// duplicate name.
	hasSnap := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".snap" {
			hasSnap[strings.TrimSuffix(e.Name(), ".snap")] = true
		}
	}
	reg := NewRegistry()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		name := strings.TrimSuffix(e.Name(), ext)
		path := filepath.Join(dir, e.Name())
		var s *session.Session
		switch ext {
		case ".snap":
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			s, err = session.LoadSnapshot(f, cfg)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("server: load %s: %w", path, err)
			}
			logf("loaded %q from snapshot %s", name, e.Name())
		case ".csv":
			if hasSnap[name] {
				logf("skipping %s: %q is served from its snapshot", e.Name(), name)
				continue
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			claims, err := dataset.ReadCSV(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("server: read %s: %w", path, err)
			}
			d, err := dataset.FromClaims(claims)
			if err != nil {
				return nil, fmt.Errorf("server: build %s: %w", path, err)
			}
			s, err = session.New(d, cfg)
			if err != nil {
				return nil, fmt.Errorf("server: build %s: %w", path, err)
			}
			logf("built %q from claims %s (full precompute)", name, e.Name())
		default:
			continue
		}
		if err := reg.Register(name, s); err != nil {
			return nil, err
		}
	}
	if reg.Len() == 0 {
		return nil, fmt.Errorf("server: no datasets (*.snap, *.csv) in %s", dir)
	}
	return reg, nil
}
