// Registry of named serving sessions, epoch-versioned for live ingest.
//
// A server hosts many datasets at once — the multi-dataset registry the
// ROADMAP's traffic goal needs. Sessions register under a URL-safe name and
// are themselves immutable and concurrency-safe; mutation happens by
// *swapping* a dataset's session for a successor, never in place. Every
// entry carries an epoch counter that increments on each swap, so the
// serving layers above (answer cache, singleflight) can key responses to
// the exact session generation they were computed from. Lookups on the
// request path take a read lock; the per-entry update mutex serializes
// writers only and never blocks readers.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/session"
)

// entry is one registered dataset: the current session, its epoch, and the
// write-side bookkeeping. The session pointer and epoch are guarded by the
// registry lock (a swap replaces both under the write lock, so a reader
// holding the read lock always observes a matching pair). updateMu
// serializes Update callers per dataset — successor construction can take
// milliseconds and must not hold the registry lock.
type entry struct {
	sess     *session.Session
	epoch    uint64
	updateMu sync.Mutex
	swaps    atomic.Int64
	appends  atomic.Int64
}

// Registry maps dataset names to epoch-versioned serving sessions.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// validName reports whether a dataset name is URL-safe (letters, digits,
// dot, underscore, dash; non-empty; no leading dot).
func validName(name string) bool {
	if name == "" || name[0] == '.' {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Register adds a session under name, rejecting invalid or duplicate names.
// The entry's epoch starts at the session dataset's append-log epoch, so a
// registry epoch always equals the number of batches the served dataset
// has absorbed since its flat origin.
func (r *Registry) Register(name string, s *session.Session) error {
	if !validName(name) {
		return fmt.Errorf("server: invalid dataset name %q", name)
	}
	if s == nil {
		return fmt.Errorf("server: nil session for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.entries[name] = &entry{sess: s, epoch: uint64(s.Dataset().Epoch())}
	return nil
}

// Get returns the session registered under name.
func (r *Registry) Get(name string) (*session.Session, bool) {
	s, _, ok := r.GetWithEpoch(name)
	return s, ok
}

// GetWithEpoch returns the session registered under name together with its
// current epoch. The pair is read atomically: a session and an epoch
// returned together always belong to the same generation.
func (r *Registry) GetWithEpoch(name string) (*session.Session, uint64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, 0, false
	}
	return e.sess, e.epoch, true
}

// Swap atomically replaces name's session with next and advances the
// epoch, returning the new epoch. In-flight requests holding the retired
// session finish against it undisturbed (sessions are immutable); requests
// routed after Swap returns observe only the successor.
func (r *Registry) Swap(name string, next *session.Session) (uint64, error) {
	if next == nil {
		return 0, fmt.Errorf("server: nil session for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return 0, fmt.Errorf("server: unknown dataset %q", name)
	}
	e.sess = next
	e.epoch++
	e.swaps.Add(1)
	return e.epoch, nil
}

// Update runs fn against name's current session under the entry's update
// mutex and, on success, swaps in the session fn returns. fn typically
// builds a successor via Session.Append — and may persist a log segment
// before returning, so a failed write aborts the swap. Concurrent Update
// calls for the same dataset are serialized; readers are never blocked.
// Returns the swapped-in session and its new epoch.
func (r *Registry) Update(name string, fn func(cur *session.Session) (*session.Session, error)) (*session.Session, uint64, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("server: unknown dataset %q", name)
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	r.mu.RLock()
	cur := e.sess
	r.mu.RUnlock()
	next, err := fn(cur)
	if err != nil {
		return nil, 0, err
	}
	epoch, err := r.Swap(name, next)
	if err != nil {
		return nil, 0, err
	}
	e.appends.Add(1)
	return next, epoch, nil
}

// DatasetStat is one dataset's lifecycle counters, for /metrics.
type DatasetStat struct {
	Name    string
	Epoch   uint64
	Swaps   int64
	Appends int64
}

// Stats returns per-dataset lifecycle counters, sorted by name.
func (r *Registry) Stats() []DatasetStat {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetStat, 0, len(r.entries))
	for name, e := range r.entries {
		out = append(out, DatasetStat{
			Name:    name,
			Epoch:   e.epoch,
			Swaps:   e.swaps.Load(),
			Appends: e.appends.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// LoadDir populates a registry from a directory: every *.snap file loads as
// a session snapshot (the fast cold-start path) and every *.csv file as raw
// claims that build a fresh session (paying the full precompute). The
// dataset name is the file name without extension. After the base datasets
// load, any append-log segments (`<name>.<epoch>.seg`, written by a server
// persisting live appends) replay in epoch order through Session.Append,
// restoring the exact post-append serving state; segments at or below the
// loaded dataset's epoch — left behind by an interrupted compaction — are
// skipped. logf, when non-nil, receives one line per dataset (used by the
// CLI to report cold-start progress); pass nil to load silently.
func LoadDir(dir string, cfg session.Config, logf func(format string, args ...any)) (*Registry, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// A .snap is a precompute of a .csv; when both share a base name (the
	// natural `currents snapshot -o data/x.snap data/x.csv` layout), serve
	// the snapshot and skip the claims file instead of failing on the
	// duplicate name.
	hasSnap := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".snap" {
			hasSnap[strings.TrimSuffix(e.Name(), ".snap")] = true
		}
	}
	reg := NewRegistry()
	var segs []segmentFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		name := strings.TrimSuffix(e.Name(), ext)
		path := filepath.Join(dir, e.Name())
		var s *session.Session
		switch ext {
		case ".snap":
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			s, err = session.LoadSnapshot(f, cfg)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("server: load %s: %w", path, err)
			}
			logf("loaded %q from snapshot %s", name, e.Name())
		case ".csv":
			if hasSnap[name] {
				logf("skipping %s: %q is served from its snapshot", e.Name(), name)
				continue
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			claims, err := dataset.ReadCSV(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("server: read %s: %w", path, err)
			}
			d, err := dataset.FromClaims(claims)
			if err != nil {
				return nil, fmt.Errorf("server: build %s: %w", path, err)
			}
			s, err = session.New(d, cfg)
			if err != nil {
				return nil, fmt.Errorf("server: build %s: %w", path, err)
			}
			logf("built %q from claims %s (full precompute)", name, e.Name())
		case ".seg":
			if sf, ok := parseSegmentName(name); ok {
				sf.path = path
				segs = append(segs, sf)
			} else {
				logf("skipping %s: not a <name>.<epoch>.seg segment", e.Name())
			}
			continue
		default:
			continue
		}
		if err := reg.Register(name, s); err != nil {
			return nil, err
		}
	}
	if reg.Len() == 0 {
		return nil, fmt.Errorf("server: no datasets (*.snap, *.csv) in %s", dir)
	}
	if err := replaySegments(reg, segs, logf); err != nil {
		return nil, err
	}
	return reg, nil
}

// segmentFile is one parsed append-log segment file name.
type segmentFile struct {
	dataset string
	epoch   int
	path    string
}

// parseSegmentName splits a segment base name (extension already stripped)
// into dataset name and epoch: "flights.000003" → ("flights", 3).
func parseSegmentName(base string) (segmentFile, bool) {
	i := strings.LastIndexByte(base, '.')
	if i <= 0 || i == len(base)-1 {
		return segmentFile{}, false
	}
	epoch, err := strconv.Atoi(base[i+1:])
	if err != nil || epoch <= 0 {
		return segmentFile{}, false
	}
	return segmentFile{dataset: base[:i], epoch: epoch}, true
}

// replaySegments applies persisted append batches to their datasets in
// epoch order. A segment whose epoch is not exactly one past the dataset's
// current epoch is either stale (≤ current: superseded by a compacted
// snapshot — skipped) or evidence of a missing file (a gap — an error,
// because replaying across it would change serving state).
func replaySegments(reg *Registry, segs []segmentFile, logf func(format string, args ...any)) error {
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].dataset != segs[j].dataset {
			return segs[i].dataset < segs[j].dataset
		}
		return segs[i].epoch < segs[j].epoch
	})
	for _, sf := range segs {
		sess, epoch, ok := reg.GetWithEpoch(sf.dataset)
		if !ok {
			return fmt.Errorf("server: segment %s references unknown dataset %q", sf.path, sf.dataset)
		}
		if uint64(sf.epoch) <= epoch {
			logf("skipping %s: dataset %q is already at epoch %d", filepath.Base(sf.path), sf.dataset, epoch)
			continue
		}
		if uint64(sf.epoch) != epoch+1 {
			return fmt.Errorf("server: segment %s skips epochs (dataset %q at %d)", sf.path, sf.dataset, epoch)
		}
		f, err := os.Open(sf.path)
		if err != nil {
			return err
		}
		batch, err := dataset.ReadSegment(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("server: replay %s: %w", sf.path, err)
		}
		next, err := sess.Append(batch)
		if err != nil {
			return fmt.Errorf("server: replay %s: %w", sf.path, err)
		}
		if _, err := reg.Swap(sf.dataset, next); err != nil {
			return err
		}
		logf("replayed %s (+%d claims) onto %q", filepath.Base(sf.path), len(batch), sf.dataset)
	}
	return nil
}
