// Registry of named serving sessions, epoch-versioned for live ingest.
//
// A server hosts many datasets at once — the multi-dataset registry the
// ROADMAP's traffic goal needs. Sessions register under a URL-safe name and
// are themselves immutable and concurrency-safe; mutation happens by
// *swapping* a dataset's session for a successor, never in place. Every
// entry carries an epoch counter that increments on each swap, so the
// serving layers above (answer cache, singleflight) can key responses to
// the exact session generation they were computed from. Lookups on the
// request path take a read lock; the per-entry update mutex serializes
// writers only and never blocks readers.
//
// An entry is not a single generation: the current session heads an epoch
// ring — the session-layer history spine (session.AsOf) retains up to
// RetainEpochs predecessors behind it, so as-of requests resolve retired
// generations through the same pinned acquire as current ones. Mapped
// predecessors that fall out of the window drain into a per-entry grave
// and are unmapped only once the entry's pin count proves no in-flight
// request can still read them — the same quiescence contract -max-resident
// eviction uses.
package server

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/session"
	"sourcecurrents/internal/snapio"
)

// ErrUnknownDataset reports a lookup for a name no entry is registered
// under — the route layer's 404, distinct from a failed lazy load (500).
var ErrUnknownDataset = errors.New("server: unknown dataset")

// reloadSpec records how to (re)load an entry's session from disk: the lazy
// manifest LoadDir registers instead of paying the load up front, and what
// eviction falls back on to bring an idle world back.
type reloadSpec struct {
	path string
	cfg  session.Config
}

// entry is one registered dataset: the current session, its epoch, and the
// write-side bookkeeping. The session pointer and epoch are guarded by the
// registry lock (a swap replaces both under the write lock, so a reader
// holding the read lock always observes a matching pair). updateMu
// serializes Update callers per dataset — successor construction can take
// milliseconds and must not hold the registry lock.
//
// sess == nil means the entry is not resident: a lazy manifest not yet
// loaded, or a world evicted under -max-resident. spec then says how to
// load it; loadMu makes concurrent first requests load it exactly once.
// pins counts in-flight requests holding the current session (incremented
// under the registry read lock, checked by eviction under the write lock,
// so an eviction never unmaps a session a request still reads).
type entry struct {
	sess     *session.Session
	epoch    uint64
	spec     *reloadSpec
	loaded   bool // epoch has been initialized from a load, verify, or Register
	// dirty marks an entry whose serving state has diverged from the
	// snapshot on disk (a live append swap). Dirty entries are never
	// evicted — eviction reloads from disk, which would lose the appended
	// epochs. Replace clears it: a re-streamed snapshot IS the serving
	// state. Guarded by the registry lock, like sess and epoch.
	dirty    bool
	loadMu   sync.Mutex
	pins     atomic.Int64
	lastUsed atomic.Int64
	updateMu sync.Mutex
	swaps    atomic.Int64
	appends  atomic.Int64
	// verified records that the entry's snapshot has been proven loadable at
	// least once (a successful load, adopt validation, or /readyz probe).
	// Eviction keeps the bit: the file on disk was good and is not rewritten
	// by eviction, so readiness probes stay cheap for evicted worlds.
	verified atomic.Bool
	// grave holds mapped historical sessions that fell out of the epoch
	// retention window (drained from the session spine on Update). They are
	// closed only when pins reaches zero — an in-flight as-of request
	// resolved its historical session while holding the entry pin, so
	// pins == 0 proves no request can still read a graved mapping. graveLen
	// mirrors len(grave) so the release fast path can skip reaping without
	// taking graveMu.
	graveMu  sync.Mutex
	grave    []*session.Session
	graveLen atomic.Int64
}

// Registry maps dataset names to epoch-versioned serving sessions.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	// maxResident bounds how many sessions stay loaded at once (0 = no
	// bound). When a lazy load pushes the resident count over, the
	// least-recently-used idle reloadable world is closed and unmapped.
	maxResident int
	useClock    atomic.Int64
	loads       atomic.Int64
	evictions   atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

// SetMaxResident bounds the number of concurrently resident sessions
// (0 removes the bound) and evicts immediately if the bound is already
// exceeded. Only idle (unpinned), never-swapped entries with a reload spec
// are evictable; others stay resident regardless of the bound.
func (r *Registry) SetMaxResident(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxResident = n
	r.evictLocked(nil)
}

// validName reports whether a dataset name is URL-safe (letters, digits,
// dot, underscore, dash; non-empty; no leading dot).
func validName(name string) bool {
	if name == "" || name[0] == '.' {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Register adds a session under name, rejecting invalid or duplicate names.
// The entry's epoch starts at the session dataset's append-log epoch, so a
// registry epoch always equals the number of batches the served dataset
// has absorbed since its flat origin.
func (r *Registry) Register(name string, s *session.Session) error {
	if !validName(name) {
		return fmt.Errorf("server: invalid dataset name %q", name)
	}
	if s == nil {
		return fmt.Errorf("server: nil session for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	e := &entry{sess: s, epoch: uint64(s.DatasetEpoch()), loaded: true}
	e.verified.Store(true)
	r.entries[name] = e
	return nil
}

// RegisterLazy records a dataset manifest without loading it: the snapshot
// at path is validated only as far as its magic, and the session loads on
// the first request that needs it (mmap for v2 containers, decode for v1
// frames). This is the zero-cost cold-start path for multi-world servers.
func (r *Registry) RegisterLazy(name, path string, cfg session.Config) error {
	if !validName(name) {
		return fmt.Errorf("server: invalid dataset name %q", name)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	var magic [snapio.MagicLen]byte
	_, rerr := io.ReadFull(f, magic[:])
	f.Close()
	if rerr != nil {
		return fmt.Errorf("server: %s: %w: %v", path, snapio.ErrTruncated, rerr)
	}
	if m := string(magic[:]); m != session.SnapshotMagic && m != session.SnapshotV2Magic {
		return fmt.Errorf("server: %s: %w: not a session snapshot", path, snapio.ErrBadMagic)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("server: dataset %q already registered", name)
	}
	r.entries[name] = &entry{spec: &reloadSpec{path: path, cfg: cfg}}
	return nil
}

// Acquire returns name's current session and epoch with the entry pinned:
// the returned release func must be called once the request is done with
// the session, after which eviction may unmap it. A non-resident entry
// (lazy manifest or evicted world) loads first — concurrent acquirers of
// the same world share one load via the entry's load mutex. Unknown names
// return ErrUnknownDataset; a failed load returns its cause.
func (r *Registry) Acquire(name string) (*session.Session, uint64, func(), error) {
	for {
		r.mu.RLock()
		e, ok := r.entries[name]
		if !ok {
			r.mu.RUnlock()
			return nil, 0, nil, fmt.Errorf("%w %q", ErrUnknownDataset, name)
		}
		if e.sess != nil {
			// Pin under the read lock: eviction runs under the write lock
			// and skips pinned entries, so this session stays mapped until
			// release.
			e.pins.Add(1)
			e.lastUsed.Store(r.useClock.Add(1))
			s, epoch := e.sess, e.epoch
			r.mu.RUnlock()
			var once sync.Once
			return s, epoch, func() {
				once.Do(func() {
					if e.pins.Add(-1) == 0 && e.graveLen.Load() > 0 {
						r.reapGrave(e)
					}
				})
			}, nil
		}
		r.mu.RUnlock()
		if err := r.load(e); err != nil {
			return nil, 0, nil, err
		}
	}
}

// load brings a non-resident entry's session into memory from its reload
// spec. The load itself runs without the registry lock (it can take
// milliseconds); installation takes the write lock and triggers eviction
// if the resident bound is now exceeded.
func (r *Registry) load(e *entry) error {
	e.loadMu.Lock()
	defer e.loadMu.Unlock()
	r.mu.RLock()
	resident := e.sess != nil
	r.mu.RUnlock()
	if resident {
		return nil // another acquirer loaded it while we waited
	}
	if e.spec == nil {
		return fmt.Errorf("server: dataset has no snapshot to reload from")
	}
	s, err := session.LoadSnapshotFile(e.spec.path, e.spec.cfg)
	if err != nil {
		return fmt.Errorf("server: load %s: %w", e.spec.path, err)
	}
	r.mu.Lock()
	e.sess = s
	e.verified.Store(true)
	if !e.loaded {
		e.epoch = uint64(s.DatasetEpoch())
		e.loaded = true
	}
	r.loads.Add(1)
	r.evictLocked(e)
	r.mu.Unlock()
	return nil
}

// evictLocked closes least-recently-used sessions until the resident count
// fits maxResident. Callers hold the write lock. Only entries that are
// unpinned, never swapped (their serving state is exactly the snapshot on
// disk) and reloadable are candidates; keep, the entry that triggered the
// eviction, is never chosen even before its acquirer pins it.
func (r *Registry) evictLocked(keep *entry) {
	if r.maxResident <= 0 {
		return
	}
	for {
		resident := 0
		var victim *entry
		for _, e := range r.entries {
			if e.sess == nil {
				continue
			}
			resident++
			if e == keep || e.spec == nil || e.dirty || e.pins.Load() != 0 {
				continue
			}
			if victim == nil || e.lastUsed.Load() < victim.lastUsed.Load() {
				victim = e
			}
		}
		if resident <= r.maxResident || victim == nil {
			return
		}
		_ = victim.sess.Close()
		victim.sess = nil
		r.evictions.Add(1)
	}
}

// reapGrave closes graved historical sessions once no request can read
// them. The pins check runs under the registry write lock — the same lock
// Acquire pins under — so a close never races a request resolving an as-of
// epoch: any such request holds the entry pin for its whole lifetime, and
// the epoch it resolved was removed from the session spine before its
// session was graved.
func (r *Registry) reapGrave(e *entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.pins.Load() != 0 {
		return
	}
	e.graveMu.Lock()
	dead := e.grave
	e.grave = nil
	e.graveLen.Store(0)
	e.graveMu.Unlock()
	for _, s := range dead {
		_ = s.Close()
	}
}

// GetWithEpoch returns the session registered under name together with its
// current epoch, loading non-resident entries first. The pair is read
// atomically: a session and an epoch returned together always belong to
// the same generation. It reports false for unknown names and for entries
// whose lazy load fails (Acquire surfaces the cause).
func (r *Registry) GetWithEpoch(name string) (*session.Session, uint64, bool) {
	s, epoch, release, err := r.Acquire(name)
	if err != nil {
		return nil, 0, false
	}
	release()
	return s, epoch, true
}

// Swap atomically replaces name's session with next and advances the
// epoch, returning the new epoch. In-flight requests holding the retired
// session finish against it undisturbed (sessions are immutable); requests
// routed after Swap returns observe only the successor.
func (r *Registry) Swap(name string, next *session.Session) (uint64, error) {
	if next == nil {
		return 0, fmt.Errorf("server: nil session for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return 0, fmt.Errorf("server: unknown dataset %q", name)
	}
	e.sess = next
	e.epoch++
	e.dirty = true
	e.swaps.Add(1)
	return e.epoch, nil
}

// ErrReplaceStale reports a Replace whose candidate snapshot does not
// advance the live epoch: the dataset moved on (or was already replaced)
// between the snapshot being streamed and the swap, so there is nothing to
// heal and nothing was changed.
var ErrReplaceStale = errors.New("server: replacement snapshot is not newer than the live epoch")

// Replace installs a freshly streamed snapshot as name's new current
// generation: session, epoch (taken from the snapshot's own append-log
// epoch), and reload spec all swap together. The old chain's mapped
// sessions are graved and closed once in-flight requests drain — exactly
// the quiescence contract Update uses. Because the new serving state is
// byte-identical to the file at path, the entry comes out clean (evictable)
// and verified. This is the repair path: a lagging replica converges by
// adopting the primary's snapshot over its own world.
//
// Replace is a compare-and-swap on the epoch: it holds the entry's update
// mutex (so no concurrent append can build a successor on the pre-replace
// chain and swap it in at an epoch the replace would shadow — the
// same-epoch fork the epoch-comparing repair scan could never detect) and
// the load mutex (so a concurrent lazy load cannot reinstall the old
// snapshot over the replaced session), and only then rechecks the live
// epoch. A candidate at or behind the live epoch returns ErrReplaceStale
// with nothing changed. commit, when non-nil, runs after the epoch check
// passes and before the new session becomes visible — the caller's slot for
// renaming the snapshot into the serving directory and flushing caches
// keyed to the replaced chain; a commit error aborts the replace.
func (r *Registry) Replace(name string, s *session.Session, path string, cfg session.Config, commit func() error) (uint64, error) {
	if s == nil {
		return 0, fmt.Errorf("server: nil session for %q", name)
	}
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("server: unknown dataset %q", name)
	}
	// Entries are never removed from the map, so the pointer stays valid
	// across the unlock. updateMu before loadMu mirrors Update's order
	// (updateMu, then Acquire's load takes loadMu).
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	e.loadMu.Lock()
	defer e.loadMu.Unlock()

	r.mu.RLock()
	cur, known := e.epoch, e.loaded
	r.mu.RUnlock()
	// With both mutexes held nothing can advance the epoch or initialize it
	// (Update, load, VerifyAll all serialize against them), so this check
	// holds through the install below.
	if known && uint64(s.DatasetEpoch()) <= cur {
		return 0, ErrReplaceStale
	}
	if commit != nil {
		if err := commit(); err != nil {
			return 0, err
		}
	}

	r.mu.Lock()
	var dead []*session.Session
	if e.sess != nil {
		dead = e.sess.TakeAllMapped()
	}
	e.sess = s
	e.epoch = uint64(s.DatasetEpoch())
	e.spec = &reloadSpec{path: path, cfg: cfg}
	e.loaded = true
	e.dirty = false
	e.swaps.Add(1)
	e.verified.Store(true)
	epoch := e.epoch
	r.mu.Unlock()
	if len(dead) > 0 {
		e.graveMu.Lock()
		e.grave = append(e.grave, dead...)
		e.graveLen.Store(int64(len(e.grave)))
		e.graveMu.Unlock()
		if e.pins.Load() == 0 {
			r.reapGrave(e)
		}
	}
	return epoch, nil
}

// KnownEpochs returns the epoch of every entry whose epoch is known (it
// loaded, verified, or registered at least once) — the shard's /readyz
// epoch report, which the router's anti-entropy repair loop compares
// across a placement to find lagging replicas.
func (r *Registry) KnownEpochs() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.entries))
	for name, e := range r.entries {
		if e.loaded {
			out[name] = e.epoch
		}
	}
	return out
}

// EpochIfKnown returns name's current epoch, reporting false for unknown
// names and for entries that never initialized their epoch.
func (r *Registry) EpochIfKnown(name string) (uint64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok || !e.loaded {
		return 0, false
	}
	return e.epoch, true
}

// Update runs fn against name's current session under the entry's update
// mutex and, on success, swaps in the session fn returns. fn typically
// builds a successor via Session.Append — and may persist a log segment
// before returning, so a failed write aborts the swap. Concurrent Update
// calls for the same dataset are serialized; readers are never blocked.
// Returns the swapped-in session and its new epoch.
func (r *Registry) Update(name string, fn func(cur *session.Session) (*session.Session, error)) (*session.Session, uint64, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("server: unknown dataset %q", name)
	}
	e.updateMu.Lock()
	defer e.updateMu.Unlock()
	// Acquire (rather than a bare read) both loads a non-resident world and
	// pins it for the duration of fn, so eviction cannot unmap the session
	// an append is reading from.
	cur, _, release, err := r.Acquire(name)
	if err != nil {
		return nil, 0, err
	}
	defer release()
	next, err := fn(cur)
	if err != nil {
		return nil, 0, err
	}
	epoch, err := r.Swap(name, next)
	if err != nil {
		return nil, 0, err
	}
	e.appends.Add(1)
	// The swap may have pushed mapped epochs out of the retention window;
	// park them in the grave and close them once in-flight requests drain.
	if dead := next.TakePrunedMapped(); len(dead) > 0 {
		e.graveMu.Lock()
		e.grave = append(e.grave, dead...)
		e.graveLen.Store(int64(len(e.grave)))
		e.graveMu.Unlock()
		release()
		if e.pins.Load() == 0 {
			r.reapGrave(e)
		}
	}
	return next, epoch, nil
}

// DatasetStat is one dataset's lifecycle counters, for /metrics.
type DatasetStat struct {
	Name    string
	Epoch   uint64
	Swaps   int64
	Appends int64
	// Resident reports whether the session is currently loaded;
	// MappedBytes is the size of its mmap'd snapshot (0 for heap-backed
	// sessions and non-resident entries).
	Resident    bool
	MappedBytes int64
	// RetainedEpochs counts historical epochs addressable via as_of behind
	// the current one; AsOfMaterializations counts lazy historical rebuilds
	// the epoch spine has paid. Both are 0 for non-resident entries.
	RetainedEpochs       int
	AsOfMaterializations int64
}

// Stats returns per-dataset lifecycle counters, sorted by name.
func (r *Registry) Stats() []DatasetStat {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]DatasetStat, 0, len(r.entries))
	for name, e := range r.entries {
		st := DatasetStat{
			Name:     name,
			Epoch:    e.epoch,
			Swaps:    e.swaps.Load(),
			Appends:  e.appends.Load(),
			Resident: e.sess != nil,
		}
		if e.sess != nil {
			st.MappedBytes = e.sess.MappedBytes()
			st.RetainedEpochs = e.sess.RetainedEpochs()
			st.AsOfMaterializations = e.sess.HistMaterializations()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ResidencyStats aggregates the lazy-registry gauges for /metrics:
// currently resident sessions, total mmap'd bytes across them, and the
// lifetime load and eviction counts.
type ResidencyStats struct {
	Resident    int
	MappedBytes int64
	Loads       int64
	Evictions   int64
}

// Residency returns the registry-wide residency gauges.
func (r *Registry) Residency() ResidencyStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rs := ResidencyStats{Loads: r.loads.Load(), Evictions: r.evictions.Load()}
	for _, e := range r.entries {
		if e.sess != nil {
			rs.Resident++
			rs.MappedBytes += e.sess.MappedBytes()
		}
	}
	return rs
}

// ReadyStatus is one dataset's readiness verification result.
type ReadyStatus struct {
	Name string
	Err  error // nil when the world is verified loadable
}

// VerifyAll actively proves every registered world loadable: resident
// sessions and previously-verified entries pass immediately; an unverified
// lazy manifest is opened end to end (full container validation, typed
// section views) and closed again, caching the verdict on success. This is
// the /readyz work — a router probing it never routes to a shard whose
// snapshot is corrupt, which /healthz's magic-sniff registration cannot
// promise. Results come back sorted by name.
func (r *Registry) VerifyAll() []ReadyStatus {
	r.mu.RLock()
	snap := make(map[string]*entry, len(r.entries))
	for name, e := range r.entries {
		snap[name] = e
	}
	r.mu.RUnlock()
	out := make([]ReadyStatus, 0, len(snap))
	for name, e := range snap {
		st := ReadyStatus{Name: name}
		if !e.verified.Load() {
			// Serialize with real loads so a concurrent first request and a
			// readiness probe don't validate the same file twice.
			e.loadMu.Lock()
			if !e.verified.Load() && e.sess == nil {
				if e.spec == nil {
					st.Err = fmt.Errorf("server: dataset %q has no snapshot to verify", name)
				} else if s, err := session.LoadSnapshotFile(e.spec.path, e.spec.cfg); err != nil {
					st.Err = fmt.Errorf("server: verify %s: %w", e.spec.path, err)
				} else {
					// The verify pass learned the world's epoch for free;
					// record it so /readyz can report it without a real load
					// (the repair loop's lag signal).
					r.mu.Lock()
					if !e.loaded {
						e.epoch = uint64(s.DatasetEpoch())
						e.loaded = true
					}
					r.mu.Unlock()
					_ = s.Close()
					e.verified.Store(true)
				}
			}
			e.loadMu.Unlock()
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// AllVerified reports whether every registered world has already been
// proven loadable, without triggering any load — the cheap "loading vs
// ready" distinction /healthz exposes. A freshly booted lazy server reports
// false here until its worlds are first touched or /readyz verifies them.
func (r *Registry) AllVerified() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		if !e.verified.Load() {
			return false
		}
	}
	return true
}

// markVerified caches a loadability verdict proven externally (adopt
// validates the fetched snapshot end to end before registering it).
func (r *Registry) markVerified(name string) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if ok {
		e.verified.Store(true)
	}
}

// recordEpoch caches an epoch learned externally (adopt validation reads
// the snapshot end to end) so /readyz reports it before any real load.
func (r *Registry) recordEpoch(name string, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if ok && !e.loaded {
		e.epoch = epoch
		e.loaded = true
	}
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// LoadDir populates a registry from a directory: every *.snap file loads as
// a session snapshot (the fast cold-start path) and every *.csv file as raw
// claims that build a fresh session (paying the full precompute). The
// dataset name is the file name without extension. After the base datasets
// load, any append-log segments (`<name>.<epoch>.seg`, written by a server
// persisting live appends) replay in epoch order through Session.Append,
// restoring the exact post-append serving state; segments at or below the
// loaded dataset's epoch — left behind by an interrupted compaction — are
// skipped. logf, when non-nil, receives one line per dataset (used by the
// CLI to report cold-start progress); pass nil to load silently.
func LoadDir(dir string, cfg session.Config, logf func(format string, args ...any)) (*Registry, error) {
	return loadDir(dir, cfg, logf, false)
}

// LoadDirAllowEmpty is LoadDir for fleet shards: a directory with no
// datasets is not an error, because a fresh shard legitimately boots empty
// and adopts its assigned worlds from peers via snapshot streaming.
func LoadDirAllowEmpty(dir string, cfg session.Config, logf func(format string, args ...any)) (*Registry, error) {
	return loadDir(dir, cfg, logf, true)
}

func loadDir(dir string, cfg session.Config, logf func(format string, args ...any), allowEmpty bool) (*Registry, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// A .snap is a precompute of a .csv; when both share a base name (the
	// natural `currents snapshot -o data/x.snap data/x.csv` layout), serve
	// the snapshot and skip the claims file instead of failing on the
	// duplicate name.
	hasSnap := map[string]bool{}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".snap" {
			hasSnap[strings.TrimSuffix(e.Name(), ".snap")] = true
		}
	}
	reg := NewRegistry()
	var segs []segmentFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := filepath.Ext(e.Name())
		name := strings.TrimSuffix(e.Name(), ext)
		path := filepath.Join(dir, e.Name())
		var s *session.Session
		switch ext {
		case ".snap":
			// Snapshots register as lazy manifests: the magic is checked now,
			// the session loads (mmap for v2) on the first request that needs
			// it. A directory of N worlds cold-starts in O(N) stat calls.
			if err := reg.RegisterLazy(name, path, cfg); err != nil {
				return nil, err
			}
			logf("registered %q from snapshot %s (loads on first request)", name, e.Name())
			continue
		case ".csv":
			if hasSnap[name] {
				logf("skipping %s: %q is served from its snapshot", e.Name(), name)
				continue
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			claims, err := dataset.ReadCSV(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("server: read %s: %w", path, err)
			}
			d, err := dataset.FromClaims(claims)
			if err != nil {
				return nil, fmt.Errorf("server: build %s: %w", path, err)
			}
			s, err = session.New(d, cfg)
			if err != nil {
				return nil, fmt.Errorf("server: build %s: %w", path, err)
			}
			logf("built %q from claims %s (full precompute)", name, e.Name())
		case ".seg":
			if sf, ok := parseSegmentName(name); ok {
				sf.path = path
				segs = append(segs, sf)
			} else {
				logf("skipping %s: not a <name>.<epoch>.seg segment", e.Name())
			}
			continue
		default:
			continue
		}
		if err := reg.Register(name, s); err != nil {
			return nil, err
		}
	}
	if reg.Len() == 0 && !allowEmpty {
		return nil, fmt.Errorf("server: no datasets (*.snap, *.csv) in %s", dir)
	}
	if err := replaySegments(reg, segs, logf); err != nil {
		return nil, err
	}
	return reg, nil
}

// segmentFile is one parsed append-log segment file name.
type segmentFile struct {
	dataset string
	epoch   int
	path    string
}

// parseSegmentName splits a segment base name (extension already stripped)
// into dataset name and epoch: "flights.000003" → ("flights", 3).
func parseSegmentName(base string) (segmentFile, bool) {
	i := strings.LastIndexByte(base, '.')
	if i <= 0 || i == len(base)-1 {
		return segmentFile{}, false
	}
	epoch, err := strconv.Atoi(base[i+1:])
	if err != nil || epoch <= 0 {
		return segmentFile{}, false
	}
	return segmentFile{dataset: base[:i], epoch: epoch}, true
}

// replaySegments applies persisted append batches to their datasets in
// epoch order. A segment whose epoch is not exactly one past the dataset's
// current epoch is either stale (≤ current: superseded by a compacted
// snapshot — skipped) or evidence of a missing file (a gap — an error,
// because replaying across it would change serving state).
func replaySegments(reg *Registry, segs []segmentFile, logf func(format string, args ...any)) error {
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].dataset != segs[j].dataset {
			return segs[i].dataset < segs[j].dataset
		}
		return segs[i].epoch < segs[j].epoch
	})
	for _, sf := range segs {
		sess, epoch, ok := reg.GetWithEpoch(sf.dataset)
		if !ok {
			return fmt.Errorf("server: segment %s references unknown dataset %q", sf.path, sf.dataset)
		}
		if uint64(sf.epoch) <= epoch {
			logf("skipping %s: dataset %q is already at epoch %d", filepath.Base(sf.path), sf.dataset, epoch)
			continue
		}
		if uint64(sf.epoch) != epoch+1 {
			return fmt.Errorf("server: segment %s skips epochs (dataset %q at %d)", sf.path, sf.dataset, epoch)
		}
		f, err := os.Open(sf.path)
		if err != nil {
			return err
		}
		batch, err := dataset.ReadSegment(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("server: replay %s: %w", sf.path, err)
		}
		next, err := sess.Append(batch)
		if err != nil {
			return fmt.Errorf("server: replay %s: %w", sf.path, err)
		}
		if _, err := reg.Swap(sf.dataset, next); err != nil {
			return err
		}
		logf("replayed %s (+%d claims) onto %q", filepath.Base(sf.path), len(batch), sf.dataset)
	}
	return nil
}
