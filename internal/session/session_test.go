package session

import (
	"fmt"
	"reflect"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/fusion"
	"sourcecurrents/internal/linkage"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/queryans"
	"sourcecurrents/internal/recommend"
	"sourcecurrents/internal/synth"
)

func servingWorld(t testing.TB, seed int64) *dataset.Dataset {
	t.Helper()
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed:           seed,
		NObjects:       60,
		IndependentAcc: []float64{0.9, 0.8, 0.7, 0.6, 0.85, 0.75},
		Copiers: []synth.CopierSpec{
			{MasterIndex: 0, CopyRate: 0.85, OwnAcc: 0.7},
			{MasterIndex: 2, CopyRate: 0.6, OwnAcc: 0.65},
		},
		FalsePool: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sw.Dataset
}

func queries(d *dataset.Dataset) [][]model.ObjectID {
	objs := d.Objects()
	return [][]model.ObjectID{
		objs,
		objs[:len(objs)/2],
		objs[len(objs)/3:],
		{objs[0], objs[0], objs[5]},
	}
}

// TestSessionAnswerMatchesOneShot pins the amortization contract: a Session
// answering many queries returns traces bit-identical to one-shot
// queryans.AnswerObjects calls configured with the same discovery result
// (which the queryans golden suite ties to the map-based reference path).
func TestSessionAnswerMatchesOneShot(t *testing.T) {
	d := servingWorld(t, 11)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep := s.Dependence()
	for _, pol := range []queryans.Policy{queryans.GreedyGain, queryans.AccuracyCoverage, queryans.ByID} {
		cfg := DefaultConfig()
		cfg.Query.Policy = pol
		sp, err := New(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		oneShot := queryans.DefaultConfig()
		oneShot.Policy = pol
		oneShot.Accuracy = dep.Truth.Accuracy
		oneShot.Dependence = dep.DependenceProb
		for qi, q := range queries(d) {
			want, err := queryans.AnswerObjects(d, q, oneShot)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sp.AnswerObjects(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("policy %v query %d: session answer differs from one-shot", pol, qi)
			}
		}
	}
}

func TestSessionFuseMatchesOneShot(t *testing.T) {
	d := servingWorld(t, 13)
	for _, st := range []fusion.Strategy{fusion.DependenceAware, fusion.Weighted, fusion.Majority, fusion.KeepFirst} {
		cfg := DefaultConfig()
		cfg.Fusion.Strategy = st
		s, err := New(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fusion.Fuse(d, cfg.Fusion)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Fuse()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("strategy %v: session fuse differs from one-shot", st)
		}
		// Repeated calls return equal, independent results.
		again, err := s.Fuse()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, got) {
			t.Fatalf("strategy %v: repeated fuse differs", st)
		}
	}
}

func TestSessionRecommendMatchesOneShot(t *testing.T) {
	d := servingWorld(t, 17)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := recommend.DefaultWeights()
	wantProfiles := recommend.BuildProfiles(d, s.Dependence(), nil)
	if !reflect.DeepEqual(s.Profiles(), wantProfiles) {
		t.Fatal("session profiles differ from one-shot BuildProfiles")
	}
	want, err := recommend.Top(wantProfiles, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.RecommendSources(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("session recommendation differs from one-shot Top")
	}
	if _, err := s.RecommendSources(w, -1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestSessionLink(t *testing.T) {
	d := servingWorld(t, 19)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := linkage.Link(d, linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Link(linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("session linkage differs from one-shot Link")
	}
}

// TestSessionParallelismInvariant pins that sessions built at different
// worker counts serve bit-identical results.
func TestSessionParallelismInvariant(t *testing.T) {
	d := servingWorld(t, 23)
	build := func(p int) (*Session, *queryans.Result, *fusion.Result, []recommend.Profile) {
		cfg := DefaultConfig()
		cfg.Parallelism = p
		s, err := New(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := s.AnswerObjects(d.Objects())
		if err != nil {
			t.Fatal(err)
		}
		fu, err := s.Fuse()
		if err != nil {
			t.Fatal(err)
		}
		return s, ans, fu, s.Profiles()
	}
	_, ans1, fu1, prof1 := build(1)
	for _, p := range []int{4, 16} {
		_, ans, fu, prof := build(p)
		if !reflect.DeepEqual(ans, ans1) {
			t.Fatalf("answers differ at Parallelism=%d", p)
		}
		if !reflect.DeepEqual(fu, fu1) {
			t.Fatalf("fusion differs at Parallelism=%d", p)
		}
		if !reflect.DeepEqual(prof, prof1) {
			t.Fatalf("profiles differ at Parallelism=%d", p)
		}
	}
}

func TestSessionErrors(t *testing.T) {
	unfrozen := dataset.New()
	_ = unfrozen.Add(model.NewClaim("S1", model.Obj("a", "v"), "1"))
	if _, err := New(unfrozen, DefaultConfig()); err == nil {
		t.Fatal("unfrozen dataset accepted")
	}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Fatal("nil dataset accepted")
	}
	empty := dataset.New()
	empty.Freeze()
	if _, err := New(empty, DefaultConfig()); err == nil {
		t.Fatal("empty dataset accepted")
	}
	d := servingWorld(t, 29)
	bad := DefaultConfig()
	bad.Query.CopyRate = 2
	if _, err := New(d, bad); err == nil {
		t.Fatal("invalid query config accepted")
	}
	bad = DefaultConfig()
	bad.Depen.Alpha = -1
	if _, err := New(d, bad); err == nil {
		t.Fatal("invalid depen config accepted")
	}
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AnswerObjects(nil); err == nil {
		t.Fatal("empty query accepted")
	}
}

// TestSessionManyQueriesStayConsistent exercises the serving loop shape: a
// hundred distinct queries against one session, each checked against the
// one-shot path.
func TestSessionManyQueriesStayConsistent(t *testing.T) {
	d := servingWorld(t, 31)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oneShot := queryans.DefaultConfig()
	oneShot.Accuracy = s.Dependence().Truth.Accuracy
	oneShot.Dependence = s.Dependence().DependenceProb
	objs := d.Objects()
	for i := 0; i < 100; i++ {
		lo := i % len(objs)
		hi := lo + 1 + (i*7)%(len(objs)-lo)
		q := objs[lo:hi]
		got, err := s.AnswerObjects(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, err := queryans.AnswerObjects(d, q, oneShot)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d (%s): session differs from one-shot", i, fmt.Sprintf("%d:%d", lo, hi))
		}
	}
}
