// Package session implements the long-lived query-serving layer over a
// frozen dataset.
//
// The §4 applications all sit on top of the same expensive precompute: run
// copy-aware truth discovery once to obtain per-source accuracies and the
// pairwise dependence table. One-shot entry points (queryans.AnswerObjects,
// fusion.Fuse, recommend.BuildProfiles) re-derive that state on every call,
// which is the wrong shape for a server answering many queries against one
// corpus. A Session amortizes the precompute across the query stream — the
// series-of-queries argument: pay the index/derivation cost once, then
// answer each query against cached state.
//
// Construction eagerly compiles the dataset's columnar index and runs
// depen.Detect a single time. Everything the serving calls touch afterwards
// — the dense accuracy vector, the flat source×source dependence table, the
// compiled query planner, the trust profiles — is immutable, so a single
// Session serves AnswerObjects, Fuse, Link and RecommendSources calls from
// any number of concurrent goroutines, each call reading shared state and
// writing only its own result. Results are bit-identical to the one-shot
// entry points fed the same discovery result, which the equivalence tests
// enforce.
package session

import (
	"errors"
	"sync"
	"time"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/depen"
	"sourcecurrents/internal/dissim"
	"sourcecurrents/internal/fusion"
	"sourcecurrents/internal/linkage"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/queryans"
	"sourcecurrents/internal/recommend"
	"sourcecurrents/internal/snapio"
	"sourcecurrents/internal/temporal"
)

// Config parameterizes a Session. Start from DefaultConfig.
type Config struct {
	// Depen configures the one-time precompute (copy-aware truth discovery
	// and dependence detection).
	Depen depen.Config
	// Query is the template for AnswerObjects calls. Its Accuracy and
	// Dependence fields are ignored: the session substitutes its cached
	// accuracies and dependence table.
	Query queryans.Config
	// Fusion is the template for Fuse calls. With the DependenceAware
	// strategy (the default) its solver configs are ignored — the cached
	// precompute is reused; other strategies run their (cheap) solvers per
	// call.
	Fusion fusion.Config
	// Reports optionally supplies temporal quality reports consumed by the
	// trust profiles (nil for neutral freshness).
	Reports map[model.SourceID]*temporal.SourceReport
	// Parallelism is the worker count for the precompute and every serving
	// loop; when non-zero it overrides the embedded configs' knobs. Values
	// <= 0 select runtime.GOMAXPROCS(0); 1 forces sequential execution.
	// Results are bit-identical at every setting.
	Parallelism int
	// RetainEpochs bounds the epoch history spine: how many historical
	// epochs stay addressable through AsOf behind the current one as the
	// session advances through Append. 0 (the default) retains none —
	// append remains pure swap-and-discard; N keeps the last N; negative
	// retains every epoch. Retention shapes only serving-time navigation,
	// never the precompute, so it is not part of the snapshot fingerprint
	// and may differ freely between a snapshot writer and its loader.
	RetainEpochs int
}

// DefaultConfig returns the standard serving parameters.
func DefaultConfig() Config {
	return Config{
		Depen:  depen.DefaultConfig(),
		Query:  queryans.DefaultConfig(),
		Fusion: fusion.DefaultConfig(),
	}
}

// effective propagates a non-zero Parallelism into every embedded config.
func (c Config) effective() Config {
	if c.Parallelism != 0 {
		c.Depen.Parallelism = c.Parallelism
		c.Query.Parallelism = c.Parallelism
		c.Fusion.Parallelism = c.Parallelism
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Depen.Validate(); err != nil {
		return err
	}
	if err := c.Query.Validate(); err != nil {
		return err
	}
	return c.Fusion.Validate()
}

// Session is the reusable serving state: built once, read-only afterwards,
// safe for concurrent calls.
//
// Two backends exist. An eager session (New, Append, LoadSnapshot) holds a
// materialized Dataset and discovery result from the start. A mapped
// session (snapshot v2) serves AnswerObjects straight from the mapped
// compiled tables and lazily decodes the dataset and discovery result — on
// the heap, never aliasing the mapping — the first time a call needs them
// (Fuse, Link, Profiles, Append, Dataset, Dependence, Accuracy).
type Session struct {
	d   *dataset.Dataset
	cfg Config
	dep *depen.Result
	// acc is the dense per-source accuracy vector and depTab the flat
	// source×source total dependence posterior, both in compiled source
	// order. For mapped sessions both are zero-copy views into the mapping.
	acc     []float64
	depTab  []float64
	planner *queryans.Planner

	// Mapped-backend state; all nil/zero for eager sessions.
	mapped    *snapio.Mapped
	mc        *dataset.Compiled
	dsEpoch   int
	rounds    int
	converged bool
	matOnce   sync.Once
	matErr    error

	profilesOnce sync.Once
	profiles     []recommend.Profile

	// hist is the epoch history spine shared along the append chain;
	// created is when this session became the serving current (see
	// history.go for AsOf, History, and the retention contract).
	hist    *history
	created time.Time
}

// materialize decodes a mapped session's cold sections (embedded dataset
// snapshot, truth posteriors, pair verdicts) into heap state on first use.
// It is a no-op for eager sessions. Everything it builds is copied off the
// mapping, so materialized state survives Close.
func (s *Session) materialize() error {
	if s.mapped == nil {
		return nil
	}
	s.matOnce.Do(func() { s.matErr = s.materializeMapped() })
	return s.matErr
}

// New builds a Session from a frozen dataset: compiles the columnar index,
// runs truth discovery and dependence detection once, and precompiles the
// query planner against the cached state.
func New(d *dataset.Dataset, cfg Config) (*Session, error) {
	cfg = cfg.effective()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if d == nil || !d.Frozen() {
		return nil, errors.New("session: dataset must be frozen")
	}
	if d.Len() == 0 {
		return nil, errors.New("session: empty dataset")
	}
	dep, err := depen.Detect(d, cfg.Depen)
	if err != nil {
		return nil, err
	}
	return newFromDep(d, cfg, dep)
}

// newFromDep assembles the serving state from an existing discovery result
// — the shared tail of New (which runs Detect) and LoadSnapshot (which
// decodes a cached result instead). cfg must already be effective() and
// validated, and d frozen and non-empty.
func newFromDep(d *dataset.Dataset, cfg Config, dep *depen.Result) (*Session, error) {
	c := d.Compiled()
	nS := c.NumSources()
	s := &Session{
		d:       d,
		cfg:     cfg,
		dep:     dep,
		acc:     make([]float64, nS),
		depTab:  make([]float64, nS*nS),
		hist:    newHistory(cfg.RetainEpochs),
		created: time.Now(),
	}
	for i := 0; i < nS; i++ {
		s.acc[i] = dep.Truth.Accuracy[c.Source(i)]
	}
	// FillTotals copies the result's dense directional table straight into
	// the serving table; the AllPairs walk below is the fallback for results
	// whose lookup table covers a different source list.
	if !dep.FillTotals(c.SourceIDs(), s.depTab) {
		for _, pd := range dep.AllPairs {
			ai, aok := c.SourceIndex(pd.Pair.A)
			bi, bok := c.SourceIndex(pd.Pair.B)
			if !aok || !bok {
				continue
			}
			s.depTab[int(ai)*nS+int(bi)] = pd.Prob
			s.depTab[int(bi)*nS+int(ai)] = pd.Prob
		}
	}
	qcfg := cfg.Query
	qcfg.Accuracy = nil
	qcfg.Dependence = nil
	planner, err := queryans.NewPlannerDense(d, qcfg, s.acc, s.depTab)
	if err != nil {
		return nil, err
	}
	s.planner = planner
	return s, nil
}

// Append advances the session across one appended claim batch: it builds
// the successor dataset (sharing the untouched structures), runs the
// bounded delta recompute (depen.Refine) against this session's cached
// result, and assembles a new serving Session. The receiver is not modified
// and keeps serving — callers swap atomically once the new session is
// ready. The returned session is bit-identical to New over the successor
// dataset, because a from-scratch build replays the same log with the same
// refinement passes (the equivalence the append suites pin).
//
// The successor shares the receiver's epoch history spine: the receiver is
// retained behind it (up to Config.RetainEpochs epochs deep) and stays
// reachable through Session.AsOf, so as-of queries keep serving retired
// epochs after the swap.
func (s *Session) Append(batch []model.Claim) (*Session, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	d2, err := s.d.Append(batch)
	if err != nil {
		return nil, err
	}
	dep2, err := depen.Refine(d2, s.dep, s.cfg.Depen)
	if err != nil {
		return nil, err
	}
	next, err := newFromDep(d2, s.cfg, dep2)
	if err != nil {
		return nil, err
	}
	if s.hist != nil {
		next.hist = s.hist
		s.hist.retainPredecessor(s, next.DatasetEpoch())
	}
	return next, nil
}

// Dataset returns the served dataset, materializing it first for a mapped
// session. It returns nil if materialization fails (corrupt cold sections);
// error-returning entry points surface the cause.
func (s *Session) Dataset() *dataset.Dataset {
	if err := s.materialize(); err != nil {
		return nil
	}
	return s.d
}

// Dependence returns the cached discovery result, materializing it first
// for a mapped session (nil on materialization failure). Callers must treat
// it as read-only.
func (s *Session) Dependence() *depen.Result {
	if err := s.materialize(); err != nil {
		return nil
	}
	return s.dep
}

// Accuracy returns the cached per-source accuracies, materializing first
// for a mapped session (nil on failure). Callers must treat the map as
// read-only.
func (s *Session) Accuracy() map[model.SourceID]float64 {
	if err := s.materialize(); err != nil {
		return nil
	}
	return s.dep.Truth.Accuracy
}

// compiledView returns the compiled index the session serves from — the
// mapped tables for a v2-backed session, the dataset's own compilation
// otherwise — without forcing materialization.
func (s *Session) compiledView() *dataset.Compiled {
	if s.mapped != nil {
		return s.mc
	}
	return s.d.Compiled()
}

// DatasetEpoch returns the served dataset's append epoch without forcing a
// mapped session to materialize — servers key caches on it.
func (s *Session) DatasetEpoch() int {
	if s.mapped != nil {
		return s.dsEpoch
	}
	return s.d.Epoch()
}

// MappedBytes returns the size of the mapped snapshot backing this session,
// or 0 for an eager session — the /metrics mapped-bytes gauge.
func (s *Session) MappedBytes() int64 {
	if s.mapped == nil {
		return 0
	}
	return s.mapped.Size()
}

// MappedSnapshot returns the raw v2 snapshot container backing this
// session, or nil for an eager (heap-built) session. The bytes alias the
// mapping — valid only while the caller's registry pin holds — so snapshot
// streaming copies them before the pin releases.
func (s *Session) MappedSnapshot() []byte {
	if s.mapped == nil {
		return nil
	}
	return s.mapped.Bytes()
}

// Close releases a mapped session's snapshot mapping; eager sessions are
// untouched (nil error). After Close no serving call may run: the planner
// and any strings previously returned by answers alias the mapping. Callers
// (the server registry) guarantee quiescence via refcounting before
// closing.
func (s *Session) Close() error {
	if s.mapped == nil {
		return nil
	}
	return s.mapped.Close()
}

// QueryConfig returns the session's query-planner template — the base
// configuration per-request overrides start from (see AnswerObjectsWith).
func (s *Session) QueryConfig() queryans.Config { return s.cfg.Query }

// AnswerObjects answers an online query over the cached accuracies,
// dependence table and compiled claim lists — no per-call re-derivation.
// The trace is bit-identical to a one-shot queryans.AnswerObjects call
// configured with this session's discovery result.
func (s *Session) AnswerObjects(query []model.ObjectID) (*queryans.Result, error) {
	return s.planner.Answer(query)
}

// AnswerObjectsWith answers a query under a per-call planner configuration
// (policy, probe cap, early stopping) while still reading the session's
// cached accuracies and dependence table — qcfg's Accuracy and Dependence
// fields are ignored. The per-call planner is derived from the session's
// precompiled one, sharing its dense state and its scratch pool, so the
// override path stays on the zero-allocation serve shape.
func (s *Session) AnswerObjectsWith(query []model.ObjectID, qcfg queryans.Config) (*queryans.Result, error) {
	if qcfg.Parallelism == 0 && s.cfg.Parallelism != 0 {
		qcfg.Parallelism = s.cfg.Parallelism
	}
	qcfg.Accuracy = nil
	qcfg.Dependence = nil
	p, err := s.planner.Derive(qcfg)
	if err != nil {
		return nil, err
	}
	return p.Answer(query)
}

// Fuse resolves all conflicts under the configured fusion strategy. The
// default DependenceAware strategy reuses the cached precompute. The
// Chosen map and Relation are rebuilt per call and owned by the caller,
// but the embedded Truth/Depen fields alias the session's shared cache and
// must be treated as read-only.
func (s *Session) Fuse() (*fusion.Result, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	if s.cfg.Fusion.Strategy == fusion.DependenceAware {
		return fusion.FuseWith(s.d, s.cfg.Fusion, s.dep)
	}
	return fusion.Fuse(s.d, s.cfg.Fusion)
}

// Link clusters alternative value representations per object and rewrites
// the dataset with canonical values. Linkage is configured per call; the
// session's cached state is not consulted (linkage precedes discovery in
// the §4 pipeline), but serving it here keeps the one-stop contract.
func (s *Session) Link(cfg linkage.Config) (*linkage.Result, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return linkage.Link(s.d, cfg)
}

// Profiles returns the cached trust profiles, building them on first use
// from the session's discovery result (and configured temporal reports).
// Callers must treat the slice as read-only.
func (s *Session) Profiles() []recommend.Profile {
	if err := s.materialize(); err != nil {
		return nil
	}
	s.profilesOnce.Do(func() {
		s.profiles = recommend.BuildProfilesOpt(s.d, s.dep, s.cfg.Reports,
			recommend.Options{Parallelism: s.cfg.Parallelism})
	})
	return s.profiles
}

// RecommendSources returns the k most trusted sources under w, ranking the
// cached profiles.
func (s *Session) RecommendSources(w recommend.Weights, k int) ([]recommend.Profile, error) {
	return recommend.Top(s.Profiles(), w, k)
}

// RecommendDiverse returns k trusted sources plus dissenting voices that
// dissimilarity-depend on them.
func (s *Session) RecommendDiverse(w recommend.Weights, diss *dissim.Result,
	k, extraDissent int) ([]recommend.DiversePick, error) {
	return recommend.TopDiverse(s.Profiles(), w, diss, k, extraDissent)
}
