// Binary session snapshots: the serving state a server cold-starts from.
//
// Session construction pays one depen.Detect — the expensive precompute —
// before the first query can be answered (454 ms at 500 sources on the
// baseline hardware). A session snapshot captures everything that run
// derived, in dense compiled-index form: the embedded dataset snapshot
// (interned string tables + CSR claim records), the per-group truth
// posterior vector, the dense per-source accuracy vector, and the
// source×source dependence table (every analyzed pair's full verdict).
// LoadSnapshot rebuilds a Session by decoding those tables instead of
// re-running discovery, which is what lets a query server restart in
// milliseconds and serve bit-identical answers.
//
// The Config still arrives at load time (it carries callbacks and serving
// knobs that cannot be serialized); a fingerprint of every config field
// that shaped the precompute is stored and checked, so a snapshot cannot be
// silently served under a config that would have produced different state.
package session

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/depen"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/snapio"
	"sourcecurrents/internal/truth"
)

// SnapshotMagic identifies the session snapshot format.
const SnapshotMagic = "SCDSSESS"

// SnapshotVersion is the current session snapshot version. Version 2 added
// Depen.RefineRounds to the config fingerprint (the knob that shapes
// replayed, log-carrying datasets' state); version-1 snapshots — which
// predate append logs and therefore embed flat datasets RefineRounds never
// influenced — are still accepted and checked against the version-1 field
// list.
const SnapshotVersion = 2

// inlineValue marks a truth-posterior value that is not in the dataset's
// interned value table (a Known-pinned label never asserted by any source);
// the string follows inline.
const inlineValue = ^uint32(0)

// WriteSnapshot encodes the session's dataset and cached precompute to w.
func (s *Session) WriteSnapshot(w io.Writer) error {
	if err := s.materialize(); err != nil {
		return err
	}
	var ds bytes.Buffer
	if err := s.d.WriteSnapshot(&ds); err != nil {
		return err
	}
	c := s.d.Compiled()

	var enc snapio.Writer
	enc.Blob(ds.Bytes())
	encodeFingerprint(&enc, s.cfg.Depen)

	// Truth result: bookkeeping, dense accuracy vector (compiled source
	// order), and per-object posterior entries (objects in compiled order,
	// values in sorted order — the canonical iteration everywhere else).
	tr := s.dep.Truth
	enc.U32(uint32(tr.Rounds))
	enc.Bool(tr.Converged)
	for i := 0; i < c.NumSources(); i++ {
		enc.F64(tr.Accuracy[c.Source(i)])
	}
	encodeTruthProbs(&enc, c, tr)
	if err := encodePairs(&enc, c, s.dep.AllPairs); err != nil {
		return err
	}
	return enc.Frame(w, SnapshotMagic, SnapshotVersion)
}

// encodeTruthProbs appends the per-object posterior entries: objects in
// compiled order, values in sorted order — the canonical iteration
// everywhere else. Shared verbatim by the v1 payload and the v2 TRUTH
// section, so both decode to identical state.
func encodeTruthProbs(enc *snapio.Writer, c *dataset.Compiled, tr *truth.Result) {
	for oi := 0; oi < c.NumObjects(); oi++ {
		pv := tr.Probs[c.Object(oi)]
		vals := make([]string, 0, len(pv))
		for v := range pv {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		enc.U32(uint32(len(vals)))
		for _, v := range vals {
			if vi, ok := c.ValueIndex(v); ok {
				enc.U32(uint32(vi))
			} else {
				enc.U32(inlineValue)
				enc.Str(v)
			}
			enc.F64(pv[v])
		}
	}
}

// encodePairs appends every analyzed pair's final verdict, in AllPairs
// (posterior-sorted) order; sources as compiled indices. Shared by the v1
// payload and the v2 PAIRS section.
func encodePairs(enc *snapio.Writer, c *dataset.Compiled, allPairs []depen.Dependence) error {
	enc.U32(uint32(len(allPairs)))
	for _, pd := range allPairs {
		ai, aok := c.SourceIndex(pd.Pair.A)
		bi, bok := c.SourceIndex(pd.Pair.B)
		if !aok || !bok {
			return fmt.Errorf("session: snapshot: pair %v references an unknown source", pd.Pair)
		}
		enc.U32(uint32(ai))
		enc.U32(uint32(bi))
		enc.F64(pd.Prob)
		enc.F64(pd.ProbAB)
		enc.F64(pd.ProbBA)
		enc.I64(int64(pd.Shared))
		enc.I64(int64(pd.Same))
		enc.F64(pd.KT)
		enc.F64(pd.KF)
		enc.F64(pd.KD)
	}
	return nil
}

// fingerprintField is one config field captured at snapshot time.
type fingerprintField struct {
	name string
	val  float64
}

// fingerprint lists every config field the cached precompute depends on,
// for the given snapshot version (later versions append fields; earlier
// snapshots are checked against the list they were written with).
// Callback presence is captured as a boolean field: a snapshot taken with a
// ValueSim set cannot be loaded under a config without one (and vice
// versa), because the stored posteriors would not match what New would
// compute. The Known map's full content is captured as a hash of its
// sorted entries, so a snapshot pinned to one labeling cannot be served
// under another.
func fingerprint(cfg depen.Config, version int) []fingerprintField {
	knownHi, knownLo := knownHash(cfg.Truth.Known)
	fields := []fingerprintField{
		{"Depen.CopyRate", cfg.CopyRate},
		{"Depen.Alpha", cfg.Alpha},
		{"Depen.MinShared", float64(cfg.MinShared)},
		{"Depen.DepThreshold", cfg.DepThreshold},
		{"Depen.MaxRounds", float64(cfg.MaxRounds)},
		{"Depen.Tol", cfg.Tol},
		{"Truth.N", float64(cfg.Truth.N)},
		{"Truth.InitialAccuracy", cfg.Truth.InitialAccuracy},
		{"Truth.MaxRounds", float64(cfg.Truth.MaxRounds)},
		{"Truth.Tol", cfg.Truth.Tol},
		{"Truth.PriorA", cfg.Truth.PriorA},
		{"Truth.PriorB", cfg.Truth.PriorB},
		{"Truth.ValueSimWeight", cfg.Truth.ValueSimWeight},
		{"Truth.KnownConfidence", cfg.Truth.KnownConfidence},
		{"Truth.ValueSim set", boolField(cfg.Truth.ValueSim != nil)},
		{"Truth.Known entries", float64(len(cfg.Truth.Known))},
		{"Truth.Known hash hi", knownHi},
		{"Truth.Known hash lo", knownLo},
	}
	if version >= 2 {
		fields = append(fields, fingerprintField{
			"Depen.RefineRounds", float64(cfg.EffectiveRefineRounds()),
		})
	}
	return fields
}

func boolField(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// knownHash folds the Known map's sorted (object, value) entries into an
// FNV-64 hash, returned as two exactly-representable 32-bit halves (the
// fingerprint format carries float64 values).
func knownHash(known map[model.ObjectID]string) (hi, lo float64) {
	if len(known) == 0 {
		return 0, 0
	}
	objs := make([]model.ObjectID, 0, len(known))
	for o := range known {
		objs = append(objs, o)
	}
	model.SortObjects(objs)
	h := fnv.New64a()
	for _, o := range objs {
		h.Write([]byte(o.Entity))
		h.Write([]byte{0})
		h.Write([]byte(o.Attribute))
		h.Write([]byte{0})
		h.Write([]byte(known[o]))
		h.Write([]byte{0})
	}
	sum := h.Sum64()
	return float64(uint32(sum >> 32)), float64(uint32(sum))
}

func encodeFingerprint(enc *snapio.Writer, cfg depen.Config) {
	fields := fingerprint(cfg, SnapshotVersion)
	enc.U32(uint32(len(fields)))
	for _, f := range fields {
		enc.Str(f.name)
		enc.F64(f.val)
	}
}

// checkFingerprint compares the stored fields against the load-time config.
func checkFingerprint(dec *snapio.Reader, cfg depen.Config, version int) error {
	want := fingerprint(cfg, version)
	n := dec.Count(2)
	if dec.Err() != nil {
		return nil // latched; surfaced by the caller's Finish
	}
	if n != len(want) {
		return fmt.Errorf("session: snapshot fingerprint has %d fields, config has %d", n, len(want))
	}
	for _, f := range want {
		name := dec.Str()
		val := dec.F64()
		if dec.Err() != nil {
			return nil
		}
		if name != f.name {
			return fmt.Errorf("session: snapshot fingerprint field %q, config expects %q", name, f.name)
		}
		if val != f.val {
			return fmt.Errorf("session: snapshot was built with %s = %v, load config has %v — rebuild the snapshot or match the config", name, val, f.val)
		}
	}
	return nil
}

// LoadSnapshot decodes a session snapshot and assembles a serving Session
// under cfg without re-running discovery. cfg must match the configuration
// the snapshot was built with on every field that shaped the precompute
// (checked against the stored fingerprint); serving-only knobs — Query,
// Fusion, Reports, Parallelism — are free to differ. The loaded session's
// state and every serving call are bit-identical to the session the
// snapshot was taken of.
func LoadSnapshot(r io.Reader, cfg Config) (*Session, error) {
	cfg = cfg.effective()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dec, version, err := snapio.OpenFrame(r, SnapshotMagic, SnapshotVersion)
	if err != nil {
		return nil, fmt.Errorf("session: snapshot: %w", err)
	}

	dsBlob := dec.Blob()
	if err := dec.Err(); err != nil {
		return nil, fmt.Errorf("session: snapshot: %w", err)
	}
	d, err := dataset.ReadSnapshot(bytes.NewReader(dsBlob))
	if err != nil {
		return nil, fmt.Errorf("session: snapshot: %w", err)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("session: snapshot: %w: empty dataset", snapio.ErrCorrupt)
	}
	c := d.Compiled()

	if err := checkFingerprint(dec, cfg.Depen, int(version)); err != nil {
		return nil, err
	}

	rounds := int(dec.U32())
	converged := dec.Bool()
	acc := make(map[model.SourceID]float64, c.NumSources())
	for i := 0; i < c.NumSources(); i++ {
		acc[c.Source(i)] = dec.F64()
	}
	probs, err := decodeTruthProbs(dec, c)
	if err != nil {
		return nil, err
	}
	pairs, pairA, pairB := decodePairs(dec, c)
	if err := dec.Finish(); err != nil {
		return nil, fmt.Errorf("session: snapshot: %w", err)
	}

	dep := assembleDep(c, acc, probs, pairs, pairA, pairB,
		cfg.Depen.DepThreshold, rounds, converged)
	return newFromDep(d, cfg, dep)
}

// decodeTruthProbs is the inverse of encodeTruthProbs: it rebuilds the
// posterior maps against c, copying every value string onto the heap (the
// decoder never returns views into its input).
func decodeTruthProbs(dec *snapio.Reader, c *dataset.Compiled) (map[model.ObjectID]map[string]float64, error) {
	probs := make(map[model.ObjectID]map[string]float64, c.NumObjects())
	for oi := 0; oi < c.NumObjects(); oi++ {
		n := dec.Count(12)
		pv := make(map[string]float64, n)
		for k := 0; k < n; k++ {
			ref := dec.U32()
			var v string
			if ref == inlineValue {
				v = dec.Str()
			} else if int(ref) < c.NumValues() {
				v = c.Value(int(ref))
			} else if dec.Err() == nil {
				return nil, fmt.Errorf("session: snapshot: %w: value index %d out of range", snapio.ErrCorrupt, ref)
			}
			pv[v] = dec.F64()
		}
		if dec.Err() != nil {
			break
		}
		probs[c.Object(oi)] = pv
	}
	return probs, nil
}

// decodePairs is the inverse of encodePairs. Decode errors latch in dec;
// the caller's Finish surfaces them.
func decodePairs(dec *snapio.Reader, c *dataset.Compiled) ([]depen.Dependence, []int32, []int32) {
	nPairs := dec.Count(8 + 8*8)
	pairs := make([]depen.Dependence, 0, nPairs)
	pairA := make([]int32, 0, nPairs)
	pairB := make([]int32, 0, nPairs)
	for k := 0; k < nPairs; k++ {
		// Index latches on corruption and returns 0, so the slice reads are
		// safe; the latched error is checked before the pair is kept.
		ai := dec.Index(c.NumSources())
		bi := dec.Index(c.NumSources())
		pd := depen.Dependence{
			Pair:   model.NewSourcePair(c.Source(ai), c.Source(bi)),
			Prob:   dec.F64(),
			ProbAB: dec.F64(),
			ProbBA: dec.F64(),
			Shared: int(dec.I64()),
			Same:   int(dec.I64()),
			KT:     dec.F64(),
			KF:     dec.F64(),
			KD:     dec.F64(),
		}
		if dec.Err() != nil {
			break
		}
		pairs = append(pairs, pd)
		pairA = append(pairA, int32(ai))
		pairB = append(pairB, int32(bi))
	}
	return pairs, pairA, pairB
}

// assembleDep reconstitutes the discovery result from its decoded parts —
// the shared tail of LoadSnapshot (v1) and lazy materialization (v2).
func assembleDep(c *dataset.Compiled, acc map[model.SourceID]float64,
	probs map[model.ObjectID]map[string]float64,
	pairs []depen.Dependence, pairA, pairB []int32,
	threshold float64, rounds int, converged bool) *depen.Result {
	tr := &truth.Result{
		Probs:     probs,
		Accuracy:  acc,
		Rounds:    rounds,
		Converged: converged,
	}
	tr.PickChosen()
	return depen.ResultFromParts(tr, c.SourceIDs(), pairs, pairA, pairB,
		threshold, rounds, converged)
}
