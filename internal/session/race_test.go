package session

import (
	"reflect"
	"sync"
	"testing"

	"sourcecurrents/internal/recommend"
)

// TestConcurrentSessionCalls drives one Session from many goroutines mixing
// every serving call, so `go test -race` watches the read-only-after-New
// sharing discipline, and checks every goroutine observed identical
// results. Skipped in -short mode.
func TestConcurrentSessionCalls(t *testing.T) {
	if testing.Short() {
		t.Skip("race workload skipped in short mode")
	}
	d := servingWorld(t, 37)
	cfg := DefaultConfig()
	cfg.Parallelism = 4 // inner loops spawn workers while callers race
	s, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	objs := d.Objects()
	wantAns, err := s.AnswerObjects(objs)
	if err != nil {
		t.Fatal(err)
	}
	wantFuse, err := s.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	w := recommend.DefaultWeights()
	wantTop, err := recommend.Top(recommend.BuildProfiles(d, s.Dependence(), nil), w, 3)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			check := func(got, want any, what string) bool {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d: %s differs across concurrent calls", g, what)
					return false
				}
				return true
			}
			for i := 0; i < 5; i++ {
				switch (g + i) % 3 {
				case 0:
					q := objs[(g*3)%len(objs):]
					if len(q) == 0 {
						q = objs
					}
					got, err := s.AnswerObjects(objs)
					if err != nil {
						errs[g] = err
						return
					}
					if !check(got, wantAns, "answer trace") {
						return
					}
					if _, err := s.AnswerObjects(q); err != nil {
						errs[g] = err
						return
					}
				case 1:
					got, err := s.Fuse()
					if err != nil {
						errs[g] = err
						return
					}
					if !check(got, wantFuse, "fusion result") {
						return
					}
				case 2:
					got, err := s.RecommendSources(w, 3)
					if err != nil {
						errs[g] = err
						return
					}
					if !check(got, wantTop, "recommendation") {
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
