package session

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"sourcecurrents/internal/synth"
)

// benchWorld builds the acceptance-bar serving world: 500 independent
// sources plus 50 copiers over 30 objects — the shape TestSnapshotLoadBeatsBuild
// and the cold-start acceptance numbers are quoted at.
func benchWorld(b *testing.B) *Session {
	b.Helper()
	accs := make([]float64, 500)
	for i := range accs {
		accs[i] = 0.55 + 0.4*float64(i%9)/8
	}
	copiers := make([]synth.CopierSpec, 50)
	for i := range copiers {
		copiers[i] = synth.CopierSpec{MasterIndex: i, CopyRate: 0.8, OwnAcc: 0.6}
	}
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed:           37,
		NObjects:       30,
		IndependentAcc: accs,
		Copiers:        copiers,
		FalsePool:      5,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(sw.Dataset, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSessionAsOf measures epoch time travel on the acceptance-shape
// world advanced through 4 appends with full retention. "retained" is the
// spine hit every request pays when the epoch's session is in memory — it
// must stay O(1) lookup, no reconstruction. "materialize" is the lazy path
// on a snapshot-reloaded chain (no retained predecessors): a full forward
// replay, paid once per epoch then cached — the bench re-loads the
// snapshot each iteration to defeat that cache.
func BenchmarkSessionAsOf(b *testing.B) {
	base := benchWorld(b)
	buildChain := func() *Session {
		cfg := DefaultConfig()
		cfg.RetainEpochs = -1
		cur, err := New(base.Dataset(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 4; i++ {
			if cur, err = cur.Append(randomBatch(rng, cur.Dataset(), i)); err != nil {
				b.Fatal(err)
			}
		}
		return cur
	}

	b.Run("retained", func(b *testing.B) {
		cur := buildChain()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cur.AsOf(i % 5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		raw := snapshotBytes(b, buildChain())
		cfg := DefaultConfig()
		cfg.RetainEpochs = -1
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			loaded, err := LoadSnapshot(bytes.NewReader(raw), cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := loaded.AsOf(2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotLoadV1 measures the v1 decoding loader at the
// 500-source acceptance shape: every table re-allocated and parsed on each
// load.
func BenchmarkSnapshotLoadV1(b *testing.B) {
	s := benchWorld(b)
	raw := snapshotBytes(b, s)
	cfg := DefaultConfig()
	b.Run("sources=500", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LoadSnapshot(bytes.NewReader(raw), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotLoadV2 measures the mmap-backed v2 loader on the same
// world: header validation plus section casts, no decode loop. The
// acceptance bar is ≥5x faster than the v1 decode with ≤100 allocs/op.
func BenchmarkSnapshotLoadV2(b *testing.B) {
	s := benchWorld(b)
	var buf bytes.Buffer
	if err := s.WriteSnapshotV2(&buf); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "world.scs2")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.Run("sources=500", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v2, err := LoadSnapshotFile(path, cfg)
			if err != nil {
				b.Fatal(err)
			}
			v2.Close()
		}
	})
}
