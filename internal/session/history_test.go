package session

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// appendChain builds a live session over servingWorld(seed) and advances it
// through nBatches randomized appends, returning every epoch's session
// (index == epoch).
func appendChain(t testing.TB, cfg Config, seed int64, nBatches int) []*Session {
	t.Helper()
	s, err := New(servingWorld(t, seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	chain := []*Session{s}
	rng := rand.New(rand.NewSource(seed * 3))
	for b := 0; b < nBatches; b++ {
		s, err = s.Append(randomBatch(rng, s.Dataset(), b))
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, s)
	}
	return chain
}

// TestAsOfRetainedEquivalence pins the spine's retained path: with full
// retention, AsOf(e) on the current session returns serving state
// byte-identical to a full New rebuild over the claims as of epoch e — at
// every parallelism setting.
func TestAsOfRetainedEquivalence(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		par := par
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Parallelism = par
			cfg.RetainEpochs = -1
			chain := appendChain(t, cfg, 42+int64(par), 5)
			cur := chain[len(chain)-1]
			for e := 0; e < len(chain); e++ {
				hs, err := cur.AsOf(e)
				if err != nil {
					t.Fatalf("AsOf(%d): %v", e, err)
				}
				if hs.DatasetEpoch() != e {
					t.Fatalf("AsOf(%d) serves epoch %d", e, hs.DatasetEpoch())
				}
				// The retained path must hand back the exact predecessor —
				// no reconstruction.
				if hs != chain[e] {
					t.Fatalf("AsOf(%d) materialized instead of returning the retained session", e)
				}
				de, err := cur.Dataset().At(e)
				if err != nil {
					t.Fatal(err)
				}
				rebuilt, err := New(de, cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertSessionsEqual(t, hs, rebuilt)
			}
			if n := cur.HistMaterializations(); n != 0 {
				t.Fatalf("retained-path AsOf materialized %d epochs", n)
			}
		})
	}
}

// TestAsOfMaterializedEquivalence pins the lazy path: a session reloaded
// from a snapshot carries the full claim log but no retained predecessors,
// so AsOf must reconstruct each epoch — and the reconstruction must be
// byte-identical to a full rebuild (and therefore to the session that
// actually served that epoch, by the append-equivalence invariant).
func TestAsOfMaterializedEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetainEpochs = -1
	chain := appendChain(t, cfg, 7, 4)
	cur := chain[len(chain)-1]

	var buf bytes.Buffer
	if err := cur.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Out of order on purpose: epoch 2 first (Detect replay from the flat
	// origin), then 4 (Refine forward from the cached epoch-2 ancestor),
	// then 1 (ancestor-free again, below everything cached... except epoch
	// ordering finds none strictly below 1 other than none retained).
	for _, e := range []int{2, 4, 1, 0, 3} {
		hs, err := loaded.AsOf(e)
		if err != nil {
			t.Fatalf("AsOf(%d): %v", e, err)
		}
		assertSessionsEqual(t, hs, chain[e])
	}
	if n := loaded.HistMaterializations(); n == 0 {
		t.Fatal("no materializations counted on the lazy path")
	}
	// Repeats serve the cached reconstruction.
	before := loaded.HistMaterializations()
	h1, err := loaded.AsOf(2)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := loaded.AsOf(2)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("repeated AsOf(2) returned distinct sessions")
	}
	if loaded.HistMaterializations() != before {
		t.Fatal("repeated AsOf re-materialized a cached epoch")
	}
}

// TestAsOfRetentionWindow pins the bounded-window contract: epochs inside
// [cur-retain, cur] resolve, everything below the floor or above the
// current epoch is an error, and the floor/gauge accessors agree.
func TestAsOfRetentionWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetainEpochs = 2
	chain := appendChain(t, cfg, 11, 5)
	cur := chain[len(chain)-1]
	if got, want := cur.HistoryFloor(), 3; got != want {
		t.Fatalf("HistoryFloor = %d, want %d", got, want)
	}
	if got, want := cur.RetainedEpochs(), 2; got != want {
		t.Fatalf("RetainedEpochs = %d, want %d", got, want)
	}
	for e := 3; e <= 5; e++ {
		if _, err := cur.AsOf(e); err != nil {
			t.Fatalf("AsOf(%d) inside the window: %v", e, err)
		}
	}
	for _, e := range []int{0, 1, 2} {
		if _, err := cur.AsOf(e); err == nil {
			t.Fatalf("AsOf(%d) below the floor accepted", e)
		}
	}
	if _, err := cur.AsOf(6); err == nil {
		t.Fatal("AsOf above the current epoch accepted")
	}
	if _, err := cur.AsOf(-1); err == nil {
		t.Fatal("AsOf(-1) accepted")
	}
}

// TestAsOfRetainZero pins the default: no retention means only the current
// epoch is addressable — the pre-spine behavior.
func TestAsOfRetainZero(t *testing.T) {
	chain := appendChain(t, DefaultConfig(), 13, 2)
	cur := chain[len(chain)-1]
	if hs, err := cur.AsOf(2); err != nil || hs != cur {
		t.Fatalf("AsOf(current) = %v, %v", hs, err)
	}
	if _, err := cur.AsOf(1); err == nil {
		t.Fatal("AsOf(1) accepted with RetainEpochs 0")
	}
	if got := cur.RetainedEpochs(); got != 0 {
		t.Fatalf("RetainedEpochs = %d, want 0", got)
	}
}

// TestAsOfTime pins wall-clock resolution: an instant maps to the greatest
// epoch serving at that time, instants before the chain's origin are an
// error, and the current session answers for anything at or after its
// birth.
func TestAsOfTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetainEpochs = -1
	s, err := New(servingWorld(t, 19), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sessions := []*Session{s}
	marks := []time.Time{time.Now()}
	rng := rand.New(rand.NewSource(57))
	for b := 0; b < 3; b++ {
		time.Sleep(2 * time.Millisecond)
		s, err = s.Append(randomBatch(rng, s.Dataset(), b))
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		marks = append(marks, time.Now())
	}
	cur := sessions[len(sessions)-1]
	for e, mark := range marks {
		hs, err := cur.AsOfTime(mark)
		if err != nil {
			t.Fatalf("AsOfTime(mark %d): %v", e, err)
		}
		if got := hs.DatasetEpoch(); got != e {
			t.Fatalf("AsOfTime(mark %d) resolved epoch %d", e, got)
		}
	}
	if hs, err := cur.AsOfTime(time.Now().Add(time.Hour)); err != nil || hs != cur {
		t.Fatalf("future instant should resolve to current: %v, %v", hs, err)
	}
	if _, err := cur.AsOfTime(marks[0].Add(-time.Hour)); err == nil {
		t.Fatal("instant before the chain origin accepted")
	}
}

// TestHistoryListing pins the History() shape on both a live chain (every
// epoch resident with a birth time) and a snapshot reload (log-only epochs:
// addressable, not resident, no birth time).
func TestHistoryListing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetainEpochs = -1
	chain := appendChain(t, cfg, 29, 3)
	cur := chain[len(chain)-1]
	infos := cur.History()
	if len(infos) != 4 {
		t.Fatalf("History() returned %d epochs, want 4", len(infos))
	}
	for i, info := range infos {
		if info.Epoch != i {
			t.Fatalf("History()[%d].Epoch = %d", i, info.Epoch)
		}
		if !info.Resident {
			t.Fatalf("epoch %d not resident on a fully retained live chain", i)
		}
		if info.Created.IsZero() {
			t.Fatalf("epoch %d has no birth time on a live chain", i)
		}
		if info.Current != (i == 3) {
			t.Fatalf("epoch %d Current = %v", i, info.Current)
		}
	}

	var buf bytes.Buffer
	if err := cur.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	infos = loaded.History()
	if len(infos) != 4 {
		t.Fatalf("loaded History() returned %d epochs, want 4", len(infos))
	}
	for i, info := range infos {
		wantResident := i == 3
		if info.Resident != wantResident {
			t.Fatalf("loaded epoch %d Resident = %v, want %v", i, info.Resident, wantResident)
		}
		if (i < 3) != info.Created.IsZero() {
			t.Fatalf("loaded epoch %d Created zero-ness wrong (restored epochs predate the process)", i)
		}
	}
}

// TestAsOfConcurrent exercises the spine under -race: concurrent as-of
// readers (hitting retained, materializing, and racing the same epoch)
// while the chain keeps appending. All callers materializing one epoch must
// converge on a single cached reconstruction.
func TestAsOfConcurrent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RetainEpochs = 3
	chain := appendChain(t, cfg, 31, 2)
	cur := chain[len(chain)-1]

	var snap bytes.Buffer
	if err := cur.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&snap, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Race many goroutines materializing the same epoch on the loaded
	// (entry-free) spine.
	const racers = 8
	got := make([]*Session, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hs, err := loaded.AsOf(1)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = hs
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent materializers did not converge on one cached session")
		}
	}

	// Readers walk the retained window while the writer appends through it.
	stop := make(chan struct{})
	var cursess atomic.Pointer[Session]
	cursess.Store(cur)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := cursess.Load()
				infos := s.History()
				info := infos[rng.Intn(len(infos))]
				hs, err := s.AsOf(info.Epoch)
				if err != nil {
					continue // window slid under us; that's the contract
				}
				if _, err := hs.AnswerObjects(hs.Dataset().Objects()[:4]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	rng := rand.New(rand.NewSource(77))
	s := cur
	for b := 2; b < 8; b++ {
		next, err := s.Append(randomBatch(rng, s.Dataset(), b))
		if err != nil {
			t.Error(err)
			break
		}
		s = next
		cursess.Store(s)
	}
	close(stop)
	wg.Wait()
}
