package session

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/depen"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/recommend"
	"sourcecurrents/internal/snapio"
	"sourcecurrents/internal/synth"
	"sourcecurrents/internal/truth"
)

func snapshotBytes(t testing.TB, s *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripGolden pins the central contract: a loaded snapshot
// is deep-equal to the session it was taken of — discovery result
// (posteriors, accuracies, every pair verdict, directional tables), dataset
// view, and the dense serving tables — and every serving call returns
// bit-identical results.
func TestSnapshotRoundTripGolden(t *testing.T) {
	d := servingWorld(t, 17)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotBytes(t, s)
	got, err := LoadSnapshot(bytes.NewReader(raw), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Dependence(), s.Dependence()) {
		t.Fatal("depen.Result differs after snapshot round trip")
	}
	if !reflect.DeepEqual(got.Dataset().Claims(), s.Dataset().Claims()) {
		t.Fatal("dataset claims differ after snapshot round trip")
	}
	if !reflect.DeepEqual(got.acc, s.acc) {
		t.Fatal("dense accuracy vector differs after snapshot round trip")
	}
	if !reflect.DeepEqual(got.depTab, s.depTab) {
		t.Fatal("dense dependence table differs after snapshot round trip")
	}

	for _, q := range queries(d) {
		want, err := s.AnswerObjects(q)
		if err != nil {
			t.Fatal(err)
		}
		have, err := got.AnswerObjects(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(have, want) {
			t.Fatal("AnswerObjects differs after snapshot round trip")
		}
	}
	wantFuse, err := s.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	haveFuse, err := got.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(haveFuse.Chosen, wantFuse.Chosen) ||
		!reflect.DeepEqual(haveFuse.Relation, wantFuse.Relation) {
		t.Fatal("Fuse differs after snapshot round trip")
	}
	wantTop, err := s.RecommendSources(recommend.DefaultWeights(), 5)
	if err != nil {
		t.Fatal(err)
	}
	haveTop, err := got.RecommendSources(recommend.DefaultWeights(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(haveTop, wantTop) {
		t.Fatal("RecommendSources differs after snapshot round trip")
	}

	// A second encode of the loaded session is byte-identical (canonical).
	if !bytes.Equal(snapshotBytes(t, got), raw) {
		t.Fatal("re-encoded snapshot is not byte-identical")
	}
}

// TestSnapshotRoundTripWithKnownAndSim exercises the inline-value path (a
// Known pin for a value no source asserts) and the callback fingerprint.
func TestSnapshotRoundTripWithKnownAndSim(t *testing.T) {
	d := servingWorld(t, 23)
	cfg := DefaultConfig()
	obj := d.Objects()[0]
	cfg.Depen.Truth.Known = map[model.ObjectID]string{obj: "value-nobody-asserts"}
	s, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotBytes(t, s)
	got, err := LoadSnapshot(bytes.NewReader(raw), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Dependence(), s.Dependence()) {
		t.Fatal("depen.Result differs with Known pin")
	}
	if got.Dependence().Truth.Chosen[obj] != "value-nobody-asserts" {
		t.Fatal("inline Known value lost in round trip")
	}

	// Loading under a config without the pin must be refused.
	if _, err := LoadSnapshot(bytes.NewReader(raw), DefaultConfig()); err == nil {
		t.Fatal("expected fingerprint mismatch for missing Known")
	}
	// ... and so must a Known map of the same size with different content
	// (the fingerprint hashes the entries, not just the count).
	cfg2 := DefaultConfig()
	cfg2.Depen.Truth.Known = map[model.ObjectID]string{obj: "a-different-label"}
	if _, err := LoadSnapshot(bytes.NewReader(raw), cfg2); err == nil {
		t.Fatal("expected fingerprint mismatch for changed Known value")
	}
	cfg3 := DefaultConfig()
	cfg3.Depen.Truth.Known = map[model.ObjectID]string{d.Objects()[1]: "value-nobody-asserts"}
	if _, err := LoadSnapshot(bytes.NewReader(raw), cfg3); err == nil {
		t.Fatal("expected fingerprint mismatch for changed Known object")
	}
}

func TestSnapshotFingerprintMismatch(t *testing.T) {
	d := servingWorld(t, 29)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotBytes(t, s)

	cfg := DefaultConfig()
	cfg.Depen.CopyRate = 0.5
	if _, err := LoadSnapshot(bytes.NewReader(raw), cfg); err == nil {
		t.Fatal("expected fingerprint mismatch for CopyRate change")
	}
	cfg = DefaultConfig()
	cfg.Depen.Truth.ValueSim = func(a, b string) float64 { return 0 }
	cfg.Depen.Truth.ValueSimWeight = 0.1
	if _, err := LoadSnapshot(bytes.NewReader(raw), cfg); err == nil {
		t.Fatal("expected fingerprint mismatch for ValueSim change")
	}

	// Serving-only knobs may differ freely.
	cfg = DefaultConfig()
	cfg.Parallelism = 4
	cfg.Query.MaxSources = 3
	if _, err := LoadSnapshot(bytes.NewReader(raw), cfg); err != nil {
		t.Fatalf("serving-knob change rejected: %v", err)
	}
}

func TestSnapshotCorruption(t *testing.T) {
	d := servingWorld(t, 31)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotBytes(t, s)

	t.Run("wrong magic", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		copy(mut, "NOTASNAP")
		if _, err := LoadSnapshot(bytes.NewReader(mut), DefaultConfig()); !errors.Is(err, snapio.ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		mut[snapio.MagicLen] = SnapshotVersion + 1
		if _, err := LoadSnapshot(bytes.NewReader(mut), DefaultConfig()); !errors.Is(err, snapio.ErrBadVersion) {
			t.Fatalf("err = %v, want ErrBadVersion", err)
		}
	})
	t.Run("dataset snapshot magic inside session frame", func(t *testing.T) {
		// A dataset snapshot is not a session snapshot.
		var buf bytes.Buffer
		if err := d.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshot(bytes.NewReader(buf.Bytes()), DefaultConfig()); !errors.Is(err, snapio.ErrBadMagic) {
			t.Fatalf("err = %v, want ErrBadMagic", err)
		}
	})
	t.Run("truncation everywhere", func(t *testing.T) {
		step := 1
		if len(raw) > 4096 {
			step = len(raw) / 4096
		}
		for cut := 0; cut < len(raw); cut += step {
			if _, err := LoadSnapshot(bytes.NewReader(raw[:cut]), DefaultConfig()); err == nil {
				t.Fatalf("cut at %d of %d bytes decoded successfully", cut, len(raw))
			}
		}
	})
	t.Run("payload bit flips", func(t *testing.T) {
		for off := snapio.MagicLen; off < len(raw); off += 97 {
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0x20
			if _, err := LoadSnapshot(bytes.NewReader(mut), DefaultConfig()); err == nil {
				t.Fatalf("bit flip at %d decoded successfully", off)
			}
		}
	})
}

// TestSnapshotLoadBeatsBuild pins the cold-start win: loading the snapshot
// must be at least 5x faster than rebuilding the session from raw claims
// (the acceptance bar; the measured margin is far larger — see
// BenchmarkSnapshotLoad vs BenchmarkSessionBuild).
func TestSnapshotLoadBeatsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in short mode")
	}
	// The tiny servingWorld has almost no precompute to skip; the cold-start
	// claim is about serving scale, so measure at the acceptance bar's 500
	// sources (the benchmark world's shape: 500 independents + 50 copiers,
	// 30 objects), where depen.Detect's O(S²·rounds) pairwise scoring
	// dominates construction.
	accs := make([]float64, 500)
	for i := range accs {
		accs[i] = 0.55 + 0.4*float64(i%9)/8
	}
	copiers := make([]synth.CopierSpec, 50)
	for i := range copiers {
		copiers[i] = synth.CopierSpec{MasterIndex: i, CopyRate: 0.8, OwnAcc: 0.6}
	}
	sw, err := synth.GenerateSnapshot(synth.SnapshotConfig{
		Seed:           37,
		NObjects:       30,
		IndependentAcc: accs,
		Copiers:        copiers,
		FalsePool:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := sw.Dataset
	cfg := DefaultConfig()
	s, err := New(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotBytes(t, s)

	// The build rep re-ingests raw claims so the lazily compiled columnar
	// index is not shared with the warmup session.
	buildStart := time.Now()
	fresh, err := dataset.FromClaims(d.Claims())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(fresh, cfg); err != nil {
		t.Fatal(err)
	}
	buildTime := time.Since(buildStart)

	// Best of three reps: the whole suite runs packages in parallel, and a
	// single rep losing its CPU slice mid-decode can eat the 5x margin.
	var loadTime time.Duration
	for rep := 0; rep < 3; rep++ {
		loadStart := time.Now()
		if _, err := LoadSnapshot(bytes.NewReader(raw), cfg); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(loadStart); rep == 0 || d < loadTime {
			loadTime = d
		}
	}

	if loadTime*5 > buildTime {
		t.Fatalf("LoadSnapshot %v not ≥5x faster than NewSession %v", loadTime, buildTime)
	}
	t.Logf("build %v, load %v (%.1fx)", buildTime, loadTime,
		float64(buildTime)/float64(loadTime))
}

// FuzzLoadSnapshot drives the session-snapshot decoder with arbitrary
// bytes: error or success, never a panic.
func FuzzLoadSnapshot(f *testing.F) {
	d := servingWorld(f, 41)
	s, err := New(d, DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte{})
	f.Add([]byte(SnapshotMagic))
	mut := append([]byte(nil), raw...)
	mut[len(mut)/2] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := LoadSnapshot(bytes.NewReader(data), DefaultConfig())
		if err == nil && got == nil {
			t.Fatal("nil session without error")
		}
	})
}

// TestResultFromPartsMatchesDetect double-checks the depen reassembly path
// against a live Detect result, independent of the binary format.
func TestResultFromPartsMatchesDetect(t *testing.T) {
	d := servingWorld(t, 43)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dep := s.Dependence()
	tr := &truth.Result{
		Probs:     dep.Truth.Probs,
		Accuracy:  dep.Truth.Accuracy,
		Rounds:    dep.Truth.Rounds,
		Converged: dep.Truth.Converged,
	}
	tr.PickChosen()
	// nil index slices exercise the lookup fallback path.
	rebuilt := depen.ResultFromParts(tr, d.Sources(), dep.AllPairs, nil, nil,
		DefaultConfig().Depen.DepThreshold, dep.Rounds, dep.Converged)
	if !reflect.DeepEqual(rebuilt, dep) {
		t.Fatal("ResultFromParts does not reproduce Detect's result")
	}
}
