package session

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sourcecurrents/internal/recommend"
	"sourcecurrents/internal/snapio"
)

func snapshotV2Bytes(t testing.TB, s *Session) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshotV2(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotV2EquivalentToV1 pins the cross-format contract: a session
// loaded from the v2 mapped container answers every query bit-identically
// to one loaded from the v1 frame and to the original — before any
// materialization, straight off the mapped tables.
func TestSnapshotV2EquivalentToV1(t *testing.T) {
	d := servingWorld(t, 17)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := LoadSnapshot(bytes.NewReader(snapshotBytes(t, s)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := LoadSnapshotV2(snapshotV2Bytes(t, s), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	if !reflect.DeepEqual(v2.acc, v1.acc) {
		t.Fatal("dense accuracy vector differs across formats")
	}
	if !snapio.Float64SliceEqualBits(v2.depTab, v1.depTab) {
		t.Fatal("dense dependence table differs across formats")
	}
	if v2.DatasetEpoch() != v1.DatasetEpoch() {
		t.Fatalf("epoch %d vs %d", v2.DatasetEpoch(), v1.DatasetEpoch())
	}
	for _, q := range queries(d) {
		want, err := v1.AnswerObjects(q)
		if err != nil {
			t.Fatal(err)
		}
		have, err := v2.AnswerObjects(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(have, want) {
			t.Fatal("AnswerObjects differs between v1 and v2 loads")
		}
	}
}

// TestSnapshotV2MaterializeGolden forces the lazy cold path and checks the
// materialized state is deep-equal to the v1-loaded session: discovery
// result, dataset claims, fusion, recommendations — and that a v2 session
// re-encodes to byte-identical v1 and v2 snapshots (canonical).
func TestSnapshotV2MaterializeGolden(t *testing.T) {
	d := servingWorld(t, 23)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rawV1 := snapshotBytes(t, s)
	rawV2 := snapshotV2Bytes(t, s)
	v2, err := LoadSnapshotV2(rawV2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	if !reflect.DeepEqual(v2.Dependence(), s.Dependence()) {
		t.Fatal("depen.Result differs after v2 materialization")
	}
	if !reflect.DeepEqual(v2.Dataset().Claims(), s.Dataset().Claims()) {
		t.Fatal("dataset claims differ after v2 materialization")
	}
	if !reflect.DeepEqual(v2.Accuracy(), s.Accuracy()) {
		t.Fatal("accuracy map differs after v2 materialization")
	}

	wantFuse, err := s.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	haveFuse, err := v2.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(haveFuse.Chosen, wantFuse.Chosen) ||
		!reflect.DeepEqual(haveFuse.Relation, wantFuse.Relation) {
		t.Fatal("Fuse differs after v2 materialization")
	}
	wantTop, err := s.RecommendSources(recommend.DefaultWeights(), 5)
	if err != nil {
		t.Fatal(err)
	}
	haveTop, err := v2.RecommendSources(recommend.DefaultWeights(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(haveTop, wantTop) {
		t.Fatal("RecommendSources differs after v2 materialization")
	}

	if !bytes.Equal(snapshotBytes(t, v2), rawV1) {
		t.Fatal("v1 re-encode of a v2-loaded session is not byte-identical")
	}
	if !bytes.Equal(snapshotV2Bytes(t, v2), rawV2) {
		t.Fatal("v2 re-encode of a v2-loaded session is not byte-identical")
	}
}

// TestSnapshotV2AppendMatchesV1 pins that live ingest works identically on
// both load paths: appending the same batch to a v1- and a v2-loaded
// session yields bit-identical successor sessions.
func TestSnapshotV2AppendMatchesV1(t *testing.T) {
	d := servingWorld(t, 31)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch := servingWorld(t, 99).Claims()[:25]

	v1, err := LoadSnapshot(bytes.NewReader(snapshotBytes(t, s)), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := LoadSnapshotV2(snapshotV2Bytes(t, s), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	next1, err := v1.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	next2, err := v2.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(next2.Dependence(), next1.Dependence()) {
		t.Fatal("appended discovery state differs between v1 and v2 loads")
	}
	for _, q := range queries(next1.Dataset()) {
		want, err := next1.AnswerObjects(q)
		if err != nil {
			t.Fatal(err)
		}
		have, err := next2.AnswerObjects(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(have, want) {
			t.Fatal("post-append answers differ between v1 and v2 loads")
		}
	}
}

// TestSnapshotV2FileSniff checks LoadSnapshotFile dispatches on the magic:
// v2 containers take the mmap path (MappedBytes > 0), v1 frames the
// decoding path, and both serve the same answers.
func TestSnapshotV2FileSniff(t *testing.T) {
	d := servingWorld(t, 41)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "world.v1")
	p2 := filepath.Join(dir, "world.v2")
	if err := os.WriteFile(p1, snapshotBytes(t, s), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, snapshotV2Bytes(t, s), 0o644); err != nil {
		t.Fatal(err)
	}

	v1, err := LoadSnapshotFile(p1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v1.MappedBytes() != 0 {
		t.Fatal("v1 load reports a mapping")
	}
	v2, err := LoadSnapshotFile(p2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if v2.MappedBytes() == 0 {
		t.Fatal("v2 load reports no mapping")
	}
	q := d.Objects()
	want, err := v1.AnswerObjects(q)
	if err != nil {
		t.Fatal(err)
	}
	have, err := v2.AnswerObjects(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(have, want) {
		t.Fatal("file-loaded answers differ across formats")
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v2.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}

	if _, err := LoadSnapshotFile(filepath.Join(dir, "absent"), DefaultConfig()); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("SC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(short, DefaultConfig()); !errors.Is(err, snapio.ErrTruncated) {
		t.Fatalf("short file error = %v, want ErrTruncated", err)
	}
}

// TestSnapshotV2MaterializeSurvivesClose pins the lifetime contract: state
// materialized from the cold sections is fully copied onto the heap, so
// after Close (mapping gone) the dataset, discovery result and fusion keep
// working. Only the serving tables die with the mapping.
func TestSnapshotV2MaterializeSurvivesClose(t *testing.T) {
	d := servingWorld(t, 53)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "world.v2")
	if err := os.WriteFile(path, snapshotV2Bytes(t, s), 0o644); err != nil {
		t.Fatal(err)
	}
	v2, err := LoadSnapshotFile(path, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantDep := v2.Dependence() // forces materialization
	if wantDep == nil {
		t.Fatal("materialization failed")
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v2.Dependence(), s.Dependence()) {
		t.Fatal("discovery state did not survive Close")
	}
	if !reflect.DeepEqual(v2.Dataset().Claims(), s.Dataset().Claims()) {
		t.Fatal("dataset did not survive Close")
	}
	if _, err := v2.Fuse(); err != nil {
		t.Fatal("Fuse after Close:", err)
	}
}

// TestSnapshotV2Corruption walks structured damage over a real container:
// truncation at a spread of prefix lengths and a config-fingerprint
// mismatch. Every case must produce an error, never a panic or a session
// over garbage tables.
func TestSnapshotV2Corruption(t *testing.T) {
	d := servingWorld(t, 61)
	s, err := New(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	raw := snapshotV2Bytes(t, s)

	// Truncations: every 64-byte grid point plus the last 8 byte-boundaries.
	lens := []int{0, 1, 7, 8, len(raw) - 1}
	for l := 0; l < len(raw); l += 64 {
		lens = append(lens, l)
	}
	for l := len(raw) - 8; l < len(raw); l++ {
		lens = append(lens, l)
	}
	for _, l := range lens {
		if l < 0 || l >= len(raw) {
			continue
		}
		// Cutting only into the final section's alignment padding (< 8
		// bytes) leaves every section in bounds and is legitimately
		// loadable; anything deeper must fail.
		if _, err := LoadSnapshotV2(raw[:l], DefaultConfig()); err == nil && len(raw)-l >= 8 {
			t.Fatalf("truncation to %d/%d bytes loaded successfully", l, len(raw))
		}
	}

	// A snapshot written under one config must refuse to load under another.
	other := DefaultConfig()
	other.Depen.DepThreshold *= 2
	if _, err := LoadSnapshotV2(raw, other); err == nil ||
		!strings.Contains(err.Error(), "was built with") {
		t.Fatalf("config mismatch error = %v, want fingerprint rejection", err)
	}
}

// FuzzLoadSnapshotV2 drives the v2 container loader with arbitrary bytes:
// clean error or working session, never a panic. Successful loads exercise
// both the hot path (answering) and the cold path (materialization).
func FuzzLoadSnapshotV2(f *testing.F) {
	d := servingWorld(f, 41)
	s, err := New(d, DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshotV2(&buf); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add(raw[:32])
	flip := append([]byte(nil), raw...)
	flip[len(flip)/2] ^= 0xff
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		v2, err := LoadSnapshotV2(data, DefaultConfig())
		if err != nil {
			return
		}
		defer v2.Close()
		if _, err := v2.AnswerObjects(d.Objects()[:1]); err != nil {
			_ = err // some mutations legitimately fail per-query
		}
		_ = v2.Dependence()
	})
}
