// Epoch history spine: retained predecessor sessions and as-of queries.
//
// Live ingest (Session.Append) turns one serving session into a chain of
// epochs, but until this file the chain was swap-and-discard: the successor
// served, the predecessor was dropped, and the system could only answer
// "now". The history spine makes the chain navigable. Every session built
// by New/LoadSnapshot owns a *history that its Append successors share;
// each Append pushes the predecessor into the spine and trims it to the
// configured retention window (Config.RetainEpochs), so AsOf(e) can hand
// back the exact serving state of any retained epoch.
//
// Epochs below the retention floor stay *addressable* in the dataset log
// (the claim chain shares storage and is cheap) but their serving state —
// the depen result, the dense tables, the planner — is released. AsOf for
// an epoch inside the window that has no retained session materializes one
// lazily: it replays depen.Refine forward from the nearest retained
// ancestor (or depen.Detect's log replay when none is retained), exactly
// the pass sequence a live session ran through that epoch, so a
// materialized historical session is bit-identical to the one that actually
// served then (the invariant the as-of equivalence suites pin).
//
// The spine never closes a mapped session itself: callers of Append may
// still hold predecessors. Mapped sessions that fall out of the window are
// parked on a pruned list the owner (the server registry) drains via
// TakePrunedMapped and closes once its own refcounting proves quiescence.
package session

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sourcecurrents/internal/depen"
	"sourcecurrents/internal/model"
)

// epochStamp records when an epoch became the serving current — the basis
// for timestamp-form as-of resolution. Only epochs this process observed
// live get stamps; epochs restored from a snapshot's log predate the
// process and resolve by number only.
type epochStamp struct {
	epoch   int
	created time.Time
}

// history is the retention spine shared by every session on one append
// chain. All fields are guarded by mu except the materialization counter.
type history struct {
	mu sync.Mutex
	// retain bounds how many historical epochs stay behind the current one:
	// 0 none, N the last N, negative all.
	retain int
	// entries holds retained historical sessions in ascending epoch order.
	// The current session is never an entry — it is reachable directly.
	entries []*Session
	// stamps mirror entries' birth times (plus live epochs whose session
	// was replaced), ascending by epoch.
	stamps []epochStamp
	// pruned parks mapped sessions dropped from entries until the owning
	// registry closes them (see Session.TakePrunedMapped).
	pruned []*Session
	// mats counts lazy historical materializations, for /metrics.
	mats atomic.Int64
}

func newHistory(retain int) *history { return &history{retain: retain} }

// floorFor returns the lowest epoch addressable through AsOf when cur is
// the current epoch.
func (h *history) floorFor(cur int) int {
	if h.retain < 0 {
		return 0
	}
	f := cur - h.retain
	if f < 0 {
		f = 0
	}
	return f
}

// lookupLocked returns the retained session for epoch, if any.
func (h *history) lookupLocked(epoch int) (*Session, bool) {
	for _, e := range h.entries {
		if e.DatasetEpoch() == epoch {
			return e, true
		}
	}
	return nil, false
}

// insertLocked adds s keeping entries ascending by epoch. An existing entry
// for the same epoch is replaced; if the replaced session is mapped and a
// different object it moves to the pruned list.
func (h *history) insertLocked(s *Session) {
	epoch := s.DatasetEpoch()
	i := 0
	for i < len(h.entries) && h.entries[i].DatasetEpoch() < epoch {
		i++
	}
	if i < len(h.entries) && h.entries[i].DatasetEpoch() == epoch {
		if old := h.entries[i]; old != s && old.mapped != nil {
			h.pruned = append(h.pruned, old)
		}
		h.entries[i] = s
		return
	}
	h.entries = append(h.entries, nil)
	copy(h.entries[i+1:], h.entries[i:])
	h.entries[i] = s
}

// stampLocked records an epoch's birth time, replacing a same-epoch stamp.
func (h *history) stampLocked(epoch int, created time.Time) {
	i := 0
	for i < len(h.stamps) && h.stamps[i].epoch < epoch {
		i++
	}
	if i < len(h.stamps) && h.stamps[i].epoch == epoch {
		h.stamps[i].created = created
		return
	}
	h.stamps = append(h.stamps, epochStamp{})
	copy(h.stamps[i+1:], h.stamps[i:])
	h.stamps[i] = epochStamp{epoch: epoch, created: created}
}

// trimLocked drops entries and stamps below the retention floor for cur.
// Mapped sessions move to the pruned list; heap sessions are simply
// released to the garbage collector.
func (h *history) trimLocked(cur int) {
	floor := h.floorFor(cur)
	keep := h.entries[:0]
	for _, e := range h.entries {
		if e.DatasetEpoch() >= floor {
			keep = append(keep, e)
			continue
		}
		if e.mapped != nil {
			h.pruned = append(h.pruned, e)
		}
	}
	for i := len(keep); i < len(h.entries); i++ {
		h.entries[i] = nil
	}
	h.entries = keep
	ks := h.stamps[:0]
	for _, st := range h.stamps {
		if st.epoch >= floor {
			ks = append(ks, st)
		}
	}
	h.stamps = ks
}

// retainPredecessor parks prev in the spine as its successor (at curEpoch)
// takes over, then trims to the retention window.
func (h *history) retainPredecessor(prev *Session, curEpoch int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stampLocked(prev.DatasetEpoch(), prev.created)
	h.insertLocked(prev)
	h.trimLocked(curEpoch)
}

// HistoryFloor returns the lowest epoch AsOf can address: current minus the
// retention window, clamped at the flat origin.
func (s *Session) HistoryFloor() int {
	if s.hist == nil {
		return s.DatasetEpoch()
	}
	return s.hist.floorFor(s.DatasetEpoch())
}

// RetainedEpochs returns how many historical epochs are addressable behind
// the current one — the /metrics retention gauge.
func (s *Session) RetainedEpochs() int { return s.DatasetEpoch() - s.HistoryFloor() }

// HistMaterializations returns how many historical epochs this chain has
// lazily rebuilt for as-of queries.
func (s *Session) HistMaterializations() int64 {
	if s.hist == nil {
		return 0
	}
	return s.hist.mats.Load()
}

// Created returns when this session became the serving current.
func (s *Session) Created() time.Time { return s.created }

// TakePrunedMapped drains and returns mapped sessions that fell out of the
// retention window. The spine never unmaps them itself — callers of Append
// may still hold predecessor pointers — so the session chain's owner (the
// server registry) takes them here and calls Close once its refcounting
// proves no request still reads them. Callers without such bookkeeping can
// simply never drain; unclosed mappings are released at process exit.
func (s *Session) TakePrunedMapped() []*Session {
	if s.hist == nil {
		return nil
	}
	s.hist.mu.Lock()
	dead := s.hist.pruned
	s.hist.pruned = nil
	s.hist.mu.Unlock()
	return dead
}

// TakeAllMapped drains every mapped session on this chain — retained
// historical entries, already-pruned predecessors, and the receiver itself
// when mapped — emptying the spine. It is the whole-chain analogue of
// TakePrunedMapped, for an owner discarding the chain outright (a repair
// replacing a lagging replica's world with a freshly streamed snapshot):
// the owner closes the returned sessions once its refcounting proves no
// request still reads them. Heap-backed sessions are skipped — they have
// nothing to unmap and are released by the garbage collector.
func (s *Session) TakeAllMapped() []*Session {
	var dead []*Session
	if s.hist != nil {
		s.hist.mu.Lock()
		for _, e := range s.hist.entries {
			if e.mapped != nil && e != s {
				dead = append(dead, e)
			}
		}
		s.hist.entries = nil
		s.hist.stamps = nil
		dead = append(dead, s.hist.pruned...)
		s.hist.pruned = nil
		s.hist.mu.Unlock()
	}
	if s.mapped != nil {
		dead = append(dead, s)
	}
	return dead
}

// AsOf returns the session as it stood at the given epoch: the receiver for
// the current epoch, a retained predecessor when one is in the window, and
// otherwise a lazily materialized reconstruction — depen.Refine replayed
// forward from the nearest retained ancestor (or the log replayed from the
// flat origin), the exact pass sequence the live chain ran, so the result
// is bit-identical to the session that served that epoch. Epochs below the
// retention floor (Config.RetainEpochs) or above the current epoch are an
// error. Safe for concurrent use; materialized epochs are cached in the
// spine so repeated as-of queries pay once.
func (s *Session) AsOf(epoch int) (*Session, error) {
	cur := s.DatasetEpoch()
	if epoch == cur {
		return s, nil
	}
	if epoch < 0 || epoch > cur {
		return nil, fmt.Errorf("session: as-of epoch %d out of range [0, %d]", epoch, cur)
	}
	h := s.hist
	if h == nil {
		return nil, fmt.Errorf("session: no epoch history")
	}
	if floor := h.floorFor(cur); epoch < floor {
		return nil, fmt.Errorf("session: epoch %d pruned (retention floor %d, current %d)", epoch, floor, cur)
	}
	h.mu.Lock()
	if hs, ok := h.lookupLocked(epoch); ok {
		h.mu.Unlock()
		return hs, nil
	}
	// Nearest retained ancestor strictly below the target: its cached depen
	// result seeds the forward replay.
	var anc *Session
	for _, e := range h.entries {
		if e.DatasetEpoch() >= epoch {
			break
		}
		anc = e
	}
	h.mu.Unlock()

	hs, err := s.materializeEpoch(epoch, anc)
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	if cached, ok := h.lookupLocked(epoch); ok {
		// A concurrent AsOf materialized the same epoch first; serve the
		// cached one so every caller shares a single reconstruction.
		h.mu.Unlock()
		return cached, nil
	}
	h.insertLocked(hs)
	h.mu.Unlock()
	h.mats.Add(1)
	return hs, nil
}

// materializeEpoch rebuilds the serving session for epoch. With a retained
// ancestor the cached result refines forward one batch at a time; without
// one depen.Detect replays the log from the flat origin — either way the
// identical pass sequence a live session ran through that epoch.
func (s *Session) materializeEpoch(epoch int, anc *Session) (*Session, error) {
	if err := s.materialize(); err != nil {
		return nil, err
	}
	target, err := s.d.At(epoch)
	if err != nil {
		return nil, err
	}
	var dep *depen.Result
	if anc != nil {
		if err := anc.materialize(); err != nil {
			return nil, err
		}
		dep = anc.dep
		for k := anc.DatasetEpoch() + 1; k <= epoch; k++ {
			dk, err := s.d.At(k)
			if err != nil {
				return nil, err
			}
			dep, err = depen.Refine(dk, dep, s.cfg.Depen)
			if err != nil {
				return nil, err
			}
		}
	} else {
		if dep, err = depen.Detect(target, s.cfg.Depen); err != nil {
			return nil, err
		}
	}
	hs, err := newFromDep(target, s.cfg, dep)
	if err != nil {
		return nil, err
	}
	// Share the spine so a historical session can itself answer AsOf; its
	// created time is reconstruction time and deliberately takes no part in
	// timestamp resolution (stamps do).
	hs.hist = s.hist
	return hs, nil
}

// AsOfTime resolves a wall-clock instant to the epoch that was serving then
// and returns its session: the greatest epoch whose birth time is at or
// before t, among the current epoch and the retained window. Epochs
// restored from a snapshot's log have no birth time in this process and
// resolve by epoch number only; an instant before every known birth time is
// an error.
func (s *Session) AsOfTime(t time.Time) (*Session, error) {
	if !s.created.After(t) {
		return s, nil
	}
	h := s.hist
	if h == nil {
		return nil, fmt.Errorf("session: no epoch history")
	}
	best := -1
	h.mu.Lock()
	for _, st := range h.stamps {
		if !st.created.After(t) && st.epoch > best {
			best = st.epoch
		}
	}
	h.mu.Unlock()
	if best < 0 {
		return nil, fmt.Errorf("session: no retained epoch as of %s", t.UTC().Format(time.RFC3339))
	}
	return s.AsOf(best)
}

// EpochInfo describes one addressable epoch for history listings.
type EpochInfo struct {
	Epoch int
	// Created is when the epoch became current, zero when it predates this
	// process (restored from a snapshot's log).
	Created time.Time
	// Resident reports whether a serving session for the epoch is retained
	// in memory right now (the current epoch always is).
	Resident bool
	Current  bool
}

// History lists every epoch AsOf can currently address, ascending, from the
// retention floor to the current epoch.
func (s *Session) History() []EpochInfo {
	cur := s.DatasetEpoch()
	floor := s.HistoryFloor()
	out := make([]EpochInfo, 0, cur-floor+1)
	var resident map[int]bool
	stamps := map[int]time.Time{}
	if s.hist != nil {
		resident = map[int]bool{}
		s.hist.mu.Lock()
		for _, e := range s.hist.entries {
			resident[e.DatasetEpoch()] = true
		}
		for _, st := range s.hist.stamps {
			stamps[st.epoch] = st.created
		}
		s.hist.mu.Unlock()
	}
	for e := floor; e <= cur; e++ {
		info := EpochInfo{Epoch: e, Created: stamps[e], Resident: resident[e]}
		if e == cur {
			info.Created = s.created
			info.Resident = true
			info.Current = true
		}
		out = append(out, info)
	}
	return out
}

// AccuracyOf returns one source's discovered accuracy at this session's
// epoch, reading the dense vector through the compiled index — no
// materialization for mapped sessions, which keeps trajectory serving from
// decoding cold sections.
func (s *Session) AccuracyOf(src model.SourceID) (float64, bool) {
	c := s.compiledView()
	i, ok := c.SourceIndex(src)
	if !ok {
		return 0, false
	}
	return s.acc[i], true
}
