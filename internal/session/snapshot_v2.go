// Session snapshot format v2: the mmap-backed, zero-copy cold-start layout.
//
// The v1 frame (snapshot.go) decodes every table into freshly allocated
// slices — ~13k allocations and O(dataset) work before the first answer. V2
// instead writes the session's dense serving state (the compiled CSR
// tables, the interned-string blob, the accuracy vector and the flat
// dependence table) into an aligned section container (snapio/sections.go),
// so loading is mmap + header validation + unsafe casts: a few dozen
// allocations regardless of dataset size, and N processes serving the same
// world share one physical copy of its pages.
//
// Only the state the hot serve path (AnswerObjects) touches is decoded at
// load. The remaining state — the embedded v1 dataset snapshot, the truth
// posterior maps, the pair verdicts — rides along in cold sections encoded
// with the v1 helpers, and materializes onto the heap on first use (Fuse,
// Append, Profiles…). A session loaded from v2 is bit-identical to one
// loaded from v1 or rebuilt from scratch: both backends feed the same
// planner the same float64 tables, which the equivalence tests pin.
package session

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"time"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/model"
	"sourcecurrents/internal/queryans"
	"sourcecurrents/internal/snapio"
)

// SnapshotV2Magic identifies the mmap-backed session snapshot container.
const SnapshotV2Magic = "SCSESSM2"

// SnapshotV2Version is the current v2 container version.
const SnapshotV2Version = 1

// Session-level section ids, above the range the dataset compiled codec
// reserves.
const (
	secAcc    = dataset.SecCompiledEnd + iota // dense accuracy []float64
	secDepTab                                 // flat nS×nS dependence posterior []float64
	secMeta                                   // fingerprint version, rounds, converged, dataset epoch
	secFprint                                 // config fingerprint (v1 encoding)
	secTruth                                  // per-object posteriors (v1 encoding, cold)
	secPairs                                  // pair verdicts (v1 encoding, cold)
	secDSBlob                                 // embedded v1 dataset snapshot (cold)
)

// WriteSnapshotV2 encodes the session to the v2 container. The compiled
// tables, accuracies and dependence table are laid out in their in-memory
// form for zero-copy loading; the dataset snapshot, posteriors and pair
// verdicts are embedded in their v1 encodings as cold sections.
func (s *Session) WriteSnapshotV2(w io.Writer) error {
	if err := s.materialize(); err != nil {
		return err
	}
	var ds bytes.Buffer
	if err := s.d.WriteSnapshot(&ds); err != nil {
		return err
	}
	c := s.d.Compiled()

	var sw snapio.SectionWriter
	if err := c.AppendSections(&sw); err != nil {
		return err
	}
	sw.Add(secAcc, snapio.F64Bytes(s.acc))
	sw.Add(secDepTab, snapio.F64Bytes(s.depTab))

	tr := s.dep.Truth
	var meta snapio.Writer
	meta.U32(SnapshotVersion) // fingerprint field-list version
	meta.U32(uint32(tr.Rounds))
	meta.Bool(tr.Converged)
	meta.U64(uint64(s.d.Epoch()))
	sw.Add(secMeta, meta.Payload())

	var fp snapio.Writer
	encodeFingerprint(&fp, s.cfg.Depen)
	sw.Add(secFprint, fp.Payload())

	var truthEnc snapio.Writer
	encodeTruthProbs(&truthEnc, c, tr)
	sw.Add(secTruth, truthEnc.Payload())

	var pairsEnc snapio.Writer
	if err := encodePairs(&pairsEnc, c, s.dep.AllPairs); err != nil {
		return err
	}
	sw.Add(secPairs, pairsEnc.Payload())

	sw.Add(secDSBlob, ds.Bytes())
	return sw.WriteTo(w, SnapshotV2Magic, SnapshotV2Version)
}

// sessionFromMapped assembles a serving session over a validated v2
// container: cast the hot sections, check the config fingerprint, build the
// planner. No cold section is touched. On error the caller owns closing m.
func sessionFromMapped(m *snapio.Mapped, cfg Config) (*Session, error) {
	cfg = cfg.effective()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := dataset.CompiledFromMapped(m)
	if err != nil {
		return nil, fmt.Errorf("session: snapshot v2: %w", err)
	}
	nS := c.NumSources()

	metaB, ok := m.Section(secMeta)
	if !ok {
		return nil, fmt.Errorf("session: snapshot v2: %w: meta section missing", snapio.ErrCorrupt)
	}
	meta := snapio.NewReader(metaB)
	fpVersion := meta.U32()
	rounds := int(meta.U32())
	converged := meta.Bool()
	epoch := meta.U64()
	if err := meta.Finish(); err != nil {
		return nil, fmt.Errorf("session: snapshot v2: meta: %w", err)
	}
	if fpVersion == 0 || fpVersion > SnapshotVersion {
		return nil, fmt.Errorf("%w: fingerprint version %d (decoder supports 1..%d)",
			snapio.ErrBadVersion, fpVersion, SnapshotVersion)
	}

	fpB, ok := m.Section(secFprint)
	if !ok {
		return nil, fmt.Errorf("session: snapshot v2: %w: fingerprint section missing", snapio.ErrCorrupt)
	}
	fpDec := snapio.NewReader(fpB)
	if err := checkFingerprint(fpDec, cfg.Depen, int(fpVersion)); err != nil {
		return nil, err
	}
	if err := fpDec.Finish(); err != nil {
		return nil, fmt.Errorf("session: snapshot v2: fingerprint: %w", err)
	}

	acc, err := m.F64Section(secAcc)
	if err != nil {
		return nil, fmt.Errorf("session: snapshot v2: %w", err)
	}
	depTab, err := m.F64Section(secDepTab)
	if err != nil {
		return nil, fmt.Errorf("session: snapshot v2: %w", err)
	}
	if len(acc) != nS || len(depTab) != nS*nS {
		return nil, fmt.Errorf("session: snapshot v2: %w: accuracy/dependence tables sized %d/%d for %d sources",
			snapio.ErrCorrupt, len(acc), len(depTab), nS)
	}
	// Cold sections must be present even though they stay untouched: a
	// session that cannot ever materialize is a corrupt snapshot, and the
	// failure should surface at load, not at the first Fuse call.
	for _, id := range []uint32{secTruth, secPairs, secDSBlob} {
		if _, ok := m.Section(id); !ok {
			return nil, fmt.Errorf("session: snapshot v2: %w: cold section %d missing", snapio.ErrCorrupt, id)
		}
	}

	qcfg := cfg.Query
	qcfg.Accuracy = nil
	qcfg.Dependence = nil
	planner, err := queryans.NewPlannerFromCompiled(c, qcfg, acc, depTab)
	if err != nil {
		return nil, err
	}
	return &Session{
		cfg:       cfg,
		acc:       acc,
		depTab:    depTab,
		planner:   planner,
		mapped:    m,
		mc:        c,
		dsEpoch:   int(epoch),
		rounds:    rounds,
		converged: converged,
		hist:      newHistory(cfg.RetainEpochs),
		created:   time.Now(),
	}, nil
}

// materializeMapped decodes the cold sections into heap state: the embedded
// v1 dataset snapshot, then the posterior maps and pair verdicts against
// the materialized dataset's own (heap) compiled view — never the mapped
// one, so nothing the materialized state references dies with the mapping.
func (s *Session) materializeMapped() error {
	blob, _ := s.mapped.Section(secDSBlob)
	d, err := dataset.ReadSnapshot(bytes.NewReader(blob))
	if err != nil {
		return fmt.Errorf("session: snapshot v2: embedded dataset: %w", err)
	}
	if d.Len() == 0 {
		return fmt.Errorf("session: snapshot v2: %w: empty embedded dataset", snapio.ErrCorrupt)
	}
	c := d.Compiled()
	if c.NumSources() != s.mc.NumSources() || c.NumObjects() != s.mc.NumObjects() ||
		c.NumValues() != s.mc.NumValues() {
		return fmt.Errorf("session: snapshot v2: %w: embedded dataset shape %d/%d/%d does not match mapped tables %d/%d/%d",
			snapio.ErrCorrupt, c.NumSources(), c.NumObjects(), c.NumValues(),
			s.mc.NumSources(), s.mc.NumObjects(), s.mc.NumValues())
	}
	if d.Epoch() != s.dsEpoch {
		return fmt.Errorf("session: snapshot v2: %w: embedded dataset epoch %d, meta says %d",
			snapio.ErrCorrupt, d.Epoch(), s.dsEpoch)
	}

	accMap := make(map[model.SourceID]float64, c.NumSources())
	for i := 0; i < c.NumSources(); i++ {
		accMap[c.Source(i)] = s.acc[i]
	}

	truthB, _ := s.mapped.Section(secTruth)
	truthDec := snapio.NewReader(truthB)
	probs, err := decodeTruthProbs(truthDec, c)
	if err != nil {
		return err
	}
	if err := truthDec.Finish(); err != nil {
		return fmt.Errorf("session: snapshot v2: truth: %w", err)
	}

	pairsB, _ := s.mapped.Section(secPairs)
	pairsDec := snapio.NewReader(pairsB)
	pairs, pairA, pairB := decodePairs(pairsDec, c)
	if err := pairsDec.Finish(); err != nil {
		return fmt.Errorf("session: snapshot v2: pairs: %w", err)
	}

	s.d = d
	s.dep = assembleDep(c, accMap, probs, pairs, pairA, pairB,
		s.cfg.Depen.DepThreshold, s.rounds, s.converged)
	return nil
}

// LoadSnapshotV2 validates an in-memory v2 container and assembles a
// serving session over it — the byte-slice twin of LoadSnapshotFile's mmap
// path, used by tests and fuzzing. The session aliases data; it must stay
// immutable while the session lives.
func LoadSnapshotV2(data []byte, cfg Config) (*Session, error) {
	m, err := snapio.OpenMappedBytes(data, SnapshotV2Magic, SnapshotV2Version)
	if err != nil {
		return nil, fmt.Errorf("session: snapshot v2: %w", err)
	}
	return sessionFromMapped(m, cfg)
}

// LoadSnapshotFile loads a session snapshot from path, sniffing the format:
// v2 containers are memory-mapped (zero-copy cold start), v1 frames fall
// back to the decoding loader. Close the returned session when done serving
// it to release the mapping.
func LoadSnapshotFile(path string, cfg Config) (*Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [snapio.MagicLen]byte
	_, rerr := io.ReadFull(f, magic[:])
	if rerr != nil {
		f.Close()
		return nil, fmt.Errorf("session: snapshot: %w: %v", snapio.ErrTruncated, rerr)
	}
	if string(magic[:]) == SnapshotV2Magic {
		f.Close()
		m, err := snapio.OpenMappedFile(path, SnapshotV2Magic, SnapshotV2Version)
		if err != nil {
			return nil, fmt.Errorf("session: snapshot v2: %w", err)
		}
		s, err := sessionFromMapped(m, cfg)
		if err != nil {
			m.Close()
			return nil, err
		}
		return s, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	defer f.Close()
	return LoadSnapshot(bufio.NewReader(f), cfg)
}
