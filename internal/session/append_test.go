package session

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"sourcecurrents/internal/dataset"
	"sourcecurrents/internal/linkage"
	"sourcecurrents/internal/model"
)

// randomBatch draws a varied append batch against d's current population:
// mostly existing sources and objects re-asserting or contradicting, with
// occasional brand-new sources, brand-new objects and brand-new values —
// the mid-stream growth the equivalence invariant must survive.
func randomBatch(rng *rand.Rand, d *dataset.Dataset, batchNum int) []model.Claim {
	srcs := d.Sources()
	objs := d.Objects()
	n := 1 + rng.Intn(12)
	batch := make([]model.Claim, 0, n)
	for i := 0; i < n; i++ {
		var s model.SourceID
		if rng.Intn(6) == 0 {
			s = model.SourceID(fmt.Sprintf("X%d_%d", batchNum, i))
		} else {
			s = srcs[rng.Intn(len(srcs))]
		}
		var o model.ObjectID
		if rng.Intn(6) == 0 {
			o = model.Obj(fmt.Sprintf("n%05d_%d", batchNum, i), "v")
		} else {
			o = objs[rng.Intn(len(objs))]
		}
		v := fmt.Sprintf("T%d", rng.Intn(60))
		if rng.Intn(3) == 0 {
			v = fmt.Sprintf("B%d_%d", batchNum, rng.Intn(4))
		}
		batch = append(batch, model.NewClaim(s, o, v))
	}
	return batch
}

// assertSessionsEqual asserts that every serving output of got and want is
// byte-identical: accuracies, the full dependence verdict set, answer
// traces over several query shapes, fusion, and linkage.
func assertSessionsEqual(t *testing.T, got, want *Session) {
	t.Helper()
	if !reflect.DeepEqual(got.Accuracy(), want.Accuracy()) {
		t.Fatalf("accuracy maps differ")
	}
	gd, wd := got.Dependence(), want.Dependence()
	if !reflect.DeepEqual(gd.AllPairs, wd.AllPairs) {
		t.Fatalf("AllPairs differ")
	}
	if !reflect.DeepEqual(gd.Dependences, wd.Dependences) {
		t.Fatalf("Dependences differ")
	}
	if !reflect.DeepEqual(gd.Truth.Probs, wd.Truth.Probs) {
		t.Fatalf("truth posteriors differ")
	}
	for qi, q := range queries(got.Dataset()) {
		ga, err := got.AnswerObjects(q)
		if err != nil {
			t.Fatal(err)
		}
		wa, err := want.AnswerObjects(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ga, wa) {
			t.Fatalf("query %d: answers differ", qi)
		}
	}
	gf, err := got.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	wf, err := want.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gf.Chosen, wf.Chosen) || !reflect.DeepEqual(gf.Relation, wf.Relation) {
		t.Fatalf("fusion outputs differ")
	}
	gl, err := got.Link(linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	wl, err := want.Link(linkage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gl, wl) {
		t.Fatalf("linkage outputs differ")
	}
}

// TestAppendEquivalence pins the tentpole invariant: after N randomized
// appended batches (varied sizes, new sources and objects mid-stream), a
// session advanced live through Append is byte-identical to a full New
// rebuild over the same successor dataset — at every parallelism setting.
func TestAppendEquivalence(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		par := par
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42 + int64(par)))
			cfg := DefaultConfig()
			cfg.Parallelism = par
			live, err := New(servingWorld(t, 17), cfg)
			if err != nil {
				t.Fatal(err)
			}
			const nBatches = 6
			for b := 0; b < nBatches; b++ {
				batch := randomBatch(rng, live.Dataset(), b)
				live, err = live.Append(batch)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := live.Dataset().Epoch(), b+1; got != want {
					t.Fatalf("epoch = %d, want %d", got, want)
				}
				rebuilt, err := New(live.Dataset(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertSessionsEqual(t, live, rebuilt)
			}
		})
	}
}

// TestAppendEquivalenceAcrossParallelism asserts the appended results are
// additionally bit-identical across parallelism settings, like every other
// solver path in the repo.
func TestAppendEquivalenceAcrossParallelism(t *testing.T) {
	build := func(par int) *Session {
		rng := rand.New(rand.NewSource(99))
		cfg := DefaultConfig()
		cfg.Parallelism = par
		s, err := New(servingWorld(t, 31), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < 4; b++ {
			s2, err := s.Append(randomBatch(rng, s.Dataset(), b))
			if err != nil {
				t.Fatal(err)
			}
			s = s2
		}
		return s
	}
	want := build(1)
	for _, par := range []int{4, 16} {
		assertSessionsEqual(t, build(par), want)
	}
}

// TestAppendRejectsBadBatches pins the Append error contract.
func TestAppendRejectsBadBatches(t *testing.T) {
	s, err := New(servingWorld(t, 5), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := s.Append([]model.Claim{{}}); err == nil {
		t.Fatal("invalid claim accepted")
	}
	// The receiver still serves after a rejected append.
	if _, err := s.AnswerObjects(s.Dataset().Objects()[:3]); err != nil {
		t.Fatal(err)
	}
}

// TestAppendSnapshotRoundTrip pins that a live-appended session snapshots
// and reloads into identical serving state (the dataset snapshot carries
// the log, the session snapshot the refined precompute).
func TestAppendSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s, err := New(servingWorld(t, 7), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 3; b++ {
		s2, err := s.Append(randomBatch(rng, s.Dataset(), b))
		if err != nil {
			t.Fatal(err)
		}
		s = s2
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(&buf, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Dataset().Epoch(), s.Dataset().Epoch(); got != want {
		t.Fatalf("loaded epoch = %d, want %d", got, want)
	}
	assertSessionsEqual(t, loaded, s)
}

// TestAppendConcurrentAnswers mixes live appends with concurrent answer and
// fusion traffic over the retired epochs — the swap pattern the server
// runs. Meaningful under -race; it asserts retired sessions keep serving
// unperturbed while successors are built from them.
func TestAppendConcurrentAnswers(t *testing.T) {
	s, err := New(servingWorld(t, 23), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var cur atomic.Pointer[Session]
	cur.Store(s)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sess := cur.Load()
				objs := sess.Dataset().Objects()
				if _, err := sess.AnswerObjects(objs[:8]); err != nil {
					t.Error(err)
					return
				}
				if _, err := sess.Fuse(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(51))
	for b := 0; b < 8; b++ {
		prev := cur.Load()
		next, err := prev.Append(randomBatch(rng, prev.Dataset(), b))
		if err != nil {
			t.Error(err)
			break
		}
		cur.Store(next)
	}
	close(stop)
	wg.Wait()
}
