package strsim

import (
	"sort"
	"strings"
)

// Name is a parsed person name: zero or more given names plus a family name.
type Name struct {
	Given  []string // given names or initials, in order
	Family string
}

// ParseName parses a person name in either "Given Family" or
// "Family, Given" order. Periods after initials are dropped.
func ParseName(s string) Name {
	s = strings.TrimSpace(s)
	if s == "" {
		return Name{}
	}
	if comma := strings.Index(s, ","); comma >= 0 {
		family := strings.TrimSpace(s[:comma])
		given := splitNameTokens(s[comma+1:])
		return Name{Given: given, Family: family}
	}
	toks := splitNameTokens(s)
	if len(toks) == 0 {
		return Name{}
	}
	return Name{Given: toks[:len(toks)-1], Family: toks[len(toks)-1]}
}

func splitNameTokens(s string) []string {
	raw := strings.Fields(s)
	out := make([]string, 0, len(raw))
	for _, t := range raw {
		t = strings.Trim(t, ".")
		if t != "" {
			out = append(out, t)
		}
	}
	return out
}

// Key returns a normalized lowercase "family|initials" key: family name plus
// the first letter of each given name. "Jeffrey D. Ullman", "J. Ullman" and
// "Ullman, Jeffrey" all map to keys with family "ullman" and compatible
// initial sets, which is what author-list blocking needs.
func (n Name) Key() string {
	var b strings.Builder
	b.WriteString(strings.ToLower(n.Family))
	b.WriteByte('|')
	for _, g := range n.Given {
		if g == "" {
			continue
		}
		b.WriteByte(byte(strings.ToLower(g)[0]))
	}
	return b.String()
}

// NameSim scores how likely two parsed names denote the same person, in
// [0, 1]. Family names are compared with Jaro-Winkler; given names match if
// either is an initial of the other or they are string-similar.
func NameSim(a, b Name) float64 {
	fam := JaroWinkler(strings.ToLower(a.Family), strings.ToLower(b.Family))
	if len(a.Given) == 0 || len(b.Given) == 0 {
		return fam * 0.9 // family-only match is decent but not conclusive
	}
	pairs := len(a.Given)
	if len(b.Given) < pairs {
		pairs = len(b.Given)
	}
	var given float64
	for i := 0; i < pairs; i++ {
		given += givenSim(a.Given[i], b.Given[i])
	}
	given /= float64(pairs)
	return 0.6*fam + 0.4*given
}

func givenSim(a, b string) float64 {
	la, lb := strings.ToLower(a), strings.ToLower(b)
	if la == lb {
		return 1
	}
	// Initial matching: "j" vs "jeffrey".
	if len(la) == 1 || len(lb) == 1 {
		if la[:1] == lb[:1] {
			return 0.85
		}
		return 0
	}
	return JaroWinkler(la, lb)
}

// AuthorList is an ordered list of parsed author names.
type AuthorList []Name

// ParseAuthorList parses a book author field. Authors may be separated by
// ";", "&", " and ", or by commas when each element looks like a full name
// (no comma-inverted forms mixed in).
func ParseAuthorList(s string) AuthorList {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	seps := []string{";", "&", " and "}
	parts := []string{s}
	for _, sep := range seps {
		var next []string
		for _, p := range parts {
			next = append(next, strings.Split(p, sep)...)
		}
		parts = next
	}
	if len(parts) == 1 && strings.Count(s, ",") >= 1 && !looksInverted(s) {
		parts = strings.Split(s, ",")
	}
	var out AuthorList
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		out = append(out, ParseName(p))
	}
	return out
}

// looksInverted reports whether s is plausibly a single "Family, Given"
// name: exactly one comma and at most two tokens after it.
func looksInverted(s string) bool {
	if strings.Count(s, ",") != 1 {
		return false
	}
	after := strings.TrimSpace(s[strings.Index(s, ",")+1:])
	return len(strings.Fields(after)) <= 2
}

// CanonicalKey returns an order-insensitive normalized key for the list:
// sorted name keys joined by "/". Misordered author lists — a dirtiness the
// paper calls out — collapse to the same key.
func (al AuthorList) CanonicalKey() string {
	keys := make([]string, len(al))
	for i, n := range al {
		keys[i] = n.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "/")
}

// String renders the list as "Given Family; Given Family; ...". The
// semicolon separator keeps rendering unambiguous: a comma-separated form
// with two-token names is indistinguishable from a single inverted name.
func (al AuthorList) String() string {
	parts := make([]string, len(al))
	for i, n := range al {
		if len(n.Given) > 0 {
			parts[i] = strings.Join(n.Given, " ") + " " + n.Family
		} else {
			parts[i] = n.Family
		}
	}
	return strings.Join(parts, "; ")
}

// AuthorListSim scores two author lists in [0, 1]: optimal greedy matching
// of names (order-insensitive) averaged over the longer list, so missing
// authors are penalized but reordering is not.
func AuthorListSim(a, b AuthorList) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	used := make([]bool, len(b))
	var total float64
	for _, na := range a {
		best, bestJ := 0.0, -1
		for j, nb := range b {
			if used[j] {
				continue
			}
			if s := NameSim(na, nb); s > best {
				best, bestJ = s, j
			}
		}
		if bestJ >= 0 {
			used[bestJ] = true
			total += best
		}
	}
	longer := len(a)
	if len(b) > longer {
		longer = len(b)
	}
	return total / float64(longer)
}
